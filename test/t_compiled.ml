(* Golden equivalence for the closure-compiled hot path: on every
   registry NF, Exec.Compiled must be bit-identical to Exec.Interp —
   outcome, IC, MA, cycles, PCV observations, the full traced event
   stream (branch events included) and the final packet bytes — at
   --jobs 1 and 4, in both production and analysis modes, and on the
   runtime-contract violations (Stuck message parity, charge parity). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

type obs_run = {
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;
  observations : (Perf.Pcv.t * int) list;
  events : Exec.Meter.event list;
  bytes : Bytes.t;
}

let copy_stream stream =
  List.map
    (fun e ->
      { e with Workload.Stream.packet = Net.Packet.copy e.Workload.Stream.packet })
    stream

(* Replay [stream] with the Distiller's per-packet discipline (shared
   warm meter, observation reset, DMA boundary) on either engine. *)
let replay ~engine (entry : Nf.Registry.entry) stream =
  let model = Hw.Model.realistic () in
  let meter = Exec.Meter.create ~trace:true model in
  let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
  let dma =
    [ (Exec.Interp.packet_base, 2048); (Exec.Interp.rx_ring_base, 256) ]
  in
  let compiled =
    match engine with
    | `Interp -> None
    | `Compiled -> Some (Exec.Compiled.compile entry.Nf.Registry.program)
  in
  List.map
    (fun { Workload.Stream.packet; now; in_port } ->
      Exec.Meter.reset_observations meter;
      model.Hw.Model.boundary dma;
      let r =
        match compiled with
        | None ->
            Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~in_port
              ~now entry.Nf.Registry.program packet
        | Some c ->
            Exec.Compiled.run c ~meter ~mode:(Exec.Interp.Production dss)
              ~in_port ~now packet
      in
      {
        outcome = r.Exec.Interp.outcome;
        ic = r.Exec.Interp.ic;
        ma = r.Exec.Interp.ma;
        cycles = r.Exec.Interp.cycles;
        observations = Exec.Meter.observations meter;
        events = Exec.Meter.events meter;
        bytes = Net.Packet.to_bytes packet;
      })
    stream

let check_nf nf =
  let entry = Nf.Registry.find nf in
  let prng = Workload.Prng.create ~seed:77 in
  let stream = Proptest.Gen_net.stream_for prng ~nf ~packets:40 in
  let interp = replay ~engine:`Interp entry (copy_stream stream) in
  let compiled = replay ~engine:`Compiled entry (copy_stream stream) in
  List.iteri
    (fun i (a, b) ->
      let ctx fmt = Printf.sprintf "%s packet %d %s" nf i fmt in
      check_bool (ctx "outcome") true (a.outcome = b.outcome);
      check_int (ctx "ic") a.ic b.ic;
      check_int (ctx "ma") a.ma b.ma;
      check_int (ctx "cycles") a.cycles b.cycles;
      check_bool (ctx "observations") true (a.observations = b.observations);
      check_bool (ctx "events") true (a.events = b.events);
      check_bool (ctx "bytes") true (Bytes.equal a.bytes b.bytes))
    (List.combine interp compiled)

let test_golden_all_nfs ~jobs () =
  ignore (Exec.Pool.map ~jobs (fun nf -> check_nf nf) (Nf.Registry.names ()))

(* A stateful program replayed in analysis mode: stub consumption, the
   no-LTO call-overhead charge and E_call events must line up too. *)
let analysis_program =
  Ir.Program.make ~name:"t_compiled_analysis"
    ~state:[ { Ir.Program.instance = "ft"; kind = "flow_table" } ]
    Ir.
      [
        Stmt.assign "h" Expr.(load32 (int 26));
        Stmt.call ~ret:"r" "ft" "get" [ Expr.var "h"; Expr.var "now" ];
        Stmt.if_
          Expr.(var "r" != int 0)
          [ Stmt.forward Expr.(var "r" - int 1) ]
          [ Stmt.call "ft" "put" [ Expr.var "h" ]; Stmt.drop ];
      ]

let test_analysis_mode () =
  let packet = Net.Packet.create 64 in
  let run engine =
    let meter = Exec.Meter.create ~trace:true (Hw.Model.null ()) in
    let mode = Exec.Interp.Analysis [ 3; 0 ] in
    let r =
      match engine with
      | `Interp ->
          Exec.Interp.run ~meter ~mode ~in_port:1 ~now:5 analysis_program
            packet
      | `Compiled ->
          Exec.Compiled.run
            (Exec.Compiled.compile analysis_program)
            ~meter ~mode ~in_port:1 ~now:5 packet
    in
    (r, Exec.Meter.events meter)
  in
  let (ra, ea) = run `Interp and (rb, eb) = run `Compiled in
  check_bool "analysis run equal" true (ra = rb);
  check_bool "analysis events equal" true (ea = eb)

(* Stuck parity: same message, same charges up to the raise. *)
let run_stuck program packet engine =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let mode = Exec.Interp.Production [] in
  let result =
    match
      match engine with
      | `Interp -> Exec.Interp.run ~meter ~mode program packet
      | `Compiled ->
          Exec.Compiled.run (Exec.Compiled.compile program) ~meter ~mode packet
    with
    | (_ : Exec.Interp.run) -> "no-stuck"
    | exception Exec.Interp.Stuck msg -> msg
  in
  (result, Exec.Meter.ic meter, Exec.Meter.ma meter)

let check_stuck_parity name program =
  let packet = Net.Packet.create 64 in
  let msg_i, ic_i, ma_i = run_stuck program (Net.Packet.copy packet) `Interp in
  let msg_c, ic_c, ma_c =
    run_stuck program (Net.Packet.copy packet) `Compiled
  in
  check_string (name ^ " message") msg_i msg_c;
  check_bool (name ^ " stuck at all") true (msg_i <> "no-stuck");
  check_int (name ^ " ic") ic_i ic_c;
  check_int (name ^ " ma") ma_i ma_c

let test_stuck_parity () =
  let open Ir in
  check_stuck_parity "folded division by zero"
    (Program.make ~name:"divz" ~state:[]
       [ Stmt.assign "x" Expr.(int 1 / int 0); Stmt.drop ]);
  check_stuck_parity "dynamic division by zero"
    (Program.make ~name:"divz_dyn" ~state:[]
       [
         Stmt.assign "z" Expr.(load8 (int 0));
         Stmt.assign "x" Expr.(int 1 / var "z");
         Stmt.drop;
       ]);
  check_stuck_parity "negative packet offset"
    (Program.make ~name:"negoff" ~state:[]
       [ Stmt.assign "x" (Expr.load8 Expr.(int 0 - int 4)); Stmt.drop ]);
  check_stuck_parity "out-of-bounds load"
    (Program.make ~name:"oob" ~state:[]
       [ Stmt.assign "x" (Expr.load32 (Expr.int 2000)); Stmt.drop ]);
  check_stuck_parity "out-of-bounds store"
    (Program.make ~name:"oob_store" ~state:[]
       [ Stmt.store16 (Expr.int 63) (Expr.int 7); Stmt.drop ]);
  check_stuck_parity "unroll bound exceeded"
    (Program.make ~name:"bound" ~state:[]
       [
         Stmt.assign "i" (Expr.int 0);
         Stmt.While
           (Stmt.Unroll 2, Expr.(var "i" < int 100),
            [ Stmt.assign "i" Expr.(var "i" + int 1) ]);
         Stmt.drop;
       ])

(* The compiled form must leave a PCV loop's observation, loop events
   and suppressed interior branches exactly as the interpreter does. *)
let test_pcv_loop_parity () =
  let open Ir in
  let program =
    Program.make ~name:"pcv_walk" ~state:[]
      [
        Stmt.assign "i" (Expr.int 0);
        Stmt.While
          (Stmt.Pcv_loop ("walk", 8), Expr.(var "i" < load8 (int 1)),
           [
             Stmt.if_
               Expr.(var "i" > int 2)
               [ Stmt.assign "i" Expr.(var "i" + int 2) ]
               [ Stmt.assign "i" Expr.(var "i" + int 1) ];
           ]);
        Stmt.forward (Expr.var "i");
      ]
  in
  let packet = Net.Packet.create 64 in
  Net.Packet.set_u8 packet 1 6;
  let run engine =
    let meter = Exec.Meter.create ~trace:true (Hw.Model.null ()) in
    let r =
      match engine with
      | `Interp ->
          Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) program
            (Net.Packet.copy packet)
      | `Compiled ->
          Exec.Compiled.run (Exec.Compiled.compile program) ~meter
            ~mode:(Exec.Interp.Production []) (Net.Packet.copy packet)
    in
    (r, Exec.Meter.events meter, Exec.Meter.observations meter)
  in
  let a = run `Interp and b = run `Compiled in
  check_bool "pcv parity" true (a = b);
  let _, _, obs = a in
  check_bool "pcv observed" true
    (List.exists (fun (p, v) -> p = Perf.Pcv.v "walk" && v > 0) obs)

(* The untraced fast path — deferred charging plus [runner]'s frame
   reuse across a stream — must match the interpreter packet-for-packet
   under both an uncoupled (null) and a coupled (realistic burst-window)
   model; the latter exercises the flush-before-mem discipline. *)
let test_fast_path_parity () =
  List.iter
    (fun (mname, model) ->
      List.iter
        (fun nf ->
          let entry = Nf.Registry.find nf in
          let prng = Workload.Prng.create ~seed:33 in
          let stream = Proptest.Gen_net.stream_for prng ~nf ~packets:40 in
          let replay engine =
            let meter = Exec.Meter.create (model ()) in
            let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
            let mode = Exec.Interp.Production dss in
            let process =
              match engine with
              | `Interp ->
                  fun ~in_port ~now packet ->
                    Exec.Interp.run ~meter ~mode ~in_port ~now
                      entry.Nf.Registry.program packet
              | `Compiled ->
                  let r =
                    Exec.Compiled.runner
                      (Exec.Compiled.compile entry.Nf.Registry.program)
                      ~meter ~mode
                  in
                  fun ~in_port ~now packet -> r ~in_port ~now packet
            in
            List.map
              (fun { Workload.Stream.packet; now; in_port } ->
                Exec.Meter.reset_observations meter;
                let r = process ~in_port ~now (Net.Packet.copy packet) in
                (r, Exec.Meter.observations meter))
              stream
          in
          check_bool
            (Printf.sprintf "%s fast path under %s model" nf mname)
            true
            (replay `Interp = replay `Compiled))
        [ "firewall"; "nat"; "bridge"; "conntrack" ])
    [ ("null", Hw.Model.null); ("realistic", Hw.Model.realistic) ]

let test_batch_parity () =
  let entry = Nf.Registry.find "firewall" in
  let prng = Workload.Prng.create ~seed:9 in
  let stream = Proptest.Gen_net.stream_for prng ~nf:"firewall" ~packets:16 in
  let batch_of s =
    List.map
      (fun { Workload.Stream.packet; now; in_port } ->
        (Net.Packet.copy packet, in_port, now))
      s
  in
  let run engine =
    let meter = Exec.Meter.create (Hw.Model.realistic ()) in
    let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
    let runs =
      match engine with
      | `Interp ->
          Exec.Interp.run_batch ~meter ~mode:(Exec.Interp.Production dss)
            entry.Nf.Registry.program (batch_of stream)
      | `Compiled ->
          Exec.Compiled.run_batch
            (Exec.Compiled.compile entry.Nf.Registry.program)
            ~meter ~mode:(Exec.Interp.Production dss) (batch_of stream)
    in
    (runs, Exec.Meter.ic meter, Exec.Meter.ma meter, Exec.Meter.cycles meter)
  in
  check_bool "batch parity" true (run `Interp = run `Compiled)

let suite =
  [
    Alcotest.test_case "golden vs interp, all NFs, jobs 1" `Slow
      (test_golden_all_nfs ~jobs:1);
    Alcotest.test_case "golden vs interp, all NFs, jobs 4" `Slow
      (test_golden_all_nfs ~jobs:4);
    Alcotest.test_case "analysis-mode parity" `Quick test_analysis_mode;
    Alcotest.test_case "stuck parity" `Quick test_stuck_parity;
    Alcotest.test_case "pcv loop parity" `Quick test_pcv_loop_parity;
    Alcotest.test_case "fast path parity (null + realistic)" `Quick
      test_fast_path_parity;
    Alcotest.test_case "run_batch parity" `Quick test_batch_parity;
  ]
