(* Tests for the extension features: JSON interchange, throughput floors,
   N-ary chains, token-bucket policer, and the ablation switches. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let quiet () = Exec.Meter.create (Hw.Model.null ())
let no_contracts = Perf.Ds_contract.library []

let analyze program contracts =
  Bolt.Pipeline.analyze
    ~config:Bolt.Pipeline.Config.(default |> with_contracts contracts)
    program

(* ---- JSON ---------------------------------------------------------------- *)

let test_json_roundtrip_values () =
  let examples =
    Perf.Json.
      [
        Null;
        Bool true;
        Int (-42);
        String "hello \"quoted\" \\ world\nline";
        List [ Int 1; Int 2; List [] ];
        Obj [ ("a", Int 1); ("b", Obj [ ("nested", Bool false) ]) ];
      ]
  in
  List.iter
    (fun v ->
      let s = Perf.Json.to_string v in
      match Perf.Json.of_string s with
      | Ok v' -> check_bool ("roundtrip " ^ s) true (v = v')
      | Error msg -> Alcotest.fail msg)
    examples;
  (* indent mode parses back too *)
  let v = Perf.Json.Obj [ ("xs", Perf.Json.List [ Perf.Json.Int 7 ]) ] in
  check_bool "indented roundtrip" true
    (Perf.Json.of_string (Perf.Json.to_string ~indent:true v) = Ok v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Perf.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted " ^ s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let prop_json_string_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"json string escaping roundtrips"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '~') (int_range 0 30))
    (fun s ->
      match Perf.Json.of_string (Perf.Json.to_string (Perf.Json.String s)) with
      | Ok (Perf.Json.String s') -> s = s'
      | _ -> false)

let test_contract_json_roundtrip () =
  let t = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  let contract = Bolt.Pipeline.contract t ~classes:(Nf.Nat.classes ()) in
  match
    Perf.Contract_io.contract_of_string
      (Perf.Contract_io.contract_to_string ~indent:true contract)
  with
  | Error msg -> Alcotest.fail msg
  | Ok back ->
      check_string "nf name" contract.Perf.Contract.nf back.Perf.Contract.nf;
      List.iter2
        (fun (a : Perf.Contract.entry) (b : Perf.Contract.entry) ->
          check_string "class" a.Perf.Contract.class_name
            b.Perf.Contract.class_name;
          check_bool "cost preserved" true
            (Perf.Cost_vec.equal a.Perf.Contract.cost b.Perf.Contract.cost))
        contract.Perf.Contract.entries back.Perf.Contract.entries

let ( let* ) = Perf.Json.( let* )

let test_ds_contract_json_roundtrip () =
  List.iter
    (fun dsc ->
      match
        let json = Perf.Contract_io.ds_contract_to_json dsc in
        let* parsed = Perf.Json.of_string (Perf.Json.to_string json) in
        Perf.Contract_io.ds_contract_of_json parsed
      with
      | Ok back ->
          check_string "kind" dsc.Perf.Ds_contract.ds_kind
            back.Perf.Ds_contract.ds_kind;
          check_int "branches"
            (List.length dsc.Perf.Ds_contract.branches)
            (List.length back.Perf.Ds_contract.branches)
      | Error msg -> Alcotest.fail msg)
    (Dslib.Flow_table.Recipe.contract ~key_len:5 ()
    @ Dslib.Token_bucket.Recipe.contract)

let prop_expr_json_roundtrip =
  let gen_expr =
    QCheck2.Gen.(
      list_size (int_range 0 5)
        (pair (int_range 0 500)
           (list_size (int_range 0 3)
              (oneofl Perf.Pcv.[ expired; collisions; traversals ])))
      >|= fun terms ->
      Perf.Perf_expr.sum
        (List.map (fun (k, vs) -> Perf.Perf_expr.term k vs) terms))
  in
  QCheck2.Test.make ~count:200 ~name:"perf_expr json roundtrip" gen_expr
    (fun expr ->
      match
        Perf.Contract_io.expr_of_json (Perf.Contract_io.expr_to_json expr)
      with
      | Ok back -> Perf.Perf_expr.equal expr back
      | Error _ -> false)

(* ---- Token bucket / policer ---------------------------------------------- *)

let test_token_bucket_semantics () =
  let tb =
    Dslib.Token_bucket.create ~base:0x6000_0000 ~rate:10 ~burst:100 ~now:0 ()
  in
  check_int "starts full" 100 (Dslib.Token_bucket.tokens tb ~now:0);
  check_int "conforms" 1 (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:60 ~now:0);
  check_int "drained" 40 (Dslib.Token_bucket.tokens tb ~now:0);
  check_int "exceeds" 0 (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:60 ~now:0);
  (* refill at 10/unit: after 3 units there are 70 tokens *)
  check_int "refills" 70 (Dslib.Token_bucket.tokens tb ~now:3);
  check_int "conforms again" 1
    (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:60 ~now:3);
  (* never exceeds burst *)
  check_int "capped" 100 (Dslib.Token_bucket.tokens tb ~now:1_000_000)

let test_token_bucket_contract_dominates () =
  let tb =
    Dslib.Token_bucket.create ~base:0x6100_0000 ~rate:5 ~burst:200 ~now:0 ()
  in
  let contract =
    Perf.Ds_contract.library Dslib.Token_bucket.Recipe.contract
  in
  let c = Perf.Ds_contract.find_exn contract ~ds_kind:"token_bucket"
      ~meth:"conform" in
  for i = 1 to 50 do
    let meter = Exec.Meter.create (Hw.Model.conservative ()) in
    let r = Dslib.Token_bucket.conform tb meter ~bytes:60 ~now:(i * 4) in
    let tag = if r = 1 then "conform" else "exceed" in
    let branch = Perf.Ds_contract.find_branch_exn c ~tag in
    let bound m = Perf.Cost_vec.eval_exn [] branch.Perf.Ds_contract.cost m in
    check_bool "ic bound" true (bound Perf.Metric.Instructions >= Exec.Meter.ic meter);
    check_bool "ma bound" true
      (bound Perf.Metric.Memory_accesses >= Exec.Meter.ma meter);
    check_bool "cycles bound" true
      (bound Perf.Metric.Cycles >= Exec.Meter.cycles meter)
  done

let test_token_bucket_refill_edges () =
  (* zero-elapsed clock: same [now] must not refill anything *)
  let tb =
    Dslib.Token_bucket.create ~base:0x6200_0000 ~rate:10 ~burst:100 ~now:0 ()
  in
  check_int "spend" 1 (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:60 ~now:5);
  check_int "no refill at same now" 40 (Dslib.Token_bucket.tokens tb ~now:5);
  check_int "zero-elapsed excess" 0
    (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:60 ~now:5);
  (* a clock that goes backwards is ignored, not a negative refill *)
  check_int "backwards clock ignored" 40 (Dslib.Token_bucket.tokens tb ~now:3);
  (* burst saturation: the level caps exactly at burst, never beyond *)
  check_int "saturates at burst" 100 (Dslib.Token_bucket.tokens tb ~now:500);
  check_int "stays at burst" 100 (Dslib.Token_bucket.tokens tb ~now:501);
  (* exact conformance boundary: bytes = tokens conforms and empties the
     bucket; one more byte is out of profile *)
  let tb2 =
    Dslib.Token_bucket.create ~base:0x6300_0000 ~rate:1 ~burst:64 ~now:0 ()
  in
  check_int "tokens = bytes conforms" 1
    (Dslib.Token_bucket.conform tb2 (quiet ()) ~bytes:64 ~now:0);
  check_int "emptied exactly" 0 (Dslib.Token_bucket.tokens tb2 ~now:0);
  check_int "one byte over is excess" 0
    (Dslib.Token_bucket.conform tb2 (quiet ()) ~bytes:1 ~now:0);
  check_int "one token, one byte" 1
    (Dslib.Token_bucket.conform tb2 (quiet ()) ~bytes:1 ~now:1)

let test_token_bucket_huge_delta_no_overflow () =
  (* pathological clock jumps: [rate * delta] would overflow 63-bit
     arithmetic without the refill clamp; the level must land exactly on
     [burst] and stay usable *)
  let rate = 1_000_003 and burst = 5_000_000 in
  let tb =
    Dslib.Token_bucket.create ~base:0x6400_0000 ~rate ~burst ~now:0 ()
  in
  ignore (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:burst ~now:0);
  check_int "drained" 0 (Dslib.Token_bucket.tokens tb ~now:0);
  let huge = 1 lsl 45 in
  check_int "clamped to burst, no overflow" burst
    (Dslib.Token_bucket.tokens tb ~now:huge);
  check_int "still conforms after the jump" 1
    (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:burst ~now:huge);
  (* a second jump from a non-zero level must clamp identically *)
  check_int "second jump clamps too" burst
    (Dslib.Token_bucket.tokens tb ~now:(2 * huge))

let test_policer_pipeline () =
  let t = analyze Nf.Policer.program (Nf.Policer.contracts ()) in
  check_int "all solved" 0 t.Bolt.Pipeline.unsolved;
  let contract = Bolt.Pipeline.contract t ~classes:(Nf.Policer.classes ()) in
  let at name =
    Result.get_ok
      (Perf.Contract.predict contract ~class_name:name []
         Perf.Metric.Instructions)
  in
  check_bool "conformant costliest" true (at "Conformant" > at "Out of profile");
  check_bool "invalid cheapest" true (at "Invalid" < at "Out of profile")

let test_policer_production () =
  let dss, _ =
    Nf.Policer.setup
      ~config:{ Nf.Policer.rate = 1; burst = 100 }
      (Dslib.Layout.allocator ())
  in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let pkt () = Net.Build.udp ~src_ip:1 ~dst_ip:2 ~src_port:3 ~dst_port:4 () in
  let run now =
    (Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~now
       Nf.Policer.program (pkt ()))
      .Exec.Interp.outcome
  in
  check_bool "first conforms" true (run 0 = Exec.Interp.Sent 0);
  (* 60-byte packets against a 100-token bucket at 1/us: the second
     back-to-back packet is out of profile *)
  check_bool "second dropped" true (run 1 = Exec.Interp.Dropped);
  check_bool "recovers" true (run 200 = Exec.Interp.Sent 0)

(* ---- Throughput ------------------------------------------------------------ *)

let test_throughput_bounds () =
  let t = analyze Nf.Router_lpm.program (Nf.Router_lpm.contracts ()) in
  let classes = Nf.Router_lpm.classes () in
  let bounds = Bolt.Throughput.of_classes ~freq_hz:3_300_000_000 t classes in
  check_int "one bound per class" (List.length classes) (List.length bounds);
  List.iter
    (fun (b : Bolt.Throughput.bound) ->
      check_bool "positive pps" true (b.Bolt.Throughput.min_pps > 0.))
    bounds;
  (* batching can only help *)
  let batched =
    Bolt.Throughput.of_classes ~freq_hz:3_300_000_000 ~batch:32 t classes
  in
  List.iter2
    (fun (a : Bolt.Throughput.bound) (b : Bolt.Throughput.bound) ->
      check_bool "amortisation helps" true
        (b.Bolt.Throughput.min_pps >= a.Bolt.Throughput.min_pps))
    bounds batched;
  check_bool "framing cost positive" true (Bolt.Throughput.framing_cycles > 0)

(* ---- N-ary chains ----------------------------------------------------------- *)

let test_chain3 () =
  let stages =
    [
      { Bolt.Compose.program = Nf.Firewall.program; contracts = no_contracts };
      { Bolt.Compose.program = Nf.Policer.program;
        contracts = Nf.Policer.contracts () };
      { Bolt.Compose.program = Nf.Static_router.program;
        contracts = no_contracts };
    ]
  in
  let chain = Bolt.Compose.analyze_chain ~models:Bolt.Ds_models.default stages in
  check_int "all tuples solved" 0 chain.Bolt.Compose.chain_unsolved;
  check_bool "tuples exist" true (chain.Bolt.Compose.tuples <> []);
  (* some tuple traverses all three NFs, some die at the firewall *)
  let lengths =
    List.map
      (fun t -> List.length t.Bolt.Compose.segments)
      chain.Bolt.Compose.tuples
  in
  check_bool "full traversals" true (List.mem 3 lengths);
  check_bool "early drops" true (List.mem 1 lengths);
  (* joint bound tighter than adding the three worst cases *)
  let naive =
    Perf.Cost_vec.sum
      [
        Bolt.Pipeline.worst_case (analyze Nf.Firewall.program no_contracts);
        Bolt.Pipeline.worst_case
          (analyze Nf.Policer.program (Nf.Policer.contracts ()));
        Bolt.Pipeline.worst_case (analyze Nf.Static_router.program no_contracts);
      ]
  in
  let binding = [ (Perf.Pcv.ip_options, 3) ] in
  let ic v =
    Perf.Perf_expr.eval_exn binding
      (Perf.Cost_vec.get v Perf.Metric.Instructions)
  in
  check_bool "joint < naive" true
    (ic (Bolt.Compose.chain_worst chain) < ic naive)

(* ---- Ablation switches ------------------------------------------------------- *)

let test_dram_only_dominates_conservative () =
  let with_l1 = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  let without =
    Bolt.Pipeline.analyze
      ~config:
        Bolt.Pipeline.Config.(
          default
          |> with_contracts (Nf.Nat.contracts ())
          |> with_cycle_model Hw.Model.dram_only)
      Nf.Nat.program
  in
  List.iter
    (fun cls ->
      match
        ( Bolt.Pipeline.predict with_l1 cls Perf.Metric.Cycles,
          Bolt.Pipeline.predict without cls Perf.Metric.Cycles )
      with
      | Ok a, Ok b -> check_bool "dram_only is looser" true (b >= a)
      | _ -> Alcotest.fail "unbound PCV")
    (Nf.Nat.classes ())

let test_linearization_flag_restores () =
  check_bool "default on" true !Symbex.Value.exact_linearization;
  (try
     Symbex.Value.with_linearization false (fun () ->
         check_bool "off inside" false !Symbex.Value.exact_linearization;
         failwith "boom")
   with Failure _ -> ());
  check_bool "restored after exception" true !Symbex.Value.exact_linearization

let suite =
  [
    Alcotest.test_case "json value roundtrips" `Quick
      test_json_roundtrip_values;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "contract json roundtrip" `Slow
      test_contract_json_roundtrip;
    Alcotest.test_case "ds contract json roundtrip" `Quick
      test_ds_contract_json_roundtrip;
    Alcotest.test_case "token bucket semantics" `Quick
      test_token_bucket_semantics;
    Alcotest.test_case "token bucket contract" `Quick
      test_token_bucket_contract_dominates;
    Alcotest.test_case "token bucket refill edges" `Quick
      test_token_bucket_refill_edges;
    Alcotest.test_case "token bucket huge clock jumps" `Quick
      test_token_bucket_huge_delta_no_overflow;
    Alcotest.test_case "policer pipeline" `Quick test_policer_pipeline;
    Alcotest.test_case "policer production" `Quick test_policer_production;
    Alcotest.test_case "throughput bounds" `Quick test_throughput_bounds;
    Alcotest.test_case "three-NF chain" `Slow test_chain3;
    Alcotest.test_case "dram_only ablation dominates" `Slow
      test_dram_only_dominates_conservative;
    Alcotest.test_case "linearization flag" `Quick
      test_linearization_flag_restores;
    QCheck_alcotest.to_alcotest prop_json_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_json_roundtrip;
  ]
