(* Tests for the stateful data-structure library, including the
   contract-validation properties: for arbitrary operation sequences, the
   expert-written contract evaluated at the observed PCVs must dominate
   the metered cost of every operation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let quiet () = Exec.Meter.create (Hw.Model.null ())
let fresh_base = let next = ref 0x4000_0000 in
  fun () -> let b = !next in next := b + 0x100_0000; b

(* Measure one operation: returns (result, ic, ma, cycles, c, t) using a
   conservative model so cycles are comparable to contract cycles. *)
let metered f =
  let meter = Exec.Meter.create (Hw.Model.conservative ()) in
  let r = f meter in
  ( r,
    Exec.Meter.ic meter,
    Exec.Meter.ma meter,
    Exec.Meter.cycles meter,
    Exec.Meter.pcv_max meter )

let dominates_measured ~what (cost : Perf.Cost_vec.t) ~binding ~ic ~ma
    ~cycles =
  let ev m = Perf.Cost_vec.eval_exn binding cost m in
  let p_ic = ev Perf.Metric.Instructions in
  let p_ma = ev Perf.Metric.Memory_accesses in
  let p_cy = ev Perf.Metric.Cycles in
  if p_ic < ic || p_ma < ma || p_cy < cycles then
    Alcotest.fail
      (Printf.sprintf
         "%s: contract (%d,%d,%d) under-approximates measured (%d,%d,%d) at %s"
         what p_ic p_ma p_cy ic ma cycles
         (Fmt.to_to_string Perf.Pcv.pp_binding binding))

let full_binding binding =
  (* contracts may mention PCVs the op did not observe; bind them to 0 *)
  let add pcv b = if Perf.Pcv.lookup b pcv = None then (pcv, 0) :: b else b in
  Perf.Pcv.[ expired; collisions; traversals; occupancy; scan ]
  |> List.fold_left (fun b p -> add p b) binding

(* ---- Hash map ---------------------------------------------------------- *)

let test_hash_map_semantics () =
  let m = Dslib.Hash_map.create ~base:(fresh_base ()) ~key_len:2
      ~capacity:8 ~buckets:4 () in
  let k1 = [| 1; 2 |] and k2 = [| 3; 4 |] in
  check_int "miss" (-1) (Dslib.Hash_map.get m (quiet ()) k1).Dslib.Hash_map.result;
  let p1 = Dslib.Hash_map.put m (quiet ()) k1 100 in
  check_bool "inserted" true (p1.Dslib.Hash_map.result >= 0);
  check_int "size" 1 (Dslib.Hash_map.size m);
  let g = Dslib.Hash_map.get m (quiet ()) k1 in
  check_int "value" 100
    (Dslib.Hash_map.value_of m (quiet ()) g.Dslib.Hash_map.result);
  (* update in place *)
  let p1' = Dslib.Hash_map.put m (quiet ()) k1 200 in
  check_int "same node" p1.Dslib.Hash_map.result p1'.Dslib.Hash_map.result;
  check_int "size unchanged" 1 (Dslib.Hash_map.size m);
  ignore (Dslib.Hash_map.put m (quiet ()) k2 7);
  let r = Dslib.Hash_map.remove m (quiet ()) k1 in
  check_bool "removed" true (r.Dslib.Hash_map.result >= 0);
  check_int "miss after remove" (-1)
    (Dslib.Hash_map.get m (quiet ()) k1).Dslib.Hash_map.result;
  check_int "k2 intact" 7
    (Dslib.Hash_map.value_of m (quiet ())
       (Dslib.Hash_map.get m (quiet ()) k2).Dslib.Hash_map.result)

let test_hash_map_full () =
  let m = Dslib.Hash_map.create ~base:(fresh_base ()) ~key_len:1
      ~capacity:2 ~buckets:2 () in
  ignore (Dslib.Hash_map.put m (quiet ()) [| 1 |] 1);
  ignore (Dslib.Hash_map.put m (quiet ()) [| 2 |] 2);
  check_int "full" (-1) (Dslib.Hash_map.put m (quiet ()) [| 3 |] 3).Dslib.Hash_map.result;
  (* remove then reinsert reuses the slot *)
  ignore (Dslib.Hash_map.remove m (quiet ()) [| 1 |]);
  check_bool "reusable" true
    ((Dslib.Hash_map.put m (quiet ()) [| 3 |] 3).Dslib.Hash_map.result >= 0)

let test_hash_map_collisions () =
  let m = Dslib.Hash_map.create ~base:(fresh_base ()) ~key_len:1
      ~capacity:16 ~buckets:4 () in
  (* force three keys into one bucket *)
  let bucket = Dslib.Hash_map.hash_of_key m [| 0 |] in
  let colliding = ref [] in
  let k = ref 0 in
  while List.length !colliding < 3 do
    if Dslib.Hash_map.hash_of_key m [| !k |] = bucket then
      colliding := [| !k |] :: !colliding;
    incr k
  done;
  List.iter (fun key -> ignore (Dslib.Hash_map.put m (quiet ()) key 1)) !colliding;
  (* inserts push at the chain head, so the first-inserted key (the list
     head) sits at the chain tail *)
  let oldest = List.nth !colliding 0 in
  let probe = Dslib.Hash_map.get m (quiet ()) oldest in
  check_int "walked the chain" 3 probe.Dslib.Hash_map.traversals;
  check_int "collisions en route" 2 probe.Dslib.Hash_map.collisions

let test_hash_map_reseed () =
  let m = Dslib.Hash_map.create ~base:(fresh_base ()) ~key_len:1
      ~capacity:32 ~buckets:8 () in
  for i = 1 to 20 do
    ignore (Dslib.Hash_map.put m (quiet ()) [| i * 7 |] i)
  done;
  Dslib.Hash_map.reseed m (quiet ()) ~seed:991;
  check_int "size preserved" 20 (Dslib.Hash_map.size m);
  for i = 1 to 20 do
    let g = Dslib.Hash_map.get m (quiet ()) [| i * 7 |] in
    check_int "value preserved" i
      (Dslib.Hash_map.value_of m (quiet ()) g.Dslib.Hash_map.result)
  done

(* qcheck: contract domination for random hash-map op sequences *)
let prop_hash_map_contract =
  let key_len = 3 in
  QCheck2.Test.make ~count:60 ~name:"hash_map contracts dominate metered cost"
    QCheck2.Gen.(list_size (int_range 1 60)
                   (pair (int_range 0 2) (int_range 0 9)))
    (fun ops ->
      let m = Dslib.Hash_map.create ~base:(fresh_base ()) ~key_len
          ~capacity:16 ~buckets:4 () in
      List.iter
        (fun (op, kv) ->
          let key = [| kv; kv + 1; kv * 3 |] in
          match op with
          | 0 ->
              let probe, ic, ma, cy, binding =
                metered (fun meter -> Dslib.Hash_map.get m meter key)
              in
              let recipe =
                if probe.Dslib.Hash_map.result >= 0 then
                  Dslib.Hash_map.Recipe.get_hit ~key_len
                else Dslib.Hash_map.Recipe.get_miss ~key_len
              in
              (* the +1 IC/MA slack of get_hit covers the caller's
                 value read, which this raw test does not perform *)
              dominates_measured ~what:"get" recipe
                ~binding:(full_binding binding) ~ic ~ma ~cycles:cy
          | 1 ->
              let probe, ic, ma, cy, binding =
                metered (fun meter -> Dslib.Hash_map.put m meter key kv)
              in
              let recipe =
                if probe.Dslib.Hash_map.result < 0 then
                  Dslib.Hash_map.Recipe.put_full ~key_len
                else Dslib.Hash_map.Recipe.put_new ~key_len
              in
              (* put_new dominates put_update, so we use it for both *)
              dominates_measured ~what:"put" recipe
                ~binding:(full_binding binding) ~ic ~ma ~cycles:cy
          | _ ->
              let probe, ic, ma, cy, binding =
                metered (fun meter -> Dslib.Hash_map.remove m meter key)
              in
              if probe.Dslib.Hash_map.result >= 0 then
                dominates_measured ~what:"remove"
                  (Dslib.Hash_map.Recipe.remove_found ~key_len)
                  ~binding:(full_binding binding) ~ic ~ma ~cycles:cy)
        ops;
      true)

(* ---- Flow table -------------------------------------------------------- *)

let flow_table ?(timeout = 1000) ?granularity ?on_expire () =
  Dslib.Flow_table.create ~base:(fresh_base ()) ~key_len:2 ~capacity:16
    ~buckets:8 ~timeout ?granularity ?on_expire ()

let test_flow_table_expiry_order () =
  let ft = flow_table () in
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 1; 1 |] ~value:1 ~now:100);
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 2; 2 |] ~value:2 ~now:200);
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 3; 3 |] ~value:3 ~now:300);
  (* refresh the oldest: it moves to the back of the expiry queue *)
  ignore (Dslib.Flow_table.get ft (quiet ()) [| 1; 1 |] ~now:400);
  check_int "two expire" 2 (Dslib.Flow_table.expire ft (quiet ()) ~now:1350);
  check_bool "refreshed survives" true
    (Dslib.Flow_table.mem_quiet ft [| 1; 1 |]);
  check_bool "stale gone" false (Dslib.Flow_table.mem_quiet ft [| 2; 2 |])

let test_flow_table_granularity_batching () =
  (* second-granularity timestamps batch expirations (the VigNAT bug) *)
  let ft = flow_table ~timeout:1_000_000 ~granularity:1_000_000 () in
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 1; 0 |] ~value:1 ~now:1_000_100);
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 2; 0 |] ~value:2 ~now:1_900_000);
  (* both were stamped at 1_000_000, so both expire together *)
  check_int "batched" 2
    (Dslib.Flow_table.expire ft (quiet ()) ~now:2_000_001);
  let ft = flow_table ~timeout:1_000_000 ~granularity:1_000 () in
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 1; 0 |] ~value:1 ~now:1_000_100);
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 2; 0 |] ~value:2 ~now:1_900_000);
  check_int "not batched" 1
    (Dslib.Flow_table.expire ft (quiet ()) ~now:2_000_001)

let test_flow_table_update_keeps_lru_sane () =
  (* regression: put on an existing key must re-queue, not double-link
     (found by the maglev per-packet soundness property) *)
  let ft = flow_table () in
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 1; 1 |] ~value:1 ~now:100);
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 2; 2 |] ~value:2 ~now:200);
  (* update the older entry: it must move behind [2;2] in expiry order *)
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 1; 1 |] ~value:9 ~now:300);
  check_int "size unchanged" 2 (Dslib.Flow_table.size ft);
  check_int "value updated" 9
    (Option.get (Dslib.Flow_table.get ft (quiet ()) [| 1; 1 |] ~now:310));
  let order = Dslib.Flow_table.oldest_first ft in
  check_int "lru list intact" 2 (List.length order);
  (* expire everything: must terminate and count correctly *)
  check_int "mass expiry sane" 2
    (Dslib.Flow_table.expire ft (quiet ()) ~now:1_000_000);
  check_int "empty after" 0 (Dslib.Flow_table.size ft)

let test_flow_table_on_expire () =
  let freed = ref [] in
  let ft =
    flow_table ~on_expire:(fun _ ~value -> freed := value :: !freed) ()
  in
  ignore (Dslib.Flow_table.put ft (quiet ()) [| 1; 1 |] ~value:42 ~now:0);
  ignore (Dslib.Flow_table.expire ft (quiet ()) ~now:5000);
  check_bool "callback ran" true (!freed = [ 42 ])

let prop_flow_table_expire_contract =
  QCheck2.Test.make ~count:40
    ~name:"flow_table expire contract dominates metered cost"
    QCheck2.Gen.(int_range 0 14)
    (fun n ->
      let ft = flow_table () in
      for i = 1 to n do
        ignore (Dslib.Flow_table.put ft (quiet ()) [| i; i |] ~value:i ~now:0)
      done;
      let count, ic, ma, cy, binding =
        metered (fun meter -> Dslib.Flow_table.expire ft meter ~now:100_000)
      in
      if count <> n then Alcotest.fail "wrong expiry count";
      dominates_measured ~what:"expire"
        (Dslib.Flow_table.Recipe.expire ~key_len:2
           ~per_entry_extra:Perf.Cost_vec.zero)
        ~binding:(full_binding binding) ~ic ~ma ~cycles:cy;
      true)

(* ---- MAC table ---------------------------------------------------------- *)

let mac_table ?(threshold = 3) ?(buckets = 4) ?(capacity = 32) () =
  Dslib.Mac_table.create ~base:(fresh_base ()) ~capacity ~buckets
    ~timeout:1_000_000 ~threshold ()

let test_mac_table_learn_lookup () =
  let t = mac_table () in
  Dslib.Mac_table.learn t (quiet ()) ~mac:0xaa ~port:2 ~now:0;
  check_int "lookup" 2 (Dslib.Mac_table.lookup t (quiet ()) ~mac:0xaa);
  check_int "unknown" (-1) (Dslib.Mac_table.lookup t (quiet ()) ~mac:0xbb);
  (* station moved: port updates *)
  Dslib.Mac_table.learn t (quiet ()) ~mac:0xaa ~port:5 ~now:10;
  check_int "moved" 5 (Dslib.Mac_table.lookup t (quiet ()) ~mac:0xaa)

let test_mac_table_rehash_defence () =
  let t = mac_table ~threshold:3 ~buckets:4 () in
  (* feed colliding MACs until the probe exceeds the threshold *)
  let bucket = Dslib.Mac_table.hash_of_mac t 0 in
  let colliding = ref [] in
  let m = ref 1 in
  while List.length !colliding < 6 do
    if Dslib.Mac_table.hash_of_mac t !m = bucket then
      colliding := !m :: !colliding;
    incr m
  done;
  List.iter
    (fun mac -> Dslib.Mac_table.learn t (quiet ()) ~mac ~port:1 ~now:0)
    !colliding;
  check_bool "defence fired" true (Dslib.Mac_table.rehash_count t > 0);
  (* all entries survive the rehash *)
  List.iter
    (fun mac ->
      check_int "entry survived" 1 (Dslib.Mac_table.lookup t (quiet ()) ~mac))
    !colliding

let test_mac_table_contract_rehash () =
  let buckets = 4 and capacity = 32 in
  let t = mac_table ~threshold:2 ~buckets ~capacity () in
  let contract_lib =
    Perf.Ds_contract.library
      (Dslib.Mac_table.Recipe.contract ~buckets ~capacity)
  in
  let learn_contract =
    Perf.Ds_contract.find_exn contract_lib ~ds_kind:"mac_table" ~meth:"learn"
  in
  let bucket = Dslib.Mac_table.hash_of_mac t 0 in
  let m = ref 1 in
  let seen_rehash = ref false in
  while not !seen_rehash && !m < 1_000_000 do
    if Dslib.Mac_table.hash_of_mac t !m = bucket then begin
      let rehashes_before = Dslib.Mac_table.rehash_count t in
      let (), ic, ma, cy, binding =
        metered (fun meter ->
            Dslib.Mac_table.learn t meter ~mac:!m ~port:1 ~now:0)
      in
      if Dslib.Mac_table.rehash_count t > rehashes_before then begin
        seen_rehash := true;
        let branch =
          Perf.Ds_contract.find_branch_exn learn_contract ~tag:"rehash"
        in
        let binding =
          (Perf.Pcv.occupancy, Dslib.Mac_table.size t) :: binding
        in
        dominates_measured ~what:"learn+rehash" branch.Perf.Ds_contract.cost
          ~binding:(full_binding binding) ~ic ~ma ~cycles:cy
      end
    end;
    incr m
  done;
  check_bool "exercised a rehash" true !seen_rehash

let test_mac_table_rehash_cliff_high_occupancy () =
  (* the Table 4 cliff at its worst reachable state: a table filled to
     capacity into ONE bucket (adversarial synthesis), then one more
     learn walks the full chain, trips the defence and rehashes every
     entry.  The golden contract's rehash branch — the worst-case row —
     must bound the metered cost of that whole storm. *)
  let buckets = 4 and capacity = 24 in
  let t = mac_table ~threshold:2 ~buckets ~capacity () in
  Workload.Adversarial.fill_mac_table_collided t
    (Workload.Prng.create ~seed:13)
    ~port:1 ~stamped_at:0;
  check_int "synthesized at capacity" capacity (Dslib.Mac_table.size t);
  let contract_lib =
    Perf.Ds_contract.library
      (Dslib.Mac_table.Recipe.contract ~buckets ~capacity)
  in
  let learn_contract =
    Perf.Ds_contract.find_exn contract_lib ~ds_kind:"mac_table" ~meth:"learn"
  in
  (* a fresh mac aimed at the synthesized chain's bucket (the fill
     targets bucket 0): the miss probe walks the whole chain, crosses
     the threshold and trips the defence even though the table is full *)
  let m = ref 0 in
  while
    Dslib.Mac_table.hash_of_mac t !m <> 0
    || Dslib.Mac_table.lookup t (quiet ()) ~mac:!m >= 0
  do
    incr m
  done;
  let before = Dslib.Mac_table.rehash_count t in
  let (), ic, ma, cy, binding =
    metered (fun meter -> Dslib.Mac_table.learn t meter ~mac:!m ~port:2 ~now:0)
  in
  check_bool "crossed the growth threshold" true
    (Dslib.Mac_table.rehash_count t > before);
  let size = Dslib.Mac_table.size t in
  (* the reseed walks chains the meter does not observe as traversals of
     this learn, but occupancy bounds any chain it can meet *)
  let obs_t =
    Option.value ~default:0 (Perf.Pcv.lookup binding Perf.Pcv.traversals)
  in
  let binding =
    (Perf.Pcv.occupancy, size)
    :: (Perf.Pcv.traversals, max obs_t size)
    :: binding
  in
  let branch = Perf.Ds_contract.find_branch_exn learn_contract ~tag:"rehash" in
  dominates_measured ~what:"rehash cliff at capacity"
    branch.Perf.Ds_contract.cost
    ~binding:(full_binding binding) ~ic ~ma ~cycles:cy;
  dominates_measured ~what:"worst-case row at capacity"
    (Perf.Ds_contract.worst_case learn_contract)
    ~binding:(full_binding binding) ~ic ~ma ~cycles:cy

(* ---- LPM ---------------------------------------------------------------- *)

let test_lpm_dir24_8 () =
  let lpm = Dslib.Lpm_dir24_8.create ~base:(fresh_base ()) ~default_port:0 in
  let ip = Net.Ipv4.addr_of_parts in
  Dslib.Lpm_dir24_8.add_route lpm ~prefix:(ip 10 0 0 0) ~len:16 ~port:1;
  Dslib.Lpm_dir24_8.add_route lpm ~prefix:(ip 10 1 0 0) ~len:24 ~port:2;
  Dslib.Lpm_dir24_8.add_route lpm ~prefix:(ip 10 1 0 128) ~len:25 ~port:3;
  check_int "default" 0 (Dslib.Lpm_dir24_8.lookup_quiet lpm (ip 99 0 0 1));
  check_int "/16" 1 (Dslib.Lpm_dir24_8.lookup_quiet lpm (ip 10 0 200 1));
  check_int "/24" 2 (Dslib.Lpm_dir24_8.lookup_quiet lpm (ip 10 1 0 5));
  check_int "/25 wins" 3 (Dslib.Lpm_dir24_8.lookup_quiet lpm (ip 10 1 0 200));
  check_bool "short path" false (Dslib.Lpm_dir24_8.uses_tbl8 lpm (ip 10 0 200 1));
  check_bool "long path" true (Dslib.Lpm_dir24_8.uses_tbl8 lpm (ip 10 1 0 5))

let test_lpm_trie_matches_dir24_8 () =
  (* differential test: both LPM implementations agree *)
  let rng = Workload.Prng.create ~seed:77 in
  let dir = Dslib.Lpm_dir24_8.create ~base:(fresh_base ()) ~default_port:0 in
  let trie = Dslib.Lpm_trie.create ~base:(fresh_base ()) ~default_port:0 in
  for _ = 1 to 40 do
    let len = Workload.Prng.range rng ~lo:10 ~hi:30 in
    let prefix =
      Workload.Prng.below rng (1 lsl 30) land lnot ((1 lsl (32 - len)) - 1)
    in
    let port = Workload.Prng.range rng ~lo:1 ~hi:250 in
    Dslib.Lpm_dir24_8.add_route dir ~prefix ~len ~port;
    Dslib.Lpm_trie.add_route trie ~prefix ~len ~port
  done;
  for _ = 1 to 500 do
    let ip = Workload.Prng.below rng (1 lsl 32) in
    check_int "same route"
      (Dslib.Lpm_dir24_8.lookup_quiet dir ip)
      (Dslib.Lpm_trie.lookup_quiet trie ip)
  done

let test_lpm_trie_exact_cost () =
  (* Table 2: lookup costs exactly 4l+2 instructions and l+1 accesses *)
  let trie = Dslib.Lpm_trie.create ~base:(fresh_base ()) ~default_port:0 in
  Dslib.Lpm_trie.add_route trie ~prefix:(Net.Ipv4.addr_of_parts 192 168 0 0)
    ~len:16 ~port:9;
  let probe ip =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let port = Dslib.Lpm_trie.lookup trie meter ip in
    (port, Exec.Meter.ic meter, Exec.Meter.ma meter)
  in
  let l = Dslib.Lpm_trie.matched_len trie (Net.Ipv4.addr_of_parts 192 168 3 4) in
  check_int "matched 16 bits" 16 l;
  let port, ic, ma = probe (Net.Ipv4.addr_of_parts 192 168 3 4) in
  check_int "port" 9 port;
  check_int "ic = 4l+2" ((4 * l) + 2) ic;
  check_int "ma = l+1" (l + 1) ma

(* ---- Hash ring / backend pool ------------------------------------------ *)

let test_hash_ring () =
  let ring = Dslib.Hash_ring.create ~base:(fresh_base ()) ~table_size:4099
      ~backends:[ 1; 2; 3; 4; 5 ] in
  (* balanced within ~2x of fair share *)
  List.iter
    (fun b ->
      let share = Dslib.Hash_ring.share ring b in
      check_bool "balanced" true (share > 0.1 && share < 0.4))
    [ 1; 2; 3; 4; 5 ];
  (* deterministic *)
  check_int "deterministic"
    (Dslib.Hash_ring.backend_for_quiet ring 12345)
    (Dslib.Hash_ring.backend_for_quiet ring 12345);
  (* minimal disruption: removing one backend only remaps its slots *)
  let before = List.init 200 (fun h -> Dslib.Hash_ring.backend_for_quiet ring h) in
  Dslib.Hash_ring.rebuild ring ~backends:[ 1; 2; 3; 4 ];
  let after = List.init 200 (fun h -> Dslib.Hash_ring.backend_for_quiet ring h) in
  let moved =
    List.fold_left2
      (fun acc b a -> if b <> a && b <> 5 then acc + 1 else acc)
      0 before after
  in
  check_bool "mostly stable" true (moved < 60);
  (match Dslib.Hash_ring.create ~base:0 ~table_size:4098 ~backends:[ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-prime size accepted")

let test_backend_pool () =
  let pool = Dslib.Backend_pool.create ~base:(fresh_base ()) ~count:4
      ~timeout:1000 in
  check_int "dead initially" 0
    (Dslib.Backend_pool.is_alive pool (quiet ()) ~backend:2 ~now:50);
  ignore (Dslib.Backend_pool.heartbeat pool (quiet ()) ~backend:2 ~now:100);
  check_int "alive" 1
    (Dslib.Backend_pool.is_alive pool (quiet ()) ~backend:2 ~now:1000);
  check_int "times out" 0
    (Dslib.Backend_pool.is_alive pool (quiet ()) ~backend:2 ~now:1200);
  check_int "bad id" 0
    (Dslib.Backend_pool.is_alive pool (quiet ()) ~backend:9 ~now:0)

(* ---- Port allocators ----------------------------------------------------- *)

let test_port_alloc_semantics () =
  List.iter
    (fun make ->
      let a = make ~base:(fresh_base ()) ~port_lo:100 ~port_hi:103 in
      let p1 = Dslib.Port_alloc.alloc a (quiet ()) in
      check_bool "in range" true (p1 >= 100 && p1 <= 103);
      check_bool "marked" true (Dslib.Port_alloc.is_allocated a p1);
      let rec drain acc =
        let p = Dslib.Port_alloc.alloc a (quiet ()) in
        if p < 0 then acc else drain (p :: acc)
      in
      let rest = drain [] in
      check_int "exhausted after capacity" 3 (List.length rest);
      check_int "exhausted" (-1) (Dslib.Port_alloc.alloc a (quiet ()));
      Dslib.Port_alloc.free a (quiet ()) p1;
      check_int "free enables alloc" p1 (Dslib.Port_alloc.alloc a (quiet ()));
      (match Dslib.Port_alloc.free a (quiet ()) 999 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad free accepted"))
    [ Dslib.Port_alloc.dll; Dslib.Port_alloc.array ]

let test_port_alloc_scan_tracks_occupancy () =
  let b = Dslib.Port_alloc.array ~base:(fresh_base ()) ~port_lo:0
      ~port_hi:1023 in
  (* fill 90% *)
  for _ = 1 to 920 do
    ignore (Dslib.Port_alloc.alloc b (quiet ()))
  done;
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  ignore (Dslib.Port_alloc.alloc b meter);
  let scan_full =
    Option.get (Perf.Pcv.lookup (Exec.Meter.pcv_max meter) Perf.Pcv.scan)
  in
  check_bool "long scan when nearly full" true (scan_full >= 10);
  let b2 = Dslib.Port_alloc.array ~base:(fresh_base ()) ~port_lo:0
      ~port_hi:1023 in
  ignore (Dslib.Port_alloc.alloc b2 (quiet ()));
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  ignore (Dslib.Port_alloc.alloc b2 meter);
  let scan_empty =
    Option.get (Perf.Pcv.lookup (Exec.Meter.pcv_max meter) Perf.Pcv.scan)
  in
  check_bool "short scan when empty" true (scan_empty <= 1)

let test_port_alloc_exhaustion_edges () =
  (* the same edge discipline on both backends: exhaustion is a stable
     -1 (not an exception), frees of unallocated ports raise whether
     they are out of range or merely not live, and the single freed port
     is exactly what the next alloc finds *)
  List.iter
    (fun make ->
      let a = make ~base:(fresh_base ()) ~port_lo:200 ~port_hi:207 in
      for _ = 1 to 8 do
        check_bool "fills" true (Dslib.Port_alloc.alloc a (quiet ()) >= 0)
      done;
      check_int "exhausted" (-1) (Dslib.Port_alloc.alloc a (quiet ()));
      check_int "exhaustion is stable" (-1)
        (Dslib.Port_alloc.alloc a (quiet ()));
      List.iter
        (fun bad ->
          match Dslib.Port_alloc.free a (quiet ()) bad with
          | exception Invalid_argument _ -> ()
          | () -> Alcotest.fail "out-of-range free accepted")
        [ 199; 208; -1 ];
      Dslib.Port_alloc.free a (quiet ()) 203;
      (match Dslib.Port_alloc.free a (quiet ()) 203 with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "double free accepted");
      check_int "finds the one free port" 203
        (Dslib.Port_alloc.alloc a (quiet ()));
      check_int "exhausted again" (-1) (Dslib.Port_alloc.alloc a (quiet ())))
    [ Dslib.Port_alloc.dll; Dslib.Port_alloc.array ]

let test_port_alloc_scan_contract_high_occupancy () =
  (* the array backend's worst case: lowest-free scan with the only
     hole in the last bitmap word, so the scan skips every full word
     before it — the observed scan PCV must be the long one and the
     contract evaluated at it must still dominate the metered cost *)
  let a =
    Dslib.Port_alloc.array ~base:(fresh_base ()) ~port_lo:0 ~port_hi:255
  in
  for _ = 0 to 255 do
    ignore (Dslib.Port_alloc.alloc a (quiet ()))
  done;
  Dslib.Port_alloc.free a (quiet ()) 250;
  let p, ic, ma, cy, binding =
    metered (fun meter -> Dslib.Port_alloc.alloc a meter)
  in
  check_int "recovers the hole" 250 p;
  let s = Option.value ~default:0 (Perf.Pcv.lookup binding Perf.Pcv.scan) in
  (* 256 ports = 4 bitmap words; words 0-2 are full, so the scan skips
     all three before landing in the word holding the hole *)
  check_int "scan skipped every full word" 3 s;
  dominates_measured ~what:"alloc at 255/256 occupancy"
    (Dslib.Port_alloc.Recipe.alloc_cost a)
    ~binding:(full_binding binding) ~ic ~ma ~cycles:cy

let prop_port_alloc_contracts =
  QCheck2.Test.make ~count:40 ~name:"allocator contracts dominate metered cost"
    QCheck2.Gen.(pair bool (list_size (int_range 1 40) bool))
    (fun (use_dll, ops) ->
      let make = if use_dll then Dslib.Port_alloc.dll else Dslib.Port_alloc.array in
      let a = make ~base:(fresh_base ()) ~port_lo:0 ~port_hi:63 in
      let live = ref [] in
      List.iter
        (fun do_alloc ->
          if do_alloc || !live = [] then begin
            let p, ic, ma, cy, binding =
              metered (fun meter -> Dslib.Port_alloc.alloc a meter)
            in
            if p >= 0 then live := p :: !live;
            dominates_measured ~what:"alloc" (Dslib.Port_alloc.Recipe.alloc_cost a)
              ~binding:(full_binding binding) ~ic ~ma ~cycles:cy
          end
          else
            match !live with
            | [] -> ()
            | p :: rest ->
                live := rest;
                let (), ic, ma, cy, binding =
                  metered (fun meter -> Dslib.Port_alloc.free a meter p)
                in
                dominates_measured ~what:"free" (Dslib.Port_alloc.Recipe.free_cost a)
                  ~binding:(full_binding binding) ~ic ~ma ~cycles:cy)
        ops;
      true)

(* ---- NAT table ----------------------------------------------------------- *)

let nat_table () =
  let base = fresh_base () in
  let alloc = Dslib.Port_alloc.dll ~base:(fresh_base ()) ~port_lo:1000
      ~port_hi:1063 in
  Dslib.Nat_table.create ~base ~capacity:16 ~buckets:8 ~timeout:1000
    ~alloc ~port_lo:1000 ~port_hi:1063 ()

let test_nat_table_flow_lifecycle () =
  let nat = nat_table () in
  let key = [| 10; 20; 30; 40; 17 |] in
  check_int "unknown" (-1) (Dslib.Nat_table.lookup_int nat (quiet ()) key ~now:0);
  let port = Dslib.Nat_table.add_int nat (quiet ()) key ~now:0 in
  check_bool "allocated" true (port >= 1000);
  check_int "known" port (Dslib.Nat_table.lookup_int nat (quiet ()) key ~now:10);
  let handle = Dslib.Nat_table.lookup_ext nat (quiet ()) ~port ~now:20 in
  check_bool "reverse mapping" true (handle >= 0);
  check_int "field src_ip" 10
    (Dslib.Nat_table.int_field nat (quiet ()) ~handle ~field:0);
  check_int "field src_port" 30
    (Dslib.Nat_table.int_field nat (quiet ()) ~handle ~field:2);
  (* expiry frees the port and clears the reverse map *)
  check_int "expired" 1 (Dslib.Nat_table.expire nat (quiet ()) ~now:100_000);
  check_int "reverse gone" (-1)
    (Dslib.Nat_table.lookup_ext nat (quiet ()) ~port ~now:100_001);
  check_bool "port recycled" true
    (not (Dslib.Port_alloc.is_allocated (Dslib.Nat_table.allocator nat) port))

let test_nat_table_refresh_via_lookup () =
  let nat = nat_table () in
  let key = [| 1; 2; 3; 4; 6 |] in
  ignore (Dslib.Nat_table.add_int nat (quiet ()) key ~now:0);
  (* keep touching it: must not expire *)
  ignore (Dslib.Nat_table.lookup_int nat (quiet ()) key ~now:900);
  check_int "no expiry" 0 (Dslib.Nat_table.expire nat (quiet ()) ~now:1500);
  check_int "expires eventually" 1
    (Dslib.Nat_table.expire nat (quiet ()) ~now:2500)

let suite =
  [
    Alcotest.test_case "hash_map semantics" `Quick test_hash_map_semantics;
    Alcotest.test_case "hash_map full/reuse" `Quick test_hash_map_full;
    Alcotest.test_case "hash_map collisions" `Quick test_hash_map_collisions;
    Alcotest.test_case "hash_map reseed" `Quick test_hash_map_reseed;
    Alcotest.test_case "flow_table expiry order" `Quick
      test_flow_table_expiry_order;
    Alcotest.test_case "flow_table granularity batching" `Quick
      test_flow_table_granularity_batching;
    Alcotest.test_case "flow_table update keeps LRU sane" `Quick
      test_flow_table_update_keeps_lru_sane;
    Alcotest.test_case "flow_table on_expire" `Quick test_flow_table_on_expire;
    Alcotest.test_case "mac_table learn/lookup" `Quick
      test_mac_table_learn_lookup;
    Alcotest.test_case "mac_table rehash defence" `Quick
      test_mac_table_rehash_defence;
    Alcotest.test_case "mac_table rehash contract" `Quick
      test_mac_table_contract_rehash;
    Alcotest.test_case "mac_table rehash cliff at capacity" `Quick
      test_mac_table_rehash_cliff_high_occupancy;
    Alcotest.test_case "lpm dir24_8 semantics" `Quick test_lpm_dir24_8;
    Alcotest.test_case "lpm differential" `Quick test_lpm_trie_matches_dir24_8;
    Alcotest.test_case "lpm trie exact Table 2 cost" `Quick
      test_lpm_trie_exact_cost;
    Alcotest.test_case "hash ring" `Quick test_hash_ring;
    Alcotest.test_case "backend pool" `Quick test_backend_pool;
    Alcotest.test_case "port alloc semantics" `Quick test_port_alloc_semantics;
    Alcotest.test_case "port alloc scan/occupancy" `Quick
      test_port_alloc_scan_tracks_occupancy;
    Alcotest.test_case "port alloc exhaustion edges" `Quick
      test_port_alloc_exhaustion_edges;
    Alcotest.test_case "port alloc scan contract at high occupancy" `Quick
      test_port_alloc_scan_contract_high_occupancy;
    Alcotest.test_case "nat table lifecycle" `Quick
      test_nat_table_flow_lifecycle;
    Alcotest.test_case "nat table refresh" `Quick
      test_nat_table_refresh_via_lookup;
    QCheck_alcotest.to_alcotest prop_hash_map_contract;
    QCheck_alcotest.to_alcotest prop_flow_table_expire_contract;
    QCheck_alcotest.to_alcotest prop_port_alloc_contracts;
  ]
