(* Topologies as first-class programs: graph validation, the generalised
   DAG walk behind Bolt.Compose (golden-pinned to the pre-refactor pair
   and chain results), the built-in topologies' analysis and measured
   soundness, and jobs-level determinism of the network-wide engine. *)

open Perf

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let no_contracts = Ds_contract.library []

(* ---- Graph validation ------------------------------------------------- *)

let g ?(ingress = "a") nodes edges =
  Topo.Graph.make ~name:"t" ~ingress
    ~nodes:(List.map (fun n -> Topo.Graph.node n Nf.Spec.Firewall) nodes)
    ~edges ()

let has p errs = List.exists p errs

let test_validate_errors () =
  let edge = Topo.Graph.edge in
  let errs =
    Topo.Graph.validate
      (g [ "a"; "b" ]
         [
           edge "a" Topo.Graph.Any (Topo.Graph.Node "b");
           edge "b" Topo.Graph.Any (Topo.Graph.Node "a");
         ])
  in
  check_bool "cycle detected" true
    (has (function Topo.Graph.Cycle _ -> true | _ -> false) errs);
  let errs =
    Topo.Graph.validate
      (g [ "a" ] [ edge "a" Topo.Graph.Any (Topo.Graph.Node "ghost") ])
  in
  check_bool "dangling endpoint" true
    (has
       (function
         | Topo.Graph.Dangling_endpoint { dest = "ghost"; _ } -> true
         | _ -> false)
       errs);
  let errs = Topo.Graph.validate (g [ "a"; "b" ] []) in
  check_bool "unreachable node" true
    (has (function Topo.Graph.Unreachable "b" -> true | _ -> false) errs);
  let errs =
    Topo.Graph.validate
      (g [ "a"; "b" ]
         [
           edge "a" (Topo.Graph.Port 0) (Topo.Graph.Node "b");
           edge "a" (Topo.Graph.Port 0) (Topo.Graph.Exit "out");
         ])
  in
  check_bool "duplicate port" true
    (has
       (function
         | Topo.Graph.Duplicate_port { src = "a"; port = 0 } -> true
         | _ -> false)
       errs);
  let errs =
    Topo.Graph.validate
      (g [ "a"; "b" ]
         [
           edge "a" Topo.Graph.Any (Topo.Graph.Node "b");
           edge "a" (Topo.Graph.Port 1) (Topo.Graph.Exit "out");
         ])
  in
  check_bool "mixed any" true
    (has (function Topo.Graph.Mixed_any "a" -> true | _ -> false) errs);
  let errs = Topo.Graph.validate (g [ "a"; "a" ] []) in
  check_bool "duplicate node" true
    (has (function Topo.Graph.Duplicate_node "a" -> true | _ -> false) errs);
  let errs = Topo.Graph.validate (g ~ingress:"zz" [ "a" ] []) in
  check_bool "unknown ingress" true
    (has (function Topo.Graph.Unknown_ingress "zz" -> true | _ -> false) errs);
  (* validated raises on the lot, and accepts a well-formed graph *)
  (match
     Topo.Graph.validate (g [ "a" ] [ edge "a" Topo.Graph.Any (Topo.Graph.Exit "out") ])
   with
  | [] -> ()
  | errs ->
      Alcotest.failf "well-formed graph rejected: %a"
        Fmt.(list ~sep:(any "; ") Topo.Graph.pp_error)
        errs);
  Alcotest.check_raises "validated raises"
    (Invalid_argument
       "Topo.Graph \"t\": node \"b\" is unreachable from the ingress") (fun () ->
      ignore
        (Topo.Graph.validated ~name:"t" ~ingress:"a"
           ~nodes:
             [
               Topo.Graph.node "a" Nf.Spec.Firewall;
               Topo.Graph.node "b" Nf.Spec.Firewall;
             ]
           ~edges:[] ()))

let test_builtins_validate () =
  List.iter
    (fun (e : Topo.Builtin.entry) ->
      check_bool
        (e.Topo.Builtin.graph.Topo.Graph.name ^ " validates")
        true
        (Topo.Graph.validate e.Topo.Builtin.graph = []))
    (Topo.Builtin.all ())

(* ---- The Compose entry points survive the refactor bit-identically ---- *)

(* Pinned on the pre-topology Bolt.Compose (direct hand-wired pair walk):
   the generalised DAG walk must reproduce these numbers exactly. *)
let test_pair_golden () =
  let c =
    Bolt.Compose.analyze ~models:Bolt.Ds_models.default
      ~up:(Nf.Firewall.program, no_contracts)
      ~down:(Nf.Static_router.program, no_contracts)
      ()
  in
  let w = Bolt.Compose.worst_case c in
  let ev m = Perf_expr.eval_exn [] (Cost_vec.get w m) in
  check_int "pair worst IC" 187 (ev Metric.Instructions);
  check_int "pair worst MA" 29 (ev Metric.Memory_accesses);
  check_int "pair worst cycles" 1787 (ev Metric.Cycles);
  check_int "pairs" 2 (List.length c.Bolt.Compose.pairs);
  check_int "up_only" 8 (List.length c.Bolt.Compose.up_only);
  check_int "unsolved" 0 c.Bolt.Compose.unsolved

let test_chain_golden () =
  let stages =
    [
      { Bolt.Compose.program = Nf.Firewall.program; contracts = no_contracts };
      {
        Bolt.Compose.program = Nf.Policer.program;
        contracts = Nf.Policer.contracts ();
      };
      {
        Bolt.Compose.program = Nf.Static_router.program;
        contracts = no_contracts;
      };
    ]
  in
  let ch = Bolt.Compose.analyze_chain ~models:Bolt.Ds_models.default stages in
  let w = Bolt.Compose.chain_worst ch in
  let ev m = Perf_expr.eval_exn [] (Cost_vec.get w m) in
  check_int "chain worst IC" 271 (ev Metric.Instructions);
  check_int "chain worst MA" 39 (ev Metric.Memory_accesses);
  check_int "chain worst cycles" 3043 (ev Metric.Cycles);
  check_int "tuples" 11 (List.length ch.Bolt.Compose.tuples);
  check_int "chain unsolved" 0 ch.Bolt.Compose.chain_unsolved

(* The exhibits ported onto the topology API keep their exact output —
   what examples/chain_composition.exe prints (Table 5, Figure 3). *)
let test_table5_pinned () =
  check_string "table5 text"
    "(a) firewall \226\128\148 instruction count\n\
    \      No IP options  99\n\
    \      IP Options     54\n\
    \    \n\
     (b) static_router \226\128\148 instruction count\n\
    \      No IP options  88\n\
    \      IP Options     14\194\183n + 91\n\
    \    \n\
     (c) firewall+router chain \226\128\148 instruction count\n\
    \  No IP options     187  (8 compatible path pairs)\n\
    \  IP Options        54  (1 compatible path pairs)\n"
    (Fmt.str "%t" Experiments.Exhibits.table5)

let test_figure3_pinned () =
  check_string "figure3 text"
    "  Firewall          predicted IC    99  measured IC    99   predicted \
     MA   15  measured MA   15\n\
    \  Router            predicted IC   133  measured IC   133   predicted \
     MA   20  measured MA   20\n\
    \  Naive-Add         predicted IC   232  measured IC   187   predicted \
     MA   35  measured MA   29\n\
    \  Composite-Bolt    predicted IC   187  measured IC   187   predicted \
     MA   29  measured MA   29\n"
    (Fmt.str "%t" (fun ppf -> Experiments.Exhibits.figure3 ~packets:64 ppf))

(* The fw→router topology reproduces the Compose pair bound exactly:
   same walk, new clothes. *)
let test_topology_matches_pair () =
  let t = Topo.Analysis.run ~jobs:1 (Experiments.Exhibits.fw_router_graph ()) in
  let w = Topo.Analysis.worst t in
  let ev m = Perf_expr.eval_exn [] (Cost_vec.get w m) in
  check_int "topology worst IC" 187 (ev Metric.Instructions);
  check_int "topology worst MA" 29 (ev Metric.Memory_accesses);
  check_int "topology worst cycles" 1787 (ev Metric.Cycles);
  check_int "routes = pairs + up_only" 10 (List.length t.Topo.Analysis.routes);
  check_int "unsolved" 0 t.Topo.Analysis.unsolved

(* ---- Built-in topologies: pruning, tightness, soundness ---------------- *)

let test_builtin_route_counts () =
  let counts name =
    let t =
      Topo.Analysis.run ~jobs:1 (Topo.Builtin.find name).Topo.Builtin.graph
    in
    ( List.length t.Topo.Analysis.routes,
      t.Topo.Analysis.infeasible_routes,
      t.Topo.Analysis.unsolved )
  in
  (* port-selected edges genuinely prune: every topology discards route
     tuples whose port constraints are unsatisfiable on the packet bytes *)
  Alcotest.(check (triple int int int))
    "service_chain routes" (18, 13, 0) (counts "service_chain");
  Alcotest.(check (triple int int int))
    "branch routes" (14, 2, 0) (counts "branch");
  Alcotest.(check (triple int int int))
    "failover routes" (30, 25, 0) (counts "failover")

let bind_all vecs vec metric =
  let binding =
    List.sort_uniq compare (List.concat_map Cost_vec.pcvs vecs)
    |> List.map (fun p -> (p, 3))
  in
  Perf_expr.eval_exn binding (Cost_vec.get vec metric)

let naive_sum (t : Topo.Analysis.t) =
  List.fold_left
    (fun acc (_, (e : Nf.Registry.entry)) ->
      let pt =
        Bolt.Pipeline.analyze
          ~config:
            Bolt.Pipeline.Config.(
              default |> with_contracts e.Nf.Registry.contracts)
          e.Nf.Registry.program
      in
      Bolt.Compose.naive_add ~up:acc ~down:(Bolt.Pipeline.worst_case pt))
    Cost_vec.zero t.Topo.Analysis.entries

(* Figure 3's property holds network-wide: the jointly analysed bound is
   strictly tighter than adding per-NF worst cases. *)
let test_branch_tighter_than_naive () =
  let t = Topo.Analysis.run ~jobs:1 (Topo.Builtin.find "branch").Topo.Builtin.graph in
  let joint = Topo.Analysis.worst t and naive = naive_sum t in
  let j = bind_all [ joint; naive ] joint Metric.Instructions
  and n = bind_all [ joint; naive ] naive Metric.Instructions in
  check_bool (Printf.sprintf "joint %d < naive %d" j n) true (j < n)

let test_harness_soundness () =
  List.iter
    (fun name ->
      let entry = Topo.Builtin.find name in
      let t = Topo.Analysis.run ~jobs:1 entry.Topo.Builtin.graph in
      let h = Topo.Harness.create entry.Topo.Builtin.graph in
      let report =
        Topo.Harness.check h
          ~worst:(Topo.Analysis.worst t)
          (entry.Topo.Builtin.workload ~packets:96)
      in
      check_bool (name ^ " replay stays within the composed bound") true
        (report.Topo.Harness.violations = []);
      check_int (name ^ " packets replayed") 96 report.Topo.Harness.packets)
    (Topo.Builtin.names ())

(* Every egress cost is dominated by the topology-wide worst case, and
   class costs by their class's total. *)
let test_egress_class_domination () =
  let t =
    Topo.Analysis.run ~jobs:1 (Topo.Builtin.find "service_chain").Topo.Builtin.graph
  in
  let worst = Topo.Analysis.worst t in
  List.iter
    (fun eg ->
      let cost, n = Topo.Analysis.egress_cost t eg in
      check_bool "egress has routes" true (n > 0);
      List.iter
        (fun metric ->
          check_bool
            (Fmt.str "worst dominates %a" Topo.Analysis.pp_egress eg)
            true
            (bind_all [ worst; cost ] worst metric
            >= bind_all [ worst; cost ] cost metric))
        [ Metric.Instructions; Metric.Memory_accesses; Metric.Cycles ])
    (Topo.Analysis.egresses t);
  List.iter
    (fun cls ->
      let total, _ = Topo.Analysis.class_cost t cls in
      List.iter
        (fun eg ->
          match Topo.Analysis.class_egress_cost t cls eg with
          | _, 0 -> ()
          | cost, _ ->
              check_bool "class total dominates class@egress" true
                (bind_all [ total; cost ] total Metric.Instructions
                >= bind_all [ total; cost ] cost Metric.Instructions))
        (Topo.Analysis.egresses t))
    (Topo.Analysis.ingress_classes t)

(* ---- Determinism under the domain pool -------------------------------- *)

let test_jobs_deterministic () =
  let fingerprint jobs =
    let t =
      Topo.Analysis.run ~jobs (Topo.Builtin.find "branch").Topo.Builtin.graph
    in
    ( List.map
        (fun (r : Topo.Analysis.route) ->
          ( List.map (fun (s : Topo.Analysis.step) -> s.Topo.Analysis.node)
              r.Topo.Analysis.steps,
            Fmt.str "%a" Topo.Analysis.pp_egress r.Topo.Analysis.egress,
            List.length r.Topo.Analysis.constraints,
            Fmt.str "%a" Cost_vec.pp r.Topo.Analysis.cost ))
        t.Topo.Analysis.routes,
      t.Topo.Analysis.unsolved,
      t.Topo.Analysis.infeasible_routes,
      Fmt.str "%a" Contract.pp (Topo.Analysis.contract t) )
  in
  let serial = fingerprint 1 in
  check_bool "jobs:4 identical to jobs:1" true (fingerprint 4 = serial)

let suite =
  [
    Alcotest.test_case "graph validation errors" `Quick test_validate_errors;
    Alcotest.test_case "builtins validate" `Quick test_builtins_validate;
    Alcotest.test_case "pair golden (pre-refactor pin)" `Slow test_pair_golden;
    Alcotest.test_case "chain golden (pre-refactor pin)" `Slow
      test_chain_golden;
    Alcotest.test_case "table5 text pinned" `Slow test_table5_pinned;
    Alcotest.test_case "figure3 text pinned" `Slow test_figure3_pinned;
    Alcotest.test_case "topology = pair bound" `Slow
      test_topology_matches_pair;
    Alcotest.test_case "builtin route counts (pruning)" `Slow
      test_builtin_route_counts;
    Alcotest.test_case "joint beats naive (Figure 3, network-wide)" `Slow
      test_branch_tighter_than_naive;
    Alcotest.test_case "measured replay within bound" `Slow
      test_harness_soundness;
    Alcotest.test_case "egress/class domination" `Slow
      test_egress_class_domination;
    Alcotest.test_case "jobs determinism" `Slow test_jobs_deterministic;
  ]
