(* Tests for the Distiller and its statistics. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let close_to a b = Float.abs (a -. b) < 1e-9

let test_density () =
  let d = Distiller.Stats.density [ 1; 1; 2; 3 ] in
  check_int "distinct" 3 (List.length d);
  check_bool "p(1)" true (close_to (List.assoc 1 d) 0.5);
  check_bool "sums to 1" true
    (close_to (List.fold_left (fun acc (_, p) -> acc +. p) 0. d) 1.);
  check_bool "empty" true (Distiller.Stats.density [] = [])

let test_density_binned () =
  let d =
    Distiller.Stats.density_binned
      ~bins:[ (0, 0, "0"); (1, 63, "1-63"); (64, max_int, "64+") ]
      [ 0; 0; 0; 5; 64; 200 ]
  in
  check_bool "bin 0" true (close_to (List.assoc "0" d) 0.5);
  check_bool "bin 1-63" true
    (close_to (List.assoc "1-63" d) (1. /. 6.));
  check_bool "bin 64+" true (close_to (List.assoc "64+" d) (2. /. 6.))

let test_ccdf_cdf () =
  let samples = [ 1; 2; 2; 5 ] in
  let ccdf = Distiller.Stats.ccdf samples in
  check_bool "ccdf(1)" true (close_to (List.assoc 1 ccdf) 0.75);
  check_bool "ccdf(5)" true (close_to (List.assoc 5 ccdf) 0.);
  check_bool "ccdf monotone" true
    (let ps = List.map snd ccdf in
     List.for_all2 (fun a b -> a >= b) (List.filteri (fun i _ -> i < 2) ps)
       (List.filteri (fun i _ -> i > 0 && i < 3) ps));
  let cdf = Distiller.Stats.cdf samples in
  check_bool "cdf(2)" true (close_to (List.assoc 2 cdf) 0.75);
  check_bool "cdf(5)" true (close_to (List.assoc 5 cdf) 1.)

let test_percentile () =
  let s = [ 10; 20; 30; 40; 50 ] in
  check_int "p50" 30 (Distiller.Stats.percentile s 0.5);
  check_int "p100" 50 (Distiller.Stats.percentile s 1.0);
  check_int "p1" 10 (Distiller.Stats.percentile s 0.01);
  (match Distiller.Stats.percentile [] 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty percentile accepted");
  check_bool "mean" true (close_to (Distiller.Stats.mean s) 30.)

let test_distiller_run () =
  let alloc = Dslib.Layout.allocator () in
  let dss, _ = Nf.Nat.setup alloc in
  let flows = Workload.Gen.distinct_flows (Workload.Prng.create ~seed:1) 10 in
  let stream =
    Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100
      (Workload.Gen.packets_of_flows flows)
  in
  let result = Distiller.Run.run ~dss Nf.Nat.program stream in
  check_int "report per packet" 10 (Distiller.Run.count result);
  (* every packet of a new flow observes traversal counts *)
  check_int "pcv rows" 10
    (List.length (Distiller.Run.pcv_values result Perf.Pcv.traversals));
  check_bool "latencies positive" true
    (List.for_all (fun c -> c > 0) (Distiller.Run.latencies result));
  check_bool "ic positive" true (Distiller.Run.max_ic result > 0)

let test_distiller_pcap () =
  let flows = Workload.Gen.distinct_flows (Workload.Prng.create ~seed:2) 5 in
  let packets = Workload.Gen.packets_of_flows flows in
  let path = Filename.temp_file "bolt_distill" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Net.Pcap.write_file path (Net.Pcap.records_of_packets packets);
      let alloc = Dslib.Layout.allocator () in
      let dss, _ = Nf.Nat.setup alloc in
      let result =
        Distiller.Run.run_pcap ~dss Nf.Nat.program ~path ~in_port:0 ()
      in
      check_int "replayed from pcap" 5 (Distiller.Run.count result))

let test_vignat_batching_detected () =
  (* the Distiller must show batching with coarse stamps and not with
     fine ones (Tables 7/8) *)
  let t7 = Experiments.Vignat.run ~granularity:1_000_000 ~packets:8_000
      ~pool:256 () in
  let t8 = Experiments.Vignat.run ~granularity:1_000 ~packets:8_000
      ~pool:256 () in
  let batch_mass r =
    List.fold_left
      (fun acc (bin, p) ->
        if bin = "16-63" || bin = "64+" then acc +. p else acc)
      0. r.Experiments.Vignat.expiry_density
  in
  check_bool "coarse stamps batch expirations" true (batch_mass t7 > 0.);
  check_bool "fine stamps do not" true (close_to (batch_mass t8) 0.);
  check_bool "tail eliminated by the fix" true
    (t8.Experiments.Vignat.max_latency * 4
    < t7.Experiments.Vignat.max_latency)

let suite =
  [
    Alcotest.test_case "density" `Quick test_density;
    Alcotest.test_case "binned density" `Quick test_density_binned;
    Alcotest.test_case "ccdf / cdf" `Quick test_ccdf_cdf;
    Alcotest.test_case "percentiles" `Quick test_percentile;
    Alcotest.test_case "distiller run" `Quick test_distiller_run;
    Alcotest.test_case "distiller pcap replay" `Quick test_distiller_pcap;
    Alcotest.test_case "vignat batching detected" `Slow
      test_vignat_batching_detected;
  ]
