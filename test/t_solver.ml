(* Tests for the constraint solver (lib/solver), including a brute-force
   differential check on small domains. *)

open Solver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_syms f =
  let gen = Sym.gen () in
  let x = Sym.fresh gen ~lo:0 ~hi:10 "x" in
  let y = Sym.fresh gen ~lo:0 ~hi:10 "y" in
  f gen x y

let test_linexpr () =
  with_syms (fun _ x y ->
      let e =
        Linexpr.add
          (Linexpr.scale 2 (Linexpr.sym x))
          (Linexpr.add_const 5 (Linexpr.sym y))
      in
      let assign s = if Sym.equal s x then 3 else 4 in
      check_int "eval" 15 (Linexpr.eval assign e);
      check_int "range lo" 5 (fst (Linexpr.range Sym.bounds e));
      check_int "range hi" 35 (snd (Linexpr.range Sym.bounds e));
      check_bool "cancellation" true
        (Linexpr.is_const (Linexpr.sub (Linexpr.sym x) (Linexpr.sym x))
        = Some 0))

let test_constr_constant_folding () =
  let five = Linexpr.const 5 and three = Linexpr.const 3 in
  check_bool "5 <= 3 folds" true (Constr.le five three = Constr.False);
  check_bool "3 <= 5 folds" true (Constr.le three five = Constr.True);
  check_bool "eq folds" true (Constr.eq five five = Constr.True);
  check_bool "conj with false" true
    (Constr.conj [ Constr.True; Constr.False ] = Constr.False);
  check_bool "disj with true" true
    (Constr.disj [ Constr.False; Constr.True ] = Constr.True)

let test_not () =
  with_syms (fun _ x _ ->
      let f = Constr.le (Linexpr.sym x) (Linexpr.const 4) in
      (* ¬(x <= 4) ∧ (x <= 4) unsat *)
      check_bool "complement unsat" false
        (Solve.is_sat [ f; Constr.not_ f ]);
      check_bool "double negation sat with original" true
        (Solve.is_sat [ f; Constr.not_ (Constr.not_ f) ]))

let test_solve_basic () =
  with_syms (fun _ x y ->
      let xl = Linexpr.sym x and yl = Linexpr.sym y in
      (* x + y = 13, x <= 4 → x in [3,4] since y <= 10 *)
      let cs =
        [ Constr.eq (Linexpr.add xl yl) (Linexpr.const 13);
          Constr.le xl (Linexpr.const 4) ]
      in
      match Solve.check cs with
      | Solve.Sat m ->
          let vx = Model.value m x and vy = Model.value m y in
          check_bool "model satisfies" true (vx + vy = 13 && vx <= 4)
      | _ -> Alcotest.fail "expected sat");
  with_syms (fun _ x _ ->
      let xl = Linexpr.sym x in
      check_bool "out of bounds unsat" false
        (Solve.is_sat [ Constr.ge xl (Linexpr.const 11) ]);
      check_bool "boundary sat" true
        (Solve.is_sat [ Constr.ge xl (Linexpr.const 10) ]))

let test_solve_disjunction () =
  with_syms (fun _ x _ ->
      let xl = Linexpr.sym x in
      let f =
        Constr.disj
          [ Constr.eq xl (Linexpr.const 7); Constr.eq xl (Linexpr.const 9) ]
      in
      match Solve.check [ f; Constr.ne xl (Linexpr.const 7) ] with
      | Solve.Sat m -> check_int "picks 9" 9 (Model.value m x)
      | _ -> Alcotest.fail "expected sat")

let test_model_defaults () =
  with_syms (fun _ x _ ->
      let m = Model.empty in
      check_int "default is lower bound" 0 (Model.value m x))

(* Brute-force differential testing: random constraint systems over two
   small-domain symbols; the solver must agree with exhaustive
   enumeration. *)
let gen_formula gen_ctx =
  let x, y = gen_ctx in
  let open QCheck2.Gen in
  let gen_lin =
    let* cx = int_range (-3) 3 in
    let* cy = int_range (-3) 3 in
    let* k = int_range (-10) 10 in
    return
      (Linexpr.add_const k
         (Linexpr.add
            (Linexpr.scale cx (Linexpr.sym x))
            (Linexpr.scale cy (Linexpr.sym y))))
  in
  let gen_atom =
    let* a = gen_lin in
    let* b = gen_lin in
    oneof
      [
        return (Constr.le a b); return (Constr.lt a b);
        return (Constr.eq a b); return (Constr.ne a b);
        return (Constr.ge a b);
      ]
  in
  let* atoms = list_size (int_range 1 4) gen_atom in
  let* use_disj = bool in
  if use_disj then
    let* extra = gen_atom in
    return (Constr.disj [ Constr.conj atoms; extra ])
  else return (Constr.conj atoms)

let brute_force_sat x y formula =
  let rec eval_formula vx vy = function
    | Constr.True -> true
    | Constr.False -> false
    | Constr.Atom (Constr.Le lin) ->
        Linexpr.eval (fun s -> if Sym.equal s x then vx else vy) lin <= 0
    | Constr.Atom (Constr.Eqz lin) ->
        Linexpr.eval (fun s -> if Sym.equal s x then vx else vy) lin = 0
    | Constr.And parts -> List.for_all (eval_formula vx vy) parts
    | Constr.Or parts -> List.exists (eval_formula vx vy) parts
  in
  let lo_x, hi_x = Sym.bounds x and lo_y, hi_y = Sym.bounds y in
  let found = ref false in
  for vx = lo_x to hi_x do
    for vy = lo_y to hi_y do
      if eval_formula vx vy formula then found := true
    done
  done;
  !found

let prop_solver_matches_brute_force =
  let gen = Sym.gen () in
  let x = Sym.fresh gen ~lo:0 ~hi:7 "x" in
  let y = Sym.fresh gen ~lo:0 ~hi:7 "y" in
  QCheck2.Test.make ~count:500 ~name:"solver agrees with brute force"
    (gen_formula (x, y))
    (fun formula ->
      let expected = brute_force_sat x y formula in
      match Solve.check [ formula ] with
      | Solve.Sat m ->
          (* a claimed model must actually satisfy the formula *)
          let rec holds = function
            | Constr.True -> true
            | Constr.False -> false
            | Constr.Atom (Constr.Le lin) -> Model.eval m lin <= 0
            | Constr.Atom (Constr.Eqz lin) -> Model.eval m lin = 0
            | Constr.And parts -> List.for_all holds parts
            | Constr.Or parts -> List.exists holds parts
          in
          expected && holds formula
      | Solve.Unsat -> not expected
      | Solve.Unknown -> true)

let test_unknown_is_conservative () =
  (* with the DNF budget forced to zero, the solver must give up as
     Unknown — and is_sat must treat Unknown as satisfiable, because a
     path we cannot prove infeasible has to stay in the contract *)
  with_syms (fun _ x _ ->
      let xl = Linexpr.sym x in
      let f =
        Constr.disj
          [ Constr.eq xl (Linexpr.const 1); Constr.eq xl (Linexpr.const 2) ]
      in
      (match Solve.check ~max_conjuncts:0 [ f ] with
      | Solve.Unknown -> ()
      | _ -> Alcotest.fail "expected Unknown under a zero budget");
      check_bool "unknown counts as sat" true
        (Solve.is_sat ~max_conjuncts:0 [ f ]))

let test_tight_bounds_propagation () =
  with_syms (fun _ x y ->
      let xl = Linexpr.sym x and yl = Linexpr.sym y in
      (* 2x + 3y = 29 with x,y in [0,10]: solutions exist (x=1,y=9 ...) *)
      let f = Constr.eq (Linexpr.add (Linexpr.scale 2 xl) (Linexpr.scale 3 yl))
          (Linexpr.const 29) in
      (match Solve.check [ f ] with
      | Solve.Sat m ->
          check_bool "exact" true
            ((2 * Model.value m x) + (3 * Model.value m y) = 29)
      | _ -> Alcotest.fail "expected sat");
      (* 2x + 4y = 29 has no integer solutions... parity is beyond pure
         interval reasoning, so the solver may answer Sat only with a real
         witness — verify it never fabricates one *)
      let g = Constr.eq (Linexpr.add (Linexpr.scale 2 xl) (Linexpr.scale 4 yl))
          (Linexpr.const 29) in
      match Solve.check [ g ] with
      | Solve.Sat m ->
          Alcotest.fail
            (Printf.sprintf "fabricated witness x=%d y=%d" (Model.value m x)
               (Model.value m y))
      | Solve.Unsat | Solve.Unknown -> ())

(* The memoizing front-end must agree with fresh solves: same verdict
   class, and any cached model must satisfy the original constraints. *)
let prop_cache_matches_solve =
  let gen = Sym.gen () in
  let x = Sym.fresh gen ~lo:0 ~hi:7 "cx" in
  let y = Sym.fresh gen ~lo:0 ~hi:7 "cy" in
  let holds m =
    let rec go = function
      | Constr.True -> true
      | Constr.False -> false
      | Constr.Atom (Constr.Le lin) -> Model.eval m lin <= 0
      | Constr.Atom (Constr.Eqz lin) -> Model.eval m lin = 0
      | Constr.And parts -> List.for_all go parts
      | Constr.Or parts -> List.exists go parts
    in
    go
  in
  QCheck2.Test.make ~count:300 ~name:"memoized verdicts equal fresh solves"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 3) (gen_formula (x, y)))
    (fun formulas ->
      let fresh = Solve.check formulas in
      let cached = Cache.check formulas in
      let verdicts_agree =
        match (fresh, cached) with
        | Solve.Sat _, Solve.Sat m -> List.for_all (holds m) formulas
        | Solve.Unsat, Solve.Unsat | Solve.Unknown, Solve.Unknown -> true
        | _ -> false
      in
      (* a repeat query must return the very same verdict, and is_sat
         must agree with the uncached entry point *)
      verdicts_agree
      && Cache.check formulas = cached
      && Cache.is_sat formulas = Solve.is_sat formulas)

let test_cache_stats () =
  with_syms (fun _ x _ ->
      Cache.reset ();
      let xl = Linexpr.sym x in
      let c1 = Constr.le xl (Linexpr.const 4) in
      let c2 = Constr.ge xl (Linexpr.const 2) in
      check_bool "sat" true (Cache.is_sat [ c1; c2 ]);
      let s = Cache.stats () in
      check_int "first query misses" 1 s.Cache.misses;
      check_int "no hits yet" 0 s.Cache.hits;
      (* permuted, duplicated and True-padded sets normalize to the same
         fingerprint *)
      check_bool "normalized hit" true
        (Cache.is_sat [ c2; c1; c2; Constr.True ]);
      let s = Cache.stats () in
      check_int "hit on normalized set" 1 s.Cache.hits;
      check_int "still one miss" 1 s.Cache.misses;
      (* a different solver budget is a different key *)
      check_bool "other budget" true (Cache.is_sat ~max_nodes:1234 [ c1; c2 ]);
      check_int "budget miss" 2 (Cache.stats ()).Cache.misses;
      Cache.reset ();
      let s = Cache.stats () in
      check_int "reset misses" 0 s.Cache.misses;
      check_int "reset hits" 0 s.Cache.hits;
      check_int "reset fingerprints" 0 s.Cache.fingerprints)

(* Regression for the fingerprinted-key scheme: the structural hash is
   computed exactly once per lookup (at normalization) and stored in
   the key — table probes must never re-hash the constraint tree, so
   the mean probe cost stays pinned at 1.0 however hit-heavy or
   collision-prone the workload gets. *)
let test_cache_probe_cost () =
  with_syms (fun _ x y ->
      Cache.reset ();
      let xl = Linexpr.sym x and yl = Linexpr.sym y in
      let query k =
        [ Constr.le xl (Linexpr.const k); Constr.ge yl (Linexpr.const 1) ]
      in
      let lookups = ref 0 in
      for k = 1 to 16 do
        ignore (Cache.is_sat (query k));
        incr lookups
      done;
      (* hammer the same keys: hits must not add fingerprint work *)
      for _ = 1 to 4 do
        for k = 1 to 16 do
          ignore (Cache.is_sat (query k));
          incr lookups
        done
      done;
      let s = Cache.stats () in
      check_int "one fingerprint per lookup" !lookups s.Cache.fingerprints;
      check_int "lookups accounted" !lookups (s.Cache.hits + s.Cache.misses);
      check_bool "mean probe cost pinned at 1.0" true
        (Float.abs (Cache.mean_probe_cost s -. 1.0) < 1e-9);
      Cache.reset ())

let test_cache_eviction () =
  with_syms (fun _ x _ ->
      Cache.reset ();
      Cache.set_capacity 8;
      Fun.protect
        ~finally:(fun () ->
          Cache.set_capacity 32_768;
          Cache.reset ())
        (fun () ->
          let xl = Linexpr.sym x in
          let query k = [ Constr.le xl (Linexpr.const k) ] in
          (* 24 distinct keys through an 8-entry cache *)
          for k = 1 to 24 do
            check_bool "sat" true (Cache.is_sat (query k))
          done;
          check_bool "bounded" true (Cache.size () <= 8);
          let s = Cache.stats () in
          check_int "all distinct keys miss" 24 s.Cache.misses;
          check_bool "evictions happened" true (s.Cache.evictions >= 16);
          (* an evicted key re-solves to the identical verdict *)
          let fresh = Solve.check (query 1) in
          check_bool "evicted key re-solves identically" true
            (Cache.check (query 1) = fresh);
          (* growing the bound stops eviction pressure *)
          Cache.set_capacity 64;
          let before = (Cache.stats ()).Cache.evictions in
          for k = 1 to 24 do
            ignore (Cache.is_sat (query k))
          done;
          check_int "no further evictions at capacity 64" before
            (Cache.stats ()).Cache.evictions))

(* The cache is shared by every pipeline domain: hammer it from an
   [Exec.Pool] at a starved capacity (constant eviction churn) and
   check each domain still sees exactly the direct solver's verdict,
   and the table never outgrows its bound. *)
let test_cache_parallel_domains () =
  Solver.Cache.reset ();
  Solver.Cache.set_capacity 32;
  Fun.protect ~finally:(fun () ->
      Solver.Cache.set_capacity 32768;
      Solver.Cache.reset ())
  @@ fun () ->
  let gen = Sym.gen () in
  let x = Sym.fresh gen ~lo:0 ~hi:1000 "x" in
  let xl = Linexpr.sym x in
  (* 200 distinct keys, an even sat/unsat mix *)
  let sets =
    List.init 200 (fun i ->
        [
          Constr.eq xl (Linexpr.const (i / 2));
          (if i mod 2 = 0 then Constr.le xl (Linexpr.const 500)
           else Constr.gt xl (Linexpr.const 500));
        ])
  in
  let kind = function
    | Solve.Sat _ -> "sat"
    | Solve.Unsat -> "unsat"
    | Solve.Unknown -> "unknown"
  in
  let want = List.map (fun cs -> kind (Solve.check cs)) sets in
  (* three interleaved sweeps: misses, hits and evicted re-solves race *)
  let items = sets @ List.rev sets @ sets in
  let got = Exec.Pool.map ~jobs:4 (fun cs -> kind (Cache.check cs)) items in
  Alcotest.(check (list string))
    "parallel cached verdicts match direct solve"
    (want @ List.rev want @ want)
    got;
  check_bool "table stayed within its bound" true (Cache.size () <= 32)

let suite =
  [
    Alcotest.test_case "linexpr" `Quick test_linexpr;
    Alcotest.test_case "cache stats" `Quick test_cache_stats;
    Alcotest.test_case "cache probe cost" `Quick test_cache_probe_cost;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "unknown is conservative" `Quick
      test_unknown_is_conservative;
    Alcotest.test_case "tight propagation" `Quick
      test_tight_bounds_propagation;
    Alcotest.test_case "constr constant folding" `Quick
      test_constr_constant_folding;
    Alcotest.test_case "negation" `Quick test_not;
    Alcotest.test_case "solve basics" `Quick test_solve_basic;
    Alcotest.test_case "solve disjunction" `Quick test_solve_disjunction;
    Alcotest.test_case "model defaults" `Quick test_model_defaults;
    Alcotest.test_case "cache under parallel domains" `Quick
      test_cache_parallel_domains;
    QCheck_alcotest.to_alcotest prop_solver_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_cache_matches_solve;
  ]
