(* Tests for the workload generators and the tooling extensions (contract
   diffing, sensitivity analysis). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- PRNG ----------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Workload.Prng.create ~seed:9 in
  let b = Workload.Prng.create ~seed:9 in
  for _ = 1 to 100 do
    check_int "same stream" (Workload.Prng.next a) (Workload.Prng.next b)
  done;
  let c = Workload.Prng.create ~seed:10 in
  check_bool "different seed differs" true
    (Workload.Prng.next a <> Workload.Prng.next c)

let test_prng_ranges () =
  let rng = Workload.Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Workload.Prng.below rng 7 in
    check_bool "below" true (v >= 0 && v < 7);
    let w = Workload.Prng.range rng ~lo:5 ~hi:9 in
    check_bool "range" true (w >= 5 && w <= 9)
  done;
  (match Workload.Prng.below rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bound accepted");
  (* rough uniformity: each residue of 4 gets 15-35% *)
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Workload.Prng.below rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 600 && c < 1400))
    counts

(* ---- Generators ------------------------------------------------------------ *)

let test_distinct_flows () =
  let rng = Workload.Prng.create ~seed:4 in
  let flows = Workload.Gen.distinct_flows rng 200 in
  check_int "count" 200 (List.length flows);
  check_int "distinct" 200
    (List.length (List.sort_uniq Net.Flow.compare flows));
  List.iter
    (fun (f : Net.Flow.t) ->
      check_bool "valid proto" true
        (f.Net.Flow.proto = Net.Ipv4.proto_tcp
        || f.Net.Flow.proto = Net.Ipv4.proto_udp))
    flows

let test_packets_parse_back () =
  let rng = Workload.Prng.create ~seed:5 in
  let flows = Workload.Gen.distinct_flows rng 50 in
  List.iter2
    (fun flow packet ->
      match Net.Flow.of_packet packet with
      | Some f -> check_bool "5-tuple preserved" true (Net.Flow.equal f flow)
      | None -> Alcotest.fail "generated packet unparsable")
    flows
    (Workload.Gen.packets_of_flows flows)

let test_churn_stream () =
  let rng = Workload.Prng.create ~seed:6 in
  let stream =
    Workload.Gen.churn rng ~pool:16 ~packets:500 ~new_flow_prob:0.2 ~gap:10
      ~start:1000
  in
  check_int "length" 500 (List.length stream);
  (* timestamps strictly increase by gap *)
  let rec check_times i = function
    | { Workload.Stream.now; _ } :: rest ->
        check_int "timestamp" (1000 + (i * 10)) now;
        check_times (i + 1) rest
    | [] -> ()
  in
  check_times 0 stream;
  (* churn produces more distinct flows than the pool *)
  let distinct =
    List.filter_map
      (fun e -> Net.Flow.of_packet e.Workload.Stream.packet)
      stream
    |> List.sort_uniq Net.Flow.compare |> List.length
  in
  check_bool "churn grows flow count" true (distinct > 16)

let test_heartbeats () =
  let frames =
    Workload.Gen.heartbeat_frames ~backend_ids:[ 0; 3; 7 ] ~port:9999
  in
  check_int "one per backend" 3 (List.length frames);
  List.iter2
    (fun b frame ->
      check_int "dst port" 9999 (Net.L4.get_dst_port frame);
      check_int "encodes backend" b (Net.Ipv4.get_src frame land 0xff))
    [ 0; 3; 7 ] frames

let test_adversarial_collisions () =
  let rng = Workload.Prng.create ~seed:7 in
  let ft =
    Dslib.Flow_table.create ~base:0x7800_0000 ~key_len:5 ~capacity:64
      ~buckets:64 ~timeout:1000 ()
  in
  let keys =
    Workload.Adversarial.colliding_flows rng
      ~hash:(Dslib.Flow_table.hash_of_key ft)
      ~key_len:5 ~bucket:0 32
  in
  check_int "count" 32 (List.length keys);
  List.iter
    (fun key ->
      check_int "all in bucket 0" 0 (Dslib.Flow_table.hash_of_key ft key))
    keys;
  check_int "distinct" 32 (List.length (List.sort_uniq compare keys))

let test_fill_collided_then_mass_expiry () =
  let rng = Workload.Prng.create ~seed:8 in
  let ft =
    Dslib.Flow_table.create ~base:0x7900_0000 ~key_len:5 ~capacity:32
      ~buckets:32 ~timeout:1000 ()
  in
  Workload.Adversarial.fill_flow_table_collided ft rng ~value:1
    ~stamped_at:500;
  check_int "full" 32 (Dslib.Flow_table.size ft);
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  check_int "mass expiry" 32 (Dslib.Flow_table.expire ft meter ~now:10_000)

let test_colliding_flows_arbitrary_bucket () =
  (* the collision sampler must aim at any bucket, not just 0, and on
     the NAT's hash as well as the flow table's *)
  let rng = Workload.Prng.create ~seed:21 in
  let alloc =
    Dslib.Port_alloc.dll ~base:0x7a00_0000 ~port_lo:1000 ~port_hi:1063
  in
  let nat =
    Dslib.Nat_table.create ~base:0x7a10_0000 ~capacity:64 ~buckets:16
      ~timeout:1000 ~alloc ~port_lo:1000 ~port_hi:1063 ()
  in
  let keys =
    Workload.Adversarial.colliding_flows rng
      ~hash:(Dslib.Nat_table.hash_of_flow nat)
      ~key_len:5 ~bucket:11 24
  in
  check_int "count" 24 (List.length keys);
  check_int "distinct" 24 (List.length (List.sort_uniq compare keys));
  List.iter
    (fun key ->
      check_int "lands in bucket 11" 11 (Dslib.Nat_table.hash_of_flow nat key))
    keys

let test_colliding_flows_exhaustion () =
  (* an unreachable bucket must fail loudly — a descriptive
     Invalid_argument naming the budget, not a silent hang or a short
     list *)
  let rng = Workload.Prng.create ~seed:23 in
  let contains ~sub s =
    let n = String.length sub in
    let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  (match
     Workload.Adversarial.colliding_flows rng ~budget:1000
       ~hash:(fun _ -> 1) (* every key hashes to 1; bucket 0 unreachable *)
       ~key_len:5 ~bucket:0 4
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "message names the budget" true
        (contains ~sub:"budget exhausted after 1000 draws" msg);
      Alcotest.(check bool)
        "message names the bucket" true
        (contains ~sub:"bucket 0" msg));
  match
    Workload.Adversarial.colliding_flows rng ~budget:0 ~hash:(fun _ -> 0)
      ~key_len:5 ~bucket:0 1
  with
  | _ -> Alcotest.fail "expected Invalid_argument for budget < 1"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "non-positive budget rejected up front" true
        (contains ~sub:"budget < 1" msg)

let test_fill_collided_reaches_capacity () =
  let rng = Workload.Prng.create ~seed:22 in
  let alloc =
    Dslib.Port_alloc.array ~base:0x7b00_0000 ~port_lo:2000 ~port_hi:2127
  in
  let nat =
    Dslib.Nat_table.create ~base:0x7b10_0000 ~capacity:48 ~buckets:16
      ~timeout:1000 ~alloc ~port_lo:2000 ~port_hi:2127 ()
  in
  Workload.Adversarial.fill_nat_collided nat rng ~stamped_at:500;
  check_int "nat full" 48 (Dslib.Nat_table.size nat);
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  check_int "all expire in one storm" 48
    (Dslib.Nat_table.expire nat meter ~now:10_000);
  let mac =
    Dslib.Mac_table.create ~base:0x7b20_0000 ~capacity:40 ~buckets:8
      ~timeout:1000 ~threshold:100 ()
  in
  Workload.Adversarial.fill_mac_table_collided mac rng ~port:3 ~stamped_at:500;
  check_int "mac full" 40 (Dslib.Mac_table.size mac)

(* ---- Soak generators ------------------------------------------------------ *)

let test_soak_zipf_popularity () =
  let z = Workload.Soak.zipf ~n:1024 ~theta:1.0 in
  let rng = Workload.Prng.create ~seed:23 in
  let counts = Array.make 1024 0 in
  for _ = 1 to 20_000 do
    let r = Workload.Soak.zipf_draw z rng in
    check_bool "rank in range" true (r >= 0 && r < 1024);
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 0 dominates and the tail is long but thin *)
  check_bool "head is hot" true (counts.(0) > 10 * counts.(100));
  check_bool "head share sane" true (counts.(0) < 10_000);
  (match Workload.Soak.zipf ~n:0 ~theta:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty universe accepted")

let test_soak_pareto_sizes () =
  let rng = Workload.Prng.create ~seed:24 in
  let total = ref 0 and mice = ref 0 in
  let n = 5_000 in
  for _ = 1 to n do
    let s = Workload.Soak.pareto_size rng ~alpha:1.3 ~lo:1 ~hi:1000 in
    check_bool "within bounds" true (s >= 1 && s <= 1000);
    total := !total + s;
    if s <= 10 then incr mice
  done;
  (* heavy tail: most flows are mice, yet the mean sits well above the
     median because elephants carry the volume *)
  check_bool "mostly mice" true (!mice > n / 2);
  check_bool "mean pulled up by elephants" true (!total / n >= 3)

let test_soak_flow_universe () =
  let idx = [ 0; 1; 255; 256; 65_535; 65_536; 1_000_000; (1 lsl 24) - 1 ] in
  let flows = List.map Workload.Soak.flow_of_index idx in
  check_int "distinct across octet boundaries" (List.length idx)
    (List.length (List.sort_uniq Net.Flow.compare flows));
  List.iter2
    (fun i f ->
      match Net.Flow.of_packet (Workload.Soak.packet_of_index i) with
      | Some f' -> check_bool "packet realizes the flow" true (Net.Flow.equal f f')
      | None -> Alcotest.fail "soak packet unparsable")
    idx flows;
  let churn = Workload.Soak.churn_packets ~offset:5_000 200 in
  check_int "churn chunk size" 200 (List.length churn);
  check_int "churn flows distinct" 200
    (List.filter_map Net.Flow.of_packet churn
    |> List.sort_uniq Net.Flow.compare |> List.length)

let test_soak_nat_collision_packets_realizable () =
  (* unlike [Adversarial.colliding_flows], these keys must survive the
     packet round-trip: 16-bit ports, real IPs — and still collide *)
  let rng = Workload.Prng.create ~seed:25 in
  let alloc =
    Dslib.Port_alloc.dll ~base:0x7c00_0000 ~port_lo:1000 ~port_hi:1063
  in
  let nat =
    Dslib.Nat_table.create ~base:0x7c10_0000 ~capacity:64 ~buckets:64
      ~timeout:1000 ~alloc ~port_lo:1000 ~port_hi:1063 ()
  in
  let flows = Workload.Soak.nat_collision_flows nat rng ~bucket:7 16 in
  check_int "count" 16 (List.length flows);
  check_int "distinct" 16
    (List.length (List.sort_uniq Net.Flow.compare flows));
  List.iter2
    (fun (f : Net.Flow.t) packet ->
      (match Net.Flow.of_packet packet with
      | Some f' -> check_bool "round-trips" true (Net.Flow.equal f f')
      | None -> Alcotest.fail "collision packet unparsable");
      let key =
        [| f.Net.Flow.src_ip; f.Net.Flow.dst_ip; f.Net.Flow.src_port;
           f.Net.Flow.dst_port; f.Net.Flow.proto |]
      in
      check_int "chains into bucket 7" 7 (Dslib.Nat_table.hash_of_flow nat key))
    flows
    (Workload.Soak.packets_of_flows flows)

let test_soak_lpm_attack_hits_tbl8 () =
  let ip = Net.Ipv4.addr_of_parts in
  let lpm = Dslib.Lpm_dir24_8.create ~base:0x7d00_0000 ~default_port:0 in
  Dslib.Lpm_dir24_8.add_route lpm ~prefix:(ip 10 0 0 0) ~len:16 ~port:1;
  Dslib.Lpm_dir24_8.add_route lpm ~prefix:(ip 93 184 216 0) ~len:28 ~port:2;
  let rng = Workload.Prng.create ~seed:26 in
  let pkts =
    Workload.Soak.lpm_attack_packets rng lpm ~slot:(ip 93 184 216 0) 64
  in
  check_int "count" 64 (List.length pkts);
  List.iter
    (fun p ->
      check_bool "forced onto the two-lookup path" true
        (Dslib.Lpm_dir24_8.uses_tbl8 lpm (Net.Ipv4.get_dst p)))
    pkts;
  (* aiming at a slot with no >24-bit route is a caller bug *)
  match Workload.Soak.lpm_attack_packets rng lpm ~slot:(ip 10 0 0 0) 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-extended slot accepted"

(* ---- Contract diff ----------------------------------------------------------- *)

let entry name cost =
  Perf.Contract.entry ~class_name:name cost

let vec ic =
  Perf.Cost_vec.make ~ic ~ma:(Perf.Perf_expr.const 1)
    ~cycles:(Perf.Perf_expr.const 1)

let test_contract_diff () =
  let e = Perf.Pcv.expired in
  let before =
    Perf.Contract.make ~nf:"x"
      [
        entry "A" (vec (Perf.Perf_expr.add_const 10 (Perf.Perf_expr.term 3 [ e ])));
        entry "B" (vec (Perf.Perf_expr.const 5));
      ]
  in
  let after =
    Perf.Contract.make ~nf:"x"
      [
        entry "A" (vec (Perf.Perf_expr.add_const 10 (Perf.Perf_expr.term 7 [ e ])));
        entry "C" (vec (Perf.Perf_expr.const 2));
      ]
  in
  let d = Perf.Contract_diff.diff before after in
  check_bool "not empty" false (Perf.Contract_diff.is_empty d);
  let kinds =
    List.map
      (function
        | Perf.Contract_diff.Added e -> "+" ^ e.Perf.Contract.class_name
        | Perf.Contract_diff.Removed e -> "-" ^ e.Perf.Contract.class_name
        | Perf.Contract_diff.Changed { class_name; _ } -> "~" ^ class_name)
      d
    |> List.sort String.compare
  in
  check_bool "changes" true (kinds = [ "+C"; "-B"; "~A" ]);
  check_int "regressions include growth and additions" 2
    (List.length (Perf.Contract_diff.regressions d));
  check_bool "identity diff empty" true
    (Perf.Contract_diff.is_empty (Perf.Contract_diff.diff before before))

(* ---- Sensitivity ---------------------------------------------------------------- *)

let test_sensitivity_sweep () =
  let l = Perf.Pcv.prefix_len in
  let cost =
    vec (Perf.Perf_expr.add_const 5 (Perf.Perf_expr.term 4 [ l ]))
  in
  let points =
    Distiller.Sensitivity.sweep ~cost ~metric:Perf.Metric.Instructions
      ~pcv:l ~base:[] ~lo:0 ~hi:4
      ~observed:[ 1; 1; 2; 3 ]
      ()
  in
  check_int "points" 5 (List.length points);
  let p2 = List.nth points 2 in
  check_int "bound at 2" 13 p2.Distiller.Sensitivity.bound;
  check_bool "share at 2" true
    (Float.abs (p2.Distiller.Sensitivity.traffic_share -. 0.25) < 1e-9);
  check_bool "knee at 99%" true
    (Distiller.Sensitivity.knee points ~threshold:0.99 = Some 3);
  check_bool "knee never reached on empty traffic" true
    (Distiller.Sensitivity.knee
       (Distiller.Sensitivity.sweep ~cost ~metric:Perf.Metric.Instructions
          ~pcv:l ~base:[] ~lo:0 ~hi:2 ())
       ~threshold:0.5
    = None)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "distinct flows" `Quick test_distinct_flows;
    Alcotest.test_case "packets parse back" `Quick test_packets_parse_back;
    Alcotest.test_case "churn stream" `Quick test_churn_stream;
    Alcotest.test_case "heartbeat frames" `Quick test_heartbeats;
    Alcotest.test_case "adversarial collisions" `Quick
      test_adversarial_collisions;
    Alcotest.test_case "synthesized mass expiry" `Quick
      test_fill_collided_then_mass_expiry;
    Alcotest.test_case "colliding flows hit any bucket" `Quick
      test_colliding_flows_arbitrary_bucket;
    Alcotest.test_case "colliding flows exhaustion is descriptive" `Quick
      test_colliding_flows_exhaustion;
    Alcotest.test_case "collided fills reach capacity" `Quick
      test_fill_collided_reaches_capacity;
    Alcotest.test_case "soak zipf popularity" `Quick test_soak_zipf_popularity;
    Alcotest.test_case "soak pareto sizes" `Quick test_soak_pareto_sizes;
    Alcotest.test_case "soak flow universe" `Quick test_soak_flow_universe;
    Alcotest.test_case "soak collision packets realizable" `Quick
      test_soak_nat_collision_packets_realizable;
    Alcotest.test_case "soak lpm attack hits tbl8" `Quick
      test_soak_lpm_attack_hits_tbl8;
    Alcotest.test_case "contract diff" `Quick test_contract_diff;
    Alcotest.test_case "sensitivity sweep" `Quick test_sensitivity_sweep;
  ]
