(* Tests for the Exec.Pool domain pool and the parallel BOLT pipeline's
   determinism guarantee (analyze ~jobs:n is bit-identical to serial). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_map_is_list_map () =
  let items = List.init 97 (fun i -> i - 11) in
  let f x = (x * x) - (3 * x) + 7 in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs:%d preserves order" jobs)
        expected
        (Exec.Pool.map ~jobs f items))
    [ 1; 2; 4; 9 ]

let test_map_edge_cases () =
  Alcotest.(check (list int)) "empty list" [] (Exec.Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int))
    "more jobs than items" [ 2; 3 ]
    (Exec.Pool.map ~jobs:8 succ [ 1; 2 ]);
  Alcotest.(check (list int))
    "single item" [ 42 ]
    (Exec.Pool.map ~jobs:4 (fun _ -> 42) [ 0 ])

exception Boom of int

let test_map_exception_propagation () =
  (* several items raise; the pool must re-raise for the lowest index *)
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Exec.Pool.map ~jobs f [ 1; 2; 6; 4; 3; 9 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          check_int (Printf.sprintf "jobs:%d lowest index wins" jobs) 6 n)
    [ 1; 4 ]

let test_default_jobs_env () =
  let restore =
    match Sys.getenv_opt "BOLT_JOBS" with
    | Some v -> fun () -> Unix.putenv "BOLT_JOBS" v
    | None -> fun () -> Unix.putenv "BOLT_JOBS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "BOLT_JOBS" "3";
      check_int "BOLT_JOBS honoured" 3 (Exec.Pool.default_jobs ());
      Unix.putenv "BOLT_JOBS" "0";
      check_bool "non-positive ignored" true (Exec.Pool.default_jobs () >= 1);
      Unix.putenv "BOLT_JOBS" "many";
      check_bool "garbage ignored" true (Exec.Pool.default_jobs () >= 1))

let test_run_each_order_and_exceptions () =
  List.iter
    (fun n ->
      Alcotest.(check (list int))
        (Printf.sprintf "run_each n:%d index order" n)
        (List.init n (fun i -> i * i))
        (Exec.Pool.run_each ~n (fun i -> i * i)))
    [ 0; 1; 2; 5 ];
  match Exec.Pool.run_each ~n:4 (fun i -> if i >= 2 then raise (Boom i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> check_int "lowest index wins" 2 n

let test_workers_reuse_and_stop () =
  let w = Exec.Pool.Workers.create 3 in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.Workers.stop w)
    (fun () ->
      check_int "size counts the caller" 4 (Exec.Pool.Workers.size w);
      (* persistent workers serve many jobs without respawning *)
      let acc = Array.make 4 0 in
      for _ = 1 to 5 do
        Exec.Pool.Workers.run w (fun i -> acc.(i) <- acc.(i) + i)
      done;
      Alcotest.(check (array int))
        "every index ran every job" [| 0; 5; 10; 15 |] acc;
      (match Exec.Pool.Workers.run w (fun i -> if i > 0 then raise (Boom i))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n -> check_int "lowest failing index wins" 1 n);
      (* the pool survives a failing job *)
      Exec.Pool.Workers.run w (fun i -> acc.(i) <- -i);
      Alcotest.(check (array int))
        "usable after an exception" [| 0; -1; -2; -3 |] acc);
  Exec.Pool.Workers.stop w;
  (* stop is idempotent; run after stop is a programming error *)
  match Exec.Pool.Workers.run w (fun _ -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument after stop"
  | exception Invalid_argument _ -> ()

(* The engine's feasibility queries go through the shared solver cache;
   re-exploring the same program must be answered entirely from cache. *)
let test_explore_populates_solver_cache () =
  Solver.Cache.reset ();
  let explore () =
    ignore
      (Symbex.Engine.explore ~models:Bolt.Ds_models.default Nf.Nat.program)
  in
  explore ();
  let s1 = Solver.Cache.stats () in
  check_bool "first explore misses" true (s1.Solver.Cache.misses > 0);
  explore ();
  let s2 = Solver.Cache.stats () in
  check_int "second explore adds no misses" s1.Solver.Cache.misses
    s2.Solver.Cache.misses;
  check_bool "second explore hits" true
    (s2.Solver.Cache.hits > s1.Solver.Cache.hits)

let suite =
  [
    Alcotest.test_case "map equals List.map" `Quick test_map_is_list_map;
    Alcotest.test_case "map edge cases" `Quick test_map_edge_cases;
    Alcotest.test_case "exception propagation" `Quick
      test_map_exception_propagation;
    Alcotest.test_case "BOLT_JOBS env" `Quick test_default_jobs_env;
    Alcotest.test_case "run_each order and exceptions" `Quick
      test_run_each_order_and_exceptions;
    Alcotest.test_case "persistent workers reuse and stop" `Quick
      test_workers_reuse_and_stop;
    Alcotest.test_case "explore populates solver cache" `Quick
      test_explore_populates_solver_cache;
  ]
