(* Tests for the conntrack firewall and the analysis tooling (reports,
   validation). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze program contracts =
  Bolt.Pipeline.analyze
    ~config:Bolt.Pipeline.Config.(default |> with_contracts contracts)
    program

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i =
    i + n <= h && (String.sub haystack i n = needle || loop (i + 1))
  in
  loop 0

(* ---- Conntrack firewall --------------------------------------------------- *)

let ct_config =
  { Nf.Conntrack.capacity = 64; buckets = 32; timeout = 5_000 }

let test_conntrack_semantics () =
  let dss, _ =
    Nf.Conntrack.setup ~config:ct_config (Dslib.Layout.allocator ())
  in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let inside =
    Net.Build.udp ~src_ip:0x0a000001 ~dst_ip:0x08080808 ~src_port:4444
      ~dst_port:53 ()
  in
  let reply =
    Net.Build.udp ~src_ip:0x08080808 ~dst_ip:0x0a000001 ~src_port:53
      ~dst_port:4444 ()
  in
  let unsolicited =
    Net.Build.udp ~src_ip:0x08080808 ~dst_ip:0x0a000001 ~src_port:53
      ~dst_port:5555 ()
  in
  let run packet in_port now =
    (Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~in_port ~now
       Nf.Conntrack.program packet)
      .Exec.Interp.outcome
  in
  (* unsolicited inbound traffic is dropped *)
  check_bool "unsolicited dropped" true (run reply 1 1000 = Exec.Interp.Dropped);
  (* an outbound packet opens the flow... *)
  check_bool "outbound passes" true (run inside 0 1100 = Exec.Interp.Sent 1);
  (* ...after which the reply passes, but only the matching tuple *)
  check_bool "reply passes" true (run reply 1 1200 = Exec.Interp.Sent 0);
  check_bool "other inbound still dropped" true
    (run unsolicited 1 1300 = Exec.Interp.Dropped);
  (* the flow expires when idle *)
  check_bool "expired reply dropped" true
    (run reply 1 50_000 = Exec.Interp.Dropped)

let test_conntrack_contract () =
  let t = analyze Nf.Conntrack.program (Nf.Conntrack.contracts ~config:ct_config ()) in
  check_int "all solved" 0 t.Bolt.Pipeline.unsolved;
  let classes = Nf.Conntrack.classes ~config:ct_config () in
  let contract = Bolt.Pipeline.contract t ~classes in
  let at name =
    Result.get_ok
      (Perf.Contract.predict contract ~class_name:name
         Perf.Pcv.[ (expired, 0); (collisions, 0); (traversals, 1) ]
         Perf.Metric.Instructions)
  in
  check_bool "new flow is the dearest" true (at "CT2" > at "CT3");
  check_bool "drop is the cheapest stateful path" true (at "CT5" < at "CT4");
  (* inbound and outbound established cost the same (both are one hit) *)
  check_int "symmetric established" (at "CT3") (at "CT4")

let test_conntrack_soundness_random () =
  let worst =
    Bolt.Pipeline.worst_case
      (analyze Nf.Conntrack.program
         (Nf.Conntrack.contracts ~config:ct_config ()))
  in
  let dss, _ =
    Nf.Conntrack.setup ~config:ct_config (Dslib.Layout.allocator ())
  in
  let rng = Workload.Prng.create ~seed:51 in
  let flows = Workload.Gen.distinct_flows rng 32 in
  let stream =
    List.init 400 (fun i ->
        let f = List.nth flows (Workload.Prng.below rng 32) in
        let outbound = Workload.Prng.bool rng 0.6 in
        {
          Workload.Stream.packet =
            Net.Build.udp_of_flow (if outbound then f else Net.Flow.reverse f);
          now = 1_000 + (i * 30);
          in_port = (if outbound then 0 else 1);
        })
  in
  let report =
    Experiments.Validate.run ~worst ~dss Nf.Conntrack.program stream
  in
  check_int "no violations" 0
    (List.length report.Experiments.Validate.violations);
  check_int "all packets checked" 400 report.Experiments.Validate.packets

(* ---- Count-min sketch / heavy-hitter limiter -------------------------------- *)

let test_count_min_semantics () =
  let cm = Dslib.Count_min.create ~base:0x7c00_0000 ~rows:4 ~width:256 in
  let quiet () = Exec.Meter.create (Hw.Model.null ()) in
  let k1 = [| 1; 0; 0; 0; 17 |] and k2 = [| 2; 0; 0; 0; 17 |] in
  check_int "fresh key" 0 (Dslib.Count_min.estimate_quiet cm k1);
  for _ = 1 to 10 do
    ignore (Dslib.Count_min.update cm (quiet ()) ~key:k1)
  done;
  (* count-min never under-estimates *)
  check_bool "no under-estimate" true
    (Dslib.Count_min.estimate_quiet cm k1 >= 10);
  check_bool "other keys mostly unaffected" true
    (Dslib.Count_min.estimate_quiet cm k2 <= 10);
  Dslib.Count_min.decay cm;
  check_bool "decay halves" true (Dslib.Count_min.estimate_quiet cm k1 <= 5);
  (match Dslib.Count_min.create ~base:0 ~rows:4 ~width:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two width accepted")

let test_count_min_contract_dominates () =
  let rows = 4 in
  let cm = Dslib.Count_min.create ~base:0x7d00_0000 ~rows ~width:128 in
  let lib = Perf.Ds_contract.library (Dslib.Count_min.Recipe.contract ~rows) in
  let check_method meth f =
    let c = Perf.Ds_contract.find_exn lib ~ds_kind:"count_min" ~meth in
    let branch = Perf.Ds_contract.find_branch_exn c ~tag:"ok" in
    for i = 1 to 30 do
      let meter = Exec.Meter.create (Hw.Model.conservative ()) in
      ignore (f meter [| i * 7; 0; 0; 0; 6 |]);
      let bound m = Perf.Cost_vec.eval_exn [] branch.Perf.Ds_contract.cost m in
      check_bool (meth ^ " ic") true
        (bound Perf.Metric.Instructions >= Exec.Meter.ic meter);
      check_bool (meth ^ " ma") true
        (bound Perf.Metric.Memory_accesses >= Exec.Meter.ma meter);
      check_bool (meth ^ " cycles") true
        (bound Perf.Metric.Cycles >= Exec.Meter.cycles meter)
    done
  in
  check_method "update" (fun m key -> Dslib.Count_min.update cm m ~key);
  check_method "estimate" (fun m key -> Dslib.Count_min.estimate cm m ~key)

let test_limiter_sheds_heavy_hitters () =
  let dss, _ = Nf.Limiter.setup (Dslib.Layout.allocator ()) in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let attacker =
    Net.Build.udp ~src_ip:0x66000001 ~dst_ip:2 ~src_port:3 ~dst_port:4 ()
  in
  let victim =
    Net.Build.udp ~src_ip:0x0a000001 ~dst_ip:2 ~src_port:9 ~dst_port:4 ()
  in
  let run pkt =
    (Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~now:1
       Nf.Limiter.program pkt)
      .Exec.Interp.outcome
  in
  (* flood from one source until it crosses the threshold *)
  let dropped = ref 0 in
  for _ = 1 to Nf.Limiter.threshold + 50 do
    if run attacker = Exec.Interp.Dropped then incr dropped
  done;
  check_bool "flood eventually shed" true (!dropped >= 40);
  check_bool "bystander unaffected" true (run victim = Exec.Interp.Sent 1)

(* ---- ICMP responder ---------------------------------------------------------- *)

let test_responder_semantics () =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let run pkt in_port =
    (Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) ~in_port
       Nf.Responder.program pkt)
      .Exec.Interp.outcome
  in
  let src = Net.Ipv4.addr_of_parts 10 0 0 7 in
  let ping =
    Net.Icmp.echo_request ~src_ip:src ~dst_ip:Nf.Responder.device_ip
      ~ident:3 ~seq:1 ()
  in
  check_bool "answered out the ingress port" true
    (run ping 2 = Exec.Interp.Sent 2);
  (* the bounce rewrote the packet into a reply back to the sender *)
  check_int "now a reply" Net.Icmp.type_echo_reply (Net.Icmp.get_type ping);
  check_int "addressed to the pinger" src (Net.Ipv4.get_dst ping);
  check_int "from the device" Nf.Responder.device_ip (Net.Ipv4.get_src ping);
  (* pings for someone else, and non-pings, are dropped *)
  let not_ours =
    Net.Icmp.echo_request ~src_ip:src ~dst_ip:(src + 1) ~ident:3 ~seq:1 ()
  in
  check_bool "not ours" true (run not_ours 0 = Exec.Interp.Dropped);
  let udp = Net.Build.udp ~src_ip:src ~dst_ip:Nf.Responder.device_ip
      ~src_port:1 ~dst_port:2 () in
  check_bool "udp dropped" true (run udp 0 = Exec.Interp.Dropped)

let test_responder_contract_bounds_bounce () =
  let t = analyze Nf.Responder.program (Perf.Ds_contract.library []) in
  check_int "all solved" 0 t.Bolt.Pipeline.unsolved;
  let contract =
    Bolt.Pipeline.contract t ~classes:(Nf.Responder.classes ())
  in
  let bound =
    Result.get_ok
      (Perf.Contract.predict contract ~class_name:"Echo request" []
         Perf.Metric.Instructions)
  in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let ping =
    Net.Icmp.echo_request ~src_ip:123456 ~dst_ip:Nf.Responder.device_ip
      ~ident:1 ~seq:1 ()
  in
  let run =
    Exec.Interp.run ~meter ~mode:(Exec.Interp.Production [])
      Nf.Responder.program ping
  in
  check_bool "bounce within bound" true (bound >= run.Exec.Interp.ic)

(* ---- Validate tool --------------------------------------------------------- *)

let test_validate_detects_breakage () =
  (* a deliberately-wrong (zero) contract must be flagged on every packet *)
  let dss, _ = Nf.Policer.setup (Dslib.Layout.allocator ()) in
  let stream =
    Workload.Stream.constant_rate ~in_port:0 ~start:1_000 ~gap:100
      [
        Net.Build.udp ~src_ip:1 ~dst_ip:2 ~src_port:3 ~dst_port:4 ();
        Net.Build.udp ~src_ip:5 ~dst_ip:6 ~src_port:7 ~dst_port:8 ();
      ]
  in
  let report =
    Experiments.Validate.run ~worst:Perf.Cost_vec.zero ~dss
      Nf.Policer.program stream
  in
  check_bool "violations found" true
    (List.length report.Experiments.Validate.violations >= 2);
  let rendered = Fmt.to_to_string Experiments.Validate.pp report in
  check_bool "report names the breakage" true
    (contains rendered "CONTRACT VIOLATED")

(* ---- Report rendering -------------------------------------------------------- *)

let test_report_rendering () =
  let t = analyze Nf.Policer.program (Nf.Policer.contracts ()) in
  let summary = Fmt.to_to_string Bolt.Report.pp_summary t in
  check_bool "summary names the NF" true (contains summary "policer");
  check_bool "summary counts paths" true (contains summary "3 feasible paths");
  let paths =
    Fmt.to_to_string (Bolt.Report.pp_paths ~witnesses:true) t
  in
  check_bool "paths show tags" true (contains paths "bucket.conform[conform]");
  check_bool "paths show witnesses" true (contains paths "witness");
  (* the witness embeds the IPv4 ethertype the path requires *)
  check_bool "witness satisfies the class" true (contains paths "0800");
  let full =
    Fmt.to_to_string
      (Bolt.Report.pp_full ~classes:(Nf.Policer.classes ()))
      t
  in
  check_bool "full report includes the contract" true
    (contains full "performance contract for policer")

let test_witness_line () =
  let p = Net.Packet.create 4 in
  Net.Packet.set_u8 p 0 0xde;
  Net.Packet.set_u8 p 1 0xad;
  Alcotest.(check string) "hex" "dead0000" (Bolt.Report.witness_line p);
  let big = Net.Packet.create 100 in
  check_bool "truncation marker" true
    (contains (Bolt.Report.witness_line big) "100B")

let suite =
  [
    Alcotest.test_case "conntrack semantics" `Quick test_conntrack_semantics;
    Alcotest.test_case "conntrack contract" `Quick test_conntrack_contract;
    Alcotest.test_case "conntrack random soundness" `Slow
      test_conntrack_soundness_random;
    Alcotest.test_case "responder semantics" `Quick test_responder_semantics;
    Alcotest.test_case "responder contract" `Quick
      test_responder_contract_bounds_bounce;
    Alcotest.test_case "count-min semantics" `Quick test_count_min_semantics;
    Alcotest.test_case "count-min contract" `Quick
      test_count_min_contract_dominates;
    Alcotest.test_case "limiter sheds heavy hitters" `Quick
      test_limiter_sheds_heavy_hitters;
    Alcotest.test_case "validate detects breakage" `Quick
      test_validate_detects_breakage;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "witness line" `Quick test_witness_line;
  ]
