(* Tests for the NF IR and its concrete interpreter. *)

open Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_program ?(packet = Net.Packet.create 64) ?(mode = Exec.Interp.Production [])
    ?(in_port = 0) ?(now = 1000) program =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  (Exec.Interp.run ~meter ~mode ~in_port ~now program packet, packet)

let open_expr = Expr.var
let ( +! ) = Expr.( + )

let test_expr_vars () =
  let e = Expr.(var "a" + (var "b" * var "a")) in
  Alcotest.(check (list string)) "vars" [ "a"; "b" ] (Expr.vars e)

let test_validate_rejects () =
  let reject name state body =
    match Program.make ~name ~state body with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  reject "unbound_var" [] [ Stmt.assign "x" (open_expr "y"); Stmt.drop ];
  reject "no_return" [] [ Stmt.assign "x" (Expr.int 1) ];
  reject "undeclared_instance" [] [ Stmt.call "t" "get" []; Stmt.drop ];
  reject "dup_instances"
    [ { Program.instance = "t"; kind = "x" };
      { Program.instance = "t"; kind = "y" } ]
    [ Stmt.drop ];
  reject "bad_loop_bound" []
    [ Stmt.While (Stmt.Unroll 0, Expr.int 0, []); Stmt.drop ];
  (* variables defined on only one branch are not defined after the if *)
  reject "branch_join" []
    [
      Stmt.if_ (open_expr "in_port") [ Stmt.assign "x" (Expr.int 1) ] [];
      Stmt.assign "y" (open_expr "x");
      Stmt.drop;
    ]

let test_validate_accepts_return_branch () =
  (* a branch that returns does not constrain the join *)
  let p =
    Program.make ~name:"ok" ~state:[]
      [
        Stmt.if_ (open_expr "in_port") [ Stmt.drop ]
          [ Stmt.assign "x" (Expr.int 1) ];
        Stmt.forward (open_expr "x");
      ]
  in
  check_bool "valid" true (Program.validate p = Ok ())

let test_interp_arithmetic () =
  let p =
    Program.make ~name:"arith" ~state:[]
      [
        Stmt.assign "a" Expr.(int 6 * int 7);
        Stmt.assign "b" Expr.(var "a" - int 2);
        Stmt.assign "c" Expr.(Binop (Expr.Div, var "b", int 4));
        Stmt.forward (open_expr "c");
      ]
  in
  let run, _ = run_program p in
  check_bool "forwarded on port 10" true (run.Exec.Interp.outcome = Exec.Interp.Sent 10)

let test_interp_packet_io () =
  let p =
    Program.make ~name:"pkt" ~state:[]
      [
        Stmt.assign "x" (Expr.load16 (Expr.int 12));
        Stmt.store16 (Expr.int 14) (open_expr "x" +! Expr.int 1);
        Stmt.drop;
      ]
  in
  let packet = Net.Packet.create 64 in
  Net.Packet.set_u16 packet 12 0x0800;
  let _, packet = run_program ~packet p in
  check_int "stored" 0x0801 (Net.Packet.get_u16 packet 14)

let test_interp_loop () =
  let p =
    Program.make ~name:"loop" ~state:[]
      [
        Stmt.assign "i" (Expr.int 0);
        Stmt.assign "acc" (Expr.int 0);
        Stmt.While
          ( Stmt.Unroll 10,
            Expr.(var "i" < int 5),
            [
              Stmt.assign "acc" Expr.(var "acc" + var "i");
              Stmt.assign "i" (open_expr "i" +! Expr.int 1);
            ] );
        Stmt.forward (open_expr "acc");
      ]
  in
  let run, _ = run_program p in
  check_bool "sum 0..4" true (run.Exec.Interp.outcome = Exec.Interp.Sent 10)

let test_interp_loop_bound_violation () =
  let p =
    Program.make ~name:"runaway" ~state:[]
      [
        Stmt.assign "i" (Expr.int 0);
        Stmt.While
          ( Stmt.Unroll 3,
            Expr.(var "i" < int 100),
            [ Stmt.assign "i" (open_expr "i" +! Expr.int 1) ] );
        Stmt.drop;
      ]
  in
  match run_program p with
  | exception Exec.Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "bound violation not detected"

let test_interp_division_by_zero () =
  let p =
    Program.make ~name:"div0" ~state:[]
      [
        Stmt.assign "x" (Expr.Binop (Expr.Div, Expr.int 1, Expr.int 0));
        Stmt.drop;
      ]
  in
  match run_program p with
  | exception Exec.Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "division by zero not detected"

let counting_ds calls =
  Exec.Ds.make ~kind:"counter" (fun meter meth args ->
      Exec.Meter.instr meter Hw.Cost.Alu 5;
      calls := (meth, Array.to_list args) :: !calls;
      Array.fold_left ( + ) 0 args)

let test_interp_calls_production () =
  let calls = ref [] in
  let p =
    Program.make ~name:"calls"
      ~state:[ { Program.instance = "ctr"; kind = "counter" } ]
      [
        Stmt.call ~ret:"x" "ctr" "add" [ Expr.int 2; Expr.int 3 ];
        Stmt.forward (open_expr "x");
      ]
  in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let run =
    Exec.Interp.run ~meter
      ~mode:(Exec.Interp.Production [ ("ctr", counting_ds calls) ])
      p (Net.Packet.create 64)
  in
  check_bool "return value" true (run.Exec.Interp.outcome = Exec.Interp.Sent 5);
  check_bool "recorded" true (!calls = [ ("add", [ 2; 3 ]) ])

let test_interp_analysis_stubs () =
  let p =
    Program.make ~name:"stubs"
      ~state:[ { Program.instance = "ctr"; kind = "counter" } ]
      [
        Stmt.call ~ret:"x" "ctr" "add" [ Expr.int 2; Expr.int 3 ];
        Stmt.call ~ret:"y" "ctr" "add" [ open_expr "x" ];
        Stmt.forward (open_expr "y");
      ]
  in
  let meter = Exec.Meter.create ~trace:true (Hw.Model.null ()) in
  let run =
    Exec.Interp.run ~meter ~mode:(Exec.Interp.Analysis [ 42; 17 ]) p
      (Net.Packet.create 64)
  in
  check_bool "stub values" true (run.Exec.Interp.outcome = Exec.Interp.Sent 17);
  let call_events =
    List.filter
      (function Exec.Meter.E_call _ -> true | _ -> false)
      (Exec.Meter.events meter)
  in
  check_int "two call markers" 2 (List.length call_events);
  (* running out of stubs is an error *)
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  match
    Exec.Interp.run ~meter ~mode:(Exec.Interp.Analysis [ 1 ]) p
      (Net.Packet.create 64)
  with
  | exception Exec.Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "stub exhaustion not detected"

let test_analysis_overhead () =
  (* the analysis build charges the no-LTO call overhead, so it must cost
     at least as much as production for the same path *)
  let p =
    Program.make ~name:"ovh"
      ~state:[ { Program.instance = "ctr"; kind = "counter" } ]
      [ Stmt.call ~ret:"x" "ctr" "add" [ Expr.int 1 ]; Stmt.drop ]
  in
  let null_ds =
    Exec.Ds.make ~kind:"counter" (fun _ _ _ -> 1)
  in
  let m1 = Exec.Meter.create (Hw.Model.null ()) in
  let r1 =
    Exec.Interp.run ~meter:m1 ~mode:(Exec.Interp.Production [ ("ctr", null_ds) ])
      p (Net.Packet.create 64)
  in
  let m2 = Exec.Meter.create (Hw.Model.null ()) in
  let r2 =
    Exec.Interp.run ~meter:m2 ~mode:(Exec.Interp.Analysis [ 1 ]) p
      (Net.Packet.create 64)
  in
  check_int "overhead" (r1.Exec.Interp.ic + Hw.Cost.cost_call_overhead)
    r2.Exec.Interp.ic

let test_pcv_loop_observation () =
  let p =
    Program.make ~name:"opts" ~state:[]
      [
        Stmt.assign "i" (Expr.int 0);
        Stmt.While
          ( Stmt.Pcv_loop ("n", 10),
            Expr.(var "i" < int 4),
            [ Stmt.assign "i" (open_expr "i" +! Expr.int 1) ] );
        Stmt.drop;
      ]
  in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let _ =
    Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) p
      (Net.Packet.create 64)
  in
  check_int "trip count observed" 4
    (Option.get (Perf.Pcv.lookup (Exec.Meter.pcv_max meter) (Perf.Pcv.v "n")))

let test_semantics () =
  check_int "lnot" 1 (Semantics.apply_unop Expr.Lnot 0);
  check_int "shl" 8 (Semantics.apply_binop Expr.Shl 1 3);
  check_int "land" 1 (Semantics.apply_binop Expr.Land 5 9);
  match Semantics.apply_binop Expr.Rem 1 0 with
  | exception Semantics.Undefined _ -> ()
  | _ -> Alcotest.fail "rem by zero"

let test_semantics_operator_edges () =
  let undefined op a b =
    match Semantics.apply_binop op a b with
    | exception Semantics.Undefined _ -> ()
    | v -> Alcotest.fail (Printf.sprintf "expected Undefined, got %d" v)
  in
  undefined Expr.Div 1 0;
  undefined Expr.Div 0 0;
  undefined Expr.Rem 7 0;
  check_int "div truncates toward zero" 2 (Semantics.apply_binop Expr.Div 5 2);
  (* shift amounts are masked to 6 bits: a shift by the full word width
     (or any multiple of 64) is the identity, never zero or an
     exception *)
  check_int "shl 63" (1 lsl 63) (Semantics.apply_binop Expr.Shl 1 63);
  check_int "shl 64 is shl 0" 5 (Semantics.apply_binop Expr.Shl 5 64);
  check_int "shr 64 is shr 0" 5 (Semantics.apply_binop Expr.Shr 5 64);
  check_int "shr 70 is shr 6" 1 (Semantics.apply_binop Expr.Shr 64 70);
  (* comparisons are signed over native ints: -1 is less than 1, and a
     32-bit all-ones value is a large positive, not -1 *)
  check_int "-1 < 1 (signed)" 1 (Semantics.apply_binop Expr.Lt (-1) 1);
  check_int "-1 <= 0 (signed)" 1 (Semantics.apply_binop Expr.Le (-1) 0);
  check_int "0xffffffff not < 0" 0
    (Semantics.apply_binop Expr.Lt 0xffff_ffff 0);
  check_int "0 > -5 (signed)" 1 (Semantics.apply_binop Expr.Gt 0 (-5));
  (* bitwise not is masked to 32 bits *)
  check_int "bnot 0" 0xffff_ffff (Semantics.apply_unop Expr.Bnot 0);
  check_int "bnot all-ones" 0 (Semantics.apply_unop Expr.Bnot 0xffff_ffff)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i =
    i + n <= h && (String.sub haystack i n = needle || loop (i + 1))
  in
  loop 0

(* ---- The unified evaluator's edge behaviour, in both domains --------- *)

(* A loop whose condition never goes false within its static bound. *)
let runaway_program =
  Program.make ~name:"runaway_both" ~state:[]
    [
      Stmt.assign "i" (Expr.int 0);
      Stmt.While
        ( Stmt.Unroll 3,
          Expr.(var "i" < int 100),
          [ Stmt.assign "i" (open_expr "i" +! Expr.int 1) ] );
      Stmt.drop;
    ]

let test_loop_bound_exceeded_both_domains () =
  (* concrete domain: the overrun is a runtime contract violation *)
  (match run_program runaway_program with
  | exception Exec.Interp.Stuck msg ->
      check_bool "names the bound" true (contains msg "static bound 3")
  | _ -> Alcotest.fail "concrete: bound violation not detected");
  (* symbolic domain: the forced exit at the bound contradicts the
     always-true condition, so the path is pruned — never completed,
     never an exception *)
  let result =
    Symbex.Engine.explore ~models:(Symbex.Model.registry []) runaway_program
  in
  check_int "symbolic: no feasible path" 0
    (List.length result.Symbex.Engine.paths);
  check_bool "symbolic: the overrun fork was pruned" true
    (result.Symbex.Engine.infeasible_pruned > 0)

let test_fallthrough_both_domains () =
  (* [Program.make] rejects a body with no [Return]; build the record
     directly to drive the evaluator into its fall-through handler *)
  let p =
    { Program.name = "fallthrough"; state = []; body = [ Stmt.assign "x" (Expr.int 1) ] }
  in
  (match run_program p with
  | exception Exec.Interp.Stuck msg ->
      check_bool "concrete: names the fall-through" true
        (contains msg "fell through")
  | _ -> Alcotest.fail "concrete: fall-through not detected");
  match Symbex.Engine.explore ~models:(Symbex.Model.registry []) p with
  | exception Failure msg ->
      check_bool "symbolic: names the fall-through" true
        (contains msg "fell through")
  | _ -> Alcotest.fail "symbolic: fall-through not detected"

let test_program_pp () =
  let s = Fmt.to_to_string Program.pp Nf.Nat.program in
  check_bool "mentions state" true (contains s "state nat : nat_table")

let test_run_batch_amortizes_framing () =
  let p =
    Program.make ~name:"fwd" ~state:[] [ Stmt.forward_port 0 ]
  in
  let packets = List.init 8 (fun _ -> (Net.Packet.create 64, 0, 100)) in
  let m1 = Exec.Meter.create (Hw.Model.null ()) in
  let batched =
    Exec.Interp.run_batch ~meter:m1 ~mode:(Exec.Interp.Production []) p
      packets
  in
  check_int "eight runs" 8 (List.length batched);
  let m2 = Exec.Meter.create (Hw.Model.null ()) in
  List.iter
    (fun (pkt, in_port, now) ->
      ignore
        (Exec.Interp.run ~meter:m2 ~mode:(Exec.Interp.Production []) ~in_port
           ~now p pkt))
    packets;
  check_bool "batching is cheaper overall" true
    (Exec.Meter.ic m1 < Exec.Meter.ic m2);
  (* analysis mode is rejected *)
  (match
     Exec.Interp.run_batch ~meter:m1 ~mode:(Exec.Interp.Analysis []) p packets
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "analysis batch accepted")

let test_run_batch_tx_doorbell () =
  (* the TX framing of a burst must follow the actual outcome mix: one
     buffer recycle per dropped packet, and exactly one send doorbell
     iff the burst forwarded or flooded anything *)
  let p =
    Program.make ~name:"mix" ~state:[]
      [
        Stmt.if_
          (Expr.Binop (Expr.Eq, open_expr "in_port", Expr.int 1))
          [ Stmt.forward_port 1 ] [ Stmt.drop ];
      ]
  in
  let total in_ports =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let runs =
      Exec.Interp.run_batch ~meter ~mode:(Exec.Interp.Production []) p
        (List.map (fun ip -> (Net.Packet.create 64, ip, 100)) in_ports)
    in
    ( Exec.Meter.ic meter,
      List.fold_left (fun acc r -> acc + r.Exec.Interp.ic) 0 runs )
  in
  let framing charges =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    Exec.Interp.charge_rx meter;
    List.iter (Exec.Interp.charge_tx meter) charges;
    Exec.Meter.ic meter
  in
  let drop = Exec.Interp.Dropped and sent = Exec.Interp.Sent 0 in
  (* all-drop burst: no doorbell at all *)
  let ic, body = total [ 0; 0; 0 ] in
  check_int "all-drop framing" (framing [ drop; drop; drop ] + body) ic;
  (* mixed burst: per-drop recycles plus exactly one doorbell *)
  let ic, body = total [ 0; 1; 0; 1 ] in
  check_int "mixed framing" (framing [ drop; drop; sent ] + body) ic;
  (* all-forward burst: exactly one doorbell, no recycles *)
  let ic, body = total [ 1; 1 ] in
  check_int "all-forward framing" (framing [ sent ] + body) ic

let suite =
  [
    Alcotest.test_case "expr vars" `Quick test_expr_vars;
    Alcotest.test_case "validator rejections" `Quick test_validate_rejects;
    Alcotest.test_case "validator return-branch join" `Quick
      test_validate_accepts_return_branch;
    Alcotest.test_case "interp arithmetic" `Quick test_interp_arithmetic;
    Alcotest.test_case "interp packet io" `Quick test_interp_packet_io;
    Alcotest.test_case "interp loops" `Quick test_interp_loop;
    Alcotest.test_case "loop bound violation" `Quick
      test_interp_loop_bound_violation;
    Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
    Alcotest.test_case "production calls" `Quick test_interp_calls_production;
    Alcotest.test_case "analysis stubs" `Quick test_interp_analysis_stubs;
    Alcotest.test_case "analysis call overhead" `Quick test_analysis_overhead;
    Alcotest.test_case "pcv loop observation" `Quick test_pcv_loop_observation;
    Alcotest.test_case "shared semantics" `Quick test_semantics;
    Alcotest.test_case "semantics operator edges" `Quick
      test_semantics_operator_edges;
    Alcotest.test_case "loop bound exceeded in both domains" `Quick
      test_loop_bound_exceeded_both_domains;
    Alcotest.test_case "fall-through in both domains" `Quick
      test_fallthrough_both_domains;
    Alcotest.test_case "program pretty printing" `Quick test_program_pp;
    Alcotest.test_case "batched run amortizes framing" `Quick
      test_run_batch_amortizes_framing;
    Alcotest.test_case "batched TX follows the outcome mix" `Quick
      test_run_batch_tx_doorbell;
  ]
