(* Tests for the value-level spec API and the contract-guided autotuner:
   spec/registry equivalence (typed frozen knobs must render exactly the
   historic string lists), Pareto-dominance properties, grid-enumeration
   determinism across [jobs], and winner prediction-vs-replay agreement
   with an explicit error bound. *)

module Spec = Nf.Spec
module Tune = Tuner.Tune
module Pareto = Tuner.Pareto
module Space = Tuner.Space

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let check_strings msg expected got =
  Alcotest.(check (list (pair string string))) msg expected got

(* ---- spec / registry equivalence ---------------------------------------- *)

(* The typed frozen knobs must render byte-identically to the stringly
   lists the registry used to carry, so printers and the specialize gate
   see no difference. *)
let test_frozen_to_strings () =
  let frozen name =
    match Spec.frozen_knobs (Spec.of_name name) with
    | Some ks -> Spec.to_strings ks
    | None -> Alcotest.failf "%s lost its frozen knobs" name
  in
  check_strings "bridge"
    [
      ("capacity", "4096");
      ("buckets", "4096");
      ("timeout", "300000000");
      ("threshold", "6");
      ("seed", "42");
    ]
    (frozen "bridge");
  check_strings "nat"
    [
      ("capacity", "4096");
      ("buckets", "4096");
      ("timeout", "10000000");
      ("ports", "1024-9215");
      ("allocator", "dll");
    ]
    (frozen "nat");
  check_strings "firewall" [ ("ruleset", "builtin") ] (frozen "firewall");
  check_strings "static_router" [ ("fib", "builtin") ] (frozen "static_router");
  (* ... and the registry entries carry exactly those knobs. *)
  List.iter
    (fun name ->
      let e = Nf.Registry.find name in
      match e.Nf.Registry.frozen with
      | Some f ->
          check_strings (name ^ " entry") (frozen name)
            (Nf.Registry.to_strings f)
      | None -> Alcotest.failf "%s entry lost its frozen descriptor" name)
    [ "bridge"; "nat"; "firewall"; "static_router" ];
  List.iter
    (fun name ->
      check_bool (name ^ " stays unfrozen") true
        ((Nf.Registry.find name).Nf.Registry.frozen = None))
    [ "maglev"; "lpm_router"; "trie_router"; "conntrack" ]

let test_defaults_cover_registry () =
  let names = List.map Spec.name (Spec.defaults ()) in
  Alcotest.(check (list string)) "same names, same order"
    (Nf.Registry.names ()) names;
  (* of_name round-trips every registry name. *)
  List.iter
    (fun n -> check_string "round-trip" n (Spec.name (Spec.of_name n)))
    names;
  (match Spec.of_name "no_such_nf" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown name accepted");
  (* every entry is derived from its spec *)
  List.iter
    (fun e ->
      check_string "entry spec name" e.Nf.Registry.name
        (Spec.name e.Nf.Registry.spec))
    (Nf.Registry.all ())

let test_apply () =
  let b = Spec.of_name "bridge" in
  let b' = Spec.apply b (Spec.Capacity 512) in
  check_bool "capacity updated" true
    (List.mem ("capacity", "512") (Spec.to_strings (Spec.knobs b')));
  check_bool "buckets untouched" true
    (List.mem ("buckets", "4096") (Spec.to_strings (Spec.knobs b')));
  (match Spec.apply b (Spec.Lpm_backend `Trie) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bridge accepted an LPM backend");
  (match Spec.apply (Spec.of_name "responder") (Spec.Capacity 8) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stateless NF accepted a capacity");
  let r = Spec.apply (Spec.of_name "lpm_router") (Spec.Lpm_backend `Trie) in
  check_string "router backend swap renames" "trie_router" (Spec.name r)

let test_footprints () =
  check_int "responder is stateless" 0
    (Spec.footprint_bytes (Spec.of_name "responder"));
  let grow name =
    let s = Spec.of_name name in
    Spec.footprint_bytes (Spec.apply s (Spec.Capacity 8192))
    > Spec.footprint_bytes s
  in
  List.iter
    (fun n -> check_bool (n ^ " grows with capacity") true (grow n))
    [ "bridge"; "nat"; "conntrack" ];
  (* the dir-24-8 tier-1 table dominates any trie of the same routes *)
  let routes = Space.synthetic_routes 64 in
  let dir = Spec.Router { Spec.backend = `Dir24_8; routes } in
  let trie = Spec.Router { Spec.backend = `Trie; routes } in
  check_bool "dir24_8 outweighs trie" true
    (Spec.footprint_bytes dir > Spec.footprint_bytes trie)

(* ---- grid / routes ------------------------------------------------------- *)

let test_synthetic_routes_prefix_closed () =
  let small = Space.synthetic_routes 8 in
  let large = Space.synthetic_routes 32 in
  check_int "sizes" 8 (List.length small);
  check_int "sizes" 32 (List.length large);
  List.iteri
    (fun i r ->
      check_bool "prefix-closed" true (r = List.nth large i))
    small;
  List.iter
    (fun (_, len, port) ->
      check_bool "tiered lengths" true (len = 16 || len = 28);
      check_bool "port in range" true (port >= 1))
    large

let test_grid_enumeration () =
  let grid =
    Space.grid ~nf:"nat" ~backends:[ "dll"; "array" ]
      ~capacities:[ 64; 128 ] ()
  in
  check_int "cartesian size" 4 (List.length grid);
  Alcotest.(check (list string)) "backends outer, capacities inner"
    [ "dll"; "dll"; "array"; "array" ]
    (List.map Space.backend_of grid);
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  match Space.backends ~nf:"responder" with
  | exception Invalid_argument msg ->
      check_bool "error names the tunable NFs" true
        (List.for_all (contains msg) Space.tunable)
  | _ -> Alcotest.fail "responder has no tuning axis"

(* ---- Pareto -------------------------------------------------------------- *)

let test_pareto_front () =
  let o p50 p99 mem = { Pareto.p50; p99; mem } in
  check_bool "strict dominance" true
    (Pareto.dominates (o 1 2 3) (o 1 2 4));
  check_bool "irreflexive" false (Pareto.dominates (o 1 2 3) (o 1 2 3));
  check_bool "incomparable" false (Pareto.dominates (o 1 9 3) (o 2 2 3));
  let pts =
    [ ("a", o 10 20 100); ("b", o 5 25 100); ("c", o 10 20 99); ("d", o 11 21 101) ]
  in
  Alcotest.(check (list string)) "front keeps input order"
    [ "b"; "c" ]
    (List.map fst (Pareto.front pts))

(* ---- tuner runs ---------------------------------------------------------- *)

(* Small grids keep these runs quick; the harvest/pipeline work is
   per-backend, not per-point, so capacity lists can stay short. *)
let router_run jobs =
  Tune.run ~nf:"trie_router" ~capacities:[ 16; 64 ] ~packets:64 ~jobs ()

let test_front_is_nondominated () =
  let check_result r =
    let os = List.map (fun p -> (p.Tune.index, Tune.objectives p)) r.Tune.points in
    check_bool "front non-empty" true (r.Tune.front <> []);
    List.iter
      (fun p ->
        let mine = Tune.objectives p in
        List.iter
          (fun (i, o) ->
            if i <> p.Tune.index then
              check_bool "no emitted point is dominated" false
                (p.Tune.on_front && Pareto.dominates o mine))
          os)
      r.Tune.points;
    (* the winner sits on the front *)
    check_bool "winner on front" true r.Tune.winner.Tune.on_front
  in
  check_result (router_run 1);
  check_result
    (Tune.run ~nf:"nat" ~capacities:[ 64; 256 ] ~packets:64 ~jobs:1 ())

let test_jobs_determinism () =
  let r1 = router_run 1 and r1' = router_run 1 and r4 = router_run 4 in
  let render r = Perf.Json.to_string ~indent:true (Tune.to_json r) in
  check_string "identical reruns" (render r1) (render r1');
  (* jobs only parallelizes the pipeline; normalize the echoed knob and
     everything else must match bit-for-bit. *)
  check_string "jobs 1 = jobs 4" (render r1)
    (render { r4 with Tune.jobs = r1.Tune.jobs });
  check_int "echoes jobs" 4 r4.Tune.jobs

let test_winner_agreement () =
  let r = router_run 1 in
  let v = r.Tune.validation in
  (* Soundness: every replayed packet stayed under the contract at its
     own observed PCVs. *)
  check_bool "winner replay sound" true v.Tune.sound;
  check_int "replayed the whole stream" 64 v.Tune.packets;
  (* Agreement: predicted instruction percentiles over-approximate the
     measured ones (contracts are upper bounds) but on the router
     family the workload exercises the priced paths, so the
     overestimate stays within 50%. *)
  let within msg e =
    check_bool (msg ^ " >= 0") true (e >= 0);
    check_bool (msg ^ " <= 50") true (e <= 50)
  in
  within "p50 ic error" v.Tune.err_p50_ic_pct;
  within "p99 ic error" v.Tune.err_p99_ic_pct;
  (* cycle errors depend on the hardware model gap (null-model pricing
     vs realistic replay) and are only required to stay overestimates *)
  check_bool "cycles p99 overestimates" true (v.Tune.err_p99_cycles_pct >= 0)

let test_exposure_grows_with_capacity () =
  let r =
    Tune.run ~nf:"nat" ~backends:[ "dll" ] ~capacities:[ 64; 256 ] ~packets:32
      ~jobs:1 ()
  in
  match List.map (fun p -> p.Tune.exposure_ic) r.Tune.points with
  | [ Some small; Some big ] ->
      check_bool "adversarial bound grows with capacity" true (big > small)
  | _ -> Alcotest.fail "expected two bound points"

let suite =
  [
    Alcotest.test_case "frozen knobs render historically" `Quick
      test_frozen_to_strings;
    Alcotest.test_case "defaults cover the registry" `Quick
      test_defaults_cover_registry;
    Alcotest.test_case "knob apply" `Quick test_apply;
    Alcotest.test_case "footprint models" `Quick test_footprints;
    Alcotest.test_case "synthetic routes prefix-closed" `Quick
      test_synthetic_routes_prefix_closed;
    Alcotest.test_case "grid enumeration" `Quick test_grid_enumeration;
    Alcotest.test_case "pareto dominance and front" `Quick test_pareto_front;
    Alcotest.test_case "front is non-dominated" `Slow
      test_front_is_nondominated;
    Alcotest.test_case "grid determinism across jobs" `Slow
      test_jobs_determinism;
    Alcotest.test_case "winner prediction vs replay" `Slow
      test_winner_agreement;
    Alcotest.test_case "exposure grows with capacity" `Slow
      test_exposure_grows_with_capacity;
  ]
