(* The strongest soundness property in the suite: for RANDOM workloads,
   every packet's metered cost is bounded by the contract's worst-case
   expression evaluated at that packet's own distilled PCVs.

   This is the defining guarantee of a performance contract (paper §2.2):
   "for any real execution that satisfies the contract's assumptions,
   the measured performance is guaranteed to be no more than the metric
   value predicted by the contract." *)

let check_bool = Alcotest.(check bool)

let worst_of program contracts =
  Bolt.Pipeline.worst_case
    (Bolt.Pipeline.analyze
       ~config:Bolt.Pipeline.Config.(default |> with_contracts contracts)
       program)

(* Per-packet binding from the packet's own observations: the max each
   PCV reached during the packet, 0 for PCVs never observed.  The PCV
   universe is derived from the contract under test (plus anything the
   packet actually observed), so an NF gaining a new PCV can never
   silently escape this check. *)
let binding_of_report ~worst (r : Distiller.Run.packet_report) =
  let universe =
    List.sort_uniq Perf.Pcv.compare
      (Perf.Cost_vec.pcvs worst
      @ List.map fst r.Distiller.Run.observations)
  in
  List.map
    (fun pcv ->
      ( pcv,
        List.fold_left
          (fun acc (p, v) -> if Perf.Pcv.equal p pcv then max acc v else acc)
          0 r.Distiller.Run.observations ))
    universe

let assert_packets_bounded ~what worst (result : Distiller.Run.t) =
  Distiller.Run.iter result
    (fun (r : Distiller.Run.packet_report) ->
      let binding = binding_of_report ~worst r in
      let bound metric = Perf.Cost_vec.eval_exn binding worst metric in
      let check metric measured =
        let b = bound metric in
        if b < measured then
          Alcotest.fail
            (Printf.sprintf
               "%s packet %d: %s bound %d < measured %d at %s" what
               r.Distiller.Run.index
               (Perf.Metric.to_string metric)
               b measured
               (Fmt.to_to_string Perf.Pcv.pp_binding binding))
      in
      check Perf.Metric.Instructions r.Distiller.Run.ic;
      check Perf.Metric.Memory_accesses r.Distiller.Run.ma)

let prop_nat_random_traffic =
  QCheck2.Test.make ~count:8 ~name:"NAT: per-packet contract soundness"
    QCheck2.Gen.(
      triple (int_range 1 1000000) (int_range 4 64) (float_range 0.0 0.9))
    (fun (seed, pool, churn) ->
      let config =
        {
          Nf.Nat.default_config with
          Nf.Nat.capacity = 64;
          buckets = 8 (* tiny and collision-prone on purpose *);
          timeout = 5_000;
          port_lo = 1000;
          port_hi = 1199;
        }
      in
      let worst = worst_of Nf.Nat.program (Nf.Nat.contracts ~config ()) in
      let dss, _ = Nf.Nat.setup ~config (Dslib.Layout.allocator ()) in
      let rng = Workload.Prng.create ~seed in
      let stream =
        Workload.Gen.churn rng ~pool ~packets:300 ~new_flow_prob:churn
          ~gap:40 ~start:1_000
      in
      (* add some invalid and external packets into the mix *)
      let stream =
        List.concat_map
          (fun (e : Workload.Stream.entry) ->
            if Workload.Prng.bool rng 0.1 then
              [
                e;
                {
                  e with
                  Workload.Stream.packet = Net.Build.non_ip ();
                  in_port = 1;
                };
              ]
            else [ e ])
          stream
      in
      let result =
        Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss Nf.Nat.program stream
      in
      assert_packets_bounded ~what:"nat" worst result;
      true)

let prop_bridge_random_traffic =
  QCheck2.Test.make ~count:8 ~name:"bridge: per-packet contract soundness"
    QCheck2.Gen.(pair (int_range 1 1000000) (int_range 2 16))
    (fun (seed, stations) ->
      let config =
        {
          Nf.Bridge.default_config with
          Nf.Bridge.capacity = 32;
          buckets = 4 (* long chains + frequent rehashes *);
          threshold = 3;
          timeout = 3_000;
        }
      in
      let worst =
        worst_of Nf.Bridge.program (Nf.Bridge.contracts ~config ())
      in
      let dss, _ = Nf.Bridge.setup ~config (Dslib.Layout.allocator ()) in
      let rng = Workload.Prng.create ~seed in
      let macs = List.init stations (fun _ -> Workload.Gen.mac rng) in
      let stream =
        List.init 300 (fun i ->
            let src = List.nth macs (Workload.Prng.below rng stations) in
            let dst =
              if Workload.Prng.bool rng 0.2 then Net.Ethernet.broadcast_mac
              else if Workload.Prng.bool rng 0.3 then Workload.Gen.mac rng
              else List.nth macs (Workload.Prng.below rng stations)
            in
            {
              Workload.Stream.packet =
                Net.Build.eth ~src_mac:src ~dst_mac:dst
                  ~ethertype:Net.Ethernet.ethertype_ipv4 ();
              now = 1_000 + (i * 50);
              in_port = Workload.Prng.below rng 4;
            })
      in
      let result =
        Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss Nf.Bridge.program
          stream
      in
      assert_packets_bounded ~what:"bridge" worst result;
      true)

let prop_lb_random_traffic =
  QCheck2.Test.make ~count:6 ~name:"maglev: per-packet contract soundness"
    QCheck2.Gen.(int_range 1 1000000)
    (fun seed ->
      let config =
        {
          Nf.Maglev.default_config with
          Nf.Maglev.capacity = 32;
          buckets = 4;
          timeout = 5_000;
          backend_timeout = 2_000;
        }
      in
      let worst =
        worst_of Nf.Maglev.program (Nf.Maglev.contracts ~config ())
      in
      let dss, _ = Nf.Maglev.setup ~config (Dslib.Layout.allocator ()) in
      let rng = Workload.Prng.create ~seed in
      let flows = Workload.Gen.distinct_flows rng 24 in
      let stream =
        List.init 300 (fun i ->
            let now = 1_000 + (i * 30) in
            if Workload.Prng.bool rng 0.1 then
              {
                Workload.Stream.packet =
                  List.hd
                    (Workload.Gen.heartbeat_frames
                       ~backend_ids:[ Workload.Prng.below rng 16 ]
                       ~port:Nf.Maglev.heartbeat_port);
                now;
                in_port = 1;
              }
            else
              {
                Workload.Stream.packet =
                  Net.Build.udp_of_flow
                    (List.nth flows (Workload.Prng.below rng 24));
                now;
                in_port = 0;
              })
      in
      let result =
        Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss Nf.Maglev.program
          stream
      in
      assert_packets_bounded ~what:"maglev" worst result;
      true)

let prop_static_router_random_options =
  QCheck2.Test.make ~count:20
    ~name:"static router: option loop bounded by n-term"
    QCheck2.Gen.(pair (int_range 0 8) (int_range 1 100000))
    (fun (options, seed) ->
      let worst =
        worst_of Nf.Static_router.program (Perf.Ds_contract.library [])
      in
      let rng = Workload.Prng.create ~seed in
      let packet =
        if options = 0 then
          Net.Build.udp ~src_ip:(Workload.Prng.below rng 1000) ~dst_ip:2
            ~src_port:3 ~dst_port:4 ()
        else
          Net.Build.ipv4_with_options ~options
            ~src_ip:(Workload.Prng.below rng 1000)
            ~dst_ip:2 ()
      in
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let run =
        Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) ~now:7777
          Nf.Static_router.program packet
      in
      let binding = [ (Perf.Pcv.v "n", options) ] in
      Perf.Perf_expr.eval_exn binding
        (Perf.Cost_vec.get worst Perf.Metric.Instructions)
      >= run.Exec.Interp.ic
      && Perf.Perf_expr.eval_exn binding
           (Perf.Cost_vec.get worst Perf.Metric.Memory_accesses)
         >= run.Exec.Interp.ma)

let test_engine_determinism () =
  let run () =
    let r =
      Symbex.Engine.explore ~models:Bolt.Ds_models.default Nf.Nat.program
    in
    List.map
      (fun p ->
        ( p.Symbex.Path.id,
          List.map (fun c -> c.Symbex.Path.tag) p.Symbex.Path.calls ))
      r.Symbex.Engine.paths
  in
  check_bool "two runs identical" true (run () = run ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_nat_random_traffic;
    QCheck_alcotest.to_alcotest prop_bridge_random_traffic;
    QCheck_alcotest.to_alcotest prop_lb_random_traffic;
    QCheck_alcotest.to_alcotest prop_static_router_random_options;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
  ]
