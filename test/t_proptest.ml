(* Tests for the property-based soundness fuzzer (lib/proptest).

   Three groups:

   - the generators and the runner themselves: generated programs are
     valid and analysable, campaigns are a pure function of the seed,
     round 0 replays the master seed (so a printed repro command
     replays the exact failure), shrinking reaches a minimum;

   - each differential oracle demonstrably CATCHES the class of bug it
     exists for, via the fault-injection hooks (a weakened bound, a
     jobs-dependent analyze, a stale cache, an obs-dependent analyze) —
     an oracle that can't fail tests nothing;

   - the replay-divergence regression: the handcrafted programs below
     reproduce the soundness bug the fuzzer found (an overlapping-width
     packet read is over-approximated, so the solver's witness takes a
     different concrete branch than the path being priced) and pin that
     the pipeline now detects the divergence and counts the path
     unsolved instead of pricing the wrong trace. *)

open Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Generators ------------------------------------------------------ *)

let test_generated_programs_valid () =
  for seed = 1 to 150 do
    let rng = Workload.Prng.create ~seed in
    (* [Proptest.Gen_ir.program] promises every output passes validation *)
    let p = Proptest.Gen_ir.program rng in
    match Ir.Program.validate p with
    | Ok () -> ()
    | Error msg ->
        Alcotest.fail
          (Format.asprintf "seed %d: invalid program (%s)@.%a" seed msg
             Ir.Program.pp p)
  done

let test_generated_programs_analyse () =
  (* a sample of generated programs runs the full pipeline without
     raising; divergent witnesses may land in [unsolved], never escape *)
  for seed = 1 to 8 do
    let rng = Workload.Prng.create ~seed in
    let p = Proptest.Gen_ir.program rng in
    let t = Bolt.Pipeline.analyze ~config:Bolt.Pipeline.Config.default p in
    check_bool
      (Printf.sprintf "seed %d: paths accounted for" seed)
      true
      (List.length t.Bolt.Pipeline.analyses + t.Bolt.Pipeline.unsolved
      = List.length t.Bolt.Pipeline.engine.Symbex.Engine.paths)
  done

let test_generator_deterministic () =
  let prog seed =
    Format.asprintf "%a" Ir.Program.pp
      (Proptest.Gen_ir.program (Workload.Prng.create ~seed))
  in
  Alcotest.(check string) "same seed, same program" (prog 42) (prog 42);
  check_bool "different seeds differ" true (prog 42 <> prog 43)

(* ---- Shrinking ------------------------------------------------------- *)

let test_shrink_minimizes_list () =
  let input = List.init 20 Fun.id @ [ 42 ] @ List.init 20 (fun i -> i + 100) in
  let shrunk, steps =
    Proptest.Shrink.minimize
      ~still_fails:(fun l -> List.mem 42 l)
      ~candidates:Proptest.Shrink.list input
  in
  Alcotest.(check (list int)) "minimal failing sublist" [ 42 ] shrunk;
  check_bool "took shrink steps" true (steps > 0)

let test_shrink_int_candidates () =
  let cands = Proptest.Shrink.int ~lo:0 64 in
  check_bool "starts at lo" true (List.hd cands = 0);
  check_bool "original never a candidate" true (not (List.mem 64 cands))

(* ---- Runner determinism ---------------------------------------------- *)

let test_sub_seed_replay () =
  (* round 0 must reuse the master seed verbatim: that is what makes
     the printed "--seed S --runs 1" repro replay the exact failure *)
  Alcotest.(check int)
    "round 0 is the master seed" 123
    (List.hd (Proptest.Runner.sub_seeds ~seed:123 ~runs:5));
  check_int "one seed per round" 5
    (List.length (Proptest.Runner.sub_seeds ~seed:123 ~runs:5))

let test_runner_deterministic () =
  let campaign () =
    Proptest.Runner.run ~seed:11 ~runs:3 ~oracles:(Proptest.Oracle.all ()) ()
  in
  let a = campaign () and b = campaign () in
  check_bool "same seed, same outcome" true (a = b);
  check_int "checks = runs x oracles"
    (3 * List.length (Proptest.Oracle.all ()))
    a.Proptest.Runner.checks

let test_runner_deterministic_failures () =
  (* with an always-failing oracle, the failure REPORTS (shrunk
     counterexamples included) must also be a pure function of the seed *)
  let oracles =
    [ Proptest.Oracle.conservativeness ~weaken:(fun _ -> Perf.Cost_vec.zero) () ]
  in
  let campaign () = Proptest.Runner.run ~seed:7 ~runs:2 ~oracles () in
  let a = campaign () and b = campaign () in
  check_bool "failures replay identically" true
    (a.Proptest.Runner.failures = b.Proptest.Runner.failures);
  check_bool "found at least one failure" true
    (a.Proptest.Runner.failures <> [])

(* ---- Each oracle catches its seeded mutation ------------------------- *)

(* Some oracles draw a subject that sidesteps the injected fault for a
   given seed (e.g. a generated program with unsolved paths is skipped
   by conservativeness), so probe a few seeds and require one Fail. *)
let first_failure ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) (o : Proptest.Oracle.t) =
  List.find_map
    (fun seed ->
      match o.Proptest.Oracle.run ~seed with
      | Proptest.Oracle.Fail f -> Some f
      | Proptest.Oracle.Pass -> None)
    seeds

let test_catches_weakened_bound () =
  let o =
    Proptest.Oracle.conservativeness ~weaken:(fun _ -> Perf.Cost_vec.zero) ()
  in
  match first_failure o with
  | None -> Alcotest.fail "a zero worst-case bound was not caught"
  | Some f ->
      Alcotest.(check string)
        "failure names its oracle" "conservativeness" f.Proptest.Oracle.oracle;
      check_bool "repro is replayable" true
        (f.Proptest.Oracle.repro
        = Printf.sprintf "bolt fuzz --oracle conservativeness --seed %d --runs 1"
            f.Proptest.Oracle.seed)

let test_catches_jobs_nondeterminism () =
  (* an analyze whose output depends on which call it is: the oracle's
     serial and parallel runs then disagree *)
  let calls = ref 0 in
  let analyze ~config program =
    incr calls;
    let t = Bolt.Pipeline.analyze ~config program in
    if !calls mod 2 = 0 then
      { t with Bolt.Pipeline.unsolved = t.Bolt.Pipeline.unsolved + 1 }
    else t
  in
  let o = Proptest.Oracle.jobs_determinism ~analyze () in
  match o.Proptest.Oracle.run ~seed:1 with
  | Proptest.Oracle.Fail f ->
      Alcotest.(check string)
        "failure names its oracle" "jobs_determinism" f.Proptest.Oracle.oracle
  | Proptest.Oracle.Pass ->
      Alcotest.fail "jobs-dependent analyze output was not caught"

let test_catches_stale_cache () =
  (* a "cache" that answers Unsat regardless of the query *)
  let o =
    Proptest.Oracle.cache_equivalence ~check_cached:(fun _ -> Solver.Solve.Unsat) ()
  in
  match first_failure ~seeds:[ 1; 2; 3; 4 ] o with
  | None -> Alcotest.fail "a stale cache verdict was not caught"
  | Some f ->
      Alcotest.(check string)
        "failure names its oracle" "cache_equivalence" f.Proptest.Oracle.oracle

let test_catches_obs_dependence () =
  let calls = ref 0 in
  let analyze ~config program =
    incr calls;
    let t = Bolt.Pipeline.analyze ~config program in
    if !calls mod 2 = 0 then
      { t with Bolt.Pipeline.unsolved = t.Bolt.Pipeline.unsolved + 1 }
    else t
  in
  let o = Proptest.Oracle.obs_neutrality ~analyze () in
  match o.Proptest.Oracle.run ~seed:1 with
  | Proptest.Oracle.Fail f ->
      Alcotest.(check string)
        "failure names its oracle" "obs_neutrality" f.Proptest.Oracle.oracle
  | Proptest.Oracle.Pass ->
      Alcotest.fail "obs-dependent analyze output was not caught"

let test_catches_tampered_decisions () =
  (* an engine that flips every assumed branch decision: the structural
     fidelity check must then raise at the first recorded branch, and
     the oracle must report it.  Generated programs always open with
     the [Pkt_len < 34] guard, so every path has at least one
     decision to flip. *)
  let explore ~concrete ~models program =
    let r = Symbex.Engine.explore ~concrete ~models program in
    {
      r with
      Symbex.Engine.paths =
        List.map
          (fun (p : Symbex.Path.t) ->
            {
              p with
              Symbex.Path.decisions = List.map not p.Symbex.Path.decisions;
            })
          r.Symbex.Engine.paths;
    }
  in
  let o = Proptest.Oracle.concrete_symbex_agreement ~explore () in
  match first_failure o with
  | None -> Alcotest.fail "tampered path decisions were not caught"
  | Some f ->
      Alcotest.(check string)
        "failure names its oracle" "concrete_symbex_agreement"
        f.Proptest.Oracle.oracle

let test_catches_tampered_compile () =
  (* a compiler that sneaks one extra assignment into the program before
     compiling: every packet then costs one Move more than the
     interpreter charges, and the per-packet IC comparison must flag
     it.  The assigned variable is fresh, so the outcome is unchanged —
     only the exact-cost check can catch this. *)
  let compile (p : Ir.Program.t) =
    Exec.Compiled.compile
      {
        p with
        Ir.Program.body =
          Ir.Stmt.assign "__tamper" (Ir.Expr.int 0) :: p.Ir.Program.body;
      }
  in
  let o = Proptest.Oracle.compiled_interp_agreement ~compile () in
  match first_failure o with
  | None -> Alcotest.fail "a tampered compiled program was not caught"
  | Some f ->
      Alcotest.(check string)
        "failure names its oracle" "compiled_interp_agreement"
        f.Proptest.Oracle.oracle

let test_catches_tampered_specialize () =
  (* the traced compiled legs stay honest (real compiler), but the
     specializer binds a program with one smuggled assignment: only the
     specialized-vs-interp comparison can see the extra Move, so a
     failure here pins the specialized leg specifically.  [compile]
     records the subject so the tampering hook — which only receives
     the already-compiled form — can rebuild a modified source. *)
  let last = ref None in
  let compile p =
    last := Some p;
    Exec.Compiled.compile p
  in
  let specialize _ct ~meter ~mode =
    let p = Option.get !last in
    let tampered =
      {
        p with
        Ir.Program.body =
          Ir.Stmt.assign "__tamper" (Ir.Expr.int 0) :: p.Ir.Program.body;
      }
    in
    Exec.Specialize.bind (Exec.Compiled.compile tampered) ~meter ~mode
  in
  let o = Proptest.Oracle.compiled_interp_agreement ~compile ~specialize () in
  match first_failure o with
  | None -> Alcotest.fail "a tampered specialization was not caught"
  | Some f ->
      Alcotest.(check string)
        "failure names its oracle" "compiled_interp_agreement"
        f.Proptest.Oracle.oracle;
      let mentions_specialized =
        let detail = f.Proptest.Oracle.detail in
        let needle = "specialized execution diverges" in
        let n = String.length needle and l = String.length detail in
        let rec scan i =
          i + n <= l && (String.equal (String.sub detail i n) needle || scan (i + 1))
        in
        scan 0
      in
      check_bool "the specialized leg (not the compiled one) flagged it" true
        mentions_specialized

(* ---- Stateful model-based oracles ------------------------------------ *)

let contains ~needle haystack =
  let n = String.length needle and l = String.length haystack in
  let rec scan i =
    i + n <= l && (String.equal (String.sub haystack i n) needle || scan (i + 1))
  in
  scan 0

let test_stateful_registry_shape () =
  let names =
    List.map (fun (o : Proptest.Oracle.t) -> o.Proptest.Oracle.name)
      (Proptest.Oracle.stateful ())
  in
  (* one model + one bounds oracle per structure, and all reachable by
     name through the same [find] the CLI uses *)
  check_int "two oracles per structure"
    (2 * List.length (Proptest.Stateful.all ()))
    (List.length names);
  List.iter
    (fun name ->
      let o = Proptest.Oracle.find name in
      Alcotest.(check string) "find resolves stateful names" name
        o.Proptest.Oracle.name)
    names;
  check_bool "stateless set unchanged by the stateful layer" true
    (not
       (List.exists
          (fun (o : Proptest.Oracle.t) ->
            contains ~needle:"stateful" o.Proptest.Oracle.name)
          (Proptest.Oracle.all ())))

let test_stateful_model_catches_tampered_fake () =
  (* every structure's model oracle must notice a +1 on each raw
     observation — an oracle that cannot fail tests nothing *)
  List.iter
    (fun (case : Proptest.Stateful.t) ->
      let o =
        Proptest.Oracle.stateful_model ~tamper:(List.map succ) case
      in
      match first_failure o with
      | None ->
          Alcotest.fail
            (case.Proptest.Stateful.name ^ ": tampered observations not caught")
      | Some f ->
          check_bool
            (case.Proptest.Stateful.name ^ ": repro is replayable")
            true
            (f.Proptest.Oracle.repro
            = Printf.sprintf "bolt fuzz --oracle %s --seed %d --runs 1"
                f.Proptest.Oracle.oracle f.Proptest.Oracle.seed);
          check_bool
            (case.Proptest.Stateful.name ^ ": counterexample is a trace")
            true
            (contains ~needle:"shrunk trace" f.Proptest.Oracle.detail))
    (Proptest.Stateful.all ())

let test_stateful_bounds_catches_weakened_contract () =
  (* zeroing every branch cost must break every structure's bound check *)
  List.iter
    (fun (case : Proptest.Stateful.t) ->
      let o =
        Proptest.Oracle.stateful_bounds
          ~weaken:(fun _ -> Perf.Cost_vec.zero)
          case
      in
      match first_failure o with
      | None ->
          Alcotest.fail
            (case.Proptest.Stateful.name ^ ": zeroed contract not caught")
      | Some f ->
          check_bool
            (case.Proptest.Stateful.name ^ ": names the metric and bound")
            true
            (contains ~needle:"bound" f.Proptest.Oracle.detail))
    (Proptest.Stateful.all ())

let test_stateful_shrinks_to_minimal_trace () =
  (* with a zeroed bound any single bounded command fails, so the greedy
     sequence shrinker must land on a one-command trace *)
  let case =
    List.find
      (fun (c : Proptest.Stateful.t) -> c.Proptest.Stateful.name = "hash_map")
      (Proptest.Stateful.all ())
  in
  let o =
    Proptest.Oracle.stateful_bounds ~weaken:(fun _ -> Perf.Cost_vec.zero) case
  in
  match first_failure o with
  | None -> Alcotest.fail "zeroed hash_map contract not caught"
  | Some f ->
      check_bool "shrunk to a single command" true
        (contains ~needle:"shrunk trace (1 commands)" f.Proptest.Oracle.detail)

let test_shrink_sequence_pointwise () =
  (* [Shrink.sequence] offers both structural sublists and per-command
     rewrites; pointwise candidates change exactly one position *)
  let cands =
    Proptest.Shrink.sequence ~shrink_cmd:(fun c -> [ c / 2 ]) [ 8; 9 ]
  in
  check_bool "structural sublist offered" true (List.mem [ 8 ] cands);
  check_bool "pointwise head shrink offered" true (List.mem [ 4; 9 ] cands);
  check_bool "pointwise tail shrink offered" true (List.mem [ 8; 4 ] cands);
  check_bool "original not offered" true (not (List.mem [ 8; 9 ] cands))

let test_stateful_campaign_passes () =
  let outcome =
    Proptest.Runner.run ~seed:2025 ~runs:10
      ~oracles:(Proptest.Oracle.stateful ())
      ()
  in
  check_int "checks = runs x oracles"
    (10 * List.length (Proptest.Oracle.stateful ()))
    outcome.Proptest.Runner.checks;
  check_int "real structures agree with fakes and contracts" 0
    (List.length outcome.Proptest.Runner.failures)

let test_default_oracles_pass () =
  let outcome =
    Proptest.Runner.run ~seed:2025 ~runs:3 ~oracles:(Proptest.Oracle.all ()) ()
  in
  check_int "no failures on the real implementations" 0
    (List.length outcome.Proptest.Runner.failures)

(* ---- Replay-divergence regression ------------------------------------ *)

(* The bug class the fuzzer found (seeds 245641675 and 288185197 of the
   conservativeness oracle): [pkt.u32[22] := 1] followed by a 16-bit
   load at offset 22 is over-approximated as an opaque fresh symbol, so
   the solver may hand the then-branch a witness whose CONCRETE xor
   (60 ^ 0 = 60) fails the branch condition.  Pricing that replay would
   attribute the else-branch's cost to the then-path — the pipeline
   must detect the divergence and count the path unsolved instead.

   [then_heavy] picks what the two branches return: with distinct
   actions the divergence is visible in the outcome kind; with the SAME
   action on both branches only the branch-trace comparison can see it,
   which pins the finer of the two checks. *)
let divergent_program ~name ~same_action =
  let opaque_cond =
    (* len ^ pkt.u16[22], with pkt.u16[22] clobbered by a wider store *)
    Expr.(Binop (Gt, Binop (Xor, Pkt_len, Pkt_load (W16, int 22)), int 78))
  in
  Program.make ~name ~state:[]
    [
      (* pin len = 60 so the witness's concrete xor is always 60 *)
      Stmt.when_ Expr.(Pkt_len != int 60) [ Stmt.drop ];
      Stmt.store32 (Expr.int 22) (Expr.int 1);
      Stmt.if_ opaque_cond
        [
          Stmt.assign "acc" (Expr.load32 (Expr.int 26));
          Stmt.assign "acc" Expr.(var "acc" + var "acc");
          Stmt.forward_port 1;
        ]
        [ (if same_action then Stmt.forward_port 1 else Stmt.drop) ];
    ]

let check_divergence ~same_action () =
  let name = if same_action then "diverge_same_action" else "diverge" in
  let t =
    Bolt.Pipeline.analyze ~config:Bolt.Pipeline.Config.default
      (divergent_program ~name ~same_action)
  in
  (* len<>60 drop, then-branch, else-branch *)
  check_int "three feasible paths" 3
    (List.length t.Bolt.Pipeline.engine.Symbex.Engine.paths);
  check_int "divergent witness counted unsolved" 1 t.Bolt.Pipeline.unsolved;
  check_int "the other two paths priced" 2
    (List.length t.Bolt.Pipeline.analyses);
  (* the contract built from the surviving paths stays conservative on
     a real packet (len 60, stored bytes read back as zeros -> drop) *)
  let worst = Bolt.Pipeline.worst_case t in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let run =
    Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) ~now:1
      (divergent_program ~name ~same_action)
      (Net.Packet.of_bytes (Bytes.make 60 '\000'))
  in
  check_bool "surviving contract bounds the real execution" true
    (Perf.Cost_vec.eval_exn [] worst Perf.Metric.Instructions
    >= run.Exec.Interp.ic)

let test_divergent_witness_by_action () = check_divergence ~same_action:false ()
let test_divergent_witness_by_trace () = check_divergence ~same_action:true ()

let test_faithful_replay_not_flagged () =
  (* the positive control: a same-width read-back folds to the stored
     constant and the branch condition stays linear in len, so every
     witness honestly follows its path — the divergence detector must
     not flag honest replays *)
  let p =
    Program.make ~name:"faithful" ~state:[]
      [
        Stmt.store16 (Expr.int 22) (Expr.int 1);
        Stmt.if_
          Expr.(Binop (Gt, Binop (Add, Pkt_len, Pkt_load (W16, int 22)), int 79))
          [ Stmt.forward_port 1 ]
          [ Stmt.drop ];
      ]
  in
  let t = Bolt.Pipeline.analyze ~config:Bolt.Pipeline.Config.default p in
  check_int "no unsolved paths" 0 t.Bolt.Pipeline.unsolved;
  check_int "both branches priced" 2 (List.length t.Bolt.Pipeline.analyses)

let suite =
  [
    Alcotest.test_case "generated programs validate" `Quick
      test_generated_programs_valid;
    Alcotest.test_case "generated programs analyse" `Slow
      test_generated_programs_analyse;
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "shrink minimizes a list" `Quick
      test_shrink_minimizes_list;
    Alcotest.test_case "shrink int candidates" `Quick
      test_shrink_int_candidates;
    Alcotest.test_case "round 0 replays the master seed" `Quick
      test_sub_seed_replay;
    Alcotest.test_case "campaign deterministic" `Slow
      test_runner_deterministic;
    Alcotest.test_case "failure reports deterministic" `Slow
      test_runner_deterministic_failures;
    Alcotest.test_case "catches a weakened bound" `Slow
      test_catches_weakened_bound;
    Alcotest.test_case "catches jobs nondeterminism" `Slow
      test_catches_jobs_nondeterminism;
    Alcotest.test_case "catches a stale cache" `Quick test_catches_stale_cache;
    Alcotest.test_case "catches obs dependence" `Slow
      test_catches_obs_dependence;
    Alcotest.test_case "catches tampered path decisions" `Quick
      test_catches_tampered_decisions;
    Alcotest.test_case "catches a tampered compile" `Quick
      test_catches_tampered_compile;
    Alcotest.test_case "catches a tampered specialization" `Quick
      test_catches_tampered_specialize;
    Alcotest.test_case "stateful oracle registry shape" `Quick
      test_stateful_registry_shape;
    Alcotest.test_case "stateful models catch tampered fakes" `Slow
      test_stateful_model_catches_tampered_fake;
    Alcotest.test_case "stateful bounds catch weakened contracts" `Slow
      test_stateful_bounds_catches_weakened_contract;
    Alcotest.test_case "stateful counterexamples shrink to one command" `Quick
      test_stateful_shrinks_to_minimal_trace;
    Alcotest.test_case "sequence shrinker offers pointwise shrinks" `Quick
      test_shrink_sequence_pointwise;
    Alcotest.test_case "stateful campaign passes" `Slow
      test_stateful_campaign_passes;
    Alcotest.test_case "default oracles pass" `Slow test_default_oracles_pass;
    Alcotest.test_case "divergent witness detected (action)" `Quick
      test_divergent_witness_by_action;
    Alcotest.test_case "divergent witness detected (trace)" `Quick
      test_divergent_witness_by_trace;
    Alcotest.test_case "faithful replay not flagged" `Quick
      test_faithful_replay_not_flagged;
  ]
