let () =
  Alcotest.run "bolt"
    [
      ("perf", T_perf.suite);
      ("solver", T_solver.suite);
      ("net", T_net.suite);
      ("hw", T_hw.suite);
      ("ir", T_ir.suite);
      ("exec", T_exec.suite);
      ("compiled", T_compiled.suite);
      ("specialize", T_specialize.suite);
      ("pool", T_pool.suite);
      ("dslib", T_dslib.suite);
      ("symbex", T_symbex.suite);
      ("bolt", T_bolt.suite);
      ("distiller", T_distiller.suite);
      ("experiments", T_experiments.suite);
      ("extensions", T_extensions.suite);
      ("workload", T_workload.suite);
      ("soundness", T_soundness.suite);
      ("tools", T_tools.suite);
      ("obs", T_obs.suite);
      ("nf", T_nf.suite);
      ("proptest", T_proptest.suite);
      ("tuner", T_tuner.suite);
      ("topo", T_topo.suite);
      ("dataplane", T_dataplane.suite);
    ]
