(* Equivalence and zero-allocation guarantees for the config-specialized
   executor (Exec.Specialize, DESIGN §12):

   - parity: on every registry NF the specialized stream must agree with
     the interpreter packet for packet — outcome, IC, MA, cycles, PCV
     observations and final packet bytes — on both an address-blind
     (null, mem-batched) and an address-insensitive-but-unbatched
     (conservative) model;
   - zero allocation: the four benched NFs allocate exactly 0 minor
     words per packet through [Exec.Specialize.exec] in steady state;
   - stuck parity: runtime-contract violations raise the same message as
     the interpreter (charges are equivalent, not identical — the final
     segment's pack may differ, so only the message is compared);
   - fallbacks: a tracing meter, a coupled-memory model and analysis
     mode must each decline to specialize yet still execute exactly. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

type side = {
  run : (Exec.Interp.run, string) result;
  observations : (Perf.Pcv.t * int) list;
  bytes : Bytes.t;
}

let copy_stream stream =
  List.map
    (fun e ->
      { e with Workload.Stream.packet = Net.Packet.copy e.Workload.Stream.packet })
    stream

let replay ~engine ~model ?(must_specialize = false)
    (entry : Nf.Registry.entry) stream =
  let meter = Exec.Meter.create (model ()) in
  let exec =
    match engine with
    | `Interp ->
        let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
        fun ~in_port ~now packet ->
          Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~in_port
            ~now entry.Nf.Registry.program packet
    | `Specialized ->
        let sp, _ = Nf.Registry.specialize entry ~meter in
        if must_specialize then
          check_bool
            (entry.Nf.Registry.name ^ " runs the specialized body")
            true
            (Exec.Specialize.specialized sp);
        fun ~in_port ~now packet -> Exec.Specialize.run sp ~in_port ~now packet
  in
  List.map
    (fun { Workload.Stream.packet; now; in_port } ->
      Exec.Meter.reset_observations meter;
      let run =
        match exec ~in_port ~now packet with
        | r -> Ok r
        | exception Exec.Interp.Stuck msg -> Error msg
      in
      {
        run;
        observations = Exec.Meter.observations meter;
        bytes = Net.Packet.to_bytes packet;
      })
    stream

let check_parity ?(packets = 200) ?(seed = 77) ?must_specialize ~model ~mname
    nf =
  let entry = Nf.Registry.find nf in
  let stream =
    Proptest.Gen_net.stream_for (Workload.Prng.create ~seed) ~nf ~packets
  in
  let interp = replay ~engine:`Interp ~model entry (copy_stream stream) in
  let spec =
    replay ~engine:`Specialized ~model ?must_specialize entry
      (copy_stream stream)
  in
  List.iteri
    (fun i (a, b) ->
      let ctx what = Printf.sprintf "%s/%s packet %d %s" nf mname i what in
      check_bool (ctx "run") true (a.run = b.run);
      check_bool (ctx "observations") true (a.observations = b.observations);
      check_bool (ctx "bytes") true (Bytes.equal a.bytes b.bytes))
    (List.combine interp spec)

(* The four NFs the throughput benchmark freezes; each must actually
   take the specialized body (not the fallback) under both models. *)
let benched = [ "firewall"; "static_router"; "nat"; "bridge" ]

let test_parity_null () =
  List.iter
    (check_parity ~model:Hw.Model.null ~mname:"null" ~must_specialize:true)
    benched

let test_parity_conservative () =
  List.iter
    (check_parity ~model:Hw.Model.conservative ~mname:"conservative"
       ~must_specialize:true)
    benched

(* Every other registry NF must at least agree (specialized or not). *)
let test_parity_all_nfs () =
  List.iter
    (fun nf ->
      check_parity ~packets:120 ~model:Hw.Model.null ~mname:"null" nf)
    (Nf.Registry.names ())

(* Longer, differently-seeded streams for the two stateful NFs whose
   fast paths carry the most machinery: NAT translation rewrites both
   directions through the port allocator, and the bridge walks
   collision chains as the MAC table fills. *)
let test_nat_stress_parity () =
  check_parity ~packets:800 ~seed:91 ~model:Hw.Model.null ~mname:"null"
    ~must_specialize:true "nat"

let test_bridge_stress_parity () =
  check_parity ~packets:800 ~seed:91 ~model:Hw.Model.null ~mname:"null"
    ~must_specialize:true "bridge"

(* ---- Zero allocation -------------------------------------------------- *)

(* Steady state through [exec]: warm one pass (tables populated, meter
   observation buffers grown), then demand EXACTLY zero minor words per
   packet.  The two trailing [Gc.minor_words] reads measure the probe's
   own cost so it can be subtracted. *)
let test_zero_alloc () =
  List.iter
    (fun nf ->
      let entry = Nf.Registry.find nf in
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let sp, _ = Nf.Registry.specialize entry ~meter in
      let n = 1024 in
      let flows =
        Workload.Gen.distinct_flows (Workload.Prng.create ~seed:42) 64
      in
      let base = Workload.Gen.packets_of_flows flows in
      let rec replicate acc k =
        if k <= 0 then acc
        else
          replicate
            (List.map (fun p -> Net.Packet.copy p) base @ acc)
            (k - List.length base)
      in
      let stream =
        Array.of_list
          (Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100
             (replicate [] (2 * n)))
      in
      let run lo hi =
        for i = lo to hi - 1 do
          let e = stream.(i) in
          Exec.Meter.reset_observations meter;
          ignore
            (Exec.Specialize.exec sp ~in_port:e.Workload.Stream.in_port
               ~now:e.Workload.Stream.now e.Workload.Stream.packet
              : int)
        done
      in
      run 0 n;
      let w0 = Gc.minor_words () in
      run n (2 * n);
      let w1 = Gc.minor_words () in
      let w2 = Gc.minor_words () in
      let words = w1 -. w0 -. (w2 -. w1) in
      check_int (nf ^ " minor words over a steady-state pass") 0
        (int_of_float words))
    benched

(* ---- Stuck parity ----------------------------------------------------- *)

(* Charge equivalence, not identity: a Stuck packet may differ from the
   interpreter by part of its final segment's pack, so only the message
   (and the fact of being stuck) is pinned here. *)
let run_stuck program packet engine =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let mode = Exec.Interp.Production [] in
  match
    match engine with
    | `Interp -> Exec.Interp.run ~meter ~mode program packet
    | `Specialized ->
        Exec.Specialize.run
          (Exec.Specialize.bind (Exec.Compiled.compile program) ~meter ~mode)
          packet
  with
  | (_ : Exec.Interp.run) -> "no-stuck"
  | exception Exec.Interp.Stuck msg -> msg

let check_stuck_parity name program =
  let packet = Net.Packet.create 64 in
  let msg_i = run_stuck program (Net.Packet.copy packet) `Interp in
  let msg_s = run_stuck program (Net.Packet.copy packet) `Specialized in
  check_bool (name ^ " stuck at all") true (msg_i <> "no-stuck");
  check_string (name ^ " message") msg_i msg_s

let test_stuck_parity () =
  let open Ir in
  check_stuck_parity "folded division by zero"
    (Program.make ~name:"divz" ~state:[]
       [ Stmt.assign "x" Expr.(int 1 / int 0); Stmt.drop ]);
  check_stuck_parity "dynamic division by zero"
    (Program.make ~name:"divz_dyn" ~state:[]
       [
         Stmt.assign "z" Expr.(load8 (int 0));
         Stmt.assign "x" Expr.(int 1 / var "z");
         Stmt.drop;
       ]);
  check_stuck_parity "negative packet offset"
    (Program.make ~name:"negoff" ~state:[]
       [ Stmt.assign "x" (Expr.load8 Expr.(int 0 - int 4)); Stmt.drop ]);
  check_stuck_parity "out-of-bounds load"
    (Program.make ~name:"oob" ~state:[]
       [ Stmt.assign "x" (Expr.load32 (Expr.int 2000)); Stmt.drop ]);
  check_stuck_parity "out-of-bounds store"
    (Program.make ~name:"oob_store" ~state:[]
       [ Stmt.store16 (Expr.int 63) (Expr.int 7); Stmt.drop ])

(* ---- Fallbacks -------------------------------------------------------- *)

(* [bind] must decline to specialize — and still execute exactly —
   whenever its charging discipline cannot reproduce what the
   configuration demands: a tracing meter (per-event stream), a model
   that couples memory pricing to instruction counts, or analysis
   mode. *)
let test_fallback_tracing () =
  let entry = Nf.Registry.find "firewall" in
  let meter = Exec.Meter.create ~trace:true (Hw.Model.null ()) in
  let sp, _ = Nf.Registry.specialize entry ~meter in
  check_bool "tracing meter falls back" false (Exec.Specialize.specialized sp)

let test_fallback_coupled_mem () =
  let entry = Nf.Registry.find "firewall" in
  let meter = Exec.Meter.create (Hw.Model.realistic ()) in
  let sp, _ = Nf.Registry.specialize entry ~meter in
  check_bool "coupled-memory model falls back" false
    (Exec.Specialize.specialized sp)

let test_fallback_analysis_mode () =
  let program =
    Ir.(
      Program.make ~name:"t_specialize_analysis"
        ~state:[ { Ir.Program.instance = "ft"; kind = "flow_table" } ]
        [
          Stmt.assign "h" Expr.(load32 (int 26));
          Stmt.call ~ret:"r" "ft" "get" [ Expr.var "h"; Expr.var "now" ];
          Stmt.if_
            Expr.(var "r" != int 0)
            [ Stmt.forward Expr.(var "r" - int 1) ]
            [ Stmt.call "ft" "put" [ Expr.var "h" ]; Stmt.drop ];
        ])
  in
  let run engine =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let mode = Exec.Interp.Analysis [ 3; 0 ] in
    let packet = Net.Packet.create 64 in
    let r =
      match engine with
      | `Interp -> Exec.Interp.run ~meter ~mode ~in_port:1 ~now:5 program packet
      | `Specialized ->
          let sp =
            Exec.Specialize.bind (Exec.Compiled.compile program) ~meter ~mode
          in
          check_bool "analysis mode falls back" false
            (Exec.Specialize.specialized sp);
          Exec.Specialize.run sp ~in_port:1 ~now:5 packet
    in
    (r, Exec.Meter.observations meter)
  in
  check_bool "analysis run equal" true (run `Interp = run `Specialized)

(* Fallback streams still agree over a whole stateful replay. *)
let test_fallback_parity () =
  check_parity ~packets:120 ~model:Hw.Model.realistic ~mname:"realistic"
    "firewall"

let suite =
  [
    Alcotest.test_case "parity on the null model" `Quick test_parity_null;
    Alcotest.test_case "parity on the conservative model" `Quick
      test_parity_conservative;
    Alcotest.test_case "parity across the whole registry" `Quick
      test_parity_all_nfs;
    Alcotest.test_case "nat stress parity" `Quick test_nat_stress_parity;
    Alcotest.test_case "bridge stress parity" `Quick test_bridge_stress_parity;
    Alcotest.test_case "zero minor words per packet" `Quick test_zero_alloc;
    Alcotest.test_case "stuck message parity" `Quick test_stuck_parity;
    Alcotest.test_case "tracing meter falls back" `Quick test_fallback_tracing;
    Alcotest.test_case "coupled-memory model falls back" `Quick
      test_fallback_coupled_mem;
    Alcotest.test_case "analysis mode falls back" `Quick
      test_fallback_analysis_mode;
    Alcotest.test_case "fallback stream parity" `Quick test_fallback_parity;
  ]
