(* Golden contract tests: one case per registry NF, pinning path count,
   unsolved count and every class's concrete IC/MA predictions.  The
   numbers are the analysis output at the time of writing — if a change
   moves them, either the change is wrong or the goldens need a reviewed
   update (regenerate them by replaying the [Pipeline.predict] calls
   below).  [Error pcv] pins classes whose bindings deliberately leave a
   PCV unbound. *)

let check_int = Alcotest.(check int)

(* (nf, paths, unsolved, [(class, members, ic, ma)]) where ic/ma are
   [Ok bound] or [Error pcv_name] for an unbound PCV. *)
let goldens =
  [
    ("bridge", 16, 0, [
      ("Br1", 16, Ok 58867849, Ok 16830485);
      ("Br2", 1, Ok 112, Ok 22);
      ("Br3", 2, Ok 138, Ok 26);
    ]);
    ("nat", 9, 0, [
      ("NAT1", 9, Ok 126091437, Ok 50434077);
      ("NAT2", 1, Ok 201, Ok 41);
      ("NAT3", 1, Ok 160, Ok 34);
      ("NAT4", 1, Ok 94, Ok 14);
    ]);
    ("maglev", 9, 0, [
      ("LB1", 9, Ok 126054607, Ok 50409508);
      ("LB2", 1, Ok 197, Ok 34);
      ("LB3", 1, Ok 235, Ok 48);
      ("LB4", 1, Ok 171, Ok 32);
      ("LB5", 1, Ok 93, Ok 14);
    ]);
    ("lpm_router", 5, 0, [
      ("LPM1", 5, Ok 93, Ok 15);
      ("LPM2", 2, Ok 89, Ok 14);
    ]);
    ("trie_router", 2, 0, [
      ("Invalid packets", 1, Ok 49, Ok 6);
      ("Valid packets", 1, Error "l", Error "l");
    ]);
    ("conntrack", 8, 0, [
      ("CT1", 8, Ok 126054553, Ok 50409492);
      ("CT2", 1, Ok 181, Ok 32);
      ("CT3", 1, Ok 153, Ok 30);
      ("CT4", 1, Ok 153, Ok 30);
      ("CT5", 1, Ok 112, Ok 15);
    ]);
    ("limiter", 5, 0, [
      ("Metered IPv4", 2, Ok 175, Ok 22);
      ("Invalid", 3, Ok 60, Ok 8);
    ]);
    ("policer", 3, 0, [
      ("Conformant", 1, Ok 84, Ok 10);
      ("Out of profile", 1, Ok 66, Ok 8);
      ("Invalid", 1, Ok 49, Ok 6);
    ]);
    ("responder", 6, 0, [
      ("Echo request", 2, Ok 99, Ok 22);
      ("Other traffic", 3, Ok 58, Ok 8);
    ]);
    ("firewall", 9, 0, [
      ("No IP options", 7, Ok 99, Ok 15);
      ("IP Options", 1, Ok 54, Ok 7);
    ]);
    ("static_router", 7, 0, [
      ("No IP options", 3, Ok 88, Ok 14);
      ("IP Options", 6, Ok 119, Ok 18);
    ]);
  ]

let analyze (e : Nf.Registry.entry) =
  Bolt.Pipeline.analyze
    ~config:
      Bolt.Pipeline.Config.(
        default |> with_contracts e.Nf.Registry.contracts)
    e.Nf.Registry.program

let check_entry (nf, paths, unsolved, classes) () =
  let e = Nf.Registry.find nf in
  let t = analyze e in
  check_int (nf ^ " path count") paths (Bolt.Pipeline.path_count t);
  check_int (nf ^ " unsolved") unsolved t.Bolt.Pipeline.unsolved;
  check_int
    (nf ^ " golden covers every class")
    (List.length e.Nf.Registry.classes)
    (List.length classes);
  List.iter
    (fun (cls_name, members, ic, ma) ->
      let cls =
        match
          List.find_opt
            (fun (c : Symbex.Iclass.t) -> c.Symbex.Iclass.name = cls_name)
            e.Nf.Registry.classes
        with
        | Some c -> c
        | None -> Alcotest.fail (nf ^ ": unknown class " ^ cls_name)
      in
      let _, n = Bolt.Pipeline.class_cost t cls in
      check_int (nf ^ "/" ^ cls_name ^ " members") members n;
      let check_metric what metric golden =
        let got =
          match Bolt.Pipeline.predict t cls metric with
          | Ok v -> Ok v
          | Error pcv -> Error (Format.asprintf "%a" Perf.Pcv.pp pcv)
        in
        Alcotest.(check (result int string))
          (nf ^ "/" ^ cls_name ^ " " ^ what)
          golden got
      in
      check_metric "IC" Perf.Metric.Instructions ic;
      check_metric "MA" Perf.Metric.Memory_accesses ma)
    classes

let test_registry_complete () =
  (* every registry NF has a golden entry, and vice versa *)
  Alcotest.(check (list string))
    "golden table covers the registry"
    (List.sort compare (Nf.Registry.names ()))
    (List.sort compare (List.map (fun (n, _, _, _) -> n) goldens))

let suite =
  Alcotest.test_case "registry covered" `Quick test_registry_complete
  :: List.map
       (fun ((nf, _, _, _) as g) ->
         Alcotest.test_case (nf ^ " golden contract") `Quick (check_entry g))
       goldens
