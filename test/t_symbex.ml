(* Tests for the symbolic-execution engine. *)

open Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let models = Bolt.Ds_models.default
let explore = Symbex.Engine.explore ~models

let path_count program = List.length (explore program).Symbex.Engine.paths

let test_value_concrete_folding () =
  let gen = Solver.Sym.gen () in
  let ctx = Symbex.Value.ctx gen in
  let v =
    Symbex.Value.binop ctx Expr.Add (Symbex.Value.of_int 2)
      (Symbex.Value.of_int 3)
  in
  check_bool "constant fold" true (Symbex.Value.is_concrete v = Some 5);
  let cmp =
    Symbex.Value.binop ctx Expr.Lt (Symbex.Value.of_int 2)
      (Symbex.Value.of_int 3)
  in
  check_bool "comparison folds" true (Symbex.Value.is_concrete cmp = Some 1)

(* The Euclidean linearization of masks/shifts/division must be exact:
   conjoin [x = v] with the derived constraints and check the decomposed
   value can only be the concrete result. *)
let test_value_euclid_exact () =
  let cases =
    [ (Expr.And, 0xf); (Expr.Shr, 4); (Expr.Div, 10); (Expr.Rem, 7) ]
  in
  List.iter
    (fun (op, k) ->
      for v = 0 to 40 do
        let gen = Solver.Sym.gen () in
        let ctx = Symbex.Value.ctx gen in
        let x = Solver.Sym.fresh gen ~lo:0 ~hi:255 "x" in
        let result =
          Symbex.Value.binop ctx op (Symbex.Value.of_sym x)
            (Symbex.Value.of_int k)
        in
        let side = Symbex.Value.take_side ctx in
        let expected = Semantics.apply_binop op v k in
        let result_lin = Symbex.Value.to_lin ctx result in
        let fix =
          Solver.Constr.eq (Solver.Linexpr.sym x) (Solver.Linexpr.const v)
        in
        (* result = expected must be satisfiable… *)
        check_bool
          (Printf.sprintf "op %d sat for v=%d" k v)
          true
          (Solver.Solve.is_sat
             (fix
             :: Solver.Constr.eq result_lin (Solver.Linexpr.const expected)
             :: side));
        (* …and result ≠ expected must not *)
        check_bool
          (Printf.sprintf "op %d exact for v=%d" k v)
          false
          (Solver.Solve.is_sat
             (fix
             :: Solver.Constr.ne result_lin (Solver.Linexpr.const expected)
             :: side))
      done)
    cases

let test_spacket_overlay () =
  let gen = Solver.Sym.gen () in
  let ctx = Symbex.Value.ctx gen in
  let input = Symbex.Spacket.input gen () in
  let view = Symbex.Spacket.view input in
  let v0, _ = Symbex.Spacket.load view ctx Expr.W16 ~offset:(Symbex.Value.of_int 12) in
  (* same offset loads the same symbols *)
  let v1, _ = Symbex.Spacket.load view ctx Expr.W16 ~offset:(Symbex.Value.of_int 12) in
  check_bool "stable symbols" true
    (Symbex.Value.to_lin ctx v0 = Symbex.Value.to_lin ctx v1);
  (* a store is read back *)
  let view' =
    Symbex.Spacket.store view ctx Expr.W16 ~offset:(Symbex.Value.of_int 12)
      ~value:(Symbex.Value.of_int 0x800)
  in
  let v2, _ =
    Symbex.Spacket.load view' ctx Expr.W16 ~offset:(Symbex.Value.of_int 12)
  in
  check_bool "overlay read back" true
    (Symbex.Value.is_concrete v2 = Some 0x800);
  (* the original view is unaffected (per-path functional overlay) *)
  let v3, _ = Symbex.Spacket.load view ctx Expr.W16 ~offset:(Symbex.Value.of_int 12) in
  check_bool "original view unchanged" true
    (Symbex.Value.is_concrete v3 = None)

let test_engine_trie_router_paths () =
  (* short-frame drop is pruned (min packet is 60B), leaving the
     invalid-ethertype path and the valid path *)
  let result = explore Nf.Router_trie.program in
  check_int "two feasible paths" 2 (List.length result.Symbex.Engine.paths);
  check_bool "pruned the short-frame fork" true
    (result.Symbex.Engine.infeasible_pruned >= 1)

let test_engine_prunes_contradictions () =
  let p =
    Program.make ~name:"contradiction" ~state:[]
      [
        Stmt.assign "x" (Expr.load8 (Expr.int 0));
        Stmt.if_ Expr.(var "x" > int 100)
          [ Stmt.if_ Expr.(var "x" < int 50) [ Stmt.drop ] [];
            Stmt.forward_port 1 ]
          [ Stmt.drop ];
      ]
  in
  let result = explore p in
  (* x>100 ∧ x<50 is infeasible: 2 paths remain *)
  check_int "paths" 2 (List.length result.Symbex.Engine.paths);
  check_bool "pruned" true (result.Symbex.Engine.infeasible_pruned >= 1)

let test_engine_model_forks () =
  (* one stateful get forks hit/miss *)
  let p =
    Program.make ~name:"forks"
      ~state:[ { Program.instance = "t"; kind = "flow_table" } ]
      [
        Stmt.call ~ret:"v" "t" "get"
          [ Expr.int 1; Expr.int 2; Expr.int 3; Expr.int 4; Expr.int 5;
            Expr.var "now" ];
        Stmt.if_ Expr.(var "v" >= int 0) [ Stmt.forward_port 1 ] [ Stmt.drop ];
      ]
  in
  let result = explore p in
  check_int "hit and miss" 2 (List.length result.Symbex.Engine.paths);
  let tags =
    List.concat_map
      (fun path -> Symbex.Path.tags_of path ~instance:"t" ~meth:"get")
      result.Symbex.Engine.paths
    |> List.sort String.compare
  in
  check_bool "tags" true (tags = [ "hit"; "miss" ])

let test_engine_unroll_paths () =
  (* an unrolled loop over a header nibble yields one path per trip count *)
  let p =
    Program.make ~name:"unroll" ~state:[]
      [
        Stmt.assign "n" (Expr.Binop (Expr.And, Expr.load8 (Expr.int 0), Expr.int 3));
        Stmt.assign "i" (Expr.int 0);
        Stmt.While
          ( Stmt.Unroll 3,
            Expr.(var "i" < var "n"),
            [ Stmt.assign "i" Expr.(var "i" + int 1) ] );
        Stmt.drop;
      ]
  in
  check_int "4 trip counts" 4 (path_count p)

let test_engine_pcv_loop () =
  let result = explore Nf.Static_router.program in
  let with_loop =
    List.filter
      (fun path -> path.Symbex.Path.loops <> [])
      result.Symbex.Engine.paths
  in
  check_bool "parameterised paths exist" true (List.length with_loop >= 1);
  List.iter
    (fun path ->
      List.iter
        (fun l ->
          check_bool "loop pcv name" true (l.Symbex.Path.name = "n"))
        path.Symbex.Path.loops)
    with_loop

let test_engine_rejects_call_in_pcv_loop () =
  let p =
    Program.make ~name:"bad_loop"
      ~state:[ { Program.instance = "t"; kind = "flow_table" } ]
      [
        Stmt.assign "i" (Expr.int 0);
        Stmt.While
          ( Stmt.Pcv_loop ("n", 4),
            Expr.(var "i" < int 2),
            [
              Stmt.call ~ret:"s" "t" "size" [];
              Stmt.assign "i" Expr.(var "i" + int 1);
            ] );
        Stmt.drop;
      ]
  in
  match explore p with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "call inside PCV loop accepted"

let test_iclass_matching () =
  let result = explore Nf.Router_trie.program in
  let classes = Nf.Router_trie.classes () in
  let invalid = List.nth classes 0 and valid = List.nth classes 1 in
  let members cls =
    List.filter (Symbex.Iclass.matches cls result) result.Symbex.Engine.paths
  in
  check_int "invalid class has one path" 1 (List.length (members invalid));
  check_int "valid class has one path" 1 (List.length (members valid));
  check_bool "classes are disjoint here" true
    (members invalid <> members valid)

let test_witness_replay_consistency () =
  (* for every NAT path, the solved witness replays to the same action *)
  let result = explore Nf.Nat.program in
  List.iter
    (fun path ->
      match Bolt.Pipeline.witness result path with
      | None -> Alcotest.fail "unsolvable path"
      | Some (packet, stubs, in_port, now) ->
          let meter = Exec.Meter.create (Hw.Model.null ()) in
          let run =
            Exec.Interp.run ~meter ~mode:(Exec.Interp.Analysis stubs)
              ~in_port ~now Nf.Nat.program packet
          in
          check_bool "replay follows the symbolic path" true
            (Bolt.Pipeline.replay_matches path.Symbex.Path.action
               run.Exec.Interp.outcome))
    result.Symbex.Engine.paths

let test_engine_max_paths_guard () =
  (* a loop over an unconstrained byte explodes past a tiny cap *)
  let p =
    Program.make ~name:"wide" ~state:[]
      [
        Stmt.assign "n" (Expr.load8 (Expr.int 0));
        Stmt.assign "i" (Expr.int 0);
        Stmt.While
          ( Stmt.Unroll 200,
            Expr.(var "i" < var "n"),
            [ Stmt.assign "i" Expr.(var "i" + int 1) ] );
        Stmt.drop;
      ]
  in
  match Symbex.Engine.explore ~max_paths:5 ~models p with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "path explosion not detected"

let suite =
  [
    Alcotest.test_case "engine max_paths guard" `Quick
      test_engine_max_paths_guard;
    Alcotest.test_case "value constant folding" `Quick
      test_value_concrete_folding;
    Alcotest.test_case "euclid linearization exact" `Slow
      test_value_euclid_exact;
    Alcotest.test_case "symbolic packet overlay" `Quick test_spacket_overlay;
    Alcotest.test_case "trie router paths" `Quick
      test_engine_trie_router_paths;
    Alcotest.test_case "contradiction pruning" `Quick
      test_engine_prunes_contradictions;
    Alcotest.test_case "model forks" `Quick test_engine_model_forks;
    Alcotest.test_case "loop unrolling" `Quick test_engine_unroll_paths;
    Alcotest.test_case "pcv loops" `Quick test_engine_pcv_loop;
    Alcotest.test_case "call in pcv loop rejected" `Quick
      test_engine_rejects_call_in_pcv_loop;
    Alcotest.test_case "input class matching" `Quick test_iclass_matching;
    Alcotest.test_case "witness replay consistency" `Slow
      test_witness_replay_consistency;
  ]
