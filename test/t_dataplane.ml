(* Tests for the sharded dataplane: dispatcher steering laws, NAT port
   slicing, plan construction, bit-level replay parity (serial vs
   parallel, shards-N vs shards-1), the dispatcher-affinity oracles and
   the scalability-contract runner. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let udp_flow f = Net.Build.udp_of_flow f

let some_flows n =
  Workload.Gen.distinct_flows (Workload.Prng.create ~seed:99) n

(* ---- Dispatch -------------------------------------------------------- *)

let test_hash_matches_flow_hash () =
  List.iter
    (fun f ->
      let pkt = udp_flow f in
      check_int "dispatch hash = Net.Flow.hash_key"
        (Net.Flow.hash_key f)
        (Dataplane.Dispatch.hash_flow ~symmetric:false pkt))
    (some_flows 32)

let test_symmetric_hash () =
  List.iter
    (fun f ->
      let h d = Dataplane.Dispatch.hash_flow ~symmetric:true (udp_flow d) in
      check_int "hash(fwd) = hash(rev)" (h f) (h (Net.Flow.reverse f)))
    (some_flows 32)

let test_unhashable_pins_to_zero () =
  List.iter
    (fun pkt ->
      check_bool "non-flow packet lands on shard 0" true
        (Dataplane.Dispatch.steer Dataplane.Dispatch.Flow_hash ~shards:4
           ~in_port:0 pkt
        = Dataplane.Dispatch.Shard 0))
    [ Net.Build.non_ip (); Net.Build.eth ~ethertype:0x86dd () ]

let test_nat_slices_partition () =
  let port_lo = 1024 and port_hi = 9215 in
  List.iter
    (fun shards ->
      (* slices are contiguous, disjoint, covering, and owner inverts *)
      let expect_lo = ref port_lo in
      for i = 0 to shards - 1 do
        let lo, hi =
          Dataplane.Dispatch.nat_slice ~port_lo ~port_hi ~shards i
        in
        check_int "contiguous" !expect_lo lo;
        check_bool "non-empty" true (hi >= lo);
        expect_lo := hi + 1;
        List.iter
          (fun p ->
            check_int "owner inverts slice" i
              (Dataplane.Dispatch.nat_owner ~port_lo ~port_hi ~shards p))
          [ lo; (lo + hi) / 2; hi ]
      done;
      check_int "covering" (port_hi + 1) !expect_lo)
    [ 1; 2; 3; 4; 7 ];
  check_int "out-of-range port goes to shard 0" 0
    (Dataplane.Dispatch.nat_owner ~port_lo ~port_hi ~shards:4 80);
  Alcotest.check_raises "range smaller than shard count"
    (Invalid_argument
       "Dispatch.nat_slice: port range 10-12 has 3 ports, fewer than 4 \
        shards")
    (fun () ->
      ignore (Dataplane.Dispatch.nat_slice ~port_lo:10 ~port_hi:12 ~shards:4 0))

let test_lb_broadcasts_heartbeats () =
  let policy =
    Dataplane.Dispatch.Lb { heartbeat_port = Nf.Maglev.heartbeat_port }
  in
  let hb =
    List.hd
      (Workload.Gen.heartbeat_frames ~backend_ids:[ 3 ]
         ~port:Nf.Maglev.heartbeat_port)
  in
  check_bool "heartbeat on the external port broadcasts" true
    (Dataplane.Dispatch.steer policy ~shards:4 ~in_port:1 hb
    = Dataplane.Dispatch.Broadcast);
  check_bool "same frame on the client port is steered" true
    (Dataplane.Dispatch.steer policy ~shards:4 ~in_port:0 hb
    <> Dataplane.Dispatch.Broadcast)

(* ---- Plan ------------------------------------------------------------ *)

let test_plan_rejects_unshardable () =
  List.iter
    (fun name ->
      let spec = Nf.Spec.of_name name in
      check_bool (name ^ " is not shardable") false
        (Dataplane.Plan.shardable spec);
      match Dataplane.Plan.make ~shards:2 spec with
      | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
      | exception Invalid_argument _ -> ())
    [ "policer"; "bridge" ]

let test_plan_slices_nat_ports () =
  let plan = Dataplane.Plan.make ~shards:4 (Nf.Spec.of_name "nat") in
  let ranges =
    Array.to_list plan.Dataplane.Plan.specs
    |> List.map (function
         | Nf.Spec.Nat c -> (c.Nf.Nat.port_lo, c.port_hi)
         | _ -> Alcotest.fail "shard spec is not a NAT")
  in
  let sorted = List.sort compare ranges in
  check_bool "slices ordered and disjoint" true
    (List.for_all2 ( = ) ranges sorted);
  List.iteri
    (fun i (lo, hi) ->
      ignore i;
      check_bool "slice non-empty" true (hi >= lo))
    ranges;
  (* replicated geometry: every other knob matches the base config *)
  Array.iter
    (function
      | Nf.Spec.Nat c ->
          check_int "capacity replicated" Nf.Nat.default_config.Nf.Nat.capacity
            c.Nf.Nat.capacity
      | _ -> ())
    plan.Dataplane.Plan.specs

(* ---- Shard replay parity --------------------------------------------- *)

let stream_for nf packets =
  Dataplane.Scale.workload ~nf ~seed:5 ~packets

let test_parallel_equals_serial () =
  (* bit-identical parallel vs serial replay at every shard count, for
     every shardable NF with distinct steering policies *)
  List.iter
    (fun nf ->
      let stream = stream_for nf 256 in
      List.iter
        (fun shards ->
          let plan = Dataplane.Plan.make ~shards (Nf.Spec.of_name nf) in
          let serial =
            Dataplane.Shard.with_engine plan (fun e ->
                Dataplane.Shard.replay e stream)
          in
          let parallel =
            Dataplane.Shard.with_engine plan (fun e ->
                Dataplane.Shard.replay ~parallel:true e stream)
          in
          match
            Dataplane.Oracle.equivalence ~strict_bytes:true ~nf serial
              parallel
          with
          | [] -> ()
          | v :: _ ->
              Alcotest.failf "%s x%d parallel != serial: %s" nf shards v)
        [ 1; 2; 3; 4 ])
    [ "firewall"; "conntrack"; "nat"; "maglev" ]

let test_sharded_equals_single () =
  (* shards-N outcomes = shards-1 outcomes; bytes too for every NF but
     the NAT (its shards allocate from disjoint port slices) *)
  List.iter
    (fun nf ->
      let stream = stream_for nf 256 in
      let reference =
        Dataplane.Shard.with_engine
          (Dataplane.Plan.make ~shards:1 (Nf.Spec.of_name nf))
          (fun e -> Dataplane.Shard.replay e stream)
      in
      List.iter
        (fun shards ->
          let sharded =
            Dataplane.Shard.with_engine
              (Dataplane.Plan.make ~shards (Nf.Spec.of_name nf))
              (fun e -> Dataplane.Shard.replay ~parallel:true e stream)
          in
          match
            Dataplane.Oracle.equivalence ~strict_bytes:(nf <> "nat") ~nf
              reference sharded
          with
          | [] -> ()
          | v :: _ -> Alcotest.failf "%s x%d != x1: %s" nf shards v)
        [ 2; 4 ])
    [ "firewall"; "conntrack"; "nat"; "maglev" ]

let test_replay_state_persists () =
  (* the engine's shard-local state carries across replay calls: a
     conntrack reply passes only because the earlier call opened it *)
  let plan = Dataplane.Plan.make ~shards:2 (Nf.Spec.of_name "conntrack") in
  let f = List.hd (some_flows 1) in
  Dataplane.Shard.with_engine plan (fun e ->
      let open_r =
        Dataplane.Shard.replay e
          [ Workload.Stream.entry ~in_port:0 (udp_flow f) ]
      in
      check_bool "outbound opener passes" true
        (match open_r.(0).Dataplane.Shard.outcome with
        | Exec.Interp.Sent _ -> true
        | _ -> false);
      let reply =
        Dataplane.Shard.replay e
          [
            Workload.Stream.entry ~in_port:1 (udp_flow (Net.Flow.reverse f));
          ]
      in
      check_bool "reply passes against persisted state" true
        (reply.(0).Dataplane.Shard.outcome = Exec.Interp.Sent 0))

let test_load_histogram () =
  let stream = stream_for "maglev" 128 in
  let plan = Dataplane.Plan.make ~shards:4 (Nf.Spec.of_name "maglev") in
  let hist = Dataplane.Shard.load_histogram plan stream in
  check_int "histogram bins" 4 (Array.length hist);
  let hbs = 16 in
  (* broadcast heartbeats count once per shard *)
  check_int "histogram total = flows + shards*heartbeats"
    (Workload.Stream.length stream - hbs + (4 * hbs))
    (Array.fold_left ( + ) 0 hist)

(* ---- Oracles --------------------------------------------------------- *)

let test_conntrack_oracle () =
  List.iter
    (fun shards ->
      let r = Dataplane.Oracle.conntrack_affinity ~shards () in
      if not (Dataplane.Oracle.ok r) then
        Alcotest.failf "conntrack x%d: %s" shards
          (List.hd r.Dataplane.Oracle.violations))
    [ 1; 2; 3; 4 ]

let test_nat_oracle () =
  List.iter
    (fun shards ->
      let r = Dataplane.Oracle.nat_affinity ~shards () in
      if not (Dataplane.Oracle.ok r) then
        Alcotest.failf "nat x%d: %s" shards
          (List.hd r.Dataplane.Oracle.violations))
    [ 1; 2; 3; 4 ]

(* ---- Scalability contract runner ------------------------------------- *)

let test_scale_run () =
  let r = Dataplane.Scale.run ~levels:[ 1; 2 ] ~packets:128 ~reps:1 "firewall" in
  check_int "levels" 2 (List.length r.Dataplane.Scale.levels);
  check_bool "baseline positive" true (r.Dataplane.Scale.baseline_pps > 0.);
  List.iter
    (fun (l : Dataplane.Scale.level) ->
      check_bool "parity holds" true l.Dataplane.Scale.parity_ok;
      check_bool "measured positive" true (l.Dataplane.Scale.measured_pps > 0.))
    r.Dataplane.Scale.levels;
  let l1 = List.hd r.Dataplane.Scale.levels in
  check_int "no dispatch term at one shard" 0
    l1.Dataplane.Scale.contract.Perf.Scale.dispatch_cycles;
  check_int "one shard predicts the baseline" 100
    l1.Dataplane.Scale.contract.Perf.Scale.predicted_speedup_pct;
  (* the JSON artifact is self-describing *)
  match Dataplane.Scale.to_json r with
  | Perf.Json.Obj fields ->
      check_bool "provenance embedded" true
        (List.mem_assoc "provenance" fields)
  | _ -> Alcotest.fail "to_json: expected an object"

let suite =
  [
    Alcotest.test_case "dispatch: hash matches Net.Flow.hash_key" `Quick
      test_hash_matches_flow_hash;
    Alcotest.test_case "dispatch: symmetric hash is direction-blind" `Quick
      test_symmetric_hash;
    Alcotest.test_case "dispatch: unhashable packets pin to shard 0" `Quick
      test_unhashable_pins_to_zero;
    Alcotest.test_case "dispatch: NAT port slices partition the range"
      `Quick test_nat_slices_partition;
    Alcotest.test_case "dispatch: lb heartbeats broadcast" `Quick
      test_lb_broadcasts_heartbeats;
    Alcotest.test_case "plan: policer and bridge are rejected" `Quick
      test_plan_rejects_unshardable;
    Alcotest.test_case "plan: NAT shards get disjoint port slices" `Quick
      test_plan_slices_nat_ports;
    Alcotest.test_case "shard: parallel replay == serial replay" `Quick
      test_parallel_equals_serial;
    Alcotest.test_case "shard: shards-N outcomes == shards-1" `Quick
      test_sharded_equals_single;
    Alcotest.test_case "shard: state persists across replays" `Quick
      test_replay_state_persists;
    Alcotest.test_case "shard: load histogram counts broadcasts per shard"
      `Quick test_load_histogram;
    Alcotest.test_case "oracle: conntrack affinity" `Quick
      test_conntrack_oracle;
    Alcotest.test_case "oracle: NAT affinity" `Quick test_nat_oracle;
    Alcotest.test_case "scale: contract runner and artifact" `Quick
      test_scale_run;
  ]
