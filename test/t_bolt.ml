(* Tests for the BOLT pipeline and chain composition. *)

open Perf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze program contracts =
  Bolt.Pipeline.analyze
    ~config:Bolt.Pipeline.Config.(default |> with_contracts contracts)
    program

let no_contracts = Ds_contract.library []

let test_pipeline_all_nfs () =
  (* every NF in the public catalogue must analyse cleanly *)
  List.iter
    (fun (entry : Nf.Registry.entry) ->
      let t = analyze entry.Nf.Registry.program entry.Nf.Registry.contracts in
      check_bool
        (entry.Nf.Registry.name ^ " has paths")
        true
        (Bolt.Pipeline.path_count t > 0);
      check_int
        (entry.Nf.Registry.name ^ " all paths solved")
        0 t.Bolt.Pipeline.unsolved)
    (Nf.Registry.all ())

let test_trie_contract_shape () =
  let t = analyze Nf.Router_trie.program (Nf.Router_trie.contracts ()) in
  let contract = Bolt.Pipeline.contract t ~classes:(Nf.Router_trie.classes ()) in
  let valid = Contract.find_exn contract ~class_name:"Valid packets" in
  let ic = Cost_vec.get valid.Contract.cost Metric.Instructions in
  check_int "4l coefficient (paper Table 1)" 4
    (Perf_expr.coefficient ic [ Pcv.prefix_len ]);
  let ma = Cost_vec.get valid.Contract.cost Metric.Memory_accesses in
  check_int "l coefficient" 1 (Perf_expr.coefficient ma [ Pcv.prefix_len ]);
  let invalid = Contract.find_exn contract ~class_name:"Invalid packets" in
  check_bool "invalid path is constant" true
    (Perf_expr.is_const (Cost_vec.get invalid.Contract.cost Metric.Instructions))

let test_nat_contract_shape () =
  (* Table 6: e, e·c and e·t terms present; established < new flows *)
  let t = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  let contract = Bolt.Pipeline.contract t ~classes:(Nf.Nat.classes ()) in
  let nat3 = Contract.find_exn contract ~class_name:"NAT3" in
  let ic = Cost_vec.get nat3.Contract.cost Metric.Instructions in
  check_bool "e term" true (Perf_expr.coefficient ic [ Pcv.expired ] > 0);
  check_bool "e*c term" true
    (Perf_expr.coefficient ic [ Pcv.expired; Pcv.collisions ] > 0);
  check_bool "e*t term" true
    (Perf_expr.coefficient ic [ Pcv.expired; Pcv.traversals ] > 0);
  let quiet = Pcv.[ (expired, 0); (collisions, 0); (traversals, 1) ] in
  let at cls =
    Result.get_ok (Contract.predict contract ~class_name:cls quiet Metric.Instructions)
  in
  check_bool "drop is cheapest" true (at "NAT4" < at "NAT3");
  check_bool "established < new" true (at "NAT3" < at "NAT2")

let test_static_router_loop_contract () =
  let t = analyze Nf.Static_router.program no_contracts in
  let contract =
    Bolt.Pipeline.contract t ~classes:(Nf.Static_router.classes ())
  in
  let options = Contract.find_exn contract ~class_name:"IP Options" in
  let ic = Cost_vec.get options.Contract.cost Metric.Instructions in
  check_bool "linear in n (Table 5b)" true
    (Perf_expr.coefficient ic [ Pcv.ip_options ] > 0);
  let fast = Contract.find_exn contract ~class_name:"No IP options" in
  check_bool "fast path constant" true
    (Perf_expr.is_const (Cost_vec.get fast.Contract.cost Metric.Instructions))

let test_bridge_rehash_cliff () =
  let t = analyze Nf.Bridge.program (Nf.Bridge.contracts ()) in
  let contract = Bolt.Pipeline.contract t ~classes:(Nf.Bridge.table4_classes ()) in
  let at name =
    Contract.find_exn contract ~class_name:name |> fun e ->
    Perf_expr.const_part (Cost_vec.get e.Contract.cost Metric.Instructions)
  in
  check_bool "rehash is a cliff (paper Table 4)" true
    (at "Unknown Source MAC; Rehashing"
    > 10 * at "Unknown Source MAC; No Rehashing");
  check_bool "known < unknown" true
    (at "Known Source MAC" < at "Unknown Source MAC; No Rehashing")

let test_worst_case_dominates_classes () =
  let t = analyze Nf.Maglev.program (Nf.Maglev.contracts ()) in
  let worst = Bolt.Pipeline.worst_case t in
  List.iter
    (fun cls ->
      let cost, _ = Bolt.Pipeline.class_cost t cls in
      check_bool "worst dominates class" true
        (Perf_expr.dominates
           (Cost_vec.get worst Metric.Instructions)
           (Cost_vec.get cost Metric.Instructions)))
    (Nf.Maglev.classes ())

let test_class_coalescing_dominates_members () =
  (* the defining property of coalescing: a class's expression dominates
     every member path's, monomial-wise, in all metrics *)
  List.iter
    (fun (program, contracts, classes) ->
      let t = analyze program contracts in
      List.iter
        (fun cls ->
          let cost, _ = Bolt.Pipeline.class_cost t cls in
          List.iter
            (fun (a : Bolt.Pipeline.path_analysis) ->
              List.iter
                (fun metric ->
                  check_bool "class dominates member" true
                    (Perf_expr.dominates
                       (Cost_vec.get cost metric)
                       (Cost_vec.get a.Bolt.Pipeline.cost metric)))
                Metric.all)
            (Bolt.Pipeline.class_members t cls))
        classes)
    [
      (Nf.Nat.program, Nf.Nat.contracts (), Nf.Nat.classes ());
      (Nf.Bridge.program, Nf.Bridge.contracts (), Nf.Bridge.classes ());
      (Nf.Maglev.program, Nf.Maglev.contracts (), Nf.Maglev.classes ());
    ]

let test_witness_packets_are_classy () =
  (* witnesses of class member paths satisfy the class's packet
     predicate concretely *)
  let t = analyze Nf.Router_trie.program (Nf.Router_trie.contracts ()) in
  let classes = Nf.Router_trie.classes () in
  let invalid = List.nth classes 0 in
  List.iter
    (fun (a : Bolt.Pipeline.path_analysis) ->
      check_bool "invalid witness is non-IPv4" true
        (Net.Ethernet.get_ethertype a.Bolt.Pipeline.packet <> 0x0800))
    (Bolt.Pipeline.class_members t invalid)

let test_compose_chain () =
  let c =
    Bolt.Compose.analyze ~models:Bolt.Ds_models.default
      ~up:(Nf.Firewall.program, no_contracts)
      ~down:(Nf.Static_router.program, no_contracts)
      ()
  in
  check_bool "pairs exist" true (c.Bolt.Compose.pairs <> []);
  check_bool "drop paths retained" true (c.Bolt.Compose.up_only <> []);
  (* no downstream path behind the firewall processes IP options: the
     expensive branch is provably unreachable *)
  List.iter
    (fun pair ->
      check_bool "no options loop behind the firewall" true
        (pair.Bolt.Compose.down.Symbex.Path.loops = []))
    c.Bolt.Compose.pairs;
  (* the composed bound beats naive addition *)
  let fw = analyze Nf.Firewall.program no_contracts in
  let rt = analyze Nf.Static_router.program no_contracts in
  let naive =
    Bolt.Compose.naive_add
      ~up:(Bolt.Pipeline.worst_case fw)
      ~down:(Bolt.Pipeline.worst_case rt)
  in
  let composed = Bolt.Compose.worst_case c in
  let binding = [ (Pcv.ip_options, 3) ] in
  let ev vec = Perf_expr.eval_exn binding (Cost_vec.get vec Metric.Instructions) in
  check_bool "composition is tighter (Figure 3)" true
    (ev composed < ev naive)

let test_compose_soundness_against_measured_chain () =
  let chain = Experiments.Exhibits.chain_experiment ~packets:64 () in
  let binding = [ (Pcv.ip_options, 3) ] in
  let ev vec metric = Perf_expr.eval_exn binding (Cost_vec.get vec metric) in
  check_bool "composite bounds measured IC" true
    (ev chain.Experiments.Exhibits.composite Metric.Instructions
    >= chain.Experiments.Exhibits.measured_chain.Experiments.Harness.ic);
  check_bool "composite bounds measured MA" true
    (ev chain.Experiments.Exhibits.composite Metric.Memory_accesses
    >= chain.Experiments.Exhibits.measured_chain.Experiments.Harness.ma);
  check_bool "composite bounds measured cycles" true
    (ev chain.Experiments.Exhibits.composite Metric.Cycles
    >= chain.Experiments.Exhibits.measured_chain.Experiments.Harness.cycles)

let test_parallel_analyze_deterministic () =
  (* analyze ~jobs:n must be bit-identical to the serial pipeline:
     same contract, same witnesses, same costs, in the same path order *)
  let fingerprint jobs (program, contracts, classes) =
    let t =
      Bolt.Pipeline.analyze
        ~config:
          Bolt.Pipeline.Config.(
            default |> with_contracts contracts |> with_jobs jobs)
        program
    in
    let witnesses =
      List.map
        (fun (a : Bolt.Pipeline.path_analysis) ->
          (Net.Packet.to_bytes a.packet, a.stubs, a.in_port, a.now, a.cost))
        t.Bolt.Pipeline.analyses
    in
    ( Fmt.str "%a" Contract.pp (Bolt.Pipeline.contract t ~classes),
      witnesses,
      t.Bolt.Pipeline.unsolved )
  in
  List.iter
    (fun (name, case) ->
      let serial = fingerprint 1 case in
      List.iter
        (fun jobs ->
          check_bool
            (Printf.sprintf "%s jobs:%d identical to serial" name jobs)
            true
            (fingerprint jobs case = serial))
        [ 3; 4 ])
    [
      ("nat", (Nf.Nat.program, Nf.Nat.contracts (), Nf.Nat.classes ()));
      ( "maglev",
        (Nf.Maglev.program, Nf.Maglev.contracts (), Nf.Maglev.classes ()) );
    ]

let suite =
  [
    Alcotest.test_case "pipeline runs on every NF" `Slow test_pipeline_all_nfs;
    Alcotest.test_case "parallel analyze is deterministic" `Slow
      test_parallel_analyze_deterministic;
    Alcotest.test_case "trie contract (Table 1 shape)" `Quick
      test_trie_contract_shape;
    Alcotest.test_case "nat contract (Table 6 shape)" `Slow
      test_nat_contract_shape;
    Alcotest.test_case "static router loop contract" `Quick
      test_static_router_loop_contract;
    Alcotest.test_case "bridge rehash cliff (Table 4)" `Slow
      test_bridge_rehash_cliff;
    Alcotest.test_case "worst case dominates classes" `Slow
      test_worst_case_dominates_classes;
    Alcotest.test_case "coalescing dominates members" `Slow
      test_class_coalescing_dominates_members;
    Alcotest.test_case "witnesses satisfy their class" `Quick
      test_witness_packets_are_classy;
    Alcotest.test_case "chain composition (Figure 3)" `Slow test_compose_chain;
    Alcotest.test_case "chain soundness vs measured" `Slow
      test_compose_soundness_against_measured_chain;
  ]
