(* Tests for the observability layer: span nesting across pool domains,
   counter determinism across --jobs levels, the Chrome-trace export
   schema, and the null backend's zero-interference guarantee. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every obs test owns the global runtime: start clean, leave it
   disabled for whoever runs next. *)
let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let analyze_nat ?jobs () =
  let entry = Nf.Registry.find "nat" in
  let config =
    Bolt.Pipeline.Config.(
      default |> with_contracts entry.Nf.Registry.contracts)
  in
  let config =
    match jobs with
    | None -> config
    | Some j -> Bolt.Pipeline.Config.with_jobs j config
  in
  Bolt.Pipeline.analyze ~config entry.Nf.Registry.program

(* ---- Span nesting across pool workers ----------------------------------- *)

let test_spans_nest_across_pool () =
  with_obs (fun () ->
      Obs.Span.with_ ~cat:"test" "phase" (fun () ->
          ignore
            (Exec.Pool.map ~jobs:4
               (fun i -> Obs.Span.with_ ~cat:"test" "task" (fun () -> i * i))
               (List.init 16 Fun.id)));
      let spans = Obs.Span.dump () in
      let by_id = Hashtbl.create 64 in
      List.iter (fun (s : Obs.Span.t) -> Hashtbl.add by_id s.id s) spans;
      let phase =
        List.find (fun (s : Obs.Span.t) -> s.Obs.Span.name = "phase") spans
      in
      check_int "phase is a root" 0 phase.Obs.Span.parent;
      let tasks =
        List.filter (fun (s : Obs.Span.t) -> s.Obs.Span.name = "task") spans
      in
      check_int "every task recorded" 16 (List.length tasks);
      (* each task's ancestry must reach the phase span, whichever domain
         it ran on *)
      let rec reaches_phase id =
        id = phase.Obs.Span.id
        ||
        match Hashtbl.find_opt by_id id with
        | Some (s : Obs.Span.t) -> reaches_phase s.Obs.Span.parent
        | None -> false
      in
      List.iter
        (fun (t : Obs.Span.t) ->
          check_bool "task nests under phase" true
            (reaches_phase t.Obs.Span.parent))
        tasks;
      (* workers themselves sit directly under the phase *)
      List.iter
        (fun (s : Obs.Span.t) ->
          if s.Obs.Span.name = "pool.worker" then
            check_int "worker under phase" phase.Obs.Span.id s.Obs.Span.parent)
        spans)

(* ---- Counter determinism across --jobs ---------------------------------- *)

let counters_after ~jobs =
  Obs.reset ();
  Solver.Cache.reset ();
  ignore (analyze_nat ~jobs ());
  Obs.Metrics.counters_dump ()

let test_counters_jobs_invariant () =
  with_obs (fun () ->
      let serial = counters_after ~jobs:1 in
      let parallel = counters_after ~jobs:4 in
      check_bool "some counters recorded" true
        (List.exists (fun (_, v) -> v > 0) serial);
      check_int "same counter set" (List.length serial)
        (List.length parallel);
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          check_string "counter name" n1 n2;
          check_int ("counter " ^ n1) v1 v2)
        serial parallel)

(* ---- Trace export: valid JSON, stable schema ---------------------------- *)

let keys_of = function
  | Perf.Json.Obj fields -> List.sort compare (List.map fst fields)
  | _ -> Alcotest.fail "expected a JSON object"

let test_trace_schema () =
  with_obs (fun () ->
      Solver.Cache.reset ();
      ignore (analyze_nat ~jobs:2 ());
      let json =
        match Perf.Json.of_string (Obs.Trace_io.to_string ()) with
        | Ok j -> j
        | Error msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
      in
      Alcotest.(check (list string))
        "top-level keys"
        [ "displayTimeUnit"; "otherData"; "traceEvents" ]
        (keys_of json);
      let events =
        match
          Perf.Json.(
            let* evs = member "traceEvents" json in
            to_list evs)
        with
        | Ok evs -> evs
        | Error msg -> Alcotest.fail msg
      in
      check_bool "trace has events" true (events <> []);
      let phases = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          Alcotest.(check (list string))
            "event keys"
            [ "args"; "cat"; "dur"; "name"; "ph"; "pid"; "tid"; "ts" ]
            (keys_of ev);
          match
            Perf.Json.(
              let* ph = member "ph" ev in
              let* ph = to_str ph in
              let* name = member "name" ev in
              let* name = to_str name in
              let* ts = member "ts" ev in
              let* ts = to_int ts in
              let* dur = member "dur" ev in
              let* dur = to_int dur in
              Ok (ph, name, ts, dur))
          with
          | Error msg -> Alcotest.fail msg
          | Ok (ph, name, ts, dur) ->
              check_string "complete event" "X" ph;
              check_bool "non-negative times" true (ts >= 0 && dur >= 0);
              Hashtbl.replace phases name ())
        events;
      (* all four pipeline phases must appear *)
      List.iter
        (fun phase ->
          check_bool (phase ^ " span present") true (Hashtbl.mem phases phase))
        [ "analyze"; "explore"; "solve"; "replay"; "price" ];
      (* counters ride along under otherData *)
      match
        Perf.Json.(
          let* other = member "otherData" json in
          let* counters = member "counters" other in
          let* c = member "solver.cache.misses" counters in
          to_int c)
      with
      | Ok n -> check_bool "solver cache counted" true (n > 0)
      | Error msg -> Alcotest.fail msg)

(* ---- Null backend: no interference -------------------------------------- *)

let contract_string ?jobs () =
  Solver.Cache.reset ();
  let entry = Nf.Registry.find "nat" in
  let t = analyze_nat ?jobs () in
  Fmt.str "%a"
    Perf.Contract.pp
    (Bolt.Pipeline.contract t ~classes:entry.Nf.Registry.classes)

let test_null_backend_identical_output () =
  Obs.disable ();
  Obs.reset ();
  let off = contract_string () in
  let on =
    with_obs (fun () ->
        let s = contract_string () in
        check_bool "tracing recorded spans" true (Obs.Span.dump () <> []);
        s)
  in
  check_string "contract identical with obs on" off on;
  check_string "contract identical at jobs:1" off (contract_string ~jobs:1 ());
  check_string "contract identical at jobs:4" off (contract_string ~jobs:4 ());
  check_bool "disabled runtime records nothing" true (Obs.Span.dump () = [])

let suite =
  [
    Alcotest.test_case "spans nest across pool workers" `Quick
      test_spans_nest_across_pool;
    Alcotest.test_case "counters invariant across jobs" `Quick
      test_counters_jobs_invariant;
    Alcotest.test_case "trace schema" `Quick test_trace_schema;
    Alcotest.test_case "null backend leaves output identical" `Quick
      test_null_backend_identical_output;
  ]
