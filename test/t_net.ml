(* Tests for the networking substrate (lib/net). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_packet_accessors () =
  let p = Net.Packet.create 64 in
  Net.Packet.set_u8 p 0 0xab;
  check_int "u8" 0xab (Net.Packet.get_u8 p 0);
  Net.Packet.set_u16 p 10 0xbeef;
  check_int "u16" 0xbeef (Net.Packet.get_u16 p 10);
  check_int "u16 big-endian high byte" 0xbe (Net.Packet.get_u8 p 10);
  Net.Packet.set_u32 p 20 0xdeadbeef;
  check_int "u32" 0xdeadbeef (Net.Packet.get_u32 p 20);
  Net.Packet.set_u48 p 30 0x0123456789ab;
  check_int "u48" 0x0123456789ab (Net.Packet.get_u48 p 30);
  check_int "second byte" 0x23 (Net.Packet.get_u8 p 31)

let test_width_keyed_accessors () =
  (* the [Expr.width]-keyed dispatch every IR packet access funnels
     through (the concrete evaluator domain, witness construction) *)
  let p = Net.Packet.create 64 in
  List.iter
    (fun (w, off, v) ->
      Net.Packet.set p w off v;
      check_int "roundtrip" v (Net.Packet.get p w off))
    [
      (Ir.Expr.W8, 0, 0x5a);
      (Ir.Expr.W16, 2, 0xbeef);
      (Ir.Expr.W32, 4, 0xdeadbeef);
      (Ir.Expr.W48, 8, 0x0123456789ab);
    ];
  (* a wider value stored at W48 keeps only its low 48 bits *)
  Net.Packet.set p Ir.Expr.W48 20 0x7fff_0123_4567_89ab;
  check_int "W48 masks to 48 bits" 0x0123_4567_89ab
    (Net.Packet.get p Ir.Expr.W48 20)

let test_packet_bounds () =
  let p = Net.Packet.create 16 in
  (match Net.Packet.get_u32 p 13 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read past end accepted");
  (match Net.Packet.get_u8 p (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative offset accepted");
  (match Net.Packet.create (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative length accepted")

let prop_u32_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"u32 set/get roundtrip"
    QCheck2.Gen.(pair (int_range 0 28) (int_range 0 0xffffffff))
    (fun (off, v) ->
      let p = Net.Packet.create 32 in
      Net.Packet.set_u32 p off v;
      Net.Packet.get_u32 p off = v)

let test_ethernet () =
  let p = Net.Build.eth ~ethertype:Net.Ethernet.ethertype_ipv4 () in
  check_int "ethertype" 0x0800 (Net.Ethernet.get_ethertype p);
  check_bool "not broadcast" false (Net.Ethernet.is_broadcast p);
  Net.Ethernet.set_dst p Net.Ethernet.broadcast_mac;
  check_bool "broadcast" true (Net.Ethernet.is_broadcast p);
  check_string "mac string" "02:00:00:00:00:01"
    (Net.Ethernet.mac_to_string (Net.Ethernet.mac_of_parts [| 2; 0; 0; 0; 0; 1 |]))

let test_ipv4 () =
  let src = Net.Ipv4.addr_of_parts 10 0 0 1 in
  let dst = Net.Ipv4.addr_of_parts 93 184 216 34 in
  let p = Net.Build.udp ~src_ip:src ~dst_ip:dst ~src_port:5000 ~dst_port:80 () in
  check_int "version" 4 (Net.Ipv4.get_version p);
  check_int "ihl" 5 (Net.Ipv4.get_ihl p);
  check_int "proto" Net.Ipv4.proto_udp (Net.Ipv4.get_proto p);
  check_int "src" src (Net.Ipv4.get_src p);
  check_int "dst" dst (Net.Ipv4.get_dst p);
  check_bool "checksum valid" true (Net.Ipv4.checksum_ok p);
  Net.Ipv4.set_ttl p 3;
  check_bool "checksum invalid after mutation" false (Net.Ipv4.checksum_ok p);
  Net.Ipv4.update_checksum p;
  check_bool "checksum fixed" true (Net.Ipv4.checksum_ok p);
  check_string "addr string" "10.0.0.1" (Net.Ipv4.addr_to_string src)

let test_ipv4_options () =
  let p =
    Net.Build.ipv4_with_options ~options:3
      ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 1)
      ~dst_ip:(Net.Ipv4.addr_of_parts 10 0 0 2)
      ()
  in
  check_int "ihl with options" 8 (Net.Ipv4.get_ihl p);
  check_int "option count" 3 (Net.Ipv4.option_count p);
  check_int "l4 offset" (14 + 32) (Net.Ipv4.l4_offset p);
  check_bool "checksum covers options" true (Net.Ipv4.checksum_ok p)

let test_flow () =
  let f =
    Net.Flow.make
      ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 1)
      ~dst_ip:(Net.Ipv4.addr_of_parts 10 0 0 2)
      ~src_port:1234 ~dst_port:80 ~proto:Net.Ipv4.proto_tcp
  in
  let p = Net.Build.udp_of_flow f in
  (match Net.Flow.of_packet p with
  | Some f' -> check_bool "roundtrip" true (Net.Flow.equal f f')
  | None -> Alcotest.fail "flow not parsed");
  check_bool "reverse twice" true
    (Net.Flow.equal f (Net.Flow.reverse (Net.Flow.reverse f)));
  check_bool "non-ip has no flow" true
    (Net.Flow.of_packet (Net.Build.non_ip ()) = None)

let test_checksum () =
  let p = Net.Packet.create 4 in
  Net.Packet.set_u16 p 0 0x1234;
  let c = Net.Checksum.ones_complement p ~off:0 ~len:4 in
  Net.Packet.set_u16 p 2 c;
  check_bool "self-verifying" true (Net.Checksum.valid p ~off:0 ~len:4)

let test_pcap_roundtrip () =
  let packets =
    [
      Net.Build.non_ip ();
      Net.Build.udp ~src_ip:1 ~dst_ip:2 ~src_port:3 ~dst_port:4 ();
      Net.Build.tcp ~len:128 ~src_ip:5 ~dst_ip:6 ~src_port:7 ~dst_port:8 ();
    ]
  in
  let records = Net.Pcap.records_of_packets ~usec_gap:1000 packets in
  let path = Filename.temp_file "bolt_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Net.Pcap.write_file path records;
      let back = Net.Pcap.read_file path in
      check_int "count" 3 (List.length back);
      List.iter2
        (fun a b ->
          check_bool "payload" true
            (Net.Packet.equal a.Net.Pcap.packet b.Net.Pcap.packet);
          check_int "ts_usec" a.Net.Pcap.ts_usec b.Net.Pcap.ts_usec)
        records back)

let test_pcap_malformed () =
  let path = Filename.temp_file "bolt_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a pcap";
      close_out oc;
      match Net.Pcap.read_file path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_icmp () =
  let ping =
    Net.Icmp.echo_request ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 1)
      ~dst_ip:(Net.Ipv4.addr_of_parts 10 0 0 2) ~ident:7 ~seq:42 ()
  in
  check_int "type" Net.Icmp.type_echo_request (Net.Icmp.get_type ping);
  check_int "ident" 7 (Net.Icmp.get_ident ping);
  check_int "seq" 42 (Net.Icmp.get_seq ping);
  check_bool "icmp checksum" true (Net.Icmp.checksum_ok ping);
  check_bool "ip checksum" true (Net.Ipv4.checksum_ok ping);
  Net.Icmp.set_type ping Net.Icmp.type_echo_reply;
  check_bool "stale checksum detected" false (Net.Icmp.checksum_ok ping);
  Net.Icmp.update_checksum ping;
  check_bool "checksum fixed" true (Net.Icmp.checksum_ok ping)

let test_pp () =
  let udp = Net.Build.udp ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 9)
      ~dst_ip:(Net.Ipv4.addr_of_parts 93 184 216 34) ~src_port:5555
      ~dst_port:80 () in
  check_string "udp" "IPv4 10.0.0.9:5555 > 93.184.216.34:80 udp, 60B"
    (Net.Pp.to_string udp);
  let arp = Net.Build.non_ip () in
  check_string "non-ip"
    "eth 02:00:00:00:00:01 > 02:00:00:00:00:02 ethertype 0x0806, 60B"
    (Net.Pp.to_string arp);
  let opts = Net.Build.ipv4_with_options ~options:2 ~src_ip:1 ~dst_ip:2 () in
  check_bool "options flagged" true
    (let s = Net.Pp.to_string opts in
     String.length s > 0
     && (let rec has i = i + 7 <= String.length s
             && (String.sub s i 7 = "+2 opts" || has (i + 1)) in
         has 0))

let suite =
  [
    Alcotest.test_case "packet accessors" `Quick test_packet_accessors;
    Alcotest.test_case "width-keyed accessors" `Quick
      test_width_keyed_accessors;
    Alcotest.test_case "icmp" `Quick test_icmp;
    Alcotest.test_case "packet pretty printing" `Quick test_pp;
    Alcotest.test_case "packet bounds" `Quick test_packet_bounds;
    Alcotest.test_case "ethernet" `Quick test_ethernet;
    Alcotest.test_case "ipv4" `Quick test_ipv4;
    Alcotest.test_case "ipv4 options" `Quick test_ipv4_options;
    Alcotest.test_case "flows" `Quick test_flow;
    Alcotest.test_case "checksum" `Quick test_checksum;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap malformed" `Quick test_pcap_malformed;
    QCheck_alcotest.to_alcotest prop_u32_roundtrip;
  ]
