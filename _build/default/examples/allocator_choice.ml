(* Developer use-case (paper §5.3, Figures 5-7): choosing between two
   port-allocator implementations with contracts instead of A/B testing.

   Both allocators are O(1) "in the common case", so big-O does not
   decide; the contracts do.  Allocator A (doubly-linked free list) has
   occupancy-independent constants; allocator B (lowest-free bitmap) has
   a scan term that grows with occupancy but smaller constants.

     dune exec examples/allocator_choice.exe *)

let () =
  Fmt.pr "Method contracts for the two allocators:@.@.";
  Fmt.pr "  A (dll)   alloc: %a@." Perf.Cost_vec.pp
    Dslib.Port_alloc.Recipe.alloc_dll;
  Fmt.pr "@.  B (array) alloc: %a@.@." Perf.Cost_vec.pp
    Dslib.Port_alloc.Recipe.alloc_array;
  Fmt.pr
    "B's cost depends on PCV s (full bitmap words skipped).  Whether B \
     wins@.depends on the traffic: the Distiller binds s for each \
     scenario.@.@.";

  let low, high = Experiments.Allocators.figure5_6_7 ~packets:12_000 () in
  Experiments.Allocators.print Fmt.stdout low;
  Fmt.pr "@.";
  Experiments.Allocators.print Fmt.stdout high;

  let verdict (r : Experiments.Allocators.result) =
    if r.Experiments.Allocators.predicted_cycles_a
       <= r.Experiments.Allocators.predicted_cycles_b
    then "A"
    else "B"
  in
  Fmt.pr
    "@.=> contracts pick %s for the low-churn deployment and %s for the \
     high-churn one,@.   without running a single A/B test in \
     production.@."
    (verdict low) (verdict high)
