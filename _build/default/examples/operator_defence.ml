(* Operator use-case (paper §5.2): tuning the bridge's rehash-defence
   threshold with the contract and the Distiller.

   The MAC table defends against hash-collision attacks by re-keying its
   hash whenever a learn probe walks more than [threshold] buckets.
   Rehashing is a performance cliff, so the threshold must be high enough
   that benign traffic never trips it — but every extra bucket of
   headroom is latency an attacker can inflict for free.

     dune exec examples/operator_defence.exe *)

let () =
  Fmt.pr "The contract shows the cliff (paper Table 4):@.@.";
  Experiments.Exhibits.table4 Fmt.stdout;

  Fmt.pr
    "@.The Distiller replays a benign uniform-random workload and reports \
     how@.many buckets learns actually traverse, next to the contract's \
     prediction@.as a function of the traversal count (paper Figure 2):@.@.";
  let points = Experiments.Attack.figure2 ~packets:10_000 () in
  Experiments.Attack.print Fmt.stdout points;

  (* Pick the smallest threshold that benign traffic crosses with
     probability below one in ten thousand. *)
  let threshold =
    match
      List.find_opt
        (fun p -> p.Experiments.Attack.ccdf < 0.0001)
        points
    with
    | Some p -> p.Experiments.Attack.traversals + 1
    | None -> 1 + List.length points
  in
  let worst =
    List.fold_left
      (fun acc (p : Experiments.Attack.point) ->
        if p.Experiments.Attack.traversals < threshold then
          max acc p.Experiments.Attack.predicted_ic
        else acc)
      0 points
  in
  Fmt.pr
    "@.=> set the threshold to %d: benign traffic stays under it (p < \
     1e-4),@.   and the contract guarantees at most %d instructions per \
     packet@.   unless the defence itself fires.@."
    threshold worst
