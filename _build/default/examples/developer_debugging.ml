(* Developer use-case (paper §5.3): finding the VigNAT expiry-batching
   bug with a contract and the Distiller, then verifying the fix.

   The NAT's contract is dominated by the expired-flows PCV [e]
   (Table 6).  If production latency shows a rare heavy tail, the
   contract says: look at what makes [e] large.  The Distiller confirms
   that with second-granularity timestamps, expirations arrive in batches
   — and that millisecond stamps fix it (Tables 7/8, Figure 4).

     dune exec examples/developer_debugging.exe *)

let () =
  Fmt.pr "1. The contract points at the dominant PCV:@.@.";
  Experiments.Exhibits.table6 Fmt.stdout;
  Fmt.pr
    "@.   Every row is dominated by e-terms: a packet that triggers many@.\
    \   expirations is slow, whatever else it does.@.";

  Fmt.pr "@.2. Distil a churny workload at second granularity:@.@.";
  let before = Experiments.Vignat.run ~granularity:1_000_000 ~packets:12_000 () in
  Experiments.Vignat.print_report ~label:"   (original)" Fmt.stdout before;

  Fmt.pr "@.3. The fix — millisecond timestamps — spreads expiry out:@.@.";
  let after = Experiments.Vignat.run ~granularity:1_000 ~packets:12_000 () in
  Experiments.Vignat.print_report ~label:"   (fixed)" Fmt.stdout after;

  let speedup =
    float_of_int before.Experiments.Vignat.max_latency
    /. float_of_int (max 1 after.Experiments.Vignat.max_latency)
  in
  Fmt.pr
    "@.=> worst-case packet latency improved %.0fx; the median is \
     unchanged@.   (%d vs %d cycles) because expiry work is now spread \
     across packets@.   instead of batching on the second boundary — \
     exactly the paper's Figure 4.@."
    speedup before.Experiments.Vignat.p50 after.Experiments.Vignat.p50
