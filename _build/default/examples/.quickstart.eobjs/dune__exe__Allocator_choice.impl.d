examples/allocator_choice.ml: Dslib Experiments Fmt Perf
