examples/chain_composition.ml: Experiments Fmt Perf
