examples/developer_debugging.mli:
