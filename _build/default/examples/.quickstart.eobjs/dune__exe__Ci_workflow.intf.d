examples/ci_workflow.mli:
