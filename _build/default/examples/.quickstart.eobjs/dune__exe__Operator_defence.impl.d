examples/operator_defence.ml: Experiments Fmt List
