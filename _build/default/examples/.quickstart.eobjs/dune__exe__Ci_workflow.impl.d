examples/ci_workflow.ml: Bolt Dslib Experiments Filename Fmt List Nf Perf Result Sys Workload
