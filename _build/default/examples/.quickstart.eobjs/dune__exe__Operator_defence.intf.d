examples/operator_defence.mli:
