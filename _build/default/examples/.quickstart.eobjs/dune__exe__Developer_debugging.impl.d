examples/developer_debugging.ml: Experiments Fmt
