examples/allocator_choice.mli:
