examples/quickstart.ml: Bolt Dslib Exec Expr Fmt Hw Iclass Ir Net Perf Program Stmt Symbex
