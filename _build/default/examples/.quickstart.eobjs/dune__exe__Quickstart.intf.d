examples/quickstart.mli:
