(* Tests for the execution layer: the meter (the Pin stand-in) and a
   differential check of the symbolic engine against the interpreter on
   straight-line programs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_meter_accounting () =
  let meter = Exec.Meter.create (Hw.Model.conservative ()) in
  Exec.Meter.instr meter Hw.Cost.Alu 3;
  Exec.Meter.instr meter Hw.Cost.Branch 1;
  Exec.Meter.mem meter 0x1000;
  Exec.Meter.mem meter ~write:true 0x1040;
  check_int "ic" 4 (Exec.Meter.ic meter);
  check_int "ma" 2 (Exec.Meter.ma meter);
  check_bool "cycles accrued" true (Exec.Meter.cycles meter > 0)

let test_meter_observations () =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  Exec.Meter.observe meter Perf.Pcv.collisions 2;
  Exec.Meter.observe meter Perf.Pcv.collisions 5;
  Exec.Meter.observe meter Perf.Pcv.traversals 1;
  check_int "max" 5
    (Option.get (Perf.Pcv.lookup (Exec.Meter.pcv_max meter) Perf.Pcv.collisions));
  check_int "sum" 7
    (Option.get (Perf.Pcv.lookup (Exec.Meter.pcv_sum meter) Perf.Pcv.collisions));
  check_int "in order" 3 (List.length (Exec.Meter.observations meter));
  Exec.Meter.reset_observations meter;
  check_bool "reset clears observations" true
    (Exec.Meter.observations meter = []);
  check_bool "reset keeps cumulative costs" true (Exec.Meter.ic meter = 0)

let test_meter_tracing () =
  let traced = Exec.Meter.create ~trace:true (Hw.Model.null ()) in
  Exec.Meter.instr traced Hw.Cost.Alu 1;
  Exec.Meter.mem traced 0x10;
  Exec.Meter.loop_head traced "n";
  Exec.Meter.loop_exit traced "n";
  (match Exec.Meter.events traced with
  | [ Exec.Meter.E_instr (Hw.Cost.Alu, 1); Exec.Meter.E_mem _;
      Exec.Meter.E_loop_head "n"; Exec.Meter.E_loop_exit "n" ] ->
      ()
  | _ -> Alcotest.fail "wrong event stream");
  let untraced = Exec.Meter.create (Hw.Model.null ()) in
  Exec.Meter.instr untraced Hw.Cost.Alu 1;
  check_bool "no trace by default" true (Exec.Meter.events untraced = [])

(* Differential property: on random straight-line arithmetic programs the
   engine must produce exactly one path whose action agrees with the
   interpreter — its constant folding IS the interpreter's semantics. *)
let gen_straightline =
  let open QCheck2.Gen in
  let gen_leaf env =
    oneof
      [
        (int_range 0 1000 >|= fun n -> Ir.Expr.Const n);
        (if env = [] then int_range 0 1000 >|= fun n -> Ir.Expr.Const n
         else oneofl env >|= fun v -> Ir.Expr.Var v);
      ]
  in
  let gen_op =
    oneofl
      Ir.Expr.[ Add; Sub; Mul; And; Or; Xor; Shl; Eq; Ne; Lt; Le; Land; Lor ]
  in
  let rec gen_stmts env k =
    if k = 0 then
      let* leaf = gen_leaf env in
      return [ Ir.Stmt.Return (Ir.Stmt.Forward leaf) ]
    else
      let var = Printf.sprintf "v%d" k in
      let* a = gen_leaf env in
      let* b = gen_leaf env in
      let* op = gen_op in
      let* rest = gen_stmts (var :: env) (k - 1) in
      return (Ir.Stmt.assign var (Ir.Expr.Binop (op, a, b)) :: rest)
  in
  let* size = int_range 1 8 in
  let* body = gen_stmts [] size in
  return (Ir.Program.make ~name:"straightline" ~state:[] body)

let prop_engine_matches_interp =
  QCheck2.Test.make ~count:100
    ~name:"engine constant folding agrees with the interpreter"
    gen_straightline
    (fun program ->
      let result =
        Symbex.Engine.explore ~models:Bolt.Ds_models.default program
      in
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let run =
        Exec.Interp.run ~meter ~mode:(Exec.Interp.Production [])
          program (Net.Packet.create 64)
      in
      match (result.Symbex.Engine.paths, run.Exec.Interp.outcome) with
      | [ { Symbex.Path.action = Symbex.Path.Forward v; _ } ],
        Exec.Interp.Sent port ->
          Symbex.Value.is_concrete v = Some port
      | _ -> false)

let test_interp_rx_tx_parity () =
  (* forwarding charges more framing than dropping, deterministically *)
  let fwd = Ir.Program.make ~name:"f" ~state:[] [ Ir.Stmt.forward_port 0 ] in
  let drp = Ir.Program.make ~name:"d" ~state:[] [ Ir.Stmt.drop ] in
  let cost p =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let r =
      Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) p
        (Net.Packet.create 64)
    in
    (r.Exec.Interp.ic, r.Exec.Interp.ma)
  in
  let fic, fma = cost fwd and dic, dma = cost drp in
  check_bool "forward framing dearer" true (fic > dic && fma > dma);
  (* and identical across runs *)
  check_bool "deterministic" true (cost fwd = (fic, fma))

let suite =
  [
    Alcotest.test_case "meter accounting" `Quick test_meter_accounting;
    Alcotest.test_case "meter observations" `Quick test_meter_observations;
    Alcotest.test_case "meter tracing" `Quick test_meter_tracing;
    Alcotest.test_case "rx/tx framing" `Quick test_interp_rx_tx_parity;
    QCheck_alcotest.to_alcotest prop_engine_matches_interp;
  ]
