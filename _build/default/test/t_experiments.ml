(* End-to-end soundness: for every Figure 1 / Table 3 scenario, the BOLT
   prediction must be a conservative upper bound of the measured run, in
   all three metrics — the essential property of a performance contract
   (paper §2.2). *)

let check_bool = Alcotest.(check bool)

let rows =
  lazy
    (Experiments.Scenarios.figure1_table3
       ~params:Experiments.Scenarios.quick_params ())

let soundness metric get_p get_m () =
  List.iter
    (fun (row : Experiments.Harness.row) ->
      let p = get_p row.Experiments.Harness.predicted in
      let m = get_m row.Experiments.Harness.measured in
      if p < m then
        Alcotest.fail
          (Printf.sprintf "%s: predicted %s %d < measured %d"
             row.Experiments.Harness.label metric p m))
    (Lazy.force rows)

let test_gap_is_small () =
  (* the paper reports <= 7.5% / 7.6% IC/MA over-estimation; we allow a
     slightly wider envelope on the tiny quick workloads *)
  List.iter
    (fun (row : Experiments.Harness.row) ->
      let over =
        Experiments.Harness.over_estimate_pct
          ~predicted:row.Experiments.Harness.predicted.Experiments.Harness.ic
          ~measured:row.Experiments.Harness.measured.Experiments.Harness.ic
      in
      check_bool
        (Printf.sprintf "%s IC gap %.1f%% within 20%%"
           row.Experiments.Harness.label over)
        true (over <= 20.))
    (Lazy.force rows)

let test_pathological_dwarfs_typical () =
  (* NAT1/Br1/LB1 are orders of magnitude above the typical classes *)
  let find label =
    List.find
      (fun (r : Experiments.Harness.row) -> r.Experiments.Harness.label = label)
      (Lazy.force rows)
  in
  let ic label =
    (find label).Experiments.Harness.predicted.Experiments.Harness.ic
  in
  check_bool "NAT1 >> NAT3" true (ic "NAT1" > 100 * ic "NAT3");
  check_bool "Br1 >> Br3" true (ic "Br1" > 100 * ic "Br3");
  check_bool "LB1 >> LB4" true (ic "LB1" > 100 * ic "LB4")

let test_cycle_ratios_shape () =
  (* conservative cycles: a single-digit-to-low-double-digit factor, with
     the pathological scenarios near the paper's ~9x *)
  List.iter
    (fun (row : Experiments.Harness.row) ->
      let r =
        Experiments.Harness.ratio
          ~predicted:row.Experiments.Harness.predicted.Experiments.Harness.cycles
          ~measured:row.Experiments.Harness.measured.Experiments.Harness.cycles
      in
      check_bool
        (Printf.sprintf "%s cycle ratio %.1f in [1, 40]"
           row.Experiments.Harness.label r)
        true
        (r >= 1. && r <= 40.))
    (Lazy.force rows)

let test_microbench_shape () =
  (* P1 tight, P2 and P3 increasingly over-estimated (paper §5.1) *)
  match Experiments.Microbench.run ~nodes:2048 () with
  | [ p1; p2; p3 ] ->
      check_bool "P1 within 25%" true (p1.Experiments.Microbench.ratio < 1.25);
      check_bool "P2 benefits from prefetching" true
        (p2.Experiments.Microbench.ratio > 3.);
      check_bool "P3 benefits most" true
        (p3.Experiments.Microbench.ratio
        > p2.Experiments.Microbench.ratio *. 0.9);
      check_bool "predicted bounds measured" true
        (List.for_all
           (fun (r : Experiments.Microbench.row) ->
             r.Experiments.Microbench.predicted_cycles
             >= r.Experiments.Microbench.measured_cycles)
           [ p1; p2; p3 ])
  | _ -> Alcotest.fail "expected three programs"

let test_attack_ccdf_shape () =
  let points = Experiments.Attack.figure2 ~packets:3_000 () in
  check_bool "non-empty" true (points <> []);
  (* CCDF is non-increasing and predicted IC is increasing in t *)
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun ((a : Experiments.Attack.point), (b : Experiments.Attack.point)) ->
      check_bool "ccdf non-increasing" true
        (a.Experiments.Attack.ccdf >= b.Experiments.Attack.ccdf);
      check_bool "predicted ic increasing" true
        (a.Experiments.Attack.predicted_ic < b.Experiments.Attack.predicted_ic))
    (pairs points)

let test_allocator_tradeoff_direction () =
  (* small run: just the direction — B pays for occupancy-length scans *)
  let low = Experiments.Allocators.run Experiments.Allocators.Low_churn
      ~packets:6_000 () in
  check_bool "B predicted worse than A at low churn" true
    (low.Experiments.Allocators.predicted_cycles_b
    > low.Experiments.Allocators.predicted_cycles_a);
  check_bool "scan distilled" true
    (low.Experiments.Allocators.distilled_scan_p95 > 0)

let suite =
  [
    Alcotest.test_case "soundness: IC" `Slow
      (soundness "IC"
         (fun (p : Experiments.Harness.prediction) -> p.Experiments.Harness.ic)
         (fun (m : Experiments.Harness.measurement) -> m.Experiments.Harness.ic));
    Alcotest.test_case "soundness: MA" `Slow
      (soundness "MA"
         (fun (p : Experiments.Harness.prediction) -> p.Experiments.Harness.ma)
         (fun (m : Experiments.Harness.measurement) -> m.Experiments.Harness.ma));
    Alcotest.test_case "soundness: cycles" `Slow
      (soundness "cycles"
         (fun (p : Experiments.Harness.prediction) ->
           p.Experiments.Harness.cycles)
         (fun (m : Experiments.Harness.measurement) ->
           m.Experiments.Harness.cycles));
    Alcotest.test_case "IC gap small" `Slow test_gap_is_small;
    Alcotest.test_case "pathological magnitude" `Slow
      test_pathological_dwarfs_typical;
    Alcotest.test_case "cycle ratio envelope" `Slow test_cycle_ratios_shape;
    Alcotest.test_case "P1/P2/P3 shape" `Quick test_microbench_shape;
    Alcotest.test_case "figure 2 shape" `Quick test_attack_ccdf_shape;
    Alcotest.test_case "allocator trade-off direction" `Slow
      test_allocator_tradeoff_direction;
  ]
