(* Tests for the workload generators and the tooling extensions (contract
   diffing, sensitivity analysis). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- PRNG ----------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Workload.Prng.create ~seed:9 in
  let b = Workload.Prng.create ~seed:9 in
  for _ = 1 to 100 do
    check_int "same stream" (Workload.Prng.next a) (Workload.Prng.next b)
  done;
  let c = Workload.Prng.create ~seed:10 in
  check_bool "different seed differs" true
    (Workload.Prng.next a <> Workload.Prng.next c)

let test_prng_ranges () =
  let rng = Workload.Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Workload.Prng.below rng 7 in
    check_bool "below" true (v >= 0 && v < 7);
    let w = Workload.Prng.range rng ~lo:5 ~hi:9 in
    check_bool "range" true (w >= 5 && w <= 9)
  done;
  (match Workload.Prng.below rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bound accepted");
  (* rough uniformity: each residue of 4 gets 15-35% *)
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Workload.Prng.below rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 600 && c < 1400))
    counts

(* ---- Generators ------------------------------------------------------------ *)

let test_distinct_flows () =
  let rng = Workload.Prng.create ~seed:4 in
  let flows = Workload.Gen.distinct_flows rng 200 in
  check_int "count" 200 (List.length flows);
  check_int "distinct" 200
    (List.length (List.sort_uniq Net.Flow.compare flows));
  List.iter
    (fun (f : Net.Flow.t) ->
      check_bool "valid proto" true
        (f.Net.Flow.proto = Net.Ipv4.proto_tcp
        || f.Net.Flow.proto = Net.Ipv4.proto_udp))
    flows

let test_packets_parse_back () =
  let rng = Workload.Prng.create ~seed:5 in
  let flows = Workload.Gen.distinct_flows rng 50 in
  List.iter2
    (fun flow packet ->
      match Net.Flow.of_packet packet with
      | Some f -> check_bool "5-tuple preserved" true (Net.Flow.equal f flow)
      | None -> Alcotest.fail "generated packet unparsable")
    flows
    (Workload.Gen.packets_of_flows flows)

let test_churn_stream () =
  let rng = Workload.Prng.create ~seed:6 in
  let stream =
    Workload.Gen.churn rng ~pool:16 ~packets:500 ~new_flow_prob:0.2 ~gap:10
      ~start:1000
  in
  check_int "length" 500 (List.length stream);
  (* timestamps strictly increase by gap *)
  let rec check_times i = function
    | { Workload.Stream.now; _ } :: rest ->
        check_int "timestamp" (1000 + (i * 10)) now;
        check_times (i + 1) rest
    | [] -> ()
  in
  check_times 0 stream;
  (* churn produces more distinct flows than the pool *)
  let distinct =
    List.filter_map
      (fun e -> Net.Flow.of_packet e.Workload.Stream.packet)
      stream
    |> List.sort_uniq Net.Flow.compare |> List.length
  in
  check_bool "churn grows flow count" true (distinct > 16)

let test_heartbeats () =
  let frames =
    Workload.Gen.heartbeat_frames ~backend_ids:[ 0; 3; 7 ] ~port:9999
  in
  check_int "one per backend" 3 (List.length frames);
  List.iter2
    (fun b frame ->
      check_int "dst port" 9999 (Net.L4.get_dst_port frame);
      check_int "encodes backend" b (Net.Ipv4.get_src frame land 0xff))
    [ 0; 3; 7 ] frames

let test_adversarial_collisions () =
  let rng = Workload.Prng.create ~seed:7 in
  let ft =
    Dslib.Flow_table.create ~base:0x7800_0000 ~key_len:5 ~capacity:64
      ~buckets:64 ~timeout:1000 ()
  in
  let keys =
    Workload.Adversarial.colliding_flows rng
      ~hash:(Dslib.Flow_table.hash_of_key ft)
      ~key_len:5 ~bucket:0 32
  in
  check_int "count" 32 (List.length keys);
  List.iter
    (fun key ->
      check_int "all in bucket 0" 0 (Dslib.Flow_table.hash_of_key ft key))
    keys;
  check_int "distinct" 32 (List.length (List.sort_uniq compare keys))

let test_fill_collided_then_mass_expiry () =
  let rng = Workload.Prng.create ~seed:8 in
  let ft =
    Dslib.Flow_table.create ~base:0x7900_0000 ~key_len:5 ~capacity:32
      ~buckets:32 ~timeout:1000 ()
  in
  Workload.Adversarial.fill_flow_table_collided ft rng ~value:1
    ~stamped_at:500;
  check_int "full" 32 (Dslib.Flow_table.size ft);
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  check_int "mass expiry" 32 (Dslib.Flow_table.expire ft meter ~now:10_000)

(* ---- Contract diff ----------------------------------------------------------- *)

let entry name cost =
  Perf.Contract.entry ~class_name:name cost

let vec ic =
  Perf.Cost_vec.make ~ic ~ma:(Perf.Perf_expr.const 1)
    ~cycles:(Perf.Perf_expr.const 1)

let test_contract_diff () =
  let e = Perf.Pcv.expired in
  let before =
    Perf.Contract.make ~nf:"x"
      [
        entry "A" (vec (Perf.Perf_expr.add_const 10 (Perf.Perf_expr.term 3 [ e ])));
        entry "B" (vec (Perf.Perf_expr.const 5));
      ]
  in
  let after =
    Perf.Contract.make ~nf:"x"
      [
        entry "A" (vec (Perf.Perf_expr.add_const 10 (Perf.Perf_expr.term 7 [ e ])));
        entry "C" (vec (Perf.Perf_expr.const 2));
      ]
  in
  let d = Perf.Contract_diff.diff before after in
  check_bool "not empty" false (Perf.Contract_diff.is_empty d);
  let kinds =
    List.map
      (function
        | Perf.Contract_diff.Added e -> "+" ^ e.Perf.Contract.class_name
        | Perf.Contract_diff.Removed e -> "-" ^ e.Perf.Contract.class_name
        | Perf.Contract_diff.Changed { class_name; _ } -> "~" ^ class_name)
      d
    |> List.sort String.compare
  in
  check_bool "changes" true (kinds = [ "+C"; "-B"; "~A" ]);
  check_int "regressions include growth and additions" 2
    (List.length (Perf.Contract_diff.regressions d));
  check_bool "identity diff empty" true
    (Perf.Contract_diff.is_empty (Perf.Contract_diff.diff before before))

(* ---- Sensitivity ---------------------------------------------------------------- *)

let test_sensitivity_sweep () =
  let l = Perf.Pcv.prefix_len in
  let cost =
    vec (Perf.Perf_expr.add_const 5 (Perf.Perf_expr.term 4 [ l ]))
  in
  let points =
    Distiller.Sensitivity.sweep ~cost ~metric:Perf.Metric.Instructions
      ~pcv:l ~base:[] ~lo:0 ~hi:4
      ~observed:[ 1; 1; 2; 3 ]
      ()
  in
  check_int "points" 5 (List.length points);
  let p2 = List.nth points 2 in
  check_int "bound at 2" 13 p2.Distiller.Sensitivity.bound;
  check_bool "share at 2" true
    (Float.abs (p2.Distiller.Sensitivity.traffic_share -. 0.25) < 1e-9);
  check_bool "knee at 99%" true
    (Distiller.Sensitivity.knee points ~threshold:0.99 = Some 3);
  check_bool "knee never reached on empty traffic" true
    (Distiller.Sensitivity.knee
       (Distiller.Sensitivity.sweep ~cost ~metric:Perf.Metric.Instructions
          ~pcv:l ~base:[] ~lo:0 ~hi:2 ())
       ~threshold:0.5
    = None)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "distinct flows" `Quick test_distinct_flows;
    Alcotest.test_case "packets parse back" `Quick test_packets_parse_back;
    Alcotest.test_case "churn stream" `Quick test_churn_stream;
    Alcotest.test_case "heartbeat frames" `Quick test_heartbeats;
    Alcotest.test_case "adversarial collisions" `Quick
      test_adversarial_collisions;
    Alcotest.test_case "synthesized mass expiry" `Quick
      test_fill_collided_then_mass_expiry;
    Alcotest.test_case "contract diff" `Quick test_contract_diff;
    Alcotest.test_case "sensitivity sweep" `Quick test_sensitivity_sweep;
  ]
