(* Tests for the hardware models (lib/hw). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_cache_basic () =
  let cache = Hw.Cache.create ~size_bytes:1024 ~assoc:2 in
  check_bool "cold miss" false (Hw.Cache.access cache 0);
  check_bool "warm hit" true (Hw.Cache.access cache 0);
  check_bool "same line hit" true (Hw.Cache.access cache 63);
  check_bool "next line miss" false (Hw.Cache.access cache 64);
  let hits, misses = Hw.Cache.stats cache in
  check_int "hits" 2 hits;
  check_int "misses" 2 misses

let test_cache_lru_eviction () =
  (* 1024B, 2-way, 64B lines → 8 sets; lines 0, 8, 16 map to set 0 *)
  let cache = Hw.Cache.create ~size_bytes:1024 ~assoc:2 in
  let addr line = line * 64 in
  ignore (Hw.Cache.access cache (addr 0));
  ignore (Hw.Cache.access cache (addr 8));
  ignore (Hw.Cache.access cache (addr 0)) (* promote line 0 *);
  ignore (Hw.Cache.access cache (addr 16)) (* evicts line 8 (LRU) *);
  check_bool "line 0 survives" true (Hw.Cache.probe cache (addr 0));
  check_bool "line 8 evicted" false (Hw.Cache.probe cache (addr 8));
  check_bool "line 16 present" true (Hw.Cache.probe cache (addr 16))

let test_cache_remove_insert () =
  let cache = Hw.Cache.create ~size_bytes:1024 ~assoc:2 in
  Hw.Cache.insert cache 128;
  check_bool "inserted" true (Hw.Cache.probe cache 128);
  Hw.Cache.remove cache 128;
  check_bool "removed" false (Hw.Cache.probe cache 128);
  Hw.Cache.remove cache 128 (* idempotent *);
  check_bool "still absent" false (Hw.Cache.probe cache 128)

let test_cache_geometry () =
  match Hw.Cache.create ~size_bytes:100 ~assoc:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad geometry accepted"

let test_conservative () =
  let m = Hw.Conservative.create () in
  Hw.Conservative.instr m Hw.Cost.Alu 10;
  check_int "alu cycles" (10 * Hw.Cost.worst_case_cycles Hw.Cost.Alu)
    (Hw.Conservative.cycles m);
  let before = Hw.Conservative.cycles m in
  Hw.Conservative.mem m ~addr:0x1000 ~write:false ~dependent:false;
  check_int "cold access costs DRAM" (before + Hw.Cost.dram_cycles)
    (Hw.Conservative.cycles m);
  let before = Hw.Conservative.cycles m in
  Hw.Conservative.mem m ~addr:0x1001 ~write:false ~dependent:false;
  check_int "proven L1 hit" (before + Hw.Cost.l1_hit_cycles)
    (Hw.Conservative.cycles m);
  check_int "counts" 2 (Hw.Conservative.mem_count m)

let test_realistic_warm () =
  let m = Hw.Realistic.create () in
  Hw.Realistic.mem m ~addr:0x5000 ~write:false ~dependent:false;
  let after_first = Hw.Realistic.cycles m in
  Hw.Realistic.mem m ~addr:0x5000 ~write:false ~dependent:false;
  check_int "second access is an L1 hit"
    (after_first + Hw.Cost.l1_hit_cycles)
    (Hw.Realistic.cycles m)

let test_realistic_prefetch () =
  (* A long sequential dependent walk should cost far less per line than
     DRAM once the prefetcher locks on. *)
  let sequential = Hw.Realistic.create () in
  for i = 0 to 63 do
    Hw.Realistic.mem sequential ~addr:(0x100000 + (i * 64)) ~write:false
      ~dependent:true
  done;
  let random = Hw.Realistic.create () in
  (* same lines, shuffled stride so no prefetch *)
  for i = 0 to 63 do
    let j = i * 17 mod 64 in
    Hw.Realistic.mem random ~addr:(0x200000 + (j * 64)) ~write:false
      ~dependent:true
  done;
  check_bool "prefetching pays" true
    (Hw.Realistic.cycles sequential < Hw.Realistic.cycles random / 2)

let test_realistic_boundary () =
  let m = Hw.Realistic.create () in
  Hw.Realistic.mem m ~addr:0x1000_0000 ~write:false ~dependent:false;
  Hw.Realistic.mem m ~addr:0x1000_0000 ~write:false ~dependent:false;
  let warm = Hw.Realistic.cycles m in
  Hw.Realistic.mem m ~addr:0x1000_0000 ~write:false ~dependent:false;
  check_int "warm hit" (warm + Hw.Cost.l1_hit_cycles)
    (Hw.Realistic.cycles m);
  Hw.Realistic.packet_boundary m ~regions:[ (0x1000_0000, 2048) ];
  let before = Hw.Realistic.cycles m in
  Hw.Realistic.mem m ~addr:0x1000_0000 ~write:false ~dependent:false;
  check_int "DMA pushed the line to L3 (DDIO)"
    (before + Hw.Cost.l3_hit_cycles)
    (Hw.Realistic.cycles m)

let test_conservative_exceeds_realistic () =
  (* On an arbitrary access pattern the conservative model must charge at
     least as much as the realistic one. *)
  let rng = Workload.Prng.create ~seed:3 in
  let cons = Hw.Model.conservative () in
  let real = Hw.Model.realistic () in
  for _ = 1 to 2000 do
    let addr = 0x4000_0000 + (Workload.Prng.below rng 512 * 64) in
    let dependent = Workload.Prng.bool rng 0.5 in
    cons.Hw.Model.instr Hw.Cost.Alu 3;
    real.Hw.Model.instr Hw.Cost.Alu 3;
    cons.Hw.Model.instr Hw.Cost.Branch 1;
    real.Hw.Model.instr Hw.Cost.Branch 1;
    cons.Hw.Model.mem ~addr ~write:false ~dependent;
    real.Hw.Model.mem ~addr ~write:false ~dependent
  done;
  check_bool "conservative >= realistic" true
    (cons.Hw.Model.cycles () >= real.Hw.Model.cycles ())

let test_null_model () =
  let m = Hw.Model.null () in
  m.Hw.Model.instr Hw.Cost.Div 5;
  m.Hw.Model.mem ~addr:0 ~write:true ~dependent:false;
  check_int "cycles stay zero" 0 (m.Hw.Model.cycles ())

let test_tlb_penalty () =
  (* touching many distinct pages costs more than the same number of
     accesses within one page, through the DTLB penalty alone *)
  let many_pages = Hw.Realistic.create () in
  for i = 0 to 255 do
    Hw.Realistic.mem many_pages ~addr:(i * 4096 * 3) ~write:false
      ~dependent:true
  done;
  let one_page = Hw.Realistic.create () in
  for i = 0 to 255 do
    (* distinct lines of the same few pages, same cache behaviour class *)
    Hw.Realistic.mem one_page ~addr:(i * 64 * 193 mod 8192) ~write:false
      ~dependent:true
  done;
  check_bool "page walks cost" true
    (Hw.Realistic.cycles many_pages > Hw.Realistic.cycles one_page)

let suite =
  [
    Alcotest.test_case "cache basics" `Quick test_cache_basic;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache remove/insert" `Quick test_cache_remove_insert;
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
    Alcotest.test_case "conservative model" `Quick test_conservative;
    Alcotest.test_case "realistic warm hits" `Quick test_realistic_warm;
    Alcotest.test_case "realistic prefetcher" `Quick test_realistic_prefetch;
    Alcotest.test_case "realistic DMA boundary" `Quick test_realistic_boundary;
    Alcotest.test_case "conservative dominates realistic" `Quick
      test_conservative_exceeds_realistic;
    Alcotest.test_case "null model" `Quick test_null_model;
    Alcotest.test_case "dtlb penalty" `Quick test_tlb_penalty;
  ]
