test/t_ir.ml: Alcotest Array Exec Expr Fmt Hw Ir List Net Nf Option Perf Program Semantics Stmt String
