test/t_exec.ml: Alcotest Bolt Exec Hw Ir List Net Option Perf Printf QCheck2 QCheck_alcotest Symbex
