test/main.ml: Alcotest T_bolt T_distiller T_dslib T_exec T_experiments T_extensions T_hw T_ir T_net T_perf T_solver T_soundness T_symbex T_tools T_workload
