test/t_distiller.ml: Alcotest Distiller Dslib Experiments Filename Float Fun List Net Nf Perf Sys Workload
