test/t_hw.ml: Alcotest Hw Workload
