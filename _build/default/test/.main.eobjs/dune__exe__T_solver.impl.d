test/t_solver.ml: Alcotest Constr Linexpr List Model Printf QCheck2 QCheck_alcotest Solve Solver Sym
