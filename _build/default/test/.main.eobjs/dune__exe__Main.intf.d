test/main.mli:
