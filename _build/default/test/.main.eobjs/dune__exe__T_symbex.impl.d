test/t_symbex.ml: Alcotest Bolt Exec Expr Hw Ir List Nf Printf Program Semantics Solver Stmt String Symbex
