test/t_dslib.ml: Alcotest Dslib Exec Fmt Hw List Net Option Perf Printf QCheck2 QCheck_alcotest Workload
