test/t_extensions.ml: Alcotest Bolt Dslib Exec Hw List Net Nf Perf QCheck2 QCheck_alcotest Result Symbex
