test/t_tools.ml: Alcotest Bolt Dslib Exec Experiments Fmt Hw List Net Nf Perf Result String Workload
