test/t_bolt.ml: Alcotest Bolt Contract Cost_vec Ds_contract Experiments List Metric Net Nf Pcv Perf Perf_expr Result Symbex
