test/t_perf.ml: Alcotest Contract Cost_vec Ds_contract List Metric Option Pcv Perf Perf_expr QCheck2 QCheck_alcotest Result
