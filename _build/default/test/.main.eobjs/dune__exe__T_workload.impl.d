test/t_workload.ml: Alcotest Array Distiller Dslib Exec Float Hw List Net Perf String Workload
