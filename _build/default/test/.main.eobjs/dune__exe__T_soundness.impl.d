test/t_soundness.ml: Alcotest Bolt Distiller Dslib Exec Fmt Hw List Net Nf Perf Printf QCheck2 QCheck_alcotest Symbex Workload
