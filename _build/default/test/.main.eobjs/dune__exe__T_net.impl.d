test/t_net.ml: Alcotest Filename Fun List Net QCheck2 QCheck_alcotest String Sys
