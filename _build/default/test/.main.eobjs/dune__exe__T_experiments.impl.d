test/t_experiments.ml: Alcotest Experiments Lazy List Printf
