(* Tests for the performance-expression algebra (lib/perf). *)

open Perf

let e = Pcv.expired
let c = Pcv.collisions
let t_ = Pcv.traversals

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_pcv_validation () =
  check_string "name" "e" (Pcv.name Pcv.expired);
  Alcotest.check_raises "empty name" (Invalid_argument "Pcv.v: invalid PCV name \"\"")
    (fun () -> ignore (Pcv.v ""));
  (match Pcv.v "bad name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "space accepted");
  check_bool "equal" true (Pcv.equal (Pcv.v "e") Pcv.expired)

let test_binding () =
  let b = [ (e, 3); (c, 0) ] in
  check_int "lookup" 3 (Option.get (Pcv.lookup b e));
  check_bool "missing" true (Pcv.lookup b t_ = None)

(* VigNAT-style polynomial: 359e + 80ec + 38et + 425 *)
let vignat =
  Perf_expr.sum
    [
      Perf_expr.term 359 [ e ];
      Perf_expr.term 80 [ e; c ];
      Perf_expr.term 38 [ e; t_ ];
      Perf_expr.const 425;
    ]

let test_eval () =
  let binding = [ (e, 2); (c, 3); (t_, 4) ] in
  check_int "vignat eval"
    ((359 * 2) + (80 * 2 * 3) + (38 * 2 * 4) + 425)
    (Perf_expr.eval_exn binding vignat);
  check_int "const" 425 (Perf_expr.const_part vignat);
  (match Perf_expr.eval [ (e, 1) ] vignat with
  | Error pcv -> check_string "missing pcv" "c" (Pcv.name pcv)
  | Ok _ -> Alcotest.fail "expected missing-PCV error")

let test_algebra () =
  let a = Perf_expr.term 3 [ e ] and b = Perf_expr.term 4 [ e ] in
  check_bool "add merges" true
    (Perf_expr.equal (Perf_expr.add a b) (Perf_expr.term 7 [ e ]));
  check_bool "scale" true
    (Perf_expr.equal (Perf_expr.scale 2 a) (Perf_expr.term 6 [ e ]));
  check_bool "mul" true
    (Perf_expr.equal
       (Perf_expr.mul (Perf_expr.pcv e) (Perf_expr.pcv c))
       (Perf_expr.term 1 [ e; c ]));
  check_bool "mul by const" true
    (Perf_expr.equal
       (Perf_expr.mul (Perf_expr.const 5) (Perf_expr.pcv e))
       (Perf_expr.term 5 [ e ]));
  check_bool "zero annihilates" true
    (Perf_expr.equal (Perf_expr.mul Perf_expr.zero vignat) Perf_expr.zero);
  check_bool "sub to zero" true
    (Perf_expr.equal (Perf_expr.add a (Perf_expr.scale (-1) a)) Perf_expr.zero);
  check_int "degree" 2 (Perf_expr.degree vignat);
  check_int "coefficient ec" 80 (Perf_expr.coefficient vignat [ e; c ]);
  check_int "coefficient ce (sorted)" 80 (Perf_expr.coefficient vignat [ c; e ]);
  check_int "square" 9
    (Perf_expr.eval_exn [ (e, 3) ]
       (Perf_expr.mul (Perf_expr.pcv e) (Perf_expr.pcv e)))

let test_max_upper () =
  let a = Perf_expr.add_const 10 (Perf_expr.term 3 [ e ]) in
  let b = Perf_expr.add_const 2 (Perf_expr.term 5 [ e ]) in
  let m = Perf_expr.max_upper a b in
  check_int "coef" 5 (Perf_expr.coefficient m [ e ]);
  check_int "const" 10 (Perf_expr.const_part m);
  Alcotest.check_raises "negative coefficient rejected"
    (Invalid_argument "Perf_expr.max_upper: negative coefficient")
    (fun () ->
      ignore (Perf_expr.max_upper (Perf_expr.const (-1)) Perf_expr.zero))

let test_dominates () =
  check_bool "vignat dominates its parts" true
    (Perf_expr.dominates vignat (Perf_expr.term 359 [ e ]));
  check_bool "not dominated" false
    (Perf_expr.dominates (Perf_expr.term 359 [ e ]) vignat)

let test_pp () =
  check_string "paper style"
    "80\u{00B7}c\u{00B7}e + 38\u{00B7}e\u{00B7}t + 359\u{00B7}e + 425"
    (Perf_expr.to_string vignat);
  check_string "zero" "0" (Perf_expr.to_string Perf_expr.zero);
  check_string "power" "e^2"
    (Perf_expr.to_string (Perf_expr.term 1 [ e; e ]))

(* qcheck: max_upper is a sound upper bound at non-negative points *)
let gen_poly =
  QCheck2.Gen.(
    let gen_term =
      triple (int_range 0 50)
        (int_range 0 2 >|= fun n -> List.filteri (fun i _ -> i < n) [ e; c ])
        unit
    in
    list_size (int_range 0 5) gen_term
    >|= List.map (fun (k, vs, ()) -> Perf_expr.term k vs)
    >|= Perf_expr.sum)

let gen_binding =
  QCheck2.Gen.(
    pair (int_range 0 20) (int_range 0 20) >|= fun (ve, vc) ->
    [ (e, ve); (c, vc) ])

let prop_max_upper_sound =
  QCheck2.Test.make ~count:300 ~name:"max_upper bounds both arguments"
    QCheck2.Gen.(triple gen_poly gen_poly gen_binding)
    (fun (a, b, binding) ->
      let m = Perf_expr.max_upper a b in
      let ev p = Perf_expr.eval_exn binding p in
      ev m >= ev a && ev m >= ev b)

let prop_eval_additive =
  QCheck2.Test.make ~count:300 ~name:"eval is additive"
    QCheck2.Gen.(triple gen_poly gen_poly gen_binding)
    (fun (a, b, binding) ->
      Perf_expr.eval_exn binding (Perf_expr.add a b)
      = Perf_expr.eval_exn binding a + Perf_expr.eval_exn binding b)

let prop_eval_multiplicative =
  QCheck2.Test.make ~count:300 ~name:"eval is multiplicative"
    QCheck2.Gen.(triple gen_poly gen_poly gen_binding)
    (fun (a, b, binding) ->
      Perf_expr.eval_exn binding (Perf_expr.mul a b)
      = Perf_expr.eval_exn binding a * Perf_expr.eval_exn binding b)

let test_cost_vec () =
  let v =
    Cost_vec.make ~ic:(Perf_expr.const 10) ~ma:(Perf_expr.const 3)
      ~cycles:(Perf_expr.const 100)
  in
  check_int "get ic" 10
    (Perf_expr.const_part (Cost_vec.get v Metric.Instructions));
  let w = Cost_vec.add v v in
  check_int "add" 20
    (Perf_expr.const_part (Cost_vec.get w Metric.Instructions));
  check_int "scale" 30
    (Perf_expr.const_part
       (Cost_vec.get (Cost_vec.scale 3 v) Metric.Instructions));
  check_int "eval" 100 (Cost_vec.eval_exn [] v Metric.Cycles)

let test_ds_contract () =
  let mk tag k =
    Ds_contract.branch ~tag (Cost_vec.of_consts ~ic:k ~ma:1 ~cycles:k)
  in
  let dc = Ds_contract.make ~ds_kind:"ft" ~meth:"get" [ mk "hit" 5; mk "miss" 9 ] in
  check_int "branch lookup" 5
    (Perf_expr.const_part
       (Cost_vec.get (Ds_contract.find_branch_exn dc ~tag:"hit").Ds_contract.cost
          Metric.Instructions));
  check_int "worst case" 9
    (Perf_expr.const_part
       (Cost_vec.get (Ds_contract.worst_case dc) Metric.Instructions));
  (match Ds_contract.make ~ds_kind:"x" ~meth:"m" [ mk "a" 1; mk "a" 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate tags accepted");
  (match Ds_contract.make ~ds_kind:"x" ~meth:"m" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty branches accepted");
  let lib = Ds_contract.library [ dc ] in
  check_bool "find" true (Ds_contract.find lib ~ds_kind:"ft" ~meth:"get" <> None);
  check_bool "find other" true
    (Ds_contract.find lib ~ds_kind:"ft" ~meth:"put" = None)

let test_contract () =
  let entry name k =
    Contract.entry ~class_name:name (Cost_vec.of_consts ~ic:k ~ma:1 ~cycles:k)
  in
  let contract = Contract.make ~nf:"x" [ entry "A" 10; entry "B" 20 ] in
  check_int "predict" 10
    (Result.get_ok (Contract.predict contract ~class_name:"A" [] Metric.Instructions));
  check_int "worst" 20
    (Perf_expr.const_part
       (Cost_vec.get (Contract.worst_case contract) Metric.Instructions));
  (match Contract.make ~nf:"x" [ entry "A" 1; entry "A" 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate classes accepted")

let suite =
  [
    Alcotest.test_case "pcv validation" `Quick test_pcv_validation;
    Alcotest.test_case "bindings" `Quick test_binding;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "algebra" `Quick test_algebra;
    Alcotest.test_case "max_upper" `Quick test_max_upper;
    Alcotest.test_case "dominates" `Quick test_dominates;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "cost vectors" `Quick test_cost_vec;
    Alcotest.test_case "ds contracts" `Quick test_ds_contract;
    Alcotest.test_case "nf contracts" `Quick test_contract;
    QCheck_alcotest.to_alcotest prop_max_upper_sound;
    QCheck_alcotest.to_alcotest prop_eval_additive;
    QCheck_alcotest.to_alcotest prop_eval_multiplicative;
  ]
