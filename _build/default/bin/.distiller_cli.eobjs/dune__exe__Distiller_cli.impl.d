bin/distiller_cli.ml: Arg Cmd Cmdliner Distiller Dslib Fmt List Nf_registry Perf Term
