bin/distiller_cli.mli:
