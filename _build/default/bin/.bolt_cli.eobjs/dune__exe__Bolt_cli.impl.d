bin/bolt_cli.ml: Arg Bolt Cmd Cmdliner Dslib Experiments Fmt Ir List Net Nf_registry Perf Printf String Symbex Term Workload
