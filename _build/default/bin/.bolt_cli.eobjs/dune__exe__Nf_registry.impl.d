bin/nf_registry.ml: Dslib Exec Ir List Net Nf Perf Printf String Symbex
