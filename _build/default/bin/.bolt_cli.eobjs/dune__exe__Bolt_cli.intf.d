bin/bolt_cli.mli:
