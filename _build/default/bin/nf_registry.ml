(* Shared CLI glue: look NFs up by name and bundle their analysis
   ingredients. *)

type entry = {
  name : string;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
}

let all () =
  [
    {
      name = "bridge";
      program = Nf.Bridge.program;
      contracts = Nf.Bridge.contracts ();
      classes = Nf.Bridge.classes ();
      setup = (fun alloc -> fst (Nf.Bridge.setup alloc));
    };
    {
      name = "nat";
      program = Nf.Nat.program;
      contracts = Nf.Nat.contracts ();
      classes = Nf.Nat.classes ();
      setup = (fun alloc -> fst (Nf.Nat.setup alloc));
    };
    {
      name = "maglev";
      program = Nf.Maglev.program;
      contracts = Nf.Maglev.contracts ();
      classes = Nf.Maglev.classes ();
      setup = (fun alloc -> fst (Nf.Maglev.setup alloc));
    };
    {
      name = "lpm_router";
      program = Nf.Router_lpm.program;
      contracts = Nf.Router_lpm.contracts ();
      classes = Nf.Router_lpm.classes ();
      setup =
        (fun alloc ->
          fst
            (Nf.Router_lpm.setup alloc
               ~routes:[ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]));
    };
    {
      name = "trie_router";
      program = Nf.Router_trie.program;
      contracts = Nf.Router_trie.contracts ();
      classes = Nf.Router_trie.classes ();
      setup =
        (fun alloc ->
          fst
            (Nf.Router_trie.setup alloc
               ~routes:[ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]));
    };
    {
      name = "conntrack";
      program = Nf.Conntrack.program;
      contracts = Nf.Conntrack.contracts ();
      classes = Nf.Conntrack.classes ();
      setup = (fun alloc -> fst (Nf.Conntrack.setup alloc));
    };
    {
      name = "limiter";
      program = Nf.Limiter.program;
      contracts = Nf.Limiter.contracts ();
      classes = Nf.Limiter.classes ();
      setup = (fun alloc -> fst (Nf.Limiter.setup alloc));
    };
    {
      name = "policer";
      program = Nf.Policer.program;
      contracts = Nf.Policer.contracts ();
      classes = Nf.Policer.classes ();
      setup = (fun alloc -> fst (Nf.Policer.setup alloc));
    };
    {
      name = "responder";
      program = Nf.Responder.program;
      contracts = Perf.Ds_contract.library [];
      classes = Nf.Responder.classes ();
      setup = (fun _ -> []);
    };
    {
      name = "firewall";
      program = Nf.Firewall.program;
      contracts = Perf.Ds_contract.library [];
      classes = Nf.Firewall.classes ();
      setup = (fun _ -> []);
    };
    {
      name = "static_router";
      program = Nf.Static_router.program;
      contracts = Perf.Ds_contract.library [];
      classes = Nf.Static_router.classes ();
      setup = (fun _ -> []);
    };
  ]

let names () = List.map (fun e -> e.name) (all ())

let find name =
  match List.find_opt (fun e -> e.name = name) (all ()) with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown NF %S (try: %s)" name
           (String.concat ", " (names ())))
