(** Path constraints: boolean formulas over affine atoms.

    Negation is eliminated at construction time — integer arithmetic makes
    the complement of every atom expressible ([¬(a ≤ 0)] is [a ≥ 1], and
    [¬(a = 0)] is a disjunction) — so the solver only deals with positive
    boolean structure. *)

type atom =
  | Le of Linexpr.t  (** [e ≤ 0] *)
  | Eqz of Linexpr.t  (** [e = 0] *)

type t =
  | True
  | False
  | Atom of atom
  | And of t list
  | Or of t list

(** {1 Smart constructors} *)

val le : Linexpr.t -> Linexpr.t -> t
(** [le a b] constrains [a ≤ b]. *)

val lt : Linexpr.t -> Linexpr.t -> t
val ge : Linexpr.t -> Linexpr.t -> t
val gt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t
val ne : Linexpr.t -> Linexpr.t -> t
val conj : t list -> t
val disj : t list -> t

val not_ : t -> t
(** Exact complement, with negation pushed to the atoms. *)

val is_true : t -> bool
val syms : t -> Sym.t list
val pp : Format.formatter -> t -> unit
