(** Satisfiability and model extraction.

    The decision procedure is interval (bounds) propagation to a fixpoint
    followed by branch-and-prune search, over the DNF expansion of the
    boolean structure.  On the affine constraints produced by the symbolic
    engine — comparisons of bounded header fields and model outputs against
    constants and against each other — this is complete; resource caps make
    it return [Unknown] rather than diverge on anything harder. *)

type result = Sat of Model.t | Unsat | Unknown

val check : ?max_conjuncts:int -> ?max_nodes:int -> Constr.t list -> result
(** [check constraints] decides the conjunction of [constraints].
    [max_conjuncts] caps the DNF expansion (default 4096); [max_nodes] caps
    the search tree per conjunct (default 20_000). *)

val is_sat : ?max_conjuncts:int -> ?max_nodes:int -> Constr.t list -> bool
(** [is_sat cs] is true iff {!check} returns [Sat].  [Unknown] counts as
    satisfiable for conservativeness: a path we cannot prove infeasible
    must be kept, or the contract could under-approximate. *)

val model_exn : Constr.t list -> Model.t
(** [model_exn cs] returns a model; raises [Failure] on [Unsat]/[Unknown]. *)

val pp_result : Format.formatter -> result -> unit
