(** Concrete assignments produced by the solver.

    A model assigns an integer to every symbol the solver saw; symbols it
    never saw are unconstrained and default to their lower bound, which is
    how BOLT concretises the "don't care" bytes of a witness packet. *)

type t

val empty : t
val add : Sym.t -> int -> t -> t
val value : t -> Sym.t -> int
(** [value m s] is the assignment of [s], or [s]'s lower bound when [m]
    does not constrain [s]. *)

val mem : t -> Sym.t -> bool
val bindings : t -> (Sym.t * int) list
val eval : t -> Linexpr.t -> int
val pp : Format.formatter -> t -> unit
