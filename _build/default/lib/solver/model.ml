module IM = Map.Make (Int)

type t = (Sym.t * int) IM.t

let empty = IM.empty
let add s v t = IM.add (Sym.id s) (s, v) t

let value t s =
  match IM.find_opt (Sym.id s) t with
  | Some (_, v) -> v
  | None -> fst (Sym.bounds s)

let mem t s = IM.mem (Sym.id s) t
let bindings t = List.map snd (IM.bindings t)
let eval t lin = Linexpr.eval (value t) lin

let pp ppf t =
  let pp_one ppf (s, v) = Fmt.pf ppf "%a=%d" Sym.pp s v in
  Fmt.(list ~sep:(any ", ") pp_one) ppf (bindings t)
