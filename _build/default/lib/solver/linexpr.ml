type t = { const : int; terms : (Sym.t * int) list }
(* terms sorted by symbol id, coefficients non-zero *)

let const c = { const = c; terms = [] }
let zero = const 0
let sym s = { const = 0; terms = [ (s, 1) ] }

let rec merge_terms a b =
  match (a, b) with
  | [], t | t, [] -> t
  | (sa, ca) :: ra, (sb, cb) :: rb ->
      let cmp = Sym.compare sa sb in
      if cmp = 0 then
        let c = ca + cb in
        if c = 0 then merge_terms ra rb else (sa, c) :: merge_terms ra rb
      else if cmp < 0 then (sa, ca) :: merge_terms ra b
      else (sb, cb) :: merge_terms a rb

let add a b = { const = a.const + b.const; terms = merge_terms a.terms b.terms }

let scale k t =
  if k = 0 then zero
  else { const = k * t.const; terms = List.map (fun (s, c) -> (s, k * c)) t.terms }

let neg t = scale (-1) t
let sub a b = add a (neg b)
let add_const k t = { t with const = t.const + k }
let is_const t = if t.terms = [] then Some t.const else None
let const_part t = t.const
let terms t = t.terms
let syms t = List.map fst t.terms

let equal a b =
  a.const = b.const
  && List.equal (fun (sa, ca) (sb, cb) -> Sym.equal sa sb && ca = cb) a.terms
       b.terms

let compare a b =
  let c = Int.compare a.const b.const in
  if c <> 0 then c
  else
    List.compare
      (fun (sa, ca) (sb, cb) ->
        let c = Sym.compare sa sb in
        if c <> 0 then c else Int.compare ca cb)
      a.terms b.terms

let eval assign t =
  List.fold_left (fun acc (s, c) -> acc + (c * assign s)) t.const t.terms

let range bounds t =
  List.fold_left
    (fun (lo, hi) (s, c) ->
      let slo, shi = bounds s in
      if c >= 0 then (lo + (c * slo), hi + (c * shi))
      else (lo + (c * shi), hi + (c * slo)))
    (t.const, t.const) t.terms

let pp ppf t =
  let pp_term ppf (s, c) =
    if c = 1 then Sym.pp ppf s else Fmt.pf ppf "%d*%a" c Sym.pp s
  in
  match t.terms with
  | [] -> Fmt.int ppf t.const
  | terms ->
      Fmt.(list ~sep:(any " + ") pp_term) ppf terms;
      if t.const <> 0 then Fmt.pf ppf " + %d" t.const
