(** Bounded integer symbols.

    A symbol stands for an unknown machine integer — a packet byte, a value
    returned by a symbolic data-structure model, a loop trip count.  Every
    symbol carries inclusive bounds, which is what makes the interval-based
    solver complete on our constraint language. *)

type t = private { id : int; name : string; lo : int; hi : int }

type gen
(** A symbol generator.  Each symbolic-execution run owns one, so symbol
    identities are deterministic per run. *)

val gen : unit -> gen

val fresh : gen -> ?lo:int -> ?hi:int -> string -> t
(** [fresh g name] makes a new symbol.  Default bounds are [0, 2^32-1].
    Raises [Invalid_argument] if [lo > hi]. *)

val byte : gen -> string -> t
(** A symbol bounded to [0, 255]. *)

val u16 : gen -> string -> t
val u32 : gen -> string -> t

val id : t -> int
val name : t -> string
val bounds : t -> int * int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
