type t = { id : int; name : string; lo : int; hi : int }
type gen = { mutable next : int }

let gen () = { next = 0 }
let max_u32 = (1 lsl 32) - 1

let fresh g ?(lo = 0) ?(hi = max_u32) name =
  if lo > hi then invalid_arg "Sym.fresh: lo > hi";
  let id = g.next in
  g.next <- id + 1;
  { id; name; lo; hi }

let byte g name = fresh g ~lo:0 ~hi:255 name
let u16 g name = fresh g ~lo:0 ~hi:65535 name
let u32 g name = fresh g ~lo:0 ~hi:max_u32 name
let id t = t.id
let name t = t.name
let bounds t = (t.lo, t.hi)
let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let pp ppf t = Fmt.pf ppf "%s#%d" t.name t.id
