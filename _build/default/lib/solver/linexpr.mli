(** Affine expressions over symbols: [c + Σ aᵢ·xᵢ].

    This is the term language that path constraints are expressed in.
    Non-affine operations performed by the symbolic engine (bit masks,
    products of unknowns, hashes) are over-approximated there by fresh
    bounded symbols, so the solver only ever sees affine terms. *)

type t
(** Normalised: symbols sorted by id, no zero coefficients. *)

val const : int -> t
val sym : Sym.t -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t
val add_const : int -> t -> t

val is_const : t -> int option
(** [is_const t] is [Some c] when [t] mentions no symbol. *)

val const_part : t -> int
val terms : t -> (Sym.t * int) list
val syms : t -> Sym.t list
val equal : t -> t -> bool
val compare : t -> t -> int

val eval : (Sym.t -> int) -> t -> int
(** Evaluate under a full assignment. *)

val range : (Sym.t -> int * int) -> t -> int * int
(** [range bounds t] is the interval of values [t] can take when each
    symbol ranges over [bounds]. *)

val pp : Format.formatter -> t -> unit
