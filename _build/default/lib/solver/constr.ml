type atom = Le of Linexpr.t | Eqz of Linexpr.t
type t = True | False | Atom of atom | And of t list | Or of t list

let atom_of_lin a =
  (* a ≤ 0, simplified when a is constant *)
  match Linexpr.is_const a with
  | Some c -> if c <= 0 then True else False
  | None -> Atom (Le a)

let le a b = atom_of_lin (Linexpr.sub a b)
let lt a b = atom_of_lin (Linexpr.add_const 1 (Linexpr.sub a b))
let ge a b = le b a
let gt a b = lt b a

let eq a b =
  let d = Linexpr.sub a b in
  match Linexpr.is_const d with
  | Some c -> if c = 0 then True else False
  | None -> Atom (Eqz d)

let conj parts =
  let parts =
    List.concat_map (function And l -> l | True -> [] | p -> [ p ]) parts
  in
  if List.exists (( = ) False) parts then False
  else match parts with [] -> True | [ p ] -> p | _ -> And parts

let disj parts =
  let parts =
    List.concat_map (function Or l -> l | False -> [] | p -> [ p ]) parts
  in
  if List.exists (( = ) True) parts then True
  else match parts with [] -> False | [ p ] -> p | _ -> Or parts

let ne a b = disj [ lt a b; gt a b ]

let not_atom = function
  | Le a -> atom_of_lin (Linexpr.add_const 1 (Linexpr.neg a))
      (* ¬(a ≤ 0) ⇔ -a + 1 ≤ 0 *)
  | Eqz a -> disj [ lt a Linexpr.zero; gt a Linexpr.zero ]

let rec not_ = function
  | True -> False
  | False -> True
  | Atom a -> not_atom a
  | And parts -> disj (List.map not_ parts)
  | Or parts -> conj (List.map not_ parts)

let is_true = function True -> true | _ -> false

let rec syms = function
  | True | False -> []
  | Atom (Le a) | Atom (Eqz a) -> Linexpr.syms a
  | And parts | Or parts -> List.concat_map syms parts

let pp_atom ppf = function
  | Le a -> Fmt.pf ppf "%a <= 0" Linexpr.pp a
  | Eqz a -> Fmt.pf ppf "%a = 0" Linexpr.pp a

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> pp_atom ppf a
  | And parts ->
      Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " && ") pp) parts
  | Or parts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " || ") pp) parts
