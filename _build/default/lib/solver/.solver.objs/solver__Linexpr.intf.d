lib/solver/linexpr.mli: Format Sym
