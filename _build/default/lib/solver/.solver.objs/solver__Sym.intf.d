lib/solver/sym.mli: Format
