lib/solver/solve.ml: Constr Fmt Int Linexpr List Map Model Seq Sym
