lib/solver/constr.mli: Format Linexpr Sym
