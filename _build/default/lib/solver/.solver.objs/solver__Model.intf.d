lib/solver/model.mli: Format Linexpr Sym
