lib/solver/sym.ml: Fmt Int
