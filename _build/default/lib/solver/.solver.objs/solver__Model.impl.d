lib/solver/model.ml: Fmt Int Linexpr List Map Sym
