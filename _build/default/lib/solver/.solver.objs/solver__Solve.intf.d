lib/solver/solve.mli: Constr Format Model
