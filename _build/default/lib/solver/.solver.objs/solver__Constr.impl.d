lib/solver/constr.ml: Fmt Linexpr List
