lib/solver/linexpr.ml: Fmt Int List Sym
