open Ir.Expr
open Ir.Stmt

(* Header validation beyond the option check: version, total length, TTL,
   source class — straight-line work that gives the forwarded path its
   larger constant (paper Table 5a: forwarding costs more than dropping). *)
let validation =
  [
    Comment "header validation";
    assign "version" (Binop (Shr, Hdr.version_ihl, int 4));
    if_ (var "version" != int 4) [ drop ] [];
    assign "total_len" (load16 (int 16));
    if_ (var "total_len" > Pkt_len - int 14) [ drop ] [];
    assign "ttl" Hdr.ttl;
    if_ (var "ttl" == int 0) [ drop ] [];
    assign "src_ip" Hdr.src_ip;
    if_ (var "src_ip" == int 0) [ drop ] [];
    assign "dst_ip" Hdr.dst_ip;
    if_ (var "dst_ip" == int 0xffffffff) [ drop ] [];
    assign "frag" (load16 (int 20));
    if_ (Binop (And, var "frag", int 0x1fff) != int 0) [ drop ] [];
  ]

let program =
  Ir.Program.make ~name:"firewall" ~state:[]
    ([
       if_ (Pkt_len < int 34) [ drop ] [];
       assign "ethertype" Hdr.ethertype;
       if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
       assign "ihl" Hdr.ihl;
       Comment "policy: drop anything with IP options";
       if_ (var "ihl" != int 5) [ drop ] [];
     ]
    @ validation
    @ [ forward_port 0 ])

open Symbex

let classes () =
  [
    Iclass.make ~name:"No IP options"
      ~description:"IPv4, ihl = 5: validated and forwarded"
      ~predicate:(Iclass.field_eq Ir.Expr.W8 14 0x45)
      ();
    Iclass.make ~name:"IP Options"
      ~description:"IPv4 with options: dropped by policy"
      ~predicate:
        (Iclass.conj_preds
           [
             Iclass.field_eq Ir.Expr.W16 12 Hdr.ipv4_ethertype;
             (fun result ->
               let open Solver in
               [
                 Constr.ge
                   (Iclass.field result Ir.Expr.W8 14)
                   (Linexpr.const 0x46);
                 Constr.le
                   (Iclass.field result Ir.Expr.W8 14)
                   (Linexpr.const 0x4f);
               ]);
           ])
      ();
  ]
