let instance = "sketch"
let threshold = 128

open Ir.Expr
open Ir.Stmt

(* The sketch is keyed by source identity: (src_ip, proto) padded to the
   5-word key the instance expects. *)
let src_key =
  [ var "src_ip"; int 0; int 0; int 0; var "proto" ]

let program =
  Ir.Program.make ~name:"hh_limiter"
    ~state:[ { Ir.Program.instance; kind = Dslib.Count_min.kind } ]
    (Hdr.parse_l4
    @ [
        call ~ret:"rate" instance "update" src_key;
        if_
          (var "rate" > int threshold)
          [ Comment "heavy hitter: shed"; drop ]
          [];
        forward_port 1;
      ])

type config = { rows : int; width : int }

let default_config = { rows = 4; width = 1024 }

let setup ?(config = default_config) alloc =
  let sketch =
    Dslib.Count_min.create
      ~base:(Dslib.Layout.region alloc)
      ~rows:config.rows ~width:config.width
  in
  ([ (instance, Dslib.Count_min.to_ds sketch) ], sketch)

let contracts ?(config = default_config) () =
  Perf.Ds_contract.library (Dslib.Count_min.Recipe.contract ~rows:config.rows)

open Symbex

(* Both verdicts cost the same d-probe fast path (the sketch's point), so
   there is one metered class — the contract shows the constant cost. *)
let classes () =
  [
    Iclass.make ~name:"Metered IPv4"
      ~description:"d sketch probes, forward or shed"
      ~requires:[ Iclass.req instance "update" "ok" ]
      ();
    Iclass.make ~name:"Invalid" ~description:"non-IPv4"
      ~forbids:[ (instance, "update") ]
      ();
  ]
