(** Shared header-field IR snippets.

    Byte offsets follow the on-wire layout (Ethernet at 0, option-free
    IPv4 at 14, L4 at 34); see [Net.Ipv4] for the canonical constants. *)

val eth_dst : Ir.Expr.t
val eth_src : Ir.Expr.t
val ethertype : Ir.Expr.t
val ipv4_ethertype : int
val version_ihl : Ir.Expr.t
val ihl : Ir.Expr.t
(** Low nibble of the version/IHL byte. *)

val ttl : Ir.Expr.t
val proto : Ir.Expr.t
val src_ip : Ir.Expr.t
val dst_ip : Ir.Expr.t
val src_port : Ir.Expr.t
(** Assumes an option-free IP header. *)

val dst_port : Ir.Expr.t
val checksum_off : int
val ttl_off : int
val src_ip_off : int
val dst_ip_off : int
val src_port_off : int
val dst_port_off : int
val options_off : int
val min_l4_len : int
(** Minimum frame length that makes the L4 ports readable. *)

val parse_l4 : Ir.Stmt.block
(** Validate Ethernet/IPv4/TCP-or-UDP (option-free) and bind
    [ethertype, ihl, proto, src_ip, dst_ip, src_port, dst_port]; drops
    anything else.  Statements end with the bindings in scope. *)

val decrement_ttl : Ir.Stmt.block
(** TTL decrement plus incremental checksum touch; drops when TTL ≤ 1. *)
