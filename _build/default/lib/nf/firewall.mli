(** Stateless firewall for the chain experiment (paper §5.2, Table 5a).

    Drops any packet carrying IP options (and anything that is not
    well-formed IPv4); everything else is validated and forwarded.  The
    expensive path of the router behind it is thereby unreachable — the
    composition insight of Figure 3. *)

val program : Ir.Program.t
val classes : unit -> Symbex.Iclass.t list
