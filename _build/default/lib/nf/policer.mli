(** Traffic policer: a single-rate token-bucket rate limiter in front of
    a link.  Not one of the paper's four NFs — it exercises a DS kind
    whose contract is branch-constant (no PCVs), and serves as the middle
    element of the three-NF chain experiment. *)

val instance : string
val program : Ir.Program.t

type config = { rate : int; burst : int }

val default_config : config

val setup :
  ?config:config -> Dslib.Layout.allocator -> Exec.Ds.env * Dslib.Token_bucket.t

val contracts : unit -> Perf.Ds_contract.library
val classes : unit -> Symbex.Iclass.t list
