let device_ip = Net.Ipv4.addr_of_parts 198 51 100 254

open Ir.Expr
open Ir.Stmt

let icmp_type_off = Net.Icmp.off_type
let icmp_csum_off = Net.Icmp.off_checksum

let bounce =
  [
    Comment "swap MACs";
    assign "mac_dst" (load48 (int 0));
    assign "mac_src" (load48 (int 6));
    store48 (int 0) (var "mac_src");
    store48 (int 6) (var "mac_dst");
    Comment "swap IPs";
    store32 (int Hdr.dst_ip_off) (var "src_ip");
    store32 (int Hdr.src_ip_off) (var "dst_ip");
    Comment "request becomes reply; incremental ICMP checksum fix";
    store8 (int icmp_type_off) (int Net.Icmp.type_echo_reply);
    assign "icsum" (load16 (int icmp_csum_off));
    store16 (int icmp_csum_off)
      (Binop (And, var "icsum" + int 0x0800, int 0xffff));
    Comment "IP checksum: addresses swapped, sum unchanged";
    forward (var "in_port");
  ]

let program =
  Ir.Program.make ~name:"icmp_responder" ~state:[]
    [
      if_ (Pkt_len < int 42) [ drop ] [];
      assign "ethertype" Hdr.ethertype;
      if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
      assign "ihl" Hdr.ihl;
      if_ (var "ihl" != int 5) [ drop ] [];
      assign "proto" Hdr.proto;
      if_ (var "proto" != int Net.Ipv4.proto_icmp) [ drop ] [];
      assign "src_ip" Hdr.src_ip;
      assign "dst_ip" Hdr.dst_ip;
      if_ (var "dst_ip" != int device_ip) [ Comment "not for us"; drop ] [];
      assign "icmp_type" (load8 (int icmp_type_off));
      if_
        (var "icmp_type" != int Net.Icmp.type_echo_request)
        [ Comment "only echo requests are answered"; drop ]
        bounce;
      drop;
    ]

open Symbex

let classes () =
  [
    Iclass.make ~name:"Echo request"
      ~description:"ping for the device: answered in place"
      ~predicate:
        (Iclass.conj_preds
           [
             Iclass.field_eq Ir.Expr.W16 12 Hdr.ipv4_ethertype;
             Iclass.field_eq Ir.Expr.W8 23 Net.Ipv4.proto_icmp;
             Iclass.field_eq Ir.Expr.W32 Hdr.dst_ip_off device_ip;
             Iclass.field_eq Ir.Expr.W8 icmp_type_off
               Net.Icmp.type_echo_request;
           ])
      ();
    Iclass.make ~name:"Other traffic" ~description:"dropped"
      ~predicate:(Iclass.field_ne Ir.Expr.W8 23 Net.Ipv4.proto_icmp)
      ();
  ]
