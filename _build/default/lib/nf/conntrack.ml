let instance = "flows"

open Ir.Expr
open Ir.Stmt

let fwd_key =
  [ var "src_ip"; var "dst_ip"; var "src_port"; var "dst_port"; var "proto" ]

(* Inbound packets are matched against the flow as the inside host opened
   it, i.e. with the tuple reversed. *)
let rev_key =
  [ var "dst_ip"; var "src_ip"; var "dst_port"; var "src_port"; var "proto" ]

let outbound =
  [
    Comment "outbound: open or refresh";
    call ~ret:"known" instance "get" (fwd_key @ [ var "now" ]);
    if_ (var "known" >= int 0) [ forward_port 1 ] [];
    call ~ret:"slot" instance "put" (fwd_key @ [ int 1; var "now" ]);
    if_
      (var "slot" < int 0)
      [ Comment "table full: fail closed"; drop ]
      [ forward_port 1 ];
  ]

let inbound =
  [
    Comment "inbound: only established flows pass";
    call ~ret:"established" instance "get" (rev_key @ [ var "now" ]);
    if_ (var "established" < int 0) [ drop ] [];
    forward_port 0;
  ]

let program =
  Ir.Program.make ~name:"conntrack_fw"
    ~state:[ { Ir.Program.instance; kind = Dslib.Flow_table.kind } ]
    (Hdr.parse_l4
    @ [
        call ~ret:"expired" instance "expire" [ var "now" ];
        if_ (var "in_port" == int 0) outbound inbound;
      ])

type config = { capacity : int; buckets : int; timeout : int }

let default_config = { capacity = 4096; buckets = 4096; timeout = 30_000_000 }

let setup ?(config = default_config) alloc =
  let table =
    Dslib.Flow_table.create
      ~base:(Dslib.Layout.region alloc)
      ~key_len:5 ~capacity:config.capacity ~buckets:config.buckets
      ~timeout:config.timeout ()
  in
  ([ (instance, Dslib.Flow_table.to_ds table) ], table)

let contracts ?(config = default_config) () =
  ignore config;
  Perf.Ds_contract.library (Dslib.Flow_table.Recipe.contract ~key_len:5 ())

open Symbex

let classes ?(config = default_config) () =
  let quiet = Perf.Pcv.[ (expired, 0); (collisions, 0); (traversals, 1) ] in
  let no_expiry = Iclass.req instance "expire" "expire" in
  [
    Iclass.make ~name:"CT1"
      ~description:"unconstrained traffic (absolute worst case)"
      ~bindings:
        Perf.Pcv.
          [
            (expired, config.capacity);
            (collisions, Stdlib.((config.capacity - 1) / 2));
            (traversals, Stdlib.(config.capacity / 2));
          ]
      ();
    Iclass.make ~name:"CT2" ~description:"outbound packets of new flows"
      ~predicate:(Iclass.in_port_is 0)
      ~requires:
        [
          no_expiry;
          Iclass.req instance "get" "miss";
          Iclass.req instance "put" "ok";
        ]
      ~bindings:quiet ();
    Iclass.make ~name:"CT3" ~description:"outbound packets, flow established"
      ~predicate:(Iclass.in_port_is 0)
      ~requires:[ no_expiry; Iclass.req instance "get" "hit" ]
      ~bindings:quiet ();
    Iclass.make ~name:"CT4" ~description:"inbound packets, flow established"
      ~predicate:(Iclass.in_port_is 1)
      ~requires:[ no_expiry; Iclass.req instance "get" "hit" ]
      ~bindings:quiet ();
    Iclass.make ~name:"CT5"
      ~description:"inbound packets with no matching flow (dropped)"
      ~predicate:(Iclass.in_port_is 1)
      ~requires:[ no_expiry; Iclass.req instance "get" "miss" ]
      ~bindings:quiet ();
  ]
