let flows = "flows"
let ring = "ring"
let pool = "pool"
let heartbeat_port = 9999

open Ir.Expr
open Ir.Stmt

let flow_args =
  [ var "src_ip"; var "dst_ip"; var "src_port"; var "dst_port"; var "proto" ]

(* A register-only flow hash feeding the ring (non-linear — the symbolic
   engine over-approximates it with a fresh symbol, which is fine: the
   ring accepts any hash). *)
let flow_hash =
  Binop
    ( Xor,
      Binop (Mul, var "src_ip", int 31),
      Binop (Xor, var "dst_ip", Binop (Mul, var "src_port", int 17)) )

let assign_backend =
  [
    assign "hash" flow_hash;
    call ~ret:"backend" ring "backend_for" [ var "hash" ];
    call ~ret:"inserted" flows "put"
      (flow_args @ [ var "backend"; var "now" ]);
    store32 (int Hdr.dst_ip_off) (int 0x0a000000 + var "backend");
    forward_port 1;
  ]

let program =
  Ir.Program.make ~name:"maglev_lb"
    ~state:
      [
        { Ir.Program.instance = flows; kind = Dslib.Flow_table.kind };
        { Ir.Program.instance = ring; kind = Dslib.Hash_ring.kind };
        { Ir.Program.instance = pool; kind = Dslib.Backend_pool.kind };
      ]
    (Hdr.parse_l4
    @ [
        call ~ret:"expired" flows "expire" [ var "now" ];
        if_
          ((var "in_port" == int 1)
          && (var "dst_port" == int heartbeat_port))
          [
            Comment "heartbeat from a backend";
            assign "backend_id" (Binop (And, var "src_ip", int 0xff));
            call ~ret:"hb" pool "heartbeat" [ var "backend_id"; var "now" ];
            drop;
          ]
          [];
        call ~ret:"assigned" flows "get" (flow_args @ [ var "now" ]);
        if_
          (var "assigned" >= int 0)
          [
            call ~ret:"alive" pool "is_alive" [ var "assigned"; var "now" ];
            if_
              (var "alive" == int 1)
              [
                Comment "existing flow, live backend";
                store32 (int Hdr.dst_ip_off) (int 0x0a000000 + var "assigned");
                forward_port 1;
              ]
              (Comment "existing flow, dead backend: reassign"
               :: assign_backend);
          ]
          (Comment "new flow" :: assign_backend);
      ])

type config = {
  capacity : int;
  buckets : int;
  timeout : int;
  backend_count : int;
  ring_size : int;
  backend_timeout : int;
}

let default_config =
  {
    capacity = 4096;
    buckets = 4096;
    timeout = 10_000_000;
    backend_count = 16;
    ring_size = 4099;
    backend_timeout = 5_000_000;
  }

type state = {
  flow_table : Dslib.Flow_table.t;
  hash_ring : Dslib.Hash_ring.t;
  backend_pool : Dslib.Backend_pool.t;
}

let setup ?(config = default_config) alloc =
  let flow_table =
    Dslib.Flow_table.create
      ~base:(Dslib.Layout.region alloc)
      ~key_len:5 ~capacity:config.capacity ~buckets:config.buckets
      ~timeout:config.timeout ()
  in
  let hash_ring =
    Dslib.Hash_ring.create
      ~base:(Dslib.Layout.region alloc)
      ~table_size:config.ring_size
      ~backends:(List.init config.backend_count (fun i -> i))
  in
  let backend_pool =
    Dslib.Backend_pool.create
      ~base:(Dslib.Layout.region alloc)
      ~count:config.backend_count ~timeout:config.backend_timeout
  in
  ( [
      (flows, Dslib.Flow_table.to_ds flow_table);
      (ring, Dslib.Hash_ring.to_ds hash_ring);
      (pool, Dslib.Backend_pool.to_ds backend_pool);
    ],
    { flow_table; hash_ring; backend_pool } )

let contracts ?(config = default_config) () =
  ignore config;
  Perf.Ds_contract.library
    (Dslib.Flow_table.Recipe.contract ~key_len:5 ()
    @ Dslib.Hash_ring.Recipe.contract
    @ Dslib.Backend_pool.Recipe.contract)

open Symbex

let classes ?(config = default_config) () =
  let quiet = Perf.Pcv.[ (expired, 0); (collisions, 0); (traversals, 1) ] in
  let no_expiry = Iclass.req flows "expire" "expire" in
  let from_clients = Iclass.in_port_is 0 in
  [
    Iclass.make ~name:"LB1"
      ~description:"unconstrained traffic (absolute worst case)"
      ~bindings:
        Perf.Pcv.
          [
            (expired, config.capacity);
            (collisions, Stdlib.((config.capacity - 1) / 2));
            (traversals, Stdlib.(config.capacity / 2));
          ]
      ();
    Iclass.make ~name:"LB2" ~description:"external packets of new flows"
      ~predicate:from_clients
      ~requires:
        [
          no_expiry;
          Iclass.req flows "get" "miss";
          Iclass.req flows "put" "ok";
        ]
      ~bindings:quiet ();
    Iclass.make ~name:"LB3"
      ~description:"existing flows, backend unresponsive"
      ~predicate:from_clients
      ~requires:
        [
          no_expiry;
          Iclass.req flows "get" "hit";
          Iclass.req pool "is_alive" "dead";
          Iclass.req flows "put" "ok";
        ]
      ~bindings:quiet ();
    Iclass.make ~name:"LB4" ~description:"existing flows, backend live"
      ~predicate:from_clients
      ~requires:
        [
          no_expiry;
          Iclass.req flows "get" "hit";
          Iclass.req pool "is_alive" "alive";
        ]
      ~bindings:quiet ();
    Iclass.make ~name:"LB5" ~description:"heartbeat packets from backends"
      ~predicate:
        (Iclass.conj_preds
           [
             Iclass.in_port_is 1;
             Iclass.field_eq Ir.Expr.W16 Hdr.dst_port_off heartbeat_port;
           ])
      ~requires:[ Iclass.req pool "heartbeat" "ok" ]
      ~bindings:quiet ();
  ]
