let instance = "lpm"

open Ir.Expr
open Ir.Stmt

let program =
  Ir.Program.make ~name:"lpm_router"
    ~state:[ { Ir.Program.instance; kind = Dslib.Lpm_dir24_8.kind } ]
    ([
       Comment "parse: Ethernet + IPv4";
       if_ (Pkt_len < int 34) [ drop ] [];
       assign "ethertype" Hdr.ethertype;
       if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
       assign "dst_ip" Hdr.dst_ip;
       call ~ret:"port" instance "lookup" [ var "dst_ip" ];
     ]
    @ Hdr.decrement_ttl
    @ [ forward (var "port") ])

let setup alloc ~routes =
  let lpm =
    Dslib.Lpm_dir24_8.create
      ~base:(Dslib.Layout.region alloc)
      ~default_port:0
  in
  List.iter
    (fun (prefix, len, port) ->
      Dslib.Lpm_dir24_8.add_route lpm ~prefix ~len ~port)
    routes;
  ([ (instance, Dslib.Lpm_dir24_8.to_ds lpm) ], lpm)

let contracts () = Perf.Ds_contract.library Dslib.Lpm_dir24_8.Recipe.contract

open Symbex

let classes () =
  [
    Iclass.make ~name:"LPM1"
      ~description:"unconstrained traffic (worst case: two lookups)" ();
    Iclass.make ~name:"LPM2"
      ~description:"matched prefixes of <= 24 bits (one lookup)"
      ~requires:[ Iclass.req instance "lookup" "short" ]
      ();
  ]
