open Ir.Expr

let eth_dst = load48 (int 0)
let eth_src = load48 (int 6)
let ethertype = load16 (int 12)
let ipv4_ethertype = Net.Ethernet.ethertype_ipv4
let version_ihl = load8 (int 14)
let ihl = Binop (And, version_ihl, int 0xf)
let ttl_off = 22
let ttl = load8 (int ttl_off)
let proto = load8 (int 23)
let checksum_off = 24
let src_ip_off = 26
let dst_ip_off = 30
let src_port_off = 34
let dst_port_off = 36
let options_off = 34
let src_ip = load32 (int src_ip_off)
let dst_ip = load32 (int dst_ip_off)
let src_port = load16 (int src_port_off)
let dst_port = load16 (int dst_port_off)
let min_l4_len = 38

open Ir.Stmt

let parse_l4 =
  [
    Comment "parse: Ethernet + option-free IPv4 + TCP/UDP ports";
    if_ (Pkt_len < int min_l4_len) [ drop ] [];
    assign "ethertype" ethertype;
    if_ (var "ethertype" != int ipv4_ethertype) [ drop ] [];
    assign "ihl" ihl;
    if_ (var "ihl" != int 5) [ drop ] [];
    assign "proto" proto;
    if_
      ((var "proto" != int Net.Ipv4.proto_tcp)
      && (var "proto" != int Net.Ipv4.proto_udp))
      [ drop ] [];
    assign "src_ip" src_ip;
    assign "dst_ip" dst_ip;
    assign "src_port" src_port;
    assign "dst_port" dst_port;
  ]

let decrement_ttl =
  [
    Comment "TTL decrement + incremental checksum update";
    assign "ttl" ttl;
    if_ (var "ttl" <= int 1) [ drop ] [];
    store8 (int ttl_off) (var "ttl" - int 1);
    assign "csum" (load16 (int checksum_off));
    store16 (int checksum_off)
      (Binop (And, var "csum" + int 0x100, int 0xffff));
  ]
