let instance = "mac"

open Ir.Expr
open Ir.Stmt

let broadcast = Net.Ethernet.broadcast_mac

let program =
  Ir.Program.make ~name:"bridge"
    ~state:[ { Ir.Program.instance; kind = Dslib.Mac_table.kind } ]
    [
      call ~ret:"expired" instance "expire" [ var "now" ];
      assign "src" Hdr.eth_src;
      assign "dst" Hdr.eth_dst;
      call instance "learn" [ var "src"; var "in_port"; var "now" ];
      if_ (var "dst" == int broadcast) [ flood ] [];
      call ~ret:"port" instance "lookup" [ var "dst" ];
      if_ (var "port" < int 0) [ flood ] [];
      if_ (var "port" == var "in_port") [ drop ] [];
      forward (var "port");
    ]

type config = {
  capacity : int;
  buckets : int;
  timeout : int;
  threshold : int;
  seed : int;
}

let default_config =
  { capacity = 4096; buckets = 4096; timeout = 300_000_000;
    threshold = 6; seed = 42 }

let setup ?(config = default_config) alloc =
  let table =
    Dslib.Mac_table.create ~seed:config.seed
      ~base:(Dslib.Layout.region alloc)
      ~capacity:config.capacity ~buckets:config.buckets
      ~timeout:config.timeout ~threshold:config.threshold ()
  in
  ([ (instance, Dslib.Mac_table.to_ds table) ], table)

let contracts ?(config = default_config) () =
  Perf.Ds_contract.library
    (Dslib.Mac_table.Recipe.contract ~buckets:config.buckets
       ~capacity:config.capacity)

open Symbex

let table4_classes () =
  [
    Iclass.make ~name:"Known Source MAC"
      ~requires:[ Iclass.req instance "learn" "known" ]
      ();
    Iclass.make ~name:"Unknown Source MAC; No Rehashing"
      ~requires:[ Iclass.req instance "learn" "learned" ]
      ();
    Iclass.make ~name:"Unknown Source MAC; Rehashing"
      ~requires:[ Iclass.req instance "learn" "rehash" ]
      ();
  ]

let classes ?(config = default_config) () =
  let no_state_stress =
    [
      Iclass.req instance "expire" "expire";
      Iclass.req instance "learn" "known";
    ]
  in
  let quiet = Perf.Pcv.[ (expired, 0); (collisions, 0); (traversals, 1) ] in
  [
    (* The mass-expiry packet drains the whole table before the learn
       runs, so the learn sees occupancy 0 — binding o to the capacity
       would claim an infeasible combination (full table AND mass
       expiry in one packet). *)
    Iclass.make ~name:"Br1"
      ~description:"unconstrained traffic (absolute worst case)"
      ~bindings:
        Perf.Pcv.
          [
            (expired, config.capacity);
            (collisions, Stdlib.((config.capacity - 1) / 2));
            (traversals, Stdlib.(config.capacity / 2));
            (occupancy, 0);
          ]
      ();
    Iclass.make ~name:"Br2" ~description:"broadcast frames, known source"
      ~predicate:(Iclass.field_eq Ir.Expr.W48 0 broadcast)
      ~requires:no_state_stress ~bindings:quiet ();
    Iclass.make ~name:"Br3"
      ~description:"unicast frames, known source and destination"
      ~predicate:(Iclass.field_ne Ir.Expr.W48 0 broadcast)
      ~requires:
        (Iclass.req instance "lookup" "hit" :: no_state_stress)
      ~bindings:quiet ();
  ]
