let instance = "nat"
let external_ip = Net.Ipv4.addr_of_parts 198 51 100 1

open Ir.Expr
open Ir.Stmt

let flow_args =
  [ var "src_ip"; var "dst_ip"; var "src_port"; var "dst_port"; var "proto" ]

(* Rewrite an outgoing packet: source becomes (external_ip, ext_port). *)
let rewrite_internal ext_port =
  [
    store32 (int Hdr.src_ip_off) (int external_ip);
    store16 (int Hdr.src_port_off) ext_port;
    assign "csum" (load16 (int Hdr.checksum_off));
    store16 (int Hdr.checksum_off)
      (Binop (And, var "csum" + int 0x1bb, int 0xffff));
  ]

(* Rewrite a returning packet: destination becomes the internal flow. *)
let rewrite_external ~ip ~port =
  [
    store32 (int Hdr.dst_ip_off) ip;
    store16 (int Hdr.dst_port_off) port;
    assign "csum" (load16 (int Hdr.checksum_off));
    store16 (int Hdr.checksum_off)
      (Binop (And, var "csum" + int 0x2e5, int 0xffff));
  ]

let internal_side =
  [
    Comment "internal -> external";
    call ~ret:"ext_port" instance "lookup_int" (flow_args @ [ var "now" ]);
    if_
      (var "ext_port" >= int 0)
      (rewrite_internal (var "ext_port") @ [ forward_port 1 ])
      [
        call ~ret:"new_port" instance "add_int" (flow_args @ [ var "now" ]);
        if_
          (var "new_port" < int 0)
          [ Comment "table full or ports exhausted"; drop ]
          (Comment "new internal flow installed"
           :: rewrite_internal (var "new_port")
          @ [ forward_port 1 ]);
      ];
  ]

let external_side =
  [
    Comment "external -> internal";
    call ~ret:"handle" instance "lookup_ext" [ var "dst_port"; var "now" ];
    if_
      (var "handle" < int 0)
      [ Comment "no established mapping"; drop ]
      [
        call ~ret:"int_ip" instance "int_field" [ var "handle"; int 0 ];
        call ~ret:"int_port" instance "int_field" [ var "handle"; int 2 ];
      ]
    ;
  ]
  @ rewrite_external ~ip:(var "int_ip") ~port:(var "int_port")
  @ [ forward_port 0 ]

(* Expiry runs on every packet, before validation — as VigNAT does, which
   is why even the paper's "invalid packets" contract row carries the
   e-terms (Table 6). *)
let program =
  Ir.Program.make ~name:"nat"
    ~state:[ { Ir.Program.instance; kind = Dslib.Nat_table.kind } ]
    ((call ~ret:"expired" instance "expire" [ var "now" ] :: Hdr.parse_l4)
    @ [ if_ (var "in_port" == int 0) internal_side external_side ])

type config = {
  capacity : int;
  buckets : int;
  timeout : int;
  granularity : int;
  port_lo : int;
  port_hi : int;
  allocator : [ `Dll | `Array ];
}

let default_config =
  {
    capacity = 4096;
    buckets = 4096;
    timeout = 10_000_000;
    granularity = 1000;
    port_lo = 1024;
    port_hi = 9215;
    allocator = `Dll;
  }

let setup ?(config = default_config) alloc =
  let region = Dslib.Layout.region alloc in
  let alloc_region = Dslib.Layout.region alloc in
  let allocator =
    match config.allocator with
    | `Dll ->
        Dslib.Port_alloc.dll ~base:alloc_region ~port_lo:config.port_lo
          ~port_hi:config.port_hi
    | `Array ->
        Dslib.Port_alloc.array ~base:alloc_region ~port_lo:config.port_lo
          ~port_hi:config.port_hi
  in
  let table =
    Dslib.Nat_table.create ~base:region ~capacity:config.capacity
      ~buckets:config.buckets ~timeout:config.timeout
      ~granularity:config.granularity ~alloc:allocator
      ~port_lo:config.port_lo ~port_hi:config.port_hi ()
  in
  ([ (instance, Dslib.Nat_table.to_ds table) ], table)

let contracts ?(config = default_config) () =
  let alloc_name =
    match config.allocator with `Dll -> "dll" | `Array -> "array"
  in
  Perf.Ds_contract.library (Dslib.Nat_table.Recipe.contract ~alloc_name)

open Symbex

let table6_classes () =
  [
    Iclass.make ~name:"Invalid packets (dropped)"
      ~forbids:
        [
          (instance, "lookup_int"); (instance, "lookup_ext");
          (instance, "add_int");
        ]
      ();
    Iclass.make ~name:"Known flows (forwarded)"
      ~requires:[ Iclass.req instance "lookup_int" "hit" ]
      ();
    Iclass.make ~name:"New external flows (dropped)"
      ~requires:[ Iclass.req instance "lookup_ext" "miss" ]
      ();
    Iclass.make ~name:"New internal flows; table full (dropped)"
      ~requires:[ Iclass.req instance "add_int" "full" ]
      ();
    Iclass.make ~name:"New internal flows; table not full (forwarded)"
      ~requires:[ Iclass.req instance "add_int" "ok" ]
      ();
  ]

let classes ?(config = default_config) () =
  let quiet =
    Perf.Pcv.
      [ (expired, 0); (collisions, 0); (traversals, 1); (scan, 0) ]
  in
  let no_expiry = Iclass.req instance "expire" "expire" in
  [
    Iclass.make ~name:"NAT1"
      ~description:"unconstrained traffic (absolute worst case)"
      ~bindings:
        Perf.Pcv.
          [
            (expired, config.capacity);
            (collisions, Stdlib.((config.capacity - 1) / 2));
            (traversals, Stdlib.(config.capacity / 2));
            (scan, Stdlib.(config.port_hi - config.port_lo));
          ]
      ();
    Iclass.make ~name:"NAT2"
      ~description:"internal packets of new flows (table not full)"
      ~predicate:(Iclass.in_port_is 0)
      ~requires:
        [
          no_expiry;
          Iclass.req instance "lookup_int" "miss";
          Iclass.req instance "add_int" "ok";
        ]
      ~bindings:quiet ();
    Iclass.make ~name:"NAT3"
      ~description:"internal packets of established flows"
      ~predicate:(Iclass.in_port_is 0)
      ~requires:[ no_expiry; Iclass.req instance "lookup_int" "hit" ]
      ~bindings:quiet ();
    Iclass.make ~name:"NAT4"
      ~description:"external packets with no mapping (dropped)"
      ~predicate:(Iclass.in_port_is 1)
      ~requires:[ no_expiry; Iclass.req instance "lookup_ext" "miss" ]
      ~bindings:quiet ();
  ]
