open Ir.Expr
open Ir.Stmt

let max_options = 10

(* RFC 781 timestamp option type. *)
let ts_option = 68

let option_loop =
  [
    assign "i" (int 0);
    While
      ( Pcv_loop ("n", max_options),
        var "i" < var "n_opts",
        [
          assign "opt_off" (int Hdr.options_off + (var "i" * int 4));
          assign "opt_type" (load8 (var "opt_off"));
          if_
            (var "opt_type" == int ts_option)
            [
              Comment "stamp the timestamp option slot";
              store16 (var "opt_off" + int 2)
                (Binop (And, var "now", int 0xffff));
            ]
            [ Comment "skip unrecognised option" ];
          assign "i" (var "i" + int 1);
        ] );
  ]

let program =
  Ir.Program.make ~name:"static_router" ~state:[]
    ([
       if_ (Pkt_len < int 34) [ drop ] [];
       assign "ethertype" Hdr.ethertype;
       if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
       assign "dst_ip" Hdr.dst_ip;
       assign "out_port" (Binop (And, var "dst_ip", int 1));
       assign "ihl" Hdr.ihl;
       assign "n_opts" (var "ihl" - int 5);
       if_ (var "n_opts" > int 0) option_loop [];
     ]
    @ Hdr.decrement_ttl
    @ [ forward (var "out_port") ])

open Symbex

let classes () =
  [
    Iclass.make ~name:"No IP options" ~description:"ihl = 5: fast path"
      ~predicate:(Iclass.field_eq Ir.Expr.W8 14 0x45)
      ();
    Iclass.make ~name:"IP Options"
      ~description:"each option slot costs one loop iteration"
      ~predicate:
        (Iclass.conj_preds
           [
             Iclass.field_eq Ir.Expr.W16 12 Hdr.ipv4_ethertype;
             (fun result ->
               let open Solver in
               [
                 Constr.ge
                   (Iclass.field result Ir.Expr.W8 14)
                   (Linexpr.const 0x46);
               ]);
           ])
      ~bindings:[ (Perf.Pcv.ip_options, 2) ]
      ();
  ]
