(** Static IP router that processes the IP timestamp option (paper
    Table 5b): forwarding is cheap without options, but each option slot
    costs a loop iteration — the contract is linear in PCV [n], the
    number of IP options. *)

val program : Ir.Program.t
val max_options : int
val classes : unit -> Symbex.Iclass.t list
