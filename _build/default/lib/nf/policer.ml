let instance = "bucket"

open Ir.Expr
open Ir.Stmt

let program =
  Ir.Program.make ~name:"policer"
    ~state:[ { Ir.Program.instance; kind = Dslib.Token_bucket.kind } ]
    [
      if_ (Pkt_len < int 34) [ drop ] [];
      assign "ethertype" Hdr.ethertype;
      if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
      call ~ret:"ok" instance "conform" [ Pkt_len; var "now" ];
      if_ (var "ok" == int 0) [ Comment "out of profile"; drop ] [];
      forward_port 0;
    ]

type config = { rate : int; burst : int }

let default_config = { rate = 100; burst = 150_000 }

let setup ?(config = default_config) alloc =
  let bucket =
    Dslib.Token_bucket.create
      ~base:(Dslib.Layout.region alloc)
      ~rate:config.rate ~burst:config.burst ()
  in
  ([ (instance, Dslib.Token_bucket.to_ds bucket) ], bucket)

let contracts () = Perf.Ds_contract.library Dslib.Token_bucket.Recipe.contract

open Symbex

let classes () =
  [
    Iclass.make ~name:"Conformant" ~description:"within profile: forwarded"
      ~requires:[ Iclass.req instance "conform" "conform" ]
      ();
    Iclass.make ~name:"Out of profile" ~description:"bucket empty: dropped"
      ~requires:[ Iclass.req instance "conform" "exceed" ]
      ();
    Iclass.make ~name:"Invalid" ~description:"non-IPv4: dropped unmetered"
      ~predicate:(Iclass.field_ne Ir.Expr.W16 12 Hdr.ipv4_ethertype)
      ~forbids:[ (instance, "conform") ]
      ();
  ]
