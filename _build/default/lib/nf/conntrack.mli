(** Stateful (connection-tracking) firewall.

    Port 0 faces the protected network.  Outbound packets open (or
    refresh) a flow entry and pass; inbound packets pass only when they
    match the reverse 5-tuple of an established flow.  A second consumer
    of {!Dslib.Flow_table} beside the load balancer, with both lookup
    directions live on the fast path — its contract carries the same
    e/c/t structure as the paper's NAT (Table 6).

    Input classes: CT1 — unconstrained (worst case); CT2 — outbound new
    flows; CT3 — outbound established; CT4 — inbound established (the
    reverse lookup hits); CT5 — inbound with no matching flow (dropped). *)

val instance : string
val program : Ir.Program.t

type config = {
  capacity : int;
  buckets : int;
  timeout : int;
}

val default_config : config

val setup :
  ?config:config -> Dslib.Layout.allocator -> Exec.Ds.env * Dslib.Flow_table.t

val contracts : ?config:config -> unit -> Perf.Ds_contract.library
val classes : ?config:config -> unit -> Symbex.Iclass.t list
