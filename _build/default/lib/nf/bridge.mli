(** MAC learning bridge (paper's Br).

    State: one {!Dslib.Mac_table} with expiry and the rehash defence.
    Input classes: Br1 — unconstrained (worst case: mass expiry);
    Br2 — broadcast frames; Br3 — unicast frames to known MACs. *)

val instance : string
val program : Ir.Program.t

type config = {
  capacity : int;
  buckets : int;
  timeout : int;
  threshold : int;
  seed : int;
}

val default_config : config

val setup :
  ?config:config -> Dslib.Layout.allocator -> Exec.Ds.env * Dslib.Mac_table.t

val contracts : ?config:config -> unit -> Perf.Ds_contract.library
val classes : ?config:config -> unit -> Symbex.Iclass.t list

val table4_classes : unit -> Symbex.Iclass.t list
(** The three traffic types of paper Table 4: known source MAC; unknown
    source without rehashing; unknown source triggering the rehash
    defence. *)
