(** Maglev-like load balancer (paper's LB).

    Port 0 faces clients, port 1 the backend pool.  Backends send
    heartbeats to UDP port 9999.  State: per-flow backend assignments
    ({!Dslib.Flow_table}), the Maglev {!Dslib.Hash_ring}, and backend
    liveness ({!Dslib.Backend_pool}).

    Input classes: LB1 — unconstrained; LB2 — new flows; LB3 — existing
    flows whose backend died (reassigned via the ring); LB4 — existing
    flows with a live backend; LB5 — heartbeats. *)

val flows : string
val ring : string
val pool : string
val heartbeat_port : int
val program : Ir.Program.t

type config = {
  capacity : int;
  buckets : int;
  timeout : int;
  backend_count : int;
  ring_size : int;  (** prime *)
  backend_timeout : int;
}

val default_config : config

type state = {
  flow_table : Dslib.Flow_table.t;
  hash_ring : Dslib.Hash_ring.t;
  backend_pool : Dslib.Backend_pool.t;
}

val setup : ?config:config -> Dslib.Layout.allocator -> Exec.Ds.env * state
val contracts : ?config:config -> unit -> Perf.Ds_contract.library
val classes : ?config:config -> unit -> Symbex.Iclass.t list
