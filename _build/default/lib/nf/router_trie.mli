(** The paper's running example (§2.1, Algorithm 1): a simplified LPM
    router over a Patricia trie.  Its stylised contract is Table 1; the
    trie method's is Table 2. *)

val instance : string
val program : Ir.Program.t

val setup :
  Dslib.Layout.allocator ->
  routes:(int * int * int) list ->
  Exec.Ds.env * Dslib.Lpm_trie.t

val contracts : unit -> Perf.Ds_contract.library
val classes : unit -> Symbex.Iclass.t list

val stylized_contract : Perf.Contract.t
(** Paper Table 1, computed by composing Table 2's method contract with
    the stylised costs of the stateless code (2 instructions / 1 access
    for the invalid path; +3 instructions / +2 accesses around the lookup
    for the valid path) — the paper's convention of ignoring every layer
    below the NF. *)
