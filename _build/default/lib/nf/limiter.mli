(** Heavy-hitter limiter: per-source rate policing without per-flow state.

    A count-min sketch tracks an approximate per-source packet count;
    sources whose estimate exceeds the threshold are dropped.  DDoS
    scrubbing in a few hundred bytes of state — and, for contract
    purposes, a fast path whose cost is the same on every packet (the
    sketch's d probes), with only the verdict branching. *)

val instance : string
val threshold : int
val program : Ir.Program.t

type config = { rows : int; width : int }

val default_config : config

val setup :
  ?config:config -> Dslib.Layout.allocator -> Exec.Ds.env * Dslib.Count_min.t

val contracts : ?config:config -> unit -> Perf.Ds_contract.library
val classes : unit -> Symbex.Iclass.t list
