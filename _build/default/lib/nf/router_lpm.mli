(** LPM router over DPDK's dir-24-8 table (paper's LPM).

    Input classes: LPM1 — unconstrained (worst case: two-lookup path);
    LPM2 — destinations whose match is ≤ 24 bits (one lookup). *)

val instance : string
val program : Ir.Program.t

val setup :
  Dslib.Layout.allocator ->
  routes:(int * int * int) list ->
  Exec.Ds.env * Dslib.Lpm_dir24_8.t
(** [routes] are [(prefix, len, port)] triples. *)

val contracts : unit -> Perf.Ds_contract.library
val classes : unit -> Symbex.Iclass.t list
