let instance = "lpm"

open Ir.Expr
open Ir.Stmt

let program =
  Ir.Program.make ~name:"trie_router"
    ~state:[ { Ir.Program.instance; kind = Dslib.Lpm_trie.kind } ]
    [
      Comment "Algorithm 1: classify, then LPM lookup";
      if_ (Pkt_len < int 34) [ drop ] [];
      assign "ethertype" Hdr.ethertype;
      if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
      assign "dst_ip" Hdr.dst_ip;
      call ~ret:"port" instance "lookup" [ var "dst_ip" ];
      forward (var "port");
    ]

let setup alloc ~routes =
  let trie =
    Dslib.Lpm_trie.create ~base:(Dslib.Layout.region alloc) ~default_port:0
  in
  List.iter
    (fun (prefix, len, port) ->
      Dslib.Lpm_trie.add_route trie ~prefix ~len ~port)
    routes;
  ([ (instance, Dslib.Lpm_trie.to_ds trie) ], trie)

let contracts () = Perf.Ds_contract.library Dslib.Lpm_trie.Recipe.contract

open Symbex

let classes () =
  [
    Iclass.make ~name:"Invalid packets"
      ~description:"non-IPv4 ethertype: dropped immediately"
      ~predicate:(Iclass.field_ne Ir.Expr.W16 12 Hdr.ipv4_ethertype)
      ();
    Iclass.make ~name:"Valid packets" ~description:"IPv4: trie lookup"
      ~predicate:(Iclass.field_eq Ir.Expr.W16 12 Hdr.ipv4_ethertype)
      ~requires:[ Iclass.req instance "lookup" "ok" ]
      ();
  ]

let stylized_contract =
  let open Perf in
  let lookup = Dslib.Lpm_trie.Recipe.lookup_cost in
  let add_consts ~ic ~ma vec =
    Cost_vec.make
      ~ic:(Perf_expr.add_const ic (Cost_vec.get vec Metric.Instructions))
      ~ma:(Perf_expr.add_const ma (Cost_vec.get vec Metric.Memory_accesses))
      ~cycles:(Cost_vec.get vec Metric.Cycles)
  in
  Contract.make ~nf:"Simple LPM router (stylised, paper Table 1)"
    [
      Contract.entry ~class_name:"Invalid packets"
        ~description:"non-IPv4: ethertype check, drop"
        (Cost_vec.of_consts ~ic:2 ~ma:1 ~cycles:0);
      Contract.entry ~class_name:"Valid packets"
        ~description:"IPv4: ethertype check + lpmGet + forward"
        (add_consts ~ic:3 ~ma:2 lookup);
    ]
