lib/nf/bridge.mli: Dslib Exec Ir Perf Symbex
