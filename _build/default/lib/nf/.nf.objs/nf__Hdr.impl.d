lib/nf/hdr.ml: Ir Net
