lib/nf/router_trie.mli: Dslib Exec Ir Perf Symbex
