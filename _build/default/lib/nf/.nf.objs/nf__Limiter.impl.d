lib/nf/limiter.ml: Dslib Hdr Iclass Ir Perf Symbex
