lib/nf/nat.ml: Dslib Hdr Iclass Ir Net Perf Stdlib Symbex
