lib/nf/responder.ml: Hdr Iclass Ir Net Symbex
