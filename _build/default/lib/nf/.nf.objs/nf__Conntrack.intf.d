lib/nf/conntrack.mli: Dslib Exec Ir Perf Symbex
