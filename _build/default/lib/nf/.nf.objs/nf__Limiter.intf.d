lib/nf/limiter.mli: Dslib Exec Ir Perf Symbex
