lib/nf/firewall.ml: Constr Hdr Iclass Ir Linexpr Solver Symbex
