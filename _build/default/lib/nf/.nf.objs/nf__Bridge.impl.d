lib/nf/bridge.ml: Dslib Hdr Iclass Ir Net Perf Stdlib Symbex
