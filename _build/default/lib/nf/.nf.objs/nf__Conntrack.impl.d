lib/nf/conntrack.ml: Dslib Hdr Iclass Ir Perf Stdlib Symbex
