lib/nf/responder.mli: Ir Symbex
