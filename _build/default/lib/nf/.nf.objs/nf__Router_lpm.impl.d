lib/nf/router_lpm.ml: Dslib Hdr Iclass Ir List Perf Symbex
