lib/nf/firewall.mli: Ir Symbex
