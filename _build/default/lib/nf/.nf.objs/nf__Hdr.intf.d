lib/nf/hdr.mli: Ir
