lib/nf/policer.mli: Dslib Exec Ir Perf Symbex
