lib/nf/policer.ml: Dslib Hdr Iclass Ir Perf Symbex
