lib/nf/nat.mli: Dslib Exec Ir Perf Symbex
