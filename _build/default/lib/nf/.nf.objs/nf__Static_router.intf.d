lib/nf/static_router.mli: Ir Symbex
