lib/nf/maglev.mli: Dslib Exec Ir Perf Symbex
