lib/nf/router_lpm.mli: Dslib Exec Ir Perf Symbex
