lib/nf/maglev.ml: Dslib Hdr Iclass Ir List Perf Stdlib Symbex
