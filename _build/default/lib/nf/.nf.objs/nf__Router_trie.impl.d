lib/nf/router_trie.ml: Contract Cost_vec Dslib Hdr Iclass Ir List Metric Perf Perf_expr Symbex
