lib/nf/static_router.ml: Constr Hdr Iclass Ir Linexpr Perf Solver Symbex
