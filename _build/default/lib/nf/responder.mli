(** ICMP echo responder: pings addressed to the device answer in place
    (swap L2/L3 addresses, flip the ICMP type, fix both checksums,
    bounce out of the ingress port); everything else is dropped.

    Entirely stateless and store-heavy — the contract is a pair of
    constants, and the rewrite path exercises packet writes harder than
    any other NF here. *)

val device_ip : int
val program : Ir.Program.t
val classes : unit -> Symbex.Iclass.t list
