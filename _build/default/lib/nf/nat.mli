(** VigNAT-style network address translator (paper's NAT, Table 6).

    Port 0 faces the internal network, port 1 the external one.  State:
    one {!Dslib.Nat_table} (flow table + reverse port map + pluggable port
    allocator).

    Input classes: NAT1 — unconstrained (worst case); NAT2 — new internal
    flows; NAT3 — established flows; NAT4 — external packets with no
    mapping (dropped). *)

val instance : string
val program : Ir.Program.t
val external_ip : int
(** The address the NAT rewrites internal sources to. *)

type config = {
  capacity : int;
  buckets : int;
  timeout : int;  (** microseconds *)
  granularity : int;  (** timestamp quantum, microseconds *)
  port_lo : int;
  port_hi : int;
  allocator : [ `Dll | `Array ];
}

val default_config : config

val setup :
  ?config:config -> Dslib.Layout.allocator -> Exec.Ds.env * Dslib.Nat_table.t

val contracts : ?config:config -> unit -> Perf.Ds_contract.library
val classes : ?config:config -> unit -> Symbex.Iclass.t list

val table6_classes : unit -> Symbex.Iclass.t list
(** The five traffic types of paper Table 6: invalid packets, known
    flows, new external flows, new internal flows with the table full,
    and new internal flows with room. *)
