type bound = {
  class_name : string;
  cycles_per_packet : int;
  min_pps : float;
  min_gbps_64 : float;
}

let default_freq_hz = 3_300_000_000 (* the paper's E5-2667v2 clock *)

(* Price the fixed RX+TX framing exactly as the analysis does: replay the
   smallest possible program (unconditional drop, then the dearer forward
   framing) on a cold conservative model and take the worse one. *)
let framing_cycles =
  let run action =
    let meter = Exec.Meter.create (Hw.Model.conservative ()) in
    let program =
      Ir.Program.make ~name:"framing" ~state:[] [ Ir.Stmt.Return action ]
    in
    let r =
      Exec.Interp.run ~meter ~mode:(Exec.Interp.Production [])
        program (Net.Packet.create 64)
    in
    r.Exec.Interp.cycles
  in
  max (run Ir.Stmt.Drop) (run (Ir.Stmt.Forward (Ir.Expr.Const 0)))

(* 64-byte frames occupy 84 bytes of wire time (preamble + IFG). *)
let wire_bits_64 = 84 * 8

let of_class ?(freq_hz = default_freq_hz) ?(batch = 1) pipeline cls =
  if batch < 1 then invalid_arg "Throughput.of_class: batch must be >= 1";
  match Pipeline.predict pipeline cls Perf.Metric.Cycles with
  | Error _ as e -> e
  | Ok cycles ->
      let amortised =
        if batch = 1 then cycles
        else
          cycles - framing_cycles
          + ((framing_cycles + batch - 1) / batch)
      in
      let amortised = max 1 amortised in
      let min_pps = float_of_int freq_hz /. float_of_int amortised in
      Ok
        {
          class_name = cls.Symbex.Iclass.name;
          cycles_per_packet = amortised;
          min_pps;
          min_gbps_64 = min_pps *. float_of_int wire_bits_64 /. 1e9;
        }

let of_classes ?freq_hz ?batch pipeline classes =
  List.filter_map
    (fun cls ->
      match of_class ?freq_hz ?batch pipeline cls with
      | Ok b -> Some b
      | Error _ -> None)
    classes

let pp ppf b =
  Fmt.pf ppf "%-8s <= %8d cycles/pkt  =>  >= %10.0f pps  (%5.2f Gbps @ 64B)"
    b.class_name b.cycles_per_packet b.min_pps b.min_gbps_64
