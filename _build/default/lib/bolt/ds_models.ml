open Symbex

let hit_miss ~kind ~meth ~hit_lo ~hit_hi =
  Model.make ~kind ~meth (fun ctx ~args:_ ->
      [
        Model.fresh_ret_branch ctx ~tag:"hit" ~lo:hit_lo ~hi:hit_hi
          (meth ^ "_hit");
        Model.const_branch ~tag:"miss" (-1);
      ])

let single ~kind ~meth ~tag ~lo ~hi =
  Model.make ~kind ~meth (fun ctx ~args:_ ->
      [ Model.fresh_ret_branch ctx ~tag ~lo ~hi meth ])

let flow_table =
  [
    single ~kind:"flow_table" ~meth:"expire" ~tag:"expire" ~lo:0
      ~hi:(1 lsl 22);
    hit_miss ~kind:"flow_table" ~meth:"get" ~hit_lo:0 ~hit_hi:((1 lsl 31) - 1);
    Model.make ~kind:"flow_table" ~meth:"put" (fun ctx ~args:_ ->
        [
          Model.fresh_ret_branch ctx ~tag:"ok" ~lo:0 ~hi:(1 lsl 22) "put_idx";
          Model.const_branch ~tag:"full" (-1);
        ]);
    single ~kind:"flow_table" ~meth:"size" ~tag:"ok" ~lo:0 ~hi:(1 lsl 22);
  ]

let nat_table =
  [
    single ~kind:"nat_table" ~meth:"expire" ~tag:"expire" ~lo:0
      ~hi:(1 lsl 22);
    hit_miss ~kind:"nat_table" ~meth:"lookup_int" ~hit_lo:0 ~hit_hi:65535;
    Model.make ~kind:"nat_table" ~meth:"add_int" (fun ctx ~args:_ ->
        [
          Model.fresh_ret_branch ctx ~tag:"ok" ~lo:0 ~hi:65535 "new_port";
          Model.const_branch ~tag:"full" (-1);
          Model.const_branch ~tag:"no_port" (-1);
        ]);
    hit_miss ~kind:"nat_table" ~meth:"lookup_ext" ~hit_lo:0
      ~hit_hi:(1 lsl 22);
    single ~kind:"nat_table" ~meth:"int_field" ~tag:"ok" ~lo:0
      ~hi:((1 lsl 32) - 1);
  ]

let mac_table =
  [
    single ~kind:"mac_table" ~meth:"expire" ~tag:"expire" ~lo:0
      ~hi:(1 lsl 22);
    Model.make ~kind:"mac_table" ~meth:"learn" (fun _ctx ~args:_ ->
        [
          Model.const_branch ~tag:"known" 0;
          Model.const_branch ~tag:"learned" 0;
          Model.const_branch ~tag:"rehash" 0;
          Model.const_branch ~tag:"full" 0;
        ]);
    hit_miss ~kind:"mac_table" ~meth:"lookup" ~hit_lo:0 ~hit_hi:7;
  ]

let lpm =
  [
    Model.make ~kind:"lpm" ~meth:"lookup" (fun ctx ~args:_ ->
        [
          Model.fresh_ret_branch ctx ~tag:"short" ~lo:0 ~hi:255 "port24";
          Model.fresh_ret_branch ctx ~tag:"long" ~lo:0 ~hi:255 "port32";
        ]);
  ]

let lpm_trie =
  [ single ~kind:"lpm_trie" ~meth:"lookup" ~tag:"ok" ~lo:0 ~hi:255 ]

let hash_ring =
  [ single ~kind:"hash_ring" ~meth:"backend_for" ~tag:"ok" ~lo:0 ~hi:1023 ]

let backend_pool =
  [
    Model.make ~kind:"backend_pool" ~meth:"heartbeat" (fun _ctx ~args:_ ->
        [ Model.const_branch ~tag:"ok" 1 ]);
    Model.make ~kind:"backend_pool" ~meth:"is_alive" (fun _ctx ~args:_ ->
        [
          Model.const_branch ~tag:"alive" 1;
          Model.const_branch ~tag:"dead" 0;
        ]);
  ]

let token_bucket =
  [
    Model.make ~kind:"token_bucket" ~meth:"conform" (fun _ctx ~args:_ ->
        [
          Model.const_branch ~tag:"conform" 1;
          Model.const_branch ~tag:"exceed" 0;
        ]);
  ]

let count_min =
  [
    single ~kind:"count_min" ~meth:"update" ~tag:"ok" ~lo:1 ~hi:(1 lsl 30);
    single ~kind:"count_min" ~meth:"estimate" ~tag:"ok" ~lo:0 ~hi:(1 lsl 30);
  ]

let default =
  Model.registry
    (flow_table @ nat_table @ mac_table @ lpm @ lpm_trie @ hash_ring
   @ backend_pool @ token_bucket @ count_min)
