(** Joint analysis of NF chains (paper §3.4).

    For every path of the upstream NF that forwards its packet, the
    downstream NF is symbolically executed {e on the upstream path's
    symbolic output packet} under the upstream path's constraints — so
    downstream branches react to upstream rewrites, and incompatible path
    pairs are pruned by the solver rather than summed.  This is what makes
    the composed contract tighter than adding the two NFs' worst cases
    (Figure 3). *)

type pair = {
  up : Symbex.Path.t;
  down : Symbex.Path.t;
  cost : Perf.Cost_vec.t;  (** joint cost of the compatible pair *)
}

type t = {
  pairs : pair list;
  up_only : (Symbex.Path.t * Perf.Cost_vec.t) list;
      (** upstream paths that drop/flood — the chain ends there *)
  unsolved : int;
  up_engine : Symbex.Engine.result;
}

val analyze :
  ?max_paths:int ->
  models:Symbex.Model.registry ->
  up:Ir.Program.t * Perf.Ds_contract.library ->
  down:Ir.Program.t * Perf.Ds_contract.library ->
  unit ->
  t

val worst_case : t -> Perf.Cost_vec.t
(** Conservative cost of the chain over all compatible pairs and
    upstream-terminated paths. *)

val naive_add :
  up:Perf.Cost_vec.t -> down:Perf.Cost_vec.t -> Perf.Cost_vec.t
(** The baseline the paper compares against: add the two NFs' individual
    worst cases. *)

val class_cost :
  t ->
  up_result:Symbex.Engine.result ->
  Symbex.Iclass.t ->
  Perf.Cost_vec.t * int
(** Chain cost for an input class of the upstream NF. *)

val engine_up : t -> Symbex.Engine.result

(** {1 Chains of arbitrary length}

    The paper (§3.4) notes that longer chains should be pieced together
    one NF at a time rather than by enumerating the full combinatorial
    product — which is what this does: each stage is symbolically
    executed on the previous stage's symbolic output packet, under the
    accumulated constraints, so infeasible tuples die as early as
    possible. *)

type stage = {
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
}

type tuple = {
  segments : Symbex.Path.t list;
      (** one path per traversed NF; shorter than the chain when an
          early NF dropped the packet *)
  cost : Perf.Cost_vec.t;
}

type chain = {
  tuples : tuple list;
  chain_unsolved : int;
  input : Symbex.Spacket.input;  (** shared input packet symbols *)
}

val analyze_chain :
  ?max_paths:int -> models:Symbex.Model.registry -> stage list -> chain
(** Raises [Invalid_argument] on an empty chain. *)

val chain_worst : chain -> Perf.Cost_vec.t

val chain_class_cost :
  chain -> (Symbex.Spacket.input -> Solver.Constr.t list) ->
  Perf.Cost_vec.t * int
(** Conservative chain cost over input packets satisfying the predicate
    (expressed over the shared input symbols). *)
