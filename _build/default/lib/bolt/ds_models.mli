(** Symbolic models for every data-structure kind in the library
    (paper §3.3, Algorithm 3).

    Each model's branch tags match the branch tags of the kind's
    performance contract, which is the hinge of Algorithm 2 line 11: the
    tag recorded on the path selects the contract formula. *)

val default : Symbex.Model.registry
(** Models for: [flow_table], [nat_table], [mac_table], [lpm],
    [lpm_trie], [hash_ring], [backend_pool], [token_bucket], [count_min]. *)
