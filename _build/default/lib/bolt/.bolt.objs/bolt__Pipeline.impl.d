lib/bolt/pipeline.ml: Contract Cost_vec Ds_contract Exec Hw Ir List Net Pcv Perf Perf_expr Printf Solver Symbex
