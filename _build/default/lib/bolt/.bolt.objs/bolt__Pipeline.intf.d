lib/bolt/pipeline.mli: Exec Hw Ir Net Perf Symbex
