lib/bolt/throughput.ml: Exec Fmt Hw Ir List Net Perf Pipeline Symbex
