lib/bolt/ds_models.mli: Symbex
