lib/bolt/compose.mli: Ir Perf Solver Symbex
