lib/bolt/report.ml: Buffer Contract Cost_vec Fmt Ir List Metric Net Pcv Perf Pipeline Printf Symbex
