lib/bolt/ds_models.ml: Model Symbex
