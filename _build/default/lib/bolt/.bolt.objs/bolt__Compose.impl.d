lib/bolt/compose.ml: Cost_vec Ds_contract Exec Hw Ir List Net Perf Pipeline Solver String Symbex
