lib/bolt/report.mli: Format Net Pipeline Symbex
