lib/bolt/throughput.mli: Format Perf Pipeline Symbex
