(** Human-facing analysis reports.

    The contract table is what an operator consumes; a developer
    debugging their NF wants more: every feasible path with its
    abstract-state tags, its cost expression, and the witness packet the
    solver produced for it (paper Alg. 2 line 6) — ready to feed back
    into a test.  This module renders both levels. *)

val pp_summary : Format.formatter -> Pipeline.t -> unit
(** One paragraph: path counts, pruning, PCVs in play. *)

val pp_paths : ?witnesses:bool -> Format.formatter -> Pipeline.t -> unit
(** Every analysed path: action, call tags, cost expressions, and (with
    [witnesses], default true) the concrete packet that exercises it. *)

val pp_classes :
  classes:Symbex.Iclass.t list -> Format.formatter -> Pipeline.t -> unit
(** The class table with per-class member counts and, where the class's
    bindings permit, concrete bounds. *)

val pp_full :
  classes:Symbex.Iclass.t list -> Format.formatter -> Pipeline.t -> unit
(** Summary + classes + paths. *)

val witness_line : Net.Packet.t -> string
(** A compact one-line hex rendering of a witness packet (first 48
    bytes). *)
