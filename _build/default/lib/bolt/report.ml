open Perf

let witness_line packet =
  let len = Net.Packet.length packet in
  let shown = min len 48 in
  let buf = Buffer.create (shown * 3) in
  for i = 0 to shown - 1 do
    if i > 0 && i mod 16 = 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Printf.sprintf "%02x" (Net.Packet.get_u8 packet i))
  done;
  if len > shown then Buffer.add_string buf (Printf.sprintf "… (%dB)" len);
  Buffer.contents buf

let all_pcvs t =
  List.concat_map
    (fun (a : Pipeline.path_analysis) -> Cost_vec.pcvs a.Pipeline.cost)
    t.Pipeline.analyses
  |> List.sort_uniq Pcv.compare

let pcv_glossary =
  [
    (Pcv.expired, "entries expired while processing the packet");
    (Pcv.collisions, "hash collisions encountered");
    (Pcv.traversals, "hash-bucket traversals");
    (Pcv.occupancy, "entries resident in the table");
    (Pcv.prefix_len, "matched IP prefix length");
    (Pcv.ip_options, "IP options carried by the packet");
    (Pcv.scan, "allocator bitmap words skipped");
  ]

let pp_summary ppf (t : Pipeline.t) =
  Fmt.pf ppf
    "@[<v>%s: %d feasible paths (%d infeasible forks pruned, %d \
     unsolved)@,"
    t.Pipeline.program.Ir.Program.name
    (Pipeline.path_count t)
    t.Pipeline.engine.Symbex.Engine.infeasible_pruned t.Pipeline.unsolved;
  let pcvs = all_pcvs t in
  if pcvs <> [] then begin
    Fmt.pf ppf "performance-critical variables:@,";
    List.iter
      (fun pcv ->
        let gloss =
          match List.assoc_opt pcv pcv_glossary with
          | Some g -> g
          | None -> "loop trip count"
        in
        Fmt.pf ppf "  %a — %s@," Pcv.pp pcv gloss)
      pcvs
  end;
  Fmt.pf ppf "@]"

let pp_action ppf = function
  | Symbex.Path.Forward v -> Fmt.pf ppf "forward(%a)" Symbex.Value.pp v
  | Symbex.Path.Drop -> Fmt.string ppf "drop"
  | Symbex.Path.Flood -> Fmt.string ppf "flood"

let pp_paths ?(witnesses = true) ppf (t : Pipeline.t) =
  List.iter
    (fun (a : Pipeline.path_analysis) ->
      Fmt.pf ppf "path %d: %a@." a.Pipeline.path.Symbex.Path.id pp_action
        a.Pipeline.path.Symbex.Path.action;
      (match a.Pipeline.path.Symbex.Path.calls with
      | [] -> ()
      | calls ->
          Fmt.pf ppf "  state: %a@."
            Fmt.(
              list ~sep:(any "; ") (fun ppf (c : Symbex.Path.call) ->
                  pf ppf "%s.%s[%s]" c.Symbex.Path.instance c.Symbex.Path.meth
                    c.Symbex.Path.tag))
            calls);
      Fmt.pf ppf "  cost: @[<v>%a@]@." Cost_vec.pp a.Pipeline.cost;
      if witnesses then begin
        Fmt.pf ppf "  witness (in_port %d, now %d): %a@." a.Pipeline.in_port
          a.Pipeline.now Net.Pp.packet a.Pipeline.packet;
        Fmt.pf ppf "    %s@." (witness_line a.Pipeline.packet)
      end;
      Fmt.pf ppf "@.")
    t.Pipeline.analyses

let pp_classes ~classes ppf (t : Pipeline.t) =
  Fmt.pf ppf "%a@." Contract.pp (Pipeline.contract t ~classes);
  List.iter
    (fun (cls : Symbex.Iclass.t) ->
      if cls.Symbex.Iclass.bindings <> [] then
        match
          ( Pipeline.predict t cls Metric.Instructions,
            Pipeline.predict t cls Metric.Memory_accesses,
            Pipeline.predict t cls Metric.Cycles )
        with
        | Ok ic, Ok ma, Ok cy ->
            Fmt.pf ppf "  %s at %a: IC <= %d, MA <= %d, cycles <= %d@."
              cls.Symbex.Iclass.name Pcv.pp_binding
              cls.Symbex.Iclass.bindings ic ma cy
        | _ -> ())
    classes

let pp_full ~classes ppf t =
  pp_summary ppf t;
  Fmt.pf ppf "@.";
  pp_classes ~classes ppf t;
  Fmt.pf ppf "@.per-path detail:@.@.";
  pp_paths ppf t
