(** Throughput bounds derived from cycle contracts (paper §6 lists this
    as future work: "we plan to extend BOLT to reason about more commonly
    used metrics such as throughput").

    A per-packet cycle bound C on a core running at F Hz guarantees a
    sustained single-core throughput of at least F/C packets per second
    for traffic within the class — a floor an operator can provision
    against, the dual of the latency bound.

    Batched I/O sharpens the floor: the fixed RX/TX framing cost is paid
    once per batch in a DPDK-style run-to-completion loop, so the
    amortised per-packet bound is (C − framing + framing/B). *)

type bound = {
  class_name : string;
  cycles_per_packet : int;  (** conservative bound at the class bindings *)
  min_pps : float;  (** guaranteed packets/second at [freq_hz] *)
  min_gbps_64 : float;  (** line-rate floor for 64-byte frames *)
}

val framing_cycles : int
(** Conservative per-packet driver RX+TX cost included in every path
    (subtractable under batching). *)

val of_class :
  ?freq_hz:int -> ?batch:int -> Pipeline.t -> Symbex.Iclass.t ->
  (bound, Perf.Pcv.t) result
(** [batch] defaults to 1 (no amortisation); [freq_hz] to 3.3 GHz, the
    paper's testbed clock. *)

val of_classes :
  ?freq_hz:int -> ?batch:int -> Pipeline.t -> Symbex.Iclass.t list ->
  bound list
(** Skips classes with unbound PCVs. *)

val pp : Format.formatter -> bound -> unit
