let density samples =
  let n = List.length samples in
  if n = 0 then []
  else
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun v ->
        Hashtbl.replace tbl v
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
      samples;
    Hashtbl.fold (fun v c acc -> (v, float_of_int c /. float_of_int n) :: acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let density_binned ~bins samples =
  let n = List.length samples in
  if n = 0 then List.map (fun (_, _, label) -> (label, 0.)) bins
  else
    List.map
      (fun (lo, hi, label) ->
        let c = List.length (List.filter (fun v -> v >= lo && v <= hi) samples) in
        (label, float_of_int c /. float_of_int n))
      bins

let sorted samples = List.sort Int.compare samples

let ccdf samples =
  let n = List.length samples in
  if n = 0 then []
  else
    let s = sorted samples in
    let distinct = List.sort_uniq Int.compare s in
    List.map
      (fun v ->
        let above = List.length (List.filter (fun x -> x > v) s) in
        (v, float_of_int above /. float_of_int n))
      distinct

let cdf samples =
  let n = List.length samples in
  if n = 0 then []
  else
    let s = sorted samples in
    let distinct = List.sort_uniq Int.compare s in
    List.map
      (fun v ->
        let upto = List.length (List.filter (fun x -> x <= v) s) in
        (v, float_of_int upto /. float_of_int n))
      distinct

let percentile samples p =
  match sorted samples with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | s ->
      let n = List.length s in
      let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
      List.nth s (max 0 (min (n - 1) idx))

let mean samples =
  match samples with
  | [] -> 0.
  | _ ->
      float_of_int (List.fold_left ( + ) 0 samples)
      /. float_of_int (List.length samples)

let pp_density ppf d =
  List.iter (fun (v, p) -> Fmt.pf ppf "  %8d  %8.4f%%@\n" v (100. *. p)) d

let pp_curve ~label ppf points =
  Fmt.pf ppf "  %s@\n" label;
  List.iter (fun (v, p) -> Fmt.pf ppf "  %10d  %8.5f@\n" v p) points
