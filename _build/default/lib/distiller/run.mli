(** The Distiller's instrumented replay (paper §4).

    Feeds a traffic sample through the production build of the NF, logging
    the PCV values each packet induced.  The Distiller never changes the
    contract — it tells the user which contract assumptions held for each
    packet of the trace. *)

type packet_report = {
  index : int;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;  (** realistic-model latency of this packet *)
  observations : (Perf.Pcv.t * int) list;
      (** per-call PCV observations during this packet *)
}

type t = {
  reports : packet_report list;
  total_ic : int;
  total_ma : int;
}

val run :
  ?hw:Hw.Model.t -> dss:Exec.Ds.env -> Ir.Program.t -> Workload.Stream.t ->
  t
(** Replay the stream (warm caches persist across packets; pass [hw] to
    share a simulator across several runs). *)

val run_pcap :
  ?hw:Hw.Model.t -> dss:Exec.Ds.env -> Ir.Program.t -> path:string ->
  ?in_port:int -> unit -> t
(** Convenience: replay a pcap file. *)

val pcv_values : t -> Perf.Pcv.t -> int list
(** Per-packet values of one PCV (max over the packet's calls; 0 when the
    packet never exercised it). *)

val pcv_sums : t -> Perf.Pcv.t -> int list
(** Per-packet sums (e.g. total expirations each packet triggered). *)

val latencies : t -> int list
val max_ic : t -> int
val max_ma : t -> int
val max_cycles : t -> int
