(** PCV sensitivity analysis (paper §4).

    "The distiller also enables users to perform a sensitivity analysis"
    — e.g. how much worse do packets get as the matched prefix grows, and
    how much traffic is actually affected?  This module sweeps one PCV of
    a contract entry over a range, evaluating the bound at each point,
    and pairs it with the distilled frequency of that value in a traffic
    sample. *)

type point = {
  value : int;  (** the swept PCV's value *)
  bound : int;  (** contract bound at that value *)
  traffic_share : float;
      (** fraction of sampled packets that induced exactly this value
          (0 when no sample was provided) *)
}

val sweep :
  cost:Perf.Cost_vec.t ->
  metric:Perf.Metric.t ->
  pcv:Perf.Pcv.t ->
  base:Perf.Pcv.binding ->
  lo:int -> hi:int ->
  ?observed:int list ->
  unit ->
  point list
(** Evaluate [cost] with [pcv] swept from [lo] to [hi] (other PCVs from
    [base]); [observed] are per-packet distilled values of the PCV. *)

val knee : point list -> threshold:float -> int option
(** Smallest swept value whose cumulative traffic share reaches
    [threshold] (e.g. 0.99): "99% of traffic is at or below this". *)

val pp : Format.formatter -> point list -> unit
