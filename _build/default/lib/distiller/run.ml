type packet_report = {
  index : int;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;
  observations : (Perf.Pcv.t * int) list;
}

type t = { reports : packet_report list; total_ic : int; total_ma : int }

let run ?hw ~dss program stream =
  let model = match hw with Some m -> m | None -> Hw.Model.realistic () in
  let meter = Exec.Meter.create model in
  let dma_regions =
    [ (Exec.Interp.packet_base, 2048); (Exec.Interp.rx_ring_base, 256) ]
  in
  let reports =
    List.mapi
      (fun index { Workload.Stream.packet; now; in_port } ->
        Exec.Meter.reset_observations meter;
        model.Hw.Model.boundary dma_regions;
        let run =
          Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~in_port
            ~now program packet
        in
        {
          index;
          outcome = run.Exec.Interp.outcome;
          ic = run.Exec.Interp.ic;
          ma = run.Exec.Interp.ma;
          cycles = run.Exec.Interp.cycles;
          observations = Exec.Meter.observations meter;
        })
      stream
  in
  {
    reports;
    total_ic = Exec.Meter.ic meter;
    total_ma = Exec.Meter.ma meter;
  }

let run_pcap ?hw ~dss program ~path ?(in_port = 0) () =
  let records = Net.Pcap.read_file path in
  run ?hw ~dss program (Workload.Stream.of_pcap ~in_port records)

let fold_pcv combine report pcv =
  List.fold_left
    (fun acc (p, v) -> if Perf.Pcv.equal p pcv then combine acc v else acc)
    0 report.observations

let pcv_values t pcv = List.map (fun r -> fold_pcv max r pcv) t.reports
let pcv_sums t pcv = List.map (fun r -> fold_pcv ( + ) r pcv) t.reports
let latencies t = List.map (fun r -> r.cycles) t.reports
let max_over f t = List.fold_left (fun acc r -> max acc (f r)) 0 t.reports
let max_ic t = max_over (fun r -> r.ic) t
let max_ma t = max_over (fun r -> r.ma) t
let max_cycles t = max_over (fun r -> r.cycles) t
