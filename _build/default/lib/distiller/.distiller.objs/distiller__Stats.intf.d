lib/distiller/stats.mli: Format
