lib/distiller/sensitivity.ml: Fmt List Perf
