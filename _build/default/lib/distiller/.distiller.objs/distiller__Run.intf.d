lib/distiller/run.mli: Exec Hw Ir Perf Workload
