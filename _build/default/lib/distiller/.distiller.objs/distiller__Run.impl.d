lib/distiller/run.ml: Exec Hw List Net Perf Workload
