lib/distiller/stats.ml: Fmt Hashtbl Int List Option
