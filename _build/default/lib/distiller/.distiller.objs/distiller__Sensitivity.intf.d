lib/distiller/sensitivity.mli: Format Perf
