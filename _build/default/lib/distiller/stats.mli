(** Distributions for Distiller reports: the probability-density tables
    (paper Tables 7–8) and CCDF/CDF curves (Figures 2, 4, 6, 7). *)

val density : int list -> (int * float) list
(** Value → fraction of samples (sorted by value). *)

val density_binned : bins:(int * int * string) list -> int list ->
  (string * float) list
(** Density over labelled inclusive ranges, e.g.
    [(1, 63, "1-63"); (66, max_int, "66+")]. *)

val ccdf : int list -> (int * float) list
(** Points (v, P[X > v]) at each distinct sample value. *)

val cdf : int list -> (int * float) list
val percentile : int list -> float -> int
(** [percentile xs 0.99]; raises [Invalid_argument] on an empty list. *)

val mean : int list -> float
val pp_density : Format.formatter -> (int * float) list -> unit
val pp_curve : label:string -> Format.formatter -> (int * float) list -> unit
