type point = { value : int; bound : int; traffic_share : float }

let sweep ~cost ~metric ~pcv ~base ~lo ~hi ?(observed = []) () =
  if hi < lo then invalid_arg "Sensitivity.sweep: hi < lo";
  let total = List.length observed in
  let share v =
    if total = 0 then 0.
    else
      float_of_int (List.length (List.filter (( = ) v) observed))
      /. float_of_int total
  in
  List.init
    (hi - lo + 1)
    (fun i ->
      let value = lo + i in
      let binding = (pcv, value) :: List.remove_assoc pcv base in
      {
        value;
        bound = Perf.Cost_vec.eval_exn binding cost metric;
        traffic_share = share value;
      })

let knee points ~threshold =
  let rec scan acc = function
    | [] -> None
    | p :: rest ->
        let acc = acc +. p.traffic_share in
        if acc >= threshold then Some p.value else scan acc rest
  in
  scan 0. points

let pp ppf points =
  Fmt.pf ppf "  %8s %12s %10s@." "value" "bound" "traffic";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %8d %12d %9.3f%%@." p.value p.bound
        (100. *. p.traffic_share))
    points
