type t = { kind : string; call : Meter.t -> string -> int array -> int }
type env = (string * t) list

let find env instance =
  match List.assoc_opt instance env with
  | Some ds -> ds
  | None -> invalid_arg ("Ds.find: instance not linked: " ^ instance)
