(** Concrete stateful data-structure instances.

    The production build of an NF links its stateless code against real
    data structures; this record is the linking interface.  A call charges
    its own costs (instructions, memory accesses at the instance's
    addresses, PCV observations) into the meter it is handed. *)

type t = {
  kind : string;  (** must match the program's state declaration *)
  call : Meter.t -> string -> int array -> int;
      (** [call meter meth args] executes the method and returns its
          result.  Raises [Invalid_argument] on unknown methods or
          malformed arguments — those are NF programming errors. *)
}

type env = (string * t) list
(** Instance name → implementation, the "link map" for a program. *)

val find : env -> string -> t
(** Raises [Invalid_argument] when the instance is not linked. *)
