lib/exec/interp.mli: Ds Ir Meter Net
