lib/exec/meter.mli: Hw Perf
