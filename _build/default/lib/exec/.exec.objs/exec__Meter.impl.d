lib/exec/meter.ml: Hw List Perf
