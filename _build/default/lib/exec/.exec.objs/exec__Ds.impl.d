lib/exec/ds.ml: List Meter
