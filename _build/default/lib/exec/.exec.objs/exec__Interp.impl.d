lib/exec/interp.ml: Array Ds Expr Format Hashtbl Hw Ir List Meter Net Option Perf Program Semantics Stmt
