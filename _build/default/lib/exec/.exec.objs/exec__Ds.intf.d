lib/exec/ds.mli: Meter
