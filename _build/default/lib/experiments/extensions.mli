(** Beyond the paper's evaluation: the extensions its §6 sketches, plus
    ablations of the design choices DESIGN.md calls out. *)

val throughput_table : Format.formatter -> unit
(** Guaranteed single-core throughput floors derived from the cycle
    contracts (paper §6 future work), per NF class, with and without
    batched I/O amortisation — against the observed throughput of the
    production build on a class-conforming workload. *)

val chain3 : Format.formatter -> unit
(** A three-NF chain (firewall → policer → static router) analysed
    jointly, versus naive addition of the three worst cases. *)

val ablation_coalescing : Format.formatter -> unit
(** What class-level coalescing costs in precision and buys in
    legibility: per class, the coalesced bound next to the tightest and
    loosest member-path bounds. *)

val ablation_hw_model : Format.formatter -> unit
(** What the conservative model's L1 locality tracking (§3.5) buys:
    cycle bounds with and without it. *)

val ablation_linearization : Format.formatter -> unit
(** What the solver's exact mask/shift/division linearization buys:
    feasible path counts and class separation with it on and off. *)
