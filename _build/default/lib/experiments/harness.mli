(** Shared plumbing for the experiment reproductions. *)

type prediction = { ic : int; ma : int; cycles : int }

type measurement = { ic : int; ma : int; cycles : int }

type row = {
  label : string;
  predicted : prediction;
  measured : measurement;
}

val over_estimate_pct : predicted:int -> measured:int -> float
(** [(predicted - measured) / measured], in percent. *)

val ratio : predicted:int -> measured:int -> float

val predict_exn :
  Bolt.Pipeline.t -> Symbex.Iclass.t -> prediction
(** All three metric bounds at the class's bindings; raises on an unbound
    PCV (a scenario-definition bug). *)

val measure :
  dss:Exec.Ds.env -> Ir.Program.t -> warmup:Workload.Stream.t ->
  measured:Workload.Stream.t -> measurement
(** Run warmup then the measured phase on one warm realistic simulator;
    report the per-packet maxima of the measured phase. *)

val measure_reports :
  dss:Exec.Ds.env -> Ir.Program.t -> warmup:Workload.Stream.t ->
  measured:Workload.Stream.t -> Distiller.Run.t

val pp_fig_row : Format.formatter -> row -> unit
val pp_rows : title:string -> Format.formatter -> row list -> unit
