(** The operator use-case (paper §5.2, Figure 2): picking the rehash
    threshold for the bridge's collision-attack defence.

    A uniform random workload is distilled for the bucket-traversal PCV;
    the CCDF tells the operator how often a benign workload would cross a
    candidate threshold, and the contract (evaluated as a function of [t])
    gives the instruction-count consequence. *)

type point = { traversals : int; ccdf : float; predicted_ic : int }

val figure2 :
  ?packets:int -> ?capacity:int -> ?buckets:int -> unit -> point list

val print : Format.formatter -> point list -> unit
