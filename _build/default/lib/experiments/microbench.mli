(** The hardware-model validation microbenchmarks (paper §5.1, P1/P2/P3).

    Three traversal programs with identical instruction mixes but
    different memory behaviour: P1 chases pointers through a shuffled
    (non-contiguous) linked list — no prefetching, no memory-level
    parallelism; P2 walks a list allocated contiguously — the next-line
    prefetcher helps but the loads are still dependent; P3 scans an array
    — both prefetching and MLP apply.  The closer the hardware behaves to
    the conservative model's assumptions (P1), the tighter BOLT's cycles
    bound. *)

type row = {
  name : string;
  predicted_cycles : int;
  measured_cycles : int;
  ratio : float;
}

val run : ?nodes:int -> unit -> row list
val print : Format.formatter -> row list -> unit
