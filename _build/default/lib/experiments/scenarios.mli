(** The 14 NF/packet-class scenarios of paper Figure 1 and Table 3.

    For each scenario the BOLT prediction (contract evaluated at the
    class's PCV bindings) is compared against a measured run of the
    production build: per-packet maxima of IC and MA, and realistic-
    simulator cycles.  The three pathological scenarios (NAT1, Br1, LB1)
    synthesize their mass-expiry state directly, as the paper did. *)

type params = {
  patho_capacity : int;  (** table size for the mass-expiry scenarios *)
  flows : int;  (** flows per typical scenario *)
  seed : int;
}

val default_params : params
val quick_params : params
(** Small sizes for the test suite. *)

val nat_rows : ?params:params -> unit -> Harness.row list
val bridge_rows : ?params:params -> unit -> Harness.row list
val lb_rows : ?params:params -> unit -> Harness.row list
val lpm_rows : ?params:params -> unit -> Harness.row list

val figure1_table3 : ?params:params -> unit -> Harness.row list
(** All 14 rows, in the paper's order: NAT1–4, Br1–3, LB1–5, LPM1–2. *)

val conntrack_rows : ?params:params -> unit -> Harness.row list
(** The same predicted-vs-measured comparison for the (non-paper)
    connection-tracking firewall: CT1–CT5. *)
