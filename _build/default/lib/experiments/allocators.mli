(** The data-structure-selection use-case (paper §5.3, Figures 5–7):
    allocator A (doubly-linked free list) vs allocator B (flag array with
    a rotating scan hint) inside the NAT, under low and high churn.

    Low churn keeps the flow table nearly full, so B's scans get long;
    high churn keeps it nearly empty, so B's first probe usually wins and
    A pays for its extra pointer chasing. *)

type scenario = Low_churn | High_churn

type result = {
  scenario : scenario;
  predicted_cycles_a : int;  (** new-flow packet bound, allocator A *)
  predicted_cycles_b : int;
  measured_p50_a : int;
  measured_p50_b : int;
  measured_p95_a : int;
  measured_p95_b : int;
  cdf_a : (int * float) list;
  cdf_b : (int * float) list;
  distilled_scan_p95 : int;  (** PCV s under allocator B *)
}

val run : scenario -> ?packets:int -> unit -> result
val figure5_6_7 : ?packets:int -> unit -> result * result
val print : Format.formatter -> result -> unit
