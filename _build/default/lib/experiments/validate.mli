(** Contract validation against live traffic.

    Replays a traffic sample through an NF's production build and checks
    every packet against the contract's worst-case expression evaluated
    at that packet's own distilled PCVs — the defining soundness property
    of a performance contract (paper §2.2), as a tool.  A violation means
    either the library contract or the NF's stateless analysis is wrong;
    the report pinpoints the packet and the PCV binding. *)

type violation = {
  packet_index : int;
  metric : Perf.Metric.t;
  bound : int;
  measured : int;
  binding : Perf.Pcv.binding;
}

type report = {
  packets : int;
  violations : violation list;
  worst_headroom_pct : float;
      (** smallest (bound - measured)/bound over the trace: how close the
          trace came to the bound *)
}

val run :
  worst:Perf.Cost_vec.t ->
  dss:Exec.Ds.env ->
  Ir.Program.t ->
  Workload.Stream.t ->
  report
(** [worst] is typically [Bolt.Pipeline.worst_case]; IC and MA are
    checked (cycles depend on the hardware model, not the trace). *)

val pp : Format.formatter -> report -> unit
