type row = {
  name : string;
  predicted_cycles : int;
  measured_cycles : int;
  ratio : float;
}

let node_bytes = 64
let base = 0x7000_0000

(* Per-node work: a load (charged via mem) plus a little arithmetic and a
   loop branch — the same mix for all three programs. *)
let charge_node (model : Hw.Model.t) ~addr ~dependent =
  model.Hw.Model.instr Hw.Cost.Load 1;
  model.Hw.Model.mem ~addr ~write:false ~dependent;
  model.Hw.Model.instr Hw.Cost.Alu 2;
  model.Hw.Model.instr Hw.Cost.Branch 1

let traverse model addrs ~dependent =
  List.iter (fun addr -> charge_node model ~addr ~dependent) addrs

let shuffled_addrs rng nodes =
  let order = Array.init nodes (fun i -> i) in
  for i = nodes - 1 downto 1 do
    let j = Workload.Prng.below rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  Array.to_list (Array.map (fun i -> base + (i * node_bytes)) order)

let sequential_addrs nodes =
  List.init nodes (fun i -> base + (i * node_bytes))

(* The array is scanned element by element: 8 ints per line. *)
let array_addrs nodes =
  List.init (nodes * 8) (fun i -> base + (i * 8))

let programs rng nodes =
  [
    ("P1 (non-contiguous list)", shuffled_addrs rng nodes, true);
    ("P2 (contiguous list)", sequential_addrs nodes, true);
    ("P3 (array)", array_addrs nodes, false);
  ]

let run ?(nodes = 4096) () =
  let rng = Workload.Prng.create ~seed:5 in
  List.map
    (fun (name, addrs, dependent) ->
      let conservative = Hw.Model.conservative () in
      traverse conservative addrs ~dependent;
      let realistic = Hw.Model.realistic () in
      traverse realistic addrs ~dependent;
      let predicted_cycles = conservative.Hw.Model.cycles () in
      let measured_cycles = realistic.Hw.Model.cycles () in
      {
        name;
        predicted_cycles;
        measured_cycles;
        ratio =
          float_of_int predicted_cycles
          /. float_of_int (max 1 measured_cycles);
      })
    (programs rng nodes)

let print ppf rows =
  Fmt.pf ppf "  %-26s %14s %14s %8s@." "program" "predicted cyc"
    "measured cyc" "ratio";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-26s %14d %14d %8.2f@." r.name r.predicted_cycles
        r.measured_cycles r.ratio)
    rows
