type prediction = { ic : int; ma : int; cycles : int }
type measurement = { ic : int; ma : int; cycles : int }
type row = { label : string; predicted : prediction; measured : measurement }

let over_estimate_pct ~predicted ~measured =
  if measured = 0 then 0.
  else 100. *. float_of_int (predicted - measured) /. float_of_int measured

let ratio ~predicted ~measured =
  if measured = 0 then Float.infinity
  else float_of_int predicted /. float_of_int measured

let predict_exn t cls : prediction =
  let get metric =
    match Bolt.Pipeline.predict t cls metric with
    | Ok n -> n
    | Error pcv ->
        invalid_arg
          (Printf.sprintf "scenario %s: PCV %s unbound"
             cls.Symbex.Iclass.name (Perf.Pcv.name pcv))
  in
  {
    ic = get Perf.Metric.Instructions;
    ma = get Perf.Metric.Memory_accesses;
    cycles = get Perf.Metric.Cycles;
  }

let measure_reports ~dss program ~warmup ~measured =
  let hw = Hw.Model.realistic () in
  let (_ : Distiller.Run.t) = Distiller.Run.run ~hw ~dss program warmup in
  Distiller.Run.run ~hw ~dss program measured

let measure ~dss program ~warmup ~measured =
  let result = measure_reports ~dss program ~warmup ~measured in
  {
    ic = Distiller.Run.max_ic result;
    ma = Distiller.Run.max_ma result;
    cycles = Distiller.Run.max_cycles result;
  }

let pp_fig_row ppf { label; predicted; measured } =
  Fmt.pf ppf
    "  %-6s  IC %9d / %9d (+%5.1f%%)   MA %8d / %8d (+%5.1f%%)   cyc %12d \
     / %10d (x%.2f)"
    label predicted.ic measured.ic
    (over_estimate_pct ~predicted:predicted.ic ~measured:measured.ic)
    predicted.ma measured.ma
    (over_estimate_pct ~predicted:predicted.ma ~measured:measured.ma)
    predicted.cycles measured.cycles
    (ratio ~predicted:predicted.cycles ~measured:measured.cycles)

let pp_rows ~title ppf rows =
  Fmt.pf ppf "%s@." title;
  Fmt.pf ppf "  %-6s  %-35s  %-30s  %s@." "class" "IC predicted/measured"
    "MA predicted/measured" "cycles predicted/measured";
  List.iter (fun row -> Fmt.pf ppf "%a@." pp_fig_row row) rows
