lib/experiments/allocators.mli: Format
