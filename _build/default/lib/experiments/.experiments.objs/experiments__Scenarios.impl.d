lib/experiments/scenarios.ml: Bolt Dslib Harness Hashtbl List Net Nf Symbex Workload
