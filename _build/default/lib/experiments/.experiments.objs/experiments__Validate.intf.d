lib/experiments/validate.mli: Exec Format Ir Perf Workload
