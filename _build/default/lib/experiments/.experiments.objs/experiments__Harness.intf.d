lib/experiments/harness.mli: Bolt Distiller Exec Format Ir Symbex Workload
