lib/experiments/attack.ml: Bolt Distiller Dslib Fmt Hw List Net Nf Perf Workload
