lib/experiments/microbench.mli: Format
