lib/experiments/microbench.ml: Array Fmt Hw List Workload
