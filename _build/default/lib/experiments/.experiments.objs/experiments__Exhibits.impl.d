lib/experiments/exhibits.ml: Bolt Contract Cost_vec Ds_contract Dslib Exec Fmt Harness Hw List Metric Net Nf Pcv Perf Perf_expr Symbex Workload
