lib/experiments/extensions.ml: Bolt Cost_vec Distiller Ds_contract Dslib Exec Fmt Hw List Metric Nf Pcv Perf Perf_expr Solver Symbex Workload
