lib/experiments/attack.mli: Format
