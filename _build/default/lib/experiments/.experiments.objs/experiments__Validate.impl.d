lib/experiments/validate.ml: Distiller Float Fmt Hw List Perf
