lib/experiments/allocators.ml: Array Bolt Distiller Dslib Fmt List Net Nf Perf Symbex Workload
