lib/experiments/scenarios.mli: Harness
