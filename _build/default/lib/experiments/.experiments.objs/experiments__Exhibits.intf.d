lib/experiments/exhibits.mli: Format Harness Perf
