lib/experiments/vignat.ml: Distiller Dslib Fmt List Nf Perf Workload
