lib/experiments/vignat.mli: Format
