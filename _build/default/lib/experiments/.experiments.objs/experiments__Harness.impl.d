lib/experiments/harness.ml: Bolt Distiller Float Fmt Hw List Perf Printf Symbex
