lib/experiments/extensions.mli: Format
