(** The developer use-case (paper §5.3): the VigNAT expiry-batching bug.

    With second-granularity timestamps every flow that should have expired
    during the previous second expires in one batch at the tick, giving
    ~1.5% of packets a long latency tail (paper Figure 4, Table 7).
    Millisecond granularity spreads the expirations out (Table 8). *)

type report = {
  expiry_density : (string * float) list;
      (** binned per-packet expired-flow counts (paper Tables 7/8) *)
  latency_ccdf : (int * float) list;  (** paper Figure 4 *)
  p50 : int;
  p999 : int;
  max_latency : int;
}

val run : granularity:int -> ?packets:int -> ?pool:int -> unit -> report
(** [granularity] in microseconds: 1_000_000 reproduces the bug,
    1_000 the fix. *)

val tables7_8 : ?packets:int -> unit -> report * report
(** (second granularity, millisecond granularity). *)

val print_report : label:string -> Format.formatter -> report -> unit
