(** Shared cost conventions for the data-structure library.

    Implementations charge the meter through these helpers, and the
    hand-written contracts use the [ic_*]/[ma_*] mirrors of the same
    recipes — so a contract coefficient and the code it covers can only
    drift if someone edits one side, which the contract-validation
    property tests catch. *)

val charge_alu : Exec.Meter.t -> int -> unit
val charge_branch : Exec.Meter.t -> int -> unit
val charge_move : Exec.Meter.t -> int -> unit
val charge_mul : Exec.Meter.t -> int -> unit

val charge_load :
  Exec.Meter.t -> ?dependent:bool -> addr:int -> unit -> unit
val charge_store : Exec.Meter.t -> addr:int -> unit -> unit

val charge_hash : Exec.Meter.t -> key_len:int -> unit
(** Multiplicative word-by-word hash of a register-resident key. *)

val ic_hash : key_len:int -> int
val ma_hash : key_len:int -> int

val cycles_upper : ic:Perf.Perf_expr.t -> ma:Perf.Perf_expr.t ->
  Perf.Perf_expr.t
(** The conservative cycles expression used by all library contracts:
    every instruction at a blended worst-case latency, every memory access
    from DRAM — exactly the stance of the paper's hardware model
    (§3.5). *)

val cycles_instr_factor : int
