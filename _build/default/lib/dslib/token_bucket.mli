(** Token-bucket rate limiter — the stateful core of a traffic policer.

    A classic single-rate policer: tokens accrue at [rate] per time unit
    up to [burst]; a packet conforms when the bucket holds at least its
    size.  Constant-time on every path, so its contract is two constant
    branches — a useful contrast to the PCV-rich flow-table contracts. *)

type t

val create : base:int -> rate:int -> burst:int -> ?now:int -> unit -> t
(** [rate] is tokens per time unit (bytes per microsecond by convention),
    [burst] the bucket depth in tokens. *)

val tokens : t -> now:int -> int
(** Current level after refill (uncharged — tests). *)

val conform : t -> Exec.Meter.t -> bytes:int -> now:int -> int
(** Refill, then try to spend [bytes] tokens: 1 = conformant (tokens
    consumed), 0 = excess (bucket untouched). *)

val to_ds : t -> Exec.Ds.t
(** Method: [conform(bytes, now)]. *)

val kind : string

module Recipe : sig
  val contract : Perf.Ds_contract.t list
end
