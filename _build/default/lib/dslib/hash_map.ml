(* Node layout: node [i] is one 64-byte line at [entries_base + 64*i],
   holding the key words, the value and the chain link.  Buckets are an
   array of 8-byte heads at [base]. *)

type t = {
  key_len : int;
  capacity : int;
  buckets : int;
  bucket_base : int;
  entries_base : int;
  keys : int array;  (** capacity * key_len, flattened *)
  values : int array;
  next : int array;  (** chain link, or -1 *)
  head : int array;  (** bucket heads, node index or -1 *)
  occupied : bool array;
  mutable free : int;  (** free-list head through [next] *)
  mutable size : int;
  mutable seed : int;
}

let node_size = 64

let create ?(seed = 17) ~base ~key_len ~capacity ~buckets () =
  if key_len < 1 || key_len > 6 then
    invalid_arg "Hash_map.create: key_len must be in 1..6";
  if capacity < 1 || buckets < 1 then
    invalid_arg "Hash_map.create: bad geometry";
  let next = Array.init capacity (fun i -> i + 1) in
  next.(capacity - 1) <- -1;
  {
    key_len;
    capacity;
    buckets;
    bucket_base = base;
    entries_base = base + (8 * buckets);
    keys = Array.make (capacity * key_len) 0;
    values = Array.make capacity 0;
    next;
    head = Array.make buckets (-1);
    occupied = Array.make capacity false;
    free = 0;
    size = 0;
    seed;
  }

let capacity t = t.capacity
let size t = t.size
let key_len t = t.key_len
let node_addr t i = t.entries_base + (node_size * i)
let bucket_addr t b = t.bucket_base + (8 * b)

let seed t = t.seed
let buckets t = t.buckets

let hash_of_key t key =
  let h =
    Array.fold_left
      (fun acc w -> ((acc * 0x9e3779b1) + w) land max_int)
      (t.seed * 0x85ebca77 land max_int)
      key
  in
  h mod t.buckets

type probe = { result : int; collisions : int; traversals : int }

let observe t meter ~collisions ~traversals =
  ignore t;
  Exec.Meter.observe meter Perf.Pcv.collisions collisions;
  Exec.Meter.observe meter Perf.Pcv.traversals traversals

(* Charge the shared probe prologue: entry setup, hash, bucket head. *)
let charge_prologue t meter b =
  Costing.charge_alu meter 2;
  Costing.charge_hash meter ~key_len:t.key_len;
  Costing.charge_alu meter 1;
  Costing.charge_load meter ~addr:(bucket_addr t b) ()

let charge_epilogue meter =
  Costing.charge_alu meter 1;
  Costing.charge_branch meter 1

(* Branchless fixed-length key compare (as a C memcmp over a fixed-size
   struct compiles to): every word is loaded and xor-accumulated, one
   branch at the end. *)
let compare_key t meter key i =
  let addr = node_addr t i in
  let diff = ref 0 in
  for w = 0 to t.key_len - 1 do
    Costing.charge_load meter ~addr:(addr + (8 * w)) ();
    Costing.charge_alu meter 1;
    diff := !diff lor (t.keys.((i * t.key_len) + w) lxor key.(w))
  done;
  Costing.charge_branch meter 1;
  !diff = 0

let charge_visit t meter i =
  Costing.charge_load meter ~dependent:true ~addr:(node_addr t i) ();
  Costing.charge_alu meter 1;
  Costing.charge_branch meter 1

(* Walk the chain of bucket [b] looking for [key].  Returns the node, its
   predecessor, and the probe counters. *)
let walk t meter key b =
  let rec loop i pred collisions traversals =
    if i < 0 then (-1, pred, collisions, traversals)
    else begin
      charge_visit t meter i;
      if compare_key t meter key i then (i, pred, collisions, traversals + 1)
      else loop t.next.(i) i (collisions + 1) (traversals + 1)
    end
  in
  loop t.head.(b) (-1) 0 0

let check_key t key =
  if Array.length key <> t.key_len then
    invalid_arg "Hash_map: key length mismatch"

let get t meter key =
  check_key t key;
  let b = hash_of_key t key in
  charge_prologue t meter b;
  let node, _pred, collisions, traversals = walk t meter key b in
  charge_epilogue meter;
  observe t meter ~collisions ~traversals;
  { result = (if node >= 0 then node else -1); collisions; traversals }

let value_of t meter i =
  Costing.charge_load meter ~addr:(node_addr t i + 56) ();
  t.values.(i)

let set_value t meter i v =
  Costing.charge_store meter ~addr:(node_addr t i + 56) ();
  t.values.(i) <- v

let put t meter key value =
  check_key t key;
  let b = hash_of_key t key in
  charge_prologue t meter b;
  let node, _pred, collisions, traversals = walk t meter key b in
  let result =
    if node >= 0 then begin
      (* update in place *)
      Costing.charge_store meter ~addr:(node_addr t node + 56) ();
      Costing.charge_alu meter 1;
      t.values.(node) <- value;
      node
    end
    else begin
      Costing.charge_branch meter 1;
      Costing.charge_alu meter 1;
      if t.free < 0 then -1
      else begin
        let i = t.free in
        Costing.charge_load meter ~addr:(node_addr t i) ();
        t.free <- t.next.(i);
        Costing.charge_move meter 2;
        let addr = node_addr t i in
        for w = 0 to t.key_len - 1 do
          Costing.charge_store meter ~addr:(addr + (8 * w)) ();
          t.keys.((i * t.key_len) + w) <- key.(w)
        done;
        Costing.charge_store meter ~addr:(addr + 56) ();
        t.values.(i) <- value;
        Costing.charge_store meter ~addr:(addr + 48) ();
        t.next.(i) <- t.head.(b);
        Costing.charge_store meter ~addr:(bucket_addr t b) ();
        t.head.(b) <- i;
        t.occupied.(i) <- true;
        Costing.charge_alu meter 1;
        t.size <- t.size + 1;
        i
      end
    end
  in
  charge_epilogue meter;
  observe t meter ~collisions ~traversals;
  { result; collisions; traversals }

let remove t meter key =
  check_key t key;
  let b = hash_of_key t key in
  charge_prologue t meter b;
  (* pred tracking costs one extra move per visited node *)
  let rec loop i pred collisions traversals =
    if i < 0 then (-1, pred, collisions, traversals)
    else begin
      charge_visit t meter i;
      Costing.charge_move meter 1;
      if compare_key t meter key i then (i, pred, collisions, traversals + 1)
      else loop t.next.(i) i (collisions + 1) (traversals + 1)
    end
  in
  let node, pred, collisions, traversals = loop t.head.(b) (-1) 0 0 in
  if node >= 0 then begin
    (if pred < 0 then begin
       Costing.charge_store meter ~addr:(bucket_addr t b) ();
       t.head.(b) <- t.next.(node)
     end
     else begin
       Costing.charge_store meter ~addr:(node_addr t pred + 48) ();
       t.next.(pred) <- t.next.(node)
     end);
    Costing.charge_store meter ~addr:(node_addr t node + 48) ();
    Costing.charge_move meter 1;
    t.next.(node) <- t.free;
    t.free <- node;
    t.occupied.(node) <- false;
    Costing.charge_alu meter 1;
    t.size <- t.size - 1
  end;
  charge_epilogue meter;
  observe t meter ~collisions ~traversals;
  { result = node; collisions; traversals }

let key_words t i = Array.sub t.keys (i * t.key_len) t.key_len

let reseed t meter ~seed =
  t.seed <- seed;
  (* clear every bucket head *)
  for b = 0 to t.buckets - 1 do
    Costing.charge_store meter ~addr:(bucket_addr t b) ();
    t.head.(b) <- -1
  done;
  (* re-chain each resident entry; the duplicate-check walk over the new
     chain is what makes rehashing cost grow with both occupancy and
     chain length *)
  for i = 0 to t.capacity - 1 do
    Costing.charge_branch meter 1;
    if t.occupied.(i) then begin
      let key = key_words t i in
      for w = 0 to t.key_len - 1 do
        Costing.charge_load meter ~addr:(node_addr t i + (8 * w)) ()
      done;
      Costing.charge_hash meter ~key_len:t.key_len;
      let b = hash_of_key t key in
      Costing.charge_load meter ~addr:(bucket_addr t b) ();
      let rec walk j =
        if j >= 0 then begin
          charge_visit t meter j;
          walk t.next.(j)
        end
      in
      walk t.head.(b);
      Costing.charge_store meter ~addr:(node_addr t i + 48) ();
      t.next.(i) <- t.head.(b);
      Costing.charge_store meter ~addr:(bucket_addr t b) ();
      t.head.(b) <- i
    end
  done

let fold f t init =
  let acc = ref init in
  for i = 0 to t.capacity - 1 do
    if t.occupied.(i) then acc := f i ~acc:!acc
  done;
  !acc

module Recipe = struct
  open Perf

  let c = Pcv.collisions
  let t_ = Pcv.traversals

  (* IC/MA of the probe shared by get/put/remove:
     prologue (3k+5 instr, 1 access) + per visit (3 instr, 1 access)
     + per compare (2k+1 instr, k accesses) + epilogue (2 instr). *)
  let probe ~key_len ~per_visit_extra =
    let k = key_len in
    let ic =
      Perf_expr.sum
        [
          Perf_expr.const ((3 * k) + 7);
          Perf_expr.term (3 + per_visit_extra) [ t_ ];
          Perf_expr.term ((2 * k) + 1) [ c ];
        ]
    in
    let ma =
      Perf_expr.sum
        [ Perf_expr.const 1; Perf_expr.pcv t_; Perf_expr.term k [ c ] ]
    in
    (ic, ma)

  (* Distinct cache lines touched: the bucket head plus one line per
     visited node, plus [extra] lines for the op's own writes. *)
  let lines ~extra =
    Perf_expr.add_const (1 + extra) (Perf_expr.pcv t_)

  let vec ~ic ~ma ~extra_lines =
    Cost_vec.make ~ic ~ma
      ~cycles:(Costing.cycles_upper ~ic ~ma:(lines ~extra:extra_lines))

  let get_hit ~key_len =
    (* successful compare + the caller's value read *)
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec
      ~ic:(Perf_expr.add_const ((2 * k) + 1 + 1) ic)
      ~ma:(Perf_expr.add_const (k + 1) ma)
      ~extra_lines:0

  let get_miss ~key_len =
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec ~ic ~ma ~extra_lines:0

  let put_update ~key_len =
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec
      ~ic:(Perf_expr.add_const ((2 * k) + 1 + 2) ic)
      ~ma:(Perf_expr.add_const (k + 1) ma)
      ~extra_lines:0

  let put_new ~key_len =
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec
      ~ic:(Perf_expr.add_const (2 + 1 + 2 + (k + 2) + 1 + 1) ic)
      ~ma:(Perf_expr.add_const (1 + (k + 2) + 1) ma)
      ~extra_lines:2

  let put_full ~key_len =
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec ~ic:(Perf_expr.add_const 2 ic) ~ma ~extra_lines:0

  let remove_found ~key_len =
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:1 in
    vec
      ~ic:(Perf_expr.add_const ((2 * k) + 1 + 4) ic)
      ~ma:(Perf_expr.add_const (k + 2) ma)
      ~extra_lines:2
end
