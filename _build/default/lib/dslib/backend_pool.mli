(** Backend liveness tracking for the load balancer.

    Backends prove liveness with heartbeat packets (paper class LB5); a
    backend with no heartbeat for [timeout] is considered dead (LB3). *)

type t

val create : base:int -> count:int -> timeout:int -> t
val count : t -> int

val heartbeat : t -> Exec.Meter.t -> backend:int -> now:int -> int
(** Record a heartbeat; returns 1, or 0 for an out-of-range backend id. *)

val is_alive : t -> Exec.Meter.t -> backend:int -> now:int -> int
(** 1 when the backend heartbeated within [timeout]. *)

val set_last_heartbeat : t -> backend:int -> int -> unit
(** Test/scenario setup (uncharged). *)

val to_ds : t -> Exec.Ds.t
(** Methods: [heartbeat(backend, now)], [is_alive(backend, now)]. *)

val kind : string

module Recipe : sig
  val contract : Perf.Ds_contract.t list
end
