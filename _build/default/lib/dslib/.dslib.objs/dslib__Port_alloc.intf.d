lib/dslib/port_alloc.mli: Exec Perf
