lib/dslib/mac_table.ml: Array Cost_vec Costing Ds_contract Exec Flow_table Hash_map Hw Pcv Perf Perf_expr
