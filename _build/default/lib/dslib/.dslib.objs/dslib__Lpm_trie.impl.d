lib/dslib/lpm_trie.ml: Array Cost_vec Costing Ds_contract Exec Hw Pcv Perf Perf_expr
