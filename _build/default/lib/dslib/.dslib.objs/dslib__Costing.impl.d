lib/dslib/costing.ml: Exec Hw Perf
