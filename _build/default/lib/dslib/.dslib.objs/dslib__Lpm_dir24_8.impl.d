lib/dslib/lpm_dir24_8.ml: Array Cost_vec Costing Ds_contract Exec Hashtbl Hw Perf Perf_expr
