lib/dslib/lpm_dir24_8.mli: Exec Perf
