lib/dslib/count_min.mli: Exec Perf
