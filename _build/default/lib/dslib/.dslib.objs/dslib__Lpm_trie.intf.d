lib/dslib/lpm_trie.mli: Exec Perf
