lib/dslib/count_min.ml: Array Cost_vec Costing Ds_contract Exec Hw Perf Perf_expr
