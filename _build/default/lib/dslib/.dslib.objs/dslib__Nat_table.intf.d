lib/dslib/nat_table.mli: Exec Perf Port_alloc
