lib/dslib/hash_ring.ml: Array Cost_vec Costing Ds_contract Exec Hw List Perf Perf_expr
