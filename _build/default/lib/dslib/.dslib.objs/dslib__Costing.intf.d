lib/dslib/costing.mli: Exec Perf
