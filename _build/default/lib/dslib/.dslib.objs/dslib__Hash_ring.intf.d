lib/dslib/hash_ring.mli: Exec Perf
