lib/dslib/hash_map.mli: Exec Perf
