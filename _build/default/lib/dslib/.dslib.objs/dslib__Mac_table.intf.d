lib/dslib/mac_table.mli: Exec Perf
