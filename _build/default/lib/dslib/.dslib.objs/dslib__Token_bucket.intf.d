lib/dslib/token_bucket.mli: Exec Perf
