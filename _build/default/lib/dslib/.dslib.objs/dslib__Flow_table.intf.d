lib/dslib/flow_table.mli: Exec Hash_map Perf
