lib/dslib/backend_pool.ml: Array Cost_vec Costing Ds_contract Exec Perf Perf_expr
