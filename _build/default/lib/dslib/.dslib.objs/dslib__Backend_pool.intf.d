lib/dslib/backend_pool.mli: Exec Perf
