lib/dslib/hash_map.ml: Array Cost_vec Costing Exec Pcv Perf Perf_expr
