lib/dslib/flow_table.ml: Array Cost_vec Costing Ds_contract Exec Hash_map Hw List Metric Option Pcv Perf Perf_expr
