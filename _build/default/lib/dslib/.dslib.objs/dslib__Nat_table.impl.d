lib/dslib/nat_table.ml: Array Cost_vec Costing Ds_contract Exec Flow_table Perf Perf_expr Port_alloc
