lib/dslib/layout.mli:
