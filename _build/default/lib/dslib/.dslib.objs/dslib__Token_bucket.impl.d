lib/dslib/token_bucket.ml: Array Cost_vec Costing Ds_contract Exec Perf Perf_expr
