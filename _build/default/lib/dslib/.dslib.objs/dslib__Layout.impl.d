lib/dslib/layout.ml:
