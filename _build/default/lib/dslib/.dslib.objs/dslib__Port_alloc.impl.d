lib/dslib/port_alloc.ml: Array Cost_vec Costing Exec Hw Pcv Perf Perf_expr Printf
