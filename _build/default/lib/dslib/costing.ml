let charge_alu meter n = Exec.Meter.instr meter Hw.Cost.Alu n
let charge_branch meter n = Exec.Meter.instr meter Hw.Cost.Branch n
let charge_move meter n = Exec.Meter.instr meter Hw.Cost.Move n
let charge_mul meter n = Exec.Meter.instr meter Hw.Cost.Mul n

let charge_load meter ?(dependent = false) ~addr () =
  Exec.Meter.instr meter Hw.Cost.Load 1;
  Exec.Meter.mem meter ~dependent addr

let charge_store meter ~addr () =
  Exec.Meter.instr meter Hw.Cost.Store 1;
  Exec.Meter.mem meter ~write:true addr

let charge_hash meter ~key_len =
  charge_mul meter key_len;
  charge_alu meter ((2 * key_len) + 1)

let ic_hash ~key_len = (3 * key_len) + 1
let ma_hash ~key_len:_ = 0

let cycles_instr_factor = 6

let cycles_upper ~ic ~ma =
  Perf.Perf_expr.add
    (Perf.Perf_expr.scale cycles_instr_factor ic)
    (Perf.Perf_expr.scale Hw.Cost.dram_cycles ma)
