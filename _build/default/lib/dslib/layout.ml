type allocator = { mutable next : int }

let region_size = 16 * 1024 * 1024
let base = 0x4000_0000
let allocator () = { next = base }

let region t =
  let r = t.next in
  t.next <- r + region_size;
  r
