(** Count-min sketch — approximate per-key rate accounting in constant
    space, the classic substrate for heavy-hitter detection in NFs.

    [d] rows of [w] counters; an update hashes the key once per row and
    increments one counter in each; the estimate is the minimum over the
    rows.  Every operation touches exactly [d] counters, so the method
    contract is branch-constant in [d] — a third contract shape beside
    the flow table's PCV polynomials and the token bucket's constants. *)

type t

val create : base:int -> rows:int -> width:int -> t
(** [rows] ≤ 8; [width] should be a power of two.  Raises
    [Invalid_argument] otherwise. *)

val rows : t -> int
val width : t -> int

val update : t -> Exec.Meter.t -> key:int array -> int
(** Increment the key's counters; returns the new min-estimate. *)

val estimate : t -> Exec.Meter.t -> key:int array -> int
val estimate_quiet : t -> int array -> int

val decay : t -> unit
(** Halve every counter (uncharged — done off the fast path on a timer,
    as NFs do). *)

val to_ds : t -> Exec.Ds.t
(** Methods: [update(k0..k4)] and [estimate(k0..k4)] over 5-word keys. *)

val kind : string

module Recipe : sig
  val contract : rows:int -> Perf.Ds_contract.t list
end
