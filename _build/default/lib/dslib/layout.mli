(** Address-space layout for data-structure instances.

    Every instance lives in its own region so that the cache models see
    realistic, non-overlapping address streams.  Regions are 16 MiB. *)

type allocator

val allocator : unit -> allocator
(** A fresh address space (per scenario). *)

val region : allocator -> int
(** Next region base address. *)

val region_size : int
