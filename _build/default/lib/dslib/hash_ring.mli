(** Maglev consistent-hashing ring (Eisenbud et al., NSDI'16) — the load
    balancer's backend selector.

    The lookup table is built with Maglev's permutation-filling algorithm,
    so backend shares stay balanced and mostly stable across backend
    changes; a lookup is a single table read. *)

type t

val create : base:int -> table_size:int -> backends:int list -> t
(** [table_size] should be prime (65537 in the paper; tests use smaller).
    [backends] are backend ids; must be non-empty.  Raises
    [Invalid_argument] otherwise. *)

val table_size : t -> int
val backends : t -> int list
val rebuild : t -> backends:int list -> unit
(** Configuration-time (uncharged). *)

val backend_for : t -> Exec.Meter.t -> int -> int
(** [backend_for t meter h] selects the backend for flow-hash [h]. *)

val backend_for_quiet : t -> int -> int
val share : t -> int -> float
(** Fraction of the table owned by a backend (tests). *)

val to_ds : t -> Exec.Ds.t
(** Method: [backend_for(hash)]. *)

val kind : string

module Recipe : sig
  val contract : Perf.Ds_contract.t list
end
