type t = { mutable state : int }

let create ~seed = { state = (seed lxor 0x1e3779b97f4a7c15) land max_int }

let next t =
  t.state <- (t.state + 0x1e3779b97f4a7c15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land max_int in
  (z lxor (z lsr 31)) land max_int

let below t bound =
  if bound <= 0 then invalid_arg "Prng.below: non-positive bound";
  next t mod bound

let range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + below t (hi - lo + 1)

let bool t p = float_of_int (below t 1_000_000) < p *. 1_000_000.
