(** Timed packet streams — what the traffic generator replays into an NF
    (the MoonGen stand-in). *)

type entry = { packet : Net.Packet.t; now : int; in_port : int }
type t = entry list

val entry : ?in_port:int -> ?now:int -> Net.Packet.t -> entry

val constant_rate : ?in_port:int -> start:int -> gap:int ->
  Net.Packet.t list -> t
(** Stamp packets [gap] time units apart, beginning at [start]. *)

val to_pcap : t -> Net.Pcap.record list
val of_pcap : ?in_port:int -> Net.Pcap.record list -> t
val length : t -> int
