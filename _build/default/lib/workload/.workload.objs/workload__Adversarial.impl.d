lib/workload/adversarial.ml: Array Dslib Exec Hashtbl Hw List Net Prng
