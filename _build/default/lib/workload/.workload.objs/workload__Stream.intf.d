lib/workload/stream.mli: Net
