lib/workload/prng.ml:
