lib/workload/adversarial.mli: Dslib Net Prng
