lib/workload/stream.ml: List Net
