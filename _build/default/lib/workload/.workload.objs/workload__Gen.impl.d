lib/workload/gen.ml: Array Dslib Hashtbl List Net Prng Stream
