lib/workload/gen.mli: Dslib Net Prng Stream
