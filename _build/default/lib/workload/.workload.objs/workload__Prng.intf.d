lib/workload/prng.mli:
