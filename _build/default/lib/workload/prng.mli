(** Deterministic pseudo-random numbers (splitmix64-style) so every
    workload, and therefore every experiment table, is reproducible. *)

type t

val create : seed:int -> t
val next : t -> int
(** A non-negative 62-bit value. *)

val below : t -> int -> int
(** Uniform in [0, bound). Raises [Invalid_argument] if bound <= 0. *)

val range : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. *)

val bool : t -> float -> bool
(** True with the given probability. *)
