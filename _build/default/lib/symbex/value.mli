(** Symbolic values.

    The engine evaluates IR expressions over this domain: concrete
    integers, affine combinations of symbols, or boolean formulas (the
    value of a comparison).  Operations the affine domain cannot express —
    products of unknowns, bit masks, shifts by unknowns — are
    over-approximated by fresh bounded symbols; that loses precision on
    the value but never on feasibility, which is what contract soundness
    needs. *)

type t =
  | Concrete of int
  | Lin of Solver.Linexpr.t
  | Cond of Solver.Constr.t
      (** 1 when the formula holds, 0 otherwise. *)

(** Evaluation context: a symbol generator plus the side constraints that
    fresh over-approximation symbols pick up (e.g. a boolean symbol tied
    to its defining formula). *)
type ctx = {
  gen : Solver.Sym.gen;
  mutable side : Solver.Constr.t list;
}

val ctx : Solver.Sym.gen -> ctx
val take_side : ctx -> Solver.Constr.t list
(** Drain the accumulated side constraints (the engine appends them to the
    current path). *)

val of_int : int -> t
val of_sym : Solver.Sym.t -> t
val is_concrete : t -> int option

val to_lin : ctx -> t -> Solver.Linexpr.t
(** Render as an affine term; a [Cond] becomes a fresh 0/1 symbol tied to
    its formula through a side constraint. *)

val truth : t -> Solver.Constr.t
(** The formula "this value is non-zero". *)

val unop : ctx -> Ir.Expr.unop -> t -> t
val binop : ctx -> Ir.Expr.binop -> t -> t -> t
val fresh_opaque : ctx -> ?lo:int -> ?hi:int -> string -> t
val pp : Format.formatter -> t -> unit

val exact_linearization : bool ref
(** When true (the default), masks/shifts/division by constants are
    decomposed exactly into fresh symbols plus a Euclidean side
    constraint; when false they become unconstrained bounded symbols.
    Only the linearization ablation should ever flip this. *)

val with_linearization : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the flag set, restoring it afterwards. *)
