open Solver

type t = Concrete of int | Lin of Linexpr.t | Cond of Constr.t
type ctx = { gen : Sym.gen; mutable side : Constr.t list }

let ctx gen = { gen; side = [] }

let take_side c =
  let side = c.side in
  c.side <- [];
  side

let of_int n = Concrete n
let of_sym s = Lin (Linexpr.sym s)

let is_concrete = function
  | Concrete n -> Some n
  | Lin e -> Linexpr.is_const e
  | Cond Constr.True -> Some 1
  | Cond Constr.False -> Some 0
  | Cond _ -> None

let fresh_opaque c ?(lo = 0) ?(hi = (1 lsl 32) - 1) name =
  Lin (Linexpr.sym (Sym.fresh c.gen ~lo ~hi name))

let to_lin c v =
  match v with
  | Concrete n -> Linexpr.const n
  | Lin e -> e
  | Cond Constr.True -> Linexpr.const 1
  | Cond Constr.False -> Linexpr.const 0
  | Cond f ->
      (* a fresh 0/1 symbol tied to the formula *)
      let b = Sym.fresh c.gen ~lo:0 ~hi:1 "bool" in
      let bl = Linexpr.sym b in
      let link =
        Constr.disj
          [
            Constr.conj [ f; Constr.eq bl (Linexpr.const 1) ];
            Constr.conj [ Constr.not_ f; Constr.eq bl (Linexpr.const 0) ];
          ]
      in
      c.side <- link :: c.side;
      bl

let truth = function
  | Concrete n -> if n <> 0 then Constr.True else Constr.False
  | Lin e -> Constr.ne e Linexpr.zero
  | Cond f -> f

let norm v =
  match v with
  | Lin e -> (match Linexpr.is_const e with Some n -> Concrete n | None -> v)
  | Cond Constr.True -> Concrete 1
  | Cond Constr.False -> Concrete 0
  | _ -> v

let unop c op v =
  match (op, is_concrete v) with
  | _, Some n -> Concrete (Ir.Semantics.apply_unop op n)
  | Ir.Expr.Lnot, None -> norm (Cond (Constr.not_ (truth v)))
  | Ir.Expr.Bnot, None -> fresh_opaque c "bnot"

let cmp_formula op la lb =
  match op with
  | Ir.Expr.Eq -> Constr.eq la lb
  | Ir.Expr.Ne -> Constr.ne la lb
  | Ir.Expr.Lt -> Constr.lt la lb
  | Ir.Expr.Le -> Constr.le la lb
  | Ir.Expr.Gt -> Constr.gt la lb
  | Ir.Expr.Ge -> Constr.ge la lb
  | _ -> assert false

let range_of c lin =
  Linexpr.range (fun s -> Sym.bounds s) lin |> fun (lo, hi) ->
  ignore c;
  (lo, hi)

let exact_linearization = ref true

let with_linearization value thunk =
  let saved = !exact_linearization in
  exact_linearization := value;
  Fun.protect ~finally:(fun () -> exact_linearization := saved) thunk

(* Exact Euclidean decomposition of a non-negative affine term: introduce
   fresh q, r with a = d·q + r and 0 <= r < d.  This keeps nibble masks,
   right shifts and constant division *linear*, so branch conditions on
   derived header fields stay linked to the packet bytes. *)
let euclid c a d =
  let lo, hi = range_of c a in
  let lo = max 0 lo in
  let q = Sym.fresh c.gen ~lo:(lo / d) ~hi:(max (lo / d) (hi / d)) "quot" in
  let r = Sym.fresh c.gen ~lo:0 ~hi:(d - 1) "rem" in
  let ql = Linexpr.sym q and rl = Linexpr.sym r in
  let recompose = Linexpr.add (Linexpr.scale d ql) rl in
  c.side <- Constr.eq a recompose :: c.side;
  (ql, rl)

let binop c op a b =
  match (is_concrete a, is_concrete b) with
  | Some x, Some y -> (
      match Ir.Semantics.apply_binop op x y with
      | n -> Concrete n
      | exception Ir.Semantics.Undefined _ ->
          (* symbolically unreachable unless the path is infeasible *)
          Concrete 0)
  | ca, cb -> (
      match op with
      | Ir.Expr.Add -> norm (Lin (Linexpr.add (to_lin c a) (to_lin c b)))
      | Ir.Expr.Sub -> norm (Lin (Linexpr.sub (to_lin c a) (to_lin c b)))
      | Ir.Expr.Mul -> (
          match (ca, cb) with
          | Some k, _ -> norm (Lin (Linexpr.scale k (to_lin c b)))
          | _, Some k -> norm (Lin (Linexpr.scale k (to_lin c a)))
          | _ -> fresh_opaque c "mul")
      | Ir.Expr.Shl -> (
          match cb with
          | Some k when k >= 0 && k < 31 ->
              norm (Lin (Linexpr.scale (1 lsl k) (to_lin c a)))
          | _ -> fresh_opaque c "shl")
      | Ir.Expr.Div | Ir.Expr.Rem | Ir.Expr.Shr -> (
          (* exact linearizations for constant divisors / shift amounts *)
          match (op, cb) with
          | Ir.Expr.Rem, Some k when k > 0 && !exact_linearization ->
              norm (Lin (snd (euclid c (to_lin c a) k)))
          | Ir.Expr.Shr, Some k when k >= 0 && k < 62 && !exact_linearization
            ->
              norm (Lin (fst (euclid c (to_lin c a) (1 lsl k))))
          | Ir.Expr.Div, Some k when k > 0 && !exact_linearization ->
              norm (Lin (fst (euclid c (to_lin c a) k)))
          | Ir.Expr.Rem, Some k when k > 0 ->
              fresh_opaque c ~lo:0 ~hi:(k - 1) "rem"
          | _ -> fresh_opaque c "arith")
      | Ir.Expr.And -> (
          match (ca, cb) with
          | _, Some mask when mask >= 0 ->
              (* exact when the mask is the low bits; bounded otherwise *)
              if mask land (mask + 1) = 0 && !exact_linearization then
                norm (Lin (snd (euclid c (to_lin c a) (mask + 1))))
              else fresh_opaque c ~lo:0 ~hi:mask "and"
          | Some mask, _ when mask >= 0 ->
              if mask land (mask + 1) = 0 && !exact_linearization then
                norm (Lin (snd (euclid c (to_lin c b) (mask + 1))))
              else fresh_opaque c ~lo:0 ~hi:mask "and"
          | _ -> fresh_opaque c "and")
      | Ir.Expr.Or | Ir.Expr.Xor -> fresh_opaque c "bits"
      | Ir.Expr.Eq | Ir.Expr.Ne | Ir.Expr.Lt | Ir.Expr.Le | Ir.Expr.Gt
      | Ir.Expr.Ge ->
          norm (Cond (cmp_formula op (to_lin c a) (to_lin c b)))
      | Ir.Expr.Land -> norm (Cond (Constr.conj [ truth a; truth b ]))
      | Ir.Expr.Lor -> norm (Cond (Constr.disj [ truth a; truth b ])))

let pp ppf = function
  | Concrete n -> Fmt.int ppf n
  | Lin e -> Linexpr.pp ppf e
  | Cond f -> Fmt.pf ppf "[%a]" Constr.pp f
