(** Symbolic models of stateful data-structure methods (paper §3.3).

    The analysis build replaces every stateful call with its model
    (Algorithm 2, line 2; Algorithm 3 shows lpmGet's).  A model returns
    one branch per abstract state the method distinguishes — e.g. a flow
    lookup forks into a "hit" branch whose return is an in-range value and
    a "miss" branch returning -1.  The branch tag is the abstract-state
    constraint that later selects the matching formula of the method's
    performance contract. *)

type branch = {
  tag : string;  (** must match a contract branch tag *)
  constraints : Solver.Constr.t list;
      (** constraints on the arguments and the returned symbol *)
  ret : Value.t;
}

type t = {
  kind : string;
  meth : string;
  apply : Value.ctx -> args:Value.t list -> branch list;
}

val make :
  kind:string -> meth:string ->
  (Value.ctx -> args:Value.t list -> branch list) -> t

val branch : tag:string -> ?constraints:Solver.Constr.t list -> Value.t ->
  branch

val const_branch : tag:string -> int -> branch
(** A branch returning a fixed integer. *)

val fresh_ret_branch :
  Value.ctx -> tag:string -> ?lo:int -> ?hi:int -> string -> branch
(** A branch returning a fresh bounded symbol. *)

type registry

val registry : t list -> registry
(** Raises [Invalid_argument] on duplicate (kind, meth). *)

val find : registry -> kind:string -> meth:string -> t option
val find_exn : registry -> kind:string -> meth:string -> t
val merge : registry -> registry -> registry
