type branch = {
  tag : string;
  constraints : Solver.Constr.t list;
  ret : Value.t;
}

type t = {
  kind : string;
  meth : string;
  apply : Value.ctx -> args:Value.t list -> branch list;
}

let make ~kind ~meth apply = { kind; meth; apply }
let branch ~tag ?(constraints = []) ret = { tag; constraints; ret }
let const_branch ~tag n = { tag; constraints = []; ret = Value.of_int n }

let fresh_ret_branch ctx ~tag ?lo ?hi name =
  { tag; constraints = []; ret = Value.fresh_opaque ctx ?lo ?hi name }

module KM = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type registry = t KM.t

let registry models =
  List.fold_left
    (fun acc m ->
      let key = (m.kind, m.meth) in
      if KM.mem key acc then
        invalid_arg
          (Printf.sprintf "Model.registry: duplicate model %s.%s" m.kind
             m.meth);
      KM.add key m acc)
    KM.empty models

let find reg ~kind ~meth = KM.find_opt (kind, meth) reg

let find_exn reg ~kind ~meth =
  match find reg ~kind ~meth with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Model.find_exn: no model for %s.%s" kind meth)

let merge a b = KM.union (fun _ _ latest -> Some latest) a b
