lib/symbex/model.ml: List Map Printf Solver Value
