lib/symbex/path.ml: Fmt List Solver Spacket Value
