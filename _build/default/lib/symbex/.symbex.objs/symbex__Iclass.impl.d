lib/symbex/iclass.ml: Constr Engine Ir Linexpr List Path Perf Solve Solver Spacket String
