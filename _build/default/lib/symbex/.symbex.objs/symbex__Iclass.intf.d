lib/symbex/iclass.mli: Engine Ir Path Perf Solver
