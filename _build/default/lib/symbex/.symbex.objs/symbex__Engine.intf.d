lib/symbex/engine.mli: Ir Model Path Solver Spacket
