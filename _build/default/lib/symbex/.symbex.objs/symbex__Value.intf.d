lib/symbex/value.mli: Format Ir Solver
