lib/symbex/spacket.ml: Constr Hashtbl Int Ir Linexpr List Map Printf Solver Sym Value
