lib/symbex/spacket.mli: Ir Solver Value
