lib/symbex/value.ml: Constr Fmt Fun Ir Linexpr Solver Sym
