lib/symbex/path.mli: Format Solver Spacket Value
