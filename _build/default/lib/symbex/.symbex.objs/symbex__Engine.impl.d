lib/symbex/engine.ml: Ir List Map Model Path Solver Spacket String Value
