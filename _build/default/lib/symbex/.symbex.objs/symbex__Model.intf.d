lib/symbex/model.mli: Solver Value
