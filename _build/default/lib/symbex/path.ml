type call = {
  index : int;
  instance : string;
  kind : string;
  meth : string;
  tag : string;
  ret : Solver.Linexpr.t;
}

type pcv_loop = { name : string; bound : int }
type action = Forward of Value.t | Drop | Flood

type t = {
  id : int;
  constraints : Solver.Constr.t list;
  calls : call list;
  loops : pcv_loop list;
  action : action;
  view : Spacket.view;
}

let tags_of t ~instance ~meth =
  List.filter_map
    (fun c ->
      if c.instance = instance && c.meth = meth then Some c.tag else None)
    t.calls

let pp_action ppf = function
  | Forward v -> Fmt.pf ppf "forward(%a)" Value.pp v
  | Drop -> Fmt.string ppf "drop"
  | Flood -> Fmt.string ppf "flood"

let pp ppf t =
  Fmt.pf ppf "@[<v>path %d: %a@,  calls: %a@,  constraints: %d@]" t.id
    pp_action t.action
    Fmt.(
      list ~sep:(any "; ") (fun ppf c ->
          pf ppf "%s.%s[%s]" c.instance c.meth c.tag))
    t.calls
    (List.length t.constraints)
