(** Input packet classes (paper §2.2).

    A class is a specification of which inputs belong to it — a predicate
    over the shared input-packet symbols — plus the abstract-state
    assumptions ("established flow", "no expirations") expressed as
    required model branch tags, plus the PCV binding to use when the
    operator asks for a concrete number. *)

type requirement = {
  instance : string;
  meth : string;
  tag : string;  (** every call to instance.meth must have taken this tag *)
}

type t = {
  name : string;
  description : string;
  predicate : Engine.result -> Solver.Constr.t list;
  requires : requirement list;
  forbids : (string * string) list;
      (** [(instance, meth)] pairs a member path must never call. *)
  bindings : Perf.Pcv.binding;
}

val make :
  name:string -> ?description:string ->
  ?predicate:(Engine.result -> Solver.Constr.t list) ->
  ?requires:requirement list -> ?forbids:(string * string) list ->
  ?bindings:Perf.Pcv.binding -> unit -> t

val req : string -> string -> string -> requirement
(** [req instance meth tag]. *)

val matches : t -> Engine.result -> Path.t -> bool
(** Path membership: the class predicate must be satisfiable together with
    the path constraints, and every requirement must hold (at least one
    call to the method, all with the required tag). *)

(** {1 Predicate helpers} *)

val field : Engine.result -> Ir.Expr.width -> int -> Solver.Linexpr.t
(** Big-endian input field at a byte offset, as an affine term over the
    input byte symbols. *)

val field_eq : Ir.Expr.width -> int -> int -> Engine.result ->
  Solver.Constr.t list
val field_ne : Ir.Expr.width -> int -> int -> Engine.result ->
  Solver.Constr.t list
val in_port_is : int -> Engine.result -> Solver.Constr.t list
val conj_preds :
  (Engine.result -> Solver.Constr.t list) list ->
  Engine.result -> Solver.Constr.t list
