type t = {
  l1 : Cache.t;
  mutable cycles : int;
  mutable instrs : int;
  mutable mems : int;
}

let create () = { l1 = Cache.l1d (); cycles = 0; instrs = 0; mems = 0 }

let instr t kind n =
  t.instrs <- t.instrs + n;
  t.cycles <- t.cycles + (n * Cost.worst_case_cycles kind)

let mem t ~addr ~write:_ ~dependent:_ =
  t.mems <- t.mems + 1;
  let hit = Cache.access t.l1 addr in
  t.cycles <-
    t.cycles + (if hit then Cost.l1_hit_cycles else Cost.dram_cycles)

let cycles t = t.cycles
let instr_count t = t.instrs
let mem_count t = t.mems
let mem_cost_upper = Cost.dram_cycles
let mem_cost_l1 = Cost.l1_hit_cycles
