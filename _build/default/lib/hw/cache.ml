type t = {
  sets : int array array;  (** [sets.(i)] holds line tags, LRU order *)
  fill : int array;  (** number of valid ways per set *)
  set_count : int;
  mutable hits : int;
  mutable misses : int;
}

let line_of_addr addr = addr / Cost.line_size

let create ~size_bytes ~assoc =
  let lines = size_bytes / Cost.line_size in
  if lines = 0 || lines mod assoc <> 0 then
    invalid_arg "Cache.create: size must be a multiple of assoc * line_size";
  let set_count = lines / assoc in
  {
    sets = Array.init set_count (fun _ -> Array.make assoc (-1));
    fill = Array.make set_count 0;
    set_count;
    hits = 0;
    misses = 0;
  }

let l1d () = create ~size_bytes:(32 * 1024) ~assoc:8
let l2 () = create ~size_bytes:(256 * 1024) ~assoc:8
let l3 () = create ~size_bytes:(2560 * 1024) ~assoc:20

let find_way set fill tag =
  let rec loop i = if i >= fill then None else
    if set.(i) = tag then Some i else loop (i + 1)
  in
  loop 0

(* Move way [i] to the front (most-recently-used position). *)
let promote set i =
  let tag = set.(i) in
  Array.blit set 0 set 1 i;
  set.(0) <- tag

let insert_line t line =
  let idx = line mod t.set_count in
  let set = t.sets.(idx) in
  let fill = t.fill.(idx) in
  match find_way set fill line with
  | Some i -> promote set i
  | None ->
      let assoc = Array.length set in
      let n = min fill (assoc - 1) in
      Array.blit set 0 set 1 n;
      set.(0) <- line;
      if fill < assoc then t.fill.(idx) <- fill + 1

let access t addr =
  let line = line_of_addr addr in
  let idx = line mod t.set_count in
  let set = t.sets.(idx) in
  match find_way set t.fill.(idx) line with
  | Some i ->
      promote set i;
      t.hits <- t.hits + 1;
      true
  | None ->
      insert_line t line;
      t.misses <- t.misses + 1;
      false

let probe t addr =
  let line = line_of_addr addr in
  let idx = line mod t.set_count in
  find_way t.sets.(idx) t.fill.(idx) line <> None

let insert t addr = insert_line t (line_of_addr addr)

let remove t addr =
  let line = line_of_addr addr in
  let idx = line mod t.set_count in
  let set = t.sets.(idx) in
  let fill = t.fill.(idx) in
  match find_way set fill line with
  | None -> ()
  | Some i ->
      Array.blit set (i + 1) set i (fill - i - 1);
      set.(fill - 1) <- -1;
      t.fill.(idx) <- fill - 1

let clear t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.sets;
  Array.fill t.fill 0 t.set_count 0;
  t.hits <- 0;
  t.misses <- 0

let stats t = (t.hits, t.misses)
