(** BOLT's conservative hardware model (paper §3.5).

    Compute instructions are charged their worst-case latency from the
    cost table.  Memory accesses are assumed to be served from main memory
    unless the model can definitively prove an L1D hit — which it can only
    do by tracking the spatial and temporal locality of the accesses of
    the path itself, starting from a cold cache.  Out-of-order scheduling,
    memory-level parallelism and prefetching are proprietary and therefore
    not modelled; this makes every estimate a sound upper bound. *)

type t

val create : unit -> t
(** A fresh model with a cold L1D, to be used for one execution path. *)

val instr : t -> Cost.kind -> int -> unit
(** [instr t kind n] charges [n] instructions of [kind]. *)

val mem : t -> addr:int -> write:bool -> dependent:bool -> unit
(** Charge one memory access.  [dependent] is ignored — the conservative
    model never overlaps misses. *)

val cycles : t -> int
val instr_count : t -> int
val mem_count : t -> int

val mem_cost_upper : int
(** The per-access cost the model charges when it cannot prove an L1 hit
    (DRAM latency).  Used by hand-written data-structure contracts. *)

val mem_cost_l1 : int
