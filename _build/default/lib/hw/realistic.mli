(** A realistic hardware simulator, standing in for the paper's testbed.

    The paper measures ground-truth cycles on a Xeon E5-2667v2; we have no
    hardware, so "measured" cycles come from this simulator instead.  It
    models exactly the proprietary features the conservative model omits —
    warm multi-level caches, a next-line hardware prefetcher, memory-level
    parallelism across independent misses, and superscalar retirement —
    which is what produces the paper's 2–9× gap between the conservative
    bound and reality (paper Table 3 and the P1/P2/P3 experiment). *)

type t

val create : unit -> t
(** Fresh simulator with cold caches.  Caches stay warm across packets,
    as on real hardware; create one per scenario and feed it the whole
    packet sequence. *)

val instr : t -> Cost.kind -> int -> unit
(** Instructions retire superscalar; a deterministic fraction of branches
    mispredicts and pays a pipeline-flush penalty. *)

val mem : t -> addr:int -> write:bool -> dependent:bool -> unit
(** [dependent] marks an access whose address depends on the previous
    load (pointer chasing); dependent misses cannot overlap. *)

val packet_boundary : t -> regions:(int * int) list -> unit
(** A new packet arrived by DMA: evict the given [(base, size)] regions
    from L1/L2 and park them in L3 (DDIO), as NIC writes do on real
    hardware. *)

val cycles : t -> int
val instr_count : t -> int
val mem_count : t -> int
