(** Set-associative LRU cache simulator.

    Used twice: as the cold, per-path L1D of BOLT's conservative hardware
    model (an access is "provably L1" only if an earlier access on the same
    path brought the line in and it was not evicted), and as the warm
    L1/L2/L3 hierarchy of the realistic model. *)

type t

val create : size_bytes:int -> assoc:int -> t
(** Raises [Invalid_argument] if geometry is inconsistent (sizes must be
    multiples of [assoc * line_size]). *)

val l1d : unit -> t
(** A 32 KiB, 8-way L1 data cache. *)

val l2 : unit -> t
(** A 256 KiB, 8-way L2. *)

val l3 : unit -> t
(** A 2.5 MiB (per-core slice), 20-way L3. *)

val access : t -> int -> bool
(** [access t addr] touches the line containing byte address [addr];
    returns [true] on hit.  On miss the line is filled (LRU victim
    evicted). *)

val probe : t -> int -> bool
(** [probe t addr] is a hit test without state change. *)

val insert : t -> int -> unit
(** Fill a line without counting an access (used for prefetches). *)

val remove : t -> int -> unit
(** Invalidate the line containing the address, if present (DMA). *)

val clear : t -> unit
val line_of_addr : int -> int
val stats : t -> int * int
(** [(hits, misses)] since creation or [clear]. *)
