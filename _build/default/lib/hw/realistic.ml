type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Cache.t;  (** 64-entry, 4 KiB pages, modelled as a tiny cache *)
  predicted : (int, unit) Hashtbl.t;  (** lines the prefetcher has in flight *)
  mutable last_miss_line : int;
  mutable last_miss_instr : int;  (** instr count at the last DRAM miss *)
  mutable overlap : int;  (** current memory-level parallelism degree *)
  mutable instrs : int;
  mutable mems : int;
  mutable mem_cycles : int;
  mutable branches : int;
}

let create () =
  {
    l1 = Cache.l1d ();
    l2 = Cache.l2 ();
    l3 = Cache.l3 ();
    (* 64 page-table entries of one "line" each: reuse the cache machinery
       by mapping a 4 KiB page to a 64-byte pseudo-line *)
    dtlb = Cache.create ~size_bytes:(64 * 64) ~assoc:4;
    predicted = Hashtbl.create 256;
    last_miss_line = min_int;
    last_miss_instr = min_int;
    overlap = 1;
    instrs = 0;
    mems = 0;
    mem_cycles = 0;
    branches = 0;
  }

(* One in [mispredict_rate] branches misses in the predictor. *)
let mispredict_rate = 32
let mispredict_penalty = 15

let instr t kind n =
  t.instrs <- t.instrs + n;
  if kind = Cost.Branch then begin
    t.branches <- t.branches + n;
    let mispredicts =
      (t.branches / mispredict_rate) - ((t.branches - n) / mispredict_rate)
    in
    t.mem_cycles <- t.mem_cycles + (mispredicts * mispredict_penalty)
  end

(* DMA delivered a fresh packet: its buffer (and the descriptor ring
   entry) leave the core caches; DDIO parks the lines in L3. *)
let packet_boundary t ~regions =
  List.iter
    (fun (base, size) ->
      let lines = (size + Cost.line_size - 1) / Cost.line_size in
      for i = 0 to lines - 1 do
        let addr = base + (i * Cost.line_size) in
        Cache.remove t.l1 addr;
        Cache.remove t.l2 addr;
        Cache.insert t.l3 addr
      done)
    regions

(* Misses closer together than this many instructions may overlap. *)
let burst_window = 48

let train_prefetcher t line =
  if line = t.last_miss_line + 1 then begin
    if Hashtbl.length t.predicted > 4096 then Hashtbl.reset t.predicted;
    Hashtbl.replace t.predicted (line + 1) ();
    Hashtbl.replace t.predicted (line + 2) ()
  end

let tlb_miss_penalty = 7

let mem t ~addr ~write:_ ~dependent =
  t.mems <- t.mems + 1;
  (* address translation first: a DTLB miss costs a (mostly cached)
     page walk *)
  let page_pseudo_addr = addr / 4096 * Cost.line_size in
  if not (Cache.access t.dtlb page_pseudo_addr) then
    t.mem_cycles <- t.mem_cycles + tlb_miss_penalty;
  let line = Cache.line_of_addr addr in
  let cost =
    if Cache.access t.l1 addr then Cost.l1_hit_cycles
    else if Hashtbl.mem t.predicted line then begin
      (* The prefetch is in flight.  A dependent access still waits for
         part of the fill; an independent one overlaps it entirely. *)
      Hashtbl.remove t.predicted line;
      Hashtbl.replace t.predicted (line + 1) ();
      Cache.insert t.l2 addr;
      if dependent then Cost.prefetched_hit_cycles else Cost.l1_hit_cycles
    end
    else if Cache.access t.l2 addr then Cost.l2_hit_cycles
    else if Cache.access t.l3 addr then Cost.l3_hit_cycles
    else begin
      (* DRAM.  Independent misses inside a burst overlap up to mlp_max. *)
      let in_burst = t.instrs - t.last_miss_instr < burst_window in
      let overlap =
        if dependent || not in_burst then 1
        else min Cost.mlp_max (t.overlap + 1)
      in
      t.overlap <- overlap;
      t.last_miss_instr <- t.instrs;
      Cost.dram_cycles / overlap
    end
  in
  train_prefetcher t line;
  if not (Cache.probe t.l1 addr) then Cache.insert t.l1 addr;
  t.last_miss_line <- (if cost >= Cost.l2_hit_cycles then line
                       else t.last_miss_line);
  t.mem_cycles <- t.mem_cycles + cost

let cycles t = (t.instrs / Cost.ipc) + t.mem_cycles
let instr_count t = t.instrs
let mem_count t = t.mems
