lib/hw/realistic.mli: Cost
