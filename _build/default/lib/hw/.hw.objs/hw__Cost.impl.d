lib/hw/cost.ml:
