lib/hw/cost.mli:
