lib/hw/cache.mli:
