lib/hw/conservative.mli: Cost
