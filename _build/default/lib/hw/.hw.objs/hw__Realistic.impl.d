lib/hw/realistic.ml: Cache Cost Hashtbl List
