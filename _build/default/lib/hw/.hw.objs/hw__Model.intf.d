lib/hw/model.mli: Cost Realistic
