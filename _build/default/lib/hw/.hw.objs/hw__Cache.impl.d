lib/hw/cache.ml: Array Cost
