lib/hw/conservative.ml: Cache Cost
