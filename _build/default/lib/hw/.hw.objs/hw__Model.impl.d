lib/hw/model.ml: Conservative Cost Realistic
