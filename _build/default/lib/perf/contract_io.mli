(** Contract interchange.

    A contract is the artifact BOLT hands to people who will never run
    BOLT — operators provisioning a network, dashboards evaluating a
    bound at live PCV values.  These codecs serialise contracts (and
    data-structure method contracts) to a stable JSON schema and read
    them back.

    Schema sketch:
    {v
    { "nf": "nat",
      "entries": [
        { "class": "NAT3", "description": "...", "paths": 1,
          "cost": { "IC":     [ {"coeff": 61, "pcvs": ["e"]}, ... ],
                    "MA":     [ ... ],
                    "cycles": [ ... ] } } ] }
    v}
    A monomial's [pcvs] lists variables with repetition encoding the
    exponent (["e", "e"] = e²). *)

val expr_to_json : Perf_expr.t -> Json.t
val expr_of_json : Json.t -> (Perf_expr.t, string) result
val cost_vec_to_json : Cost_vec.t -> Json.t
val cost_vec_of_json : Json.t -> (Cost_vec.t, string) result
val contract_to_json : Contract.t -> Json.t
val contract_of_json : Json.t -> (Contract.t, string) result
val ds_contract_to_json : Ds_contract.t -> Json.t
val ds_contract_of_json : Json.t -> (Ds_contract.t, string) result

val contract_to_string : ?indent:bool -> Contract.t -> string
val contract_of_string : string -> (Contract.t, string) result

val write_contract : path:string -> Contract.t -> unit
val read_contract : path:string -> (Contract.t, string) result
