type t = Instructions | Memory_accesses | Cycles

let all = [ Instructions; Memory_accesses; Cycles ]

let to_string = function
  | Instructions -> "IC"
  | Memory_accesses -> "MA"
  | Cycles -> "cycles"

let long_name = function
  | Instructions -> "instruction count"
  | Memory_accesses -> "memory accesses"
  | Cycles -> "execution cycles"

let rank = function Instructions -> 0 | Memory_accesses -> 1 | Cycles -> 2
let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let pp ppf t = Fmt.string ppf (to_string t)
