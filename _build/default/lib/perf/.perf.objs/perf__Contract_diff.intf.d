lib/perf/contract_diff.mli: Contract Format Metric Pcv
