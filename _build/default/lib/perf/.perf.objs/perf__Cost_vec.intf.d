lib/perf/cost_vec.mli: Format Metric Pcv Perf_expr
