lib/perf/perf_expr.ml: Fmt Int List Map Pcv Printf Stdlib
