lib/perf/json.ml: Buffer Char Fmt List Printf Result String
