lib/perf/perf_expr.mli: Format Pcv
