lib/perf/pcv.ml: Fmt List Printf String
