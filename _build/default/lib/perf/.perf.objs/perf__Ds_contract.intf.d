lib/perf/ds_contract.mli: Cost_vec Format
