lib/perf/contract.mli: Cost_vec Format Metric Pcv
