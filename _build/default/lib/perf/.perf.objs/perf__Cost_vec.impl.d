lib/perf/cost_vec.ml: Fmt List Metric Pcv Perf_expr
