lib/perf/contract_io.ml: Contract Cost_vec Ds_contract Fun Json List Metric Pcv Perf_expr Result
