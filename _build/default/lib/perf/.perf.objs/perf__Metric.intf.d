lib/perf/metric.mli: Format
