lib/perf/pcv.mli: Format
