lib/perf/contract_io.mli: Contract Cost_vec Ds_contract Json Perf_expr
