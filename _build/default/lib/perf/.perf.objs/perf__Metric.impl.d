lib/perf/metric.ml: Fmt Int
