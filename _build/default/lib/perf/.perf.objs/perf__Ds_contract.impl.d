lib/perf/ds_contract.ml: Cost_vec Fmt List Map Printf String
