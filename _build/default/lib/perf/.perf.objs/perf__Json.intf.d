lib/perf/json.mli: Format
