lib/perf/contract_diff.ml: Contract Cost_vec Fmt List Metric Pcv Perf_expr
