lib/perf/contract.ml: Cost_vec Fmt List Metric Pcv Perf_expr Printf Stdlib String
