(** Performance-critical variables (PCVs).

    A PCV captures the influence on NF performance of anything other than
    the input packet itself: the state the NF has accumulated (hash-table
    occupancy, collision chains, pending expirations) and its configuration
    (matched prefix length in a routing table).  Performance contracts are
    polynomial expressions over PCVs; see {!Perf_expr}. *)

type t = private string
(** A PCV is identified by a short, human-legible name such as ["e"]
    (expired flows), ["c"] (hash collisions) or ["l"] (matched prefix
    length).  Names are compared with [String.compare]. *)

val v : string -> t
(** [v name] makes a PCV from [name].  Raises [Invalid_argument] if [name]
    is empty or contains characters outside [a-z A-Z 0-9 _]. *)

val name : t -> string
(** [name pcv] is the PCV's name. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 The standard PCVs used by the paper's contracts} *)

val expired : t
(** [e] — number of flow/MAC entries expired while processing the packet. *)

val collisions : t
(** [c] — number of hash collisions encountered. *)

val traversals : t
(** [t] — number of hash-table bucket traversals. *)

val occupancy : t
(** [o] — number of entries resident in the table. *)

val prefix_len : t
(** [l] — length of the longest matching IP prefix. *)

val ip_options : t
(** [n] — number of IP options carried by the packet. *)

val scan : t
(** [s] — slots scanned by an array-based allocator before finding a free
    one. *)

(** {1 Bindings} *)

type binding = (t * int) list
(** An assignment of concrete values to PCVs, as produced by the Distiller
    or chosen by an operator. *)

val lookup : binding -> t -> int option
val pp_binding : Format.formatter -> binding -> unit
