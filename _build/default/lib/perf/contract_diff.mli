(** Contract diffing — performance regression review.

    Contracts make performance reviewable like code: derive one per
    commit, diff them, and a reviewer sees *which input class* got more
    expensive and *in which PCV coefficient* — e.g. "Known flows gained
    +12 instructions per hash collision" — rather than a noisy benchmark
    delta. *)

type coeff_change = {
  pcvs : Pcv.t list;  (** the monomial; [] is the constant term *)
  before : int;
  after : int;
}

type entry_change =
  | Added of Contract.entry
  | Removed of Contract.entry
  | Changed of {
      class_name : string;
      metric : Metric.t;
      coeffs : coeff_change list;  (** non-empty *)
    }

type t = entry_change list

val diff : Contract.t -> Contract.t -> t
(** [diff before after]; classes are matched by name.  Empty when the
    contracts are semantically identical. *)

val is_empty : t -> bool

val regressions : t -> entry_change list
(** Changes that can increase some bound: added classes, or changes with
    any coefficient growing. *)

val pp : Format.formatter -> t -> unit
