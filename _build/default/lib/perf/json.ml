type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if indent then "\": " else "\":");
            emit (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string ~indent:true t)

(* ---- Parser ------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then error "bad \\u escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 ->
                  Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_string buf "?"
              | None -> error "bad \\u escape");
              loop ()
          | _ -> error "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then error "expected a number";
    match int_of_string_opt (String.sub input start (!pos - start)) with
    | Some v -> v
    | None -> error "number out of range"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> error "expected , or }"
          in
          fields []
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at %d: %s" at msg)

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> Ok v
      | None -> Error ("missing field " ^ key))
  | _ -> Error ("not an object while looking for " ^ key)

let to_int = function Int n -> Ok n | _ -> Error "expected an integer"
let to_str = function String s -> Ok s | _ -> Error "expected a string"
let to_list = function List l -> Ok l | _ -> Error "expected a list"
let ( let* ) = Result.bind
