(** A triple of performance expressions, one per supported metric.

    Contracts are metric-specific; in practice BOLT derives all three
    metrics in one analysis pass, so bundling them is convenient. *)

type t = {
  ic : Perf_expr.t;  (** instruction count *)
  ma : Perf_expr.t;  (** memory accesses *)
  cycles : Perf_expr.t;  (** execution cycles under the hardware model *)
}

val zero : t
val make : ic:Perf_expr.t -> ma:Perf_expr.t -> cycles:Perf_expr.t -> t

val of_consts : ic:int -> ma:int -> cycles:int -> t
(** Constant-cost vector, e.g. for a straight-line code fragment. *)

val get : t -> Metric.t -> Perf_expr.t
val add : t -> t -> t
val sum : t list -> t
val scale : int -> t -> t

val max_upper : t -> t -> t
(** Metric-wise conservative maximum (see {!Perf_expr.max_upper}). *)

val max_upper_list : t list -> t

val eval : Pcv.binding -> t -> Metric.t -> (int, Pcv.t) result
val eval_exn : Pcv.binding -> t -> Metric.t -> int
val pcvs : t -> Pcv.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
