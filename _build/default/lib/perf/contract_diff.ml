type coeff_change = { pcvs : Pcv.t list; before : int; after : int }

type entry_change =
  | Added of Contract.entry
  | Removed of Contract.entry
  | Changed of {
      class_name : string;
      metric : Metric.t;
      coeffs : coeff_change list;
    }

type t = entry_change list

let expand_vars mono =
  List.concat_map (fun (v, e) -> List.init e (fun _ -> v)) mono

let expr_changes a b =
  (* union of monomials in either expression *)
  let monos =
    List.map fst (Perf_expr.terms a) @ List.map fst (Perf_expr.terms b)
    |> List.sort_uniq compare
  in
  List.filter_map
    (fun mono ->
      let vars = expand_vars mono in
      let before = Perf_expr.coefficient a vars in
      let after = Perf_expr.coefficient b vars in
      if before = after then None else Some { pcvs = vars; before; after })
    monos

let diff (before : Contract.t) (after : Contract.t) =
  let removed =
    List.filter_map
      (fun (e : Contract.entry) ->
        if Contract.find after ~class_name:e.Contract.class_name = None then
          Some (Removed e)
        else None)
      before.Contract.entries
  in
  let added_or_changed =
    List.concat_map
      (fun (e : Contract.entry) ->
        match Contract.find before ~class_name:e.Contract.class_name with
        | None -> [ Added e ]
        | Some old ->
            List.filter_map
              (fun metric ->
                match
                  expr_changes
                    (Cost_vec.get old.Contract.cost metric)
                    (Cost_vec.get e.Contract.cost metric)
                with
                | [] -> None
                | coeffs ->
                    Some
                      (Changed
                         {
                           class_name = e.Contract.class_name;
                           metric;
                           coeffs;
                         }))
              Metric.all)
      after.Contract.entries
  in
  removed @ added_or_changed

let is_empty t = t = []

let regressions t =
  List.filter
    (function
      | Added _ -> true
      | Removed _ -> false
      | Changed { coeffs; _ } ->
          List.exists (fun c -> c.after > c.before) coeffs)
    t

let pp_mono ppf = function
  | [] -> Fmt.string ppf "constant"
  | vars -> Fmt.(list ~sep:(any "\u{00B7}") Pcv.pp) ppf vars

let pp ppf t =
  if t = [] then Fmt.string ppf "contracts are identical"
  else
    List.iter
      (function
        | Added e ->
            Fmt.pf ppf "+ class %s (new)@." e.Contract.class_name
        | Removed e ->
            Fmt.pf ppf "- class %s (gone)@." e.Contract.class_name
        | Changed { class_name; metric; coeffs } ->
            List.iter
              (fun { pcvs; before; after } ->
                Fmt.pf ppf "~ %s [%a]: %a  %d -> %d (%+d)@." class_name
                  Metric.pp metric pp_mono pcvs before after (after - before))
              coeffs)
      t
