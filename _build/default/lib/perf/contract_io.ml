open Json

let expr_to_json expr =
  Json.List
    (List.map
       (fun (mono, coeff) ->
         let pcvs =
           List.concat_map
             (fun (v, e) -> List.init e (fun _ -> String (Pcv.name v)))
             mono
         in
         Obj [ ("coeff", Int coeff); ("pcvs", List pcvs) ])
       (Perf_expr.terms expr))

let result_map f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = f item in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let expr_of_json json =
  let* entries = to_list json in
  let* parsed =
    result_map
      (fun entry ->
        let* coeff = let* c = member "coeff" entry in to_int c in
        let* pcv_json = let* p = member "pcvs" entry in to_list p in
        let* names = result_map to_str pcv_json in
        let* vars =
          try Ok (List.map Pcv.v names)
          with Invalid_argument msg -> Error msg
        in
        Ok (Perf_expr.term coeff vars))
      entries
  in
  Ok (Perf_expr.sum parsed)

let cost_vec_to_json (v : Cost_vec.t) =
  Obj
    (List.map
       (fun metric ->
         (Metric.to_string metric, expr_to_json (Cost_vec.get v metric)))
       Metric.all)

let cost_vec_of_json json =
  let* ic = let* j = member "IC" json in expr_of_json j in
  let* ma = let* j = member "MA" json in expr_of_json j in
  let* cycles = let* j = member "cycles" json in expr_of_json j in
  Ok (Cost_vec.make ~ic ~ma ~cycles)

let entry_to_json (e : Contract.entry) =
  Obj
    [
      ("class", String e.Contract.class_name);
      ("description", String e.Contract.description);
      ("paths", Int e.Contract.path_count);
      ("cost", cost_vec_to_json e.Contract.cost);
    ]

let entry_of_json json =
  let* class_name = let* j = member "class" json in to_str j in
  let* description = let* j = member "description" json in to_str j in
  let* path_count = let* j = member "paths" json in to_int j in
  let* cost = let* j = member "cost" json in cost_vec_of_json j in
  Ok (Contract.entry ~class_name ~description ~path_count cost)

let contract_to_json (c : Contract.t) =
  Obj
    [
      ("nf", String c.Contract.nf);
      ("entries", List (List.map entry_to_json c.Contract.entries));
    ]

let contract_of_json json =
  let* nf = let* j = member "nf" json in to_str j in
  let* entry_json = let* j = member "entries" json in to_list j in
  let* entries = result_map entry_of_json entry_json in
  try Ok (Contract.make ~nf entries)
  with Invalid_argument msg -> Error msg

let ds_contract_to_json (c : Ds_contract.t) =
  Obj
    [
      ("ds_kind", String c.Ds_contract.ds_kind);
      ("method", String c.Ds_contract.meth);
      ( "branches",
        List
          (List.map
             (fun (b : Ds_contract.branch) ->
               Obj
                 [
                   ("tag", String b.Ds_contract.tag);
                   ("note", String b.Ds_contract.note);
                   ("cost", cost_vec_to_json b.Ds_contract.cost);
                 ])
             c.Ds_contract.branches) );
    ]

let ds_contract_of_json json =
  let* ds_kind = let* j = member "ds_kind" json in to_str j in
  let* meth = let* j = member "method" json in to_str j in
  let* branch_json = let* j = member "branches" json in to_list j in
  let* branches =
    result_map
      (fun b ->
        let* tag = let* j = member "tag" b in to_str j in
        let* note = let* j = member "note" b in to_str j in
        let* cost = let* j = member "cost" b in cost_vec_of_json j in
        Ok (Ds_contract.branch ~tag ~note cost))
      branch_json
  in
  try Ok (Ds_contract.make ~ds_kind ~meth branches)
  with Invalid_argument msg -> Error msg

let contract_to_string ?indent c = to_string ?indent (contract_to_json c)

let contract_of_string s =
  let* json = of_string s in
  contract_of_json json

let write_contract ~path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contract_to_string ~indent:true c))

let read_contract ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      contract_of_string (really_input_string ic (in_channel_length ic)))
