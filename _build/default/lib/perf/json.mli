(** A minimal JSON representation with a printer and parser.

    Contracts are an interchange artifact — an operator should be able to
    consume one without running BOLT — so the library carries its own
    dependency-free codec.  Integers only (contract coefficients are
    integral); strings support the escapes JSON requires. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parses the subset emitted by {!to_string} (no floats); errors carry a
    character position. *)

(** {1 Accessors} *)

val member : string -> t -> (t, string) result
val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
