(** Performance metrics.

    Performance contracts are metric-specific (paper §2.2).  The BOLT
    prototype supports three metrics: dynamic instruction count, memory
    access count, and execution cycles. *)

type t =
  | Instructions  (** number of executed instructions (IC) *)
  | Memory_accesses  (** number of memory reads and writes (MA) *)
  | Cycles  (** execution cycles under a hardware model *)

val all : t list
(** All supported metrics, in presentation order. *)

val to_string : t -> string
(** Short label used in reports: ["IC"], ["MA"], ["cycles"]. *)

val long_name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
