(** NF-level performance contracts.

    A contract C{_N}{^U}(i) maps every input class [i] to a performance
    expression over PCVs (paper §2.2).  This module only represents and
    renders contracts; deriving them from NF code is the job of
    [Bolt.Pipeline]. *)

type entry = {
  class_name : string;  (** e.g. ["NAT3"] or ["Known flows (forwarded)"]. *)
  description : string;  (** Human-readable class specification. *)
  cost : Cost_vec.t;
      (** Conservative cost of the worst execution path reachable by
          packets in this class. *)
  path_count : int;
      (** Number of feasible execution paths coalesced into [cost]. *)
}

type t = {
  nf : string;  (** Name of the network function. *)
  entries : entry list;
}

val make : nf:string -> entry list -> t
val entry :
  class_name:string -> ?description:string -> ?path_count:int ->
  Cost_vec.t -> entry

val find : t -> class_name:string -> entry option
val find_exn : t -> class_name:string -> entry
val class_names : t -> string list

val worst_case : t -> Cost_vec.t
(** Conservative maximum over all classes: the contract evaluated on
    unconstrained traffic. *)

val pcvs : t -> Pcv.t list
(** All PCVs appearing anywhere in the contract. *)

val predict :
  t -> class_name:string -> Pcv.binding -> Metric.t -> (int, Pcv.t) result
(** [predict t ~class_name binding metric] is the concrete bound obtained
    by evaluating the class's expression at [binding]. *)

val pp : Format.formatter -> t -> unit
(** Render in the paper's tabular style: one row per class, expressions
    over PCVs. *)

val pp_metric : Metric.t -> Format.formatter -> t -> unit
(** Render a single-metric table, like paper Tables 4–6. *)
