(** Performance expressions: multivariate polynomials over PCVs.

    A performance contract maps each input class to one of these
    expressions, e.g. the VigNAT contract's
    [359·e + 30·c + 18·t + 80·e·c + 38·e·t + 1030] (paper Table 6).
    Coefficients are machine integers; PCVs always denote non-negative
    counts, which makes the monomial-wise {!max} a sound conservative
    upper bound. *)

type t
(** A polynomial with integer coefficients over {!Pcv.t} variables.
    Values are normalised: no zero coefficients, monomials sorted. *)

(** {1 Construction} *)

val zero : t
val const : int -> t

val pcv : Pcv.t -> t
(** [pcv v] is the degree-1 polynomial [1·v]. *)

val term : int -> Pcv.t list -> t
(** [term k vs] is the single monomial [k · v1 · v2 · …].  Repeated
    variables raise the exponent: [term 3 [e; e]] is [3·e²]. *)

val add : t -> t -> t
val sum : t list -> t
val scale : int -> t -> t
val mul : t -> t -> t
val add_const : int -> t -> t

(** {1 Conservative combination} *)

val max_upper : t -> t -> t
(** [max_upper a b] is the monomial-wise maximum of [a] and [b]: a
    polynomial that dominates both on every point with non-negative
    coordinates.  This is how BOLT coalesces multiple execution paths into
    a single conservative expression (paper §3.2).  Requires both arguments
    to have non-negative coefficients; raises [Invalid_argument]
    otherwise. *)

val max_upper_list : t list -> t
(** Fold of {!max_upper}; [max_upper_list []] is {!zero}. *)

(** {1 Observation} *)

val eval : Pcv.binding -> t -> (int, Pcv.t) result
(** [eval binding t] evaluates [t], or returns [Error v] naming the first
    PCV missing from [binding]. *)

val eval_exn : Pcv.binding -> t -> int
(** Like {!eval}; raises [Invalid_argument] on a missing PCV. *)

val const_part : t -> int
(** The coefficient of the empty monomial. *)

val pcvs : t -> Pcv.t list
(** PCVs occurring with non-zero coefficient, sorted, without duplicates. *)

val is_const : t -> bool
val is_nonneg : t -> bool
(** [is_nonneg t] is true when all coefficients are non-negative, so [t] is
    monotone in every PCV over the non-negative orthant. *)

val degree : t -> int

val terms : t -> ((Pcv.t * int) list * int) list
(** All monomials as [(variable, exponent) list, coefficient] pairs, in
    display order (highest degree first, constant last). *)

val of_terms : ((Pcv.t * int) list * int) list -> t
(** Inverse of {!terms}; accepts unsorted input. *)

val coefficient : t -> Pcv.t list -> int
(** [coefficient t vs] is the coefficient of the monomial [v1·v2·…]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val dominates : t -> t -> bool
(** [dominates a b] holds when every coefficient of [a] is at least the
    corresponding coefficient of [b] — a sufficient (coefficient-wise)
    condition for [a >= b] over non-negative PCVs. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, highest-degree terms first and the constant
    last: [245·e + 144·c + 82·e·c + 882]. *)

val to_string : t -> string
