(* A monomial maps each PCV to its (positive) exponent; a polynomial maps
   each monomial to its (non-zero) coefficient. *)

module Monomial = struct
  type t = (Pcv.t * int) list
  (* invariant: sorted by PCV, exponents > 0 *)

  let empty = []

  let of_vars vars =
    let sorted = List.sort Pcv.compare vars in
    let rec group = function
      | [] -> []
      | v :: rest ->
          let same, others = List.partition (Pcv.equal v) rest in
          (v, 1 + List.length same) :: group others
    in
    group sorted

  let mul (a : t) (b : t) : t =
    let rec merge a b =
      match (a, b) with
      | [], m | m, [] -> m
      | (va, ea) :: ra, (vb, eb) :: rb ->
          let cmp = Pcv.compare va vb in
          if cmp = 0 then (va, ea + eb) :: merge ra rb
          else if cmp < 0 then (va, ea) :: merge ra b
          else (vb, eb) :: merge a rb
    in
    merge a b

  let degree (m : t) = List.fold_left (fun acc (_, e) -> acc + e) 0 m

  let compare (a : t) (b : t) =
    (* higher degree first, then lexicographic on variables *)
    let deg = Int.compare (degree b) (degree a) in
    if deg <> 0 then deg
    else
      List.compare
        (fun (va, ea) (vb, eb) ->
          let c = Pcv.compare va vb in
          if c <> 0 then c else Int.compare ea eb)
        a b

  let pp ppf (m : t) =
    let pp_var ppf (v, e) =
      if e = 1 then Pcv.pp ppf v else Fmt.pf ppf "%a^%d" Pcv.pp v e
    in
    Fmt.(list ~sep:(any "\u{00B7}") pp_var) ppf m
end

module M = Map.Make (Monomial)

type t = int M.t
(* invariant: no zero coefficients *)

let zero = M.empty
let const k = if k = 0 then zero else M.singleton Monomial.empty k
let term k vars = if k = 0 then zero else M.singleton (Monomial.of_vars vars) k
let pcv v = term 1 [ v ]

let add_coeff mono k poly =
  M.update mono
    (function
      | None -> if k = 0 then None else Some k
      | Some k' -> if k + k' = 0 then None else Some (k + k'))
    poly

let add a b = M.fold add_coeff a b
let sum = List.fold_left add zero

let scale k poly =
  if k = 0 then zero else M.map (fun coeff -> k * coeff) poly

let mul a b =
  M.fold
    (fun ma ka acc ->
      M.fold
        (fun mb kb acc -> add_coeff (Monomial.mul ma mb) (ka * kb) acc)
        b acc)
    a zero

let add_const k poly = add (const k) poly
let is_nonneg poly = M.for_all (fun _ k -> k >= 0) poly

let max_upper a b =
  if not (is_nonneg a && is_nonneg b) then
    invalid_arg "Perf_expr.max_upper: negative coefficient";
  M.union (fun _ ka kb -> Some (Stdlib.max ka kb)) a b

let max_upper_list = List.fold_left max_upper zero

let eval binding poly =
  let exception Missing of Pcv.t in
  try
    Ok
      (M.fold
         (fun mono coeff acc ->
           let value =
             List.fold_left
               (fun acc (v, e) ->
                 match Pcv.lookup binding v with
                 | None -> raise (Missing v)
                 | Some x ->
                     let rec pow b n = if n = 0 then 1 else b * pow b (n - 1) in
                     acc * pow x e)
               1 mono
           in
           acc + (coeff * value))
         poly 0)
  with Missing v -> Error v

let eval_exn binding poly =
  match eval binding poly with
  | Ok n -> n
  | Error v ->
      invalid_arg
        (Printf.sprintf "Perf_expr.eval_exn: unbound PCV %s" (Pcv.name v))

let const_part poly =
  match M.find_opt Monomial.empty poly with None -> 0 | Some k -> k

let pcvs poly =
  M.fold
    (fun mono _ acc -> List.fold_left (fun acc (v, _) -> v :: acc) acc mono)
    poly []
  |> List.sort_uniq Pcv.compare

let is_const poly = M.for_all (fun mono _ -> mono = Monomial.empty) poly

let degree poly =
  M.fold (fun mono _ acc -> Stdlib.max acc (Monomial.degree mono)) poly 0

let terms poly = M.bindings poly

let of_terms entries =
  List.fold_left
    (fun acc (mono, coeff) ->
      let vars =
        List.concat_map (fun (v, e) -> List.init e (fun _ -> v)) mono
      in
      add acc (term coeff vars))
    zero entries

let coefficient poly vars =
  match M.find_opt (Monomial.of_vars vars) poly with
  | None -> 0
  | Some k -> k

let equal = M.equal Int.equal
let compare = M.compare Int.compare

let dominates a b =
  M.for_all
    (fun mono kb ->
      let ka = match M.find_opt mono a with None -> 0 | Some k -> k in
      ka >= kb)
    b

let pp ppf poly =
  if M.is_empty poly then Fmt.string ppf "0"
  else
    let entries = M.bindings poly in
    (* Map is ordered by Monomial.compare: higher degree first, constant
       (empty monomial, degree 0) last. *)
    let pp_entry ppf (mono, coeff) =
      if mono = Monomial.empty then Fmt.int ppf coeff
      else if coeff = 1 then Monomial.pp ppf mono
      else Fmt.pf ppf "%d\u{00B7}%a" coeff Monomial.pp mono
    in
    Fmt.(list ~sep:(any " + ") pp_entry) ppf entries

let to_string = Fmt.to_to_string pp
