type t = string

let valid_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let v name =
  if name = "" || not (String.for_all valid_char name) then
    invalid_arg (Printf.sprintf "Pcv.v: invalid PCV name %S" name);
  name

let name t = t
let compare = String.compare
let equal = String.equal
let pp = Fmt.string

let expired = v "e"
let collisions = v "c"
let traversals = v "t"
let occupancy = v "o"
let prefix_len = v "l"
let ip_options = v "n"
let scan = v "s"

type binding = (t * int) list

let lookup binding pcv = List.assoc_opt pcv binding

let pp_binding ppf binding =
  let pp_one ppf (pcv, value) = Fmt.pf ppf "%a=%d" pp pcv value in
  Fmt.(list ~sep:(any ", ") pp_one) ppf binding
