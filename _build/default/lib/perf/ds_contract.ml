type branch = { tag : string; cost : Cost_vec.t; note : string }
type t = { ds_kind : string; meth : string; branches : branch list }

let branch ~tag ?(note = "") cost = { tag; cost; note }

let make ~ds_kind ~meth branches =
  if branches = [] then
    invalid_arg
      (Printf.sprintf "Ds_contract.make: %s.%s has no branches" ds_kind meth);
  let tags = List.map (fun b -> b.tag) branches in
  if List.length (List.sort_uniq String.compare tags) <> List.length tags
  then
    invalid_arg
      (Printf.sprintf "Ds_contract.make: %s.%s has duplicate tags" ds_kind
         meth);
  { ds_kind; meth; branches }

let find_branch t ~tag = List.find_opt (fun b -> b.tag = tag) t.branches

let find_branch_exn t ~tag =
  match find_branch t ~tag with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Ds_contract: %s.%s has no branch tagged %S"
           t.ds_kind t.meth tag)

let tags t = List.map (fun b -> b.tag) t.branches

let worst_case t =
  Cost_vec.max_upper_list (List.map (fun b -> b.cost) t.branches)

let pp ppf t =
  Fmt.pf ppf "@[<v>contract %s.%s:@," t.ds_kind t.meth;
  List.iter
    (fun b ->
      Fmt.pf ppf "  [%s]%s@,    @[<v>%a@]@," b.tag
        (if b.note = "" then "" else " — " ^ b.note)
        Cost_vec.pp b.cost)
    t.branches;
  Fmt.pf ppf "@]"

module Key = struct
  type t = string * string

  let compare = compare
end

module KM = Map.Make (Key)

type library = t KM.t

let library contracts =
  List.fold_left
    (fun acc c ->
      let key = (c.ds_kind, c.meth) in
      if KM.mem key acc then
        invalid_arg
          (Printf.sprintf "Ds_contract.library: duplicate contract %s.%s"
             c.ds_kind c.meth);
      KM.add key c acc)
    KM.empty contracts

let find lib ~ds_kind ~meth = KM.find_opt (ds_kind, meth) lib

let find_exn lib ~ds_kind ~meth =
  match find lib ~ds_kind ~meth with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Ds_contract.find_exn: no contract for %s.%s" ds_kind
           meth)

let merge a b = KM.union (fun _ _ latest -> Some latest) a b
let contracts lib = List.map snd (KM.bindings lib)
