(** Performance contracts for stateful data-structure methods.

    These are the base case of contract generation (paper §3.2): written
    once by an expert per library method and reused across NFs.  A method
    contract is a set of branches, each guarded by an abstract-state tag —
    e.g. a flow-table [get] has one branch for "flow present" and another
    for "flow absent".  During trace analysis BOLT picks the branch whose
    tag matches the path's abstract-state constraints (paper Alg. 2,
    line 11). *)

type branch = {
  tag : string;
      (** Abstract-state condition under which this branch applies, e.g.
          ["hit"] or ["miss"].  Tags are emitted by the method's symbolic
          model when the symbolic engine forks on abstract state. *)
  cost : Cost_vec.t;  (** Conservative cost of the method under [tag]. *)
  note : string;  (** Human-readable description of the condition. *)
}

type t = {
  ds_kind : string;  (** Data-structure kind, e.g. ["flow_table"]. *)
  meth : string;  (** Method name, e.g. ["get"]. *)
  branches : branch list;  (** Non-empty; tags are distinct. *)
}

val make : ds_kind:string -> meth:string -> branch list -> t
(** Raises [Invalid_argument] if branches are empty or tags collide. *)

val branch : tag:string -> ?note:string -> Cost_vec.t -> branch

val find_branch : t -> tag:string -> branch option
val find_branch_exn : t -> tag:string -> branch
val tags : t -> string list

val worst_case : t -> Cost_vec.t
(** Conservative maximum over all branches — used when the path constraints
    do not determine the abstract state. *)

val pp : Format.formatter -> t -> unit

(** {1 Method contract libraries} *)

type library
(** A registry of method contracts, keyed by [(ds_kind, meth)]. *)

val library : t list -> library
val find : library -> ds_kind:string -> meth:string -> t option
val find_exn : library -> ds_kind:string -> meth:string -> t
val merge : library -> library -> library
val contracts : library -> t list
