type t = { ic : Perf_expr.t; ma : Perf_expr.t; cycles : Perf_expr.t }

let make ~ic ~ma ~cycles = { ic; ma; cycles }

let zero =
  { ic = Perf_expr.zero; ma = Perf_expr.zero; cycles = Perf_expr.zero }

let of_consts ~ic ~ma ~cycles =
  { ic = Perf_expr.const ic; ma = Perf_expr.const ma;
    cycles = Perf_expr.const cycles }

let get t = function
  | Metric.Instructions -> t.ic
  | Metric.Memory_accesses -> t.ma
  | Metric.Cycles -> t.cycles

let map2 f a b =
  { ic = f a.ic b.ic; ma = f a.ma b.ma; cycles = f a.cycles b.cycles }

let add = map2 Perf_expr.add
let sum = List.fold_left add zero

let scale k t =
  { ic = Perf_expr.scale k t.ic; ma = Perf_expr.scale k t.ma;
    cycles = Perf_expr.scale k t.cycles }

let max_upper = map2 Perf_expr.max_upper
let max_upper_list = List.fold_left max_upper zero
let eval binding t metric = Perf_expr.eval binding (get t metric)
let eval_exn binding t metric = Perf_expr.eval_exn binding (get t metric)

let pcvs t =
  Perf_expr.pcvs t.ic @ Perf_expr.pcvs t.ma @ Perf_expr.pcvs t.cycles
  |> List.sort_uniq Pcv.compare

let equal a b =
  Perf_expr.equal a.ic b.ic && Perf_expr.equal a.ma b.ma
  && Perf_expr.equal a.cycles b.cycles

let pp ppf t =
  Fmt.pf ppf "@[<v>IC:     %a@,MA:     %a@,cycles: %a@]" Perf_expr.pp t.ic
    Perf_expr.pp t.ma Perf_expr.pp t.cycles
