type entry = {
  class_name : string;
  description : string;
  cost : Cost_vec.t;
  path_count : int;
}

type t = { nf : string; entries : entry list }

let entry ~class_name ?(description = "") ?(path_count = 1) cost =
  { class_name; description; cost; path_count }

let make ~nf entries =
  let names = List.map (fun e -> e.class_name) entries in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg ("Contract.make: duplicate class names in " ^ nf);
  { nf; entries }

let find t ~class_name =
  List.find_opt (fun e -> e.class_name = class_name) t.entries

let find_exn t ~class_name =
  match find t ~class_name with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Contract.find_exn: %s has no class %S" t.nf
           class_name)

let class_names t = List.map (fun e -> e.class_name) t.entries

let worst_case t =
  Cost_vec.max_upper_list (List.map (fun e -> e.cost) t.entries)

let pcvs t =
  List.concat_map (fun e -> Cost_vec.pcvs e.cost) t.entries
  |> List.sort_uniq Pcv.compare

let predict t ~class_name binding metric =
  let e = find_exn t ~class_name in
  Cost_vec.eval binding e.cost metric

let pp ppf t =
  Fmt.pf ppf "@[<v>performance contract for %s@," t.nf;
  List.iter
    (fun e ->
      Fmt.pf ppf "@,%s%s  (%d path%s)@,  @[<v>%a@]@," e.class_name
        (if e.description = "" then "" else " — " ^ e.description)
        e.path_count
        (if e.path_count = 1 then "" else "s")
        Cost_vec.pp e.cost)
    t.entries;
  Fmt.pf ppf "@]"

let pp_metric metric ppf t =
  Fmt.pf ppf "@[<v>%s — %s@," t.nf (Metric.long_name metric);
  let width =
    List.fold_left
      (fun acc e -> Stdlib.max acc (String.length e.class_name))
      0 t.entries
  in
  List.iter
    (fun e ->
      Fmt.pf ppf "  %-*s  %a@," width e.class_name Perf_expr.pp
        (Cost_vec.get e.cost metric))
    t.entries;
  Fmt.pf ppf "@]"
