exception Undefined of string

let bool_to_int b = if b then 1 else 0

let apply_unop op v =
  match op with
  | Expr.Bnot -> lnot v land 0xffff_ffff
  | Expr.Lnot -> bool_to_int (v = 0)

let apply_binop op a b =
  match op with
  | Expr.Add -> a + b
  | Expr.Sub -> a - b
  | Expr.Mul -> a * b
  | Expr.Div ->
      if b = 0 then raise (Undefined "division by zero") else a / b
  | Expr.Rem ->
      if b = 0 then raise (Undefined "remainder by zero") else a mod b
  | Expr.And -> a land b
  | Expr.Or -> a lor b
  | Expr.Xor -> a lxor b
  | Expr.Shl -> a lsl (b land 63)
  | Expr.Shr -> a lsr (b land 63)
  | Expr.Eq -> bool_to_int (a = b)
  | Expr.Ne -> bool_to_int (a <> b)
  | Expr.Lt -> bool_to_int (a < b)
  | Expr.Le -> bool_to_int (a <= b)
  | Expr.Gt -> bool_to_int (a > b)
  | Expr.Ge -> bool_to_int (a >= b)
  | Expr.Land -> bool_to_int (a <> 0 && b <> 0)
  | Expr.Lor -> bool_to_int (a <> 0 || b <> 0)
