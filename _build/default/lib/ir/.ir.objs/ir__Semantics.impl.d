lib/ir/semantics.ml: Expr
