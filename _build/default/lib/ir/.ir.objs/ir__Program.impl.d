lib/ir/program.ml: Expr Fmt Format List Option Result Set Stmt String
