lib/ir/semantics.mli: Expr
