lib/ir/program.mli: Format Stmt
