lib/ir/expr.ml: Fmt List String
