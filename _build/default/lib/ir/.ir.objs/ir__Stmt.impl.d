lib/ir/stmt.ml: Expr Fmt
