(** Concrete semantics of IR operators, shared by the interpreter and the
    symbolic engine (which uses it to fold constant subterms) so the two
    can never disagree. *)

exception Undefined of string
(** Raised on division or remainder by zero. *)

val apply_unop : Expr.unop -> int -> int
val apply_binop : Expr.binop -> int -> int -> int
val bool_to_int : bool -> int
