type loop_kind = Unroll of int | Pcv_loop of string * int
type action = Forward of Expr.t | Drop | Flood

type t =
  | Assign of string * Expr.t
  | Pkt_store of Expr.width * Expr.t * Expr.t
  | If of Expr.t * block * block
  | While of loop_kind * Expr.t * block
  | Call of call
  | Return of action

  | Comment of string

and call = {
  ret : string option;
  instance : string;
  meth : string;
  args : Expr.t list;
}

and block = t list

let assign name e = Assign (name, e)
let store8 off v = Pkt_store (Expr.W8, off, v)
let store16 off v = Pkt_store (Expr.W16, off, v)
let store32 off v = Pkt_store (Expr.W32, off, v)
let store48 off v = Pkt_store (Expr.W48, off, v)
let if_ cond then_ else_ = If (cond, then_, else_)
let when_ cond then_ = If (cond, then_, [])
let call ?ret instance meth args = Call { ret; instance; meth; args }
let forward port = Return (Forward port)
let forward_port port = Return (Forward (Expr.Const port))
let drop = Return Drop
let flood = Return Flood

let pp_action ppf = function
  | Forward e -> Fmt.pf ppf "forward(%a)" Expr.pp e
  | Drop -> Fmt.string ppf "drop"
  | Flood -> Fmt.string ppf "flood"

let rec pp ppf = function
  | Assign (v, e) -> Fmt.pf ppf "%s := %a" v Expr.pp e
  | Pkt_store (w, off, v) ->
      let ws =
        match w with
        | Expr.W8 -> "u8" | Expr.W16 -> "u16"
        | Expr.W32 -> "u32" | Expr.W48 -> "u48"
      in
      Fmt.pf ppf "pkt.%s[%a] := %a" ws Expr.pp off Expr.pp v
  | If (cond, then_, []) ->
      Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,}" Expr.pp cond pp_block then_
  | If (cond, then_, else_) ->
      Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" Expr.pp
        cond pp_block then_ pp_block else_
  | While (Unroll bound, cond, body) ->
      Fmt.pf ppf "@[<v 2>while[<=%d] %a {@,%a@]@,}" bound Expr.pp cond
        pp_block body
  | While (Pcv_loop (pcv, bound), cond, body) ->
      Fmt.pf ppf "@[<v 2>while[pcv %s <= %d] %a {@,%a@]@,}" pcv bound
        Expr.pp cond pp_block body
  | Call { ret; instance; meth; args } ->
      let pp_ret ppf = function
        | None -> ()
        | Some v -> Fmt.pf ppf "%s := " v
      in
      Fmt.pf ppf "%a%s.%s(%a)" pp_ret ret instance meth
        Fmt.(list ~sep:(any ", ") Expr.pp)
        args
  | Return action -> Fmt.pf ppf "return %a" pp_action action
  | Comment text -> Fmt.pf ppf "// %s" text

and pp_block ppf block = Fmt.(list ~sep:cut pp) ppf block
