(** Statements of the NF intermediate representation. *)

(** How the symbolic engine treats a loop. *)
type loop_kind =
  | Unroll of int
      (** Fork per iteration, up to the given static bound; each feasible
          trip count becomes its own execution path. *)
  | Pcv_loop of string * int
      (** The trip count is exposed as a PCV with the given name (bounded
          by the int).  The engine executes the body once symbolically and
          the analysis renders the cost as [per-iteration · pcv + exit],
          producing paper-style contracts such as the static router's
          [79·n + 646] (Table 5b). *)

(** What the NF does with the packet. *)
type action =
  | Forward of Expr.t  (** send out of the given port *)
  | Drop
  | Flood  (** broadcast to all ports but the input one *)

type t =
  | Assign of string * Expr.t
  | Pkt_store of Expr.width * Expr.t * Expr.t  (** width, offset, value *)
  | If of Expr.t * block * block
  | While of loop_kind * Expr.t * block
  | Call of call
  | Return of action
  | Comment of string  (** zero-cost marker, kept in traces *)

and call = {
  ret : string option;  (** variable receiving the method's return value *)
  instance : string;  (** declared state instance, e.g. ["flows"] *)
  meth : string;  (** method name, e.g. ["get"] *)
  args : Expr.t list;
}

and block = t list

(** {1 Convenience constructors} *)

val assign : string -> Expr.t -> t
val store8 : Expr.t -> Expr.t -> t
val store16 : Expr.t -> Expr.t -> t
val store32 : Expr.t -> Expr.t -> t
val store48 : Expr.t -> Expr.t -> t
val if_ : Expr.t -> block -> block -> t
val when_ : Expr.t -> block -> t
val call : ?ret:string -> string -> string -> Expr.t list -> t
val forward : Expr.t -> t
val forward_port : int -> t
val drop : t
val flood : t
val pp : Format.formatter -> t -> unit
val pp_block : Format.formatter -> block -> unit
val pp_action : Format.formatter -> action -> unit
