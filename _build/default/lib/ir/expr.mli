(** Expressions of the NF intermediate representation.

    The IR is the stand-in for the paper's C NF code: a small, first-order
    imperative language over unsigned machine integers.  Local variables
    live in registers; the only memory the *stateless* code touches is the
    packet buffer — all other state is behind stateful data-structure
    calls, exactly the Vigor discipline BOLT assumes (paper §3.1).

    Values are non-negative OCaml ints; widths matter only for packet
    loads/stores and for the bounds given to fresh symbols during symbolic
    execution.  Arithmetic is expected to stay within 62 bits — the
    validator rejects shifts that could overflow. *)

type width = W8 | W16 | W32 | W48

val bytes_of_width : width -> int
val max_of_width : width -> int

type unop =
  | Bnot  (** bitwise complement (within 32 bits) *)
  | Lnot  (** logical negation: 0 ↦ 1, non-zero ↦ 0 *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge  (** comparisons yield 0 or 1 *)
  | Land | Lor  (** logical, non-short-circuiting *)

type t =
  | Const of int
  | Var of string
  | Pkt_load of width * t  (** big-endian load at byte offset *)
  | Pkt_len
  | Unop of unop * t
  | Binop of binop * t * t

(** {1 Convenience constructors} *)

val int : int -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( == ) : t -> t -> t
val ( != ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
val load8 : t -> t
val load16 : t -> t
val load32 : t -> t
val load48 : t -> t

val is_binop_div : binop -> bool
val is_binop_mul : binop -> bool
val pp : Format.formatter -> t -> unit
val vars : t -> string list
(** Variables read, sorted, without duplicates. *)
