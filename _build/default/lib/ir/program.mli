(** NF programs.

    A program is the per-packet handler of a network function: a block of
    stateless IR code plus declarations of the stateful data-structure
    instances it may call.  The implicit inputs of the handler are the
    packet buffer, the input port (variable ["in_port"]) and the current
    time (variable ["now"]). *)

type state_decl = {
  instance : string;  (** name used in [Call] statements *)
  kind : string;  (** data-structure kind, e.g. ["flow_table"] *)
}

type t = {
  name : string;
  state : state_decl list;
  body : Stmt.block;
}

val make : name:string -> state:state_decl list -> Stmt.block -> t
(** Validates the program (see {!validate}); raises [Invalid_argument] on
    the first error. *)

val input_vars : string list
(** The implicit handler inputs: [["in_port"; "now"]]. *)

val validate : t -> (unit, string) result
(** Checks that: state instance names are distinct; every [Call] targets a
    declared instance; every variable is assigned (or an input) before
    being read; loop bounds are positive; PCV-loop names are distinct; and
    every control path ends in [Return]. *)

val kind_of_instance : t -> string -> string option
val pp : Format.formatter -> t -> unit
