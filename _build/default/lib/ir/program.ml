type state_decl = { instance : string; kind : string }
type t = { name : string; state : state_decl list; body : Stmt.block }

let input_vars = [ "in_port"; "now" ]

module SS = Set.Make (String)

(* A block "returns" when every control path through it ends in Return. *)
let rec block_returns block =
  match block with
  | [] -> false
  | Stmt.Return _ :: _ -> true
  | Stmt.If (_, then_, else_) :: rest ->
      (block_returns then_ && block_returns else_) || block_returns rest
  | _ :: rest -> block_returns rest

let validate t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let* () =
    let names = List.map (fun d -> d.instance) t.state in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then err "%s: duplicate state instance names" t.name
    else Ok ()
  in
  (* Collect PCV loop names and check calls/loop bounds/defined vars. *)
  let pcv_names = ref [] in
  let instances = List.map (fun d -> d.instance) t.state in
  (* check_block returns (defined-after, always-returns) *)
  let rec check_block defined block =
    match block with
    | [] -> Ok (defined, false)
    | stmt :: rest ->
        let* defined, returns = check_stmt defined stmt in
        if returns then Ok (defined, true)
        else check_block defined rest
  and check_expr defined e =
    match
      List.find_opt (fun v -> not (SS.mem v defined)) (Expr.vars e)
    with
    | Some v -> err "%s: variable %s read before assignment" t.name v
    | None -> Ok ()
  and check_stmt defined stmt =
    match stmt with
    | Stmt.Assign (v, e) ->
        let* () = check_expr defined e in
        Ok (SS.add v defined, false)
    | Stmt.Pkt_store (_, off, value) ->
        let* () = check_expr defined off in
        let* () = check_expr defined value in
        Ok (defined, false)
    | Stmt.If (cond, then_, else_) ->
        let* () = check_expr defined cond in
        let* d1, r1 = check_block defined then_ in
        let* d2, r2 = check_block defined else_ in
        (* A branch that always returns does not constrain the join. *)
        let after =
          match (r1, r2) with
          | true, true -> defined
          | true, false -> d2
          | false, true -> d1
          | false, false -> SS.inter d1 d2
        in
        Ok (after, r1 && r2)
    | Stmt.While (kind, cond, body) ->
        let* () =
          match kind with
          | Stmt.Unroll bound when bound <= 0 ->
              err "%s: non-positive loop bound" t.name
          | Stmt.Pcv_loop (pcv, bound) ->
              if bound <= 0 then err "%s: non-positive loop bound" t.name
              else if List.mem pcv !pcv_names then
                err "%s: duplicate PCV loop name %s" t.name pcv
              else begin
                pcv_names := pcv :: !pcv_names;
                Ok ()
              end
          | Stmt.Unroll _ -> Ok ()
        in
        let* () = check_expr defined cond in
        let* _ = check_block defined body in
        (* Loop may run zero times: body assignments don't escape. *)
        Ok (defined, false)
    | Stmt.Call { ret; instance; meth = _; args } ->
        let* () =
          if List.mem instance instances then Ok ()
          else err "%s: call to undeclared instance %s" t.name instance
        in
        let* () =
          List.fold_left
            (fun acc arg ->
              let* () = acc in
              check_expr defined arg)
            (Ok ()) args
        in
        Ok
          ( (match ret with None -> defined | Some v -> SS.add v defined),
            false )
    | Stmt.Return (Stmt.Forward port) ->
        let* () = check_expr defined port in
        Ok (defined, true)
    | Stmt.Return (Stmt.Drop | Stmt.Flood) -> Ok (defined, true)
    | Stmt.Comment _ -> Ok (defined, false)
  in
  let defined = SS.of_list input_vars in
  let* _ = check_block defined t.body in
  if block_returns t.body then Ok ()
  else err "%s: not all control paths end in return" t.name

let make ~name ~state body =
  let t = { name; state; body } in
  match validate t with Ok () -> t | Error msg -> invalid_arg msg

let kind_of_instance t instance =
  List.find_opt (fun d -> d.instance = instance) t.state
  |> Option.map (fun d -> d.kind)

let pp ppf t =
  Fmt.pf ppf "@[<v>nf %s@," t.name;
  List.iter
    (fun d -> Fmt.pf ppf "state %s : %s@," d.instance d.kind)
    t.state;
  Fmt.pf ppf "@[<v 2>process(pkt, in_port, now) {@,%a@]@,}@]" Stmt.pp_block
    t.body
