type width = W8 | W16 | W32 | W48

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W48 -> 6

let max_of_width = function
  | W8 -> 0xff
  | W16 -> 0xffff
  | W32 -> 0xffff_ffff
  | W48 -> 0xffff_ffff_ffff

type unop = Bnot | Lnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type t =
  | Const of int
  | Var of string
  | Pkt_load of width * t
  | Pkt_len
  | Unop of unop * t
  | Binop of binop * t * t

let int n = Const n
let var name = Var name
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( == ) a b = Binop (Eq, a, b)
let ( != ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (Land, a, b)
let ( || ) a b = Binop (Lor, a, b)
let not_ e = Unop (Lnot, e)
let load8 off = Pkt_load (W8, off)
let load16 off = Pkt_load (W16, off)
let load32 off = Pkt_load (W32, off)
let load48 off = Pkt_load (W48, off)
let is_binop_div = function Div | Rem -> true | _ -> false
let is_binop_mul = function Mul -> true | _ -> false

let unop_to_string = function Bnot -> "~" | Lnot -> "!"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">"
  | Ge -> ">=" | Land -> "&&" | Lor -> "||"

let width_to_string = function
  | W8 -> "u8" | W16 -> "u16" | W32 -> "u32" | W48 -> "u48"

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Pkt_load (w, off) ->
      Fmt.pf ppf "pkt.%s[%a]" (width_to_string w) pp off
  | Pkt_len -> Fmt.string ppf "pkt.len"
  | Unop (op, e) -> Fmt.pf ppf "%s(%a)" (unop_to_string op) pp e
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp a (binop_to_string op) pp b

let rec collect_vars acc = function
  | Const _ | Pkt_len -> acc
  | Var v -> v :: acc
  | Pkt_load (_, e) | Unop (_, e) -> collect_vars acc e
  | Binop (_, a, b) -> collect_vars (collect_vars acc a) b

let vars e = List.sort_uniq String.compare (collect_vars [] e)
