(** Ethernet II framing. *)

val header_len : int
val off_dst : int
val off_src : int
val off_ethertype : int

val ethertype_ipv4 : int
val ethertype_arp : int
val ethertype_ipv6 : int

val broadcast_mac : int
(** [ff:ff:ff:ff:ff:ff] as a 48-bit integer. *)

val get_dst : Packet.t -> int
val get_src : Packet.t -> int
val get_ethertype : Packet.t -> int
val set_dst : Packet.t -> int -> unit
val set_src : Packet.t -> int -> unit
val set_ethertype : Packet.t -> int -> unit
val is_broadcast : Packet.t -> bool
val mac_to_string : int -> string
val mac_of_parts : int array -> int
(** Six byte values, most significant first. *)
