(** IPv4 headers, carried directly after the Ethernet header.

    Offsets below are relative to the start of the IP header; the [off_*]
    accessors taking a {!Packet.t} assume the header starts at
    {!Ethernet.header_len}. *)

val min_header_len : int
val proto_icmp : int
val proto_tcp : int
val proto_udp : int

(** {1 Absolute field offsets (Ethernet + IP)} *)

val off_version_ihl : int
val off_total_len : int
val off_ttl : int
val off_proto : int
val off_checksum : int
val off_src : int
val off_dst : int
val off_options : int

(** {1 Accessors} *)

val get_version : Packet.t -> int
val get_ihl : Packet.t -> int
(** Header length in 32-bit words; [> 5] means IP options are present. *)

val option_count : Packet.t -> int
(** Number of 4-byte option slots: [ihl - 5]. *)

val header_len : Packet.t -> int
val get_total_len : Packet.t -> int
val get_ttl : Packet.t -> int
val get_proto : Packet.t -> int
val get_src : Packet.t -> int
val get_dst : Packet.t -> int
val get_checksum : Packet.t -> int
val l4_offset : Packet.t -> int

val set_ttl : Packet.t -> int -> unit
val set_src : Packet.t -> int -> unit
val set_dst : Packet.t -> int -> unit
val set_checksum : Packet.t -> int -> unit
val update_checksum : Packet.t -> unit
(** Recompute and store the header checksum. *)

val checksum_ok : Packet.t -> bool

(** {1 Construction} *)

val init :
  Packet.t -> ?options:int -> ?ttl:int -> proto:int -> src:int -> dst:int ->
  unit -> unit
(** [init pkt ~proto ~src ~dst ()] writes a well-formed IPv4 header (and
    the Ethernet ethertype) into [pkt].  [options] is the number of 4-byte
    option slots to declare (default 0); option bytes are filled with the
    timestamp option type. *)

val addr_to_string : int -> string
val addr_of_parts : int -> int -> int -> int -> int
