(** TCP/UDP port accessors.

    Both protocols put source and destination port in the first four bytes
    of the L4 header, which is all the NFs in this repository inspect. *)

val get_src_port : Packet.t -> int
(** Assumes an option-free IP header (L4 at byte 34), the common case for
    the NAT and load-balancer workloads. *)

val get_dst_port : Packet.t -> int
val set_src_port : Packet.t -> int -> unit
val set_dst_port : Packet.t -> int -> unit

val get_src_port_at : Packet.t -> l4:int -> int
val get_dst_port_at : Packet.t -> l4:int -> int

val udp_header_len : int
val tcp_min_header_len : int
