let header_len = 14
let off_dst = 0
let off_src = 6
let off_ethertype = 12
let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let ethertype_ipv6 = 0x86dd
let broadcast_mac = 0xffffffffffff
let get_dst pkt = Packet.get_u48 pkt off_dst
let get_src pkt = Packet.get_u48 pkt off_src
let get_ethertype pkt = Packet.get_u16 pkt off_ethertype
let set_dst pkt mac = Packet.set_u48 pkt off_dst mac
let set_src pkt mac = Packet.set_u48 pkt off_src mac
let set_ethertype pkt ty = Packet.set_u16 pkt off_ethertype ty
let is_broadcast pkt = get_dst pkt = broadcast_mac

let mac_to_string mac =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((mac lsr 40) land 0xff)
    ((mac lsr 32) land 0xff)
    ((mac lsr 24) land 0xff)
    ((mac lsr 16) land 0xff)
    ((mac lsr 8) land 0xff)
    (mac land 0xff)

let mac_of_parts parts =
  if Array.length parts <> 6 then invalid_arg "Ethernet.mac_of_parts";
  Array.fold_left (fun acc b -> (acc lsl 8) lor (b land 0xff)) 0 parts
