(** Convenience constructors for complete frames. *)

val eth : ?len:int -> ?src_mac:int -> ?dst_mac:int -> ethertype:int -> unit ->
  Packet.t
(** A minimal Ethernet frame (default 60 bytes, zero payload). *)

val udp :
  ?len:int -> ?src_mac:int -> ?dst_mac:int -> ?ttl:int ->
  src_ip:int -> dst_ip:int -> src_port:int -> dst_port:int -> unit -> Packet.t
(** Ethernet + option-free IPv4 + UDP, checksummed IP header. *)

val tcp :
  ?len:int -> ?src_mac:int -> ?dst_mac:int -> ?ttl:int ->
  src_ip:int -> dst_ip:int -> src_port:int -> dst_port:int -> unit -> Packet.t

val udp_of_flow : ?len:int -> Flow.t -> Packet.t
(** Frame realising the given 5-tuple (TCP or UDP chosen by its proto). *)

val ipv4_with_options :
  ?len:int -> options:int -> src_ip:int -> dst_ip:int -> unit -> Packet.t
(** IPv4 frame declaring [options] 4-byte option slots (the timestamp
    option), as processed by the static router. *)

val non_ip : ?len:int -> unit -> Packet.t
(** A frame with a non-IPv4 ethertype (ARP) — the canonical invalid packet
    for the IPv4 NFs. *)
