type t = {
  src_ip : int;
  dst_ip : int;
  src_port : int;
  dst_port : int;
  proto : int;
}

let make ~src_ip ~dst_ip ~src_port ~dst_port ~proto =
  { src_ip; dst_ip; src_port; dst_port; proto }

let of_packet pkt =
  if Packet.length pkt < Ethernet.header_len + Ipv4.min_header_len + 4 then
    None
  else if Ethernet.get_ethertype pkt <> Ethernet.ethertype_ipv4 then None
  else
    let proto = Ipv4.get_proto pkt in
    if proto <> Ipv4.proto_tcp && proto <> Ipv4.proto_udp then None
    else
      let l4 = Ipv4.l4_offset pkt in
      if Packet.length pkt < l4 + 4 then None
      else
        Some
          {
            src_ip = Ipv4.get_src pkt;
            dst_ip = Ipv4.get_dst pkt;
            src_port = L4.get_src_port_at pkt ~l4;
            dst_port = L4.get_dst_port_at pkt ~l4;
            proto;
          }

let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    src_port = t.dst_port;
    dst_port = t.src_port;
    proto = t.proto;
  }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let hash_key t =
  (* A full 5-tuple does not fit in 63 bits, so this is a mixed digest:
     deterministic and well-spread, for hashing only (not identity). *)
  let mix acc v = (((acc lsl 13) lxor (acc lsr 7)) lxor v) * 0x9e3779b1 in
  (mix (mix (mix (mix (mix 0 t.src_ip) t.dst_ip) t.src_port) t.dst_port)
     t.proto)
  land max_int

let pp ppf t =
  Fmt.pf ppf "%s:%d -> %s:%d/%s"
    (Ipv4.addr_to_string t.src_ip)
    t.src_port
    (Ipv4.addr_to_string t.dst_ip)
    t.dst_port
    (if t.proto = Ipv4.proto_tcp then "tcp"
     else if t.proto = Ipv4.proto_udp then "udp"
     else string_of_int t.proto)
