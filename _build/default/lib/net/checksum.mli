(** RFC 1071 Internet checksum. *)

val ones_complement : Packet.t -> off:int -> len:int -> int
(** 16-bit one's-complement sum of the given byte range, complemented —
    ready to store in a header checksum field (which must be zero while
    summing). *)

val valid : Packet.t -> off:int -> len:int -> bool
(** True when the range (including its checksum field) sums to [0xffff]'s
    complement, i.e. the stored checksum verifies. *)
