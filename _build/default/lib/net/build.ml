let default_len = 60
let default_src_mac = Ethernet.mac_of_parts [| 2; 0; 0; 0; 0; 1 |]
let default_dst_mac = Ethernet.mac_of_parts [| 2; 0; 0; 0; 0; 2 |]

let eth ?(len = default_len) ?(src_mac = default_src_mac)
    ?(dst_mac = default_dst_mac) ~ethertype () =
  let pkt = Packet.create len in
  Ethernet.set_dst pkt dst_mac;
  Ethernet.set_src pkt src_mac;
  Ethernet.set_ethertype pkt ethertype;
  pkt

let udp ?len ?src_mac ?dst_mac ?ttl ~src_ip ~dst_ip ~src_port ~dst_port () =
  let pkt = eth ?len ?src_mac ?dst_mac ~ethertype:Ethernet.ethertype_ipv4 () in
  Ipv4.init pkt ?ttl ~proto:Ipv4.proto_udp ~src:src_ip ~dst:dst_ip ();
  L4.set_src_port pkt src_port;
  L4.set_dst_port pkt dst_port;
  pkt

let tcp ?len ?src_mac ?dst_mac ?ttl ~src_ip ~dst_ip ~src_port ~dst_port () =
  let pkt = eth ?len ?src_mac ?dst_mac ~ethertype:Ethernet.ethertype_ipv4 () in
  Ipv4.init pkt ?ttl ~proto:Ipv4.proto_tcp ~src:src_ip ~dst:dst_ip ();
  L4.set_src_port pkt src_port;
  L4.set_dst_port pkt dst_port;
  pkt

let udp_of_flow ?len (flow : Flow.t) =
  let build = if flow.proto = Ipv4.proto_tcp then tcp else udp in
  build ?len ~src_ip:flow.src_ip ~dst_ip:flow.dst_ip ~src_port:flow.src_port
    ~dst_port:flow.dst_port ()

let ipv4_with_options ?len ~options ~src_ip ~dst_ip () =
  let min_len = Ethernet.header_len + Ipv4.min_header_len + (4 * options) + 8 in
  let len =
    match len with Some l -> max l min_len | None -> max default_len min_len
  in
  let pkt = eth ~len ~ethertype:Ethernet.ethertype_ipv4 () in
  Ipv4.init pkt ~options ~proto:Ipv4.proto_udp ~src:src_ip ~dst:dst_ip ();
  pkt

let non_ip ?len () = eth ?len ~ethertype:Ethernet.ethertype_arp ()
