let proto_name p =
  if p = Ipv4.proto_tcp then "tcp"
  else if p = Ipv4.proto_udp then "udp"
  else if p = Ipv4.proto_icmp then "icmp"
  else Printf.sprintf "proto %d" p

let packet ppf pkt =
  let len = Packet.length pkt in
  if len < Ethernet.header_len then Fmt.pf ppf "runt frame, %dB" len
  else if
    Ethernet.get_ethertype pkt = Ethernet.ethertype_ipv4
    && len >= Ethernet.header_len + Ipv4.min_header_len
  then begin
    let proto = Ipv4.get_proto pkt in
    let src = Ipv4.addr_to_string (Ipv4.get_src pkt) in
    let dst = Ipv4.addr_to_string (Ipv4.get_dst pkt) in
    let opts =
      if Ipv4.option_count pkt > 0 then
        Printf.sprintf " +%d opts" (Ipv4.option_count pkt)
      else ""
    in
    if
      (proto = Ipv4.proto_tcp || proto = Ipv4.proto_udp)
      && len >= Ipv4.l4_offset pkt + 4
    then
      Fmt.pf ppf "IPv4 %s:%d > %s:%d %s%s, %dB" src
        (L4.get_src_port_at pkt ~l4:(Ipv4.l4_offset pkt))
        dst
        (L4.get_dst_port_at pkt ~l4:(Ipv4.l4_offset pkt))
        (proto_name proto) opts len
    else if proto = Ipv4.proto_icmp && Ipv4.option_count pkt = 0 && len > Icmp.off_seq + 1
    then
      Fmt.pf ppf "IPv4 %s > %s icmp type %d seq %d, %dB" src dst
        (Icmp.get_type pkt) (Icmp.get_seq pkt) len
    else Fmt.pf ppf "IPv4 %s > %s %s%s, %dB" src dst (proto_name proto) opts len
  end
  else
    Fmt.pf ppf "eth %s > %s ethertype 0x%04x, %dB"
      (Ethernet.mac_to_string (Ethernet.get_src pkt))
      (Ethernet.mac_to_string (Ethernet.get_dst pkt))
      (Ethernet.get_ethertype pkt)
      len

let to_string = Fmt.to_to_string packet
