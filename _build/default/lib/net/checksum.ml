let sum packet ~off ~len =
  let acc = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + Packet.get_u16 packet !i;
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Packet.get_u8 packet !i lsl 8);
  while !acc > 0xffff do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  !acc

let ones_complement packet ~off ~len =
  lnot (sum packet ~off ~len) land 0xffff

let valid packet ~off ~len = sum packet ~off ~len = 0xffff
