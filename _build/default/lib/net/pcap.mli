(** Reading and writing libpcap capture files.

    The Distiller consumes real-world traffic "as PCAP files" (paper §4);
    our workload generators emit the same format, so traces can also be
    inspected with standard tools. *)

type record = { ts_sec : int; ts_usec : int; packet : Packet.t }

val write_file : string -> record list -> unit
(** Classic little-endian pcap, linktype Ethernet. *)

val read_file : string -> record list
(** Raises [Failure] on malformed files; handles both endiannesses. *)

val records_of_packets : ?usec_gap:int -> Packet.t list -> record list
(** Stamp packets [usec_gap] microseconds apart (default 10). *)
