(** Human-readable packet decoding (tcpdump-style one-liners), used by the
    analysis reports to make witness packets legible. *)

val packet : Format.formatter -> Packet.t -> unit
(** e.g. ["IPv4 10.0.0.9:5555 > 93.184.216.34:80 udp, 60B"] or
    ["eth 02:…:01 > ff:…:ff ethertype 0x0806, 60B"]. *)

val to_string : Packet.t -> string
