lib/net/flow.ml: Ethernet Fmt Ipv4 L4 Packet Stdlib
