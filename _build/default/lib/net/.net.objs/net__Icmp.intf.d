lib/net/icmp.mli: Packet
