lib/net/packet.ml: Bytes Char Fmt Printf String
