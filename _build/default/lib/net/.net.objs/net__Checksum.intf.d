lib/net/checksum.mli: Packet
