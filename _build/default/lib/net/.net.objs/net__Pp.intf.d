lib/net/pp.mli: Format Packet
