lib/net/flow.mli: Format Packet
