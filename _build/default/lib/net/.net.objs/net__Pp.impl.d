lib/net/pp.ml: Ethernet Fmt Icmp Ipv4 L4 Packet Printf
