lib/net/build.mli: Flow Packet
