lib/net/l4.mli: Packet
