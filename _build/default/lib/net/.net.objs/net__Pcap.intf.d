lib/net/pcap.mli: Packet
