lib/net/ethernet.mli: Packet
