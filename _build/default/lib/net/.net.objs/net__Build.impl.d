lib/net/build.ml: Ethernet Flow Ipv4 L4 Packet
