lib/net/pcap.ml: Buffer Bytes Char Fun List Packet String
