lib/net/checksum.ml: Packet
