lib/net/l4.ml: Ethernet Ipv4 Packet
