lib/net/icmp.ml: Build Checksum Ethernet Ipv4 Packet
