lib/net/ethernet.ml: Array Packet Printf
