let type_echo_request = 8
let type_echo_reply = 0
let base = Ethernet.header_len + Ipv4.min_header_len
let off_type = base
let off_code = base + 1
let off_checksum = base + 2
let off_ident = base + 4
let off_seq = base + 6
let get_type pkt = Packet.get_u8 pkt off_type
let set_type pkt v = Packet.set_u8 pkt off_type v
let get_ident pkt = Packet.get_u16 pkt off_ident
let get_seq pkt = Packet.get_u16 pkt off_seq

let message_len pkt = Packet.length pkt - base

let update_checksum pkt =
  Packet.set_u16 pkt off_checksum 0;
  Packet.set_u16 pkt off_checksum
    (Checksum.ones_complement pkt ~off:base ~len:(message_len pkt))

let checksum_ok pkt = Checksum.valid pkt ~off:base ~len:(message_len pkt)

let echo_request ?(len = 74) ~src_ip ~dst_ip ~ident ~seq () =
  let pkt = Build.eth ~len ~ethertype:Ethernet.ethertype_ipv4 () in
  Ipv4.init pkt ~proto:Ipv4.proto_icmp ~src:src_ip ~dst:dst_ip ();
  Packet.set_u8 pkt off_type type_echo_request;
  Packet.set_u8 pkt off_code 0;
  Packet.set_u16 pkt off_ident ident;
  Packet.set_u16 pkt off_seq seq;
  update_checksum pkt;
  pkt
