type record = { ts_sec : int; ts_usec : int; packet : Packet.t }

let magic = 0xa1b2c3d4
let version_major = 2
let version_minor = 4
let linktype_ethernet = 1

let write_u32_le buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let write_u16_le buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let write_file path records =
  let buf = Buffer.create 4096 in
  write_u32_le buf magic;
  write_u16_le buf version_major;
  write_u16_le buf version_minor;
  write_u32_le buf 0 (* thiszone *);
  write_u32_le buf 0 (* sigfigs *);
  write_u32_le buf 65535 (* snaplen *);
  write_u32_le buf linktype_ethernet;
  List.iter
    (fun { ts_sec; ts_usec; packet } ->
      let data = Packet.to_bytes packet in
      let len = Bytes.length data in
      write_u32_le buf ts_sec;
      write_u32_le buf ts_usec;
      write_u32_le buf len;
      write_u32_le buf len;
      Buffer.add_bytes buf data)
    records;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      if len < 24 then failwith "Pcap.read_file: truncated header";
      let byte i = Char.code data.[i] in
      let u32_le i =
        byte i lor (byte (i + 1) lsl 8) lor (byte (i + 2) lsl 16)
        lor (byte (i + 3) lsl 24)
      in
      let u32_be i =
        (byte i lsl 24) lor (byte (i + 1) lsl 16) lor (byte (i + 2) lsl 8)
        lor byte (i + 3)
      in
      let u32 =
        if u32_le 0 = magic then u32_le
        else if u32_be 0 = magic then u32_be
        else failwith "Pcap.read_file: bad magic"
      in
      let rec read_records off acc =
        if off >= len then List.rev acc
        else if off + 16 > len then
          failwith "Pcap.read_file: truncated record header"
        else
          let ts_sec = u32 off in
          let ts_usec = u32 (off + 4) in
          let incl_len = u32 (off + 8) in
          if off + 16 + incl_len > len then
            failwith "Pcap.read_file: truncated record"
          else
            let packet =
              Packet.of_bytes
                (Bytes.of_string (String.sub data (off + 16) incl_len))
            in
            read_records
              (off + 16 + incl_len)
              ({ ts_sec; ts_usec; packet } :: acc)
      in
      read_records 24 [])

let records_of_packets ?(usec_gap = 10) packets =
  List.mapi
    (fun i packet ->
      let us = i * usec_gap in
      { ts_sec = us / 1_000_000; ts_usec = us mod 1_000_000; packet })
    packets
