(** ICMP echo (ping), directly after an option-free IPv4 header. *)

val type_echo_request : int
val type_echo_reply : int
val off_type : int
(** Absolute offset (Ethernet + option-free IPv4). *)

val off_code : int
val off_checksum : int
val off_ident : int
val off_seq : int

val get_type : Packet.t -> int
val set_type : Packet.t -> int -> unit
val get_ident : Packet.t -> int
val get_seq : Packet.t -> int

val update_checksum : Packet.t -> unit
(** Checksum over the ICMP message (header start to packet end). *)

val checksum_ok : Packet.t -> bool

val echo_request :
  ?len:int -> src_ip:int -> dst_ip:int -> ident:int -> seq:int -> unit ->
  Packet.t
(** A well-formed ping with valid IP and ICMP checksums. *)
