(** Flow 5-tuples. *)

type t = {
  src_ip : int;
  dst_ip : int;
  src_port : int;
  dst_port : int;
  proto : int;
}

val make :
  src_ip:int -> dst_ip:int -> src_port:int -> dst_port:int -> proto:int -> t

val of_packet : Packet.t -> t option
(** [None] when the packet is not IPv4 TCP/UDP. *)

val reverse : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val hash_key : t -> int
(** A stable 62-bit packing of the 5-tuple, suitable as a hash-map key. *)

val pp : Format.formatter -> t -> unit
