let min_header_len = 20
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17
let base = Ethernet.header_len
let off_version_ihl = base
let off_total_len = base + 2
let off_ttl = base + 8
let off_proto = base + 9
let off_checksum = base + 10
let off_src = base + 12
let off_dst = base + 16
let off_options = base + 20
let get_version pkt = Packet.get_u8 pkt off_version_ihl lsr 4
let get_ihl pkt = Packet.get_u8 pkt off_version_ihl land 0xf
let option_count pkt = max 0 (get_ihl pkt - 5)
let header_len pkt = get_ihl pkt * 4
let get_total_len pkt = Packet.get_u16 pkt off_total_len
let get_ttl pkt = Packet.get_u8 pkt off_ttl
let get_proto pkt = Packet.get_u8 pkt off_proto
let get_src pkt = Packet.get_u32 pkt off_src
let get_dst pkt = Packet.get_u32 pkt off_dst
let get_checksum pkt = Packet.get_u16 pkt off_checksum
let l4_offset pkt = base + header_len pkt
let set_ttl pkt v = Packet.set_u8 pkt off_ttl v
let set_src pkt v = Packet.set_u32 pkt off_src v
let set_dst pkt v = Packet.set_u32 pkt off_dst v
let set_checksum pkt v = Packet.set_u16 pkt off_checksum v

let update_checksum pkt =
  set_checksum pkt 0;
  set_checksum pkt
    (Checksum.ones_complement pkt ~off:base ~len:(header_len pkt))

let checksum_ok pkt = Checksum.valid pkt ~off:base ~len:(header_len pkt)

(* IP timestamp option (RFC 781): type 68. *)
let timestamp_option_type = 68

let init pkt ?(options = 0) ?(ttl = 64) ~proto ~src ~dst () =
  Ethernet.set_ethertype pkt Ethernet.ethertype_ipv4;
  let ihl = 5 + options in
  if ihl > 15 then invalid_arg "Ipv4.init: too many options";
  Packet.set_u8 pkt off_version_ihl ((4 lsl 4) lor ihl);
  Packet.set_u8 pkt (base + 1) 0;
  Packet.set_u16 pkt off_total_len (Packet.length pkt - base);
  Packet.set_u16 pkt (base + 4) 0 (* id *);
  Packet.set_u16 pkt (base + 6) 0 (* flags/frag *);
  set_ttl pkt ttl;
  Packet.set_u8 pkt off_proto proto;
  set_src pkt src;
  set_dst pkt dst;
  for i = 0 to options - 1 do
    let off = off_options + (i * 4) in
    Packet.set_u8 pkt off timestamp_option_type;
    Packet.set_u8 pkt (off + 1) 4 (* option length *);
    Packet.set_u16 pkt (off + 2) 0
  done;
  update_checksum pkt

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xff)
    ((a lsr 16) land 0xff)
    ((a lsr 8) land 0xff)
    (a land 0xff)

let addr_of_parts a b c d =
  ((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16) lor ((c land 0xff) lsl 8)
  lor (d land 0xff)
