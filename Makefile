.PHONY: all build test bench bench-quick bench-smoke fuzz-smoke examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every table and figure of the paper (plus extensions).
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# CI smoke: quick workloads through the parallel pipeline, with the
# jobs:1 / jobs:N determinism cross-check, solver-cache stats and a
# Chrome trace of the run (open bench_trace.json in Perfetto).
bench-smoke:
	dune exec bench/main.exe -- speedup --quick --jobs 2 --trace bench_trace.json

# CI smoke for the soundness fuzzer: a few deterministic rounds of all
# four differential oracles (see docs/TESTING.md).  Exits non-zero on a
# counterexample and writes the machine-readable outcome next to it.
fuzz-smoke:
	dune exec bin/bolt_cli.exe -- fuzz --seed 1 --runs 8 --json fuzz_smoke.json

# Dump the curve figures as CSV next to the textual tables.
bench-csv:
	dune exec bench/main.exe -- --csv _figures

examples:
	dune exec examples/quickstart.exe
	dune exec examples/operator_defence.exe
	dune exec examples/developer_debugging.exe
	dune exec examples/allocator_choice.exe
	dune exec examples/chain_composition.exe
	dune exec examples/ci_workflow.exe

clean:
	dune clean
