.PHONY: all build test lint bench bench-quick bench-smoke soak-smoke scale-smoke fuzz-smoke fuzz-stateful-smoke tune-smoke topo-smoke examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# What the CI lint job runs: formatting (a no-op without ocamlformat
# installed), a warning-clean build of everything (dune emits nothing when clean), and the
# single-walker guard — the only IR traversal lives in lib/ir.
lint:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  ocamlformat --check $$(find lib bin test bench examples -name '*.ml' -o -name '*.mli'); \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi
	@out=$$(dune build @all 2>&1); \
	if [ -n "$$out" ]; then echo "$$out"; echo "lint: dune build emitted warnings"; exit 1; fi
	@hits=$$(grep -rn "exec_stmt" lib bin test bench examples \
	  --include='*.ml' --include='*.mli' | grep -v '^lib/ir/' || true); \
	if [ -n "$$hits" ]; then \
	  echo "lint: IR walker duplicated outside lib/ir:"; echo "$$hits"; exit 1; \
	fi
	@hits=$$(grep -rn "Interp\.run" lib/distiller lib/tuner lib/topo --include='*.ml' || true); \
	if [ -n "$$hits" ]; then \
	  echo "lint: Distiller, tuner and topo per-packet paths must stay off"; \
	  echo "      the interpreter (Exec.Compiled / Exec.Specialize only):"; \
	  echo "$$hits"; exit 1; \
	fi
	@hits=$$(grep -n "Ds\.find\|\.Ds\.call\|Meter\.instr" lib/exec/specialize.ml || true); \
	if [ -n "$$hits" ]; then \
	  echo "lint: specialized fast bodies must stay off the generic Ds dispatch"; \
	  echo "      and per-event meter charges (use fast paths and batched charging):"; \
	  echo "$$hits"; exit 1; \
	fi
	@hits=$$(grep -rn "Interp\.run\|Ds\.find\|\.Ds\.call" lib/dataplane --include='*.ml' || true); \
	if [ -n "$$hits" ]; then \
	  echo "lint: the sharded dataplane's per-packet paths must stay on the"; \
	  echo "      specialized engine (Exec.Specialize), never the interpreter"; \
	  echo "      or the generic Ds dispatch:"; \
	  echo "$$hits"; exit 1; \
	fi

# Regenerate every table and figure of the paper (plus extensions).
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# CI smoke: quick workloads through the parallel pipeline, with the
# jobs:1 / jobs:N determinism cross-check, solver-cache stats and a
# Chrome trace of the run (open bench_trace.json in Perfetto), then the
# interpreted / compiled / config-specialized throughput comparison
# (JSON artifact).  The throughput run replays the specialized engine
# against the interpreter before timing anything and exits non-zero on
# any divergence, so this target doubles as a specialization parity
# gate.
bench-smoke:
	dune exec bench/main.exe -- speedup --quick --jobs 2 --trace bench_trace.json
	dune exec bench/main.exe -- throughput --quick --json BENCH_throughput.json

# CI smoke for the soak benchmark: six traffic classes (uniform, Zipf,
# heavy-tailed bursts, flow churn, a NAT hash-collision flood and an
# LPM tbl8 prefix attack) through the specialized engine, each class
# also replayed against its contract for soundness.  The JSON artifact
# records per-class pps + soundness and the collision-vs-uniform
# slowdown; the full (non-quick) run regenerates the tracked
# BENCH_soak.json with million-flow churn.
soak-smoke:
	dune exec bench/main.exe -- soak --quick --json BENCH_soak_smoke.json

# CI smoke for the sharded dataplane's scalability contract: firewall,
# NAT and maglev at 1/2/4 shards, each level gated on bit-level replay
# parity (parallel == serial, shards-N == shards-1) and the two
# dispatcher-affinity oracles; the multicore speedup and
# prediction-error gates arm themselves only when
# Domain.recommended_domain_count >= 2, so the target is safe on the
# 1-core CI runner (the artifact's provenance block records what ran
# where).  The full (non-quick) run regenerates the tracked
# BENCH_scale.json.
scale-smoke:
	dune exec bench/main.exe -- scale --quick --json BENCH_scale_smoke.json

# CI smoke for the soundness fuzzer's stateful mode: deterministic
# command-sequence campaigns over every dslib structure, each checked
# against its purely-functional model and its per-command contract
# bounds (see docs/TESTING.md).  Failures shrink and print a replayable
# trace.
fuzz-stateful-smoke:
	dune exec bin/bolt_cli.exe -- fuzz --stateful --seed 1 --runs 8 --json fuzz_stateful_smoke.json

# CI smoke for the autotuner: a small router grid (two LPM backends x
# three route-table sizes) priced analytically, winner validated by
# compiled replay; the JSON artifact carries the Pareto front and the
# predicted-vs-measured error.
tune-smoke:
	dune exec bin/bolt_cli.exe -- tune trie_router --packets 128 --json BENCH_tuner.json

# CI smoke for the network-wide contract engine: every built-in
# topology jointly analysed (route-tuple pruning on), the composed
# end-to-end bound compared against naive per-NF addition (must never
# be looser, and must be strictly tighter somewhere — the Figure 3
# property network-wide), and the built-in workload replayed through
# the specialized per-node harness with every packet checked against
# the bound.  Exits non-zero if any property fails; the full
# (non-quick) run regenerates the tracked BENCH_topo.json.
topo-smoke:
	dune exec bench/main.exe -- topo --quick --json BENCH_topo_smoke.json

# CI smoke for the soundness fuzzer: a few deterministic rounds of all
# six differential oracles (see docs/TESTING.md).  Exits non-zero on a
# counterexample and writes the machine-readable outcome next to it.
fuzz-smoke:
	dune exec bin/bolt_cli.exe -- fuzz --seed 1 --runs 8 --json fuzz_smoke.json

# Dump the curve figures as CSV next to the textual tables.
bench-csv:
	dune exec bench/main.exe -- --csv _figures

examples:
	dune exec examples/quickstart.exe
	dune exec examples/operator_defence.exe
	dune exec examples/developer_debugging.exe
	dune exec examples/allocator_choice.exe
	dune exec examples/chain_composition.exe
	dune exec examples/ci_workflow.exe

clean:
	dune clean
