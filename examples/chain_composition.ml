(* Operator use-case (paper §3.4, §5.2, Figure 3): reasoning about a
   chain of NFs — here as a first-class topology.

   A firewall that drops packets carrying IP options sits in front of a
   router whose only expensive path is processing IP options.  Adding
   the two worst cases is badly pessimistic: the joint topology walk
   proves the expensive combination is unreachable and produces a
   tighter bound.

     dune exec examples/chain_composition.exe *)

let () =
  (* the chain is data: validate the topology before analysing it *)
  let graph = Experiments.Exhibits.fw_router_graph () in
  (match Topo.Graph.validate graph with
  | [] -> ()
  | errs ->
      Fmt.epr "ill-formed topology:@.%a@."
        Fmt.(list ~sep:(any "@.") Topo.Graph.pp_error)
        errs;
      exit 1);

  Fmt.pr "Individual contracts (paper Table 5a/5b) and the chain (5c):@.@.";
  Experiments.Exhibits.table5 Fmt.stdout;

  Fmt.pr "@.Figure 3 — worst-case bounds vs a measured run of the chain:@.@.";
  Experiments.Exhibits.figure3 ~packets:512 Fmt.stdout;

  let chain = Experiments.Exhibits.chain_experiment ~packets:512 () in
  let binding = [ (Perf.Pcv.ip_options, 3) ] in
  let ic vec =
    Perf.Perf_expr.eval_exn binding
      (Perf.Cost_vec.get vec Perf.Metric.Instructions)
  in
  let naive = ic chain.Experiments.Exhibits.naive_add in
  let joint = ic chain.Experiments.Exhibits.composite in
  Fmt.pr
    "@.=> the jointly analysed bound is %d instructions vs %d for naive \
     addition@.   (%.0f%% tighter): provisioning from per-NF contracts \
     alone would@.   over-provision the chain.@."
    joint naive
    (100. *. float_of_int (naive - joint) /. float_of_int naive)
