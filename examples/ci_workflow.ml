(* Performance contracts as a CI gate.

   Contracts are serialisable artifacts, so performance review works like
   code review: derive a contract per commit, diff against the baseline,
   and fail the build on a regression — with the diff naming the input
   class and the PCV coefficient that got worse, not just "the benchmark
   got slower".

   This example simulates a developer "improving" the NAT's hash function
   by making key comparison cost one extra word, and shows the machinery
   catching it:

     dune exec examples/ci_workflow.exe *)

let derive () =
  let t =
    Bolt.Pipeline.analyze
      ~config:
        Bolt.Pipeline.Config.(default |> with_contracts (Nf.Nat.contracts ()))
      Nf.Nat.program
  in
  Bolt.Pipeline.contract t ~classes:(Nf.Nat.table6_classes ())

let () =
  (* --- commit 1: derive and export the baseline ----------------------- *)
  let baseline = derive () in
  let path = Filename.temp_file "nat_contract" ".json" in
  Perf.Contract_io.write_contract ~path baseline;
  Fmt.pr "baseline contract exported to %s (%d classes)@.@." path
    (List.length (Perf.Contract.class_names baseline));

  (* --- an operator consumes the artifact without running BOLT --------- *)
  (match Perf.Contract_io.read_contract ~path with
  | Error msg -> failwith msg
  | Ok c ->
      let bound =
        Result.get_ok
          (Perf.Contract.predict c ~class_name:"Known flows (forwarded)"
             Perf.Pcv.[ (expired, 1); (collisions, 0); (traversals, 1) ]
             Perf.Metric.Instructions)
      in
      Fmt.pr
        "operator reads it back: established flows with one expiry cost \
         at most %d instructions@.@."
        bound);

  (* --- commit 2: simulate a regression -------------------------------- *)
  let regressed =
    (* bump the e-coefficient of every class: what a sloppier expiry loop
       would do to the derived contract *)
    Perf.Contract.make ~nf:baseline.Perf.Contract.nf
      (List.map
         (fun (e : Perf.Contract.entry) ->
           let bump expr =
             Perf.Perf_expr.add expr (Perf.Perf_expr.term 25 [ Perf.Pcv.expired ])
           in
           {
             e with
             Perf.Contract.cost =
               Perf.Cost_vec.make
                 ~ic:(bump (Perf.Cost_vec.get e.Perf.Contract.cost
                              Perf.Metric.Instructions))
                 ~ma:(Perf.Cost_vec.get e.Perf.Contract.cost
                        Perf.Metric.Memory_accesses)
                 ~cycles:(Perf.Cost_vec.get e.Perf.Contract.cost
                            Perf.Metric.Cycles);
           })
         baseline.Perf.Contract.entries)
  in
  let diff = Perf.Contract_diff.diff baseline regressed in
  Fmt.pr "the gate diffs the new contract against the baseline:@.@.%a@."
    Perf.Contract_diff.pp diff;
  (match Perf.Contract_diff.regressions diff with
  | [] -> Fmt.pr "no regressions — merge away@."
  | r ->
      Fmt.pr
        "=> %d regressed entries: CI fails the merge, pointing at the \
         per-expiry cost@."
        (List.length r));

  (* --- and the contract is continuously validated in staging ---------- *)
  let dss, _ = Nf.Nat.setup (Dslib.Layout.allocator ()) in
  let rng = Workload.Prng.create ~seed:99 in
  let stream =
    Workload.Gen.churn rng ~pool:128 ~packets:2_000 ~new_flow_prob:0.1
      ~gap:200 ~start:1_000_000
  in
  let worst =
    Bolt.Pipeline.worst_case
      (Bolt.Pipeline.analyze
         ~config:
           Bolt.Pipeline.Config.(
             default |> with_contracts (Nf.Nat.contracts ()))
         Nf.Nat.program)
  in
  let report = Experiments.Validate.run ~worst ~dss Nf.Nat.program stream in
  Fmt.pr "@.staging validation: %a" Experiments.Validate.pp report;
  Sys.remove path
