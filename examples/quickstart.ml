(* Quickstart: derive a performance contract for an NF you wrote.

   This is the paper's running example (§2.1): a simplified LPM router
   over a Patricia trie.  We write the NF in the IR, point BOLT at it,
   and read off the contract — then check the prediction against a real
   (simulated) run.

     dune exec examples/quickstart.exe *)

open Ir

(* 1. Write the NF: classify, look up, forward (paper Algorithm 1).
   Stateful data structures are declared and called by name; [lpm] is a
   Patricia-trie LPM from the pre-analysed library. *)
let my_router =
  Program.make ~name:"my_router"
    ~state:[ { Program.instance = "lpm"; kind = Dslib.Lpm_trie.kind } ]
    Stmt.
      [
        if_ Expr.(Pkt_len < int 34) [ drop ] [];
        assign "ethertype" Expr.(load16 (int 12));
        if_ Expr.(var "ethertype" != int 0x0800) [ drop ] [];
        assign "dst" Expr.(load32 (int 30));
        call ~ret:"port" "lpm" "lookup" [ Expr.var "dst" ];
        forward (Expr.var "port");
      ]

(* 2. Input classes: which packets do you want separate predictions for? *)
let classes =
  Symbex.
    [
      Iclass.make ~name:"invalid" ~description:"non-IPv4 (dropped)"
        ~predicate:(Iclass.field_ne Ir.Expr.W16 12 0x0800)
        ();
      Iclass.make ~name:"valid" ~description:"IPv4 (routed)"
        ~predicate:(Iclass.field_eq Ir.Expr.W16 12 0x0800)
        ~bindings:[ (Perf.Pcv.prefix_len, 24) ]
        ();
    ]

let () =
  (* 3. Run the BOLT pipeline: symbolic execution of the stateless code +
     the library's pre-analysed contract for lpm_trie.lookup. *)
  let analysis =
    Bolt.Pipeline.analyze
      ~config:
        Bolt.Pipeline.Config.(
          default
          |> with_contracts
               (Perf.Ds_contract.library Dslib.Lpm_trie.Recipe.contract))
      my_router
  in
  let contract = Bolt.Pipeline.contract analysis ~classes in
  Fmt.pr "%a@." Perf.Contract.pp contract;

  (* 4. Ask for a concrete bound: what is the worst case for a packet
     matching a 24-bit prefix? *)
  (match
     Perf.Contract.predict contract ~class_name:"valid"
       [ (Perf.Pcv.prefix_len, 24) ]
       Perf.Metric.Instructions
   with
  | Ok bound -> Fmt.pr "valid packets, l=24: at most %d instructions@." bound
  | Error pcv -> Fmt.pr "missing PCV %a@." Perf.Pcv.pp pcv);

  (* 5. Sanity-check against the production build: run a real packet
     through the real trie and compare. *)
  let alloc = Dslib.Layout.allocator () in
  let trie =
    Dslib.Lpm_trie.create ~base:(Dslib.Layout.region alloc) ~default_port:9
  in
  Dslib.Lpm_trie.add_route trie
    ~prefix:(Net.Ipv4.addr_of_parts 10 1 2 0)
    ~len:24 ~port:3;
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let packet =
    Net.Build.udp
      ~src_ip:(Net.Ipv4.addr_of_parts 192 0 2 1)
      ~dst_ip:(Net.Ipv4.addr_of_parts 10 1 2 77)
      ~src_port:1234 ~dst_port:80 ()
  in
  let run =
    Exec.Interp.run ~meter
      ~mode:(Exec.Interp.Production [ ("lpm", Dslib.Lpm_trie.to_ds trie) ])
      my_router packet
  in
  (match run.Exec.Interp.outcome with
  | Exec.Interp.Sent port -> Fmt.pr "measured: forwarded on port %d, " port
  | _ -> Fmt.pr "measured: not forwarded?! ");
  Fmt.pr "%d instructions, %d memory accesses@." run.Exec.Interp.ic
    run.Exec.Interp.ma;
  Fmt.pr
    "@.The gap between bound and measurement is BOLT's deliberate \
     conservatism:@.path coalescing in the library contract plus the \
     analysis-build call overhead.@."
