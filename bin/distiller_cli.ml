(* The Distiller CLI: replay a pcap through an NF's production build and
   report the induced PCV distributions (paper §4). *)

let distill nf_name pcap_path in_port =
  let entry = Nf.Registry.find nf_name in
  let alloc = Dslib.Layout.allocator () in
  let dss = entry.Nf.Registry.setup alloc in
  let result =
    Distiller.Run.run_pcap ~dss entry.Nf.Registry.program ~path:pcap_path
      ~in_port ()
  in
  Fmt.pr "replayed %d packets@.@." (Distiller.Run.count result);
  let interesting =
    Perf.Pcv.[ expired; collisions; traversals; occupancy; scan ]
  in
  List.iter
    (fun pcv ->
      let values = Distiller.Run.pcv_values result pcv in
      if List.exists (fun v -> v > 0) values then begin
        Fmt.pr "PCV %a — per-packet density:@." Perf.Pcv.pp pcv;
        Fmt.pr "%a@." Distiller.Stats.pp_density
          (Distiller.Stats.density values)
      end)
    interesting;
  Fmt.pr "latency (cycles): mean %.0f, p99 %d, max %d@."
    (Distiller.Stats.mean (Distiller.Run.latencies result))
    (Distiller.Stats.percentile (Distiller.Run.latencies result) 0.99)
    (Distiller.Run.max_cycles result)

open Cmdliner

let nf_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NF"
       ~doc:"Network function name.")

let pcap_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"PCAP"
       ~doc:"Traffic sample to replay.")

let in_port_arg =
  Arg.(value & opt int 0 & info [ "in-port" ] ~doc:"Ingress port.")

let () =
  let info =
    Cmd.info "bolt-distill" ~version:"1.0.0"
      ~doc:"Compute PCV values induced by a packet trace"
  in
  exit
    (Cmd.eval (Cmd.v info Term.(const distill $ nf_arg $ pcap_arg $ in_port_arg)))
