(* The BOLT command-line tool: derive and print performance contracts. *)

let analyze ?jobs (entry : Nf.Registry.entry) =
  let config =
    Bolt.Pipeline.Config.(
      default |> with_contracts entry.Nf.Registry.contracts)
  in
  let config =
    match jobs with
    | None -> config
    | Some j -> Bolt.Pipeline.Config.with_jobs j config
  in
  Bolt.Pipeline.analyze ~config entry.Nf.Registry.program

(* Observability output goes to stderr, so the contract printed on
   stdout stays bit-identical whether or not a run is traced. *)
let dump_obs trace_path stats =
  (match trace_path with
  | Some path ->
      Obs.Trace_io.write ~path;
      Fmt.epr "wrote trace %s@." path
  | None -> ());
  if stats then begin
    Fmt.epr "@.== per-phase spans ==@.%a" Obs.Span.pp_summary ();
    Fmt.epr "@.== metrics ==@.%a" Obs.Metrics.pp ()
  end

let contract_cmd nf_name metric json_path jobs trace_path stats =
  if trace_path <> None || stats then Obs.enable ();
  let entry = Nf.Registry.find nf_name in
  let t = analyze ?jobs entry in
  let contract = Bolt.Pipeline.contract t ~classes:entry.Nf.Registry.classes in
  (match json_path with
  | Some path ->
      Perf.Contract_io.write_contract ~path contract;
      Fmt.pr "wrote %s@." path
  | None -> ());
  Fmt.pr "analysed %d feasible paths (%d forks pruned)@.@."
    (Bolt.Pipeline.path_count t)
    t.Bolt.Pipeline.engine.Symbex.Engine.infeasible_pruned;
  (match metric with
  | None -> Fmt.pr "%a@." Perf.Contract.pp contract
  | Some m -> Fmt.pr "%a@." (Perf.Contract.pp_metric m) contract);
  Fmt.pr "@.concrete bounds at each class's PCV bindings:@.";
  List.iter
    (fun (cls : Symbex.Iclass.t) ->
      let row metric =
        match Bolt.Pipeline.predict t cls metric with
        | Ok n -> string_of_int n
        | Error pcv -> "unbound PCV " ^ Perf.Pcv.name pcv
      in
      Fmt.pr "  %-6s IC <= %-14s MA <= %-12s cycles <= %s@."
        cls.Symbex.Iclass.name
        (row Perf.Metric.Instructions)
        (row Perf.Metric.Memory_accesses)
        (row Perf.Metric.Cycles))
    entry.Nf.Registry.classes;
  dump_obs trace_path stats

let stats_cmd nf_name jobs trace_path =
  Obs.enable ();
  let entry = Nf.Registry.find nf_name in
  let t = analyze ?jobs entry in
  let cache = Solver.Cache.stats () in
  Fmt.pr "pipeline for %s: %d feasible paths, %d forks pruned, %d unsolved@."
    nf_name
    (Bolt.Pipeline.path_count t)
    t.Bolt.Pipeline.engine.Symbex.Engine.infeasible_pruned
    t.Bolt.Pipeline.unsolved;
  Fmt.pr
    "solver cache: %d hits / %d misses / %d evictions (%.1f%% hit rate)@."
    cache.Solver.Cache.hits cache.Solver.Cache.misses
    cache.Solver.Cache.evictions
    (100. *. Solver.Cache.hit_rate cache);
  Fmt.pr "@.== per-phase spans ==@.%a" Obs.Span.pp_summary ();
  Fmt.pr "@.== metrics ==@.%a" Obs.Metrics.pp ();
  match trace_path with
  | Some path ->
      Obs.Trace_io.write ~path;
      Fmt.pr "@.wrote trace %s@." path
  | None -> ()

let paths_cmd nf_name =
  let entry = Nf.Registry.find nf_name in
  let t = analyze entry in
  Fmt.pr "%a" (Bolt.Report.pp_paths ~witnesses:true) t

let report_cmd nf_name =
  let entry = Nf.Registry.find nf_name in
  let t = analyze entry in
  Fmt.pr "%a" (Bolt.Report.pp_full ~classes:entry.Nf.Registry.classes) t

let program_cmd nf_name =
  let entry = Nf.Registry.find nf_name in
  Fmt.pr "%a@." Ir.Program.pp entry.Nf.Registry.program

let validate_cmd nf_name pcap_path in_port =
  let entry = Nf.Registry.find nf_name in
  let t = analyze entry in
  let worst = Bolt.Pipeline.worst_case t in
  let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
  let stream =
    Workload.Stream.of_pcap ~in_port (Net.Pcap.read_file pcap_path)
  in
  let report =
    Experiments.Validate.run ~worst ~dss entry.Nf.Registry.program stream
  in
  Fmt.pr "%a" Experiments.Validate.pp report;
  if report.Experiments.Validate.violations <> [] then exit 2

(* Property-based soundness fuzzing: run the Proptest oracles for a
   number of seeded rounds.  Deterministic: the same --seed/--runs/
   --oracle combination always draws the same subjects and shrinks to
   the same counterexamples, so every reported failure comes with a
   replayable command. *)
let fuzz_cmd seed runs oracle_names stateful list_only json_path =
  if list_only then begin
    List.iter (fun n -> Fmt.pr "%s@." n) (Proptest.Oracle.names ());
    List.iter (fun n -> Fmt.pr "%s@." n) (Proptest.Oracle.stateful_names ())
  end
  else begin
    let oracles =
      match (oracle_names, stateful) with
      | [], false -> Proptest.Oracle.all ()
      | [], true -> Proptest.Oracle.stateful ()
      | names, _ -> List.map Proptest.Oracle.find names
    in
    Fmt.pr "fuzzing %d round(s) of [%s] from seed %d@." runs
      (String.concat ", "
         (List.map (fun (o : Proptest.Oracle.t) -> o.Proptest.Oracle.name) oracles))
      seed;
    let outcome =
      Proptest.Runner.run ~log:(fun s -> Fmt.pr "%s@." s) ~seed ~runs ~oracles ()
    in
    Fmt.pr "@.%a" Proptest.Runner.pp_outcome outcome;
    (match json_path with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        let esc s =
          String.concat ""
            (List.map
               (function
                 | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
                 | c when Char.code c < 32 -> Printf.sprintf "\\u%04x" (Char.code c)
                 | c -> String.make 1 c)
               (List.init (String.length s) (String.get s)))
        in
        Printf.fprintf oc
          "{\"seed\": %d, \"runs\": %d, \"checks\": %d, \"failures\": [%s]}\n"
          outcome.Proptest.Runner.seed outcome.Proptest.Runner.runs
          outcome.Proptest.Runner.checks
          (String.concat ", "
             (List.map
                (fun (f : Proptest.Oracle.failure) ->
                  Printf.sprintf
                    "{\"oracle\": \"%s\", \"seed\": %d, \"repro\": \"%s\", \
                     \"detail\": \"%s\"}"
                    (esc f.Proptest.Oracle.oracle) f.Proptest.Oracle.seed
                    (esc f.Proptest.Oracle.repro) (esc f.Proptest.Oracle.detail))
                outcome.Proptest.Runner.failures));
        close_out oc;
        Fmt.pr "wrote %s@." path);
    if outcome.Proptest.Runner.failures <> [] then exit 1
  end

(* Contract-guided autotuning: enumerate a deterministic grid of specs,
   price each point analytically, print the Pareto front and validate
   the winner by compiled replay. *)
let tune_cmd nf_name backends capacities packets jobs seed json_path =
  let opt = function [] -> None | l -> Some l in
  let result =
    try
      Tuner.Tune.run ~nf:nf_name ?backends:(opt backends)
        ?capacities:(opt capacities) ~packets ?jobs ~seed ()
    with Invalid_argument msg ->
      Fmt.epr "tune: %s@." msg;
      exit 1
  in
  Fmt.pr "%a" Tuner.Tune.pp result;
  match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Perf.Json.to_string ~indent:true (Tuner.Tune.to_json result));
      output_char oc '\n';
      close_out oc;
      Fmt.pr "wrote %s@." path

(* Network-wide contracts: analyse a built-in topology (ISSUE: topologies
   as first-class programs).  The graph is validated, walked jointly —
   every node symbolically executed on its predecessor's symbolic output,
   infeasible route tuples pruned — and the result printed as
   per-(ingress-class, egress) end-to-end bounds.  --replay additionally
   pushes the topology's deterministic workload through the specialized
   per-node engines and checks every packet against the composed bound
   (exit 2 on violation). *)
let topo_cmd name_opt list_only class_name jobs replay metric json_path =
  if list_only then
    List.iter (fun n -> Fmt.pr "%s@." n) (Topo.Builtin.names ())
  else begin
    let name =
      match name_opt with
      | Some n -> n
      | None ->
          Fmt.epr "topo: name a topology (or --list); known: %s@."
            (String.concat ", " (Topo.Builtin.names ()));
          exit 1
    in
    let entry =
      try Topo.Builtin.find name
      with Invalid_argument msg ->
        Fmt.epr "topo: %s@." msg;
        exit 1
    in
    let g = entry.Topo.Builtin.graph in
    Fmt.pr "%a@." Topo.Graph.pp g;
    let t = Topo.Analysis.run ?jobs g in
    Fmt.pr
      "analysed %d end-to-end routes (%d infeasible route tuples pruned, %d \
       unsolved)@.@."
      (List.length t.Topo.Analysis.routes)
      t.Topo.Analysis.infeasible_routes t.Topo.Analysis.unsolved;
    let contract = Topo.Analysis.contract t in
    (match json_path with
    | Some path ->
        Perf.Contract_io.write_contract ~path contract;
        Fmt.pr "wrote %s@." path
    | None -> ());
    (match class_name with
    | None -> (
        match metric with
        | None -> Fmt.pr "%a@." Perf.Contract.pp contract
        | Some m -> Fmt.pr "%a@." (Perf.Contract.pp_metric m) contract)
    | Some cname ->
        let cls =
          match
            List.find_opt
              (fun (c : Symbex.Iclass.t) -> c.Symbex.Iclass.name = cname)
              (Topo.Analysis.ingress_classes t)
          with
          | Some c -> c
          | None ->
              Fmt.epr "topo: unknown class %S; ingress classes: %s@." cname
                (String.concat ", "
                   (List.map
                      (fun (c : Symbex.Iclass.t) -> c.Symbex.Iclass.name)
                      (Topo.Analysis.ingress_classes t)));
              exit 1
        in
        let cost, n = Topo.Analysis.class_cost t cls in
        Fmt.pr "end-to-end bound for class %s (%d compatible routes):@.%a@."
          cname n Perf.Cost_vec.pp cost;
        List.iter
          (fun eg ->
            let c, k = Topo.Analysis.class_egress_cost t cls eg in
            if k > 0 then
              Fmt.pr "@.  via %a (%d routes):  IC <= %a@." Topo.Analysis.pp_egress
                eg k Perf.Perf_expr.pp
                (Perf.Cost_vec.get c Perf.Metric.Instructions))
          (Topo.Analysis.egresses t));
    if replay > 0 then begin
      let harness = Topo.Harness.create g in
      let report =
        Topo.Harness.check harness ~worst:(Topo.Analysis.worst t)
          (entry.Topo.Builtin.workload ~packets:replay)
      in
      Fmt.pr "@.replay of the built-in workload vs the composed bound:@.%a"
        Topo.Harness.pp_report report;
      if report.Topo.Harness.violations <> [] then exit 2
    end
  end

open Cmdliner

let nf_arg =
  let doc =
    Printf.sprintf "Network function to analyse: %s."
      (String.concat ", " (Nf.Registry.names ()))
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)

let metric_arg =
  let parse = function
    | "ic" -> Ok (Some Perf.Metric.Instructions)
    | "ma" -> Ok (Some Perf.Metric.Memory_accesses)
    | "cycles" -> Ok (Some Perf.Metric.Cycles)
    | s -> Error (`Msg ("unknown metric " ^ s))
  in
  let print ppf = function
    | None -> Fmt.string ppf "all"
    | Some m -> Perf.Metric.pp ppf m
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "metric" ] ~docv:"METRIC" ~doc:"Only print ic, ma or cycles.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the contract as JSON to $(docv).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the analysis (default: BOLT_JOBS or the \
           core count).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run and write a Chrome trace-event JSON to $(docv) \
           (open in chrome://tracing or Perfetto).")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print span and metric summaries to stderr after the run.")

let predict_cmd nf_name json_path bindings_raw metric_name =
  (* evaluate a previously exported contract without re-running BOLT *)
  ignore nf_name;
  match Perf.Contract_io.read_contract ~path:json_path with
  | Error msg ->
      Fmt.epr "cannot read %s: %s@." json_path msg;
      exit 1
  | Ok contract ->
      let bindings =
        List.map
          (fun kv ->
            match String.split_on_char '=' kv with
            | [ name; value ] -> (Perf.Pcv.v name, int_of_string value)
            | _ -> invalid_arg ("bad binding " ^ kv))
          bindings_raw
      in
      let metric =
        match metric_name with
        | "ic" -> Perf.Metric.Instructions
        | "ma" -> Perf.Metric.Memory_accesses
        | "cycles" -> Perf.Metric.Cycles
        | other -> invalid_arg ("unknown metric " ^ other)
      in
      List.iter
        (fun class_name ->
          match
            Perf.Contract.predict contract ~class_name bindings metric
          with
          | Ok n -> Fmt.pr "  %-40s %a <= %d@." class_name Perf.Metric.pp metric n
          | Error pcv ->
              Fmt.pr "  %-40s (bind PCV %a to evaluate)@." class_name
                Perf.Pcv.pp pcv)
        (Perf.Contract.class_names contract)

(* Sharded dataplane: derive the scalability contract at each shard
   count, measure the parallel drain against it, and run the
   dispatcher-affinity oracles.  Parity or affinity violations exit 2 —
   they are correctness failures, not performance misses. *)
let scale_cmd nf_opt shard_levels packets reps seed affinity json_path =
  let nfs =
    match nf_opt with None -> Dataplane.Scale.default_nfs | Some n -> [ n ]
  in
  let levels = match shard_levels with [] -> [ 1; 2; 4 ] | l -> l in
  let results =
    List.map
      (fun nf ->
        try Dataplane.Scale.run ~levels ~packets ~reps ~seed nf
        with Invalid_argument msg ->
          Fmt.epr "scale: %s@." msg;
          exit 1)
      nfs
  in
  List.iter (fun r -> Fmt.pr "%a@." Dataplane.Scale.pp r) results;
  let oracles =
    if not affinity then []
    else begin
      let shards = max 2 (List.fold_left max 1 levels) in
      let os =
        [
          Dataplane.Oracle.conntrack_affinity ~shards ();
          Dataplane.Oracle.nat_affinity ~shards ();
        ]
      in
      Fmt.pr "@.";
      List.iter (fun r -> Fmt.pr "%a@." Dataplane.Oracle.pp r) os;
      os
    end
  in
  if Domain.recommended_domain_count () = 1 then
    Fmt.pr
      "@.note: 1-core environment — the contract's 1/cores floor \
       predicts no speedup here.@.";
  (match json_path with
  | None -> ()
  | Some path ->
      let j =
        Perf.Json.Obj
          [
            ("artifact", Perf.Json.String "scale");
            ("nfs", Perf.Json.List (List.map Dataplane.Scale.to_json results));
            ( "affinity",
              Perf.Json.List
                (List.map
                   (fun (r : Dataplane.Oracle.report) ->
                     Perf.Json.Obj
                       [
                         ("nf", Perf.Json.String r.Dataplane.Oracle.nf);
                         ("shards", Perf.Json.Int r.Dataplane.Oracle.shards);
                         ("checked", Perf.Json.Int r.Dataplane.Oracle.checked);
                         ( "violations",
                           Perf.Json.Int
                             (List.length r.Dataplane.Oracle.violations) );
                       ])
                   oracles) );
          ]
      in
      let oc = open_out path in
      output_string oc (Perf.Json.to_string ~indent:true j);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "wrote %s@." path);
  let parity_broken =
    List.exists
      (fun (r : Dataplane.Scale.result) ->
        List.exists
          (fun (l : Dataplane.Scale.level) -> not l.Dataplane.Scale.parity_ok)
          r.Dataplane.Scale.levels)
      results
  in
  if parity_broken || not (List.for_all Dataplane.Oracle.ok oracles) then begin
    Fmt.epr "scale: sharded execution violated a correctness gate@.";
    exit 2
  end

let diff_cmd before_path after_path =
  match
    ( Perf.Contract_io.read_contract ~path:before_path,
      Perf.Contract_io.read_contract ~path:after_path )
  with
  | Error msg, _ | _, Error msg ->
      Fmt.epr "%s@." msg;
      exit 1
  | Ok before, Ok after ->
      let d = Perf.Contract_diff.diff before after in
      Fmt.pr "%a@." Perf.Contract_diff.pp d;
      if Perf.Contract_diff.regressions d <> [] then begin
        Fmt.pr "@.performance regressions detected.@.";
        exit 2
      end

let fuzz_t =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:
            "Master seed.  The campaign is a pure function of \
             --seed/--runs/--oracle, so failures replay exactly.")
  in
  let runs_arg =
    Arg.(
      value & opt int 20
      & info [ "runs"; "n" ] ~docv:"N"
          ~doc:"Rounds to run (each round runs every selected oracle once).")
  in
  let oracle_arg =
    Arg.(
      value & opt_all string []
      & info [ "oracle"; "o" ] ~docv:"NAME"
          ~doc:
            "Oracle to run (repeatable; default: all).  See --list for \
             names.")
  in
  let stateful_flag =
    Arg.(
      value & flag
      & info [ "stateful" ]
          ~doc:
            "Run the stateful model-based oracles instead of the \
             stateless set: per-structure command sequences replayed \
             against purely-functional fakes, with per-command contract \
             bound checks and shrinking to a minimal replayable trace.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List oracle names and exit.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the outcome (including failing seeds and repro \
             commands) as JSON to $(docv) — what the nightly CI lane \
             uploads as an artifact.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based soundness fuzzing: generative NF/workload \
          testing against differential oracles (contract \
          conservativeness, jobs determinism, cache equivalence, obs \
          neutrality), with automatic shrinking; exits 1 on any \
          counterexample.  --stateful switches to the model-based \
          command-sequence oracles over the dslib structures")
    Term.(
      const fuzz_cmd $ seed_arg $ runs_arg $ oracle_arg $ stateful_flag
      $ list_flag $ json_arg)

let contract_t =
  Cmd.v
    (Cmd.info "contract" ~doc:"Derive an NF's performance contract")
    Term.(
      const contract_cmd $ nf_arg $ metric_arg $ json_arg $ jobs_arg
      $ trace_arg $ stats_flag)

let stats_t =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the analysis with observability on and print per-phase \
          span timings, pipeline counters and solver-cache statistics")
    Term.(const stats_cmd $ nf_arg $ jobs_arg $ trace_arg)

let diff_t =
  let pos n doc =
    Arg.(required & Arg.pos n (some file) None & info [] ~docv:"CONTRACT.json" ~doc)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Diff two exported contracts; exits 2 when a bound can have \
          regressed")
    Term.(const diff_cmd $ pos 0 "Baseline contract." $ pos 1 "New contract.")

let predict_t =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CONTRACT.json"
         ~doc:"Contract previously exported with --json.")
  in
  let bindings_arg =
    Arg.(value & opt_all string [] & info [ "bind"; "b" ] ~docv:"PCV=VALUE"
         ~doc:"Bind a PCV, e.g. -b e=0 -b t=1 (repeatable).")
  in
  let metric_arg =
    Arg.(value & opt string "ic" & info [ "metric" ] ~docv:"METRIC"
         ~doc:"ic, ma or cycles.")
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Evaluate an exported contract at concrete PCV values")
    Term.(const predict_cmd $ const "" $ file_arg $ bindings_arg $ metric_arg)

let tune_t =
  let backends_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "backends" ] ~docv:"B1,B2"
          ~doc:
            "Backend axis of the grid (default: every registered backend \
             for the NF's family — dir24_8,trie for the routers, \
             dll,array for the NAT, flow for the flow-table NFs).")
  in
  let capacities_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "capacities"; "grid" ] ~docv:"N1,N2,N3"
          ~doc:
            "Capacity axis (table capacity, or route-table size for the \
             routers; default: three family-appropriate sizes).")
  in
  let packets_arg =
    Arg.(
      value & opt int 512
      & info [ "packets" ] ~docv:"N" ~doc:"Workload length in packets.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Workload seed.  The whole run is a pure function of \
             (nf, backends, capacities, packets, seed).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the grid, Pareto front and winner validation as JSON \
             to $(docv) (e.g. BENCH_tuner.json).")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Contract-guided design-space exploration: price a grid of \
          backend/capacity specs analytically (contracts instantiated \
          with Distiller-harvested PCV distributions — nothing is \
          timed), print the Pareto front over predicted p50/p99 \
          cycles and memory footprint, then confirm the winner by \
          compiled replay of the same workload")
    Term.(
      const tune_cmd $ nf_arg $ backends_arg $ capacities_arg $ packets_arg
      $ jobs_arg $ seed_arg $ json_arg)

let scale_t =
  let nf_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NF"
          ~doc:
            "NF to shard (default: the scale set — firewall, nat, \
             maglev).")
  in
  let shards_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "shards" ] ~docv:"N1,N2"
          ~doc:"Shard counts to evaluate (default: 1,2,4).")
  in
  let packets_arg =
    Arg.(
      value & opt int 4096
      & info [ "packets" ] ~docv:"N" ~doc:"Workload length in packets.")
  in
  let reps_arg =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"N"
          ~doc:"Timing repetitions per level (best-of, fresh engine each).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let no_affinity_flag =
    Arg.(
      value & flag
      & info [ "no-affinity" ]
          ~doc:"Skip the conntrack/NAT dispatcher-affinity oracles.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write contracts, measurements and oracle results as JSON to \
             $(docv) (e.g. BENCH_scale.json).")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Sharded multicore dataplane: steer a workload across \
          shard-local NF replicas (RSS-style flow hashing, symmetric \
          and NAT-port-slice policies), derive the NFork-style \
          scalability contract at each shard count, and validate \
          prediction, bit-level parity and dispatcher affinity; exits \
          2 on any correctness violation")
    Term.(
      const scale_cmd $ nf_arg $ shards_arg $ packets_arg $ reps_arg
      $ seed_arg $ Term.app (Term.const not) no_affinity_flag $ json_arg)

let topo_t =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TOPOLOGY"
          ~doc:"Built-in topology to analyse (see --list).")
  in
  let list_flag =
    Arg.(
      value & flag & info [ "list" ] ~doc:"List built-in topologies and exit.")
  in
  let class_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "class"; "c" ] ~docv:"CLASS"
          ~doc:
            "Only print the end-to-end bound for this ingress input class, \
             broken down by egress.")
  in
  let replay_arg =
    Arg.(
      value & opt int 0
      & info [ "replay" ] ~docv:"N"
          ~doc:
            "Also replay $(docv) packets of the topology's built-in \
             workload through the specialized per-node engines and check \
             every packet against the composed bound (exit 2 on a \
             violation).")
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Derive a network-wide performance contract for a topology of \
          NFs: validate the graph, symbolically execute every node on \
          its predecessor's symbolic output (pruning infeasible route \
          tuples), and print per-(ingress-class, egress) end-to-end \
          bounds — tighter than adding per-NF worst cases")
    Term.(
      const topo_cmd $ name_arg $ list_flag $ class_arg $ jobs_arg
      $ replay_arg $ metric_arg $ json_arg)

let paths_t =
  Cmd.v
    (Cmd.info "paths" ~doc:"List the feasible paths and per-path costs")
    Term.(const paths_cmd $ nf_arg)

let report_t =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full analysis report: summary, classes, per-path witnesses")
    Term.(const report_cmd $ nf_arg)

let program_t =
  Cmd.v
    (Cmd.info "program" ~doc:"Print the NF's IR")
    Term.(const program_cmd $ nf_arg)

let validate_t =
  let pcap_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"PCAP"
         ~doc:"Traffic sample to check against the contract.")
  in
  let in_port_arg =
    Arg.(value & opt int 0 & info [ "in-port" ] ~doc:"Ingress port.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Replay a pcap through the production build and check every \
          packet against the derived contract (exit 2 on violation)")
    Term.(const validate_cmd $ nf_arg $ pcap_arg $ in_port_arg)

let () =
  let info =
    Cmd.info "bolt" ~version:"1.0.0"
      ~doc:"Performance contracts for software network functions"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            contract_t; stats_t; predict_t; diff_t; validate_t; fuzz_t;
            tune_t; scale_t; topo_t; paths_t; report_t; program_t;
          ]))
