type 'v action = Forward of 'v | Drop | Flood

module type DOMAIN = sig
  type value
  type state

  val const : state -> int -> value * state
  val var : state -> string -> value * state
  val pkt_len : state -> value * state
  val pkt_load : state -> Expr.width -> off:value -> value * state
  val unop : state -> Expr.unop -> value -> value * state
  val binop : state -> Expr.binop -> value -> value -> value * state
  val assign : state -> string -> value -> state
  val pkt_store : state -> Expr.width -> off:value -> value -> state

  val branch :
    state ->
    record:bool ->
    true_first:bool ->
    value ->
    on_true:(state -> unit) ->
    on_false:(state -> unit) ->
    unit

  val bound_exit :
    state -> record:bool -> bound:int -> value -> exit:(state -> unit) -> unit

  val assume_exit : state -> value -> exit:(state -> unit) -> unit
  val pcv_policy : [ `Iterate | `Once_havoc ]
  val pcv_enter : state -> name:string -> bound:int -> state
  val pcv_iter : state -> name:string -> state
  val pcv_exit : state -> name:string -> iterations:int -> state
  val pcv_close : state -> state
  val havoc : state -> string list -> state

  val call :
    state ->
    program:Program.t ->
    Stmt.call ->
    args:value list ->
    k:(state -> unit) ->
    unit

  val pre_return : state -> state
  val finish : state -> value action -> unit
  val fallthrough : state -> unit
  val unsupported : state -> string -> unit
end

(* Variables a block can assign (for PCV-loop havocking). *)
let rec assigned_vars block =
  List.concat_map
    (function
      | Stmt.Assign (v, _) -> [ v ]
      | Stmt.Call { ret = Some v; _ } -> [ v ]
      | Stmt.Call { ret = None; _ } -> []
      | Stmt.If (_, a, b) -> assigned_vars a @ assigned_vars b
      | Stmt.While (_, _, body) -> assigned_vars body
      | Stmt.Pkt_store _ | Stmt.Return _ | Stmt.Comment _ -> [])
    block
  |> List.sort_uniq String.compare

let rec block_calls block =
  List.exists
    (function
      | Stmt.Call _ -> true
      | Stmt.If (_, a, b) -> block_calls a || block_calls b
      | Stmt.While (_, _, body) -> block_calls body
      | _ -> false)
    block

module Make (D : DOMAIN) = struct
  let rec eval st (e : Expr.t) : D.value * D.state =
    match e with
    | Expr.Const n -> D.const st n
    | Expr.Var v -> D.var st v
    | Expr.Pkt_len -> D.pkt_len st
    | Expr.Pkt_load (w, off_e) ->
        let off, st = eval st off_e in
        D.pkt_load st w ~off
    | Expr.Unop (op, a) ->
        let va, st = eval st a in
        D.unop st op va
    | Expr.Binop (op, a, b) ->
        let va, st = eval st a in
        let vb, st = eval st b in
        D.binop st op va vb

  let eval_args st args =
    let vs, st =
      List.fold_left
        (fun (acc, st) a ->
          let v, st = eval st a in
          (v :: acc, st))
        ([], st) args
    in
    (List.rev vs, st)

  (* The single statement walker.  Everything the three domains share —
     evaluation order, branch shape, loop structure, PCV handling — is
     fixed here; a domain only decides what a value is, which branch
     continuations run, and what each step costs.  [program] rides
     along for stateful-call dispatch (instance -> kind lookup). *)
  let rec exec_block ~program st (block : Stmt.block) (kont : D.state -> unit)
      =
    match block with
    | [] -> kont st
    | stmt :: rest ->
        exec_stmt ~program st stmt (fun st -> exec_block ~program st rest kont)

  and exec_stmt ~program st (stmt : Stmt.t) (kont : D.state -> unit) =
    match stmt with
    | Stmt.Comment _ -> kont st
    | Stmt.Assign (v, e) ->
        let value, st = eval st e in
        kont (D.assign st v value)
    | Stmt.Pkt_store (w, off_e, val_e) ->
        let off, st = eval st off_e in
        let value, st = eval st val_e in
        kont (D.pkt_store st w ~off value)
    | Stmt.If (cond_e, then_, else_) ->
        let cond, st = eval st cond_e in
        D.branch st ~record:true ~true_first:true cond
          ~on_true:(fun st -> exec_block ~program st then_ kont)
          ~on_false:(fun st -> exec_block ~program st else_ kont)
    | Stmt.Call ({ args; _ } as call) ->
        let argv, st = eval_args st args in
        D.call st ~program call ~args:argv ~k:kont
    | Stmt.Return action_stmt ->
        let st = D.pre_return st in
        (match action_stmt with
        | Stmt.Forward port_e ->
            let port, st = eval st port_e in
            D.finish st (Forward port)
        | Stmt.Drop -> D.finish st Drop
        | Stmt.Flood -> D.finish st Flood)
    | Stmt.While (Stmt.Unroll bound, cond_e, body) ->
        (* fork per trip count; the bound is a static guarantee, so the
           condition must be false once it is reached *)
        let rec iteration st k =
          let cond, st = eval st cond_e in
          if k >= bound then D.bound_exit st ~record:true ~bound cond ~exit:kont
          else
            D.branch st ~record:true ~true_first:false cond
              ~on_true:(fun st ->
                exec_block ~program st body (fun st -> iteration st (k + 1)))
              ~on_false:kont
        in
        iteration st 0
    | Stmt.While (Stmt.Pcv_loop (name, bound), cond_e, body) -> (
        match D.pcv_policy with
        | `Iterate ->
            (* run to completion, branch outcomes unrecorded: the trip
               count is the PCV observation, not part of path identity *)
            let st = D.pcv_enter st ~name ~bound in
            let rec iteration st k =
              let cond, st = eval st cond_e in
              let exit st = kont (D.pcv_exit st ~name ~iterations:k) in
              if k >= bound then D.bound_exit st ~record:false ~bound cond ~exit
              else
                D.branch st ~record:false ~true_first:false cond
                  ~on_true:(fun st ->
                    let st = D.pcv_iter st ~name in
                    exec_block ~program st body (fun st ->
                        iteration st (k + 1)))
                  ~on_false:exit
            in
            iteration st 0
        | `Once_havoc ->
            (* body once, assigned variables havocked, exit assumed *)
            if block_calls body then
              D.unsupported st
                ("stateful call inside PCV loop " ^ name ^ " is unsupported");
            let cond, st = eval st cond_e in
            D.branch st ~record:false ~true_first:false cond ~on_false:kont
              ~on_true:(fun st ->
                let st = D.pcv_enter st ~name ~bound in
                exec_block ~program st body (fun st ->
                    let st = D.havoc st (assigned_vars body) in
                    let cond', st = eval st cond_e in
                    D.assume_exit st cond' ~exit:(fun st ->
                        kont (D.pcv_close st)))))

  let run st (p : Program.t) =
    exec_block ~program:p st p.Program.body D.fallthrough
end
