(** The one IR traversal.

    Every execution mode of the system — the metered concrete
    interpreter, the fidelity-checked replay and the symbolic engine —
    is an instance of the CPS evaluator in {!Make}, specialised by a
    {!DOMAIN}: a value type, a state type, and the domain's take on
    expressions, packet access, branching, loops and stateful calls.
    The traversal itself (statement dispatch, evaluation order,
    loop structure, PCV one-iteration over-approximation) lives here
    and only here, so the semantics cannot drift between modes: adding
    a statement or changing loop semantics is one exhaustive match in
    this module, and the compiler forces every domain to follow.

    Continuations are the unifying device.  A concrete domain resolves
    a branch by calling exactly one of the two continuations; the
    symbolic domain calls each feasible one in order, which is how one
    traversal yields both a single trace and a fork tree. *)

type 'v action = Forward of 'v | Drop | Flood
(** A program's terminal action, over domain values. *)

module type DOMAIN = sig
  type value
  type state

  (** {2 Expressions}

      Each operation may charge costs or emit constraints; evaluation
      order (left to right, operands before operator) is fixed by the
      traversal. *)

  val const : state -> int -> value * state
  val var : state -> string -> value * state
  val pkt_len : state -> value * state
  val pkt_load : state -> Expr.width -> off:value -> value * state
  val unop : state -> Expr.unop -> value -> value * state
  val binop : state -> Expr.binop -> value -> value -> value * state

  (** {2 Statements} *)

  val assign : state -> string -> value -> state
  val pkt_store : state -> Expr.width -> off:value -> value -> state

  (** {2 Control}

      [branch] resolves a conditional: a concrete domain runs the one
      continuation the condition selects; a symbolic domain explores
      every feasible side, in the order given by [true_first].
      [record] is false for branches whose outcome is not part of a
      path's identity (PCV loop conditions). *)

  val branch :
    state ->
    record:bool ->
    true_first:bool ->
    value ->
    on_true:(state -> unit) ->
    on_false:(state -> unit) ->
    unit

  val bound_exit :
    state -> record:bool -> bound:int -> value -> exit:(state -> unit) -> unit
  (** A loop condition evaluated at its static bound: the loop {e must}
      exit.  A concrete domain treats a still-true condition as a
      runtime-contract violation; a symbolic domain asserts the
      negation and continues only there. *)

  val assume_exit : state -> value -> exit:(state -> unit) -> unit
  (** PCV over-approximation only: assume the havocked condition false
      and continue — no decision is recorded, no true-side exists. *)

  (** {2 PCV loops}

      [pcv_policy] selects the traversal strategy: [`Iterate] runs the
      loop concretely to completion (events suppressed inside);
      [`Once_havoc] is the symbolic single-iteration over-approximation
      — body once, assigned variables havocked, exit assumed. *)

  val pcv_policy : [ `Iterate | `Once_havoc ]
  val pcv_enter : state -> name:string -> bound:int -> state
  val pcv_iter : state -> name:string -> state

  val pcv_exit : state -> name:string -> iterations:int -> state
  (** [`Iterate] only: the loop exited after [iterations] trips. *)

  val pcv_close : state -> state
  (** [`Once_havoc] only: leave the over-approximated loop. *)

  val havoc : state -> string list -> state
  (** [`Once_havoc] only: forget the variables the body may assign. *)

  (** {2 Stateful calls and termination} *)

  val call :
    state ->
    program:Program.t ->
    Stmt.call ->
    args:value list ->
    k:(state -> unit) ->
    unit
  (** Dispatch one stateful call ([args] already evaluated, in order)
      and continue with [k] — once for a concrete domain, once per
      feasible model branch for the symbolic one. *)

  val pre_return : state -> state
  (** Charged before a [Return]'s action expression is evaluated. *)

  val finish : state -> value action -> unit
  (** A control path reached [Return]. *)

  val fallthrough : state -> unit
  (** A control path fell off the end of the program without
      returning — a runtime-contract violation in every domain. *)

  val unsupported : state -> string -> unit
  (** The traversal hit a construct this domain cannot handle (e.g. a
      stateful call inside a PCV loop under [`Once_havoc]); must
      raise. *)
end

module Make (D : DOMAIN) : sig
  val eval : D.state -> Expr.t -> D.value * D.state

  val exec_block :
    program:Program.t -> D.state -> Stmt.block -> (D.state -> unit) -> unit

  val run : D.state -> Program.t -> unit
  (** Execute the program body, calling [D.fallthrough] for any control
      path that does not return. *)
end

val assigned_vars : Stmt.block -> string list
(** Variables a block can assign (sorted, unique) — what a PCV loop
    body havocs under [`Once_havoc]. *)

val block_calls : Stmt.block -> bool
(** Does the block contain a stateful call (at any depth)? *)
