(** Network-wide contract derivation over a {!Graph}.

    Lowers the name-level graph onto {!Bolt.Dag} (each node's program
    and contract library coming from {!Nf.Registry.of_spec}), walks it —
    every node symbolically executed on its predecessor's symbolic
    output packet, infeasible route tuples pruned by the solver — and
    joins the per-route replayed costs into per-(egress, input-class)
    end-to-end bounds with {!Perf.Cost_vec.max_upper_list}, the same
    conservative monomial-wise-max coalescing `Perf.Contract` uses. *)

type egress =
  | Exited of { node : string; label : string }
  | Dropped of string
  | Flooded of string

type step = { node : string; path : Symbex.Path.t }

type route = {
  steps : step list;  (** ingress first *)
  egress : egress;
  constraints : Solver.Constr.t list;
  cost : Perf.Cost_vec.t;
}

type t = {
  graph : Graph.t;
  entries : (string * Nf.Registry.entry) list;  (** node name → entry *)
  routes : route list;
  unsolved : int;
  infeasible_routes : int;
  input : Symbex.Spacket.input;
  ingress_engine : Symbex.Engine.result;
}

val run :
  ?max_paths:int ->
  ?jobs:int ->
  ?models:Symbex.Model.registry ->
  Graph.t ->
  t
(** Raises [Invalid_argument] (with every {!Graph.error} rendered) on an
    ill-formed graph.  Deterministic at any [jobs] level. *)

val worst : t -> Perf.Cost_vec.t
(** End-to-end bound over every route. *)

val equal_egress : egress -> egress -> bool
val pp_egress : Format.formatter -> egress -> unit

val egresses : t -> egress list
(** Distinct, in order of first appearance. *)

val egress_cost : t -> egress -> Perf.Cost_vec.t * int
(** Bound and member-route count for one egress. *)

val ingress_classes : t -> Symbex.Iclass.t list
(** The input classes of the ingress NF — the traffic classes an
    end-to-end contract is expressed over. *)

val class_cost : t -> Symbex.Iclass.t -> Perf.Cost_vec.t * int
(** End-to-end bound for an ingress input class: member routes must meet
    the class's tag requirements on the ingress path and have joint
    constraints satisfiable with the class predicate. *)

val class_egress_cost :
  t -> Symbex.Iclass.t -> egress -> Perf.Cost_vec.t * int

val contract : t -> Perf.Contract.t
(** Per-(input-class, egress) end-to-end contract rows, plus one
    all-egress row per class. *)
