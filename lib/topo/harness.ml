type hop = {
  node : string;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;
  observations : (Perf.Pcv.t * int) list;
}

type transit = {
  hops : hop list;
  egress : Analysis.egress;
  ic : int;
  ma : int;
  cycles : int;
}

type station = {
  s_name : string;
  engine : Exec.Specialize.t;
  meter : Exec.Meter.t;
  ports : (int * Graph.target) list;  (** declared Port edges *)
  any : Graph.target option;
}

type t = { g : Graph.t; hw : Hw.Model.t; stations : (string * station) list }

let create ?hw (g : Graph.t) =
  (match Graph.validate g with
  | [] -> ()
  | errs ->
      invalid_arg
        (Fmt.str "Topo.Harness.create %S: %a" g.Graph.name
           Fmt.(list ~sep:(any "; ") Graph.pp_error)
           errs));
  let hw = match hw with Some hw -> hw | None -> Hw.Model.realistic () in
  let stations =
    List.map
      (fun (n : Graph.node) ->
        let entry = Nf.Registry.of_spec n.Graph.spec in
        let meter = Exec.Meter.create hw in
        let engine, _env = Nf.Registry.specialize entry ~meter in
        let out = Graph.out_edges g n.Graph.name in
        let ports =
          List.filter_map
            (fun (e : Graph.edge) ->
              match e.Graph.sel with
              | Graph.Port p -> Some (p, e.Graph.target)
              | Graph.Any -> None)
            out
        in
        let any =
          List.find_map
            (fun (e : Graph.edge) ->
              match e.Graph.sel with
              | Graph.Any -> Some e.Graph.target
              | Graph.Port _ -> None)
            out
        in
        (n.Graph.name, { s_name = n.Graph.name; engine; meter; ports; any }))
      g.Graph.nodes
  in
  { g; hw; stations }

let graph t = t.g

let specialized t =
  List.map
    (fun (name, s) -> (name, Exec.Specialize.specialized s.engine))
    t.stations

let transit t ?(in_port = 0) ?(now = 1_000_000) packet =
  t.hw.Hw.Model.boundary [ (Exec.Interp.packet_base, 2048) ];
  let rec hop_at name in_port hops_rev =
    let s = List.assoc name t.stations in
    Exec.Meter.reset_observations s.meter;
    let run = Exec.Specialize.run s.engine ~in_port ~now packet in
    let hop =
      {
        node = name;
        outcome = run.Exec.Interp.outcome;
        ic = run.Exec.Interp.ic;
        ma = run.Exec.Interp.ma;
        cycles = run.Exec.Interp.cycles;
        observations = Exec.Meter.observations s.meter;
      }
    in
    let hops_rev = hop :: hops_rev in
    let stop egress = (hops_rev, egress) in
    match run.Exec.Interp.outcome with
    | Exec.Interp.Dropped -> stop (Analysis.Dropped name)
    | Exec.Interp.Flooded -> stop (Analysis.Flooded name)
    | Exec.Interp.Sent p -> (
        let target =
          match List.assoc_opt p s.ports with
          | Some _ as tgt -> tgt
          | None -> s.any
        in
        match target with
        | Some (Graph.Node next) -> hop_at next p hops_rev
        | Some (Graph.Exit label) ->
            stop (Analysis.Exited { node = name; label })
        | None ->
            stop (Analysis.Exited { node = name; label = Bolt.Dag.default_exit }))
  in
  let hops_rev, egress = hop_at t.g.Graph.ingress in_port [] in
  let hops = List.rev hops_rev in
  let sum f = List.fold_left (fun acc h -> acc + f h) 0 hops in
  {
    hops;
    egress;
    ic = sum (fun h -> h.ic);
    ma = sum (fun h -> h.ma);
    cycles = sum (fun h -> h.cycles);
  }

let replay t stream =
  List.map
    (fun (e : Workload.Stream.entry) ->
      transit t ~in_port:e.Workload.Stream.in_port ~now:e.Workload.Stream.now
        e.Workload.Stream.packet)
    stream

(* ---- Soundness -------------------------------------------------------- *)

type violation = {
  packet_index : int;
  metric : Perf.Metric.t;
  bound : int;
  measured : int;
  binding : Perf.Pcv.binding;
}

type report = {
  packets : int;
  violations : violation list;
  worst_headroom_pct : float;
}

let tracked_pcvs =
  Perf.Pcv.[ expired; collisions; traversals; occupancy; scan; ip_options ]

(* Conservative per-packet binding: per-PCV max over every hop's
   observations (a PCV never observed binds to 0). *)
let binding_of tr extra_pcvs =
  List.map
    (fun pcv ->
      ( pcv,
        List.fold_left
          (fun acc h ->
            List.fold_left
              (fun acc (p, v) -> if Perf.Pcv.equal p pcv then max acc v else acc)
              acc h.observations)
          0 tr.hops ))
    (List.sort_uniq Perf.Pcv.compare (tracked_pcvs @ extra_pcvs))

let check t ~worst stream =
  let extra_pcvs = Perf.Cost_vec.pcvs worst in
  let violations = ref [] in
  let headroom = ref 100. in
  List.iteri
    (fun index (e : Workload.Stream.entry) ->
      let tr =
        transit t ~in_port:e.Workload.Stream.in_port
          ~now:e.Workload.Stream.now e.Workload.Stream.packet
      in
      let binding = binding_of tr extra_pcvs in
      let check_metric metric measured =
        let bound = Perf.Cost_vec.eval_exn binding worst metric in
        if bound < measured then
          violations :=
            { packet_index = index; metric; bound; measured; binding }
            :: !violations
        else if bound > 0 then
          headroom :=
            Float.min !headroom
              (100. *. float_of_int (bound - measured) /. float_of_int bound)
      in
      check_metric Perf.Metric.Instructions tr.ic;
      check_metric Perf.Metric.Memory_accesses tr.ma)
    stream;
  {
    packets = List.length stream;
    violations = List.rev !violations;
    worst_headroom_pct = !headroom;
  }

let pp_report ppf r =
  if r.violations = [] then
    Fmt.pf ppf
      "OK: %d packets within the topology contract (tightest headroom: \
       %.1f%%)@."
      r.packets r.worst_headroom_pct
  else begin
    Fmt.pf ppf "TOPOLOGY CONTRACT VIOLATED on %d of %d packets:@."
      (List.length r.violations) r.packets;
    List.iter
      (fun v ->
        Fmt.pf ppf "  packet %d: %a bound %d < measured %d at %a@."
          v.packet_index Perf.Metric.pp v.metric v.bound v.measured
          Perf.Pcv.pp_binding v.binding)
      r.violations
  end
