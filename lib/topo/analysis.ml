open Perf

type egress =
  | Exited of { node : string; label : string }
  | Dropped of string
  | Flooded of string

type step = { node : string; path : Symbex.Path.t }

type route = {
  steps : step list;
  egress : egress;
  constraints : Solver.Constr.t list;
  cost : Cost_vec.t;
}

type t = {
  graph : Graph.t;
  entries : (string * Nf.Registry.entry) list;
  routes : route list;
  unsolved : int;
  infeasible_routes : int;
  input : Symbex.Spacket.input;
  ingress_engine : Symbex.Engine.result;
}

let equal_egress a b = a = b

let pp_egress ppf = function
  | Exited { node; label } -> Fmt.pf ppf "%s.%s" node label
  | Dropped node -> Fmt.pf ppf "drop@@%s" node
  | Flooded node -> Fmt.pf ppf "flood@@%s" node

let index_of nodes name =
  let rec go i = function
    | [] -> assert false (* validated *)
    | (n : Graph.node) :: tl -> if n.Graph.name = name then i else go (i + 1) tl
  in
  go 0 nodes

let lower (graph : Graph.t) entries =
  let nodes =
    Array.of_list
      (List.map
         (fun (n : Graph.node) ->
           let entry = List.assoc n.Graph.name entries in
           {
             Bolt.Dag.label = n.Graph.name;
             program = entry.Nf.Registry.program;
             contracts = entry.Nf.Registry.contracts;
           })
         graph.Graph.nodes)
  in
  let edges =
    List.map
      (fun (e : Graph.edge) ->
        {
          Bolt.Dag.src = index_of graph.Graph.nodes e.Graph.src;
          sel =
            (match e.Graph.sel with
            | Graph.Any -> Bolt.Dag.Any
            | Graph.Port p -> Bolt.Dag.Port p);
          target =
            (match e.Graph.target with
            | Graph.Node d -> Bolt.Dag.To (index_of graph.Graph.nodes d)
            | Graph.Exit l -> Bolt.Dag.Exit l);
        })
      graph.Graph.edges
  in
  {
    Bolt.Dag.nodes;
    ingress = index_of graph.Graph.nodes graph.Graph.ingress;
    edges;
  }

let run ?max_paths ?jobs ?(models = Bolt.Ds_models.default) graph =
  (match Graph.validate graph with
  | [] -> ()
  | errs ->
      invalid_arg
        (Fmt.str "Topo.Analysis.run %S: %a" graph.Graph.name
           Fmt.(list ~sep:(any "; ") Graph.pp_error)
           errs));
  let entries =
    List.map
      (fun (n : Graph.node) ->
        (n.Graph.name, Nf.Registry.of_spec n.Graph.spec))
      graph.Graph.nodes
  in
  let dag = lower graph entries in
  let r = Bolt.Dag.analyze ?max_paths ?jobs ~models dag in
  let name_of i = (List.nth graph.Graph.nodes i).Graph.name in
  let egress_of = function
    | Bolt.Dag.Exited { node; label } -> Exited { node = name_of node; label }
    | Bolt.Dag.Dropped node -> Dropped (name_of node)
    | Bolt.Dag.Flooded node -> Flooded (name_of node)
  in
  let routes =
    List.map
      (fun (route : Bolt.Dag.route) ->
        {
          steps =
            List.map
              (fun (s : Bolt.Dag.step) ->
                {
                  node = name_of s.Bolt.Dag.step_node;
                  path = s.Bolt.Dag.step_path;
                })
              route.Bolt.Dag.steps;
          egress = egress_of route.Bolt.Dag.egress;
          constraints = route.Bolt.Dag.constraints;
          cost = route.Bolt.Dag.cost;
        })
      r.Bolt.Dag.routes
  in
  {
    graph;
    entries;
    routes;
    unsolved = r.Bolt.Dag.unsolved;
    infeasible_routes = r.Bolt.Dag.infeasible_routes;
    input = r.Bolt.Dag.input;
    ingress_engine = r.Bolt.Dag.ingress_engine;
  }

let worst t = Cost_vec.max_upper_list (List.map (fun r -> r.cost) t.routes)

let egresses t =
  List.fold_left
    (fun acc r -> if List.mem r.egress acc then acc else acc @ [ r.egress ])
    [] t.routes

let egress_cost t egress =
  let members = List.filter (fun r -> equal_egress r.egress egress) t.routes in
  ( Cost_vec.max_upper_list (List.map (fun r -> r.cost) members),
    List.length members )

let ingress_classes t =
  (List.assoc t.graph.Graph.ingress t.entries).Nf.Registry.classes

(* Class membership mirrors {!Bolt.Compose.class_cost}: tag requirements
   and forbids are judged on the ingress path (they are abstract-state
   assumptions of the ingress NF), the class predicate must be
   satisfiable together with the route's joint constraints. *)
let route_in_class pred (cls : Symbex.Iclass.t) route =
  let ingress_path =
    match route.steps with s :: _ -> s.path | [] -> assert false
  in
  List.for_all
    (fun (r : Symbex.Iclass.requirement) ->
      match
        Symbex.Path.tags_of ingress_path ~instance:r.Symbex.Iclass.instance
          ~meth:r.Symbex.Iclass.meth
      with
      | [] -> false
      | tags -> List.for_all (String.equal r.Symbex.Iclass.tag) tags)
    cls.Symbex.Iclass.requires
  && List.for_all
       (fun (instance, meth) ->
         Symbex.Path.tags_of ingress_path ~instance ~meth = [])
       cls.Symbex.Iclass.forbids
  && Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000
       (pred @ route.constraints)

let class_members t (cls : Symbex.Iclass.t) =
  let pred = cls.Symbex.Iclass.predicate t.ingress_engine in
  List.filter (route_in_class pred cls) t.routes

let class_cost t cls =
  let members = class_members t cls in
  ( Cost_vec.max_upper_list (List.map (fun r -> r.cost) members),
    List.length members )

let class_egress_cost t cls egress =
  let members =
    List.filter (fun r -> equal_egress r.egress egress) (class_members t cls)
  in
  ( Cost_vec.max_upper_list (List.map (fun r -> r.cost) members),
    List.length members )

let contract t =
  let entries =
    List.concat_map
      (fun (cls : Symbex.Iclass.t) ->
        let cost, n = class_cost t cls in
        let total =
          Contract.entry ~class_name:cls.Symbex.Iclass.name
            ~description:cls.Symbex.Iclass.description ~path_count:n cost
        in
        let per_egress =
          List.filter_map
            (fun egress ->
              match class_egress_cost t cls egress with
              | _, 0 -> None
              | cost, n ->
                  Some
                    (Contract.entry
                       ~class_name:
                         (Fmt.str "%s via %a" cls.Symbex.Iclass.name
                            pp_egress egress)
                       ~description:cls.Symbex.Iclass.description
                       ~path_count:n cost))
            (egresses t)
        in
        total :: per_egress)
      (ingress_classes t)
  in
  Contract.make ~nf:t.graph.Graph.name entries
