(** Measured end-to-end replay: the empirical side of the topology
    contract.

    One config-specialized engine ({!Exec.Specialize}, via
    {!Nf.Registry.specialize}) per node, stateful across packets; a
    {!transit} pushes one packet node-to-node along the graph's edges —
    the port the packet leaves on selects the edge, exactly as the
    symbolic walk routes — and records per-hop measured costs plus PCV
    observations, so every transit can be checked against the composed
    contract bound evaluated at the observed binding (same discipline as
    [Experiments.Validate]). *)

type hop = {
  node : string;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;
  observations : (Perf.Pcv.t * int) list;
}

type transit = {
  hops : hop list;
  egress : Analysis.egress;
  ic : int;  (** summed over hops *)
  ma : int;
  cycles : int;
}

type t

val create : ?hw:Hw.Model.t -> Graph.t -> t
(** Raises [Invalid_argument] on an ill-formed graph.  All nodes charge
    into the one [hw] model (default {!Hw.Model.realistic}), with a cache
    boundary per transit — the packet crosses the chain on one machine. *)

val graph : t -> Graph.t

val specialized : t -> (string * bool) list
(** Which nodes run a fully specialized body (vs the generic compiled
    runner). *)

val transit : t -> ?in_port:int -> ?now:int -> Net.Packet.t -> transit

val replay : t -> Workload.Stream.t -> transit list

(** {1 Soundness: measured vs composed bound} *)

type violation = {
  packet_index : int;
  metric : Perf.Metric.t;
  bound : int;
  measured : int;
  binding : Perf.Pcv.binding;
}

type report = {
  packets : int;
  violations : violation list;
  worst_headroom_pct : float;
}

val check : t -> worst:Perf.Cost_vec.t -> Workload.Stream.t -> report
(** Replay the stream; for every packet, evaluate [worst] (IC and MA) at
    the per-packet observed PCV binding — max-merged across hops — and
    record a violation when the measured cost exceeds the bound. *)

val pp_report : Format.formatter -> report -> unit
