type sel = Any | Port of int
type target = Node of string | Exit of string
type node = { name : string; spec : Nf.Spec.t }
type edge = { src : string; sel : sel; target : target }

type t = {
  name : string;
  description : string;
  ingress : string;
  nodes : node list;
  edges : edge list;
}

let node name spec = { name; spec }
let edge src sel target = { src; sel; target }

let make ~name ?(description = "") ~ingress ~nodes ~edges () =
  { name; description; ingress; nodes; edges }

type error =
  | Duplicate_node of string
  | Unknown_ingress of string
  | Dangling_endpoint of { src : string; dest : string }
  | Duplicate_port of { src : string; port : int }
  | Mixed_any of string
  | Cycle of string list
  | Unreachable of string

let pp_error ppf = function
  | Duplicate_node n -> Fmt.pf ppf "node %S declared twice" n
  | Unknown_ingress n -> Fmt.pf ppf "ingress %S is not a node" n
  | Dangling_endpoint { src; dest } ->
      Fmt.pf ppf "edge %s -> %s names an undeclared node" src dest
  | Duplicate_port { src; port } ->
      Fmt.pf ppf "node %S routes port %d over two edges" src port
  | Mixed_any n ->
      Fmt.pf ppf "node %S mixes an Any edge with port-selected edges" n
  | Cycle ns ->
      Fmt.pf ppf "cycle: %a" Fmt.(list ~sep:(any " -> ") string) ns
  | Unreachable n -> Fmt.pf ppf "node %S is unreachable from the ingress" n

let find_node t name = List.find (fun (n : node) -> n.name = name) t.nodes
let out_edges t name = List.filter (fun e -> e.src = name) t.edges
let mem t name = List.exists (fun (n : node) -> n.name = name) t.nodes

let validate t =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  (* duplicate node names *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n : node) ->
      if Hashtbl.mem seen n.name then err (Duplicate_node n.name)
      else Hashtbl.add seen n.name ())
    t.nodes;
  if not (mem t t.ingress) then err (Unknown_ingress t.ingress);
  (* dangling endpoints *)
  List.iter
    (fun e ->
      let dest_name, dest_ok =
        match e.target with
        | Node d -> (d, mem t d)
        | Exit l -> ("exit:" ^ l, true)
      in
      if not (mem t e.src && dest_ok) then
        err (Dangling_endpoint { src = e.src; dest = dest_name }))
    t.edges;
  (* per-node selector discipline *)
  List.iter
    (fun (n : node) ->
      let out = out_edges t n.name in
      let anys = List.filter (fun e -> e.sel = Any) out in
      if anys <> [] && List.length out > 1 then err (Mixed_any n.name);
      let ports = Hashtbl.create 4 in
      List.iter
        (fun e ->
          match e.sel with
          | Any -> ()
          | Port p ->
              if Hashtbl.mem ports p then
                err (Duplicate_port { src = n.name; port = p })
              else Hashtbl.add ports p ())
        out)
    t.nodes;
  (* cycles: DFS with a grey stack, reporting one witness per cycle
     entry point (only over edges whose endpoints exist) *)
  let state = Hashtbl.create 8 in
  let rec dfs stack name =
    match Hashtbl.find_opt state name with
    | Some `Black -> ()
    | Some `Grey ->
        (* witness: from the first occurrence of [name] on the stack back
           around to [name] *)
        let cycle = List.rev (name :: stack) in
        let rec from = function
          | [] -> [ name ]
          | x :: _ as l when x = name -> l
          | _ :: tl -> from tl
        in
        err (Cycle (from cycle))
    | None ->
        Hashtbl.replace state name `Grey;
        List.iter
          (fun e ->
            match e.target with
            | Node d when mem t d -> dfs (name :: stack) d
            | Node _ | Exit _ -> ())
          (out_edges t name);
        Hashtbl.replace state name `Black
  in
  List.iter (fun (n : node) -> dfs [] n.name) t.nodes;
  (* reachability from the ingress *)
  if mem t t.ingress then begin
    let reached = Hashtbl.create 8 in
    let rec visit name =
      if not (Hashtbl.mem reached name) then begin
        Hashtbl.add reached name ();
        List.iter
          (fun e ->
            match e.target with
            | Node d when mem t d -> visit d
            | Node _ | Exit _ -> ())
          (out_edges t name)
      end
    in
    visit t.ingress;
    List.iter
      (fun (n : node) ->
        if not (Hashtbl.mem reached n.name) then err (Unreachable n.name))
      t.nodes
  end;
  List.rev !errs

let validated ~name ?description ~ingress ~nodes ~edges () =
  let t = make ~name ?description ~ingress ~nodes ~edges () in
  match validate t with
  | [] -> t
  | errs ->
      invalid_arg
        (Fmt.str "Topo.Graph %S: %a" name
           Fmt.(list ~sep:(any "; ") pp_error)
           errs)

let pp ppf t =
  Fmt.pf ppf "topology %s — %s@." t.name t.description;
  List.iter
    (fun (n : node) ->
      let out = out_edges t n.name in
      let pp_edge ppf e =
        let sel =
          match e.sel with Any -> "*" | Port p -> string_of_int p
        in
        match e.target with
        | Node d -> Fmt.pf ppf "%s->%s" sel d
        | Exit l -> Fmt.pf ppf "%s->[%s]" sel l
      in
      Fmt.pf ppf "  %-12s %-14s %s%a@." n.name
        (Nf.Spec.name n.spec)
        (if n.name = t.ingress then "(ingress) " else "")
        Fmt.(list ~sep:(any " ") pp_edge)
        out)
    t.nodes
