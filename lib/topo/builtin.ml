type entry = {
  graph : Graph.t;
  workload : packets:int -> Workload.Stream.t;
}

let stream ?(start = 1_000_000) ?(gap = 17) packets =
  Workload.Stream.constant_rate ~in_port:0 ~start ~gap packets

let icmp_echo ~src_ip ~dst_ip =
  let pkt = Net.Build.eth ~len:64 ~ethertype:Net.Ethernet.ethertype_ipv4 () in
  Net.Ipv4.init pkt ~proto:Net.Ipv4.proto_icmp ~src:src_ip ~dst:dst_ip ();
  Net.Packet.set_u8 pkt Net.Icmp.off_type Net.Icmp.type_echo_request;
  pkt

(* ---- policer → NAT → LB ------------------------------------------------ *)

let service_chain () =
  let graph =
    Graph.validated ~name:"service_chain"
      ~description:
        "multi-tenant chain: token-bucket policer, NAT to the provider \
         range, Maglev LB onto the backend pool"
      ~ingress:"policer"
      ~nodes:
        [
          Graph.node "policer" (Nf.Spec.Policer Nf.Policer.default_config);
          Graph.node "nat" (Nf.Spec.Nat Nf.Nat.default_config);
          Graph.node "lb" (Nf.Spec.Maglev Nf.Maglev.default_config);
        ]
      ~edges:
        [
          Graph.edge "policer" (Graph.Port 0) (Graph.Node "nat");
          Graph.edge "nat" (Graph.Port 1) (Graph.Node "lb");
          Graph.edge "lb" (Graph.Port 1) (Graph.Exit "backends");
        ]
      ()
  in
  let workload ~packets =
    let rng = Workload.Prng.create ~seed:42 in
    stream
      (List.init packets (fun i ->
           let src_ip = Net.Ipv4.addr_of_parts 10 0 (i mod 16) ((i mod 61) + 1) in
           let dst_ip = Net.Ipv4.addr_of_parts 203 0 113 ((i mod 7) + 1) in
           if Workload.Prng.bool rng 0.05 then Net.Build.non_ip ()
           else if Workload.Prng.bool rng 0.1 then
             (* backend heartbeats ride the same chain: dst port 9999 *)
             Net.Build.udp ~src_ip ~dst_ip ~src_port:(40_000 + (i mod 512))
               ~dst_port:Nf.Maglev.heartbeat_port ()
           else
             Net.Build.udp ~src_ip ~dst_ip ~src_port:(40_000 + (i mod 512))
               ~dst_port:80 ()))
  in
  { graph; workload }

(* ---- firewall branching to router / responder -------------------------- *)

let branch () =
  let graph =
    Graph.validated ~name:"branch"
      ~description:
        "edge firewall, router splitting device-bound (port 0, ICMP \
         responder) from transit traffic (port 1, uplink)"
      ~ingress:"firewall"
      ~nodes:
        [
          Graph.node "firewall" Nf.Spec.Firewall;
          Graph.node "router" Nf.Spec.Static_router;
          Graph.node "responder" Nf.Spec.Responder;
        ]
      ~edges:
        [
          Graph.edge "firewall" (Graph.Port 0) (Graph.Node "router");
          Graph.edge "router" (Graph.Port 0) (Graph.Node "responder");
          Graph.edge "router" (Graph.Port 1) (Graph.Exit "uplink");
        ]
      ()
  in
  let workload ~packets =
    let rng = Workload.Prng.create ~seed:43 in
    let device_ip = Nf.Responder.device_ip in
    stream
      (List.init packets (fun i ->
           let src_ip = Net.Ipv4.addr_of_parts 10 1 (i mod 32) ((i mod 97) + 1) in
           if Workload.Prng.bool rng 0.05 then Net.Build.non_ip ()
           else if Workload.Prng.bool rng 0.2 then
             (* ping the device itself: firewall → router:0 → responder *)
             icmp_echo ~src_ip ~dst_ip:device_ip
           else if Workload.Prng.bool rng 0.25 then
             (* IP options: the router's expensive loop, both parities *)
             Net.Build.ipv4_with_options
               ~options:(1 + Workload.Prng.below rng 3)
               ~src_ip
               ~dst_ip:(Net.Ipv4.addr_of_parts 93 184 216 (i mod 256))
               ()
           else
             Net.Build.udp ~src_ip
               ~dst_ip:(Net.Ipv4.addr_of_parts 93 184 216 (i mod 256))
               ~src_port:5000 ~dst_port:80 ()))
  in
  { graph; workload }

(* ---- failover variant -------------------------------------------------- *)

let failover () =
  let graph =
    Graph.validated ~name:"failover"
      ~description:
        "service chain with a duplicated LB tier: the router steers even \
         destinations to the primary Maglev, odd ones to the backup"
      ~ingress:"policer"
      ~nodes:
        [
          Graph.node "policer" (Nf.Spec.Policer Nf.Policer.default_config);
          Graph.node "nat" (Nf.Spec.Nat Nf.Nat.default_config);
          Graph.node "router" Nf.Spec.Static_router;
          Graph.node "lb_primary" (Nf.Spec.Maglev Nf.Maglev.default_config);
          Graph.node "lb_backup" (Nf.Spec.Maglev Nf.Maglev.default_config);
        ]
      ~edges:
        [
          Graph.edge "policer" (Graph.Port 0) (Graph.Node "nat");
          Graph.edge "nat" (Graph.Port 1) (Graph.Node "router");
          Graph.edge "router" (Graph.Port 0) (Graph.Node "lb_primary");
          Graph.edge "router" (Graph.Port 1) (Graph.Node "lb_backup");
          Graph.edge "lb_primary" (Graph.Port 1) (Graph.Exit "pool_a");
          Graph.edge "lb_backup" (Graph.Port 1) (Graph.Exit "pool_b");
        ]
      ()
  in
  let workload ~packets =
    let rng = Workload.Prng.create ~seed:44 in
    stream
      (List.init packets (fun i ->
           let src_ip = Net.Ipv4.addr_of_parts 10 2 (i mod 16) ((i mod 53) + 1) in
           (* both destination parities, so both LB tiers see traffic *)
           let dst_ip = Net.Ipv4.addr_of_parts 203 0 113 ((i mod 14) + 1) in
           if Workload.Prng.bool rng 0.05 then Net.Build.non_ip ()
           else
             Net.Build.udp ~src_ip ~dst_ip ~src_port:(41_000 + (i mod 512))
               ~dst_port:80 ()))
  in
  { graph; workload }

let all () = [ service_chain (); branch (); failover () ]
let names () = List.map (fun e -> e.graph.Graph.name) (all ())

let find name =
  match List.find_opt (fun e -> e.graph.Graph.name = name) (all ()) with
  | Some e -> e
  | None ->
      invalid_arg
        (Fmt.str "unknown topology %S (known: %s)" name
           (String.concat ", " (names ())))
