(** Topologies as first-class programs: a small name-level DSL over
    {!Nf.Spec}-derived network functions.

    Nodes are NFs (by value-level spec); edges route on the egress
    outcome — an edge with selector [Port p] is taken when the source NF
    forwards the packet on port [p], an [Any] edge regardless of the
    port; [Drop]/[Flood] always terminate the route at the node.  A
    target is either another node or a labelled exit out of the
    topology.

    A graph is plain data; {!validate} checks it is a well-formed DAG
    (acyclic, no dangling endpoints, every node reachable from the
    ingress, no duplicate or shadowed port selectors) and returns the
    full list of problems rather than stopping at the first. *)

type sel = Any | Port of int
type target = Node of string | Exit of string

type node = { name : string; spec : Nf.Spec.t }
type edge = { src : string; sel : sel; target : target }

type t = {
  name : string;
  description : string;
  ingress : string;
  nodes : node list;
  edges : edge list;
}

val node : string -> Nf.Spec.t -> node
val edge : string -> sel -> target -> edge

val make :
  name:string ->
  ?description:string ->
  ingress:string ->
  nodes:node list ->
  edges:edge list ->
  unit ->
  t
(** Build without validating — pair with {!validate} for error
    reporting, or use {!validated}. *)

val validated :
  name:string ->
  ?description:string ->
  ingress:string ->
  nodes:node list ->
  edges:edge list ->
  unit ->
  t
(** Like {!make} but raises [Invalid_argument] with every rendered
    {!error} if the graph is ill-formed. *)

type error =
  | Duplicate_node of string
  | Unknown_ingress of string
  | Dangling_endpoint of { src : string; dest : string }
      (** an edge names a node that does not exist (either end) *)
  | Duplicate_port of { src : string; port : int }
  | Mixed_any of string
      (** an [Any] edge alongside other edges out of the same node *)
  | Cycle of string list  (** one witness cycle, in edge order *)
  | Unreachable of string  (** node not reachable from the ingress *)

val validate : t -> error list
(** Empty list ⇔ well-formed. *)

val pp_error : Format.formatter -> error -> unit
val pp : Format.formatter -> t -> unit
(** One-line-per-node summary of the topology. *)

val find_node : t -> string -> node
(** Raises [Not_found]. *)

val out_edges : t -> string -> edge list
