(** Built-in topologies: the scenarios `bolt topo` and `bench topo`
    ship with, each paired with a deterministic replay workload.

    - [service_chain] — multi-tenant north-south chain
      policer → NAT → Maglev LB, clients on the policer's conform port,
      translated traffic load-balanced to the backend pool.
    - [branch] — an edge firewall in front of a router that splits
      device-bound traffic (even destinations, port 0) to an ICMP
      responder from transit traffic (odd destinations, port 1) to the
      uplink.
    - [failover] — the service chain with the LB duplicated: the router
      steers even destinations to the primary Maglev and odd ones to the
      backup, exercising route pruning (the backup-side heartbeat branch
      is unreachable from this ingress). *)

type entry = {
  graph : Graph.t;
  workload : packets:int -> Workload.Stream.t;
      (** deterministic mix exercising every reachable egress *)
}

val service_chain : unit -> entry
val branch : unit -> entry
val failover : unit -> entry

val all : unit -> entry list
val names : unit -> string list

val find : string -> entry
(** Raises [Invalid_argument] listing the known names on a miss. *)
