type report = {
  expiry_density : (string * float) list;
  latency_ccdf : (int * float) list;
  p50 : int;
  p999 : int;
  max_latency : int;
}

let run ~granularity ?(packets = 20_000) ?(pool = 1024) () =
  let config =
    {
      Nf.Nat.default_config with
      Nf.Nat.granularity;
      timeout = 2_000_000;
      capacity = 4096;
      buckets = 4096;
    }
  in
  let dss, _ = Nf.Nat.setup ~config (Dslib.Layout.allocator ()) in
  let rng = Workload.Prng.create ~seed:31 in
  (* uniform random traffic with churn: replaced flows stop being
     refreshed and expire [timeout] later *)
  let stream =
    Workload.Gen.churn rng ~pool ~packets ~new_flow_prob:0.08 ~gap:500
      ~start:1_000_000
  in
  let result = Distiller.Run.run ~dss Nf.Nat.program stream in
  (* skip the first portion: the table is still filling *)
  let n = Distiller.Run.count result in
  let steady values = List.filteri (fun i _ -> i > n / 4) values in
  let expired_per_packet =
    steady (Distiller.Run.pcv_sums result Perf.Pcv.expired)
  in
  let latencies = steady (Distiller.Run.latencies result) in
  {
    expiry_density =
      Distiller.Stats.density_binned
        ~bins:
          [
            (0, 0, "0"); (1, 1, "1"); (2, 3, "2-3"); (4, 15, "4-15");
            (16, 63, "16-63"); (64, max_int, "64+");
          ]
        expired_per_packet;
    latency_ccdf = Distiller.Stats.ccdf latencies;
    p50 = Distiller.Stats.percentile latencies 0.5;
    p999 = Distiller.Stats.percentile latencies 0.999;
    max_latency = Distiller.Stats.percentile latencies 1.0;
  }

let tables7_8 ?packets () =
  ( run ~granularity:1_000_000 ?packets (),
    run ~granularity:1_000 ?packets () )

let print_report ~label ppf r =
  Fmt.pf ppf "%s@." label;
  Fmt.pf ppf "  expired flows per packet (probability density):@.";
  List.iter
    (fun (bin, p) -> Fmt.pf ppf "    %-6s %8.3f%%@." bin (100. *. p))
    r.expiry_density;
  Fmt.pf ppf "  latency: p50 %d cycles, p99.9 %d, max %d@." r.p50 r.p999
    r.max_latency
