open Perf

let analyze ?cycle_model program contracts =
  let config =
    match cycle_model with
    | None -> Bolt.Pipeline.Config.(default |> with_contracts contracts)
    | Some cm ->
        Bolt.Pipeline.Config.(
          default |> with_contracts contracts |> with_cycle_model cm)
  in
  Bolt.Pipeline.analyze ~config program

let no_contracts = Ds_contract.library []
let freq_hz = 3_300_000_000

(* ---- Throughput ------------------------------------------------------- *)

let observed_pps ~dss program stream =
  let hw = Hw.Model.realistic () in
  let result = Distiller.Run.run ~hw ~dss program stream in
  let total =
    List.fold_left ( + ) 0 (Distiller.Run.latencies result)
  in
  let n = Distiller.Run.count result in
  if total = 0 then 0.
  else float_of_int freq_hz /. (float_of_int total /. float_of_int n)

let throughput_table ppf =
  Fmt.pf ppf
    "Guaranteed throughput floors from the cycle contracts (single core \
     @ %.1f GHz):@.@."
    (float_of_int freq_hz /. 1e9);
  let nat = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  let classes =
    List.filter
      (fun c -> c.Symbex.Iclass.name <> "NAT1")
      (Nf.Nat.classes ())
  in
  Fmt.pf ppf "  NAT, unbatched I/O:@.";
  List.iter
    (fun b -> Fmt.pf ppf "    %a@." Bolt.Throughput.pp b)
    (Bolt.Throughput.of_classes ~freq_hz nat classes);
  Fmt.pf ppf "  NAT, RX/TX batches of 32:@.";
  List.iter
    (fun b -> Fmt.pf ppf "    %a@." Bolt.Throughput.pp b)
    (Bolt.Throughput.of_classes ~freq_hz ~batch:32 nat classes);
  let lpm = analyze Nf.Router_lpm.program (Nf.Router_lpm.contracts ()) in
  Fmt.pf ppf "  LPM router, unbatched I/O:@.";
  List.iter
    (fun b -> Fmt.pf ppf "    %a@." Bolt.Throughput.pp b)
    (Bolt.Throughput.of_classes ~freq_hz lpm (Nf.Router_lpm.classes ()));
  (* observed: established-flow traffic through the production NAT *)
  let rng = Workload.Prng.create ~seed:17 in
  let dss, _ = Nf.Nat.setup (Dslib.Layout.allocator ()) in
  let flows = Workload.Gen.distinct_flows rng 256 in
  let packets () = Workload.Gen.packets_of_flows flows in
  let warm =
    Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100
      (packets ())
  in
  let measured =
    Workload.Stream.constant_rate ~in_port:0 ~start:1_200_000 ~gap:100
      (packets () @ packets () @ packets ())
  in
  let _ = Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss Nf.Nat.program warm in
  let pps = observed_pps ~dss Nf.Nat.program measured in
  (* the same traffic through the batched run-to-completion loop *)
  let batched_pps =
    let hw = Hw.Model.realistic () in
    let meter = Exec.Meter.create hw in
    let compiled = Exec.Compiled.compile Nf.Nat.program in
    let rec bursts acc = function
      | [] -> acc
      | entries ->
          let take = min 32 (List.length entries) in
          let burst = List.filteri (fun i _ -> i < take) entries in
          let rest = List.filteri (fun i _ -> i >= take) entries in
          hw.Hw.Model.boundary [ (Exec.Interp.packet_base, 2048) ];
          let runs =
            Exec.Compiled.run_batch compiled ~meter
              ~mode:(Exec.Interp.Production dss)
              (List.map
                 (fun (e : Workload.Stream.entry) ->
                   ( e.Workload.Stream.packet,
                     e.Workload.Stream.in_port,
                     e.Workload.Stream.now ))
                 burst)
          in
          bursts (acc @ runs) rest
    in
    let runs = bursts [] measured in
    let total =
      List.fold_left (fun acc r -> acc + r.Exec.Interp.cycles) 0 runs
    in
    if total = 0 then 0.
    else
      float_of_int freq_hz
      /. (float_of_int total /. float_of_int (List.length runs))
  in
  Fmt.pf ppf
    "@.  observed (production NAT, established flows): %.0f pps \
     unbatched,@.  %.0f pps with 32-packet bursts — the floors hold with \
     the same@.  conservatism factor as the cycle bound itself.@."
    pps batched_pps

(* ---- Three-NF chain ---------------------------------------------------- *)

let chain3 ppf =
  let stages =
    [
      { Bolt.Compose.program = Nf.Firewall.program; contracts = no_contracts };
      {
        Bolt.Compose.program = Nf.Policer.program;
        contracts = Nf.Policer.contracts ();
      };
      {
        Bolt.Compose.program = Nf.Static_router.program;
        contracts = no_contracts;
      };
    ]
  in
  let chain =
    Bolt.Compose.analyze_chain ~models:Bolt.Ds_models.default stages
  in
  let worst = Bolt.Compose.chain_worst chain in
  let naive =
    Cost_vec.sum
      [
        Bolt.Pipeline.worst_case (analyze Nf.Firewall.program no_contracts);
        Bolt.Pipeline.worst_case
          (analyze Nf.Policer.program (Nf.Policer.contracts ()));
        Bolt.Pipeline.worst_case
          (analyze Nf.Static_router.program no_contracts);
      ]
  in
  let binding = [ (Pcv.ip_options, 3) ] in
  let ic vec = Perf_expr.eval_exn binding (Cost_vec.get vec Metric.Instructions) in
  Fmt.pf ppf
    "firewall -> policer -> static router, analysed jointly (§3.4 \
     generalised to chains):@.@.";
  Fmt.pf ppf "  feasible path tuples: %d (unsolved: %d)@."
    (List.length chain.Bolt.Compose.tuples)
    chain.Bolt.Compose.chain_unsolved;
  Fmt.pf ppf "  joint worst case:  IC %d@." (ic worst);
  Fmt.pf ppf "  naive addition:    IC %d@." (ic naive);
  Fmt.pf ppf "  (%.0f%% tighter: options packets die at the firewall, \
              out-of-profile@.   packets die at the policer — neither \
              reaches the router's loop)@."
    (100.
    *. float_of_int (ic naive - ic worst)
    /. float_of_int (max 1 (ic naive)));
  (* options packets never reach the router in any feasible tuple *)
  let option_tuples =
    Bolt.Compose.chain_class_cost chain (fun input ->
        [
          Solver.Constr.ge
            (Solver.Linexpr.sym (Symbex.Spacket.byte_sym input 14))
            (Solver.Linexpr.const 0x46);
        ])
  in
  Fmt.pf ppf
    "  packets with IP options: bound IC %d over %d compatible tuples@."
    (Perf_expr.eval_exn binding
       (Cost_vec.get (fst option_tuples) Metric.Instructions))
    (snd option_tuples)

(* ---- Ablation: class coalescing ---------------------------------------- *)

let ablation_coalescing ppf =
  Fmt.pf ppf
    "Class coalescing (monomial-wise max over member paths) trades \
     precision@.for legibility — one row instead of one per path.  At \
     each class's PCV@.bindings:@.@.";
  let t = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  Fmt.pf ppf "  %-6s %7s %10s %14s %14s@." "class" "paths" "coalesced"
    "tightest path" "loosest path";
  List.iter
    (fun cls ->
      let members = Bolt.Pipeline.class_members t cls in
      let evals =
        List.map
          (fun (a : Bolt.Pipeline.path_analysis) ->
            Perf_expr.eval_exn cls.Symbex.Iclass.bindings
              (Cost_vec.get a.Bolt.Pipeline.cost Metric.Instructions))
          members
      in
      match Bolt.Pipeline.predict t cls Metric.Instructions with
      | Error _ -> ()
      | Ok coalesced ->
          Fmt.pf ppf "  %-6s %7d %10d %14d %14d@." cls.Symbex.Iclass.name
            (List.length members) coalesced
            (List.fold_left min max_int evals)
            (List.fold_left max 0 evals))
    (Nf.Nat.classes ());
  Fmt.pf ppf
    "@.  The coalesced bound can exceed even the loosest member (it \
     combines the@.  worst coefficient of every monomial), which is the \
     §3.2 trade-off: fewer,@.  simpler rows at a small precision cost.@."

(* ---- Ablation: hardware model ------------------------------------------ *)

let ablation_hw_model ppf =
  Fmt.pf ppf
    "What the conservative model's L1 locality tracking buys (cycles \
     bounds@.at each class's bindings; dram_only prices every access at \
     DRAM):@.@.";
  let with_l1 = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  let without =
    analyze ~cycle_model:Hw.Model.dram_only Nf.Nat.program
      (Nf.Nat.contracts ())
  in
  Fmt.pf ppf "  %-6s %14s %14s %9s@." "class" "with L1 proof" "dram-only"
    "savings";
  List.iter
    (fun cls ->
      match
        ( Bolt.Pipeline.predict with_l1 cls Metric.Cycles,
          Bolt.Pipeline.predict without cls Metric.Cycles )
      with
      | Ok a, Ok b ->
          Fmt.pf ppf "  %-6s %14d %14d %8.1f%%@." cls.Symbex.Iclass.name a b
            (100. *. float_of_int (b - a) /. float_of_int (max 1 b))
      | _ -> ())
    (Nf.Nat.classes ())

(* ---- Ablation: exact linearization -------------------------------------- *)

let ablation_linearization ppf =
  Fmt.pf ppf
    "What the exact mask/shift/division linearization buys: without it, \
     derived@.header fields (like the IHL nibble) detach from the packet \
     bytes, so input@.classes cannot separate the paths they guard.@.@.";
  let run exact =
    Symbex.Value.with_linearization exact (fun () ->
        let t = analyze Nf.Static_router.program no_contracts in
        let members cls =
          List.length (Bolt.Pipeline.class_members t cls)
        in
        let per_class = List.map members (Nf.Static_router.classes ()) in
        (Bolt.Pipeline.path_count t, per_class))
  in
  let paths_on, classes_on = run true in
  let paths_off, classes_off = run false in
  Fmt.pf ppf "  static router, exact linearization ON:  %d paths; class \
              members %a@."
    paths_on
    Fmt.(list ~sep:(any "/") int)
    classes_on;
  Fmt.pf ppf "  static router, exact linearization OFF: %d paths; class \
              members %a@."
    paths_off
    Fmt.(list ~sep:(any "/") int)
    classes_off;
  Fmt.pf ppf
    "@.  OFF admits infeasible paths and swells each class with paths the \
     predicate@.  can no longer exclude — the class bound degrades to \
     near worst-case.@."
