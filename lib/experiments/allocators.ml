type scenario = Low_churn | High_churn

type result = {
  scenario : scenario;
  predicted_cycles_a : int;
  predicted_cycles_b : int;
  measured_p50_a : int;
  measured_p50_b : int;
  measured_p95_a : int;
  measured_p95_b : int;
  cdf_a : (int * float) list;
  cdf_b : (int * float) list;
  distilled_scan_p95 : int;
}

let capacity = 4096

(* Short-lived flows call for a short timeout; long-lived ones keep the
   table full.  The timeout is what makes "few, short-lived flows" also
   mean "nearly empty table". *)
let config_for scenario allocator =
  {
    Nf.Nat.capacity;
    buckets = capacity;
    timeout =
      (match scenario with
      | Low_churn -> 2_500_000
      | High_churn -> 120_000);
    granularity = 1_000;
    port_lo = 1024;
    port_hi = 1024 + capacity - 1;
    allocator;
  }

(* Like Workload.Gen.churn, but also flags which packets open a new flow —
   those are the packets whose latency the allocator shapes. *)
let churn_with_flags rng ~pool ~packets ~new_flow_prob ~gap ~start =
  let live = Array.init pool (fun _ -> Workload.Gen.flow rng ()) in
  List.init packets (fun i ->
      let is_new = Workload.Prng.bool rng new_flow_prob in
      let f =
        if is_new then begin
          let slot = Workload.Prng.below rng pool in
          let f = Workload.Gen.flow rng () in
          live.(slot) <- f;
          f
        end
        else live.(Workload.Prng.below rng pool)
      in
      ( {
          Workload.Stream.packet = Net.Build.udp_of_flow f;
          now = start + (i * gap);
          in_port = 0;
        },
        is_new ))

let scenario_pool ~packets = function
  | Low_churn -> min 3968 (packets / 4) (* ~95% occupancy when warm *)
  | High_churn -> min 100 (max 32 (packets / 64))

let scenario_prob = function Low_churn -> 0.02 | High_churn -> 0.5

let run_one scenario allocator (stream, new_flags) =
  let config = config_for scenario allocator in
  let dss, _ = Nf.Nat.setup ~config (Dslib.Layout.allocator ()) in
  let result = Distiller.Run.run ~dss Nf.Nat.program stream in
  let n = Distiller.Run.count result in
  let steady i = i > n / 2 in
  let flags = Array.of_list new_flags in
  (* latencies of steady-state new-flow packets (Figures 6/7) *)
  let new_flow_latencies =
    List.rev
      (Distiller.Run.fold result
         (fun acc (r : Distiller.Run.packet_report) ->
           if steady r.Distiller.Run.index && flags.(r.Distiller.Run.index)
           then r.Distiller.Run.cycles :: acc
           else acc)
         [])
  in
  (* distill the per-call PCV samples over the allocations themselves *)
  let steady_samples pcv =
    List.rev
      (Distiller.Run.fold result
         (fun acc (r : Distiller.Run.packet_report) ->
           if steady r.Distiller.Run.index then
             List.fold_left
               (fun acc (p, v) ->
                 if Perf.Pcv.equal p pcv then v :: acc else acc)
               acc r.Distiller.Run.observations
           else acc)
         [])
  in
  let scans = steady_samples Perf.Pcv.scan in
  let scan_p95 =
    match scans with [] -> 0 | _ -> Distiller.Stats.percentile scans 0.95
  in
  let traversal_p95 =
    match steady_samples Perf.Pcv.traversals with
    | [] -> 1
    | ts -> max 1 (Distiller.Stats.percentile ts 0.95)
  in
  (* Figure 5: the new-flow bound with the allocator's contract, at the
     distilled PCVs (expiry excluded — the comparison is about the
     allocator) *)
  let bindings =
    Perf.Pcv.
      [
        (expired, 0);
        (collisions, max 0 (traversal_p95 - 1));
        (traversals, traversal_p95);
        (scan, scan_p95);
      ]
  in
  let pipeline =
    Bolt.Pipeline.analyze
      ~config:
        Bolt.Pipeline.Config.(
          default |> with_contracts (Nf.Nat.contracts ~config ()))
      Nf.Nat.program
  in
  let new_flow_class =
    Symbex.Iclass.make ~name:"new flow"
      ~requires:[ Symbex.Iclass.req Nf.Nat.instance "add_int" "ok" ]
      ~bindings ()
  in
  let predicted =
    match
      Bolt.Pipeline.predict pipeline new_flow_class Perf.Metric.Cycles
    with
    | Ok v -> v
    | Error pcv ->
        invalid_arg ("allocators: unbound PCV " ^ Perf.Pcv.name pcv)
  in
  (predicted, new_flow_latencies, scan_p95)

let run scenario ?(packets = 20_000) () =
  let rng = Workload.Prng.create ~seed:43 in
  let pool = scenario_pool ~packets scenario in
  let pairs =
    churn_with_flags rng ~pool ~packets
      ~new_flow_prob:(scenario_prob scenario) ~gap:300 ~start:1_000_000
  in
  let stream = List.map fst pairs and new_flags = List.map snd pairs in
  let pa, lat_a, _ = run_one scenario `Dll (stream, new_flags) in
  let pb, lat_b, scan95 = run_one scenario `Array (stream, new_flags) in
  let pc l p =
    match l with [] -> 0 | _ -> Distiller.Stats.percentile l p
  in
  {
    scenario;
    predicted_cycles_a = pa;
    predicted_cycles_b = pb;
    measured_p50_a = pc lat_a 0.5;
    measured_p50_b = pc lat_b 0.5;
    measured_p95_a = pc lat_a 0.95;
    measured_p95_b = pc lat_b 0.95;
    cdf_a = Distiller.Stats.cdf lat_a;
    cdf_b = Distiller.Stats.cdf lat_b;
    distilled_scan_p95 = scan95;
  }

let figure5_6_7 ?packets () =
  (run Low_churn ?packets (), run High_churn ?packets ())

let scenario_name = function
  | Low_churn -> "low churn (long-lived flows, table nearly full)"
  | High_churn -> "high churn (short-lived flows, table nearly empty)"

let print ppf r =
  Fmt.pf ppf "%s@." (scenario_name r.scenario);
  Fmt.pf ppf
    "  predicted new-flow cycles: A %d, B %d (B/A %.2f); distilled scan \
     p95 = %d@."
    r.predicted_cycles_a r.predicted_cycles_b
    (float_of_int r.predicted_cycles_b
    /. float_of_int (max 1 r.predicted_cycles_a))
    r.distilled_scan_p95;
  Fmt.pf ppf
    "  measured new-flow latency: A p50 %d / p95 %d;  B p50 %d / p95 %d \
     (B/A p50 %.2f)@."
    r.measured_p50_a r.measured_p95_a r.measured_p50_b r.measured_p95_b
    (float_of_int r.measured_p50_b /. float_of_int (max 1 r.measured_p50_a))
