(** The 14 NF/packet-class scenarios of paper Figure 1 and Table 3.

    For each scenario the BOLT prediction (contract evaluated at the
    class's PCV bindings) is compared against a measured run of the
    production build: per-packet maxima of IC and MA, and realistic-
    simulator cycles.  The three pathological scenarios (NAT1, Br1, LB1)
    synthesize their mass-expiry state directly, as the paper did.

    Every scenario group splits into a serial construction phase (PRNG
    draws, adversarial state filling — order-sensitive) and a
    measurement phase that fans out over an {!Exec.Pool}: rows are
    bit-identical for every [jobs] value, and [jobs:1] runs entirely in
    the calling domain. *)

type params = {
  patho_capacity : int;  (** table size for the mass-expiry scenarios *)
  flows : int;  (** flows per typical scenario *)
  seed : int;
}

val default_params : params
val quick_params : params
(** Small sizes for the test suite. *)

val nat_rows : ?params:params -> ?jobs:int -> unit -> Harness.row list
val bridge_rows : ?params:params -> ?jobs:int -> unit -> Harness.row list
val lb_rows : ?params:params -> ?jobs:int -> unit -> Harness.row list
val lpm_rows : ?params:params -> ?jobs:int -> unit -> Harness.row list

val figure1_table3 : ?params:params -> ?jobs:int -> unit -> Harness.row list
(** All 14 rows, in the paper's order: NAT1–4, Br1–3, LB1–5, LPM1–2.
    The four groups are constructed concurrently (each from its own
    seeded PRNG) and all 14 measurements share one pool. *)

val conntrack_rows : ?params:params -> ?jobs:int -> unit -> Harness.row list
(** The same predicted-vs-measured comparison for the (non-paper)
    connection-tracking firewall: CT1–CT5. *)
