open Perf

let analyze program contracts =
  Bolt.Pipeline.analyze
    ~config:Bolt.Pipeline.Config.(default |> with_contracts contracts)
    program

let table1 ppf =
  Fmt.pf ppf "%a@." (Contract.pp_metric Metric.Instructions)
    Nf.Router_trie.stylized_contract;
  Fmt.pf ppf "%a@." (Contract.pp_metric Metric.Memory_accesses)
    Nf.Router_trie.stylized_contract;
  let t = analyze Nf.Router_trie.program (Nf.Router_trie.contracts ()) in
  let full = Bolt.Pipeline.contract t ~classes:(Nf.Router_trie.classes ()) in
  Fmt.pf ppf
    "@.full-stack contract derived by BOLT (driver + framework included):@.";
  Fmt.pf ppf "%a@." (Contract.pp_metric Metric.Instructions) full;
  Fmt.pf ppf "%a@." (Contract.pp_metric Metric.Memory_accesses) full

let table2 ppf =
  List.iter
    (fun c -> Fmt.pf ppf "%a@." Ds_contract.pp c)
    Dslib.Lpm_trie.Recipe.contract

let table4 ppf =
  let t = analyze Nf.Bridge.program (Nf.Bridge.contracts ()) in
  let contract =
    Bolt.Pipeline.contract t ~classes:(Nf.Bridge.table4_classes ())
  in
  Fmt.pf ppf "%a@." (Contract.pp_metric Metric.Instructions) contract

let table6 ppf =
  let t = analyze Nf.Nat.program (Nf.Nat.contracts ()) in
  let contract =
    Bolt.Pipeline.contract t ~classes:(Nf.Nat.table6_classes ())
  in
  Fmt.pf ppf "%a@." (Contract.pp_metric Metric.Instructions) contract

(* ---- Firewall + router chain (Table 5, Figure 3) --------------------- *)

type chain = {
  firewall_worst : Cost_vec.t;
  router_worst : Cost_vec.t;
  naive_add : Cost_vec.t;
  composite : Cost_vec.t;
  measured_firewall : Harness.measurement;
  measured_router : Harness.measurement;
  measured_chain : Harness.measurement;
}

let no_contracts = Ds_contract.library []

(* The historic hand-wired firewall→router pair, as a topology: the
   [Any] edge follows the forward regardless of port, exactly the
   pre-topology chain semantics, so the analysis below is bit-identical
   to what [Bolt.Compose.analyze] produced (pinned by test). *)
let fw_router_graph () =
  Topo.Graph.validated ~name:"fw_router"
    ~description:
      "edge firewall in front of the options-pricing static router \
       (Table 5c, Figure 3)"
    ~ingress:"firewall"
    ~nodes:
      [
        Topo.Graph.node "firewall" Nf.Spec.Firewall;
        Topo.Graph.node "router" Nf.Spec.Static_router;
      ]
    ~edges:
      [ Topo.Graph.edge "firewall" Topo.Graph.Any (Topo.Graph.Node "router") ]
    ()

let router_only_graph () =
  Topo.Graph.validated ~name:"router_only"
    ~description:"the static router measured alone" ~ingress:"router"
    ~nodes:[ Topo.Graph.node "router" Nf.Spec.Static_router ]
    ~edges:[] ()

let chain_mix ~packets rng =
  List.init packets (fun i ->
      let src_ip = Net.Ipv4.addr_of_parts 10 0 0 ((i mod 200) + 1) in
      let dst_ip = Net.Ipv4.addr_of_parts 93 184 (i mod 256) 7 in
      let options =
        if Workload.Prng.bool rng 0.3 then 1 + Workload.Prng.below rng 3
        else 0
      in
      if options = 0 then
        Net.Build.udp ~src_ip ~dst_ip ~src_port:5000 ~dst_port:80 ()
      else Net.Build.ipv4_with_options ~options ~src_ip ~dst_ip ())

let max_measure sel transits =
  List.fold_left
    (fun (acc : Harness.measurement) tr ->
      let ic, ma, cycles = sel tr in
      {
        Harness.ic = max acc.Harness.ic ic;
        ma = max acc.Harness.ma ma;
        cycles = max acc.Harness.cycles cycles;
      })
    { Harness.ic = 0; ma = 0; cycles = 0 }
    transits

let of_hop (h : Topo.Harness.hop) =
  (h.Topo.Harness.ic, h.Topo.Harness.ma, h.Topo.Harness.cycles)

let of_transit (tr : Topo.Harness.transit) =
  (tr.Topo.Harness.ic, tr.Topo.Harness.ma, tr.Topo.Harness.cycles)

let chain_experiment ?(packets = 512) () =
  let fw = analyze Nf.Firewall.program no_contracts in
  let rt = analyze Nf.Static_router.program no_contracts in
  let topo = Topo.Analysis.run ~jobs:1 (fw_router_graph ()) in
  let firewall_worst = Bolt.Pipeline.worst_case fw in
  let router_worst = Bolt.Pipeline.worst_case rt in
  let rng = Workload.Prng.create ~seed:11 in
  let mix = chain_mix ~packets rng in
  (* run the chain in production: the harness pushes each packet through
     the firewall and on through the router when forwarded *)
  let chain_harness =
    Topo.Harness.create ~hw:(Hw.Model.realistic ()) (fw_router_graph ())
  in
  let runs = List.map (Topo.Harness.transit chain_harness) mix in
  (* the router measured alone sees the raw mix (including options) *)
  let router_alone =
    let h =
      Topo.Harness.create ~hw:(Hw.Model.realistic ()) (router_only_graph ())
    in
    List.map (Topo.Harness.transit h) mix
  in
  {
    firewall_worst;
    router_worst;
    naive_add = Bolt.Compose.naive_add ~up:firewall_worst ~down:router_worst;
    composite = Topo.Analysis.worst topo;
    measured_firewall =
      max_measure
        (fun tr -> of_hop (List.hd tr.Topo.Harness.hops))
        runs;
    measured_router = max_measure of_transit router_alone;
    measured_chain = max_measure of_transit runs;
  }

let table5 ppf =
  let fw = analyze Nf.Firewall.program no_contracts in
  let rt = analyze Nf.Static_router.program no_contracts in
  let fw_contract =
    Bolt.Pipeline.contract fw ~classes:(Nf.Firewall.classes ())
  in
  let rt_contract =
    Bolt.Pipeline.contract rt ~classes:(Nf.Static_router.classes ())
  in
  Fmt.pf ppf "(a) %a@." (Contract.pp_metric Metric.Instructions) fw_contract;
  Fmt.pf ppf "(b) %a@." (Contract.pp_metric Metric.Instructions) rt_contract;
  let topo = Topo.Analysis.run ~jobs:1 (fw_router_graph ()) in
  Fmt.pf ppf "(c) firewall+router chain — instruction count@.";
  List.iter
    (fun cls ->
      let cost, n = Topo.Analysis.class_cost topo cls in
      Fmt.pf ppf "  %-16s  %a  (%d compatible path pairs)@."
        cls.Symbex.Iclass.name Perf_expr.pp
        (Cost_vec.get cost Metric.Instructions)
        n)
    (Nf.Firewall.classes ())

let bind_n = [ (Pcv.ip_options, 3) ]

let figure3 ?packets ppf =
  let c = chain_experiment ?packets () in
  let ev vec metric = Perf_expr.eval_exn bind_n (Cost_vec.get vec metric) in
  let line label vec (m : Harness.measurement) =
    Fmt.pf ppf "  %-16s  predicted IC %5d  measured IC %5d   predicted MA \
                %4d  measured MA %4d@."
      label
      (ev vec Metric.Instructions)
      m.Harness.ic
      (ev vec Metric.Memory_accesses)
      m.Harness.ma
  in
  line "Firewall" c.firewall_worst c.measured_firewall;
  line "Router" c.router_worst c.measured_router;
  line "Naive-Add" c.naive_add c.measured_chain;
  line "Composite-Bolt" c.composite c.measured_chain
