type violation = {
  packet_index : int;
  metric : Perf.Metric.t;
  bound : int;
  measured : int;
  binding : Perf.Pcv.binding;
}

type report = {
  packets : int;
  violations : violation list;
  worst_headroom_pct : float;
}

let tracked_pcvs =
  Perf.Pcv.[ expired; collisions; traversals; occupancy; scan; ip_options ]

let binding_of (r : Distiller.Run.packet_report) extra_pcvs =
  List.map
    (fun pcv ->
      ( pcv,
        List.fold_left
          (fun acc (p, v) -> if Perf.Pcv.equal p pcv then max acc v else acc)
          0 r.Distiller.Run.observations ))
    (List.sort_uniq Perf.Pcv.compare (tracked_pcvs @ extra_pcvs))

let run ~worst ~dss program stream =
  let extra_pcvs = Perf.Cost_vec.pcvs worst in
  let result =
    Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss program stream
  in
  let violations = ref [] in
  let headroom = ref 100. in
  Distiller.Run.iter result
    (fun (r : Distiller.Run.packet_report) ->
      let binding = binding_of r extra_pcvs in
      let check metric measured =
        let bound = Perf.Cost_vec.eval_exn binding worst metric in
        if bound < measured then
          violations :=
            {
              packet_index = r.Distiller.Run.index;
              metric;
              bound;
              measured;
              binding;
            }
            :: !violations
        else if bound > 0 then
          headroom :=
            Float.min !headroom
              (100. *. float_of_int (bound - measured) /. float_of_int bound)
      in
      check Perf.Metric.Instructions r.Distiller.Run.ic;
      check Perf.Metric.Memory_accesses r.Distiller.Run.ma);
  {
    packets = Distiller.Run.count result;
    violations = List.rev !violations;
    worst_headroom_pct = !headroom;
  }

let pp ppf r =
  if r.violations = [] then
    Fmt.pf ppf
      "OK: %d packets within the contract (tightest headroom: %.1f%%)@."
      r.packets r.worst_headroom_pct
  else begin
    Fmt.pf ppf "CONTRACT VIOLATED on %d of %d packets:@."
      (List.length r.violations) r.packets;
    List.iter
      (fun v ->
        Fmt.pf ppf "  packet %d: %a bound %d < measured %d at %a@."
          v.packet_index Perf.Metric.pp v.metric v.bound v.measured
          Perf.Pcv.pp_binding v.binding)
      r.violations
  end
