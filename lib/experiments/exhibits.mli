(** Contract exhibits: the paper's contract tables and the chain
    experiment. *)

val table1 : Format.formatter -> unit
(** The stylised running-example contract (paper Table 1) plus the
    BOLT-derived full-stack contract of the same trie router. *)

val table2 : Format.formatter -> unit
(** The lpmGet method contract (paper Table 2). *)

val table4 : Format.formatter -> unit
(** Bridge contract by learn branch, showing the rehash cliff. *)

val table6 : Format.formatter -> unit
(** VigNAT contract over the five traffic types. *)

val fw_router_graph : unit -> Topo.Graph.t
(** The firewall→router chain of Table 5c / Figure 3 as a first-class
    topology ([Any] edge: follow the forward regardless of port — the
    historic pair-composition semantics). *)

type chain = {
  firewall_worst : Perf.Cost_vec.t;
  router_worst : Perf.Cost_vec.t;
  naive_add : Perf.Cost_vec.t;
  composite : Perf.Cost_vec.t;
  measured_firewall : Harness.measurement;
  measured_router : Harness.measurement;
  measured_chain : Harness.measurement;
}

val chain_experiment : ?packets:int -> unit -> chain
(** Firewall + static-router composition (paper §3.4, Table 5,
    Figure 3): contracts for each NF, their naive sum, the jointly
    analysed composite, and measured runs of the chain. *)

val table5 : Format.formatter -> unit
val figure3 : ?packets:int -> Format.formatter -> unit
