type point = { traversals : int; ccdf : float; predicted_ic : int }

let figure2 ?(packets = 20_000) ?(capacity = 8192) ?(buckets = 2048) () =
  (* a high threshold so the defence never fires during the calibration
     run — the operator is deciding where to put it *)
  let config =
    {
      Nf.Bridge.default_config with
      Nf.Bridge.capacity;
      buckets;
      threshold = 64;
    }
  in
  let dss, _table = Nf.Bridge.setup ~config (Dslib.Layout.allocator ()) in
  let rng = Workload.Prng.create ~seed:23 in
  (* uniform random sources: every packet is a fresh learn *)
  let frames =
    List.init packets (fun _ ->
        Net.Build.eth
          ~src_mac:(Workload.Gen.mac rng)
          ~dst_mac:(Workload.Gen.mac rng)
          ~ethertype:Net.Ethernet.ethertype_ipv4 ())
  in
  let stream =
    Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:50 frames
  in
  let result = Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss Nf.Bridge.program stream in
  let traversal_samples =
    Distiller.Run.pcv_values result Perf.Pcv.traversals
  in
  let ccdf = Distiller.Stats.ccdf traversal_samples in
  (* the contract's unknown-source (no rehash) branch as a function of t *)
  let pipeline =
    Bolt.Pipeline.analyze
      ~config:
        Bolt.Pipeline.Config.(
          default |> with_contracts (Nf.Bridge.contracts ~config ()))
      Nf.Bridge.program
  in
  let unknown_class = List.nth (Nf.Bridge.table4_classes ()) 1 in
  let cost, _ = Bolt.Pipeline.class_cost pipeline unknown_class in
  let ic_expr = Perf.Cost_vec.get cost Perf.Metric.Instructions in
  List.map
    (fun (tv, p) ->
      let binding =
        [
          (Perf.Pcv.expired, 0);
          (Perf.Pcv.collisions, max 0 (tv - 1));
          (Perf.Pcv.traversals, tv);
          (Perf.Pcv.occupancy, 0);
        ]
      in
      {
        traversals = tv;
        ccdf = p;
        predicted_ic = Perf.Perf_expr.eval_exn binding ic_expr;
      })
    ccdf

let print ppf points =
  Fmt.pf ppf "  %-12s %-12s %s@." "traversals" "CCDF" "predicted IC";
  List.iter
    (fun { traversals; ccdf; predicted_ic } ->
      Fmt.pf ppf "  %-12d %-12.5f %d@." traversals ccdf predicted_ic)
    points
