type params = { patho_capacity : int; flows : int; seed : int }

let default_params = { patho_capacity = 4096; flows = 512; seed = 7 }
let quick_params = { patho_capacity = 256; flows = 64; seed = 7 }
let t0 = 1_000_000

let key_of_flow (f : Net.Flow.t) =
  [| f.Net.Flow.src_ip; f.dst_ip; f.src_port; f.dst_port; f.proto |]

(* Flows whose keys land in pairwise-distinct buckets, so the typical
   scenarios really do avoid hash collisions (c = 0, t <= 1). *)
let distinct_bucket_flows rng ~hash n =
  let used = Hashtbl.create n in
  let rec draw acc k guard =
    if k = 0 then List.rev acc
    else if guard = 0 then failwith "distinct_bucket_flows: budget exhausted"
    else
      let f = Workload.Gen.flow rng () in
      let b = hash (key_of_flow f) in
      if Hashtbl.mem used b then draw acc k (guard - 1)
      else begin
        Hashtbl.add used b ();
        draw (f :: acc) (k - 1) (guard - 1)
      end
  in
  draw [] n 10_000_000

let analyze_nf ?jobs program contracts =
  Bolt.Pipeline.analyze
    ~config:{ Bolt.Pipeline.Config.default with contracts; jobs }
    program

let find_class classes name =
  List.find (fun c -> c.Symbex.Iclass.name = name) classes

(* A fully constructed scenario, ready to measure.  Building a spec does
   all the RNG-dependent work — flow draws, adversarial state filling,
   stream construction — so specs must be built serially, in a fixed
   order; measuring touches only the spec's own [dss] (and the
   domain-safe solver cache through [predict]), so specs can be measured
   on any domain. *)
type spec = {
  label : string;
  pipeline : Bolt.Pipeline.t;
  classes : Symbex.Iclass.t list;
  dss : Exec.Ds.env;
  program : Ir.Program.t;
  warmup : Workload.Stream.t;
  measured : Workload.Stream.t;
}

let measure_spec s =
  Obs.Span.with_ ~cat:"scenario" "measure"
    ~args:(fun () -> [ ("scenario", s.label) ])
  @@ fun () ->
  {
    Harness.label = s.label;
    predicted = Harness.predict_exn s.pipeline (find_class s.classes s.label);
    measured = Harness.measure ~dss:s.dss s.program ~warmup:s.warmup
        ~measured:s.measured;
  }

let c_measured = Obs.Metrics.counter "scenarios.specs_measured"

let measure_specs ?jobs specs =
  let rows = Exec.Pool.map ?jobs measure_spec specs in
  Obs.Metrics.add c_measured (List.length rows);
  rows

(* ---- NAT -------------------------------------------------------------- *)

let nat_specs ?(params = default_params) ?jobs () =
  let program = Nf.Nat.program in
  let pipeline = analyze_nf ?jobs program (Nf.Nat.contracts ()) in
  let cfg = Nf.Nat.default_config in
  let classes = Nf.Nat.classes ~config:cfg () in
  let rng = Workload.Prng.create ~seed:params.seed in
  let fresh_nat () = Nf.Nat.setup ~config:cfg (Dslib.Layout.allocator ()) in
  (* NAT2: each distinct-bucket flow seen once *)
  let nat2 =
    let dss, nat = fresh_nat () in
    let flows =
      distinct_bucket_flows rng ~hash:(Dslib.Nat_table.hash_of_flow nat)
        params.flows
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:t0 ~gap:100
        (Workload.Gen.packets_of_flows flows)
    in
    { label = "NAT2"; pipeline; classes; dss; program; warmup = []; measured }
  in
  (* NAT3: the same flows re-sent within the timeout *)
  let nat3 =
    let dss, nat = fresh_nat () in
    let flows =
      distinct_bucket_flows rng ~hash:(Dslib.Nat_table.hash_of_flow nat)
        params.flows
    in
    let packets () = Workload.Gen.packets_of_flows flows in
    let warmup =
      Workload.Stream.constant_rate ~in_port:0 ~start:t0 ~gap:100 (packets ())
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 500_000)
        ~gap:100 (packets ())
    in
    { label = "NAT3"; pipeline; classes; dss; program; warmup; measured }
  in
  (* NAT4: external packets towards unmapped ports *)
  let nat4 =
    let dss, _ = fresh_nat () in
    let packets =
      List.init params.flows (fun i ->
          Net.Build.udp
            ~src_ip:(Net.Ipv4.addr_of_parts 93 184 0 (i land 0xff))
            ~dst_ip:Nf.Nat.external_ip
            ~src_port:(2000 + i)
            ~dst_port:(50_000 + (i mod 10_000))
            ())
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:1 ~start:t0 ~gap:100 packets
    in
    { label = "NAT4"; pipeline; classes; dss; program; warmup = []; measured }
  in
  (* NAT1: synthesized mass-expiry state, one trigger packet *)
  let nat1 =
    let patho_cfg =
      {
        cfg with
        Nf.Nat.capacity = params.patho_capacity;
        buckets = params.patho_capacity;
        port_lo = 1024;
        port_hi = 1024 + (2 * params.patho_capacity);
      }
    in
    let patho_classes = Nf.Nat.classes ~config:patho_cfg () in
    let dss, nat = Nf.Nat.setup ~config:patho_cfg (Dslib.Layout.allocator ()) in
    Workload.Adversarial.fill_nat_collided nat rng ~stamped_at:t0;
    let trigger = Workload.Adversarial.trigger_packet () in
    let measured =
      [
        {
          Workload.Stream.packet = trigger;
          now = t0 + patho_cfg.Nf.Nat.timeout + patho_cfg.Nf.Nat.granularity + 1;
          in_port = 0;
        };
      ]
    in
    { label = "NAT1"; pipeline; classes = patho_classes; dss; program;
      warmup = []; measured }
  in
  [ nat1; nat2; nat3; nat4 ]

let nat_rows ?params ?jobs () = measure_specs ?jobs (nat_specs ?params ?jobs ())

(* ---- Bridge ------------------------------------------------------------ *)

let bridge_specs ?(params = default_params) ?jobs () =
  let program = Nf.Bridge.program in
  let pipeline = analyze_nf ?jobs program (Nf.Bridge.contracts ()) in
  let cfg = Nf.Bridge.default_config in
  let classes = Nf.Bridge.classes ~config:cfg () in
  let rng = Workload.Prng.create ~seed:(params.seed + 1) in
  let distinct_macs table n =
    let used = Hashtbl.create n in
    let rec draw acc k guard =
      if k = 0 then List.rev acc
      else if guard = 0 then failwith "distinct_macs: budget exhausted"
      else
        let mac = Workload.Gen.mac rng in
        let b = Dslib.Mac_table.hash_of_mac table mac in
        if Hashtbl.mem used b then draw acc k (guard - 1)
        else begin
          Hashtbl.add used b ();
          draw (mac :: acc) (k - 1) (guard - 1)
        end
    in
    draw [] n 10_000_000
  in
  let br2 =
    let dss, table = Nf.Bridge.setup ~config:cfg (Dslib.Layout.allocator ()) in
    let srcs = distinct_macs table params.flows in
    let frames () = Workload.Gen.broadcast_frames rng ~srcs params.flows in
    let warmup =
      Workload.Stream.constant_rate ~in_port:0 ~start:t0 ~gap:100 (frames ())
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 500_000) ~gap:100
        (frames ())
    in
    { label = "Br2"; pipeline; classes; dss; program; warmup; measured }
  in
  let br3 =
    let dss, table = Nf.Bridge.setup ~config:cfg (Dslib.Layout.allocator ()) in
    let macs = distinct_macs table (2 * params.flows) in
    let srcs = List.filteri (fun i _ -> i mod 2 = 0) macs in
    let dsts = List.filteri (fun i _ -> i mod 2 = 1) macs in
    (* teach the bridge both sides: sources on port 0, destinations on
       port 1 *)
    let learn_srcs = Workload.Gen.broadcast_frames rng ~srcs params.flows in
    let learn_dsts = Workload.Gen.broadcast_frames rng ~srcs:dsts params.flows in
    let warmup =
      Workload.Stream.constant_rate ~in_port:0 ~start:t0 ~gap:100 learn_srcs
      @ Workload.Stream.constant_rate ~in_port:1 ~start:(t0 + 200_000)
          ~gap:100 learn_dsts
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 500_000) ~gap:100
        (Workload.Gen.unicast_frames rng ~srcs ~dsts params.flows)
    in
    { label = "Br3"; pipeline; classes; dss; program; warmup; measured }
  in
  let br1 =
    let patho_cfg =
      {
        cfg with
        Nf.Bridge.capacity = params.patho_capacity;
        buckets = params.patho_capacity;
      }
    in
    let patho_classes = Nf.Bridge.classes ~config:patho_cfg () in
    let dss, table =
      Nf.Bridge.setup ~config:patho_cfg (Dslib.Layout.allocator ())
    in
    Workload.Adversarial.fill_mac_table_collided table rng ~port:1
      ~stamped_at:t0;
    let trigger =
      Net.Build.eth
        ~src_mac:(Workload.Gen.mac rng)
        ~dst_mac:(Workload.Gen.mac rng)
        ~ethertype:Net.Ethernet.ethertype_ipv4 ()
    in
    let measured =
      [
        {
          Workload.Stream.packet = trigger;
          now = t0 + patho_cfg.Nf.Bridge.timeout + 1;
          in_port = 0;
        };
      ]
    in
    { label = "Br1"; pipeline; classes = patho_classes; dss; program;
      warmup = []; measured }
  in
  [ br1; br2; br3 ]

let bridge_rows ?params ?jobs () =
  measure_specs ?jobs (bridge_specs ?params ?jobs ())

(* ---- Load balancer ------------------------------------------------------ *)

let lb_specs ?(params = default_params) ?jobs () =
  let program = Nf.Maglev.program in
  let pipeline = analyze_nf ?jobs program (Nf.Maglev.contracts ()) in
  let cfg = Nf.Maglev.default_config in
  let classes = Nf.Maglev.classes ~config:cfg () in
  let rng = Workload.Prng.create ~seed:(params.seed + 2) in
  let backend_ids = List.init cfg.Nf.Maglev.backend_count (fun b -> b) in
  let heartbeats ~start =
    Workload.Stream.constant_rate ~in_port:1 ~start ~gap:10
      (Workload.Gen.heartbeat_frames ~backend_ids
         ~port:Nf.Maglev.heartbeat_port)
  in
  let fresh () = Nf.Maglev.setup ~config:cfg (Dslib.Layout.allocator ()) in
  let flows_for state n =
    distinct_bucket_flows rng
      ~hash:(Dslib.Flow_table.hash_of_key state.Nf.Maglev.flow_table)
      n
  in
  let lb5 =
    let dss, _ = fresh () in
    { label = "LB5"; pipeline; classes; dss; program;
      warmup = heartbeats ~start:t0;
      measured = heartbeats ~start:(t0 + 100_000) }
  in
  let lb2 =
    let dss, state = fresh () in
    let flows = flows_for state params.flows in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 100_000) ~gap:100
        (Workload.Gen.packets_of_flows flows)
    in
    { label = "LB2"; pipeline; classes; dss; program;
      warmup = heartbeats ~start:t0; measured }
  in
  let lb4 =
    let dss, state = fresh () in
    let flows = flows_for state params.flows in
    let packets () = Workload.Gen.packets_of_flows flows in
    let warmup =
      heartbeats ~start:t0
      @ Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 100_000)
          ~gap:100 (packets ())
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 1_000_000)
        ~gap:100 (packets ())
    in
    { label = "LB4"; pipeline; classes; dss; program; warmup; measured }
  in
  let lb3 =
    let dss, state = fresh () in
    let flows = flows_for state params.flows in
    let packets () = Workload.Gen.packets_of_flows flows in
    let warmup =
      heartbeats ~start:t0
      @ Workload.Stream.constant_rate ~in_port:0 ~start:(t0 + 100_000)
          ~gap:100 (packets ())
    in
    (* measured beyond the backend timeout (no fresh heartbeats), within
       the flow timeout *)
    let measured =
      Workload.Stream.constant_rate ~in_port:0
        ~start:(t0 + 100_000 + cfg.Nf.Maglev.backend_timeout + 100_000)
        ~gap:100 (packets ())
    in
    { label = "LB3"; pipeline; classes; dss; program; warmup; measured }
  in
  let lb1 =
    let patho_cfg =
      {
        cfg with
        Nf.Maglev.capacity = params.patho_capacity;
        buckets = params.patho_capacity;
      }
    in
    let patho_classes = Nf.Maglev.classes ~config:patho_cfg () in
    let dss, state =
      Nf.Maglev.setup ~config:patho_cfg (Dslib.Layout.allocator ())
    in
    Workload.Adversarial.fill_flow_table_collided state.Nf.Maglev.flow_table
      rng ~value:0 ~stamped_at:t0;
    let measured =
      [
        {
          Workload.Stream.packet = Workload.Adversarial.trigger_packet ();
          now = t0 + patho_cfg.Nf.Maglev.timeout + 1;
          in_port = 0;
        };
      ]
    in
    { label = "LB1"; pipeline; classes = patho_classes; dss; program;
      warmup = []; measured }
  in
  [ lb1; lb2; lb3; lb4; lb5 ]

let lb_rows ?params ?jobs () = measure_specs ?jobs (lb_specs ?params ?jobs ())

(* ---- LPM router ---------------------------------------------------------- *)

let lpm_routes =
  (* a mix of short and long prefixes, so both tiers are populated *)
  List.init 64 (fun i ->
      (Net.Ipv4.addr_of_parts (i + 16) 0 0 0, 16, (i mod 4) + 1))
  @ List.init 32 (fun i ->
        (Net.Ipv4.addr_of_parts 100 1 i 128, 28, (i mod 4) + 1))

let lpm_specs ?(params = default_params) ?jobs () =
  let program = Nf.Router_lpm.program in
  let pipeline = analyze_nf ?jobs program (Nf.Router_lpm.contracts ()) in
  let classes = Nf.Router_lpm.classes () in
  let rng = Workload.Prng.create ~seed:(params.seed + 3) in
  let make label long =
    let dss, lpm =
      Nf.Router_lpm.setup (Dslib.Layout.allocator ()) ~routes:lpm_routes
    in
    let packets =
      Workload.Gen.lpm_destinations rng lpm ~long params.flows
    in
    let measured =
      Workload.Stream.constant_rate ~in_port:0 ~start:t0 ~gap:100 packets
    in
    { label; pipeline; classes; dss; program; warmup = []; measured }
  in
  [ make "LPM1" true; make "LPM2" false ]

let lpm_rows ?params ?jobs () =
  measure_specs ?jobs (lpm_specs ?params ?jobs ())

(* ---- Conntrack firewall (extension NF) --------------------------------- *)

let conntrack_specs ?(params = default_params) ?jobs () =
  let program = Nf.Conntrack.program in
  let pipeline = analyze_nf ?jobs program (Nf.Conntrack.contracts ()) in
  let cfg = Nf.Conntrack.default_config in
  let classes = Nf.Conntrack.classes ~config:cfg () in
  let rng = Workload.Prng.create ~seed:(params.seed + 4) in
  let fresh () = Nf.Conntrack.setup ~config:cfg (Dslib.Layout.allocator ()) in
  let flows_for ft n =
    distinct_bucket_flows rng ~hash:(Dslib.Flow_table.hash_of_key ft) n
  in
  let outbound start flows =
    Workload.Stream.constant_rate ~in_port:0 ~start ~gap:100
      (Workload.Gen.packets_of_flows flows)
  in
  let inbound start flows =
    Workload.Stream.constant_rate ~in_port:1 ~start ~gap:100
      (Workload.Gen.packets_of_flows
         (List.map Net.Flow.reverse flows))
  in
  let ct2 =
    let dss, ft = fresh () in
    let flows = flows_for ft params.flows in
    { label = "CT2"; pipeline; classes; dss; program; warmup = [];
      measured = outbound t0 flows }
  in
  let ct3 =
    let dss, ft = fresh () in
    let flows = flows_for ft params.flows in
    { label = "CT3"; pipeline; classes; dss; program;
      warmup = outbound t0 flows;
      measured = outbound (t0 + 500_000) flows }
  in
  let ct4 =
    let dss, ft = fresh () in
    let flows = flows_for ft params.flows in
    { label = "CT4"; pipeline; classes; dss; program;
      warmup = outbound t0 flows;
      measured = inbound (t0 + 500_000) flows }
  in
  let ct5 =
    let dss, ft = fresh () in
    let flows = flows_for ft params.flows in
    { label = "CT5"; pipeline; classes; dss; program; warmup = [];
      measured = inbound t0 flows }
  in
  let ct1 =
    let patho_cfg =
      {
        cfg with
        Nf.Conntrack.capacity = params.patho_capacity;
        buckets = params.patho_capacity;
      }
    in
    let patho_classes = Nf.Conntrack.classes ~config:patho_cfg () in
    let dss, ft =
      Nf.Conntrack.setup ~config:patho_cfg (Dslib.Layout.allocator ())
    in
    Workload.Adversarial.fill_flow_table_collided ft rng ~value:1
      ~stamped_at:t0;
    let measured =
      [
        {
          Workload.Stream.packet = Workload.Adversarial.trigger_packet ();
          now = t0 + patho_cfg.Nf.Conntrack.timeout + 1;
          in_port = 0;
        };
      ]
    in
    { label = "CT1"; pipeline; classes = patho_classes; dss; program;
      warmup = []; measured }
  in
  [ ct1; ct2; ct3; ct4; ct5 ]

let conntrack_rows ?params ?jobs () =
  measure_specs ?jobs (conntrack_specs ?params ?jobs ())

(* ---- All 14 rows --------------------------------------------------------- *)

let figure1_table3 ?(params = default_params) ?jobs () =
  (* Each group draws from its own seeded PRNG, so the groups can be
     *built* concurrently; within a group construction stays serial to
     preserve the PRNG stream.  Measurement then fans all 14 specs out
     at once — it is the bulk of the wall-clock and touches no RNG. *)
  let groups =
    [
      ("nat", fun () -> nat_specs ~params ?jobs ());
      ("bridge", fun () -> bridge_specs ~params ?jobs ());
      ("lb", fun () -> lb_specs ~params ?jobs ());
      ("lpm", fun () -> lpm_specs ~params ?jobs ());
    ]
  in
  let build (name, g) =
    Obs.Span.with_ ~cat:"scenario" "build"
      ~args:(fun () -> [ ("group", name) ])
      g
  in
  let specs = List.concat (Exec.Pool.map ?jobs build groups) in
  measure_specs ?jobs specs
