(** Raw packet buffers.

    A packet is a mutable byte buffer with network-byte-order accessors.
    All multi-byte accessors are big-endian, as on the wire.  Offsets are
    bounds-checked; accessors raise [Invalid_argument] on overrun. *)

type t

val create : int -> t
(** [create len] is a zero-filled packet of [len] bytes.  Raises
    [Invalid_argument] if [len < 0] or [len > 65535]. *)

val of_bytes : bytes -> t
val to_bytes : t -> bytes
(** A copy of the packet's contents. *)

val copy : t -> t
val length : t -> int

val get_u8 : t -> int -> int
val get_u16 : t -> int -> int
val get_u32 : t -> int -> int
val get_u48 : t -> int -> int
(** 48-bit big-endian load — MAC addresses. *)

val set_u8 : t -> int -> int -> unit
val set_u16 : t -> int -> int -> unit
val set_u32 : t -> int -> int -> unit
val set_u48 : t -> int -> int -> unit

val get : t -> Ir.Expr.width -> int -> int
(** Width-dispatched load: [get t w off] is the big-endian [w]-wide
    field at [off].  The single accessor behind every IR [Pkt_load]. *)

val set : t -> Ir.Expr.width -> int -> int -> unit
(** Width-dispatched store; values wider than [w] are truncated to the
    low [w] bits (byte-wise masking, as the per-width setters do). *)

val blit_string : string -> t -> int -> unit
val equal : t -> t -> bool
val pp_hex : Format.formatter -> t -> unit
