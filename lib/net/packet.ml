type t = { data : bytes }

let create len =
  if len < 0 || len > 65535 then invalid_arg "Packet.create: bad length";
  { data = Bytes.make len '\000' }

let of_bytes b = { data = Bytes.copy b }
let to_bytes t = Bytes.copy t.data
let copy t = { data = Bytes.copy t.data }
let length t = Bytes.length t.data

let check t off width =
  if off < 0 || off + width > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Packet: offset %d+%d out of bounds (len %d)" off width
         (Bytes.length t.data))

(* One bounds check per access, at the full width, then unchecked byte
   reads — [check] already proved every byte in range.  The check's
   message (width included) is part of the stuck-message contract. *)
let byte t off = Char.code (Bytes.unsafe_get t.data off)

let get_u8 t off =
  check t off 1;
  byte t off

let get_u16 t off =
  check t off 2;
  (byte t off lsl 8) lor byte t (off + 1)

let get_u32 t off =
  check t off 4;
  (byte t off lsl 24)
  lor (byte t (off + 1) lsl 16)
  lor (byte t (off + 2) lsl 8)
  lor byte t (off + 3)

let get_u48 t off =
  check t off 6;
  (byte t off lsl 40)
  lor (byte t (off + 1) lsl 32)
  lor (byte t (off + 2) lsl 24)
  lor (byte t (off + 3) lsl 16)
  lor (byte t (off + 4) lsl 8)
  lor byte t (off + 5)

let put t off v = Bytes.unsafe_set t.data off (Char.unsafe_chr (v land 0xff))

let set_u8 t off v =
  check t off 1;
  put t off v

let set_u16 t off v =
  check t off 2;
  put t off (v lsr 8);
  put t (off + 1) v

let set_u32 t off v =
  check t off 4;
  put t off (v lsr 24);
  put t (off + 1) (v lsr 16);
  put t (off + 2) (v lsr 8);
  put t (off + 3) v

let set_u48 t off v =
  check t off 6;
  put t off (v lsr 40);
  put t (off + 1) (v lsr 32);
  put t (off + 2) (v lsr 24);
  put t (off + 3) (v lsr 16);
  put t (off + 4) (v lsr 8);
  put t (off + 5) v

(* The one width dispatch: every consumer of IR packet accesses — the
   concrete evaluator domain, witness construction, tests — goes
   through these, so W48 masking and bounds behaviour exist once. *)
let get t (width : Ir.Expr.width) off =
  match width with
  | Ir.Expr.W8 -> get_u8 t off
  | Ir.Expr.W16 -> get_u16 t off
  | Ir.Expr.W32 -> get_u32 t off
  | Ir.Expr.W48 -> get_u48 t off

let set t (width : Ir.Expr.width) off v =
  match width with
  | Ir.Expr.W8 -> set_u8 t off v
  | Ir.Expr.W16 -> set_u16 t off v
  | Ir.Expr.W32 -> set_u32 t off v
  | Ir.Expr.W48 -> set_u48 t off v

let blit_string s t off =
  check t off (String.length s);
  Bytes.blit_string s 0 t.data off (String.length s)

let equal a b = Bytes.equal a.data b.data

let pp_hex ppf t =
  Bytes.iteri
    (fun i c ->
      if i > 0 && i mod 16 = 0 then Fmt.pf ppf "@\n";
      Fmt.pf ppf "%02x " (Char.code c))
    t.data
