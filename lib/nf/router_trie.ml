(* Thin alias over the spec-parameterized Router with the `Trie backend,
   plus the paper's stylised Table 1 contract (which belongs to the trie
   method specifically). *)

let instance = Router.instance
let program = Router.program `Trie

let setup alloc ~routes =
  let env, lpm = Router.setup `Trie alloc ~routes in
  match lpm.Dslib.Backends.Lpm.repr with
  | Dslib.Backends.Lpm.Trie t -> (env, t)
  | _ -> assert false

let contracts () = Router.contracts `Trie
let classes () = Router.classes `Trie

let stylized_contract =
  let open Perf in
  let lookup = Dslib.Lpm_trie.Recipe.lookup_cost in
  let add_consts ~ic ~ma vec =
    Cost_vec.make
      ~ic:(Perf_expr.add_const ic (Cost_vec.get vec Metric.Instructions))
      ~ma:(Perf_expr.add_const ma (Cost_vec.get vec Metric.Memory_accesses))
      ~cycles:(Cost_vec.get vec Metric.Cycles)
  in
  Contract.make ~nf:"Simple LPM router (stylised, paper Table 1)"
    [
      Contract.entry ~class_name:"Invalid packets"
        ~description:"non-IPv4: ethertype check, drop"
        (Cost_vec.of_consts ~ic:2 ~ma:1 ~cycles:0);
      Contract.entry ~class_name:"Valid packets"
        ~description:"IPv4: ethertype check + lpmGet + forward"
        (add_consts ~ic:3 ~ma:2 lookup);
    ]
