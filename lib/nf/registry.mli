(** The NF catalogue.

    One [entry] bundles everything a driver needs to analyse or run a
    network function — its IR program, the contract library for its
    stateful calls, its input classes, and a [setup] that builds the
    production data structures — so the CLI, bench, examples and tests
    look NFs up by name instead of re-wiring those four by hand. *)

type frozen = {
  knobs : (string * string) list;
      (** configuration the default [setup] bakes in, knob → value —
          what a config-specialized stream freezes against *)
}
(** Frozen-config descriptor for NFs whose per-stream configuration is
    fixed (static router FIB, firewall ruleset, table geometries). *)

type entry = {
  name : string;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
      (** builds the production data-structure environment (empty for
          stateless NFs) *)
  frozen : frozen option;
      (** present for the benched NFs whose configuration is frozen per
          stream and therefore eligible for {!Exec.Specialize} *)
}

val all : unit -> entry list
(** Every registered NF, in presentation order. *)

val names : unit -> string list

val find : string -> entry
(** Look an NF up by [name]; raises [Invalid_argument] with the list of
    known names on a miss. *)

val specialize : entry -> meter:Exec.Meter.t -> Exec.Specialize.t * Exec.Ds.env
(** Build a production environment with a fresh allocator, compile the
    program and bind it to [meter] via {!Exec.Specialize.bind}.  Returns
    the bound stream (specialized when every call site has a fast path,
    the generic compiled runner otherwise) and the environment, so
    callers can drive the interpreter against the same state. *)
