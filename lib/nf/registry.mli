(** The NF catalogue.

    One [entry] bundles everything a driver needs to analyse or run a
    network function — its IR program, the contract library for its
    stateful calls, its input classes, and a [setup] that builds the
    production data structures — so the CLI, bench, examples and tests
    look NFs up by name instead of re-wiring those four by hand.

    Every entry is {e derived} from a value-level {!Spec.t} by
    {!of_spec}; the default catalogue is [Spec.defaults ()] mapped
    through it, so the tuner's search space and the registry's
    construction path share one definition. *)

type frozen = {
  knobs : Spec.knob list;
      (** typed configuration the default [setup] bakes in — what a
          config-specialized stream freezes against *)
}
(** Frozen-config descriptor for NFs whose per-stream configuration is
    fixed (static router FIB, firewall ruleset, table geometries). *)

val to_strings : frozen -> (string * string) list
(** The historic stringly [knob → value] rendering, for printers and the
    specialize gate. *)

type entry = {
  name : string;
  spec : Spec.t;  (** the value-level description this entry was built from *)
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
      (** builds the production data-structure environment (empty for
          stateless NFs) *)
  frozen : frozen option;
      (** present for the benched NFs whose configuration is frozen per
          stream and therefore eligible for {!Exec.Specialize} *)
}

val of_spec : Spec.t -> entry
(** Derive a full entry — program, contracts, classes, setup, frozen
    knobs — from a value-level spec.  This is the only construction
    path; [all ()] is [Spec.defaults ()] mapped through it. *)

val all : unit -> entry list
(** Every registered NF, in presentation order. *)

val names : unit -> string list

val find : string -> entry
(** Look an NF up by [name]; raises [Invalid_argument] with the list of
    known names on a miss. *)

val specialize : entry -> meter:Exec.Meter.t -> Exec.Specialize.t * Exec.Ds.env
(** Build a production environment with a fresh allocator, compile the
    program and bind it to [meter] via {!Exec.Specialize.bind}.  Returns
    the bound stream (specialized when every call site has a fast path,
    the generic compiled runner otherwise) and the environment, so
    callers can drive the interpreter against the same state. *)
