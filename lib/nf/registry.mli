(** The NF catalogue.

    One [entry] bundles everything a driver needs to analyse or run a
    network function — its IR program, the contract library for its
    stateful calls, its input classes, and a [setup] that builds the
    production data structures — so the CLI, bench, examples and tests
    look NFs up by name instead of re-wiring those four by hand. *)

type entry = {
  name : string;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
      (** builds the production data-structure environment (empty for
          stateless NFs) *)
}

val all : unit -> entry list
(** Every registered NF, in presentation order. *)

val names : unit -> string list

val find : string -> entry
(** Look an NF up by [name]; raises [Invalid_argument] with the list of
    known names on a miss. *)
