(** The spec-parameterized router: one module, two LPM backends.

    [`Dir24_8] is the paper's production LPM (DPDK dir-24-8, classes
    LPM1/LPM2, decrements TTL); [`Trie] is the stylised running example
    (§2.1 Algorithm 1, Patricia trie, forwards untouched).  Programs,
    contracts and classes are bit-identical to the historic
    [Router_lpm]/[Router_trie] modules, which remain as thin aliases. *)

val instance : string

val name : Dslib.Backends.lpm -> string
(** Registry name: ["lpm_router"] / ["trie_router"]. *)

val of_name : string -> Dslib.Backends.lpm option
(** Inverse of [name] over the two registry aliases. *)

val program : Dslib.Backends.lpm -> Ir.Program.t

val setup :
  Dslib.Backends.lpm ->
  Dslib.Layout.allocator ->
  routes:(int * int * int) list ->
  Exec.Ds.env * Dslib.Backends.Lpm.instance
(** [routes] are [(prefix, len, port)] triples. *)

val contracts : Dslib.Backends.lpm -> Perf.Ds_contract.library
val classes : Dslib.Backends.lpm -> Symbex.Iclass.t list
