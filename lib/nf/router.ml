(* One router, two LPM backends.  The backend choice is a value
   (Dslib.Backends.Lpm.choice), not a source-level pick: program text,
   contracts and input classes are all derived from it, and the historic
   `lpm_router` / `trie_router` registry names map to the two choices.

   The per-backend differences are deliberate and preserved bit-exactly
   from the pre-refactor modules: the dir-24-8 router models a production
   forwarder (it decrements TTL and recomputes the checksum), while the
   trie router is the paper's stylised running example (§2.1, Algorithm 1)
   and forwards the packet untouched. *)

let instance = "lpm"

open Ir.Expr
open Ir.Stmt

let name backend =
  match backend with `Dir24_8 -> "lpm_router" | `Trie -> "trie_router"

let of_name = function
  | "lpm_router" -> Some `Dir24_8
  | "trie_router" -> Some `Trie
  | _ -> None

let program backend =
  let prologue comment =
    [
      Comment comment;
      if_ (Pkt_len < int 34) [ drop ] [];
      assign "ethertype" Hdr.ethertype;
      if_ (var "ethertype" != int Hdr.ipv4_ethertype) [ drop ] [];
      assign "dst_ip" Hdr.dst_ip;
      call ~ret:"port" instance "lookup" [ var "dst_ip" ];
    ]
  in
  let state =
    [ { Ir.Program.instance; kind = Dslib.Backends.Lpm.kind backend } ]
  in
  match backend with
  | `Dir24_8 ->
      Ir.Program.make ~name:(name backend) ~state
        (prologue "parse: Ethernet + IPv4"
        @ Hdr.decrement_ttl
        @ [ forward (var "port") ])
  | `Trie ->
      Ir.Program.make ~name:(name backend) ~state
        (prologue "Algorithm 1: classify, then LPM lookup"
        @ [ forward (var "port") ])

let setup backend alloc ~routes =
  let lpm =
    Dslib.Backends.Lpm.create backend
      ~base:(Dslib.Layout.region alloc)
      ~default_port:0
  in
  List.iter
    (fun (prefix, len, port) ->
      Dslib.Backends.Lpm.add_route lpm ~prefix ~len ~port)
    routes;
  ([ (instance, lpm.Dslib.Backends.Lpm.ds) ], lpm)

let contracts backend =
  Perf.Ds_contract.library (Dslib.Backends.Lpm.contract backend)

open Symbex

let classes backend =
  match backend with
  | `Dir24_8 ->
      [
        Iclass.make ~name:"LPM1"
          ~description:"unconstrained traffic (worst case: two lookups)" ();
        Iclass.make ~name:"LPM2"
          ~description:"matched prefixes of <= 24 bits (one lookup)"
          ~requires:[ Iclass.req instance "lookup" "short" ]
          ();
      ]
  | `Trie ->
      [
        Iclass.make ~name:"Invalid packets"
          ~description:"non-IPv4 ethertype: dropped immediately"
          ~predicate:(Iclass.field_ne Ir.Expr.W16 12 Hdr.ipv4_ethertype)
          ();
        Iclass.make ~name:"Valid packets" ~description:"IPv4: trie lookup"
          ~predicate:(Iclass.field_eq Ir.Expr.W16 12 Hdr.ipv4_ethertype)
          ~requires:[ Iclass.req instance "lookup" "ok" ]
          ();
      ]
