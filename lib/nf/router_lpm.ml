(* Thin alias over the spec-parameterized Router with the `Dir24_8
   backend; kept so existing call sites (and the typed setup return)
   survive the dedup. *)

let instance = Router.instance
let program = Router.program `Dir24_8

let setup alloc ~routes =
  let env, lpm = Router.setup `Dir24_8 alloc ~routes in
  match lpm.Dslib.Backends.Lpm.repr with
  | Dslib.Backends.Lpm.Dir24_8 t -> (env, t)
  | _ -> assert false

let contracts () = Router.contracts `Dir24_8
let classes () = Router.classes `Dir24_8
