(* The NF catalogue: look NFs up by name and bundle their analysis
   ingredients, so drivers (CLI, bench, examples, tests) stop re-wiring
   programs, contracts and classes by hand. *)

type frozen = { knobs : (string * string) list }

type entry = {
  name : string;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
  frozen : frozen option;
}

(* The default entry: no frozen-config descriptor.  Benched NFs override
   [frozen] with the knobs their default [setup] bakes in, which is what
   a specialized stream freezes against. *)
let entry ~name ~program ~contracts ~classes ~setup =
  { name; program; contracts; classes; setup; frozen = None }

let all () =
  [
    {
      (entry ~name:"bridge" ~program:Bridge.program
         ~contracts:(Bridge.contracts ()) ~classes:(Bridge.classes ())
         ~setup:(fun alloc -> fst (Bridge.setup alloc)))
      with
      frozen =
        Some
          {
            knobs =
              [
                ("capacity", "4096");
                ("buckets", "4096");
                ("timeout", "300000000");
                ("threshold", "6");
                ("seed", "42");
              ];
          };
    };
    {
      (entry ~name:"nat" ~program:Nat.program ~contracts:(Nat.contracts ())
         ~classes:(Nat.classes ())
         ~setup:(fun alloc -> fst (Nat.setup alloc)))
      with
      frozen =
        Some
          {
            knobs =
              [
                ("capacity", "4096");
                ("buckets", "4096");
                ("timeout", "10000000");
                ("ports", "1024-9215");
                ("allocator", "dll");
              ];
          };
    };
    entry ~name:"maglev" ~program:Maglev.program
      ~contracts:(Maglev.contracts ()) ~classes:(Maglev.classes ())
      ~setup:(fun alloc -> fst (Maglev.setup alloc));
    entry ~name:"lpm_router" ~program:Router_lpm.program
      ~contracts:(Router_lpm.contracts ()) ~classes:(Router_lpm.classes ())
      ~setup:(fun alloc ->
        fst
          (Router_lpm.setup alloc
             ~routes:[ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]));
    entry ~name:"trie_router" ~program:Router_trie.program
      ~contracts:(Router_trie.contracts ()) ~classes:(Router_trie.classes ())
      ~setup:(fun alloc ->
        fst
          (Router_trie.setup alloc
             ~routes:[ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]));
    entry ~name:"conntrack" ~program:Conntrack.program
      ~contracts:(Conntrack.contracts ()) ~classes:(Conntrack.classes ())
      ~setup:(fun alloc -> fst (Conntrack.setup alloc));
    entry ~name:"limiter" ~program:Limiter.program
      ~contracts:(Limiter.contracts ()) ~classes:(Limiter.classes ())
      ~setup:(fun alloc -> fst (Limiter.setup alloc));
    entry ~name:"policer" ~program:Policer.program
      ~contracts:(Policer.contracts ()) ~classes:(Policer.classes ())
      ~setup:(fun alloc -> fst (Policer.setup alloc));
    entry ~name:"responder" ~program:Responder.program
      ~contracts:(Perf.Ds_contract.library [])
      ~classes:(Responder.classes ())
      ~setup:(fun _ -> []);
    {
      (entry ~name:"firewall" ~program:Firewall.program
         ~contracts:(Perf.Ds_contract.library [])
         ~classes:(Firewall.classes ())
         ~setup:(fun _ -> []))
      with
      frozen = Some { knobs = [ ("ruleset", "builtin") ] };
    };
    {
      (entry ~name:"static_router" ~program:Static_router.program
         ~contracts:(Perf.Ds_contract.library [])
         ~classes:(Static_router.classes ())
         ~setup:(fun _ -> []))
      with
      frozen = Some { knobs = [ ("fib", "builtin") ] };
    };
  ]

let names () = List.map (fun e -> e.name) (all ())

let specialize e ~meter =
  let dss = e.setup (Dslib.Layout.allocator ()) in
  let ct = Exec.Compiled.compile e.program in
  (Exec.Specialize.bind ct ~meter ~mode:(Exec.Interp.Production dss), dss)

let find name =
  match List.find_opt (fun e -> e.name = name) (all ()) with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown NF %S (try: %s)" name
           (String.concat ", " (names ())))
