(* The NF catalogue: look NFs up by name and bundle their analysis
   ingredients, so drivers (CLI, bench, examples, tests) stop re-wiring
   programs, contracts and classes by hand.  Every entry is derived from
   a value-level Spec.t — the same values the tuner enumerates — rather
   than hand-wired per file. *)

type frozen = { knobs : Spec.knob list }

let to_strings f = Spec.to_strings f.knobs

type entry = {
  name : string;
  spec : Spec.t;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
  frozen : frozen option;
}

let of_spec spec =
  let name = Spec.name spec in
  let frozen =
    Option.map (fun knobs -> { knobs }) (Spec.frozen_knobs spec)
  in
  let stateless = Perf.Ds_contract.library [] in
  let program, contracts, classes, setup =
    match spec with
    | Spec.Bridge c ->
        ( Bridge.program,
          Bridge.contracts ~config:c (),
          Bridge.classes ~config:c (),
          fun alloc -> fst (Bridge.setup ~config:c alloc) )
    | Spec.Nat c ->
        ( Nat.program,
          Nat.contracts ~config:c (),
          Nat.classes ~config:c (),
          fun alloc -> fst (Nat.setup ~config:c alloc) )
    | Spec.Maglev c ->
        ( Maglev.program,
          Maglev.contracts ~config:c (),
          Maglev.classes ~config:c (),
          fun alloc -> fst (Maglev.setup ~config:c alloc) )
    | Spec.Router r ->
        ( Router.program r.Spec.backend,
          Router.contracts r.Spec.backend,
          Router.classes r.Spec.backend,
          fun alloc ->
            fst (Router.setup r.Spec.backend alloc ~routes:r.Spec.routes) )
    | Spec.Conntrack c ->
        ( Conntrack.program,
          Conntrack.contracts ~config:c (),
          Conntrack.classes ~config:c (),
          fun alloc -> fst (Conntrack.setup ~config:c alloc) )
    | Spec.Limiter c ->
        ( Limiter.program,
          Limiter.contracts ~config:c (),
          Limiter.classes (),
          fun alloc -> fst (Limiter.setup ~config:c alloc) )
    | Spec.Policer c ->
        ( Policer.program,
          Policer.contracts (),
          Policer.classes (),
          fun alloc -> fst (Policer.setup ~config:c alloc) )
    | Spec.Responder ->
        (Responder.program, stateless, Responder.classes (), fun _ -> [])
    | Spec.Firewall ->
        (Firewall.program, stateless, Firewall.classes (), fun _ -> [])
    | Spec.Static_router ->
        (Static_router.program, stateless, Static_router.classes (), fun _ ->
          [])
  in
  { name; spec; program; contracts; classes; setup; frozen }

let all () = List.map of_spec (Spec.defaults ())
let names () = List.map (fun e -> e.name) (all ())

let specialize e ~meter =
  let dss = e.setup (Dslib.Layout.allocator ()) in
  let ct = Exec.Compiled.compile e.program in
  (Exec.Specialize.bind ct ~meter ~mode:(Exec.Interp.Production dss), dss)

let find name =
  match List.find_opt (fun e -> e.name = name) (all ()) with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown NF %S (try: %s)" name
           (String.concat ", " (names ())))
