(* The NF catalogue: look NFs up by name and bundle their analysis
   ingredients, so drivers (CLI, bench, examples, tests) stop re-wiring
   programs, contracts and classes by hand. *)

type entry = {
  name : string;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
  classes : Symbex.Iclass.t list;
  setup : Dslib.Layout.allocator -> Exec.Ds.env;
}

let all () =
  [
    {
      name = "bridge";
      program = Bridge.program;
      contracts = Bridge.contracts ();
      classes = Bridge.classes ();
      setup = (fun alloc -> fst (Bridge.setup alloc));
    };
    {
      name = "nat";
      program = Nat.program;
      contracts = Nat.contracts ();
      classes = Nat.classes ();
      setup = (fun alloc -> fst (Nat.setup alloc));
    };
    {
      name = "maglev";
      program = Maglev.program;
      contracts = Maglev.contracts ();
      classes = Maglev.classes ();
      setup = (fun alloc -> fst (Maglev.setup alloc));
    };
    {
      name = "lpm_router";
      program = Router_lpm.program;
      contracts = Router_lpm.contracts ();
      classes = Router_lpm.classes ();
      setup =
        (fun alloc ->
          fst
            (Router_lpm.setup alloc
               ~routes:[ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]));
    };
    {
      name = "trie_router";
      program = Router_trie.program;
      contracts = Router_trie.contracts ();
      classes = Router_trie.classes ();
      setup =
        (fun alloc ->
          fst
            (Router_trie.setup alloc
               ~routes:[ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]));
    };
    {
      name = "conntrack";
      program = Conntrack.program;
      contracts = Conntrack.contracts ();
      classes = Conntrack.classes ();
      setup = (fun alloc -> fst (Conntrack.setup alloc));
    };
    {
      name = "limiter";
      program = Limiter.program;
      contracts = Limiter.contracts ();
      classes = Limiter.classes ();
      setup = (fun alloc -> fst (Limiter.setup alloc));
    };
    {
      name = "policer";
      program = Policer.program;
      contracts = Policer.contracts ();
      classes = Policer.classes ();
      setup = (fun alloc -> fst (Policer.setup alloc));
    };
    {
      name = "responder";
      program = Responder.program;
      contracts = Perf.Ds_contract.library [];
      classes = Responder.classes ();
      setup = (fun _ -> []);
    };
    {
      name = "firewall";
      program = Firewall.program;
      contracts = Perf.Ds_contract.library [];
      classes = Firewall.classes ();
      setup = (fun _ -> []);
    };
    {
      name = "static_router";
      program = Static_router.program;
      contracts = Perf.Ds_contract.library [];
      classes = Static_router.classes ();
      setup = (fun _ -> []);
    };
  ]

let names () = List.map (fun e -> e.name) (all ())

let find name =
  match List.find_opt (fun e -> e.name = name) (all ()) with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown NF %S (try: %s)" name
           (String.concat ", " (names ())))
