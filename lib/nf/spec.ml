(* Value-level NF variant descriptions.  A Spec.t names one point in the
   design space — which backend implements each abstraction, and the
   typed geometry knobs — and the registry derives its entry (program,
   contracts, classes, setup, frozen knobs) from the spec instead of
   hand-wiring them per file.  The tuner enumerates and mutates these
   same values, so its search space and the registry's construction path
   cannot drift apart. *)

type knob =
  | Capacity of int
  | Buckets of int
  | Timeout of int
  | Threshold of int
  | Seed of int
  | Granularity of int
  | Ports of int * int
  | Allocator of Dslib.Backends.alloc
  | Lpm_backend of Dslib.Backends.lpm
  | Routes of int
  | Rows of int
  | Width of int
  | Rate of int
  | Burst of int
  | Backend_count of int
  | Ring_size of int
  | Backend_timeout of int
  | Ruleset of string
  | Fib of string

let knob_name = function
  | Capacity _ -> "capacity"
  | Buckets _ -> "buckets"
  | Timeout _ -> "timeout"
  | Threshold _ -> "threshold"
  | Seed _ -> "seed"
  | Granularity _ -> "granularity"
  | Ports _ -> "ports"
  | Allocator _ -> "allocator"
  | Lpm_backend _ -> "lpm"
  | Routes _ -> "routes"
  | Rows _ -> "rows"
  | Width _ -> "width"
  | Rate _ -> "rate"
  | Burst _ -> "burst"
  | Backend_count _ -> "backends"
  | Ring_size _ -> "ring_size"
  | Backend_timeout _ -> "backend_timeout"
  | Ruleset _ -> "ruleset"
  | Fib _ -> "fib"

let knob_value = function
  | Capacity n | Buckets n | Timeout n | Threshold n | Seed n
  | Granularity n | Routes n | Rows n | Width n | Rate n | Burst n
  | Backend_count n | Ring_size n | Backend_timeout n ->
      string_of_int n
  | Ports (lo, hi) -> Printf.sprintf "%d-%d" lo hi
  | Allocator a -> Dslib.Backends.Alloc.name a
  | Lpm_backend b -> Dslib.Backends.Lpm.name b
  | Ruleset s | Fib s -> s

let to_strings knobs =
  List.map (fun k -> (knob_name k, knob_value k)) knobs

type router = {
  backend : Dslib.Backends.lpm;
  routes : (int * int * int) list;
}

type t =
  | Bridge of Bridge.config
  | Nat of Nat.config
  | Maglev of Maglev.config
  | Router of router
  | Conntrack of Conntrack.config
  | Limiter of Limiter.config
  | Policer of Policer.config
  | Responder
  | Firewall
  | Static_router

let name = function
  | Bridge _ -> "bridge"
  | Nat _ -> "nat"
  | Maglev _ -> "maglev"
  | Router r -> Router.name r.backend
  | Conntrack _ -> "conntrack"
  | Limiter _ -> "limiter"
  | Policer _ -> "policer"
  | Responder -> "responder"
  | Firewall -> "firewall"
  | Static_router -> "static_router"

let default_routes = [ (Net.Ipv4.addr_of_parts 10 0 0 0, 16, 1) ]

(* Presentation order — this is what fixes [Registry.names ()]. *)
let defaults () =
  [
    Bridge Bridge.default_config;
    Nat Nat.default_config;
    Maglev Maglev.default_config;
    Router { backend = `Dir24_8; routes = default_routes };
    Router { backend = `Trie; routes = default_routes };
    Conntrack Conntrack.default_config;
    Limiter Limiter.default_config;
    Policer Policer.default_config;
    Responder;
    Firewall;
    Static_router;
  ]

let of_name n =
  match List.find_opt (fun s -> name s = n) (defaults ()) with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown NF spec %S (try: %s)" n
           (String.concat ", " (List.map name (defaults ()))))

let knobs = function
  | Bridge c ->
      [
        Capacity c.Bridge.capacity;
        Buckets c.Bridge.buckets;
        Timeout c.Bridge.timeout;
        Threshold c.Bridge.threshold;
        Seed c.Bridge.seed;
      ]
  | Nat c ->
      [
        Capacity c.Nat.capacity;
        Buckets c.Nat.buckets;
        Timeout c.Nat.timeout;
        Ports (c.Nat.port_lo, c.Nat.port_hi);
        Allocator c.Nat.allocator;
      ]
  | Maglev c ->
      [
        Capacity c.Maglev.capacity;
        Buckets c.Maglev.buckets;
        Timeout c.Maglev.timeout;
        Backend_count c.Maglev.backend_count;
        Ring_size c.Maglev.ring_size;
        Backend_timeout c.Maglev.backend_timeout;
      ]
  | Router r -> [ Lpm_backend r.backend; Routes (List.length r.routes) ]
  | Conntrack c ->
      [
        Capacity c.Conntrack.capacity;
        Buckets c.Conntrack.buckets;
        Timeout c.Conntrack.timeout;
      ]
  | Limiter c -> [ Rows c.Limiter.rows; Width c.Limiter.width ]
  | Policer c -> [ Rate c.Policer.rate; Burst c.Policer.burst ]
  | Responder -> []
  | Firewall -> [ Ruleset "builtin" ]
  | Static_router -> [ Fib "builtin" ]

(* Which knobs the default setup bakes into a specializable stream —
   exactly the pre-refactor [Registry.frozen] contents. *)
let frozen_knobs = function
  | Bridge _ as s -> Some (knobs s)
  | Nat _ as s -> Some (knobs s)
  | Firewall as s -> Some (knobs s)
  | Static_router as s -> Some (knobs s)
  | _ -> None

let apply spec knob =
  let bad () =
    invalid_arg
      (Printf.sprintf "Spec.apply: knob %S does not apply to %S"
         (knob_name knob) (name spec))
  in
  match (spec, knob) with
  | Bridge c, Capacity n -> Bridge { c with Bridge.capacity = n }
  | Bridge c, Buckets n -> Bridge { c with Bridge.buckets = n }
  | Bridge c, Timeout n -> Bridge { c with Bridge.timeout = n }
  | Bridge c, Threshold n -> Bridge { c with Bridge.threshold = n }
  | Bridge c, Seed n -> Bridge { c with Bridge.seed = n }
  | Nat c, Capacity n -> Nat { c with Nat.capacity = n }
  | Nat c, Buckets n -> Nat { c with Nat.buckets = n }
  | Nat c, Timeout n -> Nat { c with Nat.timeout = n }
  | Nat c, Granularity n -> Nat { c with Nat.granularity = n }
  | Nat c, Ports (lo, hi) -> Nat { c with Nat.port_lo = lo; port_hi = hi }
  | Nat c, Allocator a -> Nat { c with Nat.allocator = a }
  | Maglev c, Capacity n -> Maglev { c with Maglev.capacity = n }
  | Maglev c, Buckets n -> Maglev { c with Maglev.buckets = n }
  | Maglev c, Timeout n -> Maglev { c with Maglev.timeout = n }
  | Maglev c, Backend_count n -> Maglev { c with Maglev.backend_count = n }
  | Maglev c, Ring_size n -> Maglev { c with Maglev.ring_size = n }
  | Maglev c, Backend_timeout n -> Maglev { c with Maglev.backend_timeout = n }
  | Router r, Lpm_backend b -> Router { r with backend = b }
  | Conntrack c, Capacity n -> Conntrack { c with Conntrack.capacity = n }
  | Conntrack c, Buckets n -> Conntrack { c with Conntrack.buckets = n }
  | Conntrack c, Timeout n -> Conntrack { c with Conntrack.timeout = n }
  | Limiter c, Rows n -> Limiter { c with Limiter.rows = n }
  | Limiter c, Width n -> Limiter { c with Limiter.width = n }
  | Policer c, Rate n -> Policer { c with Policer.rate = n }
  | Policer c, Burst n -> Policer { c with Policer.burst = n }
  | _ -> bad ()

let with_routes spec routes =
  match spec with
  | Router r -> Router { r with routes }
  | _ -> invalid_arg "Spec.with_routes: not a router spec"

(* Memory-footprint model, from the same layout constants the charged
   address arithmetic uses (see Dslib.Backends); stateless NFs occupy no
   layout space.  Router footprints depend on the installed routes, so we
   build the (config-time, uncharged) structure and measure it. *)
let footprint_bytes = function
  | Bridge c ->
      Dslib.Backends.Flows.footprint_bytes `Flow ~capacity:c.Bridge.capacity
        ~buckets:c.Bridge.buckets
  | Nat c ->
      Dslib.Backends.nat_footprint_bytes ~alloc:c.Nat.allocator
        ~capacity:c.Nat.capacity ~buckets:c.Nat.buckets
        ~ports:(c.Nat.port_hi - c.Nat.port_lo + 1)
  | Maglev c ->
      Dslib.Backends.Flows.footprint_bytes `Flow ~capacity:c.Maglev.capacity
        ~buckets:c.Maglev.buckets
      + (4 * c.Maglev.ring_size)
      + (8 * c.Maglev.backend_count)
  | Router r ->
      let _, lpm = Router.setup r.backend (Dslib.Layout.allocator ()) ~routes:r.routes in
      Dslib.Backends.Lpm.footprint_bytes lpm
  | Conntrack c ->
      Dslib.Backends.Flows.footprint_bytes `Flow
        ~capacity:c.Conntrack.capacity ~buckets:c.Conntrack.buckets
  | Limiter c -> 8 * c.Limiter.rows * c.Limiter.width
  | Policer _ -> 16
  | Responder | Firewall | Static_router -> 0

let pp ppf spec =
  Fmt.pf ppf "%s{%s}" (name spec)
    (String.concat ", "
       (List.map
          (fun k -> knob_name k ^ "=" ^ knob_value k)
          (knobs spec)))
