(** Value-level NF variant descriptions.

    A [Spec.t] names one point in the NF design space: which backend
    implements each abstraction (via {!Dslib.Backends} choices) and the
    typed capacity/geometry knobs that used to live as stringly
    [Registry.frozen.knobs].  {!Registry.of_spec} derives a full registry
    entry from a spec; the tuner enumerates and mutates the same values,
    so the search space and the construction path cannot drift apart. *)

(** One typed configuration knob.  [to_strings] renders a knob list in
    the historic [(name, value)] form used by printers and the
    specialize gate. *)
type knob =
  | Capacity of int
  | Buckets of int
  | Timeout of int
  | Threshold of int
  | Seed of int
  | Granularity of int
  | Ports of int * int  (** allocatable port range, inclusive *)
  | Allocator of Dslib.Backends.alloc
  | Lpm_backend of Dslib.Backends.lpm
  | Routes of int  (** route-table size (router display knob) *)
  | Rows of int
  | Width of int
  | Rate of int
  | Burst of int
  | Backend_count of int
  | Ring_size of int
  | Backend_timeout of int
  | Ruleset of string
  | Fib of string

val knob_name : knob -> string
val knob_value : knob -> string

val to_strings : knob list -> (string * string) list
(** The historic stringly rendering, [(knob_name k, knob_value k)]. *)

type router = {
  backend : Dslib.Backends.lpm;
  routes : (int * int * int) list;  (** [(prefix, len, port)] triples *)
}

type t =
  | Bridge of Bridge.config
  | Nat of Nat.config
  | Maglev of Maglev.config
  | Router of router
  | Conntrack of Conntrack.config
  | Limiter of Limiter.config
  | Policer of Policer.config
  | Responder
  | Firewall
  | Static_router

val name : t -> string
(** Registry name; the two router backends keep their historic names
    ["lpm_router"] / ["trie_router"]. *)

val default_routes : (int * int * int) list

val defaults : unit -> t list
(** The 11 registry specs, in presentation order. *)

val of_name : string -> t
(** Default spec for a registry name; raises [Invalid_argument] with the
    known names on a miss. *)

val knobs : t -> knob list
(** Every typed knob the spec carries, in presentation order. *)

val frozen_knobs : t -> knob list option
(** The knobs the default setup bakes into a specializable stream —
    present exactly for the NFs whose registry entry is frozen. *)

val apply : t -> knob -> t
(** Functional update; raises [Invalid_argument] when the knob does not
    apply to this NF family. *)

val with_routes : t -> (int * int * int) list -> t
(** Replace a router spec's route table. *)

val footprint_bytes : t -> int
(** Bytes of {!Dslib.Layout} address space the spec's state occupies,
    from the same layout constants the charged address arithmetic uses
    (router specs build the config-time structure and measure it);
    0 for stateless NFs. *)

val pp : Format.formatter -> t -> unit
