(** Chrome trace-event JSON export of everything recorded so far.

    The file holds one complete event per {!Span.t} (integer-microsecond
    [ts]/[dur], [tid] = domain id, span/parent ids in [args]) plus all
    counter and gauge values under ["otherData"].  Load it in
    about://tracing or Perfetto, or parse it with {!Perf.Json} — the
    emitted subset is integers and strings only. *)

val to_string : unit -> string

val write : path:string -> unit
(** Serialize the current spans and metrics to [path]. *)
