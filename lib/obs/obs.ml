(** Zero-dependency observability for the contract pipeline.

    {!Span} records hierarchical timed spans (domain-safe, with
    cross-domain parent adoption for {!Exec.Pool} workers), {!Metrics}
    holds named atomic counters and gauges, and {!Trace_io} exports both
    as Chrome trace-event JSON.

    The runtime starts disabled: every probe in the instrumented
    libraries then costs one branch and records nothing, so analysis
    output and tier-1 timings are unaffected.  [enable] turns the
    collector on for the rest of the process (or until [disable]). *)

module Span = Span
module Metrics = Metrics
module Trace_io = Trace_io

let enabled = Runtime.enabled
let enable = Runtime.enable
let disable = Runtime.disable

(* Drop all recorded spans and zero all metrics; registrations and the
   enabled flag are kept. *)
let reset () =
  Span.reset ();
  Metrics.reset ()
