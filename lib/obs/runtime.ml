(* The single on/off switch shared by every obs backend.

   Instrumented hot paths pay exactly one branch when observability is
   disabled: a relaxed [Atomic.get] on this flag.  There is no
   compile-time variant to strip the probes out — the disabled path is
   cheap enough that the tier-1 pipeline timings are unaffected — and a
   runtime flag means `bolt contract --trace` needs no rebuild. *)

let flag = Atomic.make false
let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
