(* Hierarchical timed spans with a domain-safe collector.

   Each domain tracks its current innermost span in domain-local storage,
   so nesting needs no locking on the hot path; completed spans land in
   one mutex-protected global list.  Cross-domain nesting — a worker in
   [Exec.Pool] executing a task submitted under some phase span — is
   handled by capturing [current ()] on the submitting domain and
   running the worker's items under [adopt]: the worker's spans then
   report the submitting span as their parent, exactly as if they had
   run inline. *)

type t = {
  id : int;
  parent : int;  (** 0 = no parent (root span) *)
  name : string;
  cat : string;
  tid : int;  (** the domain the span ran on *)
  start_us : int;
  dur_us : int;
  args : (string * string) list;
}

let next_id = Atomic.make 1
let lock = Mutex.create ()
let completed : t list ref = ref [] (* reversed *)

(* Timestamps are microseconds since the first observed event, so trace
   files start near zero and fit in ints comfortably. *)
let origin = ref 0.
let origin_lock = Mutex.create ()

let now_us () =
  let t = Unix.gettimeofday () in
  let o =
    if !origin > 0. then !origin
    else
      Mutex.protect origin_lock (fun () ->
          if !origin = 0. then origin := t;
          !origin)
  in
  int_of_float ((t -. o) *. 1e6)

let current_key = Domain.DLS.new_key (fun () -> 0)
let current () = Domain.DLS.get current_key

let adopt parent f =
  if not (Runtime.enabled ()) then f ()
  else begin
    let saved = Domain.DLS.get current_key in
    Domain.DLS.set current_key parent;
    Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f
  end

let with_ ?(cat = "") ?args name f =
  if not (Runtime.enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = Domain.DLS.get current_key in
    Domain.DLS.set current_key id;
    let start_us = now_us () in
    let finish () =
      let dur_us = now_us () - start_us in
      Domain.DLS.set current_key parent;
      let span =
        {
          id;
          parent;
          name;
          cat;
          tid = (Domain.self () :> int);
          start_us;
          dur_us;
          args = (match args with None -> [] | Some f -> f ());
        }
      in
      Mutex.protect lock (fun () -> completed := span :: !completed)
    in
    Fun.protect ~finally:finish f
  end

let dump () = Mutex.protect lock (fun () -> List.rev !completed)

let reset () =
  Mutex.protect lock (fun () ->
      completed := [];
      Atomic.set next_id 1)

(* Aggregate completed spans by name: (name, count, total duration). *)
let summary () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let count, total =
        Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0)
      in
      Hashtbl.replace tbl s.name (count + 1, total + s.dur_us))
    (dump ());
  Hashtbl.fold (fun name (count, total) acc -> (name, count, total) :: acc)
    tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let pp_summary ppf () =
  let rows = summary () in
  if rows = [] then Format.fprintf ppf "no spans recorded@."
  else begin
    Format.fprintf ppf "%-28s %8s %12s@." "span" "count" "total (us)";
    List.iter
      (fun (name, count, total) ->
        Format.fprintf ppf "%-28s %8d %12d@." name count total)
      rows
  end
