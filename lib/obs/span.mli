(** Hierarchical timed spans with a domain-safe collector.

    A span measures one timed region ([with_]); spans opened while
    another is running nest under it.  Nesting is tracked per domain in
    domain-local storage, and a parent can be carried across domains
    explicitly — {!Exec.Pool} captures [current ()] at submit time and
    wraps its workers in [adopt], so spans recorded on worker domains
    nest under the submitting phase.

    When the obs runtime is disabled (the default), every entry point
    is a single branch and records nothing. *)

type t = {
  id : int;
  parent : int;  (** [id] of the enclosing span; 0 for roots *)
  name : string;
  cat : string;
  tid : int;  (** domain id the span ran on *)
  start_us : int;  (** microseconds since the trace origin *)
  dur_us : int;
  args : (string * string) list;
}

val with_ :
  ?cat:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_ name f] times [f ()] as a span called [name], nested under
    the domain's current span.  [args] is evaluated once, at span close,
    only when recording is enabled.  Exception-safe: the span is
    recorded even if [f] raises. *)

val current : unit -> int
(** The id of the calling domain's innermost open span (0 if none) —
    capture it before handing work to another domain. *)

val adopt : int -> (unit -> 'a) -> 'a
(** [adopt parent f] runs [f] with the domain's current span set to
    [parent], so spans opened inside nest under the capturing span.
    Restores the previous current span afterwards. *)

val dump : unit -> t list
(** All completed spans, in completion order. *)

val summary : unit -> (string * int * int) list
(** Completed spans aggregated by name: (name, count, total us), widest
    first. *)

val pp_summary : Format.formatter -> unit -> unit

val reset : unit -> unit
(** Drop all completed spans and restart ids. *)
