(** Named monotonic counters and gauges with atomic updates.

    Handles are interned by name: [counter "solver.solves"] returns the
    same cell everywhere, so instrumented modules create their handles
    once at initialisation.  Updates are a single enabled-check branch
    plus an atomic read-modify-write, and are safe from any domain.
    While the obs runtime is disabled, updates are dropped and every
    value stays 0. *)

type counter
type gauge

val counter : string -> counter
(** Create-or-find the counter registered under [name]. *)

val gauge : string -> gauge

val add : counter -> int -> unit
val incr : counter -> unit

val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** Keep the largest value written (atomic compare-and-swap loop). *)

val value : counter -> int
(** Read a counter's current value directly. *)

val counters_dump : unit -> (string * int) list
(** All registered counters with their values, sorted by name. *)

val gauges_dump : unit -> (string * int) list

val pp : Format.formatter -> unit -> unit
(** Flat stats table of all non-zero counters and gauges. *)

val reset : unit -> unit
(** Zero every registered cell (registrations are kept). *)
