(* Chrome trace-event export.

   One complete ("ph":"X") event per finished span, with timestamps and
   durations in integer microseconds; counters and gauges ride along in
   "otherData" so a trace file is a self-contained observation of a run.
   about://tracing and Perfetto both open the format directly.

   The writer is self-contained — obs sits below every other library in
   the dependency order, so it carries its own small JSON emitter
   (integers and strings only, like {!Perf.Json}). *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  buf_escape b s;
  Buffer.add_char b '"'

let add_kv_str b k v =
  add_str b k;
  Buffer.add_char b ':';
  add_str b v

let add_kv_int b k v =
  add_str b k;
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int v)

let add_event b (s : Span.t) =
  Buffer.add_char b '{';
  add_kv_str b "name" s.Span.name;
  Buffer.add_char b ',';
  add_kv_str b "cat" (if s.Span.cat = "" then "bolt" else s.Span.cat);
  Buffer.add_char b ',';
  add_kv_str b "ph" "X";
  Buffer.add_char b ',';
  add_kv_int b "ts" s.Span.start_us;
  Buffer.add_char b ',';
  add_kv_int b "dur" s.Span.dur_us;
  Buffer.add_char b ',';
  add_kv_int b "pid" 1;
  Buffer.add_char b ',';
  add_kv_int b "tid" s.Span.tid;
  Buffer.add_char b ',';
  add_str b "args";
  Buffer.add_string b ":{";
  add_kv_int b "id" s.Span.id;
  Buffer.add_char b ',';
  add_kv_int b "parent" s.Span.parent;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_kv_str b k v)
    s.Span.args;
  Buffer.add_string b "}}"

let add_metric_obj b rows =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_kv_int b name v)
    rows;
  Buffer.add_char b '}'

let to_string () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      add_event b s)
    (Span.dump ());
  Buffer.add_string b "],\n\"displayTimeUnit\":";
  add_str b "ms";
  Buffer.add_string b ",\n\"otherData\":{";
  add_str b "counters";
  Buffer.add_char b ':';
  add_metric_obj b (Metrics.counters_dump ());
  Buffer.add_char b ',';
  add_str b "gauges";
  Buffer.add_char b ':';
  add_metric_obj b (Metrics.gauges_dump ());
  Buffer.add_string b "}}\n";
  Buffer.contents b

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))
