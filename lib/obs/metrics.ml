(* Named monotonic counters and gauges with atomic updates.

   Handles are interned by name in a global registry, so instrumented
   modules create them once at module initialisation and the hot path is
   an enabled-check plus one atomic RMW.  Counters only ever grow (until
   [reset]); gauges hold the last — or with [set_max] the largest —
   value written. *)

type cell = { name : string; value : int Atomic.t }
type counter = cell
type gauge = cell

let lock = Mutex.create ()
let counters : (string, cell) Hashtbl.t = Hashtbl.create 64
let gauges : (string, cell) Hashtbl.t = Hashtbl.create 16

let intern table name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some c -> c
      | None ->
          let c = { name; value = Atomic.make 0 } in
          Hashtbl.add table name c;
          c)

let counter name = intern counters name
let gauge name = intern gauges name
let add c n = if Runtime.enabled () then ignore (Atomic.fetch_and_add c.value n)
let incr c = add c 1
let set g v = if Runtime.enabled () then Atomic.set g.value v

let set_max g v =
  if Runtime.enabled () then begin
    let rec loop () =
      let cur = Atomic.get g.value in
      if v > cur && not (Atomic.compare_and_set g.value cur v) then loop ()
    in
    loop ()
  end

let value c = Atomic.get c.value

let dump_table table =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc)
        table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_dump () = dump_table counters
let gauges_dump () = dump_table gauges

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) gauges)

let pp ppf () =
  let section title rows =
    if rows <> [] then begin
      Format.fprintf ppf "%s:@." title;
      List.iter
        (fun (name, v) -> Format.fprintf ppf "  %-36s %12d@." name v)
        rows
    end
  in
  let nonzero = List.filter (fun (_, v) -> v <> 0) in
  section "counters" (nonzero (counters_dump ()));
  section "gauges" (nonzero (gauges_dump ()))
