(** RSS-style flow-hash steering — the dispatch stage in front of the
    shards.

    A steering [policy] names the invariant the NF's state layout needs
    from the dispatcher (the shared-state vs sharded-state catalogue of
    the parallelization literature, per NF class):

    - [Flow_hash] — stateless NFs, and stateful NFs whose only state is
      keyed by the forward 5-tuple (Maglev's affinity table): any
      per-flow-stable spread is correct.
    - [Symmetric] — state looked up in both directions under the {e
      same} shard (conntrack): the tuple is normalized before hashing,
      so a flow and its reverse land together.
    - [Src_hash] — state keyed by source address alone (the heavy-hitter
      limiter's per-source sketch): hashing the full 5-tuple would split
      one source's flows across shards and undercount it.
    - [Nat_ports] — the NAT cannot use a symmetric hash: the reply's
      tuple is the {e translated} one, unknowable at dispatch time.
      Instead the external port range is statically sliced across
      shards; internal packets flow-hash, and external packets are
      steered by the shard that owns their destination port — exactly
      the shard whose allocator issued it.
    - [Lb] — [Flow_hash] for client traffic plus a broadcast class for
      backend heartbeats, which update per-shard liveness replicas.

    Steering must be a pure function of the packet (plus arrival port),
    so the serial reference and the parallel dataplane partition
    identically. *)

type steer =
  | Shard of int
  | Broadcast  (** control traffic every shard must see (heartbeats) *)

type policy =
  | Flow_hash
  | Symmetric
  | Src_hash
  | Nat_ports of { port_lo : int; port_hi : int }
      (** the NF's {e global} external port range, sliced evenly *)
  | Lb of { heartbeat_port : int }

val hash_flow : symmetric:bool -> Net.Packet.t -> int
(** The 5-tuple digest ({!Net.Flow.hash_key}), computed in place with no
    allocation; with [symmetric] the tuple is normalized first so
    [hash (reverse f) = hash f].  [-1] when the packet carries no
    hashable flow (non-IPv4, non-TCP/UDP, truncated) — such packets are
    pinned to shard 0 by {!steer}. *)

val nat_slice : port_lo:int -> port_hi:int -> shards:int -> int -> int * int
(** [nat_slice ~port_lo ~port_hi ~shards i] is shard [i]'s inclusive
    sub-range of the external port space: contiguous, disjoint, covering
    — the static partition that makes reply steering a division instead
    of shared state.  Raises [Invalid_argument] when the range is
    smaller than the shard count. *)

val nat_owner : port_lo:int -> port_hi:int -> shards:int -> int -> int
(** The shard whose {!nat_slice} contains the given port; ports outside
    [port_lo, port_hi] (no mapping can exist anywhere) go to shard 0. *)

val steer : policy -> shards:int -> in_port:int -> Net.Packet.t -> steer
(** Steer one arrival.  Total and pure: every packet gets a
    deterministic verdict, unsteerable ones land on shard 0. *)

val cost_vec : Perf.Cost_vec.t
(** The modelled per-packet cost of {!steer} — the scalability
    contract's dispatch term: five header loads priced at L1 plus the
    mix/reduce ALU work, from the same {!Hw.Cost} constants the
    per-packet contracts use. *)

val pp_policy : Format.formatter -> policy -> unit
