type runner = {
  sp : Exec.Specialize.t;
  meter : Exec.Meter.t;
  env : Exec.Ds.env;  (** kept so shard state is inspectable / alive *)
}

type t = {
  plan : Plan.t;
  runners : runner array;
  mutable workers : Exec.Pool.Workers.t option;
      (** spawned on first parallel use, joined by {!stop} *)
}

type result = {
  index : int;
  shard : int;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  bytes : string;
}

let make_runner spec =
  let entry = Nf.Registry.of_spec spec in
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let sp, env = Nf.Registry.specialize entry ~meter in
  { sp; meter; env }

let create (plan : Plan.t) =
  { plan; runners = Array.map make_runner plan.Plan.specs; workers = None }

let plan t = t.plan

let workers t =
  match t.workers with
  | Some w -> w
  | None ->
      let w = Exec.Pool.Workers.create (t.plan.Plan.shards - 1) in
      t.workers <- Some w;
      w

let stop t =
  match t.workers with
  | None -> ()
  | Some w ->
      Exec.Pool.Workers.stop w;
      t.workers <- None

let with_engine plan f =
  let t = create plan in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)

let bytes_of pkt = Bytes.to_string (Net.Packet.to_bytes pkt)

(* A steered copy of one stream entry, tagged with its stream position.
   Broadcast entries are expanded into one job per shard at partition
   time — the only moment packet copies are made — so no two domains
   ever touch the same buffer. *)
type job = {
  j_index : int;
  j_shard : int;
  j_report : bool;  (** false for the non-owner copies of a broadcast *)
  j_packet : Net.Packet.t;
  j_now : int;
  j_in_port : int;
}

let jobs_of_stream plan stream =
  let jobs = ref [] in
  List.iteri
    (fun i (e : Workload.Stream.entry) ->
      match Plan.steer plan ~in_port:e.in_port e.packet with
      | Dispatch.Shard s ->
          jobs :=
            {
              j_index = i;
              j_shard = s;
              j_report = true;
              j_packet = Net.Packet.copy e.packet;
              j_now = e.now;
              j_in_port = e.in_port;
            }
            :: !jobs
      | Dispatch.Broadcast ->
          for s = plan.Plan.shards - 1 downto 0 do
            jobs :=
              {
                j_index = i;
                j_shard = s;
                j_report = (s = 0);
                j_packet = Net.Packet.copy e.packet;
                j_now = e.now;
                j_in_port = e.in_port;
              }
              :: !jobs
          done)
    stream;
  List.rev !jobs

let run_job t out job =
  let r = t.runners.(job.j_shard) in
  let run =
    Exec.Specialize.run r.sp ~in_port:job.j_in_port ~now:job.j_now
      job.j_packet
  in
  if job.j_report then
    out.(job.j_index) <-
      Some
        {
          index = job.j_index;
          shard = job.j_shard;
          outcome = run.Exec.Interp.outcome;
          ic = run.ic;
          ma = run.ma;
          bytes = bytes_of job.j_packet;
        }

let replay ?(parallel = false) t stream =
  let n = List.length stream in
  let jobs = jobs_of_stream t.plan stream in
  let out = Array.make n None in
  if (not parallel) || t.plan.Plan.shards = 1 then
    (* arrival order; broadcast copies run shard 0 first, then 1..N-1 *)
    List.iter (run_job t out) jobs
  else begin
    (* per-shard slices keep arrival order, so each shard's state sees
       the same subsequence the serial walk feeds it *)
    let slices = Array.make t.plan.Plan.shards [] in
    List.iter (fun j -> slices.(j.j_shard) <- j :: slices.(j.j_shard)) jobs;
    let slices = Array.map List.rev slices in
    Exec.Pool.Workers.run (workers t) (fun s ->
        List.iter (run_job t out) slices.(s))
  end;
  Array.mapi
    (fun i -> function
      | Some r -> r
      | None -> invalid_arg (Printf.sprintf "Shard.replay: entry %d unrun" i))
    out

let step t ~in_port ~now pkt =
  match Plan.steer t.plan ~in_port pkt with
  | Dispatch.Shard s ->
      let copy = Net.Packet.copy pkt in
      let r = t.runners.(s) in
      (s, Exec.Specialize.run r.sp ~in_port ~now copy, copy)
  | Dispatch.Broadcast ->
      let owner = ref None in
      for s = 0 to t.plan.Plan.shards - 1 do
        let copy = Net.Packet.copy pkt in
        let run = Exec.Specialize.run t.runners.(s).sp ~in_port ~now copy in
        if s = 0 then owner := Some (run, copy)
      done;
      let run, copy = Option.get !owner in
      (0, run, copy)

let load_histogram (plan : Plan.t) stream =
  let h = Array.make plan.Plan.shards 0 in
  List.iter
    (fun (e : Workload.Stream.entry) ->
      match Plan.steer plan ~in_port:e.in_port e.packet with
      | Dispatch.Shard s -> h.(s) <- h.(s) + 1
      | Dispatch.Broadcast ->
          for s = 0 to plan.Plan.shards - 1 do
            h.(s) <- h.(s) + 1
          done)
    stream;
  h

let drain ?(parallel = false) t stream =
  let shards = t.plan.Plan.shards in
  (* copies, slice sizing and worker spawning happen before the clock
     starts: the timed region is steering + execution, the two terms the
     contract prices *)
  let pool = if parallel && shards > 1 then Some (workers t) else None in
  let entries =
    Array.of_list
      (List.map
         (fun (e : Workload.Stream.entry) ->
           (Net.Packet.copy e.packet, e.now, e.in_port))
         stream)
  in
  let hist = load_histogram t.plan stream in
  let slices =
    Array.init shards (fun s -> Array.make (max 1 hist.(s)) (-1))
  in
  let fill = Array.make shards 0 in
  let exec_slice s =
    let r = t.runners.(s) in
    let slice = slices.(s) and len = fill.(s) in
    for k = 0 to len - 1 do
      let pkt, now, in_port = entries.(slice.(k)) in
      Exec.Meter.reset_observations r.meter;
      ignore (Exec.Specialize.exec r.sp ~in_port ~now pkt : int)
    done
  in
  let t0 = Unix.gettimeofday () in
  if shards = 1 then begin
    (* one shard bypasses the dispatcher entirely *)
    let r = t.runners.(0) in
    Array.iter
      (fun (pkt, now, in_port) ->
        Exec.Meter.reset_observations r.meter;
        ignore (Exec.Specialize.exec r.sp ~in_port ~now pkt : int))
      entries
  end
  else begin
    (* steering pass: the serialized dispatch term *)
    Array.iteri
      (fun i (pkt, _now, in_port) ->
        match Plan.steer t.plan ~in_port pkt with
        | Dispatch.Shard s ->
            slices.(s).(fill.(s)) <- i;
            fill.(s) <- fill.(s) + 1
        | Dispatch.Broadcast ->
            for s = 0 to shards - 1 do
              slices.(s).(fill.(s)) <- i;
              fill.(s) <- fill.(s) + 1
            done)
      entries;
    match pool with
    | Some w -> Exec.Pool.Workers.run w exec_slice
    | None ->
        for s = 0 to shards - 1 do
          exec_slice s
        done
  end;
  Unix.gettimeofday () -. t0

let pp_result ppf r =
  Fmt.pf ppf "#%d shard %d %a ic=%d ma=%d" r.index r.shard
    (fun ppf -> function
      | Exec.Interp.Sent p -> Fmt.pf ppf "sent(%d)" p
      | Dropped -> Fmt.string ppf "dropped"
      | Flooded -> Fmt.string ppf "flooded")
    r.outcome r.ic r.ma
