(** A sharding plan: how one NF spec becomes [shards] shard-local
    replicas plus the steering policy that keeps every lookup on the
    shard that owns its state.

    The plan is derived statically from the spec — {!policy_of} is the
    per-NF shardability catalogue.  Two registry NFs are {e not}
    shardable under shared-nothing replication and are rejected by
    {!make}: the policer (one global token bucket — splitting it would
    multiply the permitted rate) and the bridge (MAC learning binds
    state to L2 addresses on both lookup and learn sides, so no
    per-packet hash keeps a station's entry on one shard).

    Each replica keeps the base spec's full table geometry (aggregate
    capacity grows with the shard count, the usual shared-nothing
    deployment choice).  The one knob that {e must} differ per shard is
    the NAT's external port range: ports are a global namespace, so the
    plan slices the base range into disjoint contiguous sub-ranges via
    {!Dispatch.nat_slice}, making the reply direction steerable by
    arithmetic. *)

type t = private {
  base : Nf.Spec.t;
  shards : int;
  policy : Dispatch.policy;
  specs : Nf.Spec.t array;  (** one per shard, length [shards] *)
}

val policy_of : Nf.Spec.t -> Dispatch.policy option
(** [None] when the NF's state cannot be sharded (policer, bridge). *)

val shardable : Nf.Spec.t -> bool

val make : shards:int -> Nf.Spec.t -> t
(** Raises [Invalid_argument] for [shards < 1] or an unshardable spec
    (the message names the NF and the state that forces sharing). *)

val steer : t -> in_port:int -> Net.Packet.t -> Dispatch.steer

val pp : Format.formatter -> t -> unit
