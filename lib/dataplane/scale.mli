(** Scalability-contract validation: predict aggregate throughput at N
    shards from the per-packet contract, then measure it.

    For each shard count the runner derives a {!Perf.Scale.t} — the
    per-packet worst-case cycles from the NF's own BOLT analysis (every
    PCV bound to the bench convention's adversarial value), the
    dispatcher's modelled cost ({!Dispatch.cost_vec}), and the skew term
    from the workload's real steering histogram — and validates it three
    ways: the parallel replay must be bit-identical to the serial one,
    the shards-N outcomes must match the shards-1 reference, and the
    predicted aggregate pps (anchored at the measured single-shard rate)
    is compared against the measured parallel drain.

    Speedup assertions are the caller's job, gated on
    [Domain.recommended_domain_count ()]: on a 1-core container the
    contract itself predicts {e no} speedup (the [1/cores] floor), so
    only the parity and soundness gates are meaningful there. *)

type level = {
  shards : int;
  contract : Perf.Scale.t;
  predicted_pps : float;
  measured_pps : float;
  parity_ok : bool;
      (** parallel ≡ serial replay, and shards-N ≡ shards-1 outcomes *)
  error_pct : float;  (** [(predicted - measured) / measured * 100] *)
}

type result = {
  nf : string;
  packets : int;
  cores : int;  (** [Domain.recommended_domain_count ()] at run time *)
  baseline_pps : float;  (** measured single-shard drain rate *)
  per_packet_cycles : int;
  dispatch_cycles : int;
  levels : level list;
}

val default_nfs : string list
(** The NFs the scale bench exercises: firewall (stateless), nat
    (sliced port namespace), maglev (flow affinity + heartbeat
    broadcast). *)

val workload : nf:string -> seed:int -> packets:int -> Workload.Stream.t
(** The per-NF steering workload: distinct flows for the firewall,
    internal flows for the NAT, backend heartbeats followed by client
    flows for maglev. *)

val run :
  ?levels:int list ->
  ?packets:int ->
  ?reps:int ->
  ?seed:int ->
  string ->
  result
(** [run nf] with [levels] defaulting to [[1; 2; 4]], [packets] to
    [4096], [reps] to [3] (each level's drain is best-of-[reps] on a
    fresh engine, so no rep inherits another's table state). *)

val to_json : result -> Perf.Json.t
(** Includes the {!Perf.Provenance} block — scale numbers from a 1-core
    container must be self-describing. *)

val pp : Format.formatter -> result -> unit
