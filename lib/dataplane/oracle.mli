(** Dispatcher-affinity oracles: external checks that steering really
    keeps every stateful lookup on the shard that owns the entry.

    The sharded engine's correctness rests on one invariant per NF
    class — a conntrack reply must land on the shard holding the
    forward entry, a NAT reply on the shard whose allocator issued the
    translated port, a shards-N replay must agree packet-for-packet
    with the shards-1 reference.  These oracles drive real packets
    through {!Shard.step}/{!Shard.replay} and collect violations as
    human-readable strings; an empty list is a pass.

    The NAT oracle is necessarily {e online}: the reply tuple depends
    on which external port the owning shard's allocator handed out, so
    each reply is crafted from the translated bytes of the forward
    packet that just exited the engine. *)

type report = {
  nf : string;
  shards : int;
  checked : int;  (** packets the oracle examined *)
  violations : string list;
}

val ok : report -> bool

val equivalence :
  ?strict_bytes:bool ->
  nf:string ->
  Shard.result array ->
  Shard.result array ->
  string list
(** Per-packet comparison of two replays of the same stream (reference
    first).  Always gates outcome code and egress port; with
    [strict_bytes] (default [true]) the full packet bytes too — turn it
    off only for the NAT, whose shards rewrite from disjoint port
    slices. *)

val conntrack_affinity :
  ?seed:int -> ?flows:int -> shards:int -> unit -> report
(** Bidirectional churn through a sharded conntrack: every flow's
    outbound opener must pass, its reply must steer to the same shard
    and pass, and a reply for a flow that was never opened must drop —
    on whichever shard it lands.  Also replays the whole stream at
    shards-1 and demands bit-identical outcomes. *)

val nat_affinity : ?seed:int -> ?flows:int -> shards:int -> unit -> report
(** Online NAT check: for each internal flow, the translated source
    port read from the forward packet's bytes must lie inside the
    steering shard's port slice; the crafted reply must steer back to
    that shard, pass, and be rewritten to the original internal
    endpoint.  Replies to unallocated ports must drop. *)

val pp : Format.formatter -> report -> unit
