type report = {
  nf : string;
  shards : int;
  checked : int;
  violations : string list;
}

let ok r = r.violations = []

let pp_outcome ppf = function
  | Exec.Interp.Sent p -> Fmt.pf ppf "sent(%d)" p
  | Dropped -> Fmt.string ppf "dropped"
  | Flooded -> Fmt.string ppf "flooded"

let equivalence ?(strict_bytes = true) ~nf
    (ref_run : Shard.result array) (sharded : Shard.result array) =
  if Array.length ref_run <> Array.length sharded then
    [
      Printf.sprintf "%s: replay lengths differ (%d vs %d)" nf
        (Array.length ref_run) (Array.length sharded);
    ]
  else begin
    let bad = ref [] in
    Array.iteri
      (fun i (a : Shard.result) ->
        let b = sharded.(i) in
        if a.Shard.outcome <> b.Shard.outcome then
          bad :=
            Fmt.str "%s: packet %d outcome %a (shards-1) vs %a (shard %d)"
              nf i pp_outcome a.outcome pp_outcome b.outcome b.shard
            :: !bad
        else if strict_bytes && not (String.equal a.bytes b.bytes) then
          bad :=
            Printf.sprintf "%s: packet %d bytes diverge on shard %d" nf i
              b.shard
            :: !bad)
      ref_run;
    List.rev !bad
  end

(* ---- conntrack: both directions of every flow on one shard ---- *)

let conntrack_affinity ?(seed = 7) ?(flows = 64) ~shards () =
  let rng = Workload.Prng.create ~seed in
  let spec = Nf.Spec.of_name "conntrack" in
  let plan = Plan.make ~shards spec in
  let fs = Workload.Gen.distinct_flows rng flows in
  (* bidirectional churn: opener, reply, plus a reply nobody opened *)
  let orphans = Workload.Gen.distinct_flows rng (max 1 (flows / 8)) in
  let now = ref 1_000_000 in
  let tick () =
    now := !now + 1_000;
    !now
  in
  let stream =
    List.concat_map
      (fun f ->
        [
          Workload.Stream.entry ~in_port:0 ~now:(tick ())
            (Net.Build.udp_of_flow f);
          Workload.Stream.entry ~in_port:1 ~now:(tick ())
            (Net.Build.udp_of_flow (Net.Flow.reverse f));
        ])
      fs
    @ List.map
        (fun f ->
          Workload.Stream.entry ~in_port:1 ~now:(tick ())
            (Net.Build.udp_of_flow (Net.Flow.reverse f)))
        orphans
  in
  let violations = ref [] in
  let note fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  (* pure steering invariant: a flow and its reverse share a shard *)
  List.iter
    (fun f ->
      let fwd =
        Plan.steer plan ~in_port:0 (Net.Build.udp_of_flow f)
      and rev =
        Plan.steer plan ~in_port:1
          (Net.Build.udp_of_flow (Net.Flow.reverse f))
      in
      if fwd <> rev then
        note "conntrack: %a steers fwd/rev to different shards" Net.Flow.pp
          f)
    fs;
  (* replay both ways: serial shards-1 reference vs parallel shards-N *)
  let ref_run = Shard.replay (Shard.create (Plan.make ~shards:1 spec)) stream in
  let sharded =
    Shard.with_engine plan (fun e -> Shard.replay ~parallel:true e stream)
  in
  violations :=
    List.rev_append
      (equivalence ~strict_bytes:true ~nf:"conntrack" ref_run sharded)
      !violations;
  (* semantic gates on the reference outcomes *)
  List.iteri
    (fun i f ->
      match (ref_run.(2 * i).Shard.outcome, ref_run.((2 * i) + 1).outcome) with
      | Exec.Interp.Sent _, Exec.Interp.Sent 0 -> ()
      | o1, o2 ->
          note "conntrack: %a expected pass/pass, got %a/%a" Net.Flow.pp f
            pp_outcome o1 pp_outcome o2)
    fs;
  List.iteri
    (fun i _ ->
      let r = ref_run.((2 * List.length fs) + i) in
      if r.Shard.outcome <> Exec.Interp.Dropped then
        note "conntrack: orphan reply %d passed (%a)" i pp_outcome r.outcome)
    orphans;
  {
    nf = "conntrack";
    shards;
    checked = List.length stream;
    violations = List.rev !violations;
  }

(* ---- NAT: replies route to the shard whose allocator owns the port ---- *)

let nat_affinity ?(seed = 11) ?(flows = 64) ~shards () =
  let rng = Workload.Prng.create ~seed in
  let spec = Nf.Spec.of_name "nat" in
  let plan = Plan.make ~shards spec in
  let port_lo, port_hi =
    match spec with
    | Nf.Spec.Nat c -> (c.Nf.Nat.port_lo, c.port_hi)
    | _ -> assert false
  in
  let engine = Shard.create plan in
  let reference = Shard.create (Plan.make ~shards:1 spec) in
  let fs = Workload.Gen.distinct_flows rng flows in
  let violations = ref [] in
  let note fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let checked = ref 0 in
  let now = ref 1_000_000 in
  let tick () =
    now := !now + 1_000;
    !now
  in
  let allocated = Hashtbl.create 64 in
  let outcome_code = function
    | Exec.Interp.Sent p -> Fmt.str "sent(%d)" p
    | Dropped -> "dropped"
    | Flooded -> "flooded"
  in
  (* one shards-1 step mirroring every shards-N step: outcome codes and
     egress ports must agree even though the translated ports differ *)
  let mirrored label ~in_port ~now pkt (run : Exec.Concrete.run) =
    let _, ref_run, ref_copy = Shard.step reference ~in_port ~now pkt in
    if
      outcome_code run.Exec.Interp.outcome
      <> outcome_code ref_run.Exec.Interp.outcome
    then
      note "nat: %s outcome %a diverges from shards-1 %a" label pp_outcome
        run.outcome pp_outcome ref_run.outcome;
    ref_copy
  in
  List.iter
    (fun (f : Net.Flow.t) ->
      (* forward: internal flow out through the NAT *)
      let fwd = Net.Build.udp_of_flow f in
      let t = tick () in
      let s, run, copy = Shard.step engine ~in_port:0 ~now:t fwd in
      incr checked;
      let ref_copy = mirrored "forward" ~in_port:0 ~now:t fwd run in
      (match run.Exec.Interp.outcome with
      | Exec.Interp.Sent 1 ->
          let xport = Net.L4.get_src_port copy in
          let lo, hi = Dispatch.nat_slice ~port_lo ~port_hi ~shards s in
          if xport < lo || xport > hi then
            note "nat: %a translated to port %d outside shard %d's slice \
                  %d-%d"
              Net.Flow.pp f xport s lo hi;
          if Net.Ipv4.get_src copy <> Nf.Nat.external_ip then
            note "nat: %a source not rewritten to the external ip"
              Net.Flow.pp f;
          Hashtbl.replace allocated xport ();
          (* reply: crafted online from the translated bytes *)
          let reply =
            Net.Build.udp ~src_ip:f.dst_ip ~src_port:f.dst_port
              ~dst_ip:Nf.Nat.external_ip ~dst_port:xport ()
          in
          let t = tick () in
          let s2, run2, copy2 = Shard.step engine ~in_port:1 ~now:t reply in
          incr checked;
          (* the shards-1 mirror needs its own translated port *)
          let ref_reply =
            Net.Build.udp ~src_ip:f.dst_ip ~src_port:f.dst_port
              ~dst_ip:Nf.Nat.external_ip
              ~dst_port:(Net.L4.get_src_port ref_copy)
              ()
          in
          ignore (mirrored "reply" ~in_port:1 ~now:t ref_reply run2);
          if s2 <> s then
            note "nat: %a reply steered to shard %d, entry lives on %d"
              Net.Flow.pp f s2 s;
          (match run2.Exec.Interp.outcome with
          | Exec.Interp.Sent 0 ->
              if
                Net.Ipv4.get_dst copy2 <> f.src_ip
                || Net.L4.get_dst_port copy2 <> f.src_port
              then
                note "nat: %a reply not rewritten back to the internal \
                      endpoint"
                  Net.Flow.pp f
          | o -> note "nat: %a reply %a" Net.Flow.pp f pp_outcome o)
      | o -> note "nat: %a forward %a" Net.Flow.pp f pp_outcome o))
    fs;
  (* a reply to a port nobody allocated must drop, wherever it lands *)
  let rec free_port p =
    if p > port_hi then None
    else if Hashtbl.mem allocated p then free_port (p + 1)
    else Some p
  in
  (match free_port port_lo with
  | None -> ()
  | Some p ->
      let stray =
        Net.Build.udp
          ~src_ip:(Net.Ipv4.addr_of_parts 203 0 113 7)
          ~src_port:443 ~dst_ip:Nf.Nat.external_ip ~dst_port:p ()
      in
      let _, run, _ = Shard.step engine ~in_port:1 ~now:(tick ()) stray in
      incr checked;
      if run.Exec.Interp.outcome <> Exec.Interp.Dropped then
        note "nat: stray reply to unallocated port %d passed (%a)" p
          pp_outcome run.outcome);
  { nf = "nat"; shards; checked = !checked; violations = List.rev !violations }

let pp ppf r =
  if ok r then
    Fmt.pf ppf "%s x%d affinity: ok (%d packets)" r.nf r.shards r.checked
  else
    Fmt.pf ppf "%s x%d affinity: %d violation(s)@,%a" r.nf r.shards
      (List.length r.violations)
      Fmt.(list ~sep:cut string)
      r.violations
