type steer = Shard of int | Broadcast

type policy =
  | Flow_hash
  | Symmetric
  | Src_hash
  | Nat_ports of { port_lo : int; port_hi : int }
  | Lb of { heartbeat_port : int }

(* Offset of the L4 header when the packet is hashable IPv4 TCP/UDP, -1
   otherwise — the same validity ladder as [Net.Flow.of_packet], but
   allocation-free so the dispatcher can sit on the hot path. *)
let l4_off pkt =
  let open Net in
  if Packet.length pkt < Ethernet.header_len + Ipv4.min_header_len + 4 then -1
  else if Ethernet.get_ethertype pkt <> Ethernet.ethertype_ipv4 then -1
  else
    let proto = Ipv4.get_proto pkt in
    if proto <> Ipv4.proto_tcp && proto <> Ipv4.proto_udp then -1
    else
      let l4 = Ipv4.l4_offset pkt in
      if Packet.length pkt < l4 + 4 then -1 else l4

(* Same digest as [Net.Flow.hash_key], so steering agrees with every
   flow-keyed map in the toolkit. *)
let mix acc v = (((acc lsl 13) lxor (acc lsr 7)) lxor v) * 0x9e3779b1

let hash_flow ~symmetric pkt =
  let l4 = l4_off pkt in
  if l4 < 0 then -1
  else
    let open Net in
    let src_ip = Ipv4.get_src pkt and dst_ip = Ipv4.get_dst pkt in
    let src_port = L4.get_src_port_at pkt ~l4
    and dst_port = L4.get_dst_port_at pkt ~l4 in
    let src_ip, dst_ip, src_port, dst_port =
      if
        symmetric
        && (src_ip > dst_ip || (src_ip = dst_ip && src_port > dst_port))
      then (dst_ip, src_ip, dst_port, src_port)
      else (src_ip, dst_ip, src_port, dst_port)
    in
    mix (mix (mix (mix (mix 0 src_ip) dst_ip) src_port) dst_port)
      (Ipv4.get_proto pkt)
    land max_int

let check_shards shards =
  if shards < 1 then invalid_arg "Dispatch: shards < 1"

let nat_slice ~port_lo ~port_hi ~shards i =
  check_shards shards;
  if i < 0 || i >= shards then
    invalid_arg
      (Printf.sprintf "Dispatch.nat_slice: shard %d of %d" i shards);
  let len = port_hi - port_lo + 1 in
  if len < shards then
    invalid_arg
      (Printf.sprintf
         "Dispatch.nat_slice: port range %d-%d has %d ports, fewer than %d \
          shards"
         port_lo port_hi len shards);
  let base = len / shards and rem = len mod shards in
  let lo = port_lo + (i * base) + min i rem in
  let width = base + if i < rem then 1 else 0 in
  (lo, lo + width - 1)

let nat_owner ~port_lo ~port_hi ~shards port =
  check_shards shards;
  if port < port_lo || port > port_hi then 0
  else
    let len = port_hi - port_lo + 1 in
    let base = len / shards and rem = len mod shards in
    let off = port - port_lo in
    (* the first [rem] slices are one port wider *)
    let cut = (base + 1) * rem in
    if off < cut then off / (base + 1) else rem + ((off - cut) / base)

let shard_of_hash ~shards h = if h < 0 then Shard 0 else Shard (h mod shards)

let steer policy ~shards ~in_port pkt =
  check_shards shards;
  if shards = 1 then Shard 0
  else
    match policy with
    | Flow_hash -> shard_of_hash ~shards (hash_flow ~symmetric:false pkt)
    | Symmetric -> shard_of_hash ~shards (hash_flow ~symmetric:true pkt)
    | Src_hash ->
        let l4 = l4_off pkt in
        if l4 < 0 then Shard 0
        else
          shard_of_hash ~shards (mix 0 (Net.Ipv4.get_src pkt) land max_int)
    | Nat_ports { port_lo; port_hi } ->
        if in_port = 1 then
          (* a reply to some shard's translation: only the slice owner can
             hold the mapping, so route by the destination port *)
          let l4 = l4_off pkt in
          if l4 < 0 then Shard 0
          else
            Shard
              (nat_owner ~port_lo ~port_hi ~shards
                 (Net.L4.get_dst_port_at pkt ~l4))
        else shard_of_hash ~shards (hash_flow ~symmetric:false pkt)
    | Lb { heartbeat_port } ->
        let l4 = l4_off pkt in
        if
          in_port = 1 && l4 >= 0
          && Net.Ipv4.get_proto pkt = Net.Ipv4.proto_udp
          && Net.L4.get_dst_port_at pkt ~l4 = heartbeat_port
        then Broadcast
        else shard_of_hash ~shards (hash_flow ~symmetric:false pkt)

let cost_vec =
  (* the steering ladder above: ethertype + proto + 2 addresses + ports
     read from a header that the NF is about to touch anyway (L1 hits),
     five hash-mix rounds, and the validity/modulo control flow *)
  let loads = 5 and alus = 16 and branches = 4 in
  let cycles =
    (loads * Hw.Cost.l1_hit_cycles)
    + (alus * Hw.Cost.worst_case_cycles Hw.Cost.Alu)
    + (branches * Hw.Cost.worst_case_cycles Hw.Cost.Branch)
  in
  Perf.Cost_vec.of_consts ~ic:(loads + alus + branches) ~ma:loads ~cycles

let pp_policy ppf = function
  | Flow_hash -> Fmt.string ppf "flow-hash"
  | Symmetric -> Fmt.string ppf "symmetric-hash"
  | Src_hash -> Fmt.string ppf "src-hash"
  | Nat_ports { port_lo; port_hi } ->
      Fmt.pf ppf "nat-ports[%d-%d]" port_lo port_hi
  | Lb { heartbeat_port } -> Fmt.pf ppf "lb[hb=%d]" heartbeat_port
