type level = {
  shards : int;
  contract : Perf.Scale.t;
  predicted_pps : float;
  measured_pps : float;
  parity_ok : bool;
  error_pct : float;
}

type result = {
  nf : string;
  packets : int;
  cores : int;
  baseline_pps : float;
  per_packet_cycles : int;
  dispatch_cycles : int;
  levels : level list;
}

let default_nfs = [ "firewall"; "nat"; "maglev" ]

let workload ~nf ~seed ~packets =
  let rng = Workload.Prng.create ~seed in
  match nf with
  | "maglev" ->
      (* liveness first: heartbeats from every backend (broadcast class),
         then client flows that hash across the shards *)
      let hbs =
        Workload.Gen.heartbeat_frames
          ~backend_ids:(List.init 16 Fun.id)
          ~port:Nf.Maglev.heartbeat_port
      in
      let clients =
        Workload.Gen.packets_of_flows
          (Workload.Gen.distinct_flows rng (max 1 (packets - List.length hbs)))
      in
      Workload.Stream.constant_rate ~in_port:1 ~start:1_000_000 ~gap:100 hbs
      @ Workload.Stream.constant_rate ~in_port:0 ~start:1_100_000 ~gap:100
          clients
  | _ ->
      (* firewall, nat, and any other flow-steered NF: distinct flows
         arriving on the internal side *)
      Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100
        (Workload.Gen.packets_of_flows
           (Workload.Gen.distinct_flows rng packets))

let contract_cycles (spec : Nf.Spec.t) =
  let entry = Nf.Registry.of_spec spec in
  let t =
    Bolt.Pipeline.analyze
      ~config:
        Bolt.Pipeline.Config.(
          default |> with_contracts entry.Nf.Registry.contracts)
      entry.Nf.Registry.program
  in
  let w = Bolt.Pipeline.worst_case t in
  (* the bench convention: every PCV bound to the same adversarial value *)
  let binding = List.map (fun p -> (p, 3)) (Perf.Cost_vec.pcvs w) in
  Perf.Cost_vec.eval_exn binding w Perf.Metric.Cycles

let dispatch_cycles () =
  Perf.Cost_vec.eval_exn [] Dispatch.cost_vec Perf.Metric.Cycles

let best_of ~reps f =
  let rec go i best = if i = 0 then best else go (i - 1) (Float.min best (f ())) in
  go reps infinity

let run ?(levels = [ 1; 2; 4 ]) ?(packets = 4096) ?(reps = 3) ?(seed = 42) nf
    =
  let spec = Nf.Spec.of_name nf in
  let stream = workload ~nf ~seed ~packets in
  let n = Workload.Stream.length stream in
  let cores = Domain.recommended_domain_count () in
  let per_packet_cycles = contract_cycles spec in
  let d_cycles = dispatch_cycles () in
  let reference = Shard.replay (Shard.create (Plan.make ~shards:1 spec)) stream in
  let baseline_pps =
    float_of_int n
    /. best_of ~reps (fun () ->
           Shard.drain (Shard.create (Plan.make ~shards:1 spec)) stream)
  in
  let level shards =
    let plan = Plan.make ~shards spec in
    let contract =
      Perf.Scale.derive ~nf ~shards ~cores ~per_packet_cycles
        ~dispatch_cycles:(if shards = 1 then 0 else d_cycles)
        ~shard_loads:(Shard.load_histogram plan stream)
    in
    let serial = Shard.replay (Shard.create plan) stream in
    let parallel =
      Shard.with_engine plan (fun e -> Shard.replay ~parallel:true e stream)
    in
    let parity_ok =
      (* parallel ≡ serial at the same shard count is bit-identical for
         every NF; against the shards-1 reference the NAT's bytes may
         differ (disjoint port slices), outcomes may not *)
      Oracle.equivalence ~strict_bytes:true ~nf serial parallel = []
      && Oracle.equivalence ~strict_bytes:(nf <> "nat") ~nf reference serial
         = []
    in
    let measured_pps =
      (* at one shard the parallel drain is the serial drain (the
         dispatcher is bypassed), so the baseline measurement is reused
         rather than re-sampling the same code path *)
      if shards = 1 then baseline_pps
      else
        float_of_int n
        /. best_of ~reps (fun () ->
               Shard.with_engine plan (fun e ->
                   Shard.drain ~parallel:true e stream))
    in
    let predicted_pps = Perf.Scale.predicted_pps contract ~baseline_pps in
    {
      shards;
      contract;
      predicted_pps;
      measured_pps;
      parity_ok;
      error_pct = (predicted_pps -. measured_pps) /. measured_pps *. 100.;
    }
  in
  {
    nf;
    packets = n;
    cores;
    baseline_pps;
    per_packet_cycles;
    dispatch_cycles = d_cycles;
    levels = List.map level levels;
  }

let to_json r =
  let open Perf.Json in
  Obj
    [
      ("nf", String r.nf);
      ("provenance", Perf.Provenance.json ~packets:r.packets ());
      ("cores", Int r.cores);
      ("baseline_pps", Int (int_of_float r.baseline_pps));
      ("per_packet_cycles", Int r.per_packet_cycles);
      ("dispatch_cycles", Int r.dispatch_cycles);
      ( "levels",
        List
          (List.map
             (fun l ->
               Obj
                 [
                   ("shards", Int l.shards);
                   ("contract", Perf.Scale.to_json l.contract);
                   ("predicted_pps", Int (int_of_float l.predicted_pps));
                   ("measured_pps", Int (int_of_float l.measured_pps));
                   ("parity_ok", Bool l.parity_ok);
                   ("error_pct", Int (int_of_float l.error_pct));
                 ])
             r.levels) );
    ]

let pp ppf r =
  Fmt.pf ppf "@[<v>%s: %d packets, %d core(s), baseline %.0f pps@,%a@]" r.nf
    r.packets r.cores r.baseline_pps
    (Fmt.list ~sep:Fmt.cut (fun ppf l ->
         Fmt.pf ppf
           "  x%d  predicted %8.0f pps  measured %8.0f pps  err %+.1f%%  \
            skew %d%%  parity %b"
           l.shards l.predicted_pps l.measured_pps l.error_pct
           l.contract.Perf.Scale.skew_pct l.parity_ok))
    r.levels
