type t = {
  base : Nf.Spec.t;
  shards : int;
  policy : Dispatch.policy;
  specs : Nf.Spec.t array;
}

let policy_of (spec : Nf.Spec.t) : Dispatch.policy option =
  match spec with
  | Firewall | Responder | Static_router | Router _ -> Some Flow_hash
  | Conntrack _ -> Some Symmetric
  | Limiter _ -> Some Src_hash
  | Nat c -> Some (Nat_ports { port_lo = c.Nf.Nat.port_lo; port_hi = c.port_hi })
  | Maglev _ -> Some (Lb { heartbeat_port = Nf.Maglev.heartbeat_port })
  | Policer _ | Bridge _ -> None

let shardable spec = Option.is_some (policy_of spec)

let unshardable_reason (spec : Nf.Spec.t) =
  match spec with
  | Policer _ ->
      "its single token bucket is global state (sharding it would \
       multiply the permitted rate)"
  | Bridge _ ->
      "MAC learning reads and writes entries keyed by both packet \
       endpoints, so no per-packet hash keeps a station on one shard"
  | _ -> "it has no steering policy"

let shard_specs ~shards (spec : Nf.Spec.t) =
  match spec with
  | Nat c ->
      (* disjoint external-port slices; everything else is replicated *)
      Array.init shards (fun i ->
          let lo, hi =
            Dispatch.nat_slice ~port_lo:c.Nf.Nat.port_lo
              ~port_hi:c.port_hi ~shards i
          in
          Nf.Spec.apply spec (Nf.Spec.Ports (lo, hi)))
  | _ -> Array.make shards spec

let make ~shards spec =
  if shards < 1 then invalid_arg "Plan.make: shards < 1";
  match policy_of spec with
  | None ->
      invalid_arg
        (Printf.sprintf "Plan.make: %S is not shardable: %s"
           (Nf.Spec.name spec) (unshardable_reason spec))
  | Some policy ->
      { base = spec; shards; policy; specs = shard_specs ~shards spec }

let steer t ~in_port pkt =
  Dispatch.steer t.policy ~shards:t.shards ~in_port pkt

let pp ppf t =
  Fmt.pf ppf "%s x%d via %a" (Nf.Spec.name t.base) t.shards
    Dispatch.pp_policy t.policy
