(** The sharded execution engine: one specialized runner per shard over
    shard-local dslib state, fed by {!Dispatch} steering.

    Each shard is built independently through the normal registry path —
    {!Nf.Registry.of_spec} on its slice of the plan, then
    {!Nf.Registry.specialize} against a private meter — so shards share
    {e no} mutable state: not tables, not meters, not allocators.  That
    is the whole correctness argument for running them on separate
    domains, and it is what the affinity oracle checks from the outside.

    Two replay guarantees, both bit-level:
    - parallel ≡ serial at the same shard count: steering is pure and
      per-shard arrival order is preserved, so each shard's state
      machine consumes the identical subsequence either way;
    - shards-N ≡ shards-1 per packet for outcome and egress port
      whenever the steering policy matches the NF's state keying (the
      oracle's job); packet {e bytes} additionally match for every NF
      except the NAT, whose shards allocate from disjoint port slices.

    Broadcast entries (load-balancer heartbeats) are handed to every
    shard as private copies made during partitioning; the merged replay
    reports shard 0's outcome for them. *)

type t

type result = {
  index : int;  (** position in the input stream *)
  shard : int;  (** executing shard ([0] for broadcast entries) *)
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  bytes : string;  (** packet bytes after processing *)
}

val create : Plan.t -> t
val plan : t -> Plan.t

val stop : t -> unit
(** Join the engine's worker domains (spawned lazily on the first
    parallel call).  Idempotent; a later parallel call respawns them. *)

val with_engine : Plan.t -> (t -> 'a) -> 'a
(** [create] / run / {!stop}, exception-safe.  Prefer this: engines that
    are never stopped hold a parked domain per extra shard until process
    exit, and the runtime caps live domains. *)

val replay : ?parallel:bool -> t -> Workload.Stream.t -> result array
(** Full-fidelity replay, results in stream order.  [parallel] (default
    [false]) partitions the stream and runs each shard's slice on its
    own domain via {!Exec.Pool.run_each}; the results are identical to
    the serial walk by construction.  Shard state persists across calls
    ([create] a fresh engine for an independent replay). *)

val step :
  t -> in_port:int -> now:int -> Net.Packet.t -> int * Exec.Interp.run * Net.Packet.t
(** Single-packet entry point for online oracles: steers a private copy
    of the packet, runs it on the owning shard, and returns the shard
    index, the run record, and the (possibly rewritten) copy.
    Broadcast packets run on every shard; shard 0's run is returned. *)

val drain : ?parallel:bool -> t -> Workload.Stream.t -> float
(** Throughput-mode replay: the allocation-free {!Exec.Specialize.exec}
    loop, returning the elapsed seconds of the timed region.  The timed
    region covers exactly what the scalability contract prices: the
    steering pass (skipped at one shard — a single shard bypasses the
    dispatcher) plus the per-shard execution loops.  Packet copies are
    made before the clock starts. *)

val load_histogram : Plan.t -> Workload.Stream.t -> int array
(** Packets steered to each shard (broadcast entries count once per
    shard) — the workload's flow-hash histogram, input to the
    scalability contract's skew term. *)

val pp_result : Format.formatter -> result -> unit
