module E = Ir.Expr
module S = Ir.Stmt
module P = Workload.Prng

(* Offsets below this are safe on every packet that survives the
   [Pkt_len < 34 → drop] guard each program opens with. *)
let guard_len = 34

type ctx = {
  rng : P.t;
  mutable next_var : int;  (* fresh v<N> names *)
  mutable next_loop : int;  (* fresh l<N>/t<N>/p<N>/n<N> names *)
  mutable forks : int;  (* remaining fork-point budget *)
  mutable pcv_used : bool;  (* at most one PCV loop per program *)
}

let fresh_var ctx =
  let v = Printf.sprintf "v%d" ctx.next_var in
  ctx.next_var <- ctx.next_var + 1;
  v

(* ---- Expressions ----------------------------------------------------- *)

let load_widths = [| (E.W8, 1); (E.W16, 2); (E.W32, 4) |]

let leaf ctx env =
  match P.below ctx.rng 4 with
  | 0 -> E.Const (P.below ctx.rng 256)
  | 1 when env <> [] -> E.Var (List.nth env (P.below ctx.rng (List.length env)))
  | 2 ->
      let w, bytes = load_widths.(P.below ctx.rng 3) in
      E.Pkt_load (w, E.Const (P.below ctx.rng (guard_len - bytes + 1)))
  | 3 -> E.Pkt_len
  | _ -> E.Const (P.below ctx.rng 256)

(* Safe operator set: no Sub (values must stay non-negative), no Div
   (zero divisors), no shifts (the validator rejects overflowing ones);
   Mul and Rem only by small positive constants. *)
let safe_binops =
  [| E.Add; E.And; E.Or; E.Xor; E.Eq; E.Ne; E.Lt; E.Le; E.Gt; E.Ge |]

let rec expr ctx env depth =
  if depth <= 0 || P.bool ctx.rng 0.35 then leaf ctx env
  else
    match P.below ctx.rng 8 with
    | 0 | 1 | 2 | 3 | 4 ->
        E.Binop
          ( safe_binops.(P.below ctx.rng (Array.length safe_binops)),
            expr ctx env (depth - 1),
            expr ctx env (depth - 1) )
    | 5 ->
        E.Binop (E.Mul, expr ctx env (depth - 1), E.Const (1 + P.below ctx.rng 8))
    | 6 ->
        E.Binop (E.Rem, expr ctx env (depth - 1), E.Const (1 + P.below ctx.rng 16))
    | _ ->
        let op = if P.bool ctx.rng 0.5 then E.Lnot else E.Bnot in
        E.Unop (op, expr ctx env (depth - 1))

let cond ctx env = expr ctx env 2

(* ---- Statements ------------------------------------------------------ *)

let gen_store ctx env =
  let w, bytes = load_widths.(P.below ctx.rng 3) in
  let off = P.below ctx.rng (guard_len - bytes + 1) in
  let value = E.Binop (E.And, expr ctx env 2, E.Const (E.max_of_width w)) in
  S.Pkt_store (w, E.Const off, value)

let gen_assign ctx env =
  let v = fresh_var ctx in
  (S.assign v (expr ctx env 2), v :: env)

(* A counted loop: counter starts at 0, increments once per iteration,
   and the trip count is forced below the static bound, so the
   interpreter can never overrun it. *)
let gen_unroll ctx env =
  let k = ctx.next_loop in
  ctx.next_loop <- ctx.next_loop + 1;
  let i = Printf.sprintf "l%d" k in
  let bound = 1 + P.below ctx.rng 3 in
  let trips =
    if ctx.forks >= bound && P.bool ctx.rng 0.5 then begin
      (* data-dependent trip count: the engine forks per feasible trip *)
      ctx.forks <- ctx.forks - bound;
      E.Binop (E.Rem, leaf ctx env, E.Const bound)
    end
    else E.Const (P.below ctx.rng (bound + 1))
  in
  let body, _ = (gen_assign ctx (i :: env) : S.t * _) in
  [
    S.assign i (E.Const 0);
    S.While
      ( S.Unroll bound,
        E.Binop (E.Lt, E.Var i, trips),
        [ body; S.assign i (E.Binop (E.Add, E.Var i, E.Const 1)) ] );
  ]

(* A PCV loop.  The body is straight-line, so the per-iteration cost is
   iteration-invariant — the assumption under which pricing a PCV loop
   as [per-iteration · pcv + exit] is conservative. *)
let gen_pcv_loop ctx env =
  let k = ctx.next_loop in
  ctx.next_loop <- ctx.next_loop + 1;
  ctx.pcv_used <- true;
  let name = Printf.sprintf "n%d" k in
  let i = Printf.sprintf "p%d" k in
  let trip_var = Printf.sprintf "t%d" k in
  let bound = 2 + P.below ctx.rng 7 in
  let body_stmt, _ = gen_assign ctx (i :: trip_var :: env) in
  [
    (* Rem keeps the runtime trip count strictly below the bound *)
    S.assign trip_var (E.Binop (E.Rem, expr ctx env 1, E.Const bound));
    S.assign i (E.Const 0);
    S.While
      ( S.Pcv_loop (name, bound),
        E.Binop (E.Lt, E.Var i, E.Var trip_var),
        [ body_stmt; S.assign i (E.Binop (E.Add, E.Var i, E.Const 1)) ] );
  ]

let rec block ctx env budget =
  if budget <= 0 then []
  else
    let stmts, env, used =
      match P.below ctx.rng 10 with
      | 0 | 1 | 2 | 3 ->
          let s, env = gen_assign ctx env in
          ([ s ], env, 1)
      | 4 | 5 -> ([ gen_store ctx env ], env, 1)
      | 6 | 7 when ctx.forks > 0 ->
          ctx.forks <- ctx.forks - 1;
          let then_ = block ctx env (budget / 2) in
          let else_ = block ctx env (budget / 2) in
          ([ S.if_ (cond ctx env) then_ else_ ], env, 2)
      | 8 when ctx.forks > 0 ->
          ctx.forks <- ctx.forks - 1;
          ([ S.when_ (cond ctx env) [ S.drop ] ], env, 1)
      | 9 when not ctx.pcv_used && P.bool ctx.rng 0.6 ->
          (gen_pcv_loop ctx env, env, 3)
      | 9 when ctx.forks > 0 -> (gen_unroll ctx env, env, 2)
      | _ ->
          let s, env = gen_assign ctx env in
          ([ s ], env, 1)
    in
    stmts @ block ctx env (budget - used)

let final_return ctx env =
  match P.below ctx.rng 3 with
  | 0 -> S.drop
  | 1 -> S.flood
  | _ -> S.forward (E.Binop (E.And, expr ctx env 1, E.Const 3))

let program ?(max_stmts = 10) rng =
  let ctx = { rng; next_var = 0; next_loop = 0; forks = 6; pcv_used = false } in
  let name = Printf.sprintf "fuzz_%06d" (P.below rng 1_000_000) in
  let env = Ir.Program.input_vars in
  let body = block ctx env max_stmts in
  Ir.Program.make ~name ~state:[]
    ((S.if_ (E.Binop (E.Lt, E.Pkt_len, E.Const guard_len)) [ S.drop ] []
     :: body)
    @ [ final_return ctx env ])
