(** Seeded generators for packets and per-NF workload streams.

    These are the fuzzing counterparts of {!Workload.Gen}'s curated
    generators: they mix well-formed traffic for a given NF with
    malformed inputs — truncated buffers, non-IP frames, byte-mutated
    headers — that a conservative contract must still bound (invalid
    packets are an input class too, paper §2.1). *)

val packet : Workload.Prng.t -> Net.Packet.t
(** An arbitrary packet: valid UDP/TCP, IPv4 with options, non-IP,
    raw random bytes (possibly shorter than a minimal header), or a
    byte-mutated variant of any of these. *)

val entry : Workload.Prng.t -> now:int -> Net.Packet.t -> Workload.Stream.entry
(** Wrap a packet with a random ingress port. *)

val stream_for :
  Workload.Prng.t -> nf:string -> packets:int -> Workload.Stream.t
(** A random timed stream shaped for the named {!Nf.Registry} entry:
    churned flows for the flow-table NFs, L2 frames for the bridge,
    flows plus heartbeats for maglev, routed destinations for the
    routers, option-bearing IPv4 for the static router — each laced
    with invalid and (where safe) mutated packets. *)
