let int ~lo x =
  if x <= lo then []
  else
    let rec steps acc v =
      (* binary steps from lo back up towards x *)
      if v >= x then List.rev acc
      else steps (v :: acc) (v + max 1 ((x - v) / 2))
    in
    steps [] lo

let take n xs = List.filteri (fun i _ -> i < n) xs
let drop n xs = List.filteri (fun i _ -> i >= n) xs

let remove_slice i k xs =
  List.filteri (fun j _ -> j < i || j >= i + k) xs

let list xs =
  let n = List.length xs in
  if n = 0 then []
  else
    let halves =
      if n >= 2 then [ take (n / 2) xs; drop (n / 2) xs ] else []
    in
    let chunk = max 1 (n / 8) in
    let chunks =
      if n > 2 then
        List.init ((n + chunk - 1) / chunk) (fun i ->
            remove_slice (i * chunk) chunk xs)
      else []
    in
    let singles =
      if n <= 40 then List.init n (fun i -> remove_slice i 1 xs) else []
    in
    halves @ chunks @ singles

let sequence ?shrink_cmd cmds =
  let structural = list cmds in
  let pointwise =
    match shrink_cmd with
    | None -> []
    | Some sc when List.length cmds <= 20 ->
        List.concat
          (List.mapi
             (fun i c ->
               List.map
                 (fun c' ->
                   List.mapi (fun j cj -> if i = j then c' else cj) cmds)
                 (sc c))
             cmds)
    | Some _ -> []
  in
  structural @ pointwise

let minimize ?(max_evals = 500) ~still_fails ~candidates x =
  let evals = ref 0 in
  let rec first_failing = function
    | [] -> None
    | c :: rest ->
        if !evals >= max_evals then None
        else begin
          incr evals;
          if still_fails c then Some c else first_failing rest
        end
  in
  let rec go x steps =
    if !evals >= max_evals then (x, steps)
    else
      match first_failing (candidates x) with
      | Some c -> go c (steps + 1)
      | None -> (x, steps)
  in
  go x 0
