(** Differential oracles over the repo's core invariants.

    An oracle is a named, seeded property: it draws a random subject
    (a registry NF with a generated workload, or a wholly generated IR
    program with generated packets), exercises it, and checks one
    invariant the rest of the system relies on:

    - {b conservativeness} — every packet's metered cost is bounded by
      the contract's worst case evaluated at that packet's own PCVs
      (paper §2.2, the defining guarantee);
    - {b jobs-determinism} — [analyze] output is bit-identical at
      [jobs:1] and [jobs:n];
    - {b cache-equivalence} — solver verdicts are identical with the
      cache disabled, enabled, and capacity-starved into eviction churn;
    - {b obs-neutrality} — contract output is unchanged by tracing;
    - {b concrete-symbex-agreement} — on a fully-concrete packet the
      symbolic engine, the fidelity-checked replay and the direct
      interpreter (all instances of one {!Ir.Eval} walker) agree on
      path count, outcome and IC/MA;
    - {b compiled-interp-agreement} — the closure-compiled executor
      ({!Exec.Compiled}) is bit-identical to the interpreter over whole
      streams (outcome, IC/MA/cycles, observations, traced events,
      packet bytes, Stuck messages), the config-specialized executor
      ({!Exec.Specialize}) agrees packet for packet on the same stream
      (Stuck packets by message — charge equivalence), and on stateless
      subjects the fidelity replay reproduces the compiled run's IC/MA.

    On failure the counterexample is shrunk ({!Shrink}) before being
    reported, and the report carries a runnable repro command.

    Each constructor takes optional fault-injection hooks (a weakened
    bound, a substituted analyze or cached-check function).  They
    default to the real implementations; regression tests use them to
    prove each oracle actually catches the class of bug it exists
    for. *)

type failure = {
  oracle : string;
  seed : int;
  detail : string;  (** multi-line human description, shrunk repro inside *)
  repro : string;  (** runnable command replaying exactly this failure *)
}

type verdict = Pass | Fail of failure

type t = { name : string; run : seed:int -> verdict }

val conservativeness :
  ?weaken:(Perf.Cost_vec.t -> Perf.Cost_vec.t) -> unit -> t
(** [weaken] post-processes the analysed worst-case bound (default
    identity); tests pass a deliberately-too-small bound. *)

val jobs_determinism :
  ?analyze:(config:Bolt.Pipeline.Config.t -> Ir.Program.t -> Bolt.Pipeline.t) ->
  unit ->
  t

val cache_equivalence :
  ?check_cached:(Solver.Constr.t list -> Solver.Solve.result) -> unit -> t
(** [check_cached] is the memoized solve under test (default
    {!Solver.Cache.check}); tests substitute one that returns stale
    verdicts. *)

val obs_neutrality :
  ?analyze:(config:Bolt.Pipeline.Config.t -> Ir.Program.t -> Bolt.Pipeline.t) ->
  unit ->
  t

val concrete_symbex_agreement :
  ?explore:
    (concrete:Net.Packet.t * int * int ->
    models:Symbex.Model.registry ->
    Ir.Program.t ->
    Symbex.Engine.result) ->
  unit ->
  t
(** Symbolic execution over a fully-concrete packet must agree with the
    direct interpreter: exactly one feasible path (none iff the
    interpreter is stuck), the same outcome kind, and a fidelity-checked
    replay of the path with identical IC and MA — both sides are
    instances of the same {!Ir.Eval} walker, so any disagreement is a
    bug in one of the domains.  [explore] substitutes the engine under
    test (default {!Symbex.Engine.explore}); tests pass one that
    tampers with the returned path's assumed decisions. *)

val compiled_interp_agreement :
  ?compile:(Ir.Program.t -> Exec.Compiled.t) ->
  ?specialize:
    (Exec.Compiled.t ->
    meter:Exec.Meter.t ->
    mode:Exec.Interp.mode ->
    Exec.Specialize.t) ->
  unit ->
  t
(** The compiled hot path and the interpreter must tell bit-for-bit the
    same story on any subject and stream — outcome, IC, MA, cycles, PCV
    observations, the full traced event list and the final packet
    bytes, with Stuck runs matching message for message.  A further leg
    binds the compiled program to the frozen configuration
    ({!Exec.Specialize.bind}) and replays the same stream through the
    specialized closures on an untraced meter, comparing outcome,
    costs, observations and packet bytes per packet (Stuck packets by
    message — the charge-equivalence contract, DESIGN §12).  Registry
    subjects get one fresh data-structure environment per engine so
    state evolves independently but identically.  [compile] substitutes
    the compiler under test (default {!Exec.Compiled.compile}) and
    [specialize] the specializer (default {!Exec.Specialize.bind});
    tests pass ones that compile or bind a tampered program. *)

val stateful_model : ?tamper:(int list -> int list) -> Stateful.t -> t
(** Model-agreement oracle for one stateful case
    ([stateful_<case>_model]): generate a command sequence, replay it
    against the real structure and its {!Fake} side by side, fail on the
    first observable disagreement, shrinking the sequence to a minimal
    replayable trace.  [tamper] corrupts the real structure's replies
    before the comparison (default: identity) — the fault-injection hook
    the catch tests use. *)

val stateful_bounds : ?weaken:(Perf.Cost_vec.t -> Perf.Cost_vec.t) -> Stateful.t -> t
(** Contract-bounds oracle for one stateful case
    ([stateful_<case>_bounds]): the structure's [Perf.Ds_contract]
    branch for the taken path must upper-bound the metered cost of every
    command in the sequence — expiry storms, rehash cliffs and allocator
    exhaustion included.  [weaken] shrinks the branch cost before the
    check (default: identity) — the fault-injection hook. *)

val stateful : unit -> t list
(** Both stateful oracles for every {!Stateful.all} case (20 oracles). *)

val stateful_names : unit -> string list

val all : unit -> t list
(** The six stateless oracles with their real implementations (the
    default [bolt fuzz] set; stateful oracles are opted into with
    [--stateful]). *)

val names : unit -> string list

val find : string -> t
(** Looks up stateless and stateful oracles by name; raises
    [Invalid_argument] listing the known names on a miss. *)
