(** Stateful model-based fuzzing of the dslib structures.

    A {!t} packages one structure as a command-sequence generator plus a
    replay engine that executes the sequence against the real (metered)
    structure and a purely-functional {!Fake} side by side, reporting
    the first violation of either property:

    - {e model agreement} — every observable reply matches the fake;
    - {e contract bounds} — the [Perf.Ds_contract] branch for the taken
      path upper-bounds the metered cost of every command, at a binding
      built from the PCVs that command observed (expiry storms and
      rehash cliffs included).

    {!Oracle.stateful_model} and {!Oracle.stateful_bounds} wrap these as
    fuzz oracles with shrinking to a minimal replayable trace. *)

(** One command, carrying concrete arguments so a printed trace is
    replayable verbatim.  The vocabulary is shared across cases; each
    case's generator emits only its own constructors. *)
type cmd =
  | H_get of int array
  | H_put of int array * int
  | H_remove of int array
  | F_get of int array * int
  | F_put of int array * int * int
  | F_expire of int
  | M_learn of { mac : int; port : int; now : int }
  | M_lookup of int
  | M_expire of int
  | N_add of int array * int
  | N_lookup_int of int array * int
  | N_lookup_ext of int * int
  | N_expire of int
  | T_conform of { bytes : int; now : int }
  | P_alloc
  | P_free of int
  | L_route of { prefix : int; len : int; port : int }
  | L_lookup of int

val pp_cmd : Format.formatter -> cmd -> unit
val pp_trace : Format.formatter -> cmd list -> unit
(** Numbered, one command per line — the replayable counterexample. *)

val shrink_cmd : cmd -> cmd list
(** Pointwise argument shrinks (values, byte counts); keys and clocks
    are left alone.  Feed to {!Shrink.sequence}. *)

type hooks = {
  tamper : int list -> int list;
      (** Fault-injection: corrupts the real structure's observable
          reply before the model comparison.  Identity in production. *)
  weaken : Perf.Cost_vec.t -> Perf.Cost_vec.t;
      (** Fault-injection: weakens the contract branch before the bound
          check.  Identity in production. *)
}

val no_hooks : hooks

type outcome = {
  model_error : string option;  (** first disagreement with the fake *)
  bounds_error : string option;  (** first contract-bound violation *)
}

type t = {
  name : string;
  gen : Workload.Prng.t -> cmd list;
  run : hooks -> cmd list -> outcome;
}

val all : unit -> t list
(** The ten cases: [hash_map], [flow_table], [mac_table], [nat_dll],
    [nat_array], [token_bucket], [port_dll], [port_array], [lpm_trie],
    [lpm_dir24_8]. *)

val find : string -> t option
