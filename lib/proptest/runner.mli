(** The fuzz driver behind [bolt fuzz].

    Runs a set of {!Oracle}s for [runs] rounds.  Round [i] derives its
    sub-seed deterministically from the master seed, so the whole
    campaign — subjects drawn, workloads generated, shrunk
    counterexamples — is a pure function of [(seed, runs, oracles)]:
    the repro command printed with a failure replays exactly that
    failure. *)

type outcome = {
  seed : int;
  runs : int;  (** rounds executed (each round runs every oracle once) *)
  checks : int;  (** total oracle executions *)
  failures : Oracle.failure list;  (** in discovery order *)
}

val sub_seeds : seed:int -> runs:int -> int list
(** The per-round seeds derived from the master seed (splitmix stream,
    so neighbouring master seeds give unrelated campaigns). *)

val run :
  ?log:(string -> unit) ->
  seed:int ->
  runs:int ->
  oracles:Oracle.t list ->
  unit ->
  outcome
(** Execute the campaign.  [log] (default: silent) receives one line
    per failure as it is found and occasional progress lines. *)

val pp_failure : Format.formatter -> Oracle.failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit
(** Summary table: checks per oracle, failures with repro commands. *)
