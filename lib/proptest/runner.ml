type outcome = {
  seed : int;
  runs : int;
  checks : int;
  failures : Oracle.failure list;
}

(* Round 0 runs at the master seed itself — that is what makes the
   printed repro (`--seed <sub> --runs 1`) replay a failure exactly —
   and later rounds draw their seeds from a PRNG stream, so they are
   deterministic but unrelated across rounds. *)
let sub_seeds ~seed ~runs =
  if runs <= 0 then []
  else
    let rng = Workload.Prng.create ~seed in
    seed :: List.init (runs - 1) (fun _ -> Workload.Prng.next rng land 0x3fffffff)

let run ?(log = fun _ -> ()) ~seed ~runs ~oracles () =
  let checks = ref 0 in
  let failures = ref [] in
  List.iteri
    (fun round sub ->
      if runs > 20 && round mod 20 = 0 && round > 0 then
        log (Printf.sprintf "... round %d/%d" round runs);
      List.iter
        (fun (o : Oracle.t) ->
          incr checks;
          match o.Oracle.run ~seed:sub with
          | Oracle.Pass -> ()
          | Oracle.Fail f ->
              failures := f :: !failures;
              log
                (Printf.sprintf "FAIL %s seed %d\n  repro: %s"
                   f.Oracle.oracle f.Oracle.seed f.Oracle.repro))
        oracles)
    (sub_seeds ~seed ~runs);
  { seed; runs; checks = !checks; failures = List.rev !failures }

let pp_failure ppf (f : Oracle.failure) =
  Format.fprintf ppf "@[<v2>FAIL %s seed %d@,%a@,repro: %s@]" f.Oracle.oracle
    f.Oracle.seed
    (Format.pp_print_list Format.pp_print_string)
    (String.split_on_char '\n' f.Oracle.detail)
    f.Oracle.repro

let pp_outcome ppf o =
  Format.fprintf ppf "fuzz campaign: seed %d, %d rounds, %d oracle checks@."
    o.seed o.runs o.checks;
  match o.failures with
  | [] -> Format.fprintf ppf "no counterexamples found.@."
  | fs ->
      Format.fprintf ppf "%d counterexample(s):@.@." (List.length fs);
      List.iter (fun f -> Format.fprintf ppf "%a@.@." pp_failure f) fs
