(* Purely functional reference models ("fakes") for the dslib
   structures — the model side of the stateful fuzzer ({!Stateful}).

   Each fake is deliberately naive: assoc lists, linear scans, no
   addresses, no costs.  Its correctness is meant to be evident by
   inspection, which is what makes it usable as an oracle — the real
   structure is replayed against it command by command and must agree
   on every observable reply.  The fakes mirror the *semantics* of
   dslib exactly, including the deliberate quirks: LRU-ordered expiry
   over quantized timestamps (the VigNAT granularity bug knob), the
   refresh a flow-table hit performs, the token bucket's clamped
   refill, the NAT's port rollback when the flow table is full.

   Allocator fakes are output-following: a port allocator is free to
   hand out any free port (the dll and array backends pick different
   ones), so the model does not predict WHICH port comes back — it
   validates that the reply is legal (fresh, in range, and -1 exactly
   when the range is exhausted) and then adopts it.  This is the
   standard treatment of nondeterminism in model-based testing. *)

(* ---- Raw hash map ---------------------------------------------------- *)

module Table = struct
  type t = { capacity : int; entries : (int array * int) list }

  type put_result = Inserted | Updated | Full

  let create ~capacity = { capacity; entries = [] }
  let size t = List.length t.entries
  let mem t key = List.exists (fun (k, _) -> k = key) t.entries

  let get t key =
    Option.map snd (List.find_opt (fun (k, _) -> k = key) t.entries)

  let put t key value =
    if mem t key then
      ( {
          t with
          entries =
            List.map
              (fun (k, v) -> if k = key then (k, value) else (k, v))
              t.entries;
        },
        Updated )
    else if size t >= t.capacity then (t, Full)
    else ({ t with entries = t.entries @ [ (key, value) ] }, Inserted)

  let remove t key =
    if mem t key then
      ({ t with entries = List.filter (fun (k, _) -> k <> key) t.entries }, true)
    else (t, false)
end

(* ---- Flow table (and, via key_len 1, the MAC table) ------------------- *)

module Flow = struct
  type entry = { key : int array; value : int; stamp : int }

  (* [entries] in LRU order, oldest first — expiry pops from the front
     and stops at the first survivor, exactly like the real table. *)
  type t = {
    capacity : int;
    timeout : int;
    granularity : int;
    entries : entry list;
  }

  type put_result = Inserted | Updated | Full

  let create ~capacity ~timeout ~granularity =
    { capacity; timeout; granularity; entries = [] }

  let size t = List.length t.entries
  let stamp t now = now / t.granularity * t.granularity
  let mem t key = List.exists (fun e -> e.key = key) t.entries
  let find t key = List.find_opt (fun e -> e.key = key) t.entries

  let peek t key = Option.map (fun e -> e.value) (find t key)
  (** Uncharged read, no refresh — what [Mac_table.lookup] does. *)

  let drop t key =
    { t with entries = List.filter (fun e -> e.key <> key) t.entries }

  let expire t ~now =
    (* pop expired entries from the LRU head; stop at the first entry
       still inside its timeout (the real loop does not scan past it) *)
    let rec go acc n = function
      | e :: rest when e.stamp + t.timeout <= now ->
          go (e.value :: acc) (n + 1) rest
      | rest -> ({ t with entries = rest }, n, List.rev acc)
    in
    go [] 0 t.entries

  let get t key ~now =
    match find t key with
    | None -> (t, None)
    | Some e ->
        (* a hit refreshes: restamp and move to the LRU tail *)
        let t = drop t key in
        ( { t with entries = t.entries @ [ { e with stamp = stamp t now } ] },
          Some e.value )

  let put t key ~value ~now =
    match find t key with
    | Some _ ->
        let t = drop t key in
        ( { t with entries = t.entries @ [ { key; value; stamp = stamp t now } ] },
          Updated )
    | None ->
        if size t >= t.capacity then (t, Full)
        else
          ( { t with entries = t.entries @ [ { key; value; stamp = stamp t now } ] },
            Inserted )
end

(* ---- Port allocator --------------------------------------------------- *)

module Ports = struct
  type t = { lo : int; hi : int; allocated : int list }

  let create ~lo ~hi = { lo; hi; allocated = [] }
  let capacity t = t.hi - t.lo + 1
  let full t = List.length t.allocated >= capacity t
  let is_allocated t p = List.mem p t.allocated

  (* Validate the real allocator's reply and adopt it. *)
  let alloc t ~returned =
    if returned = -1 then
      if full t then Ok t
      else Error "alloc returned -1 with free ports remaining"
    else if returned < t.lo || returned > t.hi then
      Error (Printf.sprintf "alloc returned out-of-range port %d" returned)
    else if is_allocated t returned then
      Error (Printf.sprintf "alloc returned port %d twice" returned)
    else Ok { t with allocated = returned :: t.allocated }

  (* [free] on an unallocated port must raise in the real structure. *)
  let free t p =
    if is_allocated t p then
      `Freed { t with allocated = List.filter (fun q -> q <> p) t.allocated }
    else `Rejects
end

(* ---- NAT: flow table + reverse port map + allocator ------------------- *)

module Nat = struct
  type t = {
    flows : Flow.t;  (** value = the flow's external port *)
    ports : Ports.t;
    ext : (int * int array) list;  (** external port -> internal flow key *)
  }

  let create ~capacity ~timeout ~granularity ~lo ~hi =
    {
      flows = Flow.create ~capacity ~timeout ~granularity;
      ports = Ports.create ~lo ~hi;
      ext = [];
    }

  let mem t key = Flow.mem t.flows key
  let ports_full t = Ports.full t.ports
  let table_full t = Flow.size t.flows >= t.flows.Flow.capacity

  (* add can only fail for want of a port or of table room; under the
     lookup-then-add discipline allocated ports track live flows 1:1 *)
  let add_should_fail t = ports_full t || table_full t

  let add t key ~now ~returned =
    if returned = -1 then
      if add_should_fail t then Ok t
      else Error "add_int returned -1 with room and ports available"
    else
      match Ports.alloc t.ports ~returned with
      | Error e -> Error e
      | Ok ports ->
          let flows, r = Flow.put t.flows key ~value:returned ~now in
          (match r with
          | Flow.Inserted | Flow.Updated ->
              Ok { flows; ports; ext = (returned, key) :: t.ext }
          | Flow.Full -> Error "add_int succeeded on a full table")

  let lookup_int t key ~now =
    let flows, v = Flow.get t.flows key ~now in
    ({ t with flows }, match v with Some p -> p | None -> -1)

  let lookup_ext t ~port ~now =
    match List.assoc_opt port t.ext with
    | None -> (t, None)
    | Some key ->
        (* a hit refreshes the owning flow entry *)
        let flows, _ = Flow.get t.flows key ~now in
        ({ t with flows }, Some key)

  let expire t ~now =
    let flows, n, freed = Flow.expire t.flows ~now in
    let ports =
      List.fold_left
        (fun ports p ->
          match Ports.free ports p with
          | `Freed ports -> ports
          | `Rejects -> ports (* impossible under the add discipline *))
        t.ports freed
    in
    let ext = List.filter (fun (p, _) -> not (List.mem p freed)) t.ext in
    ({ flows; ports; ext }, n)
end

(* ---- Token bucket ----------------------------------------------------- *)

module Bucket = struct
  type t = { rate : int; burst : int; level : int; last : int }

  let create ~rate ~burst ~now = { rate; burst; level = burst; last = now }

  let refill t ~now =
    if now <= t.last then t
    else
      let delta = now - t.last in
      let level =
        if delta >= (t.burst + t.rate - 1) / t.rate then t.burst
        else min t.burst (t.level + (t.rate * delta))
      in
      { t with level; last = now }

  let conform t ~bytes ~now =
    let t = refill t ~now in
    if bytes <= t.level then ({ t with level = t.level - bytes }, 1)
    else (t, 0)
end

(* ---- LPM (either backend) --------------------------------------------- *)

module Lpm = struct
  type t = { default_port : int; routes : ((int * int) * int) list }

  let create ~default_port = { default_port; routes = [] }

  let add t ~prefix ~len ~port =
    { t with routes = ((prefix, len), port) :: List.remove_assoc (prefix, len) t.routes }

  let matches ~addr ~prefix ~len =
    len = 0 || addr lsr (32 - len) = prefix lsr (32 - len)

  (* longest matching prefix; at most one route of a given length can
     match an address, and [add] dedupes (prefix, len) pairs *)
  let lookup t addr =
    List.fold_left
      (fun (best_len, best_port) ((prefix, len), port) ->
        if len > best_len && matches ~addr ~prefix ~len then (len, port)
        else (best_len, best_port))
      (-1, t.default_port) t.routes
    |> snd
end
