module P = Workload.Prng
module G = Workload.Gen

let raw rng =
  (* arbitrary bytes, possibly too short to carry any header *)
  let len = P.below rng 80 in
  let p = Net.Packet.create len in
  for off = 0 to len - 1 do
    Net.Packet.set_u8 p off (P.below rng 256)
  done;
  p

let valid rng =
  match P.below rng 5 with
  | 0 ->
      let f = G.flow rng () in
      Net.Build.udp_of_flow f
  | 1 ->
      Net.Build.tcp ~src_ip:(P.below rng 0x7fffffff)
        ~dst_ip:(P.below rng 0x7fffffff)
        ~src_port:(P.below rng 65536) ~dst_port:(P.below rng 65536) ()
  | 2 -> Net.Build.ipv4_with_options ~options:(P.below rng 11)
           ~src_ip:(P.below rng 0x7fffffff) ~dst_ip:(P.below rng 0x7fffffff) ()
  | 3 -> Net.Build.non_ip ()
  | _ ->
      Net.Build.eth ~src_mac:(G.mac rng) ~dst_mac:(G.mac rng)
        ~ethertype:(P.below rng 65536) ()

let packet rng =
  match P.below rng 4 with
  | 0 -> raw rng
  | 1 -> G.mutate rng (valid rng)
  | _ -> valid rng

let entry rng ~now packet =
  { Workload.Stream.packet; now; in_port = P.below rng 4 }

(* Sprinkle invalid packets into a well-formed stream.  [mutable_hdrs]
   says whether byte mutation is safe for this NF: NFs that pin
   [ihl = 5] (or never index by header contents) tolerate arbitrary
   header bytes; the static router walks [ihl - 5] option slots, so a
   mutated ihl on a short buffer would overrun it. *)
let lace rng ~mutable_hdrs stream =
  List.concat_map
    (fun (e : Workload.Stream.entry) ->
      if P.bool rng 0.08 then
        [ e; { e with packet = Net.Build.non_ip (); in_port = P.below rng 4 } ]
      else if mutable_hdrs && P.bool rng 0.1 then
        [ { e with packet = G.mutate rng e.Workload.Stream.packet } ]
      else [ e ])
    stream

let flows_stream rng ~packets =
  let pool = 4 + P.below rng 28 in
  let churn = float_of_int (P.below rng 90) /. 100. in
  G.churn rng ~pool ~packets ~new_flow_prob:churn
    ~gap:(10 + P.below rng 100)
    ~start:(1_000 + P.below rng 10_000)

let bridge_stream rng ~packets =
  let stations = 2 + P.below rng 14 in
  let macs = List.init stations (fun _ -> G.mac rng) in
  let pick () = List.nth macs (P.below rng stations) in
  List.init packets (fun i ->
      let dst =
        if P.bool rng 0.2 then Net.Ethernet.broadcast_mac
        else if P.bool rng 0.2 then G.mac rng
        else pick ()
      in
      {
        Workload.Stream.packet =
          Net.Build.eth ~src_mac:(pick ()) ~dst_mac:dst
            ~ethertype:Net.Ethernet.ethertype_ipv4 ();
        now = 1_000 + (i * (20 + P.below rng 60));
        in_port = P.below rng 4;
      })

let maglev_stream rng ~packets =
  let flows = G.distinct_flows rng (8 + P.below rng 24) in
  let n = List.length flows in
  List.init packets (fun i ->
      let now = 1_000 + (i * (10 + P.below rng 50)) in
      if P.bool rng 0.12 then
        {
          Workload.Stream.packet =
            List.hd
              (G.heartbeat_frames
                 ~backend_ids:[ P.below rng 16 ]
                 ~port:Nf.Maglev.heartbeat_port);
          now;
          in_port = 1;
        }
      else
        {
          Workload.Stream.packet =
            Net.Build.udp_of_flow (List.nth flows (P.below rng n));
          now;
          in_port = 0;
        })

let router_stream rng ~packets =
  List.init packets (fun i ->
      let dst =
        if P.bool rng 0.5 then
          (* inside the registered 10.0.0.0/16 route *)
          Net.Ipv4.addr_of_parts 10 0 (P.below rng 256) (P.below rng 256)
        else
          Net.Ipv4.addr_of_parts (P.below rng 224) (P.below rng 256)
            (P.below rng 256) (P.below rng 256)
      in
      {
        Workload.Stream.packet =
          Net.Build.udp
            ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 1)
            ~dst_ip:dst
            ~src_port:(1024 + P.below rng 60000)
            ~dst_port:(1 + P.below rng 1023)
            ();
        now = 1_000 + (i * 25);
        in_port = P.below rng 4;
      })

let options_stream rng ~packets =
  List.init packets (fun i ->
      let packet =
        if P.bool rng 0.3 then
          Net.Build.udp ~src_ip:(P.below rng 100000) ~dst_ip:2 ~src_port:3
            ~dst_port:4 ()
        else
          Net.Build.ipv4_with_options
            ~options:(P.below rng 11)
            ~src_ip:(P.below rng 100000)
            ~dst_ip:(P.below rng 1000)
            ()
      in
      { Workload.Stream.packet; now = 1_000 + (i * 40); in_port = P.below rng 4 })

let stream_for rng ~nf ~packets =
  match nf with
  | "bridge" -> lace rng ~mutable_hdrs:true (bridge_stream rng ~packets)
  | "maglev" -> lace rng ~mutable_hdrs:true (maglev_stream rng ~packets)
  | "lpm_router" | "trie_router" ->
      lace rng ~mutable_hdrs:true (router_stream rng ~packets)
  | "static_router" -> lace rng ~mutable_hdrs:false (options_stream rng ~packets)
  | _ ->
      (* nat, conntrack, limiter, policer, firewall, responder, … *)
      lace rng ~mutable_hdrs:true (flows_stream rng ~packets)
