(** Seeded generator of random, valid NF programs.

    Every generated program passes {!Ir.Program.validate} by
    construction: variables are assigned before use on every path, each
    control path ends in [Return], loop bounds are positive and PCV-loop
    names are distinct.  The programs are stateless (no data-structure
    calls), so they can be analysed with the default pipeline config and
    executed in production mode with an empty environment — which is
    exactly what the conservativeness oracle does with them.

    Programs open with the idiomatic [Pkt_len < 34 → drop] guard and
    only touch packet offsets below 34 at constant offsets, so they are
    safe to run on arbitrary buffers, including truncated and mutated
    ones.  PCV-loop bodies are kept straight-line (the per-iteration
    cost is then iteration-invariant, matching the pricing model's
    assumption); [Unroll] loops may branch freely since every trip count
    forks into its own path. *)

val program : ?max_stmts:int -> Workload.Prng.t -> Ir.Program.t
(** A fresh random program ([max_stmts] top-level statement budget,
    default 10).  Deterministic in the PRNG state. *)
