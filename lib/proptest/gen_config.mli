(** Seeded generator of pipeline-configuration knob combinations.

    The differential oracles assert that none of these knobs may change
    analysis output: domain-pool width, path budget, observability, and
    solver-cache capacity are all supposed to be performance knobs, not
    semantics knobs. *)

type t = {
  jobs : int;  (** 1–4 worker domains *)
  max_paths : int;  (** path budget, always comfortably above real usage *)
  obs : bool;  (** observability runtime on for the run *)
  cache_capacity : int option;
      (** solver-cache bound to apply for the run; [Some 2] starves the
          cache into eviction churn, [None] leaves the default *)
}

val default_cache_capacity : int
(** The solver cache's default bound (32768), restored after starved
    runs. *)

val gen : Workload.Prng.t -> t
val apply : t -> Bolt.Pipeline.Config.t -> Bolt.Pipeline.Config.t
(** Sets [jobs], [max_paths] and [obs] (cache capacity is process-global
    state — the oracles install and restore it themselves, see
    {!with_cache_capacity}). *)

val with_cache_capacity : t -> (unit -> 'a) -> 'a
(** Run the thunk under [cache_capacity] (if any), restoring the default
    capacity afterwards even on exceptions. *)

val describe : t -> string
