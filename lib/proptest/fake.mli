(** Purely functional reference models for the dslib structures — the
    model side of the stateful fuzzer ({!Stateful}).

    Each fake is an assoc-list-simple executable spec whose correctness
    is evident by inspection.  The real structure is replayed against it
    command by command ({!Oracle.stateful_model}) and must agree on every
    observable reply.

    Allocator fakes are output-following: they do not predict {e which}
    free port the real allocator picks (dll and array backends differ),
    they validate that the reply is legal — fresh, in range, [-1] exactly
    on exhaustion — and adopt it. *)

(** Model of the raw {!Dslib.Hash_map}. *)
module Table : sig
  type t

  type put_result = Inserted | Updated | Full

  val create : capacity:int -> t
  val size : t -> int
  val mem : t -> int array -> bool
  val get : t -> int array -> int option
  val put : t -> int array -> int -> t * put_result
  val remove : t -> int array -> t * bool
end

(** Model of {!Dslib.Flow_table} — LRU order, quantized stamps,
    head-stopping expiry, refresh-on-hit.  With [key_len] 1 it also
    models the MAC table's learn/lookup/expire. *)
module Flow : sig
  type t

  type put_result = Inserted | Updated | Full

  val create : capacity:int -> timeout:int -> granularity:int -> t
  val size : t -> int
  val mem : t -> int array -> bool

  val peek : t -> int array -> int option
  (** Find without refreshing — what [Mac_table.lookup] does. *)

  val expire : t -> now:int -> t * int * int list
  (** [(t', count, values)] — [values] are the expired entries' values in
      expiry order (the NAT fake frees these ports). *)

  val get : t -> int array -> now:int -> t * int option
  val put : t -> int array -> value:int -> now:int -> t * put_result
end

(** Model of {!Dslib.Port_alloc}, either backend. *)
module Ports : sig
  type t

  val create : lo:int -> hi:int -> t
  val full : t -> bool
  val is_allocated : t -> int -> bool

  val alloc : t -> returned:int -> (t, string) result
  (** Validate and adopt the real allocator's reply. *)

  val free : t -> int -> [ `Freed of t | `Rejects ]
  (** [`Rejects] when the real structure must raise [Invalid_argument]. *)
end

(** Model of {!Dslib.Nat_table}: flow table whose values are external
    ports, a reverse port map, and a port allocator kept in lock-step
    with expiry. *)
module Nat : sig
  type t

  val create :
    capacity:int -> timeout:int -> granularity:int -> lo:int -> hi:int -> t

  val mem : t -> int array -> bool

  val ports_full : t -> bool
  val table_full : t -> bool

  val add_should_fail : t -> bool
  (** Ports exhausted or flow table full — the only legal reasons for
      [add_int] to return -1. *)

  val add : t -> int array -> now:int -> returned:int -> (t, string) result
  (** Validate and adopt the real [add_int] reply ([returned] = external
      port or -1).  Only call when [mem] is false — the generator keeps
      the NF's lookup-then-add discipline. *)

  val lookup_int : t -> int array -> now:int -> t * int
  val lookup_ext : t -> port:int -> now:int -> t * int array option
  val expire : t -> now:int -> t * int
end

(** Model of {!Dslib.Token_bucket} with the clamped refill. *)
module Bucket : sig
  type t

  val create : rate:int -> burst:int -> now:int -> t
  val conform : t -> bytes:int -> now:int -> t * int
end

(** Model of both LPM backends: longest-prefix match over an assoc list
    of (prefix, len) routes. *)
module Lpm : sig
  type t

  val create : default_port:int -> t
  val add : t -> prefix:int -> len:int -> port:int -> t
  val lookup : t -> int -> int
end
