(* Stateful model-based fuzzing of the dslib structures (the Rewbert
   recipe: generate a command sequence, replay it against the real
   structure and a purely-functional fake, compare observable replies at
   every step).

   Each {!case} packages one structure: a command generator and a [run]
   function that replays a command list and reports the first violation
   of either property —

   - {e model agreement}: every observable reply matches the {!Fake};
   - {e contract bounds}: the structure's [Perf.Ds_contract] branch for
     the taken path upper-bounds the metered cost of the command, at a
     binding built from the PCVs the command observed.

   The two properties are surfaced as separate oracles
   ({!Oracle.stateful_model} / {!Oracle.stateful_bounds}); both share
   this replay engine, and each carries a fault-injection hook ([tamper]
   corrupts the real structure's replies before the comparison, [weaken]
   shrinks the contract branch before the bound check) so the catch
   tests can prove the oracles detect what they claim to. *)

module P = Workload.Prng

(* ---- Commands --------------------------------------------------------- *)

(* One flat command vocabulary across all cases; each case's generator
   emits only its own constructors.  Commands carry concrete arguments
   (keys, clocks), so a printed trace is replayable verbatim. *)
type cmd =
  | H_get of int array
  | H_put of int array * int
  | H_remove of int array
  | F_get of int array * int
  | F_put of int array * int * int
  | F_expire of int
  | M_learn of { mac : int; port : int; now : int }
  | M_lookup of int
  | M_expire of int
  | N_add of int array * int
  | N_lookup_int of int array * int
  | N_lookup_ext of int * int
  | N_expire of int
  | T_conform of { bytes : int; now : int }
  | P_alloc
  | P_free of int
  | L_route of { prefix : int; len : int; port : int }
  | L_lookup of int

let pp_key ppf k =
  Format.fprintf ppf "[%s]"
    (String.concat "," (List.map string_of_int (Array.to_list k)))

let pp_cmd ppf = function
  | H_get k -> Format.fprintf ppf "get %a" pp_key k
  | H_put (k, v) -> Format.fprintf ppf "put %a <- %d" pp_key k v
  | H_remove k -> Format.fprintf ppf "remove %a" pp_key k
  | F_get (k, now) -> Format.fprintf ppf "get %a @@ %d" pp_key k now
  | F_put (k, v, now) -> Format.fprintf ppf "put %a <- %d @@ %d" pp_key k v now
  | F_expire now | M_expire now | N_expire now ->
      Format.fprintf ppf "expire @@ %d" now
  | M_learn { mac; port; now } ->
      Format.fprintf ppf "learn mac:%d port:%d @@ %d" mac port now
  | M_lookup mac -> Format.fprintf ppf "lookup mac:%d" mac
  | N_add (k, now) -> Format.fprintf ppf "add_int %a @@ %d" pp_key k now
  | N_lookup_int (k, now) ->
      Format.fprintf ppf "lookup_int %a @@ %d" pp_key k now
  | N_lookup_ext (p, now) -> Format.fprintf ppf "lookup_ext %d @@ %d" p now
  | T_conform { bytes; now } ->
      Format.fprintf ppf "conform bytes:%d @@ %d" bytes now
  | P_alloc -> Format.fprintf ppf "alloc"
  | P_free p -> Format.fprintf ppf "free %d" p
  | L_route { prefix; len; port } ->
      Format.fprintf ppf "route 0x%x/%d -> %d" prefix len port
  | L_lookup a -> Format.fprintf ppf "lookup 0x%x" a

let pp_trace ppf cmds =
  List.iteri (fun i c -> Format.fprintf ppf "  %2d: %a@\n" i pp_cmd c) cmds

(* Pointwise argument shrinks (the structural list shrinks live in
   {!Shrink.sequence}).  Keys and clocks are left alone — clocks must
   stay monotone and key identity is usually the point. *)
let shrink_cmd c =
  let few xs = List.filteri (fun i _ -> i < 3) xs in
  match c with
  | H_put (k, v) -> few (List.map (fun v -> H_put (k, v)) (Shrink.int ~lo:0 v))
  | F_put (k, v, now) ->
      few (List.map (fun v -> F_put (k, v, now)) (Shrink.int ~lo:0 v))
  | M_learn { mac; port; now } ->
      few
        (List.map (fun port -> M_learn { mac; port; now }) (Shrink.int ~lo:0 port))
  | T_conform { bytes; now } ->
      few
        (List.map
           (fun bytes -> T_conform { bytes; now })
           (Shrink.int ~lo:0 bytes))
  | P_free p -> few (List.map (fun p -> P_free p) (Shrink.int ~lo:0 p))
  | L_lookup a -> few (List.map (fun a -> L_lookup a) (Shrink.int ~lo:0 a))
  | _ -> []

(* ---- Replay engine ---------------------------------------------------- *)

type hooks = {
  tamper : int list -> int list;
      (** Applied to the real structure's observable reply before the
          model comparison — identity in production. *)
  weaken : Perf.Cost_vec.t -> Perf.Cost_vec.t;
      (** Applied to the contract branch before the bound check —
          identity in production. *)
}

let no_hooks = { tamper = (fun o -> o); weaken = (fun c -> c) }

type outcome = {
  model_error : string option;
  bounds_error : string option;
}

type t = {
  name : string;
  gen : P.t -> cmd list;
  run : hooks -> cmd list -> outcome;
}

(* One executed command, as reported by a case's [exec]:
   [raw_obs] is the real structure's observable reply; [finish] receives
   the (possibly tampered) reply, commits the fake transition and
   returns a disagreement message if any; [bounds] names the contract
   branch the command took — [(meth, tag, binding overrides)] — or
   [None] for commands outside the contract (config-time route installs,
   updates the flow-table contract deliberately has no branch for). *)
type step = {
  raw_obs : int list;
  finish : int list -> string option;
  bounds : (string * string * (Perf.Pcv.t * int) list) option;
}

type stepr = Skip | Step of step

let pp_ints ppf xs =
  Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int xs))

let expect expected got =
  if got = expected then None
  else
    Some
      (Format.asprintf "real replied %a, model expected %a" pp_ints got
         pp_ints expected)

let drive ~ds_kind ~contracts ~hooks ~exec cmds =
  let lib = Perf.Ds_contract.library contracts in
  let meter = Exec.Meter.create (Hw.Model.conservative ()) in
  let model_error = ref None and bounds_error = ref None in
  List.iteri
    (fun stepi cmd ->
      if !model_error = None || !bounds_error = None then begin
        Exec.Meter.reset_observations meter;
        let ic0 = Exec.Meter.ic meter
        and ma0 = Exec.Meter.ma meter
        and cy0 = Exec.Meter.cycles meter in
        match exec meter cmd with
        | Skip -> ()
        | Step { raw_obs; finish; bounds } ->
            let ic = Exec.Meter.ic meter - ic0
            and ma = Exec.Meter.ma meter - ma0
            and cycles = Exec.Meter.cycles meter - cy0 in
            (match finish (hooks.tamper raw_obs) with
            | Some msg when !model_error = None ->
                model_error :=
                  Some (Format.asprintf "step %d: %a — %s" stepi pp_cmd cmd msg)
            | _ -> ());
            (match bounds with
            | Some (meth, tag, overrides) when !bounds_error = None ->
                let contract =
                  Perf.Ds_contract.find_exn lib ~ds_kind ~meth
                in
                let branch =
                  Perf.Ds_contract.find_branch_exn contract ~tag
                in
                let cost = hooks.weaken branch.Perf.Ds_contract.cost in
                let pcv_max = Exec.Meter.pcv_max meter in
                let binding =
                  List.map
                    (fun pcv ->
                      let v =
                        match List.assoc_opt pcv overrides with
                        | Some v -> v
                        | None ->
                            Option.value (Perf.Pcv.lookup pcv_max pcv)
                              ~default:0
                      in
                      (pcv, v))
                    (Perf.Cost_vec.pcvs cost)
                in
                let check metric measured =
                  let bound = Perf.Cost_vec.eval_exn binding cost metric in
                  if bound < measured && !bounds_error = None then
                    bounds_error :=
                      Some
                        (Format.asprintf
                           "step %d: %a — %s.%s/%s %s bound %d < measured \
                            %d at %a"
                           stepi pp_cmd cmd ds_kind meth tag
                           (Perf.Metric.to_string metric)
                           bound measured Perf.Pcv.pp_binding binding)
                in
                check Perf.Metric.Instructions ic;
                check Perf.Metric.Memory_accesses ma;
                check Perf.Metric.Cycles cycles
            | _ -> ())
      end)
    cmds;
  { model_error = !model_error; bounds_error = !bounds_error }

(* Monotone command clock: small steps with occasional expiry storms. *)
let clock rng ~step ~storm =
  let now = ref 0 in
  fun () ->
    (if P.bool rng 0.12 then now := !now + storm + P.below rng storm
     else now := !now + P.below rng step);
    !now

let gen_length rng = 5 + P.below rng 35

(* ---- Case: raw hash map ----------------------------------------------- *)

let hash_case =
  let key_len = 2 and capacity = 24 and buckets = 8 in
  let base = 0x5100_0000 in
  let gen rng =
    let key () = [| P.below rng 24; P.below rng 4 |] in
    List.init (gen_length rng) (fun _ ->
        match P.below rng 10 with
        | 0 | 1 | 2 -> H_get (key ())
        | 3 | 4 | 5 | 6 -> H_put (key (), P.below rng 100)
        | _ -> H_remove (key ()))
  in
  let run hooks cmds =
    let map =
      Dslib.Hash_map.create ~base ~key_len ~capacity ~buckets ()
    in
    let fake = ref (Fake.Table.create ~capacity) in
    drive ~ds_kind:"hash_map"
      ~contracts:(Dslib.Hash_map.Recipe.contract ~key_len)
      ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | H_get key ->
            let probe = Dslib.Hash_map.get map meter key in
            let hit = probe.Dslib.Hash_map.result >= 0 in
            let obs =
              if hit then
                [ 1; Dslib.Hash_map.value_of map meter probe.Dslib.Hash_map.result ]
              else [ 0 ]
            in
            let expected =
              match Fake.Table.get !fake key with
              | Some v -> [ 1; v ]
              | None -> [ 0 ]
            in
            Step
              {
                raw_obs = obs;
                finish = expect expected;
                bounds = Some ("get", (if hit then "hit" else "miss"), []);
              }
        | H_put (key, v) ->
            let present = Fake.Table.mem !fake key in
            let probe = Dslib.Hash_map.put map meter key v in
            let ok = probe.Dslib.Hash_map.result >= 0 in
            let fake', r = Fake.Table.put !fake key v in
            let expected =
              match r with Fake.Table.Full -> [ 0 ] | _ -> [ 1 ]
            in
            let tag = if not ok then "full" else if present then "update" else "new" in
            Step
              {
                raw_obs = [ (if ok then 1 else 0) ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect expected obs);
                bounds = Some ("put", tag, []);
              }
        | H_remove key ->
            let probe = Dslib.Hash_map.remove map meter key in
            let found = probe.Dslib.Hash_map.result >= 0 in
            let fake', removed = Fake.Table.remove !fake key in
            Step
              {
                raw_obs = [ (if found then 1 else 0) ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [ (if removed then 1 else 0) ] obs);
                bounds = Some ("remove", (if found then "found" else "absent"), []);
              }
        | _ -> Skip)
  in
  { name = "hash_map"; gen; run }

(* ---- Case: flow table ------------------------------------------------- *)

let flow_case =
  let key_len = 2 and capacity = 16 and buckets = 4 in
  let timeout = 64 and granularity = 8 in
  let base = 0x5200_0000 in
  let gen rng =
    let now = clock rng ~step:16 ~storm:timeout in
    let key () = [| P.below rng 16; P.below rng 3 |] in
    List.init (gen_length rng) (fun _ ->
        let t = now () in
        match P.below rng 10 with
        | 0 | 1 | 2 -> F_get (key (), t)
        | 3 | 4 | 5 | 6 | 7 -> F_put (key (), P.below rng 100, t)
        | _ -> F_expire t)
  in
  let run hooks cmds =
    let ft =
      Dslib.Flow_table.create ~base ~key_len ~capacity ~buckets ~timeout
        ~granularity ()
    in
    let fake = ref (Fake.Flow.create ~capacity ~timeout ~granularity) in
    drive ~ds_kind:"flow_table"
      ~contracts:(Dslib.Flow_table.Recipe.contract ~key_len ())
      ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | F_get (key, now) ->
            let r = Dslib.Flow_table.get ft meter key ~now in
            let fake', e = Fake.Flow.get !fake key ~now in
            let obs = match r with Some v -> [ 1; v ] | None -> [ 0 ] in
            let expected = match e with Some v -> [ 1; v ] | None -> [ 0 ] in
            Step
              {
                raw_obs = obs;
                finish =
                  (fun obs ->
                    fake := fake';
                    expect expected obs);
                bounds =
                  Some ("get", (if r <> None then "hit" else "miss"), []);
              }
        | F_put (key, v, now) ->
            let present = Fake.Flow.mem !fake key in
            let idx = Dslib.Flow_table.put ft meter key ~value:v ~now in
            let fake', r = Fake.Flow.put !fake key ~value:v ~now in
            let expected =
              match r with Fake.Flow.Full -> [ 0 ] | _ -> [ 1 ]
            in
            Step
              {
                raw_obs = [ (if idx >= 0 then 1 else 0) ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect expected obs);
                bounds =
                  (* the contract has no update branch: updates are the
                     refresh the NFs do via [get], so only check
                     fresh-insert and full outcomes *)
                  (if present then None
                   else Some ("put", (if idx >= 0 then "ok" else "full"), []));
              }
        | F_expire now ->
            let n = Dslib.Flow_table.expire ft meter ~now in
            let fake', en, _ = Fake.Flow.expire !fake ~now in
            Step
              {
                raw_obs = [ n ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [ en ] obs);
                bounds = Some ("expire", "expire", []);
              }
        | _ -> Skip)
  in
  { name = "flow_table"; gen; run }

(* ---- Case: MAC table (learning bridge) -------------------------------- *)

let mac_case =
  let capacity = 24 and buckets = 4 and timeout = 64 and threshold = 2 in
  let base = 0x5300_0000 in
  let gen rng =
    let now = clock rng ~step:16 ~storm:timeout in
    let mac () = P.below rng 512 in
    List.init (gen_length rng) (fun _ ->
        let t = now () in
        match P.below rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            M_learn { mac = mac (); port = P.below rng 8; now = t }
        | 5 | 6 | 7 -> M_lookup (mac ())
        | _ -> M_expire t)
  in
  let run hooks cmds =
    let mt =
      Dslib.Mac_table.create ~base ~capacity ~buckets ~timeout ~threshold ()
    in
    let fake = ref (Fake.Flow.create ~capacity ~timeout ~granularity:1) in
    drive ~ds_kind:"mac_table"
      ~contracts:(Dslib.Mac_table.Recipe.contract ~buckets ~capacity)
      ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | M_learn { mac; port; now } ->
            let key = [| mac |] in
            let known = Fake.Flow.peek !fake key <> None in
            let full =
              (not known) && Fake.Flow.size !fake >= capacity
            in
            let rc0 = Dslib.Mac_table.rehash_count mt in
            Dslib.Mac_table.learn mt meter ~mac ~port ~now;
            let rehashed = Dslib.Mac_table.rehash_count mt > rc0 in
            let fake', _ = Fake.Flow.put !fake key ~value:port ~now in
            let tag =
              if rehashed then "rehash"
              else if known then "known"
              else if full then "full"
              else "learned"
            in
            let overrides =
              if rehashed then
                (* the reseed's dup-check walks run under the fresh seed,
                   so their lengths are not observed as [t]; chain length
                   is bounded by occupancy, so bind [t] and [o] to the
                   resident-entry count *)
                let o = Dslib.Mac_table.size mt in
                [
                  (Perf.Pcv.occupancy, o);
                  ( Perf.Pcv.traversals,
                    max o (Dslib.Mac_table.last_learn_traversals mt) );
                ]
              else []
            in
            Step
              {
                raw_obs = [];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [] obs);
                bounds = Some ("learn", tag, overrides);
              }
        | M_lookup mac ->
            let p = Dslib.Mac_table.lookup mt meter ~mac in
            let expected =
              match Fake.Flow.peek !fake [| mac |] with
              | Some v -> [ v ]
              | None -> [ -1 ]
            in
            Step
              {
                raw_obs = [ p ];
                finish = expect expected;
                bounds = Some ("lookup", (if p >= 0 then "hit" else "miss"), []);
              }
        | M_expire now ->
            let n = Dslib.Mac_table.expire mt meter ~now in
            let fake', en, _ = Fake.Flow.expire !fake ~now in
            Step
              {
                raw_obs = [ n ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [ en ] obs);
                bounds = Some ("expire", "expire", []);
              }
        | _ -> Skip)
  in
  { name = "mac_table"; gen; run }

(* ---- Case: NAT table + port allocator --------------------------------- *)

let nat_case which =
  let capacity = 8 and buckets = 2 and timeout = 64 and granularity = 4 in
  let port_lo = 1000 in
  (* dll gets more ports than flows so "full" is reachable; array gets
     fewer so "no_port" is *)
  let port_hi, alloc_name, name =
    match which with
    | `Dll -> (1011, "dll", "nat_dll")
    | `Array -> (1005, "array", "nat_array")
  in
  let base = 0x5400_0000 in
  let gen rng =
    let now = clock rng ~step:16 ~storm:timeout in
    let key () =
      [|
        0x0a000000 + P.below rng 4;
        0x30000000 + P.below rng 2;
        P.below rng 2;
        80 + P.below rng 2;
        (if P.bool rng 0.5 then 6 else 17);
      |]
    in
    List.init (gen_length rng) (fun _ ->
        let t = now () in
        match P.below rng 20 with
        | n when n < 7 -> N_add (key (), t)
        | n when n < 13 -> N_lookup_int (key (), t)
        | n when n < 17 ->
            N_lookup_ext (port_lo - 2 + P.below rng (port_hi - port_lo + 5), t)
        | _ -> N_expire t)
  in
  let run hooks cmds =
    let alloc =
      match which with
      | `Dll -> Dslib.Port_alloc.dll ~base:(base + 0x10_0000) ~port_lo ~port_hi
      | `Array ->
          Dslib.Port_alloc.array ~base:(base + 0x10_0000) ~port_lo ~port_hi
    in
    let nat =
      Dslib.Nat_table.create ~base ~capacity ~buckets ~timeout ~granularity
        ~alloc ~port_lo ~port_hi ()
    in
    let fake =
      ref (Fake.Nat.create ~capacity ~timeout ~granularity ~lo:port_lo ~hi:port_hi)
    in
    drive ~ds_kind:"nat_table"
      ~contracts:(Dslib.Nat_table.Recipe.contract ~alloc_name)
      ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | N_add (key, now) ->
            if Fake.Nat.mem !fake key then
              (* the NFs only add after a lookup miss; adding a present
                 key is outside the modelled discipline, so the command
                 is skipped (deterministically, given the prefix) *)
              Skip
            else begin
              let pre = !fake in
              (* the allocator runs first, so its exhaustion decides the
                 branch even when the table is also full *)
              let no_port = Fake.Nat.ports_full pre in
              let p = Dslib.Nat_table.add_int nat meter key ~now in
              let tag =
                if p >= 0 then "ok" else if no_port then "no_port" else "full"
              in
              Step
                {
                  raw_obs = [ p ];
                  finish =
                    (fun obs ->
                      match obs with
                      | [ p ] -> (
                          match Fake.Nat.add pre key ~now ~returned:p with
                          | Ok fake' ->
                              fake := fake';
                              None
                          | Error e -> Some e)
                      | other ->
                          Some
                            (Format.asprintf "malformed add reply %a" pp_ints
                               other));
                  bounds = Some ("add_int", tag, []);
                }
            end
        | N_lookup_int (key, now) ->
            let p = Dslib.Nat_table.lookup_int nat meter key ~now in
            let fake', e = Fake.Nat.lookup_int !fake key ~now in
            Step
              {
                raw_obs = [ p ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [ e ] obs);
                bounds =
                  Some ("lookup_int", (if p >= 0 then "hit" else "miss"), []);
              }
        | N_lookup_ext (port, now) ->
            let h = Dslib.Nat_table.lookup_ext nat meter ~port ~now in
            let obs =
              if h < 0 then [ 0 ]
              else 1 :: Array.to_list (Dslib.Nat_table.flow_key_quiet nat h)
            in
            let fake', e = Fake.Nat.lookup_ext !fake ~port ~now in
            let expected =
              match e with
              | Some key -> 1 :: Array.to_list key
              | None -> [ 0 ]
            in
            Step
              {
                raw_obs = obs;
                finish =
                  (fun obs ->
                    fake := fake';
                    expect expected obs);
                bounds =
                  Some ("lookup_ext", (if h >= 0 then "hit" else "miss"), []);
              }
        | N_expire now ->
            let n = Dslib.Nat_table.expire nat meter ~now in
            let fake', en = Fake.Nat.expire !fake ~now in
            Step
              {
                raw_obs = [ n ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [ en ] obs);
                bounds = Some ("expire", "expire", []);
              }
        | _ -> Skip)
  in
  { name; gen; run }

(* ---- Case: token bucket ----------------------------------------------- *)

let token_case =
  let rate = 3 and burst = 400 in
  let base = 0x5500_0000 in
  let gen rng =
    let now = ref 0 in
    List.init (gen_length rng) (fun _ ->
        (if P.bool rng 0.05 then now := !now + (1 lsl 45)
         else if P.bool rng 0.2 then () (* zero-elapsed re-poll *)
         else now := !now + P.below rng 40);
        let bytes = if P.below rng 10 = 0 then 0 else P.below rng 500 in
        T_conform { bytes; now = !now })
  in
  let run hooks cmds =
    let tb = Dslib.Token_bucket.create ~base ~rate ~burst () in
    let fake = ref (Fake.Bucket.create ~rate ~burst ~now:0) in
    drive ~ds_kind:"token_bucket" ~contracts:Dslib.Token_bucket.Recipe.contract
      ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | T_conform { bytes; now } ->
            let r = Dslib.Token_bucket.conform tb meter ~bytes ~now in
            let fake', e = Fake.Bucket.conform !fake ~bytes ~now in
            Step
              {
                raw_obs = [ r ];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [ e ] obs);
                bounds =
                  Some ("conform", (if r = 1 then "conform" else "exceed"), []);
              }
        | _ -> Skip)
  in
  { name = "token_bucket"; gen; run }

(* ---- Case: port allocator (both backends) ----------------------------- *)

let port_contract alloc =
  let open Perf.Ds_contract in
  [
    make ~ds_kind:"port_alloc" ~meth:"alloc"
      [
        branch ~tag:"ok" ~note:"free port handed out, or -1 on exhaustion"
          (Dslib.Port_alloc.Recipe.alloc_cost alloc);
      ];
    make ~ds_kind:"port_alloc" ~meth:"free"
      [
        branch ~tag:"ok" ~note:"allocated port returned"
          (Dslib.Port_alloc.Recipe.free_cost alloc);
      ];
  ]

let port_case which =
  let port_lo = 100 and port_hi = 115 in
  let base = 0x5600_0000 in
  let name = match which with `Dll -> "port_dll" | `Array -> "port_array" in
  let gen rng =
    List.init (gen_length rng) (fun _ ->
        if P.below rng 10 < 6 then P_alloc
        else P_free (port_lo - 2 + P.below rng (port_hi - port_lo + 5)))
  in
  let run hooks cmds =
    let alloc =
      match which with
      | `Dll -> Dslib.Port_alloc.dll ~base ~port_lo ~port_hi
      | `Array -> Dslib.Port_alloc.array ~base ~port_lo ~port_hi
    in
    let fake = ref (Fake.Ports.create ~lo:port_lo ~hi:port_hi) in
    drive ~ds_kind:"port_alloc" ~contracts:(port_contract alloc) ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | P_alloc ->
            let p = Dslib.Port_alloc.alloc alloc meter in
            Step
              {
                raw_obs = [ p ];
                finish =
                  (fun obs ->
                    match obs with
                    | [ p ] -> (
                        match Fake.Ports.alloc !fake ~returned:p with
                        | Ok fake' ->
                            fake := fake';
                            None
                        | Error e -> Some e)
                    | other ->
                        Some
                          (Format.asprintf "malformed alloc reply %a" pp_ints
                             other));
                bounds = Some ("alloc", "ok", []);
              }
        | P_free p ->
            let obs =
              match Dslib.Port_alloc.free alloc meter p with
              | () -> [ 1 ]
              | exception Invalid_argument _ -> [ -2 ]
            in
            let expected, fake' =
              match Fake.Ports.free !fake p with
              | `Freed f -> ([ 1 ], f)
              | `Rejects -> ([ -2 ], !fake)
            in
            Step
              {
                raw_obs = obs;
                finish =
                  (fun obs ->
                    fake := fake';
                    expect expected obs);
                bounds = Some ("free", "ok", []);
              }
        | _ -> Skip)
  in
  { name; gen; run }

(* ---- Case: LPM (both backends) ---------------------------------------- *)

(* lsl/lsr are right-associative: the inner shift needs its own parens *)
let mask_prefix p len =
  if len = 0 then 0 else (p lsr (32 - len)) lsl (32 - len)

let lpm_case which =
  let name, ds_kind, min_len =
    match which with
    | `Trie -> ("lpm_trie", "lpm_trie", 0)
    | `Dir -> ("lpm_dir24_8", "lpm", 10)
  in
  let base = 0x5700_0000 in
  let gen rng =
    let addr () = P.below rng 0x1_0000_0000 in
    let routes =
      List.init
        (1 + P.below rng 6)
        (fun _ ->
          let len = min_len + P.below rng (33 - min_len) in
          let prefix = mask_prefix (addr ()) len in
          (prefix, len, 1 + P.below rng 15))
    in
    (* dir-24-8 resolves overlaps positionally, not by depth, so routes
       are installed shortest-prefix first — the order a control plane
       loading a RIB would use; subsequences of a sorted list stay
       sorted, so shrinking preserves the discipline *)
    let routes =
      List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b) routes
    in
    let near (prefix, len, _) =
      if len >= 32 then prefix
      else prefix lor P.below rng (1 lsl (32 - len))
    in
    let arr = Array.of_list routes in
    List.concat_map
      (fun (prefix, len, port) ->
        L_route { prefix; len; port }
        :: List.init (P.below rng 4) (fun _ ->
               if P.bool rng 0.5 then
                 L_lookup (near arr.(P.below rng (Array.length arr)))
               else L_lookup (addr ())))
      routes
  in
  let run hooks cmds =
    let contracts =
      match which with
      | `Trie -> Dslib.Lpm_trie.Recipe.contract
      | `Dir -> Dslib.Lpm_dir24_8.Recipe.contract
    in
    let trie, dir =
      match which with
      | `Trie -> (Some (Dslib.Lpm_trie.create ~base ~default_port:0), None)
      | `Dir -> (None, Some (Dslib.Lpm_dir24_8.create ~base ~default_port:0))
    in
    let fake = ref (Fake.Lpm.create ~default_port:0) in
    drive ~ds_kind ~contracts ~hooks cmds
      ~exec:(fun meter cmd ->
        match cmd with
        | L_route { prefix; len; port } ->
            (match (trie, dir) with
            | Some t, _ -> Dslib.Lpm_trie.add_route t ~prefix ~len ~port
            | _, Some d -> Dslib.Lpm_dir24_8.add_route d ~prefix ~len ~port
            | None, None -> assert false);
            let fake' = Fake.Lpm.add !fake ~prefix ~len ~port in
            Step
              {
                raw_obs = [];
                finish =
                  (fun obs ->
                    fake := fake';
                    expect [] obs);
                bounds = None (* config-time, uncharged *);
              }
        | L_lookup addr ->
            let p, tag =
              match (trie, dir) with
              | Some t, _ -> (Dslib.Lpm_trie.lookup t meter addr, "ok")
              | _, Some d ->
                  ( Dslib.Lpm_dir24_8.lookup d meter addr,
                    if Dslib.Lpm_dir24_8.uses_tbl8 d addr then "long"
                    else "short" )
              | None, None -> assert false
            in
            Step
              {
                raw_obs = [ p ];
                finish = expect [ Fake.Lpm.lookup !fake addr ];
                bounds = Some ("lookup", tag, []);
              }
        | _ -> Skip)
  in
  { name; gen; run }

(* ---- Registry --------------------------------------------------------- *)

let all () =
  [
    hash_case;
    flow_case;
    mac_case;
    nat_case `Dll;
    nat_case `Array;
    token_case;
    port_case `Dll;
    port_case `Array;
    lpm_case `Trie;
    lpm_case `Dir;
  ]

let find name = List.find_opt (fun c -> c.name = name) (all ())
