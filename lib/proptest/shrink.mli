(** Counterexample shrinking.

    When an oracle fails, the raw counterexample is usually a long
    workload or a large constraint set; these combinators walk it down
    to a minimal input that still fails, greedily re-testing smaller
    candidates until a fixpoint.  Shrinking is deterministic — the same
    failing input always shrinks to the same minimum — which keeps
    [bolt fuzz] replays stable. *)

val int : lo:int -> int -> int list
(** Candidate replacements for an integer, ordered smallest-first:
    [lo], then binary steps back up towards the original.  The original
    itself is never a candidate. *)

val list : 'a list -> 'a list list
(** Candidate sublists, most aggressive first: each half, then with a
    chunk removed at every chunk boundary, then (for short lists) each
    single-element removal. *)

val sequence : ?shrink_cmd:('a -> 'a list) -> 'a list -> 'a list list
(** Candidate shrinks for a command sequence: the structural {!list}
    shrinks first (drop halves, chunks, single commands), then — for
    sequences short enough that it pays — each command replaced by one
    of its own [shrink_cmd] shrinks, position by position. *)

val minimize :
  ?max_evals:int ->
  still_fails:('a -> bool) ->
  candidates:('a -> 'a list) ->
  'a ->
  'a * int
(** [minimize ~still_fails ~candidates x] greedily replaces [x] by the
    first candidate that still fails, until no candidate does (or
    [max_evals] property evaluations, default 500, have been spent).
    Returns the minimum found and the number of successful shrink
    steps.  [x] itself must already fail. *)
