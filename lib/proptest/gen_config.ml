module P = Workload.Prng

type t = {
  jobs : int;
  max_paths : int;
  obs : bool;
  cache_capacity : int option;
}

let default_cache_capacity = 32_768

let gen rng =
  {
    jobs = 1 + P.below rng 4;
    max_paths = 4096 + P.below rng 4097;
    obs = P.bool rng 0.3;
    cache_capacity =
      (match P.below rng 4 with
      | 0 -> Some 2
      | 1 -> Some 64
      | 2 -> Some 1024
      | _ -> None);
  }

let apply t config =
  let { jobs; max_paths; obs; cache_capacity = _ } = t in
  Bolt.Pipeline.Config.(
    config |> with_jobs jobs |> with_max_paths max_paths |> with_obs obs)

let with_cache_capacity t f =
  match t.cache_capacity with
  | None -> f ()
  | Some cap ->
      Solver.Cache.set_capacity cap;
      Fun.protect
        ~finally:(fun () -> Solver.Cache.set_capacity default_cache_capacity)
        f

let describe t =
  Printf.sprintf "jobs:%d max_paths:%d obs:%b cache:%s" t.jobs t.max_paths
    t.obs
    (match t.cache_capacity with
    | None -> "default"
    | Some c -> string_of_int c)
