module P = Workload.Prng

type failure = {
  oracle : string;
  seed : int;
  detail : string;
  repro : string;
}

type verdict = Pass | Fail of failure

type t = { name : string; run : seed:int -> verdict }

let repro_of name seed =
  Printf.sprintf "bolt fuzz --oracle %s --seed %d --runs 1" name seed

let fail name seed fmt =
  Format.kasprintf
    (fun detail -> Fail { oracle = name; seed; detail; repro = repro_of name seed })
    fmt

(* ---- Subjects -------------------------------------------------------- *)

type subject =
  | Registry of Nf.Registry.entry
  | Generated of Ir.Program.t

let pick_subject rng =
  if P.bool rng 0.3 then Generated (Gen_ir.program rng)
  else
    let entries = Nf.Registry.all () in
    Registry (List.nth entries (P.below rng (List.length entries)))

let subject_name = function
  | Registry e -> "nf " ^ e.Nf.Registry.name
  | Generated p -> "generated program " ^ p.Ir.Program.name

let subject_program = function
  | Registry e -> e.Nf.Registry.program
  | Generated p -> p

let subject_config = function
  | Registry e ->
      Bolt.Pipeline.Config.(default |> with_contracts e.Nf.Registry.contracts)
  | Generated _ -> Bolt.Pipeline.Config.default

(* ---- Shared helpers -------------------------------------------------- *)

(* The full observable output of an analysis, as a string: unsolved
   count, every path with costs and witness, and the worst-case vector.
   Two runs are "identical" iff their fingerprints are equal. *)
let fingerprint (t : Bolt.Pipeline.t) =
  let worst =
    if t.Bolt.Pipeline.analyses = [] then "(no paths)"
    else Format.asprintf "%a" Perf.Cost_vec.pp (Bolt.Pipeline.worst_case t)
  in
  Format.asprintf "unsolved:%d@.%a@.worst: %s" t.Bolt.Pipeline.unsolved
    (Bolt.Report.pp_paths ~witnesses:true)
    t worst

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys when String.equal x y -> go (i + 1) (xs, ys)
    | x :: _, y :: _ -> Printf.sprintf "line %d:\n  a: %s\n  b: %s" i x y
    | x :: _, [] -> Printf.sprintf "line %d only in a: %s" i x
    | [], y :: _ -> Printf.sprintf "line %d only in b: %s" i y
    | [], [] -> "(identical)"
  in
  go 1 (la, lb)

(* PCV binding for one packet: the max each PCV of [worst] (plus any
   observed PCV) reached, 0 for PCVs never observed — derived from the
   contract under test, so a new PCV can never silently escape the
   check. *)
let binding_of ~worst observations =
  let universe =
    List.sort_uniq Perf.Pcv.compare
      (Perf.Cost_vec.pcvs worst @ List.map fst observations)
  in
  List.map
    (fun pcv ->
      ( pcv,
        List.fold_left
          (fun acc (p, v) -> if Perf.Pcv.equal p pcv then max acc v else acc)
          0 observations ))
    universe

type violation = {
  index : int;
  metric : Perf.Metric.t;
  bound : int;
  measured : int;
  binding : Perf.Pcv.binding;
}

let check_packet ~worst ~index ~ic ~ma observations =
  let binding = binding_of ~worst observations in
  List.filter_map
    (fun (metric, measured) ->
      match Perf.Cost_vec.eval binding worst metric with
      | Error _ -> None (* unreachable: the binding covers worst's PCVs *)
      | Ok bound ->
          if bound < measured then
            Some { index; metric; bound; measured; binding }
          else None)
    [ (Perf.Metric.Instructions, ic); (Perf.Metric.Memory_accesses, ma) ]

let pp_violation ppf v =
  Format.fprintf ppf "packet %d: %s bound %d < measured %d at %a" v.index
    (Perf.Metric.to_string v.metric)
    v.bound v.measured Perf.Pcv.pp_binding v.binding

let with_obs_restored f =
  let was = Obs.enabled () in
  Fun.protect
    ~finally:(fun () -> if not was then Obs.disable ())
    f

(* ---- Oracle 1: contract conservativeness ----------------------------- *)

let conservativeness ?(weaken = Fun.id) () =
  let name = "conservativeness" in
  let registry_case rng seed (entry : Nf.Registry.entry) =
    let t =
      Bolt.Pipeline.analyze
        ~config:(subject_config (Registry entry))
        entry.Nf.Registry.program
    in
    let worst = weaken (Bolt.Pipeline.worst_case t) in
    let violations stream =
      let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
      let result =
        Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss
          entry.Nf.Registry.program stream
      in
      List.rev
        (Distiller.Run.fold result
           (fun acc (r : Distiller.Run.packet_report) ->
             List.rev_append
               (check_packet ~worst ~index:r.Distiller.Run.index
                  ~ic:r.Distiller.Run.ic ~ma:r.Distiller.Run.ma
                  r.Distiller.Run.observations)
               acc)
           [])
    in
    let stream =
      Gen_net.stream_for rng ~nf:entry.Nf.Registry.name
        ~packets:(60 + P.below rng 80)
    in
    match violations stream with
    | [] -> Pass
    | _ ->
        let shrunk, steps =
          Shrink.minimize ~max_evals:120
            ~still_fails:(fun s -> violations s <> [])
            ~candidates:Shrink.list stream
        in
        let v = List.hd (violations shrunk) in
        fail name seed
          "%s: contract not conservative@.%a@.stream shrunk to %d packets \
           (%d steps, from %d)"
          (subject_name (Registry entry))
          pp_violation v (List.length shrunk) steps (List.length stream)
  in
  let generated_case rng seed program =
    let t = Bolt.Pipeline.analyze ~config:Bolt.Pipeline.Config.default program in
    if t.Bolt.Pipeline.unsolved > 0 then
      (* solver incompleteness keeps a path out of the contract — not a
         soundness verdict either way, so skip this subject *)
      Pass
    else
      let worst = weaken (Bolt.Pipeline.worst_case t) in
      let exec (e : Workload.Stream.entry) =
        let meter = Exec.Meter.create (Hw.Model.null ()) in
        let run =
          Exec.Interp.run ~meter ~mode:(Exec.Interp.Production [])
            ~in_port:e.Workload.Stream.in_port ~now:e.Workload.Stream.now
            program e.Workload.Stream.packet
        in
        (run, Exec.Meter.observations meter)
      in
      (* a finding is either a bound violation or an interpreter crash *)
      let findings entries =
        List.concat_map
          (fun e ->
            match exec e with
            | run, obs ->
                List.map Result.ok
                  (check_packet ~worst ~index:0 ~ic:run.Exec.Interp.ic
                     ~ma:run.Exec.Interp.ma obs)
            | exception Exec.Interp.Stuck msg -> [ Error msg ])
          entries
      in
      let entries =
        List.init 40 (fun _ ->
            Gen_net.entry rng ~now:(P.below rng 100_000) (Gen_net.packet rng))
      in
      match findings entries with
      | [] -> Pass
      | _ ->
          let shrunk, _ =
            Shrink.minimize ~max_evals:120
              ~still_fails:(fun es -> findings es <> [])
              ~candidates:Shrink.list entries
          in
          let witness =
            match shrunk with
            | e :: _ -> Bolt.Report.witness_line e.Workload.Stream.packet
            | [] -> "?"
          in
          (match List.hd (findings shrunk) with
          | Error msg ->
              fail name seed
                "%s: interpreter stuck (%s) on generated packet@.packet: \
                 %s@.%a"
                (subject_name (Generated program))
                msg witness Ir.Program.pp program
          | Ok v ->
              fail name seed "%s: contract not conservative@.%a@.packet: %s@.%a"
                (subject_name (Generated program))
                pp_violation v witness Ir.Program.pp program)
  in
  let run ~seed =
    let rng = P.create ~seed in
    match pick_subject rng with
    | Registry entry -> registry_case rng seed entry
    | Generated program -> generated_case rng seed program
  in
  { name; run }

(* ---- Oracle 2: jobs determinism -------------------------------------- *)

let real_analyze ~config program = Bolt.Pipeline.analyze ~config program

let jobs_determinism ?(analyze = real_analyze) () =
  let name = "jobs_determinism" in
  let run ~seed =
    let rng = P.create ~seed in
    let subject = pick_subject rng in
    let program = subject_program subject in
    let base = subject_config subject in
    let knobs = Gen_config.gen rng in
    let jobs = max 2 knobs.Gen_config.jobs in
    with_obs_restored @@ fun () ->
    let serial =
      fingerprint
        (analyze ~config:(Bolt.Pipeline.Config.with_jobs 1 base) program)
    in
    let parallel =
      Gen_config.with_cache_capacity knobs (fun () ->
          fingerprint
            (analyze
               ~config:
                 (Gen_config.apply
                    { knobs with Gen_config.jobs }
                    base)
               program))
    in
    if String.equal serial parallel then Pass
    else
      fail name seed
        "%s: jobs:1 and jobs:%d disagree (%s)@.%s"
        (subject_name subject) jobs
        (Gen_config.describe knobs)
        (first_diff serial parallel)
  in
  { name; run }

(* ---- Oracle 3: cache equivalence ------------------------------------- *)

let verdict_kind = function
  | Solver.Solve.Sat _ -> "sat"
  | Solver.Solve.Unsat -> "unsat"
  | Solver.Solve.Unknown -> "unknown"

(* Random affine constraint sets in the engine's language: comparisons
   of small linear combinations of bounded symbols, with a little
   conj/disj/negation structure. *)
let gen_constraint_sets rng =
  let gen = Solver.Sym.gen () in
  let nsyms = 2 + P.below rng 3 in
  let syms =
    Array.init nsyms (fun i ->
        Solver.Sym.fresh gen ~lo:0
          ~hi:(1 + P.below rng 1000)
          (Printf.sprintf "s%d" i))
  in
  let lin () =
    let e = Solver.Linexpr.const (P.below rng 60 - 30) in
    Array.fold_left
      (fun acc s ->
        if P.bool rng 0.6 then
          Solver.Linexpr.add acc
            (Solver.Linexpr.scale (P.below rng 7 - 3) (Solver.Linexpr.sym s))
        else acc)
      e syms
  in
  let atom () =
    let a = lin () and b = lin () in
    match P.below rng 6 with
    | 0 -> Solver.Constr.le a b
    | 1 -> Solver.Constr.lt a b
    | 2 -> Solver.Constr.ge a b
    | 3 -> Solver.Constr.gt a b
    | 4 -> Solver.Constr.eq a b
    | _ -> Solver.Constr.ne a b
  in
  let rec constr depth =
    if depth <= 0 then atom ()
    else
      match P.below rng 4 with
      | 0 -> Solver.Constr.conj [ constr (depth - 1); constr (depth - 1) ]
      | 1 -> Solver.Constr.disj [ constr (depth - 1); constr (depth - 1) ]
      | 2 -> Solver.Constr.not_ (constr (depth - 1))
      | _ -> atom ()
  in
  List.init 24 (fun _ -> List.init (1 + P.below rng 4) (fun _ -> constr (P.below rng 2)))

let cache_equivalence ?(check_cached = fun cs -> Solver.Cache.check cs) () =
  let name = "cache_equivalence" in
  let run ~seed =
    let rng = P.create ~seed in
    let sets = gen_constraint_sets rng in
    (* ground truth: the raw solver, no cache in the loop *)
    let baseline = List.map (fun cs -> verdict_kind (Solver.Solve.check cs)) sets in
    let mismatches capacity =
      Solver.Cache.reset ();
      Solver.Cache.set_capacity capacity;
      (* two sweeps: the second answers from cache (or, starved, from
         re-solves after eviction churn) *)
      let sweep pass_idx =
        List.concat
          (List.mapi
             (fun i cs ->
               let got = verdict_kind (check_cached cs) in
               let want = List.nth baseline i in
               if String.equal got want then []
               else [ (pass_idx, i, want, got) ])
             sets)
      in
      sweep 1 @ sweep 2
    in
    let restore () =
      Solver.Cache.set_capacity Gen_config.default_cache_capacity;
      Solver.Cache.reset ()
    in
    Fun.protect ~finally:restore @@ fun () ->
    let full = mismatches Gen_config.default_cache_capacity in
    let starved = mismatches 2 in
    match full @ starved with
    | [] -> Pass
    | (pass_idx, i, want, got) :: _ ->
        let regime = if full <> [] then "enabled" else "capacity-starved" in
        let capacity =
          if full <> [] then Gen_config.default_cache_capacity else 2
        in
        let bad_set = List.nth sets i in
        (* shrink the constraint set that disagreed *)
        let still_fails cs =
          Solver.Cache.reset ();
          Solver.Cache.set_capacity capacity;
          let want = verdict_kind (Solver.Solve.check cs) in
          let (_ : string) = verdict_kind (check_cached cs) in
          not (String.equal (verdict_kind (check_cached cs)) want)
        in
        let shrunk, _ =
          Shrink.minimize ~max_evals:200 ~still_fails
            ~candidates:Shrink.list bad_set
        in
        fail name seed
          "cache (%s) disagrees with direct solve on set %d, sweep %d: \
           want %s, got %s@.shrunk constraint set (%d conjuncts):@.%a"
          regime i pass_idx want got (List.length shrunk)
          (Format.pp_print_list Solver.Constr.pp)
          shrunk
  in
  { name; run }

(* ---- Oracle 4: obs neutrality ---------------------------------------- *)

let obs_neutrality ?(analyze = real_analyze) () =
  let name = "obs_neutrality" in
  let run ~seed =
    let rng = P.create ~seed in
    let subject = pick_subject rng in
    let program = subject_program subject in
    let base = subject_config subject in
    let was = Obs.enabled () in
    Fun.protect
      ~finally:(fun () -> if not was then Obs.disable ())
    @@ fun () ->
    Obs.disable ();
    let off =
      fingerprint
        (analyze ~config:(Bolt.Pipeline.Config.with_obs false base) program)
    in
    let on =
      fingerprint
        (analyze ~config:(Bolt.Pipeline.Config.with_obs true base) program)
    in
    if String.equal off on then Pass
    else
      fail name seed "%s: tracing changed analysis output@.%s"
        (subject_name subject) (first_diff off on)
  in
  { name; run }

(* ---- Oracle 5: concrete/symbex agreement ------------------------------ *)

let real_explore ~concrete ~models program =
  Symbex.Engine.explore ~concrete ~models program

(* Both execution modes are instances of the same [Ir.Eval] walker, so
   on a fully-concrete input they must tell exactly the same story:
   symbex folds every branch and leaves one feasible path (or none,
   when the interpreter is stuck), and replaying that path's assumed
   decisions reproduces the direct run's outcome, IC and MA.  Subjects
   are generated programs only: they are stateless, so production
   execution needs no data structures and the agreement is exact. *)
let concrete_symbex_agreement ?(explore = real_explore) () =
  let name = "concrete_symbex_agreement" in
  let run ~seed =
    let rng = P.create ~seed in
    let program = Gen_ir.program rng in
    let packet = Gen_net.packet rng in
    let in_port = P.below rng 8 in
    let now = 1000 + P.below rng 100_000 in
    let context ppf () =
      Format.fprintf ppf "packet: %s (in_port %d, now %d)@.%a"
        (Bolt.Report.witness_line packet)
        in_port now Ir.Program.pp program
    in
    let direct () =
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      Exec.Interp.run ~meter ~mode:(Exec.Interp.Production []) ~in_port ~now
        program (Net.Packet.copy packet)
    in
    let result =
      explore ~concrete:(packet, in_port, now) ~models:Bolt.Ds_models.default
        program
    in
    let paths = result.Symbex.Engine.paths in
    match direct () with
    | exception Exec.Interp.Stuck msg -> (
        match paths with
        | [] -> Pass
        | _ ->
            fail name seed
              "%s: interpreter stuck (%s) but symbex found %d feasible \
               path(s) on a concrete input@.%a"
              program.Ir.Program.name msg (List.length paths) context ())
    | direct -> (
        match paths with
        | [ path ] -> (
            if
              not
                (Bolt.Pipeline.replay_matches path.Symbex.Path.action
                   direct.Exec.Interp.outcome)
            then
              fail name seed
                "%s: symbex action %a disagrees with the interpreter's \
                 outcome@.%a"
                program.Ir.Program.name Symbex.Path.pp path context ()
            else
              let meter = Exec.Meter.create (Hw.Model.null ()) in
              match
                Exec.Replay.run ~meter ~stubs:[]
                  ~path_id:path.Symbex.Path.id
                  ~decisions:path.Symbex.Path.decisions
                  ~loops:
                    (List.map
                       (fun (l : Symbex.Path.pcv_loop) -> l.Symbex.Path.name)
                       path.Symbex.Path.loops)
                  ~in_port ~now program (Net.Packet.copy packet)
              with
              | replay ->
                  if
                    replay.Exec.Interp.ic = direct.Exec.Interp.ic
                    && replay.Exec.Interp.ma = direct.Exec.Interp.ma
                  then Pass
                  else
                    fail name seed
                      "%s: replayed path costs IC %d / MA %d, direct run \
                       costs IC %d / MA %d@.%a"
                      program.Ir.Program.name replay.Exec.Interp.ic
                      replay.Exec.Interp.ma direct.Exec.Interp.ic
                      direct.Exec.Interp.ma context ()
              | exception Exec.Replay.Divergence msg ->
                  fail name seed
                    "%s: the single feasible path does not replay on its \
                     own concrete input (%s)@.%a"
                    program.Ir.Program.name msg context ()
              | exception Exec.Interp.Stuck msg ->
                  fail name seed
                    "%s: replay stuck (%s) where the direct run was not@.%a"
                    program.Ir.Program.name msg context ())
        | paths ->
            fail name seed
              "%s: expected exactly one feasible path on a concrete input, \
               got %d@.%a"
              program.Ir.Program.name (List.length paths) context ())
  in
  { name; run }

let real_compile program = Exec.Compiled.compile program
let real_specialize ct ~meter ~mode = Exec.Specialize.bind ct ~meter ~mode

(* The closure-compiled hot path and the interpreter are two
   implementations of one concrete semantics, so on any subject and any
   stream they must tell bit-for-bit the same story: outcome, IC, MA,
   cycles, PCV observations, the full traced event stream and the
   packet bytes left behind — Stuck runs included, message for message.
   A further leg binds the compiled program to the stream's frozen
   configuration ({!Exec.Specialize.bind}) and replays the same stream
   through the specialized closures on an untraced meter (tracing would
   force the fallback and leave the fast body unexercised), comparing
   outcome, costs, observations and packet bytes per packet — Stuck
   packets compare by message, which is exactly the charge-equivalence
   contract of DESIGN §12.  For stateless generated subjects a final
   leg cross-checks the fidelity replay: symbex on the concrete input
   yields one path, and replaying its assumed decisions must reproduce
   the compiled run's IC/MA exactly. *)
let compiled_interp_agreement ?(compile = real_compile)
    ?(specialize = real_specialize) () =
  let name = "compiled_interp_agreement" in
  let run ~seed =
    let rng = P.create ~seed in
    let subject = pick_subject rng in
    let program = subject_program subject in
    let packets = 20 + P.below rng 40 in
    let stream =
      match subject with
      | Registry e -> Gen_net.stream_for rng ~nf:e.Nf.Registry.name ~packets
      | Generated _ ->
          List.init packets (fun i ->
              Gen_net.entry rng ~now:(1000 + (i * 100)) (Gen_net.packet rng))
    in
    let fresh_dss () =
      match subject with
      | Registry e -> e.Nf.Registry.setup (Dslib.Layout.allocator ())
      | Generated _ -> []
    in
    let replay engine =
      let meter = Exec.Meter.create ~trace:true (Hw.Model.null ()) in
      let mode = Exec.Interp.Production (fresh_dss ()) in
      let compiled =
        match engine with `Interp -> None | `Compiled -> Some (compile program)
      in
      List.map
        (fun { Workload.Stream.packet; now; in_port } ->
          let packet = Net.Packet.copy packet in
          Exec.Meter.reset_observations meter;
          let outcome =
            match
              match compiled with
              | None -> Exec.Interp.run ~meter ~mode ~in_port ~now program packet
              | Some c -> Exec.Compiled.run c ~meter ~mode ~in_port ~now packet
            with
            | r -> Ok r
            | exception Exec.Interp.Stuck msg -> Error msg
          in
          ( outcome,
            Exec.Meter.observations meter,
            Exec.Meter.events meter,
            Net.Packet.to_bytes packet ))
        stream
    in
    (* specialized legs run untraced: a tracing meter makes [bind] fall
       back to the generic runner and the fast body would go untested *)
    let replay_untraced engine =
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let mode = Exec.Interp.Production (fresh_dss ()) in
      let exec =
        match engine with
        | `Interp ->
            fun ~in_port ~now packet ->
              Exec.Interp.run ~meter ~mode ~in_port ~now program packet
        | `Specialized ->
            let sp = specialize (compile program) ~meter ~mode in
            fun ~in_port ~now packet ->
              Exec.Specialize.run sp ~in_port ~now packet
      in
      List.map
        (fun { Workload.Stream.packet; now; in_port } ->
          let packet = Net.Packet.copy packet in
          Exec.Meter.reset_observations meter;
          let outcome =
            match exec ~in_port ~now packet with
            | r -> Ok r
            | exception Exec.Interp.Stuck msg -> Error msg
          in
          (outcome, Exec.Meter.observations meter, Net.Packet.to_bytes packet))
        stream
    in
    let pp_run ppf (outcome, obs) =
      (match outcome with
      | Ok (r : Exec.Interp.run) ->
          Format.fprintf ppf "ic %d ma %d cycles %d" r.Exec.Interp.ic
            r.Exec.Interp.ma r.Exec.Interp.cycles
      | Error msg -> Format.fprintf ppf "stuck: %s" msg);
      Format.fprintf ppf ", %d observation(s)" (List.length obs)
    in
    let interp = replay `Interp and compiled = replay `Compiled in
    let disagreement =
      List.find_index (fun (a, b) -> a <> b) (List.combine interp compiled)
    in
    match disagreement with
    | Some i ->
        let pp_side ppf (outcome, obs, _events, _bytes) =
          pp_run ppf (outcome, obs)
        in
        fail name seed
          "%s: compiled execution diverges from the interpreter at packet \
           %d@.interp:   %a@.compiled: %a"
          (subject_name subject) i pp_side (List.nth interp i) pp_side
          (List.nth compiled i)
    | None -> (
        let s_interp = replay_untraced `Interp
        and s_spec = replay_untraced `Specialized in
        match
          List.find_index
            (fun (a, b) -> a <> b)
            (List.combine s_interp s_spec)
        with
        | Some i ->
            let pp_side ppf (outcome, obs, _bytes) = pp_run ppf (outcome, obs) in
            fail name seed
              "%s: specialized execution diverges from the interpreter at \
               packet %d@.interp:      %a@.specialized: %a"
              (subject_name subject) i pp_side (List.nth s_interp i) pp_side
              (List.nth s_spec i)
        | None -> (
        match (subject, stream) with
        | Generated _, { Workload.Stream.packet; now; in_port } :: _ -> (
            (* third leg: fidelity replay of the symbex path against the
               compiled run of the same input *)
            let compiled_run =
              let meter = Exec.Meter.create (Hw.Model.null ()) in
              match
                Exec.Compiled.run (compile program) ~meter
                  ~mode:(Exec.Interp.Production []) ~in_port ~now
                  (Net.Packet.copy packet)
              with
              | r -> Some r
              | exception Exec.Interp.Stuck _ -> None
            in
            let result =
              Symbex.Engine.explore ~concrete:(packet, in_port, now)
                ~models:Bolt.Ds_models.default program
            in
            match (compiled_run, result.Symbex.Engine.paths) with
            | Some direct, [ path ] -> (
                let meter = Exec.Meter.create (Hw.Model.null ()) in
                match
                  Exec.Replay.run ~meter ~stubs:[]
                    ~path_id:path.Symbex.Path.id
                    ~decisions:path.Symbex.Path.decisions
                    ~loops:
                      (List.map
                         (fun (l : Symbex.Path.pcv_loop) -> l.Symbex.Path.name)
                         path.Symbex.Path.loops)
                    ~in_port ~now program (Net.Packet.copy packet)
                with
                | replay ->
                    if
                      replay.Exec.Interp.ic = direct.Exec.Interp.ic
                      && replay.Exec.Interp.ma = direct.Exec.Interp.ma
                    then Pass
                    else
                      fail name seed
                        "%s: fidelity replay costs IC %d / MA %d, compiled \
                         run costs IC %d / MA %d"
                        (subject_name subject) replay.Exec.Interp.ic
                        replay.Exec.Interp.ma direct.Exec.Interp.ic
                        direct.Exec.Interp.ma
                | exception Exec.Replay.Divergence msg ->
                    fail name seed
                      "%s: compiled-agreeing path does not replay (%s)"
                      (subject_name subject) msg
                | exception Exec.Interp.Stuck msg ->
                    fail name seed
                      "%s: fidelity replay stuck (%s) where the compiled run \
                       was not"
                      (subject_name subject) msg)
            | _ ->
                (* stuck input or multi-path disagreements belong to
                   [concrete_symbex_agreement]; both engines already
                   agreed above *)
                Pass)
        | _ -> Pass))
  in
  { name; run }

(* ---- Stateful oracles (model-based PBT, DESIGN §14) ------------------- *)

(* Replay a case's command list, turning any escaped exception into a
   double failure — shrinking must never crash the campaign. *)
let run_case (case : Stateful.t) hooks cmds =
  try case.Stateful.run hooks cmds
  with e ->
    let msg = "exception: " ^ Printexc.to_string e in
    { Stateful.model_error = Some msg; bounds_error = Some msg }

(* Shrink a failing command list to a minimal one that still fails the
   [select]ed property, then re-run it for the final detail. *)
let shrunk_failure name seed (case : Stateful.t) hooks ~select cmds =
  let still_fails cs = select (run_case case hooks cs) <> None in
  let cmds, _ =
    Shrink.minimize ~still_fails
      ~candidates:(Shrink.sequence ~shrink_cmd:Stateful.shrink_cmd)
      cmds
  in
  let detail =
    Option.value
      (select (run_case case hooks cmds))
      ~default:"(failure did not reproduce after shrinking)"
  in
  fail name seed "%s@\nshrunk trace (%d commands):@\n%a" detail
    (List.length cmds) Stateful.pp_trace cmds

let stateful_oracle ~suffix ~select hooks (case : Stateful.t) =
  let name = "stateful_" ^ case.Stateful.name ^ "_" ^ suffix in
  let run ~seed =
    let rng = P.create ~seed in
    let cmds = case.Stateful.gen rng in
    match select (run_case case hooks cmds) with
    | None -> Pass
    | Some _ -> shrunk_failure name seed case hooks ~select cmds
  in
  { name; run }

let stateful_model ?tamper case =
  let hooks =
    match tamper with
    | None -> Stateful.no_hooks
    | Some tamper -> { Stateful.no_hooks with tamper }
  in
  stateful_oracle ~suffix:"model"
    ~select:(fun o -> o.Stateful.model_error)
    hooks case

let stateful_bounds ?weaken case =
  let hooks =
    match weaken with
    | None -> Stateful.no_hooks
    | Some weaken -> { Stateful.no_hooks with weaken }
  in
  stateful_oracle ~suffix:"bounds"
    ~select:(fun o -> o.Stateful.bounds_error)
    hooks case

let stateful () =
  List.concat_map
    (fun case -> [ stateful_model case; stateful_bounds case ])
    (Stateful.all ())

let stateful_names () = List.map (fun o -> o.name) (stateful ())

(* ---- Registry -------------------------------------------------------- *)

let all () =
  [
    conservativeness ();
    jobs_determinism ();
    cache_equivalence ();
    obs_neutrality ();
    concrete_symbex_agreement ();
    compiled_interp_agreement ();
  ]

let names () = List.map (fun o -> o.name) (all ())

let find name =
  match
    List.find_opt
      (fun o -> String.equal o.name name)
      (all () @ stateful ())
  with
  | Some o -> o
  | None ->
      invalid_arg
        (Printf.sprintf "unknown oracle %S (try: %s)" name
           (String.concat ", " (names ())))
