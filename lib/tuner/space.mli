(** The tuner's design-space grid and per-family workloads.

    A grid is the cartesian product backends × capacities, enumerated
    deterministically (backends outer, capacities inner, both in the
    given order).  "Capacity" is interpreted per family: table capacity
    (buckets tracking it 1:1, the default geometry's ratio) for the
    flow-table NFs, route-table size for the routers. *)

val tunable : string list
(** Registry names the tuner accepts. *)

val is_tunable : string -> bool

val backends : nf:string -> string list
(** The backend axis for this NF family, in registry order; raises
    [Invalid_argument] (listing the tunable NFs) otherwise. *)

val default_capacities : nf:string -> int list

val synthetic_routes : int -> (int * int * int) list
(** Deterministic route table of the given size; prefix-closed (a
    smaller table is a prefix of a larger one) and split between /16s
    (dir-24-8 one-lookup tier) and /28s (two-lookup tier). *)

val backend_of : Nf.Spec.t -> string
(** Which backend-axis value a spec carries. *)

val point : nf:string -> backend:string -> capacity:int -> Nf.Spec.t
(** One grid point as a value-level spec. *)

val grid :
  nf:string -> ?backends:string list -> ?capacities:int list -> unit ->
  Nf.Spec.t list

val copy_stream : Workload.Stream.t -> Workload.Stream.t
(** Per-entry packet copies, so replays cannot corrupt each other via
    in-place header rewrites. *)

val workload :
  nf:string -> packets:int -> seed:int -> capacities:int list ->
  Workload.Stream.t
(** The family's deterministic replayable workload; every grid point of
    one tuning run is scored against the same stream. *)
