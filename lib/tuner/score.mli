(** Analytic scoring of a grid point: the spec's derived contract —
    the same [Perf] algebra the pipeline certifies — instantiated with
    the PCV distribution the Distiller harvested from the workload.
    Nothing here measures: the only replay is {!harvest}, which records
    PCV observations (under the null model), and every score is the
    symbolic worst case evaluated at those observations. *)

type sample = (Perf.Pcv.t * int) list array
(** Per-packet PCV observations, in stream order. *)

val harvest : Nf.Registry.entry -> Workload.Stream.t -> sample
(** One compiled-path Distiller replay, null hardware model. *)

val binding_of :
  universe:Perf.Pcv.t list -> (Perf.Pcv.t * int) list -> Perf.Pcv.binding
(** Per-PCV max over a packet's observations, 0 when unexercised — the
    [Experiments.Validate] convention. *)

val percentile : int array -> int -> int
(** Nearest-rank percentile over a sorted column. *)

val analyze : jobs:int -> Nf.Registry.entry -> Bolt.Pipeline.t
(** Run the certification pipeline for the entry's program against its
    contracts. *)

type prediction = {
  p50_ic : int;
  p99_ic : int;
  p50_ma : int;
  p99_ma : int;
  p50_cycles : int;
  p99_cycles : int;
}

val predict_packet : worst:Perf.Cost_vec.t -> Perf.Pcv.binding ->
  Perf.Metric.t -> int
(** The symbolic per-packet worst case at one packet's binding — a sound
    upper bound on that packet's cost. *)

val predict : worst:Perf.Cost_vec.t -> sample -> prediction
(** Predicted percentiles: evaluate [worst] at every packet's binding
    and take nearest-rank p50/p99 per metric. *)

val exposure_ic : Bolt.Pipeline.t -> Symbex.Iclass.t list -> int option
(** Adversarial exposure: instruction bound at each class's own
    worst-case bindings, maximized over fully-bound classes ([None] if
    no class binds every PCV it mentions). *)
