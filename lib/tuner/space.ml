(* The design-space grid: which backends and geometries the tuner
   explores per NF family, enumerated deterministically (outer loop over
   backends in registry order, inner loop over capacities in the given
   order), plus the replayable workload every point of a family is
   scored against.

   Capacities are interpreted per family: table capacity for the
   flow-table NFs (buckets track capacity, the default geometry's 1:1
   ratio), route-table size for the routers. *)

let tunable = [ "bridge"; "nat"; "maglev"; "lpm_router"; "trie_router"; "conntrack" ]

let is_tunable nf = List.mem nf tunable

let backends ~nf =
  match nf with
  | "lpm_router" | "trie_router" ->
      List.map Dslib.Backends.Lpm.name Dslib.Backends.Lpm.all
  | "nat" -> List.map Dslib.Backends.Alloc.name Dslib.Backends.Alloc.all
  | "bridge" | "maglev" | "conntrack" ->
      List.map Dslib.Backends.Flows.name Dslib.Backends.Flows.all
  | _ ->
      invalid_arg
        (Printf.sprintf "NF %S is not tunable (try: %s)" nf
           (String.concat ", " tunable))

let default_capacities ~nf =
  match nf with
  | "lpm_router" | "trie_router" -> [ 64; 256; 1024 ]
  | _ -> [ 1024; 2048; 4096 ]

(* Deterministic synthetic route table; [synthetic_routes n] is a prefix
   of [synthetic_routes m] for n <= m, so destinations generated against
   the smallest table match real routes in every larger grid point.
   Even slots are /16s (dir-24-8 short path, 16-bit trie walks), odd
   slots are /28s (dir-24-8 long path, 28-bit walks). *)
let synthetic_routes n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        let k = i / 2 in
        (Net.Ipv4.addr_of_parts 10 (k mod 256) 0 0, 16, (i mod 14) + 1)
      else
        ( Net.Ipv4.addr_of_parts 10 200 (i mod 256) (i * 16 mod 240),
          28,
          (i mod 14) + 1 ))

let backend_of (spec : Nf.Spec.t) =
  match spec with
  | Nf.Spec.Router r -> Dslib.Backends.Lpm.name r.Nf.Spec.backend
  | Nf.Spec.Nat c -> Dslib.Backends.Alloc.name c.Nf.Nat.allocator
  | _ -> Dslib.Backends.Flows.name `Flow

let point ~nf ~backend ~capacity =
  match nf with
  | "lpm_router" | "trie_router" ->
      Nf.Spec.Router
        {
          Nf.Spec.backend = Dslib.Backends.Lpm.of_name backend;
          routes = synthetic_routes capacity;
        }
  | "nat" ->
      let open Nf.Spec in
      Nf.Spec.of_name nf
      |> Fun.flip apply (Allocator (Dslib.Backends.Alloc.of_name backend))
      |> Fun.flip apply (Capacity capacity)
      |> Fun.flip apply (Buckets capacity)
  | "bridge" | "maglev" | "conntrack" ->
      ignore (Dslib.Backends.Flows.of_name backend);
      let open Nf.Spec in
      Nf.Spec.of_name nf
      |> Fun.flip apply (Capacity capacity)
      |> Fun.flip apply (Buckets capacity)
  | _ -> invalid_arg ("Space.point: " ^ nf)

let grid ~nf ?backends:bs ?capacities () =
  let bs = match bs with Some l -> l | None -> backends ~nf in
  let caps =
    match capacities with Some l -> l | None -> default_capacities ~nf
  in
  if bs = [] || caps = [] then invalid_arg "Space.grid: empty axis";
  List.concat_map
    (fun b -> List.map (fun c -> point ~nf ~backend:b ~capacity:c) caps)
    bs

(* Streams are replayed several times (harvest per backend, winner
   validation) and some NFs rewrite headers in place, so every replay
   gets its own packet copies. *)
let copy_stream stream =
  List.map
    (fun (e : Workload.Stream.entry) ->
      { e with Workload.Stream.packet = Net.Packet.copy e.Workload.Stream.packet })
    stream

(* One deterministic workload per family, shared by every grid point.
   The inter-packet gap is sized against the family's default timeout so
   a few hundred packets exercise some expiry (the e-term of the
   contracts), not just the hit path.  Router destinations are drawn
   from the smallest route table in the grid — synthetic_routes is
   prefix-closed, so they match installed routes at every point — with a
   default-route tail. *)
let workload ~nf ~packets ~seed ~capacities =
  let rng = Workload.Prng.create ~seed in
  match nf with
  | "lpm_router" | "trie_router" ->
      let min_cap = List.fold_left min (List.hd capacities) capacities in
      let routes = Array.of_list (synthetic_routes min_cap) in
      let pkts =
        List.init packets (fun _ ->
            let dst =
              if Workload.Prng.below rng 100 < 85 then
                let prefix, len, _ =
                  routes.(Workload.Prng.below rng (Array.length routes))
                in
                prefix lor Workload.Prng.below rng (1 lsl (32 - len))
              else
                Net.Ipv4.addr_of_parts 192 168
                  (Workload.Prng.below rng 256)
                  1
            in
            Net.Build.udp
              ~src_ip:(Net.Ipv4.addr_of_parts 10 9 0 1)
              ~dst_ip:dst ~src_port:5000 ~dst_port:53 ())
      in
      Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100 pkts
  | "bridge" ->
      let macs = List.init 16 (fun _ -> Workload.Gen.mac rng) in
      let pkts = Workload.Gen.unicast_frames rng ~srcs:macs ~dsts:macs packets in
      Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:1_000_000
        pkts
  | "nat" | "maglev" ->
      Workload.Gen.churn rng ~pool:64 ~packets ~new_flow_prob:0.1 ~gap:50_000
        ~start:1_000_000
  | "conntrack" ->
      Workload.Gen.churn rng ~pool:64 ~packets ~new_flow_prob:0.1 ~gap:100_000
        ~start:1_000_000
  | _ -> invalid_arg ("Space.workload: " ^ nf)
