(** The contract-guided autotuner.

    [run ~nf ()] enumerates a deterministic grid of value-level specs
    (backends × capacities), prices every point {e analytically} — the
    spec's derived contract instantiated with a PCV distribution the
    Distiller harvested from the family workload, one harvest and one
    certification-pipeline run per backend — emits the Pareto front over
    (predicted p50 cycles, predicted p99 cycles, memory footprint), and
    confirms the front's winner by replaying the same workload on the
    compiled path, reporting predicted-vs-measured error.

    The result is a pure function of [(nf, backends, capacities,
    packets, seed)]; [jobs] only parallelizes the pipeline and never
    changes the output. *)

type point = {
  index : int;  (** position in grid-enumeration order *)
  spec : Nf.Spec.t;
  backend : string;
  knobs : (string * string) list;
  footprint_bytes : int;
  predicted : Score.prediction;
  exposure_ic : int option;
      (** adversarial instruction bound at the class worst-case bindings
          (grows with capacity), [None] when no class is fully bound *)
  on_front : bool;
}

type validation = {
  packets : int;
  measured_p50_ic : int;
  measured_p99_ic : int;
  measured_p50_ma : int;
  measured_p99_ma : int;
  measured_p50_cycles : int;
  measured_p99_cycles : int;
  err_p50_ic_pct : int;  (** overestimate %, (pred − meas) · 100 / meas *)
  err_p99_ic_pct : int;
  err_p50_cycles_pct : int;
  err_p99_cycles_pct : int;
  sound : bool;
      (** every packet's measured ic and ma stayed under the contract
          evaluated at that packet's own observed PCVs *)
}

type result = {
  nf : string;
  seed : int;
  jobs : int;
  points : point list;  (** every evaluated point, enumeration order *)
  front : point list;  (** the non-dominated subset, same order *)
  winner : point;  (** min (p99 cycles, footprint, p50 cycles, index) *)
  validation : validation;
}

val objectives : point -> Pareto.objectives

val run :
  nf:string ->
  ?backends:string list ->
  ?capacities:int list ->
  ?packets:int ->
  ?jobs:int ->
  ?seed:int ->
  unit ->
  result
(** Raises [Invalid_argument] (naming the tunable NFs) for NFs without a
    tuning axis, and on unknown backend names. *)

val to_json : result -> Perf.Json.t
val pp : Format.formatter -> result -> unit
