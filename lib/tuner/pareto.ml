(* Pareto dominance over the tuner's objective vector: predicted p50 and
   p99 cycles per packet (both minimized) and memory footprint bytes
   (minimized).  A point dominates another when it is no worse on every
   objective and strictly better on at least one. *)

type objectives = { p50 : int; p99 : int; mem : int }

let dominates a b =
  a.p50 <= b.p50 && a.p99 <= b.p99 && a.mem <= b.mem
  && (a.p50 < b.p50 || a.p99 < b.p99 || a.mem < b.mem)

let front points =
  List.filter
    (fun (_, o) -> not (List.exists (fun (_, o') -> dominates o' o) points))
    points
