(* The contract-guided autotuner (the Kugelblitz move, on top of the
   paper's contracts): enumerate a deterministic grid of value-level NF
   specs, price every point analytically — the spec's derived contract
   instantiated with one harvested PCV distribution per backend — emit
   the Pareto front over (predicted p50 cycles, predicted p99 cycles,
   memory footprint), and confirm the front's winner by replaying the
   same workload on the compiled path, reporting predicted-vs-measured
   error.

   Scoring never times anything: per backend there is exactly one
   Distiller replay (PCV harvest, null model) and one certification
   pipeline run; every grid point is then priced by evaluating the
   symbolic worst case at the harvested per-packet bindings.  The
   harvest uses the backend's smallest-capacity point, whose geometry
   (densest buckets) yields the most conservative collision counts. *)

type point = {
  index : int;
  spec : Nf.Spec.t;
  backend : string;
  knobs : (string * string) list;
  footprint_bytes : int;
  predicted : Score.prediction;
  exposure_ic : int option;
  on_front : bool;
}

type validation = {
  packets : int;
  measured_p50_ic : int;
  measured_p99_ic : int;
  measured_p50_ma : int;
  measured_p99_ma : int;
  measured_p50_cycles : int;
  measured_p99_cycles : int;
  err_p50_ic_pct : int;
  err_p99_ic_pct : int;
  err_p50_cycles_pct : int;
  err_p99_cycles_pct : int;
  sound : bool;
      (** every packet's measured ic and ma stayed under the contract
          evaluated at that packet's own observed PCVs *)
}

type result = {
  nf : string;
  seed : int;
  jobs : int;
  points : point list;
  front : point list;
  winner : point;
  validation : validation;
}

let objectives p =
  {
    Pareto.p50 = p.predicted.Score.p50_cycles;
    p99 = p.predicted.Score.p99_cycles;
    mem = p.footprint_bytes;
  }

(* Overestimate percentage, the Harness convention. *)
let err_pct ~predicted ~measured =
  (predicted - measured) * 100 / max 1 measured

let sorted_column n f =
  let c = Array.init n f in
  Array.sort compare c;
  c

let validate ~worst entry stream =
  let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
  let hw = Hw.Model.realistic () in
  let t = Distiller.Run.run ~hw ~dss entry.Nf.Registry.program stream in
  let n = Distiller.Run.count t in
  let universe = Perf.Cost_vec.pcvs worst in
  let sound = ref true in
  for i = 0 to n - 1 do
    let binding = Score.binding_of ~universe (Distiller.Run.observations t i) in
    let bound m = Score.predict_packet ~worst binding m in
    if
      Distiller.Run.ic t i > bound Perf.Metric.Instructions
      || Distiller.Run.ma t i > bound Perf.Metric.Memory_accesses
    then sound := false
  done;
  let ic = sorted_column n (Distiller.Run.ic t) in
  let ma = sorted_column n (Distiller.Run.ma t) in
  let cycles = sorted_column n (Distiller.Run.cycles t) in
  (ic, ma, cycles, !sound)

let run ~nf ?backends ?capacities ?(packets = 512) ?(jobs = 1) ?(seed = 42) ()
    =
  let backends =
    match backends with Some l -> l | None -> Space.backends ~nf
  in
  let capacities =
    match capacities with Some l -> l | None -> Space.default_capacities ~nf
  in
  let specs = Space.grid ~nf ~backends ~capacities () in
  let stream = Space.workload ~nf ~packets ~seed ~capacities in
  let min_cap = List.fold_left min (List.hd capacities) capacities in
  (* One harvest + one pipeline run per backend; both are keyed by the
     backend because program, contracts and the symbolic worst case are
     capacity-invariant within a family. *)
  let per_backend =
    List.map
      (fun b ->
        let spec = Space.point ~nf ~backend:b ~capacity:min_cap in
        let entry = Nf.Registry.of_spec spec in
        let sample = Score.harvest entry (Space.copy_stream stream) in
        let t = Score.analyze ~jobs entry in
        (b, (sample, t, Bolt.Pipeline.worst_case t)))
      backends
  in
  let points =
    List.mapi
      (fun index spec ->
        let backend = Space.backend_of spec in
        let sample, t, worst = List.assoc backend per_backend in
        let entry = Nf.Registry.of_spec spec in
        {
          index;
          spec;
          backend;
          knobs = Nf.Spec.to_strings (Nf.Spec.knobs spec);
          footprint_bytes = Nf.Spec.footprint_bytes spec;
          predicted = Score.predict ~worst sample;
          exposure_ic = Score.exposure_ic t entry.Nf.Registry.classes;
          on_front = false;
        })
      specs
  in
  let front_set =
    Pareto.front (List.map (fun p -> (p.index, objectives p)) points)
  in
  let on_front i = List.mem_assoc i front_set in
  let points = List.map (fun p -> { p with on_front = on_front p.index }) points in
  let front = List.filter (fun p -> p.on_front) points in
  let winner =
    match
      List.sort
        (fun a b ->
          compare
            ( a.predicted.Score.p99_cycles,
              a.footprint_bytes,
              a.predicted.Score.p50_cycles,
              a.index )
            ( b.predicted.Score.p99_cycles,
              b.footprint_bytes,
              b.predicted.Score.p50_cycles,
              b.index ))
        front
    with
    | w :: _ -> w
    | [] -> assert false (* front of a non-empty grid is non-empty *)
  in
  let _, _, worst = List.assoc winner.backend per_backend in
  let entry = Nf.Registry.of_spec winner.spec in
  let ic, ma, cycles, sound =
    validate ~worst entry (Space.copy_stream stream)
  in
  let p = Score.percentile in
  let validation =
    {
      packets = Array.length ic;
      measured_p50_ic = p ic 50;
      measured_p99_ic = p ic 99;
      measured_p50_ma = p ma 50;
      measured_p99_ma = p ma 99;
      measured_p50_cycles = p cycles 50;
      measured_p99_cycles = p cycles 99;
      err_p50_ic_pct =
        err_pct ~predicted:winner.predicted.Score.p50_ic ~measured:(p ic 50);
      err_p99_ic_pct =
        err_pct ~predicted:winner.predicted.Score.p99_ic ~measured:(p ic 99);
      err_p50_cycles_pct =
        err_pct ~predicted:winner.predicted.Score.p50_cycles
          ~measured:(p cycles 50);
      err_p99_cycles_pct =
        err_pct ~predicted:winner.predicted.Score.p99_cycles
          ~measured:(p cycles 99);
      sound;
    }
  in
  { nf; seed; jobs; points; front; winner; validation }

(* ---- rendering ---- *)

let json_of_prediction (pr : Score.prediction) =
  Perf.Json.Obj
    [
      ("p50_ic", Perf.Json.Int pr.Score.p50_ic);
      ("p99_ic", Perf.Json.Int pr.Score.p99_ic);
      ("p50_ma", Perf.Json.Int pr.Score.p50_ma);
      ("p99_ma", Perf.Json.Int pr.Score.p99_ma);
      ("p50_cycles", Perf.Json.Int pr.Score.p50_cycles);
      ("p99_cycles", Perf.Json.Int pr.Score.p99_cycles);
    ]

let json_of_point p =
  Perf.Json.Obj
    [
      ("index", Perf.Json.Int p.index);
      ("backend", Perf.Json.String p.backend);
      ( "knobs",
        Perf.Json.Obj
          (List.map (fun (k, v) -> (k, Perf.Json.String v)) p.knobs) );
      ("footprint_bytes", Perf.Json.Int p.footprint_bytes);
      ("predicted", json_of_prediction p.predicted);
      ( "exposure_ic",
        match p.exposure_ic with
        | Some v -> Perf.Json.Int v
        | None -> Perf.Json.Null );
      ("on_front", Perf.Json.Bool p.on_front);
    ]

let to_json r =
  Perf.Json.Obj
    [
      ("nf", Perf.Json.String r.nf);
      ( "provenance",
        Perf.Provenance.json ~packets:r.validation.packets () );
      ("seed", Perf.Json.Int r.seed);
      ("jobs", Perf.Json.Int r.jobs);
      ("grid", Perf.Json.List (List.map json_of_point r.points));
      ( "front",
        Perf.Json.List (List.map (fun p -> Perf.Json.Int p.index) r.front) );
      ("winner", Perf.Json.Int r.winner.index);
      ( "validation",
        Perf.Json.Obj
          [
            ("packets", Perf.Json.Int r.validation.packets);
            ("measured_p50_ic", Perf.Json.Int r.validation.measured_p50_ic);
            ("measured_p99_ic", Perf.Json.Int r.validation.measured_p99_ic);
            ("measured_p50_ma", Perf.Json.Int r.validation.measured_p50_ma);
            ("measured_p99_ma", Perf.Json.Int r.validation.measured_p99_ma);
            ( "measured_p50_cycles",
              Perf.Json.Int r.validation.measured_p50_cycles );
            ( "measured_p99_cycles",
              Perf.Json.Int r.validation.measured_p99_cycles );
            ("err_p50_ic_pct", Perf.Json.Int r.validation.err_p50_ic_pct);
            ("err_p99_ic_pct", Perf.Json.Int r.validation.err_p99_ic_pct);
            ( "err_p50_cycles_pct",
              Perf.Json.Int r.validation.err_p50_cycles_pct );
            ( "err_p99_cycles_pct",
              Perf.Json.Int r.validation.err_p99_cycles_pct );
            ("sound", Perf.Json.Bool r.validation.sound);
          ] );
    ]

let pp_point ppf p =
  Fmt.pf ppf "%s %c #%d  %-8s %-40s mem %8dB  pred cycles p50 %6d p99 %6d%a"
    (if p.on_front then "*" else " ")
    (if p.on_front then '|' else ' ')
    p.index p.backend
    (String.concat " "
       (List.map (fun (k, v) -> k ^ "=" ^ v) p.knobs))
    p.footprint_bytes p.predicted.Score.p50_cycles
    p.predicted.Score.p99_cycles
    (fun ppf -> function
      | Some e -> Fmt.pf ppf "  worst ic %d" e
      | None -> ())
    p.exposure_ic

let pp ppf r =
  Fmt.pf ppf "tune %s: %d grid points, %d on the Pareto front@."
    r.nf (List.length r.points) (List.length r.front);
  List.iter (fun p -> Fmt.pf ppf "%a@." pp_point p) r.points;
  let v = r.validation in
  Fmt.pf ppf "winner: #%d %s (%s)@." r.winner.index r.winner.backend
    (String.concat " " (List.map (fun (k, x) -> k ^ "=" ^ x) r.winner.knobs));
  Fmt.pf ppf
    "validated on %d packets (compiled replay, realistic model): sound=%b@."
    v.packets v.sound;
  Fmt.pf ppf
    "  ic     p50 pred %7d meas %7d (+%d%%)   p99 pred %7d meas %7d (+%d%%)@."
    r.winner.predicted.Score.p50_ic v.measured_p50_ic v.err_p50_ic_pct
    r.winner.predicted.Score.p99_ic v.measured_p99_ic v.err_p99_ic_pct;
  Fmt.pf ppf
    "  cycles p50 pred %7d meas %7d (+%d%%)   p99 pred %7d meas %7d (+%d%%)@."
    r.winner.predicted.Score.p50_cycles v.measured_p50_cycles
    v.err_p50_cycles_pct r.winner.predicted.Score.p99_cycles
    v.measured_p99_cycles v.err_p99_cycles_pct
