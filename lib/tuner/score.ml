(* Analytic scoring: instantiate a spec's derived contract with the PCV
   distribution a Distiller replay harvested from the workload.

   The pricing uses the exact algebra the pipeline certifies — the
   symbolic per-packet worst case (Bolt.Pipeline.worst_case, the
   monomial-wise max over every feasible path) evaluated at each
   packet's observed PCV binding (per-PCV max over the packet's calls,
   0 for PCVs the packet never exercised — the Validate convention).
   Because every contract polynomial has non-negative coefficients, each
   per-packet figure is a sound upper bound on that packet's cost, so
   the predicted percentiles dominate the measured ones pointwise. *)

type sample = (Perf.Pcv.t * int) list array
(** Per-packet PCV observations, in stream order. *)

let harvest (entry : Nf.Registry.entry) stream =
  let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
  let t =
    Distiller.Run.run ~hw:(Hw.Model.null ()) ~dss entry.Nf.Registry.program
      stream
  in
  Array.init (Distiller.Run.count t) (Distiller.Run.observations t)

let binding_of ~universe observations : Perf.Pcv.binding =
  List.map
    (fun v ->
      let value =
        List.fold_left
          (fun acc (p, x) -> if Perf.Pcv.equal p v then max acc x else acc)
          0 observations
      in
      (v, value))
    universe

(* Nearest-rank percentile over a sorted column. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Score.percentile: empty column";
  let rank = (p * n) + 99 in
  sorted.(max 0 ((rank / 100) - 1))

let analyze ~jobs (entry : Nf.Registry.entry) =
  let config =
    Bolt.Pipeline.Config.(
      default
      |> with_contracts entry.Nf.Registry.contracts
      |> with_jobs jobs)
  in
  Bolt.Pipeline.analyze ~config entry.Nf.Registry.program

type prediction = {
  p50_ic : int;
  p99_ic : int;
  p50_ma : int;
  p99_ma : int;
  p50_cycles : int;
  p99_cycles : int;
}

let predict_packet ~worst binding metric =
  Perf.Cost_vec.eval_exn binding worst metric

let columns ~worst (sample : sample) =
  let universe = Perf.Cost_vec.pcvs worst in
  let bindings = Array.map (binding_of ~universe) sample in
  let col metric =
    let c = Array.map (fun b -> predict_packet ~worst b metric) bindings in
    Array.sort compare c;
    c
  in
  ( col Perf.Metric.Instructions,
    col Perf.Metric.Memory_accesses,
    col Perf.Metric.Cycles )

let predict ~worst sample =
  let ic, ma, cycles = columns ~worst sample in
  {
    p50_ic = percentile ic 50;
    p99_ic = percentile ic 99;
    p50_ma = percentile ma 50;
    p99_ma = percentile ma 99;
    p50_cycles = percentile cycles 50;
    p99_cycles = percentile cycles 99;
  }

(* The capacity-dependent adversarial exposure: the contract evaluated
   at each class's own worst-case bindings (e.g. NAT1 binds e to the
   table capacity), maximized over the classes that bind every PCV they
   mention. *)
let exposure_ic t classes =
  List.fold_left
    (fun acc cls ->
      match Bolt.Pipeline.predict t cls Perf.Metric.Instructions with
      | Ok v -> Some (max v (Option.value acc ~default:0))
      | Error _ -> acc)
    None classes
