(** Pareto dominance over the tuner's objectives: predicted p50/p99
    cycles per packet and memory footprint bytes, all minimized. *)

type objectives = { p50 : int; p99 : int; mem : int }

val dominates : objectives -> objectives -> bool
(** [dominates a b]: no worse everywhere, strictly better somewhere. *)

val front : ('a * objectives) list -> ('a * objectives) list
(** The non-dominated subset, in input order. *)
