(* The Distiller's replay is the per-packet hot path of the repository:
   it drives the closure-compiled program (Exec.Compiled — never the
   interpreter) and folds every packet straight into flat arrays.  No
   per-packet report list is retained and PCV aggregates are built once
   at replay time, so [pcv_values]/[pcv_sums]/[latencies] are O(packets)
   reads of precomputed columns instead of O(obs)×O(pcv) rescans. *)

type packet_report = {
  index : int;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;
  observations : (Perf.Pcv.t * int) list;
}

(* Growable int array for the flat observation stream (its total length
   is unknown until the replay finishes). *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 64 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.data 0 v.len
end

type t = {
  count : int;
  outcomes : Exec.Interp.outcome array;
  ics : int array;
  mas : int array;
  cys : int array;
  pcvs : Perf.Pcv.t array;  (** observed PCVs, in first-observation order *)
  pcv_max : int array array;  (** per-PCV column of per-packet maxima *)
  pcv_sum : int array array;  (** per-PCV column of per-packet sums *)
  obs_pcv : int array;  (** flat per-call stream: index into [pcvs] *)
  obs_val : int array;
  obs_off : int array;  (** packet i's calls are [obs_off.(i), obs_off.(i+1)) *)
  total_ic : int;
  total_ma : int;
}

let run ?hw ~dss program stream =
  let model = match hw with Some m -> m | None -> Hw.Model.realistic () in
  let meter = Exec.Meter.create model in
  let compiled = Exec.Compiled.compile program in
  let replay =
    Exec.Compiled.runner compiled ~meter ~mode:(Exec.Interp.Production dss)
  in
  let dma_regions =
    [ (Exec.Interp.packet_base, 2048); (Exec.Interp.rx_ring_base, 256) ]
  in
  let n = Workload.Stream.length stream in
  let outcomes = Array.make n Exec.Interp.Dropped in
  let ics = Array.make n 0 in
  let mas = Array.make n 0 in
  let cys = Array.make n 0 in
  let obs_pcv = Vec.create () in
  let obs_val = Vec.create () in
  let obs_off = Array.make (n + 1) 0 in
  (* columns in reverse insertion order; the universe is tiny *)
  let cols : (Perf.Pcv.t * int * int array * int array) list ref = ref [] in
  let ncols = ref 0 in
  let col_of pcv =
    match List.find_opt (fun (p, _, _, _) -> Perf.Pcv.equal p pcv) !cols with
    | Some col -> col
    | None ->
        let col = (pcv, !ncols, Array.make n 0, Array.make n 0) in
        cols := col :: !cols;
        incr ncols;
        col
  in
  List.iteri
    (fun i { Workload.Stream.packet; now; in_port } ->
      Exec.Meter.reset_observations meter;
      model.Hw.Model.boundary dma_regions;
      let run = replay ~in_port ~now packet in
      outcomes.(i) <- run.Exec.Interp.outcome;
      ics.(i) <- run.Exec.Interp.ic;
      mas.(i) <- run.Exec.Interp.ma;
      cys.(i) <- run.Exec.Interp.cycles;
      List.iter
        (fun (pcv, v) ->
          let _, idx, maxc, sumc = col_of pcv in
          Vec.push obs_pcv idx;
          Vec.push obs_val v;
          maxc.(i) <- max maxc.(i) v;
          sumc.(i) <- sumc.(i) + v)
        (Exec.Meter.observations meter);
      obs_off.(i + 1) <- obs_pcv.Vec.len)
    stream;
  let cols = List.rev !cols in
  {
    count = n;
    outcomes;
    ics;
    mas;
    cys;
    pcvs = Array.of_list (List.map (fun (p, _, _, _) -> p) cols);
    pcv_max = Array.of_list (List.map (fun (_, _, m, _) -> m) cols);
    pcv_sum = Array.of_list (List.map (fun (_, _, _, s) -> s) cols);
    obs_pcv = Vec.to_array obs_pcv;
    obs_val = Vec.to_array obs_val;
    obs_off;
    total_ic = Exec.Meter.ic meter;
    total_ma = Exec.Meter.ma meter;
  }

let run_pcap ?hw ~dss program ~path ?(in_port = 0) () =
  let records = Net.Pcap.read_file path in
  run ?hw ~dss program (Workload.Stream.of_pcap ~in_port records)

let count t = t.count
let total_ic t = t.total_ic
let total_ma t = t.total_ma
let pcvs t = Array.to_list t.pcvs

let find_col t pcv =
  let rec scan j =
    if j >= Array.length t.pcvs then None
    else if Perf.Pcv.equal t.pcvs.(j) pcv then Some j
    else scan (j + 1)
  in
  scan 0

let pcv_values t pcv =
  match find_col t pcv with
  | Some j -> Array.to_list t.pcv_max.(j)
  | None -> List.init t.count (fun _ -> 0)

let pcv_sums t pcv =
  match find_col t pcv with
  | Some j -> Array.to_list t.pcv_sum.(j)
  | None -> List.init t.count (fun _ -> 0)

let latencies t = Array.to_list t.cys
let outcome t i = t.outcomes.(i)
let ic t i = t.ics.(i)
let ma t i = t.mas.(i)
let cycles t i = t.cys.(i)

let observations t i =
  let lo = t.obs_off.(i) and hi = t.obs_off.(i + 1) in
  List.init (hi - lo) (fun k ->
      (t.pcvs.(t.obs_pcv.(lo + k)), t.obs_val.(lo + k)))

let report t index =
  {
    index;
    outcome = t.outcomes.(index);
    ic = t.ics.(index);
    ma = t.mas.(index);
    cycles = t.cys.(index);
    observations = observations t index;
  }

let iter t f =
  for i = 0 to t.count - 1 do
    f (report t i)
  done

let fold t f acc =
  let acc = ref acc in
  for i = 0 to t.count - 1 do
    acc := f !acc (report t i)
  done;
  !acc

let max_over arr = Array.fold_left max 0 arr
let max_ic t = max_over t.ics
let max_ma t = max_over t.mas
let max_cycles t = max_over t.cys
