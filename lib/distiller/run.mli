(** The Distiller's instrumented replay (paper §4).

    Feeds a traffic sample through the production build of the NF, logging
    the PCV values each packet induced.  The Distiller never changes the
    contract — it tells the user which contract assumptions held for each
    packet of the trace.

    The replay runs on the closure-compiled hot path ({!Exec.Compiled},
    bit-identical to the interpreter) and streams every packet straight
    into flat arrays: per-packet costs and outcomes are columns, per-call
    PCV observations live in one flat stream with per-packet offsets, and
    per-PCV aggregate columns (max and sum) are folded in as the replay
    runs.  Memory stays proportional to the trace with no per-packet
    heap structure, and every query below is a precomputed-column read —
    nothing rescans observations per (packet, PCV) pair. *)

type packet_report = {
  index : int;
  outcome : Exec.Interp.outcome;
  ic : int;
  ma : int;
  cycles : int;  (** realistic-model latency of this packet *)
  observations : (Perf.Pcv.t * int) list;
      (** per-call PCV observations during this packet *)
}
(** A per-packet view, materialized on demand by {!report} / {!iter} —
    results no longer retain a list of these. *)

type t
(** A finished replay: flat arrays indexed by packet. *)

val run :
  ?hw:Hw.Model.t -> dss:Exec.Ds.env -> Ir.Program.t -> Workload.Stream.t ->
  t
(** Replay the stream (warm caches persist across packets; pass [hw] to
    share a simulator across several runs). *)

val run_pcap :
  ?hw:Hw.Model.t -> dss:Exec.Ds.env -> Ir.Program.t -> path:string ->
  ?in_port:int -> unit -> t
(** Convenience: replay a pcap file. *)

val count : t -> int
(** Packets replayed. *)

val total_ic : t -> int
val total_ma : t -> int

val outcome : t -> int -> Exec.Interp.outcome
val ic : t -> int -> int
val ma : t -> int -> int
val cycles : t -> int -> int

val observations : t -> int -> (Perf.Pcv.t * int) list
(** Packet [i]'s per-call observations, in program order. *)

val report : t -> int -> packet_report
(** The packet's view, built on demand. *)

val iter : t -> (packet_report -> unit) -> unit
val fold : t -> ('a -> packet_report -> 'a) -> 'a -> 'a

val pcvs : t -> Perf.Pcv.t list
(** The PCVs the trace exercised, in first-observation order. *)

val pcv_values : t -> Perf.Pcv.t -> int list
(** Per-packet values of one PCV (max over the packet's calls; 0 when the
    packet never exercised it).  A precomputed-column read. *)

val pcv_sums : t -> Perf.Pcv.t -> int list
(** Per-packet sums (e.g. total expirations each packet triggered). *)

val latencies : t -> int list
val max_ic : t -> int
val max_ma : t -> int
val max_cycles : t -> int
