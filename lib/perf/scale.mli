(** Scalability contracts for a sharded dataplane.

    The per-packet contract prices one packet on one core; a scalability
    contract extends it across N shared-nothing shards the way NFork
    does: predicted aggregate throughput at N shards is the single-shard
    service rate divided by the bottleneck term — the most-loaded
    shard's share of the traffic (never better than a perfectly balanced
    [1/N], never better than one shard per available core) — plus an
    explicitly modelled steering cost paid serially by the dispatch
    stage.  With [t] the per-packet service time, [d] the per-packet
    dispatch time and [f] the bottleneck shard's traffic fraction:

    {v speedup(N) = t / (d + max(f, 1/cores) * t) v}

    Everything here is a pure record over integers (cycles from the
    per-packet {!Contract}, a traffic histogram from the workload);
    measuring and validating the prediction is the dataplane's job. *)

type t = {
  nf : string;
  shards : int;
  cores : int;  (** hardware threads available to the process *)
  per_packet_cycles : int;
      (** contract-derived service cost of one packet on its shard *)
  dispatch_cycles : int;
      (** modelled steering cost per packet (0 at one shard — the
          dataplane bypasses the dispatcher entirely) *)
  max_shard_fraction_ppm : int;
      (** the bottleneck shard's share of the packets, in parts per
          million (1_000_000 at one shard) *)
  skew_pct : int;
      (** [shards * max fraction * 100]: 100 = perfectly balanced, 200 =
          the hottest shard carries twice its fair share *)
  predicted_speedup_pct : int;
      (** predicted aggregate-throughput gain over one shard, *100 *)
}

val derive :
  nf:string ->
  shards:int ->
  cores:int ->
  per_packet_cycles:int ->
  dispatch_cycles:int ->
  shard_loads:int array ->
  t
(** [shard_loads] is the per-shard packet histogram of the workload
    under the plan's steering (broadcast packets counted once per
    receiving shard).  An all-zero histogram is treated as balanced.
    Raises [Invalid_argument] on [shards < 1], [cores < 1], a histogram
    whose length differs from [shards], or a non-positive
    [per_packet_cycles]. *)

val predicted_speedup : t -> float
(** The speedup as a float, [predicted_speedup_pct / 100.]. *)

val predicted_pps : t -> baseline_pps:float -> float
(** Aggregate packets/sec predicted at [t.shards], anchored at the
    measured single-shard rate. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
