(** Environment provenance for benchmark artifacts.

    Every tracked [BENCH_*.json] embeds this block, so numbers measured
    on a 1-core CI container are self-describing instead of relying on a
    prose caveat: a reader (or a later diffing tool) can see at a glance
    how much hardware parallelism the producing process actually had,
    which OCaml compiled it, and how large the workload was. *)

val json : ?packets:int -> unit -> Json.t
(** An [Obj] with [ocaml_version], [word_size],
    [recommended_domains] ({!Domain.recommended_domain_count} at write
    time — the gate every multicore speedup assertion keys on) and, when
    given, the artifact's [packets] workload size. *)
