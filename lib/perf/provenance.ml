let json ?packets () =
  let fields =
    [
      ("ocaml_version", Json.String Sys.ocaml_version);
      ("word_size", Json.Int Sys.word_size);
      ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
    ]
  in
  Json.Obj
    (match packets with
    | None -> fields
    | Some n -> fields @ [ ("packets", Json.Int n) ])
