type t = {
  nf : string;
  shards : int;
  cores : int;
  per_packet_cycles : int;
  dispatch_cycles : int;
  max_shard_fraction_ppm : int;
  skew_pct : int;
  predicted_speedup_pct : int;
}

let derive ~nf ~shards ~cores ~per_packet_cycles ~dispatch_cycles ~shard_loads
    =
  if shards < 1 then invalid_arg "Scale.derive: shards < 1";
  if cores < 1 then invalid_arg "Scale.derive: cores < 1";
  if Array.length shard_loads <> shards then
    invalid_arg
      (Printf.sprintf "Scale.derive: %d loads for %d shards"
         (Array.length shard_loads) shards);
  if per_packet_cycles <= 0 then
    invalid_arg "Scale.derive: per_packet_cycles <= 0";
  if dispatch_cycles < 0 then invalid_arg "Scale.derive: dispatch_cycles < 0";
  let total = Array.fold_left ( + ) 0 shard_loads in
  let max_load = Array.fold_left max 0 shard_loads in
  (* an empty histogram says nothing about the workload: assume balance *)
  let max_f =
    if total = 0 then 1.0 /. float_of_int shards
    else float_of_int max_load /. float_of_int total
  in
  let bottleneck = Float.max max_f (1.0 /. float_of_int cores) in
  let t = float_of_int per_packet_cycles
  and d = float_of_int dispatch_cycles in
  let speedup = t /. (d +. (bottleneck *. t)) in
  {
    nf;
    shards;
    cores;
    per_packet_cycles;
    dispatch_cycles;
    max_shard_fraction_ppm = int_of_float (Float.round (max_f *. 1e6));
    skew_pct =
      int_of_float (Float.round (float_of_int shards *. max_f *. 100.));
    predicted_speedup_pct = int_of_float (Float.round (speedup *. 100.));
  }

let predicted_speedup t = float_of_int t.predicted_speedup_pct /. 100.
let predicted_pps t ~baseline_pps = baseline_pps *. predicted_speedup t

let to_json t =
  Json.Obj
    [
      ("nf", Json.String t.nf);
      ("shards", Json.Int t.shards);
      ("cores", Json.Int t.cores);
      ("per_packet_cycles", Json.Int t.per_packet_cycles);
      ("dispatch_cycles", Json.Int t.dispatch_cycles);
      ("max_shard_fraction_ppm", Json.Int t.max_shard_fraction_ppm);
      ("skew_pct", Json.Int t.skew_pct);
      ("predicted_speedup_pct", Json.Int t.predicted_speedup_pct);
    ]

let pp ppf t =
  Format.fprintf ppf
    "%s @@ %d shard%s (%d core%s): service %d cyc + dispatch %d cyc, skew \
     %d%% -> predicted speedup x%.2f"
    t.nf t.shards
    (if t.shards = 1 then "" else "s")
    t.cores
    (if t.cores = 1 then "" else "s")
    t.per_packet_cycles t.dispatch_cycles t.skew_pct (predicted_speedup t)
