(* The symbolic domain of the unified Ir.Eval traversal: values are
   Value.t, state is an immutable record, and a branch explores every
   feasible continuation in order — the fork tree.  The traversal
   itself (statement dispatch, loop structure, the PCV one-iteration
   over-approximation) lives in Ir.Eval and is shared verbatim with the
   concrete interpreter and the fidelity replay. *)

module SM = Map.Make (String)

(* Structural order on constraints: pure variants over ints, strings and
   lists, so [Stdlib.compare] is total.  Backs the O(log n) duplicate
   check in [add_con]. *)
module CS = Set.Make (struct
  type t = Solver.Constr.t

  let compare = Stdlib.compare
end)

let c_forks = Obs.Metrics.counter "symbex.forks_taken"
let c_pruned = Obs.Metrics.counter "symbex.paths_pruned"
let c_cons = Obs.Metrics.counter "symbex.constraints_added"
let c_paths = Obs.Metrics.counter "symbex.paths_completed"

type result = {
  paths : Path.t list;
  input : Spacket.input;
  gen : Solver.Sym.gen;
  in_port : Solver.Sym.t;
  now : Solver.Sym.t;
  infeasible_pruned : int;
}

type st = {
  env : Value.t SM.t;
  view : Spacket.view;
  cons : Solver.Constr.t list;  (** reversed *)
  conset : CS.t;  (** the members of [cons], for duplicate checks *)
  calls : Path.call list;  (** reversed *)
  loops : Path.pcv_loop list;
  decis : bool list;  (** reversed branch decisions, see {!Path.t} *)
  in_pcv : bool;  (** inside a PCV loop: decisions are not recorded *)
  ncalls : int;
}

let decide st b = if st.in_pcv then st else { st with decis = b :: st.decis }

let explore ?(max_paths = 8192) ?(initial = []) ?shared ?concrete ?pin_port
    ~models (program : Ir.Program.t) =
  Obs.Span.with_ ~cat:"symbex" "explore"
    ~args:(fun () -> [ ("program", program.Ir.Program.name) ])
  @@ fun () ->
  let gen, view0 =
    match (shared, concrete) with
    | Some (gen, view), _ -> (gen, view)
    | None, Some (packet, _, _) ->
        let gen = Solver.Sym.gen () in
        (gen, Spacket.view (Spacket.concrete_input gen packet))
    | None, None ->
        let gen = Solver.Sym.gen () in
        (gen, Spacket.view (Spacket.input gen ()))
  in
  let ctx = Value.ctx gen in
  let in_port = Solver.Sym.fresh gen ~lo:0 ~hi:7 "in_port" in
  let now = Solver.Sym.fresh gen ~lo:1000 ~hi:(1 lsl 40) "now" in
  (* A topology edge delivers the packet on a known port: the symbol stays
     symbolic (models and replay read it as usual) but is pinned by an
     equality, so downstream branches on [in_port] collapse. *)
  let initial =
    match pin_port with
    | None -> initial
    | Some p ->
        initial
        @ [
            Solver.Constr.eq (Solver.Linexpr.sym in_port)
              (Solver.Linexpr.const p);
          ]
  in
  let paths = ref [] in
  let path_count = ref 0 in
  let pruned = ref 0 in
  let feasible cons =
    Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000 cons
  in
  let add_con st c =
    if Solver.Constr.is_true c || CS.mem c st.conset then st
    else begin
      Obs.Metrics.incr c_cons;
      { st with cons = c :: st.cons; conset = CS.add c st.conset }
    end
  in
  let drain st = List.fold_left add_con st (Value.take_side ctx) in
  let finish_path st action =
    Obs.Metrics.incr c_paths;
    incr path_count;
    if !path_count > max_paths then
      failwith "symbex: too many paths (raise max_paths?)";
    paths :=
      {
        Path.id = !path_count;
        constraints = List.rev st.cons;
        calls = List.rev st.calls;
        loops = List.rev st.loops;
        decisions = List.rev st.decis;
        action;
        view = st.view;
      }
      :: !paths
  in
  let fork st branches =
    (* each branch: (extra constraints, continuation) *)
    List.iter
      (fun (extra, k) ->
        let st' = List.fold_left add_con st extra in
        if feasible st'.cons then begin
          Obs.Metrics.incr c_forks;
          k st'
        end
        else begin
          Obs.Metrics.incr c_pruned;
          incr pruned
        end)
      branches
  in
  let module Dom = struct
    type value = Value.t
    type state = st

    let const st n = (Value.of_int n, st)

    let var st v =
      match SM.find_opt v st.env with
      | Some value -> (value, st)
      | None -> failwith ("symbex: unbound variable " ^ v)

    let pkt_len st = (Spacket.length st.view, st)

    let pkt_load st w ~off =
      let value, cs = Spacket.load st.view ctx w ~offset:off in
      let st = List.fold_left add_con st cs in
      let st = drain st in
      (value, st)

    (* The operator may mint fresh symbols whose defining side
       constraints are picked up by the *next* drain point, exactly as
       the pre-unification engine sequenced it. *)
    let unop st op a =
      let st = drain st in
      (Value.unop ctx op a, st)

    let binop st op a b =
      let st = drain st in
      (Value.binop ctx op a b, st)

    let assign st v value = { st with env = SM.add v value st.env }

    let pkt_store st w ~off value =
      { st with view = Spacket.store st.view ctx w ~offset:off ~value }

    let branch st ~record ~true_first c ~on_true ~on_false =
      let f = Value.truth c in
      let true_side =
        ([ f ], fun st -> on_true (if record then decide st true else st))
      in
      let false_side =
        ( [ Solver.Constr.not_ f ],
          fun st -> on_false (if record then decide st false else st) )
      in
      fork st
        (if true_first then [ true_side; false_side ]
         else [ false_side; true_side ])

    let bound_exit st ~record ~bound:_ c ~exit =
      (* the bound is a static guarantee: force exit *)
      let f = Value.truth c in
      fork st
        [
          ( [ Solver.Constr.not_ f ],
            fun st -> exit (if record then decide st false else st) );
        ]

    let assume_exit st c ~exit =
      let f = Value.truth c in
      fork st [ ([ Solver.Constr.not_ f ], exit) ]

    let pcv_policy = `Once_havoc

    let pcv_enter st ~name ~bound =
      { st with loops = { Path.name; bound } :: st.loops; in_pcv = true }

    (* [`Iterate]-only hooks: the symbolic policy is [`Once_havoc]. *)
    let pcv_iter _ ~name:_ = assert false
    let pcv_exit _ ~name:_ ~iterations:_ = assert false
    let pcv_close st = { st with in_pcv = false }

    let havoc st vars =
      List.fold_left
        (fun st v ->
          {
            st with
            env = SM.add v (Value.fresh_opaque ctx ("havoc_" ^ v)) st.env;
          })
        st vars

    let call st ~program { Ir.Stmt.ret; instance; meth; args = _ } ~args ~k =
      let kind =
        match Ir.Program.kind_of_instance program instance with
        | Some k -> k
        | None -> failwith ("symbex: undeclared instance " ^ instance)
      in
      let model = Model.find_exn models ~kind ~meth in
      let branches = model.Model.apply ctx ~args in
      let st = drain st in
      fork st
        (List.map
           (fun (b : Model.branch) ->
             ( b.Model.constraints,
               fun st ->
                 let call =
                   {
                     Path.index = st.ncalls;
                     instance;
                     kind;
                     meth;
                     tag = b.Model.tag;
                     ret = Value.to_lin ctx b.Model.ret;
                   }
                 in
                 let st = drain st in
                 let st =
                   { st with calls = call :: st.calls; ncalls = st.ncalls + 1 }
                 in
                 let st =
                   match ret with
                   | None -> st
                   | Some v -> { st with env = SM.add v b.Model.ret st.env }
                 in
                 k st ))
           branches)

    let pre_return st = st

    let finish st (action : Value.t Ir.Eval.action) =
      finish_path st
        (match action with
        | Ir.Eval.Forward port -> Path.Forward port
        | Ir.Eval.Drop -> Path.Drop
        | Ir.Eval.Flood -> Path.Flood)

    let fallthrough _ =
      failwith "symbex: program fell through without returning"

    let unsupported _ msg = failwith ("symbex: " ^ msg)
  end in
  let module E = Ir.Eval.Make (Dom) in
  let in_port_v, now_v =
    match concrete with
    | Some (_, in_port, now) when shared = None ->
        (Value.of_int in_port, Value.of_int now)
    | _ -> (Value.of_sym in_port, Value.of_sym now)
  in
  let st0 =
    {
      env = SM.empty |> SM.add "in_port" in_port_v |> SM.add "now" now_v;
      view = view0;
      cons = List.rev initial;
      conset = CS.of_list initial;
      calls = [];
      loops = [];
      decis = [];
      in_pcv = false;
      ncalls = 0;
    }
  in
  E.run st0 program;
  {
    paths = List.rev !paths;
    input = Spacket.input_of_view view0;
    gen;
    in_port;
    now;
    infeasible_pruned = !pruned;
  }
