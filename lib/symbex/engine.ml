module SM = Map.Make (String)

(* Structural order on constraints: pure variants over ints, strings and
   lists, so [Stdlib.compare] is total.  Backs the O(log n) duplicate
   check in [add_con]. *)
module CS = Set.Make (struct
  type t = Solver.Constr.t

  let compare = Stdlib.compare
end)

let c_forks = Obs.Metrics.counter "symbex.forks_taken"
let c_pruned = Obs.Metrics.counter "symbex.paths_pruned"
let c_cons = Obs.Metrics.counter "symbex.constraints_added"
let c_paths = Obs.Metrics.counter "symbex.paths_completed"

type result = {
  paths : Path.t list;
  input : Spacket.input;
  gen : Solver.Sym.gen;
  in_port : Solver.Sym.t;
  now : Solver.Sym.t;
  infeasible_pruned : int;
}

type st = {
  env : Value.t SM.t;
  view : Spacket.view;
  cons : Solver.Constr.t list;  (** reversed *)
  conset : CS.t;  (** the members of [cons], for duplicate checks *)
  calls : Path.call list;  (** reversed *)
  loops : Path.pcv_loop list;
  decis : bool list;  (** reversed branch decisions, see {!Path.t} *)
  in_pcv : bool;  (** inside a PCV loop: decisions are not recorded *)
  ncalls : int;
}

let decide st b = if st.in_pcv then st else { st with decis = b :: st.decis }

(* Variables a block can assign (for PCV-loop havocking). *)
let rec assigned_vars block =
  List.concat_map
    (function
      | Ir.Stmt.Assign (v, _) -> [ v ]
      | Ir.Stmt.Call { ret = Some v; _ } -> [ v ]
      | Ir.Stmt.Call { ret = None; _ } -> []
      | Ir.Stmt.If (_, a, b) -> assigned_vars a @ assigned_vars b
      | Ir.Stmt.While (_, _, body) -> assigned_vars body
      | Ir.Stmt.Pkt_store _ | Ir.Stmt.Return _ | Ir.Stmt.Comment _ -> [])
    block
  |> List.sort_uniq String.compare

let rec block_calls block =
  List.exists
    (function
      | Ir.Stmt.Call _ -> true
      | Ir.Stmt.If (_, a, b) -> block_calls a || block_calls b
      | Ir.Stmt.While (_, _, body) -> block_calls body
      | _ -> false)
    block

let explore ?(max_paths = 8192) ?(initial = []) ?shared ~models
    (program : Ir.Program.t) =
  Obs.Span.with_ ~cat:"symbex" "explore"
    ~args:(fun () -> [ ("program", program.Ir.Program.name) ])
  @@ fun () ->
  let gen, view0 =
    match shared with
    | Some (gen, view) -> (gen, view)
    | None ->
        let gen = Solver.Sym.gen () in
        (gen, Spacket.view (Spacket.input gen ()))
  in
  let ctx = Value.ctx gen in
  let in_port = Solver.Sym.fresh gen ~lo:0 ~hi:7 "in_port" in
  let now = Solver.Sym.fresh gen ~lo:1000 ~hi:(1 lsl 40) "now" in
  let paths = ref [] in
  let path_count = ref 0 in
  let pruned = ref 0 in
  let feasible cons = Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000 cons in
  let add_con st c =
    if Solver.Constr.is_true c || CS.mem c st.conset then st
    else begin
      Obs.Metrics.incr c_cons;
      { st with cons = c :: st.cons; conset = CS.add c st.conset }
    end
  in
  let drain st =
    List.fold_left add_con st (Value.take_side ctx)
  in
  (* Evaluate an expression, folding load-bounds constraints into [st]. *)
  let rec eval st (e : Ir.Expr.t) : Value.t * st =
    match e with
    | Ir.Expr.Const n -> (Value.of_int n, st)
    | Ir.Expr.Var v -> (
        match SM.find_opt v st.env with
        | Some value -> (value, st)
        | None -> failwith ("symbex: unbound variable " ^ v))
    | Ir.Expr.Pkt_len -> (Spacket.length st.view, st)
    | Ir.Expr.Pkt_load (w, off_e) ->
        let off, st = eval st off_e in
        let value, cs = Spacket.load st.view ctx w ~offset:off in
        let st = List.fold_left add_con st cs in
        (value, drain st)
    | Ir.Expr.Unop (op, a) ->
        let va, st = eval st a in
        (Value.unop ctx op va, drain st)
    | Ir.Expr.Binop (op, a, b) ->
        let va, st = eval st a in
        let vb, st = eval st b in
        (Value.binop ctx op va vb, drain st)
  in
  let finish st action =
    Obs.Metrics.incr c_paths;
    incr path_count;
    if !path_count > max_paths then
      failwith "symbex: too many paths (raise max_paths?)";
    paths :=
      {
        Path.id = !path_count;
        constraints = List.rev st.cons;
        calls = List.rev st.calls;
        loops = List.rev st.loops;
        decisions = List.rev st.decis;
        action;
        view = st.view;
      }
      :: !paths
  in
  let fork st branches =
    (* each branch: (extra constraints, continuation) *)
    List.iter
      (fun (extra, k) ->
        let st' = List.fold_left add_con st extra in
        if feasible st'.cons then begin
          Obs.Metrics.incr c_forks;
          k st'
        end
        else begin
          Obs.Metrics.incr c_pruned;
          incr pruned
        end)
      branches
  in
  let rec exec_block st block (kont : st -> unit) =
    match block with
    | [] -> kont st
    | stmt :: rest -> exec_stmt st stmt (fun st -> exec_block st rest kont)
  and exec_stmt st (stmt : Ir.Stmt.t) kont =
    match stmt with
    | Ir.Stmt.Comment _ -> kont st
    | Ir.Stmt.Assign (v, e) ->
        let value, st = eval st e in
        kont { st with env = SM.add v value st.env }
    | Ir.Stmt.Pkt_store (w, off_e, val_e) ->
        let off, st = eval st off_e in
        let value, st = eval st val_e in
        kont { st with view = Spacket.store st.view ctx w ~offset:off ~value }
    | Ir.Stmt.If (cond_e, then_, else_) ->
        let cond, st = eval st cond_e in
        let f = Value.truth cond in
        fork st
          [
            ([ f ], fun st -> exec_block (decide st true) then_ kont);
            ( [ Solver.Constr.not_ f ],
              fun st -> exec_block (decide st false) else_ kont );
          ]
    | Ir.Stmt.Return action_stmt ->
        let action, st =
          match action_stmt with
          | Ir.Stmt.Forward port_e ->
              let port, st = eval st port_e in
              (Path.Forward port, st)
          | Ir.Stmt.Drop -> (Path.Drop, st)
          | Ir.Stmt.Flood -> (Path.Flood, st)
        in
        finish st action
    | Ir.Stmt.Call { ret; instance; meth; args } ->
        let kind =
          match Ir.Program.kind_of_instance program instance with
          | Some k -> k
          | None -> failwith ("symbex: undeclared instance " ^ instance)
        in
        let model = Model.find_exn models ~kind ~meth in
        let argv, st =
          List.fold_left
            (fun (acc, st) arg ->
              let v, st = eval st arg in
              (v :: acc, st))
            ([], st) args
        in
        let argv = List.rev argv in
        let branches = model.Model.apply ctx ~args:argv in
        let st = drain st in
        fork st
          (List.map
             (fun (b : Model.branch) ->
               ( b.Model.constraints,
                 fun st ->
                   let call =
                     {
                       Path.index = st.ncalls;
                       instance;
                       kind;
                       meth;
                       tag = b.Model.tag;
                       ret = Value.to_lin ctx b.Model.ret;
                     }
                   in
                   let st = drain st in
                   let st =
                     {
                       st with
                       calls = call :: st.calls;
                       ncalls = st.ncalls + 1;
                     }
                   in
                   let st =
                     match ret with
                     | None -> st
                     | Some v ->
                         { st with env = SM.add v b.Model.ret st.env }
                   in
                   kont st ))
             branches)
    | Ir.Stmt.While (Ir.Stmt.Unroll bound, cond_e, body) ->
        let rec iteration st k =
          let cond, st = eval st cond_e in
          let f = Value.truth cond in
          if k >= bound then
            (* the bound is a static guarantee: force exit *)
            fork st
              [ ([ Solver.Constr.not_ f ], fun st -> kont (decide st false)) ]
          else
            fork st
              [
                ([ Solver.Constr.not_ f ], fun st -> kont (decide st false));
                ( [ f ],
                  fun st ->
                    exec_block (decide st true) body (fun st ->
                        iteration st (k + 1)) );
              ]
        in
        iteration st 0
    | Ir.Stmt.While (Ir.Stmt.Pcv_loop (name, bound), cond_e, body) ->
        if block_calls body then
          failwith
            ("symbex: stateful call inside PCV loop " ^ name
           ^ " is unsupported");
        let cond, st = eval st cond_e in
        let f = Value.truth cond in
        let havoc st =
          List.fold_left
            (fun st v ->
              {
                st with
                env =
                  SM.add v
                    (Value.fresh_opaque ctx ("havoc_" ^ v))
                    st.env;
              })
            st (assigned_vars body)
        in
        fork st
          [
            (* zero iterations *)
            ([ Solver.Constr.not_ f ], kont);
            (* >= 1 iteration: run the body once, havoc, assume exit *)
            ( [ f ],
              fun st ->
                let st =
                  {
                    st with
                    loops = { Path.name; bound } :: st.loops;
                    in_pcv = true;
                  }
                in
                exec_block st body (fun st ->
                    let st = havoc st in
                    let cond', st = eval st cond_e in
                    let f' = Value.truth cond' in
                    fork st
                      [
                        ( [ Solver.Constr.not_ f' ],
                          fun st -> kont { st with in_pcv = false } );
                      ]) );
          ]
  in
  let st0 =
    {
      env =
        SM.empty
        |> SM.add "in_port" (Value.of_sym in_port)
        |> SM.add "now" (Value.of_sym now);
      view = view0;
      cons = List.rev initial;
      conset = CS.of_list initial;
      calls = [];
      loops = [];
      decis = [];
      in_pcv = false;
      ncalls = 0;
    }
  in
  exec_block st0 program.Ir.Program.body (fun _ ->
      failwith "symbex: program fell through without returning");
  {
    paths = List.rev !paths;
    input = Spacket.input_of_view view0;
    gen;
    in_port;
    now;
    infeasible_pruned = !pruned;
  }
