(** The symbolic-execution engine.

    Exhaustively explores the feasible paths of an NF program's stateless
    code, with stateful calls replaced by their symbolic models
    (paper Alg. 2, line 3).  Forks happen at branches on symbolic
    conditions and at model branches; infeasible forks are pruned with the
    solver.  Loops are either unrolled (fork per trip count) or
    parameterised by a PCV (body executed once, assigned variables
    havocked — the trip count surfaces in the contract instead of the
    path count). *)

type result = {
  paths : Path.t list;
  input : Spacket.input;  (** shared input packet symbols *)
  gen : Solver.Sym.gen;
  in_port : Solver.Sym.t;
  now : Solver.Sym.t;
  infeasible_pruned : int;
      (** forks discarded because their constraints were unsatisfiable *)
}

val explore :
  ?max_paths:int ->
  ?initial:Solver.Constr.t list ->
  ?shared:Solver.Sym.gen * Spacket.view ->
  ?concrete:Net.Packet.t * int * int ->
  ?pin_port:int ->
  models:Model.registry ->
  Ir.Program.t ->
  result
(** [explore ~models program] runs the program on a fresh symbolic packet.
    [shared] reuses an existing generator and packet view — that is how
    chain composition executes the downstream NF on the upstream NF's
    symbolic output (§3.4).  [initial] seeds the path constraints.
    [pin_port] constrains the (still symbolic) [in_port] to a known value:
    a topology edge that delivers the packet on port [p] pins the
    downstream NF's ingress port without changing how models or the
    fidelity replay read the symbol.
    [concrete] is [(packet, in_port, now)]: the program is explored over
    that fully-concrete input ({!Spacket.concrete_input}), every branch
    condition folds, and exactly one feasible path can complete — the
    differential check against {!Exec.Interp}.  [shared] wins over
    [concrete] if both are given.
    Raises [Failure] if more than [max_paths] (default 8192) complete, or
    if a PCV loop body contains a stateful call (unsupported). *)
