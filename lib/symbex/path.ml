type call = {
  index : int;
  instance : string;
  kind : string;
  meth : string;
  tag : string;
  ret : Solver.Linexpr.t;
}

type pcv_loop = { name : string; bound : int }
type action = Forward of Value.t | Drop | Flood

type t = {
  id : int;
  constraints : Solver.Constr.t list;
  calls : call list;
  loops : pcv_loop list;
  decisions : bool list;
      (** every [If]/[Unroll] condition outcome assumed along the path,
          in program order (PCV-loop interiors excluded) — a concrete
          replay must reproduce exactly this sequence to be priced as
          this path *)
  action : action;
  view : Spacket.view;
}

let tags_of t ~instance ~meth =
  List.filter_map
    (fun c ->
      if c.instance = instance && c.meth = meth then Some c.tag else None)
    t.calls

let pp_action ppf = function
  | Forward v -> Fmt.pf ppf "forward(%a)" Value.pp v
  | Drop -> Fmt.string ppf "drop"
  | Flood -> Fmt.string ppf "flood"

let pp ppf t =
  Fmt.pf ppf "@[<v>path %d: %a@,  calls: %a@,  constraints: %d@]" t.id
    pp_action t.action
    Fmt.(
      list ~sep:(any "; ") (fun ppf c ->
          pf ppf "%s.%s[%s]" c.instance c.meth c.tag))
    t.calls
    (List.length t.constraints)
