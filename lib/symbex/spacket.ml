open Solver

type input = {
  gen : Sym.gen;
  len : Sym.t;
  bytes : (int, Sym.t) Hashtbl.t;
  max_len : int;
  concrete : Net.Packet.t option;
      (** fully-concrete mode: loads read these bytes instead of
          minting symbols (the differential concrete/symbex oracle) *)
}

let input gen ?(min_len = 60) ?(max_len = 1514) () =
  {
    gen;
    len = Sym.fresh gen ~lo:min_len ~hi:max_len "pkt_len";
    bytes = Hashtbl.create 64;
    max_len;
    concrete = None;
  }

let concrete_input gen packet =
  let len = Net.Packet.length packet in
  {
    gen;
    len = Sym.fresh gen ~lo:len ~hi:len "pkt_len";
    bytes = Hashtbl.create 8;
    max_len = len;
    concrete = Some (Net.Packet.copy packet);
  }

let len_sym t = t.len

let byte_sym t i =
  match Hashtbl.find_opt t.bytes i with
  | Some s -> s
  | None ->
      let s = Sym.byte t.gen (Printf.sprintf "pkt[%d]" i) in
      Hashtbl.add t.bytes i s;
      s

let known_bytes t =
  Hashtbl.fold (fun i s acc -> (i, s) :: acc) t.bytes []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

module IM = Map.Make (Int)

type view = {
  inp : input;
  overlay : (Ir.Expr.width * Value.t) IM.t;
  havocked : bool;  (** a symbolic-offset store clobbered everything *)
  shadow : Net.Packet.t option;
      (** concrete mode: this path's private copy of the packet, with
          its stores materialised *)
}

let view inp =
  {
    inp;
    overlay = IM.empty;
    havocked = false;
    shadow = Option.map Net.Packet.copy inp.concrete;
  }
let input_of_view v = v.inp

let width_bytes = Ir.Expr.bytes_of_width

(* Big-endian combination of the input byte symbols at [off..off+w). *)
let input_field v ctx width off =
  ignore ctx;
  let w = width_bytes width in
  let rec build i acc =
    if i = w then acc
    else
      let b = Linexpr.sym (byte_sym v.inp (off + i)) in
      build (i + 1) (Linexpr.add (Linexpr.scale 256 acc) b)
  in
  Value.Lin (build 0 Linexpr.zero)

let bounds_constraint v width off =
  (* off + w <= len *)
  Constr.le
    (Linexpr.const (off + width_bytes width))
    (Linexpr.sym v.inp.len)

(* Do [off, width] and an overlay entry [off', width'] overlap? *)
let overlaps off width off' width' =
  off < off' + width_bytes width' && off' < off + width_bytes width

let read_at v ctx width off =
  match IM.find_opt off v.overlay with
  | Some (w', value) when w' = width -> value
  | _ ->
      (* partial overlap with any write is over-approximated *)
      let clobbered =
        IM.exists (fun o (w', _) -> overlaps off width o w') v.overlay
      in
      if clobbered || v.havocked then
        Value.fresh_opaque ctx ~lo:0
          ~hi:(Ir.Expr.max_of_width width)
          "pkt_clobbered"
      else input_field v ctx width off

let load v ctx width ~offset =
  match v.shadow with
  | Some shadow ->
      if v.havocked then
        ( Value.fresh_opaque ctx ~lo:0
            ~hi:(Ir.Expr.max_of_width width)
            "pkt_clobbered",
          [] )
      else (
        match Value.is_concrete offset with
        | Some off
          when off >= 0 && off + width_bytes width <= Net.Packet.length shadow
          ->
            (Value.of_int (Net.Packet.get shadow width off), [])
        | _ ->
            (* the concrete interpreter gets stuck on this load — no
               real execution continues past it, so neither may the
               symbolic one *)
            (Value.of_int 0, [ Constr.False ]))
  | None -> (
      match Value.is_concrete offset with
      | Some off when off >= 0 && off + width_bytes width <= v.inp.max_len ->
          (read_at v ctx width off, [ bounds_constraint v width off ])
      | _ ->
          ( Value.fresh_opaque ctx ~lo:0
              ~hi:(Ir.Expr.max_of_width width)
              "pkt_sym_load",
            [] ))

let store v ctx width ~offset ~value =
  ignore ctx;
  match v.shadow with
  | Some shadow -> (
      match (Value.is_concrete offset, Value.is_concrete value) with
      | Some off, Some value_c
        when off >= 0 && off + width_bytes width <= Net.Packet.length shadow
        ->
          let shadow = Net.Packet.copy shadow in
          Net.Packet.set shadow width off value_c;
          { v with shadow = Some shadow }
      | _ ->
          (* a store the concrete packet cannot realise exactly:
             over-approximate every later load *)
          { v with havocked = true })
  | None -> (
      match Value.is_concrete offset with
      | Some off -> { v with overlay = IM.add off (width, value) v.overlay }
      | None -> { v with havocked = true })

let length v =
  match v.inp.concrete with
  | Some packet -> Value.of_int (Net.Packet.length packet)
  | None -> Value.Lin (Linexpr.sym v.inp.len)

let writes v = IM.bindings v.overlay

let output_load v ctx width ~offset = read_at v ctx width offset
