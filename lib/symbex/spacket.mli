(** The symbolic packet.

    Input bytes are fresh symbols, created lazily and shared by all the
    paths of one engine run (and by chained NFs — see [Bolt.Compose]), so
    input-class predicates and path constraints talk about the same
    symbols.  Writes are tracked per path in a functional overlay, so a
    path's view of the packet after rewriting is the symbolic output
    packet §3.4 composes on. *)

type input
(** The shared input layer: byte symbols + the length symbol. *)

val input : Solver.Sym.gen -> ?min_len:int -> ?max_len:int -> unit -> input

val concrete_input : Solver.Sym.gen -> Net.Packet.t -> input
(** A fully-concrete input: the length is pinned and loads at concrete
    in-bounds offsets return the packet's actual bytes as concrete
    values, so every branch condition folds and exactly one path is
    feasible.  An out-of-bounds load contributes [False] — the concrete
    interpreter is stuck there, and the path must die with it.  Used by
    the [concrete_symbex_agreement] differential oracle. *)

val len_sym : input -> Solver.Sym.t
val byte_sym : input -> int -> Solver.Sym.t
(** The symbol for input byte [i] (created on first use). *)

val known_bytes : input -> (int * Solver.Sym.t) list

type view
(** A per-path packet state: the input plus this path's writes. *)

val view : input -> view
val input_of_view : view -> input

val load : view -> Value.ctx -> Ir.Expr.width -> offset:Value.t ->
  Value.t * Solver.Constr.t list
(** Read a field.  A concrete offset yields the (possibly written-over)
    big-endian combination of the byte symbols plus the bounds constraint
    [offset + width <= len]; a symbolic offset yields a fresh bounded
    symbol. *)

val store : view -> Value.ctx -> Ir.Expr.width -> offset:Value.t ->
  value:Value.t -> view
(** Write a field.  A symbolic offset invalidates the whole overlay
    (conservative). *)

val length : view -> Value.t

val writes : view -> (int * (Ir.Expr.width * Value.t)) list
(** This path's overlay, keyed by concrete offset. *)

val output_load : view -> Value.ctx -> Ir.Expr.width -> offset:int -> Value.t
(** What a downstream NF reading [offset] would see — used for chain
    composition. *)
