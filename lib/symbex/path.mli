(** Execution paths produced by the symbolic engine. *)

type call = {
  index : int;  (** position in call order (stub order for replay) *)
  instance : string;
  kind : string;
  meth : string;
  tag : string;  (** abstract-state branch taken *)
  ret : Solver.Linexpr.t;  (** symbolic return value *)
}

type pcv_loop = { name : string; bound : int }

type action = Forward of Value.t | Drop | Flood

type t = {
  id : int;
  constraints : Solver.Constr.t list;
  calls : call list;  (** in call order *)
  loops : pcv_loop list;
  decisions : bool list;
      (** every [If]/[Unroll] condition outcome assumed along the path,
          in program order (PCV-loop interiors excluded) — a concrete
          replay must reproduce exactly this sequence to be priced as
          this path *)
  action : action;
  view : Spacket.view;  (** the symbolic output packet *)
}

val tags_of : t -> instance:string -> meth:string -> string list
(** Tags of all this path's calls to [instance.meth]. *)

val pp : Format.formatter -> t -> unit
