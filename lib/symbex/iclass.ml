open Solver

type requirement = { instance : string; meth : string; tag : string }

type t = {
  name : string;
  description : string;
  predicate : Engine.result -> Constr.t list;
  requires : requirement list;
  forbids : (string * string) list;
  bindings : Perf.Pcv.binding;
}

let make ~name ?(description = "") ?(predicate = fun _ -> [])
    ?(requires = []) ?(forbids = []) ?(bindings = []) () =
  { name; description; predicate; requires; forbids; bindings }

let req instance meth tag = { instance; meth; tag }

let field (result : Engine.result) width off =
  let w = Ir.Expr.bytes_of_width width in
  let rec build i acc =
    if i = w then acc
    else
      let b = Linexpr.sym (Spacket.byte_sym result.Engine.input (off + i)) in
      build (i + 1) (Linexpr.add (Linexpr.scale 256 acc) b)
  in
  build 0 Linexpr.zero

let field_eq width off v result =
  [ Constr.eq (field result width off) (Linexpr.const v) ]

let field_ne width off v result =
  [ Constr.ne (field result width off) (Linexpr.const v) ]

let in_port_is p (result : Engine.result) =
  [ Constr.eq (Linexpr.sym result.Engine.in_port) (Linexpr.const p) ]

let conj_preds preds result = List.concat_map (fun p -> p result) preds

let requirement_holds (path : Path.t) r =
  match Path.tags_of path ~instance:r.instance ~meth:r.meth with
  | [] -> false
  | tags -> List.for_all (String.equal r.tag) tags

let matches t result (path : Path.t) =
  List.for_all (requirement_holds path) t.requires
  && List.for_all
       (fun (instance, meth) -> Path.tags_of path ~instance ~meth = [])
       t.forbids
  && Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000
       (t.predicate result @ path.Path.constraints)
