open Perf

type path_analysis = {
  path : Symbex.Path.t;
  cost : Cost_vec.t;
  replay : Exec.Interp.run;
  packet : Net.Packet.t;
  stubs : int list;
  in_port : int;
  now : int;
}

type t = {
  program : Ir.Program.t;
  engine : Symbex.Engine.result;
  analyses : path_analysis list;
  unsolved : int;
}

(* ---- Configuration --------------------------------------------------- *)

module Config = struct
  type t = {
    models : Symbex.Model.registry;
    contracts : Ds_contract.library;
    cycle_model : unit -> Hw.Model.t;
    jobs : int option;
    max_paths : int;
    obs : bool;
  }

  let default =
    {
      models = Ds_models.default;
      contracts = Ds_contract.library [];
      cycle_model = Hw.Model.conservative;
      jobs = None;
      max_paths = 8192;
      obs = false;
    }

  let with_models models t = { t with models }
  let with_contracts contracts t = { t with contracts }
  let with_cycle_model cycle_model t = { t with cycle_model }
  let with_jobs jobs t = { t with jobs = Some jobs }
  let with_max_paths max_paths t = { t with max_paths }
  let with_obs obs t = { t with obs }
end

(* ---- Trace walking ------------------------------------------------- *)

type snap = { ic : int; ma : int; cy : int }

let snap_sub a b = { ic = a.ic - b.ic; ma = a.ma - b.ma; cy = a.cy - b.cy }
let snap_max a b =
  { ic = max a.ic b.ic; ma = max a.ma b.ma; cy = max a.cy b.cy }
let snap_zero = { ic = 0; ma = 0; cy = 0 }

let rec last = function
  | [ x ] -> x
  | _ :: rest -> last rest
  | [] -> invalid_arg "Bolt.Pipeline.last: empty list"

exception Replay_divergence = Exec.Replay.Divergence
(* Path fidelity is structural since the replay itself became an
   [Ir.Eval] instance: {!Exec.Replay.run} consumes the path's assumed
   decisions as it branches and raises at the exact diverging
   statement.  The exception is re-exported here so chain composition
   and older call sites keep one name for "this witness does not
   realise its path". *)

(* A path's fidelity contract, in the form {!Exec.Replay.run} takes. *)
let fidelity_of (path : Symbex.Path.t) =
  ( path.Symbex.Path.id,
    path.Symbex.Path.decisions,
    List.map (fun l -> l.Symbex.Path.name) path.Symbex.Path.loops )

let replay_witness ~path ~stubs ~in_port ~now program packet =
  let meter = Exec.Meter.create ~trace:true (Hw.Model.conservative ()) in
  let path_id, decisions, loops = fidelity_of path in
  let run =
    Exec.Replay.run ~meter ~stubs ~path_id ~decisions ~loops ~in_port ~now
      program packet
  in
  (run, Exec.Meter.events meter)

let analyze_replay ?(cycle_model = Hw.Model.conservative) ~contracts ~path
    events =
  Obs.Span.with_ ~cat:"pipeline" "price"
    ~args:(fun () -> [ ("path", string_of_int path.Symbex.Path.id) ])
  @@ fun () ->
  let m = cycle_model () in
  let snap () =
    {
      ic = m.Hw.Model.instr_count ();
      ma = m.Hw.Model.mem_count ();
      cy = m.Hw.Model.cycles ();
    }
  in
  let calls = ref path.Symbex.Path.calls in
  let sym_cost = ref Cost_vec.zero in
  (* active PCV loop: (name, reversed iteration-marker snapshots) *)
  let loop_state = ref None in
  (* finished loops: (name, per-iteration snap, removed snap) *)
  let loops_done = ref [] in
  let handle_event (ev : Exec.Meter.event) =
    match ev with
    | Exec.Meter.E_branch _ ->
        () (* fidelity is enforced during the replay itself (Exec.Replay) *)
    | Exec.Meter.E_instr (kind, n) -> m.Hw.Model.instr kind n
    | Exec.Meter.E_mem { addr; write; dependent } ->
        m.Hw.Model.mem ~addr ~write ~dependent
    | Exec.Meter.E_call { instance; meth; _ } -> (
        match !calls with
        | c :: rest
          when c.Symbex.Path.instance = instance && c.Symbex.Path.meth = meth
          ->
            calls := rest;
            let dsc =
              Ds_contract.find_exn contracts ~ds_kind:c.Symbex.Path.kind
                ~meth
            in
            let branch =
              Ds_contract.find_branch_exn dsc ~tag:c.Symbex.Path.tag
            in
            sym_cost := Cost_vec.add !sym_cost branch.Ds_contract.cost
        | _ ->
            failwith
              (Printf.sprintf
                 "Bolt: replay trace and symbolic path disagree at call \
                  %s.%s"
                 instance meth))
    | Exec.Meter.E_loop_head name -> (
        match !loop_state with
        | None -> loop_state := Some (name, [])
        | Some _ -> failwith "Bolt: nested PCV loops are unsupported")
    | Exec.Meter.E_loop_iter _ -> (
        match !loop_state with
        | Some (name, marks) -> loop_state := Some (name, snap () :: marks)
        | None -> failwith "Bolt: loop iteration marker outside a loop")
    | Exec.Meter.E_loop_exit _ -> (
        match !loop_state with
        | None -> failwith "Bolt: loop exit marker outside a loop"
        | Some (name, marks) ->
            loop_state := None;
            let marks = List.rev (snap () :: marks) in
            (* marks = [at iter1; at iter2; …; at exit] — consecutive
               differences are the per-iteration costs (body + next
               condition check). *)
            let rec deltas = function
              | a :: (b :: _ as rest) -> snap_sub b a :: deltas rest
              | _ -> []
            in
            let ds = deltas marks in
            if ds <> [] then begin
              let per_iter = List.fold_left snap_max snap_zero ds in
              let removed = snap_sub (last marks) (List.hd marks) in
              loops_done := (name, per_iter, removed) :: !loops_done
            end)
  in
  List.iter handle_event events;
  if !calls <> [] then
    failwith "Bolt: symbolic path had more calls than the replay trace";
  let total = snap () in
  let removed_total =
    List.fold_left
      (fun acc (_, _, removed) ->
        { ic = acc.ic + removed.ic;
          ma = acc.ma + removed.ma;
          cy = acc.cy + removed.cy })
      snap_zero !loops_done
  in
  let const_part = snap_sub total removed_total in
  let const_vec =
    Cost_vec.make
      ~ic:(Perf_expr.const const_part.ic)
      ~ma:(Perf_expr.const const_part.ma)
      ~cycles:(Perf_expr.const const_part.cy)
  in
  let loop_vecs =
    List.map
      (fun (name, per_iter, _) ->
        let pcv = Pcv.v name in
        Cost_vec.make
          ~ic:(Perf_expr.term per_iter.ic [ pcv ])
          ~ma:(Perf_expr.term per_iter.ma [ pcv ])
          ~cycles:(Perf_expr.term per_iter.cy [ pcv ]))
      !loops_done
  in
  Cost_vec.sum (const_vec :: !sym_cost :: loop_vecs)

(* ---- Witness extraction --------------------------------------------- *)

(* Action-kind agreement between a symbolic path and its witness replay
   (the branch-trace check in [analyze_replay] is the fine-grained one;
   this is the cheap outer sanity check). *)
let replay_matches (action : Symbex.Path.action)
    (outcome : Exec.Interp.outcome) =
  match (action, outcome) with
  | Symbex.Path.Drop, Exec.Interp.Dropped -> true
  | Symbex.Path.Flood, Exec.Interp.Flooded -> true
  | Symbex.Path.Forward _, Exec.Interp.Sent _ -> true
  | _ -> false

let c_diverged = Obs.Metrics.counter "pipeline.replay_diverged"

let witness (engine : Symbex.Engine.result) (path : Symbex.Path.t) =
  Obs.Span.with_ ~cat:"pipeline" "solve"
    ~args:(fun () -> [ ("path", string_of_int path.Symbex.Path.id) ])
  @@ fun () ->
  match Solver.Solve.check path.Symbex.Path.constraints with
  | Solver.Solve.Unsat | Solver.Solve.Unknown -> None
  | Solver.Solve.Sat model ->
      let len =
        Solver.Model.value model (Symbex.Spacket.len_sym engine.Symbex.Engine.input)
      in
      let packet = Net.Packet.create len in
      List.iter
        (fun (off, sym) ->
          if off < len then
            Net.Packet.set_u8 packet off
              (Solver.Model.value model sym land 0xff))
        (Symbex.Spacket.known_bytes engine.Symbex.Engine.input);
      let stubs =
        path.Symbex.Path.calls
        |> List.map (fun c -> Solver.Model.eval model c.Symbex.Path.ret)
      in
      let in_port = Solver.Model.value model engine.Symbex.Engine.in_port in
      let now = Solver.Model.value model engine.Symbex.Engine.now in
      Some (packet, stubs, in_port, now)

(* ---- The pipeline ---------------------------------------------------- *)

let analyze ~(config : Config.t) program =
  if config.Config.obs then Obs.enable ();
  Obs.Span.with_ ~cat:"pipeline" "analyze"
    ~args:(fun () -> [ ("program", program.Ir.Program.name) ])
  @@ fun () ->
  let engine =
    Symbex.Engine.explore ~max_paths:config.Config.max_paths
      ~models:config.Config.models program
  in
  let contracts = config.Config.contracts in
  (* Witness-solve and replay of one path.  Everything mutable — the
     meter, the hardware model, the witness packet — is created here,
     per task, so paths can be processed on any domain; the engine
     result and the contract library are immutable and shared. *)
  let solve_path path =
    Obs.Span.with_ ~cat:"pipeline" "path"
      ~args:(fun () -> [ ("path", string_of_int path.Symbex.Path.id) ])
    @@ fun () ->
    match witness engine path with
    | None -> None
    | Some (packet, stubs, in_port, now) -> (
        match
          Obs.Span.with_ ~cat:"pipeline" "replay"
            ~args:(fun () -> [ ("path", string_of_int path.Symbex.Path.id) ])
            (fun () -> replay_witness ~path ~stubs ~in_port ~now program packet)
        with
        | exception Exec.Interp.Stuck _ ->
            (* the witness drove the replay off the path's runtime
               contract (e.g. a diverging Unroll loop overran its
               bound): divergence, not a priceable trace *)
            Obs.Metrics.incr c_diverged;
            None
        | exception Replay_divergence _ ->
            (* the witness took a branch the path did not assume —
               caught structurally, at the diverging statement *)
            Obs.Metrics.incr c_diverged;
            None
        | replay, events ->
            if
              not
                (replay_matches path.Symbex.Path.action
                   replay.Exec.Interp.outcome)
            then begin
              Obs.Metrics.incr c_diverged;
              None
            end
            else
              let cost =
                analyze_replay ~cycle_model:config.Config.cycle_model
                  ~contracts ~path events
              in
              Some { path; cost; replay; packet; stubs; in_port; now })
  in
  let per_path =
    Exec.Pool.map ?jobs:config.Config.jobs solve_path
      engine.Symbex.Engine.paths
  in
  let unsolved =
    List.length (List.filter Option.is_none per_path)
  in
  let analyses = List.filter_map Fun.id per_path in
  { program; engine; analyses; unsolved }

let path_count t = List.length t.analyses

let class_members t cls =
  List.filter
    (fun a -> Symbex.Iclass.matches cls t.engine a.path)
    t.analyses

let class_cost t cls =
  let members = class_members t cls in
  ( Cost_vec.max_upper_list (List.map (fun a -> a.cost) members),
    List.length members )

let contract t ~classes =
  Contract.make ~nf:t.program.Ir.Program.name
    (List.map
       (fun (cls : Symbex.Iclass.t) ->
         let cost, n = class_cost t cls in
         Contract.entry ~class_name:cls.Symbex.Iclass.name
           ~description:cls.Symbex.Iclass.description ~path_count:n cost)
       classes)

let worst_case t =
  Cost_vec.max_upper_list (List.map (fun a -> a.cost) t.analyses)

let predict t (cls : Symbex.Iclass.t) metric =
  let cost, _ = class_cost t cls in
  Cost_vec.eval cls.Symbex.Iclass.bindings cost metric
