open Perf

type node = {
  label : string;
  program : Ir.Program.t;
  contracts : Ds_contract.library;
}

type sel = Any | Port of int
type target = To of int | Exit of string
type edge = { src : int; sel : sel; target : target }
type t = { nodes : node array; ingress : int; edges : edge list }

type egress =
  | Exited of { node : int; label : string }
  | Dropped of int
  | Flooded of int

let default_exit = "out"

type step = {
  step_node : int;
  step_path : Symbex.Path.t;
  step_in_port : Solver.Sym.t;
  step_now : Solver.Sym.t;
}

type route = {
  steps : step list;
  egress : egress;
  constraints : Solver.Constr.t list;
  cost : Cost_vec.t;
}

type result = {
  routes : route list;
  unsolved : int;
  infeasible_routes : int;
  input : Symbex.Spacket.input;
  ingress_engine : Symbex.Engine.result;
}

(* ---- Replay helpers (shared by every composition entry point) --------- *)

let replay_cost ~contracts ~program ~path ~packet ~stubs ~in_port ~now =
  let run, events =
    Pipeline.replay_witness ~path ~stubs ~in_port ~now program packet
  in
  (Pipeline.analyze_replay ~contracts ~path events, run)

let stub_values model (path : Symbex.Path.t) =
  List.map
    (fun c -> Solver.Model.eval model c.Symbex.Path.ret)
    path.Symbex.Path.calls

let concretize_packet model (input : Symbex.Spacket.input) =
  let len = Solver.Model.value model (Symbex.Spacket.len_sym input) in
  let packet = Net.Packet.create len in
  List.iter
    (fun (off, sym) ->
      if off < len then
        Net.Packet.set_u8 packet off (Solver.Model.value model sym land 0xff))
    (Symbex.Spacket.known_bytes input);
  packet

(* ---- Validation ------------------------------------------------------- *)

let invalid fmt = Fmt.kstr (fun s -> invalid_arg ("Dag: " ^ s)) fmt

let validate t =
  let n = Array.length t.nodes in
  if n = 0 then invalid "empty node set";
  if t.ingress < 0 || t.ingress >= n then
    invalid "ingress index %d out of range" t.ingress;
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n then
        invalid "edge source %d out of range" e.src;
      match e.target with
      | To d when d < 0 || d >= n -> invalid "edge target %d out of range" d
      | To _ | Exit _ -> ())
    t.edges;
  Array.iteri
    (fun i node ->
      let out = List.filter (fun e -> e.src = i) t.edges in
      let anys, ports =
        List.partition (fun e -> e.sel = Any) out
      in
      if anys <> [] && List.length out > 1 then
        invalid "node %s mixes an Any edge with other edges" node.label;
      let seen = Hashtbl.create 4 in
      List.iter
        (fun e ->
          match e.sel with
          | Any -> ()
          | Port p ->
              if Hashtbl.mem seen p then
                invalid "node %s declares port %d twice" node.label p;
              Hashtbl.add seen p ())
        ports)
    t.nodes;
  (* acyclicity: DFS over [To] edges, detecting a back edge *)
  let state = Array.make n `White in
  let rec dfs i =
    match state.(i) with
    | `Grey -> invalid "cycle through node %s" t.nodes.(i).label
    | `Black -> ()
    | `White ->
        state.(i) <- `Grey;
        List.iter
          (fun e ->
            if e.src = i then
              match e.target with To d -> dfs d | Exit _ -> ())
          t.edges;
        state.(i) <- `Black
  in
  for i = 0 to n - 1 do
    dfs i
  done

(* ---- The walk --------------------------------------------------------- *)

let analyze ?max_paths ?jobs ~models t =
  validate t;
  let gen = Solver.Sym.gen () in
  let input = Symbex.Spacket.input gen () in
  let view0 = Symbex.Spacket.view input in
  let ctx = Symbex.Value.ctx gen in
  let ingress_engine = ref None in
  let infeasible = ref 0 in
  (* (steps_rev, egress, joint constraints), reversed traversal order *)
  let pending = ref [] in
  let emit steps_rev egress cons =
    pending := (steps_rev, egress, cons) :: !pending
  in
  let feasible cons =
    Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000 cons
  in
  let out_edges i = List.filter (fun e -> e.src = i) t.edges in
  let rec descend steps_rev node view cons pin =
    let engine =
      Symbex.Engine.explore ?max_paths ~shared:(gen, view) ~initial:cons
        ?pin_port:pin ~models t.nodes.(node).program
    in
    if !ingress_engine = None then ingress_engine := Some engine;
    List.iter
      (fun (path : Symbex.Path.t) ->
        let steps_rev =
          {
            step_node = node;
            step_path = path;
            step_in_port = engine.Symbex.Engine.in_port;
            step_now = engine.Symbex.Engine.now;
          }
          :: steps_rev
        in
        match path.Symbex.Path.action with
        | Symbex.Path.Drop ->
            emit steps_rev (Dropped node) path.Symbex.Path.constraints
        | Symbex.Path.Flood ->
            emit steps_rev (Flooded node) path.Symbex.Path.constraints
        | Symbex.Path.Forward v -> route steps_rev node path v)
      engine.Symbex.Engine.paths
  and route steps_rev node (path : Symbex.Path.t) v =
    match out_edges node with
    | [] ->
        emit steps_rev
          (Exited { node; label = default_exit })
          path.Symbex.Path.constraints
    | [ { sel = Any; target; _ } ] ->
        follow steps_rev path path.Symbex.Path.constraints target None
    | edges ->
        (* every edge carries a [Port] selector (validated): constrain the
           forwarded value, prune infeasible (port, path) tuples, and send
           the complement — a port nobody declared — out of the topology *)
        let lin = Symbex.Value.to_lin ctx v in
        let side = Symbex.Value.take_side ctx in
        List.iter
          (fun e ->
            match e.sel with
            | Any -> assert false (* validated: Any is exclusive *)
            | Port p ->
                let cons =
                  path.Symbex.Path.constraints
                  @ (Solver.Constr.eq lin (Solver.Linexpr.const p) :: side)
                in
                if feasible cons then follow steps_rev path cons e.target (Some p)
                else incr infeasible)
          edges;
        let ports =
          List.filter_map
            (function { sel = Port p; _ } -> Some p | _ -> None)
            edges
        in
        let cons =
          path.Symbex.Path.constraints
          @ List.map
              (fun p -> Solver.Constr.ne lin (Solver.Linexpr.const p))
              ports
          @ side
        in
        if feasible cons then
          emit steps_rev (Exited { node; label = default_exit }) cons
        else incr infeasible
  and follow steps_rev (path : Symbex.Path.t) cons target pin =
    match target with
    | Exit label ->
        let node =
          match steps_rev with s :: _ -> s.step_node | [] -> assert false
        in
        emit steps_rev (Exited { node; label }) cons
    | To next -> descend steps_rev next path.Symbex.Path.view cons pin
  in
  descend [] t.ingress view0 [] None;
  let contracts_of i = t.nodes.(i).contracts in
  let program_of i = t.nodes.(i).program in
  (* Finalization is independent per route — witness solving and replay
     share no mutable state — so it runs on the pool; [Solver.Cache]
     verdicts are pure functions of the constraint set, keeping the
     result bit-identical at any jobs level. *)
  let finalize (steps_rev, egress, joint) =
    let steps = List.rev steps_rev in
    match Solver.Solve.check joint with
    | Solver.Solve.Unsat | Solver.Solve.Unknown -> None
    | Solver.Solve.Sat model -> (
        let packet = concretize_packet model input in
        match
          List.fold_left
            (fun acc st ->
              let cost, _ =
                replay_cost
                  ~contracts:(contracts_of st.step_node)
                  ~program:(program_of st.step_node)
                  ~path:st.step_path ~packet
                  ~stubs:(stub_values model st.step_path)
                  ~in_port:(Solver.Model.value model st.step_in_port)
                  ~now:(Solver.Model.value model st.step_now)
              in
              Cost_vec.add acc cost)
            Cost_vec.zero steps
        with
        | cost -> Some { steps; egress; constraints = joint; cost }
        | exception
            (Failure _ | Pipeline.Replay_divergence _ | Exec.Interp.Stuck _)
          ->
            None)
  in
  let finalized = Exec.Pool.map ?jobs finalize (List.rev !pending) in
  let routes = List.filter_map Fun.id finalized in
  let unsolved = List.length finalized - List.length routes in
  {
    routes;
    unsolved;
    infeasible_routes = !infeasible;
    input;
    ingress_engine = Option.get !ingress_engine;
  }

let worst result =
  Cost_vec.max_upper_list (List.map (fun r -> r.cost) result.routes)
