(** Network-wide joint analysis: one general DAG walk (paper §3.4,
    SymNet-style).

    A [t] is a DAG of NF programs.  The walk symbolically executes each
    node {e on its predecessor's symbolic output packet} under the
    accumulated path constraints: edges route on the egress outcome —
    a [Forward p] follows the edge declared for port [p] (adding the
    [out_port = p] constraint and pinning the downstream [in_port]),
    [Drop]/[Flood] terminate the route at that node.  Route tuples whose
    joint constraints are unsatisfiable are pruned by the solver, which
    is what makes the composed bound tighter than adding per-node worst
    cases (Figure 3).  Pair composition ({!Compose.analyze}) and linear
    chains ({!Compose.analyze_chain}) are thin wrappers over this walk.

    Exploration is serial (it threads one shared symbol generator);
    per-route finalization — witness solving plus measured replay of
    every traversed node on the concrete witness packet — runs on
    {!Exec.Pool} and is bit-deterministic at any jobs level. *)

type node = {
  label : string;
  program : Ir.Program.t;
  contracts : Perf.Ds_contract.library;
}

type sel =
  | Any  (** follow regardless of the forwarded port (no constraint) *)
  | Port of int  (** follow only when the packet leaves on this port *)

type target =
  | To of int  (** index into {!t.nodes} *)
  | Exit of string  (** the packet leaves the topology, labelled *)

type edge = { src : int; sel : sel; target : target }

type t = { nodes : node array; ingress : int; edges : edge list }

type egress =
  | Exited of { node : int; label : string }
      (** forwarded out of the topology: over an [Exit] edge, or on a
          port with no declared edge (label {!default_exit}) *)
  | Dropped of int
  | Flooded of int

val default_exit : string
(** Label given to forwards that leave on a port without a declared
    edge (["out"]). *)

type step = {
  step_node : int;
  step_path : Symbex.Path.t;
  step_in_port : Solver.Sym.t;  (** that node's ingress-port symbol *)
  step_now : Solver.Sym.t;
}

type route = {
  steps : step list;  (** ingress first *)
  egress : egress;
  constraints : Solver.Constr.t list;
      (** joint (solvable) constraints of the whole route, including the
          port-selection constraints of traversed edges *)
  cost : Perf.Cost_vec.t;  (** sum of per-node replayed costs *)
}

type result = {
  routes : route list;
  unsolved : int;
      (** feasible-looking routes whose witness could not be solved or
          replayed — excluded from the bound but counted *)
  infeasible_routes : int;
      (** route tuples pruned because the port-selection constraint was
          unsatisfiable with the accumulated path constraints *)
  input : Symbex.Spacket.input;  (** shared input-packet symbols *)
  ingress_engine : Symbex.Engine.result;
}

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range indices, a cycle, a
    duplicate [(src, port)] selector, or an [Any] edge mixed with other
    edges from the same node.  Friendlier, name-level validation lives
    in [Topo.Graph]. *)

val analyze :
  ?max_paths:int ->
  ?jobs:int ->
  models:Symbex.Model.registry ->
  t ->
  result
(** Walk the DAG from [ingress].  [jobs] bounds the finalization pool
    (the result is the same at any value). *)

val worst : result -> Perf.Cost_vec.t
(** Monomial-wise max over all route costs. *)
