(** The BOLT pipeline (paper Algorithm 2).

    [analyze] substitutes symbolic models for the stateful calls, explores
    every feasible path, solves each path's constraints for a concrete
    witness packet, replays it through the analysis build to obtain the
    instruction trace, and walks the trace pricing instructions with the
    conservative hardware model — splicing in the matching performance-
    contract branch at every stateful call, and parameterising PCV loops
    by their trip count. *)

type path_analysis = {
  path : Symbex.Path.t;
  cost : Perf.Cost_vec.t;
      (** conservative cost of this path, over PCVs *)
  replay : Exec.Interp.run;
  packet : Net.Packet.t;  (** the witness packet *)
  stubs : int list;
  in_port : int;
  now : int;
}

type t = {
  program : Ir.Program.t;
  engine : Symbex.Engine.result;
  analyses : path_analysis list;
  unsolved : int;
      (** paths whose constraints the solver could not produce a witness
          for (kept out of the contract; 0 in all our NFs) *)
}

(** Everything [analyze] needs besides the program itself, in one
    record.  Build one from {!Config.default} with the [with_*]
    builders (or record update), instead of threading five scattered
    optional arguments through every caller:

    {[
      Pipeline.analyze
        ~config:Pipeline.Config.(default |> with_contracts c |> with_jobs 4)
        program
    ]} *)
module Config : sig
  type t = {
    models : Symbex.Model.registry;
        (** symbolic models substituted for stateful calls
            (default {!Ds_models.default}) *)
    contracts : Perf.Ds_contract.library;
        (** performance contracts spliced in at stateful calls
            (default: empty — fine for stateless NFs) *)
    cycle_model : unit -> Hw.Model.t;
        (** prices the stateless trace (default {!Hw.Model.conservative};
            {!Hw.Model.dram_only} for the hardware-model ablation) *)
    jobs : int option;
        (** domain-pool width; [None] = {!Exec.Pool.default_jobs} *)
    max_paths : int;  (** symbolic-execution path budget *)
    obs : bool;
        (** [true] switches the {!Obs} runtime on before the run (it is
            never switched off here), so spans and counters of this
            analysis are recorded *)
  }

  val default : t

  val with_models : Symbex.Model.registry -> t -> t
  val with_contracts : Perf.Ds_contract.library -> t -> t
  val with_cycle_model : (unit -> Hw.Model.t) -> t -> t
  val with_jobs : int -> t -> t
  val with_max_paths : int -> t -> t
  val with_obs : bool -> t -> t
end

val analyze : config:Config.t -> Ir.Program.t -> t
(** Run the full pipeline (explore, witness-solve, replay, price) under
    [config].

    Paths are independent, so witness solving and concrete replay fan
    out over an {!Exec.Pool} of [config.jobs] domains (default
    {!Exec.Pool.default_jobs}, i.e. [BOLT_JOBS] or the hardware's
    recommended domain count).  The result — path order, contracts,
    witnesses — is bit-identical for every [jobs] value: each task
    builds its own meter and hardware model, and the shared solver
    cache's verdicts are a pure function of the constraint set.

    When the {!Obs} runtime is enabled (via [config.obs] or
    {!Obs.enable}), the run is recorded as an [analyze] span containing
    the [explore] phase and, per path, [solve]/[replay]/[price] spans —
    nested correctly even across pool domains — plus the
    symbex/solver/interp/pool counters. *)

val path_count : t -> int

val class_members : t -> Symbex.Iclass.t -> path_analysis list

val class_cost : t -> Symbex.Iclass.t -> Perf.Cost_vec.t * int
(** Conservative (monomial-wise max) cost over the class's member paths,
    and the member count. *)

val contract : t -> classes:Symbex.Iclass.t list -> Perf.Contract.t
(** The NF's performance contract, one entry per class. *)

val worst_case : t -> Perf.Cost_vec.t
(** Max over all paths — the unconstrained-traffic prediction. *)

val predict :
  t -> Symbex.Iclass.t -> Perf.Metric.t -> (int, Perf.Pcv.t) result
(** The concrete bound for a class, at the class's PCV bindings. *)

(** {1 Reusable internals} *)

exception Replay_divergence of string
(** A witness satisfied its path's constraints but, replayed concretely,
    took a different branch somewhere — over-approximated values (an
    overlapping-width packet read, a masked unknown) let the solver pick
    values no real packet realises.  Pricing such a trace would attribute
    the wrong cost to the path.  This is {!Exec.Replay.Divergence} under
    its historical name: the fidelity check is structural — the replay
    consumes the path's assumed decisions as it branches and raises at
    the exact diverging statement — and {!analyze} counts the path as
    unsolved. *)

val replay_witness :
  path:Symbex.Path.t ->
  stubs:int list ->
  in_port:int ->
  now:int ->
  Ir.Program.t ->
  Net.Packet.t ->
  Exec.Interp.run * Exec.Meter.event list
(** Replay a witness through {!Exec.Replay.run} against [path]'s assumed
    decisions and PCV loops, on a fresh tracing meter.  Raises
    {!Replay_divergence} (at the diverging statement) or
    {!Exec.Interp.Stuck}. *)

val analyze_replay :
  ?cycle_model:(unit -> Hw.Model.t) ->
  contracts:Perf.Ds_contract.library ->
  path:Symbex.Path.t ->
  Exec.Meter.event list ->
  Perf.Cost_vec.t
(** Walk a faithful replay trace into a cost expression (exposed for
    chain composition).  Fidelity is already guaranteed by
    {!replay_witness}, which produced the trace. *)

val witness :
  Symbex.Engine.result -> Symbex.Path.t ->
  (Net.Packet.t * int list * int * int) option
(** Solve a path's constraints: [(packet, stubs, in_port, now)]. *)

val replay_matches : Symbex.Path.action -> Exec.Interp.outcome -> bool
(** Action-kind agreement between a symbolic path and a concrete replay
    (the coarse outer check; {!analyze_replay} does the fine-grained
    branch-trace comparison). *)
