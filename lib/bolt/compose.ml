open Perf

(* Both entry points are thin wrappers over the general DAG walk in
   {!Dag}: a pair is a two-node line, a chain an n-node line, each linked
   by [Any] edges (no port constraint — exactly the historic semantics).
   The walk is run serially ([jobs:1]): these are small analyses and the
   wrappers are pinned bit-identical to the pre-refactor results. *)

type pair = { up : Symbex.Path.t; down : Symbex.Path.t; cost : Cost_vec.t }

type t = {
  pairs : pair list;
  up_only : (Symbex.Path.t * Cost_vec.t) list;
  unsolved : int;
  up_engine : Symbex.Engine.result;
}

let engine_up t = t.up_engine

let line_dag nodes =
  let nodes = Array.of_list nodes in
  let edges =
    List.init
      (Array.length nodes - 1)
      (fun i -> { Dag.src = i; sel = Dag.Any; target = Dag.To (i + 1) })
  in
  { Dag.nodes; ingress = 0; edges }

let analyze ?max_paths ~models ~up:(up_program, up_contracts)
    ~down:(down_program, down_contracts) () =
  let dag =
    line_dag
      [
        { Dag.label = "up"; program = up_program; contracts = up_contracts };
        {
          Dag.label = "down";
          program = down_program;
          contracts = down_contracts;
        };
      ]
  in
  let r = Dag.analyze ?max_paths ~jobs:1 ~models dag in
  let pairs, up_only =
    List.fold_left
      (fun (pairs, ups) (route : Dag.route) ->
        match route.Dag.steps with
        | [ u ] -> (pairs, (u.Dag.step_path, route.Dag.cost) :: ups)
        | [ u; d ] ->
            ( {
                up = u.Dag.step_path;
                down = d.Dag.step_path;
                cost = route.Dag.cost;
              }
              :: pairs,
              ups )
        | _ -> assert false)
      ([], []) r.Dag.routes
  in
  {
    pairs = List.rev pairs;
    up_only = List.rev up_only;
    unsolved = r.Dag.unsolved;
    up_engine = r.Dag.ingress_engine;
  }

let worst_case t =
  Cost_vec.max_upper_list
    (List.map (fun p -> p.cost) t.pairs @ List.map snd t.up_only)

let naive_add ~up ~down = Cost_vec.add up down

(* ---- Chains of arbitrary length --------------------------------------- *)

type stage = { program : Ir.Program.t; contracts : Ds_contract.library }
type tuple = { segments : Symbex.Path.t list; cost : Cost_vec.t }

type chain = {
  tuples : tuple list;
  chain_unsolved : int;
  input : Symbex.Spacket.input;
}

let analyze_chain ?max_paths ~models stages =
  if stages = [] then invalid_arg "Compose.analyze_chain: empty chain";
  let dag =
    line_dag
      (List.mapi
         (fun i (s : stage) ->
           {
             Dag.label = Fmt.str "stage%d" i;
             program = s.program;
             contracts = s.contracts;
           })
         stages)
  in
  let r = Dag.analyze ?max_paths ~jobs:1 ~models dag in
  {
    tuples =
      List.map
        (fun (route : Dag.route) ->
          {
            segments =
              List.map (fun s -> s.Dag.step_path) route.Dag.steps;
            cost = route.Dag.cost;
          })
        r.Dag.routes;
    chain_unsolved = r.Dag.unsolved;
    input = r.Dag.input;
  }

let chain_worst chain =
  Cost_vec.max_upper_list (List.map (fun t -> t.cost) chain.tuples)

let chain_class_cost chain predicate =
  let pred = predicate chain.input in
  let members =
    List.filter
      (fun t ->
        match List.rev t.segments with
        | [] -> false
        | last :: _ ->
            Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000
              (pred @ last.Symbex.Path.constraints))
      chain.tuples
  in
  ( Cost_vec.max_upper_list (List.map (fun t -> t.cost) members),
    List.length members )

let class_cost t ~up_result (cls : Symbex.Iclass.t) =
  let pred = cls.Symbex.Iclass.predicate up_result in
  let matches_joint constraints (path_for_tags : Symbex.Path.t) =
    List.for_all
      (fun (r : Symbex.Iclass.requirement) ->
        match
          Symbex.Path.tags_of path_for_tags ~instance:r.Symbex.Iclass.instance
            ~meth:r.Symbex.Iclass.meth
        with
        | [] -> false
        | tags -> List.for_all (String.equal r.Symbex.Iclass.tag) tags)
      cls.Symbex.Iclass.requires
    && List.for_all
         (fun (instance, meth) ->
           Symbex.Path.tags_of path_for_tags ~instance ~meth = [])
         cls.Symbex.Iclass.forbids
    && Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000
         (pred @ constraints)
  in
  let member_costs =
    List.filter_map
      (fun p ->
        if matches_joint p.down.Symbex.Path.constraints p.up then Some p.cost
        else None)
      t.pairs
    @ List.filter_map
        (fun (path, cost) ->
          if matches_joint path.Symbex.Path.constraints path then Some cost
          else None)
        t.up_only
  in
  (Cost_vec.max_upper_list member_costs, List.length member_costs)
