open Perf

type pair = { up : Symbex.Path.t; down : Symbex.Path.t; cost : Cost_vec.t }

type t = {
  pairs : pair list;
  up_only : (Symbex.Path.t * Cost_vec.t) list;
  unsolved : int;
  up_engine : Symbex.Engine.result;
}

let engine_up t = t.up_engine

let replay_cost ~contracts ~program ~path ~packet ~stubs ~in_port ~now =
  let run, events =
    Pipeline.replay_witness ~path ~stubs ~in_port ~now program packet
  in
  (Pipeline.analyze_replay ~contracts ~path events, run)

let stub_values model (path : Symbex.Path.t) =
  List.map
    (fun c -> Solver.Model.eval model c.Symbex.Path.ret)
    path.Symbex.Path.calls

let concretize_packet model (input : Symbex.Spacket.input) =
  let len = Solver.Model.value model (Symbex.Spacket.len_sym input) in
  let packet = Net.Packet.create len in
  List.iter
    (fun (off, sym) ->
      if off < len then
        Net.Packet.set_u8 packet off (Solver.Model.value model sym land 0xff))
    (Symbex.Spacket.known_bytes input);
  packet

let analyze ?max_paths ~models ~up:(up_program, up_contracts)
    ~down:(down_program, down_contracts) () =
  let up_engine = Symbex.Engine.explore ?max_paths ~models up_program in
  let unsolved = ref 0 in
  let pairs = ref [] in
  let up_only = ref [] in
  List.iter
    (fun (up_path : Symbex.Path.t) ->
      match up_path.Symbex.Path.action with
      | Symbex.Path.Drop | Symbex.Path.Flood -> (
          match Pipeline.witness up_engine up_path with
          | None -> incr unsolved
          | Some (packet, stubs, in_port, now) -> (
              match
                replay_cost ~contracts:up_contracts ~program:up_program
                  ~path:up_path ~packet ~stubs ~in_port ~now
              with
              | cost, run
                when Pipeline.replay_matches up_path.Symbex.Path.action
                       run.Exec.Interp.outcome ->
                  up_only := (up_path, cost) :: !up_only
              | _, _ -> incr unsolved
              | exception (Pipeline.Replay_divergence _ | Exec.Interp.Stuck _)
                ->
                  incr unsolved))
      | Symbex.Path.Forward _ ->
          let down_engine =
            Symbex.Engine.explore ?max_paths
              ~shared:(up_engine.Symbex.Engine.gen, up_path.Symbex.Path.view)
              ~initial:up_path.Symbex.Path.constraints ~models down_program
          in
          List.iter
            (fun (down_path : Symbex.Path.t) ->
              match
                Solver.Solve.check down_path.Symbex.Path.constraints
              with
              | Solver.Solve.Unsat | Solver.Solve.Unknown -> incr unsolved
              | Solver.Solve.Sat model -> (
                  let packet =
                    concretize_packet model up_engine.Symbex.Engine.input
                  in
                  let up_cost, _ =
                    replay_cost ~contracts:up_contracts ~program:up_program
                      ~path:up_path ~packet
                      ~stubs:(stub_values model up_path)
                      ~in_port:
                        (Solver.Model.value model
                           up_engine.Symbex.Engine.in_port)
                      ~now:
                        (Solver.Model.value model up_engine.Symbex.Engine.now)
                  in
                  (* the upstream replay mutated [packet] in place: it is
                     now the downstream NF's input *)
                  match
                    replay_cost ~contracts:down_contracts
                      ~program:down_program ~path:down_path ~packet
                      ~stubs:(stub_values model down_path)
                      ~in_port:
                        (Solver.Model.value model
                           down_engine.Symbex.Engine.in_port)
                      ~now:
                        (Solver.Model.value model
                           down_engine.Symbex.Engine.now)
                  with
                  | down_cost, _ ->
                      pairs :=
                        {
                          up = up_path;
                          down = down_path;
                          cost = Cost_vec.add up_cost down_cost;
                        }
                        :: !pairs
                  | exception
                      ( Failure _ | Pipeline.Replay_divergence _
                      | Exec.Interp.Stuck _ ) ->
                      (* replay diverged (over-approximated rewrite read
                         back by the downstream NF): drop the pair but
                         count it *)
                      incr unsolved))
            down_engine.Symbex.Engine.paths)
    up_engine.Symbex.Engine.paths;
  {
    pairs = List.rev !pairs;
    up_only = List.rev !up_only;
    unsolved = !unsolved;
    up_engine;
  }

let worst_case t =
  Cost_vec.max_upper_list
    (List.map (fun p -> p.cost) t.pairs @ List.map snd t.up_only)

let naive_add ~up ~down = Cost_vec.add up down

(* ---- Chains of arbitrary length --------------------------------------- *)

type stage = { program : Ir.Program.t; contracts : Ds_contract.library }
type tuple = { segments : Symbex.Path.t list; cost : Cost_vec.t }

type chain = {
  tuples : tuple list;
  chain_unsolved : int;
  input : Symbex.Spacket.input;
}

(* One traversed segment: the path plus everything needed to replay it. *)
type segment = {
  seg_path : Symbex.Path.t;
  seg_engine : Symbex.Engine.result;
  seg_stage : stage;
}

let analyze_chain ?max_paths ~models stages =
  if stages = [] then invalid_arg "Compose.analyze_chain: empty chain";
  let gen = Solver.Sym.gen () in
  let input = Symbex.Spacket.input gen () in
  let view0 = Symbex.Spacket.view input in
  let tuples = ref [] in
  let unsolved = ref 0 in
  let finalize (segments_rev : segment list) =
    let segments = List.rev segments_rev in
    let joint_constraints =
      match segments_rev with
      | [] -> assert false
      | last :: _ -> last.seg_path.Symbex.Path.constraints
    in
    match Solver.Solve.check joint_constraints with
    | Solver.Solve.Unsat | Solver.Solve.Unknown -> incr unsolved
    | Solver.Solve.Sat model -> (
        let packet = concretize_packet model input in
        match
          List.fold_left
            (fun acc seg ->
              let cost, _ =
                replay_cost ~contracts:seg.seg_stage.contracts
                  ~program:seg.seg_stage.program ~path:seg.seg_path ~packet
                  ~stubs:(stub_values model seg.seg_path)
                  ~in_port:
                    (Solver.Model.value model
                       seg.seg_engine.Symbex.Engine.in_port)
                  ~now:
                    (Solver.Model.value model
                       seg.seg_engine.Symbex.Engine.now)
              in
              Cost_vec.add acc cost)
            Cost_vec.zero segments
        with
        | cost ->
            tuples :=
              { segments = List.map (fun s -> s.seg_path) segments; cost }
              :: !tuples
        | exception
            ( Failure _ | Pipeline.Replay_divergence _ | Exec.Interp.Stuck _ )
          ->
            incr unsolved)
  in
  let rec descend segments_rev view constraints remaining =
    match remaining with
    | [] -> finalize segments_rev
    | stage :: rest ->
        let engine =
          Symbex.Engine.explore ?max_paths ~shared:(gen, view)
            ~initial:constraints ~models stage.program
        in
        List.iter
          (fun (path : Symbex.Path.t) ->
            let seg = { seg_path = path; seg_engine = engine; seg_stage = stage } in
            match path.Symbex.Path.action with
            | Symbex.Path.Forward _ ->
                descend (seg :: segments_rev) path.Symbex.Path.view
                  path.Symbex.Path.constraints rest
            | Symbex.Path.Drop | Symbex.Path.Flood ->
                finalize (seg :: segments_rev))
          engine.Symbex.Engine.paths
  in
  descend [] view0 [] stages;
  { tuples = List.rev !tuples; chain_unsolved = !unsolved; input }

let chain_worst chain =
  Cost_vec.max_upper_list (List.map (fun t -> t.cost) chain.tuples)

let chain_class_cost chain predicate =
  let pred = predicate chain.input in
  let members =
    List.filter
      (fun t ->
        match List.rev t.segments with
        | [] -> false
        | last :: _ ->
            Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000
              (pred @ last.Symbex.Path.constraints))
      chain.tuples
  in
  ( Cost_vec.max_upper_list (List.map (fun t -> t.cost) members),
    List.length members )

let class_cost t ~up_result (cls : Symbex.Iclass.t) =
  let pred = cls.Symbex.Iclass.predicate up_result in
  let matches_joint constraints (path_for_tags : Symbex.Path.t) =
    List.for_all
      (fun (r : Symbex.Iclass.requirement) ->
        match
          Symbex.Path.tags_of path_for_tags ~instance:r.Symbex.Iclass.instance
            ~meth:r.Symbex.Iclass.meth
        with
        | [] -> false
        | tags -> List.for_all (String.equal r.Symbex.Iclass.tag) tags)
      cls.Symbex.Iclass.requires
    && List.for_all
         (fun (instance, meth) ->
           Symbex.Path.tags_of path_for_tags ~instance ~meth = [])
         cls.Symbex.Iclass.forbids
    && Solver.Cache.is_sat ~max_conjuncts:512 ~max_nodes:4000
         (pred @ constraints)
  in
  let member_costs =
    List.filter_map
      (fun p ->
        if matches_joint p.down.Symbex.Path.constraints p.up then
          Some p.cost
        else None)
      t.pairs
    @ List.filter_map
        (fun (path, cost) ->
          if matches_joint path.Symbex.Path.constraints path then Some cost
          else None)
        t.up_only
  in
  (Cost_vec.max_upper_list member_costs, List.length member_costs)
