(** A fixed-size domain pool with a deterministic ordered [map].

    The pool backs the parallel BOLT pipeline: per-path witness solving
    and concrete replay, and the evaluation-scenario loop.  Results are
    returned in input order and exceptions are re-raised for the
    lowest-indexed failing item, so output is independent of how the
    items were scheduled across domains. *)

val default_jobs : unit -> int
(** The [BOLT_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f items] is [List.map f items], computed on
    [min jobs (length items)] domains (default {!default_jobs}).
    [jobs <= 1] runs serially in the calling domain, with no spawns.

    [f] is applied at most once per item.  It must not share mutable
    state across items unless that state is itself domain-safe: create
    meters, hardware models and RNGs per call.  If several items raise,
    the exception of the lowest-indexed one is re-raised (with its
    backtrace) after all domains have joined. *)

(** Long-lived worker domains for repeated fan-out over the same
    indices — the dataplane's shard loops.  {!run_each} spawns and joins
    its domains on every call, which is milliseconds of overhead a timed
    drain must not see; [Workers] pays the spawn once at {!Workers.create}
    and parks the domains on a condition variable between jobs. *)
module Workers : sig
  type t

  val create : int -> t
  (** [create extra] spawns [extra] parked worker domains serving
      indices [1 .. extra]; index 0 always runs on the calling domain,
      so a [create (shards - 1)] pool drives a [shards]-way engine. *)

  val size : t -> int
  (** Total worker count including the caller's index 0. *)

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f i] for every index concurrently ([f 0] on
      the calling domain) and returns when all are done.  If several
      indices raise, the lowest one's exception is re-raised with its
      backtrace.  Raises [Invalid_argument] after {!stop}. *)

  val stop : t -> unit
  (** Join all worker domains.  Idempotent; {!run} is invalid after. *)
end

val run_each : n:int -> (int -> 'a) -> 'a list
(** [run_each ~n f] is [[f 0; f 1; ...; f (n-1)]] with each call running
    on its own domain for the whole call's lifetime — the long-lived
    worker-loop shape of a sharded dataplane, as opposed to {!map}'s
    one-shot work stealing.  Index 0 runs on the calling domain; indices
    1..n-1 each get a fresh domain, so [n] bounds the parallelism
    directly (there is no pool-size clamp — callers decide how many
    shards to stand up, hardware threads or not).  [n <= 1] runs
    serially with no spawns.  Results come back in index order; if
    several indices raise, the lowest one's exception is re-raised with
    its backtrace after all domains have joined. *)
