(** A fixed-size domain pool with a deterministic ordered [map].

    The pool backs the parallel BOLT pipeline: per-path witness solving
    and concrete replay, and the evaluation-scenario loop.  Results are
    returned in input order and exceptions are re-raised for the
    lowest-indexed failing item, so output is independent of how the
    items were scheduled across domains. *)

val default_jobs : unit -> int
(** The [BOLT_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f items] is [List.map f items], computed on
    [min jobs (length items)] domains (default {!default_jobs}).
    [jobs <= 1] runs serially in the calling domain, with no spawns.

    [f] is applied at most once per item.  It must not share mutable
    state across items unless that state is itself domain-safe: create
    meters, hardware models and RNGs per call.  If several items raise,
    the exception of the lowest-indexed one is re-raised (with its
    backtrace) after all domains have joined. *)
